// Command gbooster-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	gbooster-bench [experiment ...]
//
// Experiments: tab1 fig1 fig5 fig6 fig7 tab3 traffic forecast cloud
// overhead quality ablations multiuser all (default: all). Results print as the same rows
// and series the paper reports; EXPERIMENTS.md records the paper-vs-
// measured comparison.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/gbooster/gbooster/internal/experiments"
)

func main() {
	seed := flag.Uint64("seed", experiments.DefaultSeed, "random seed for all experiments")
	flag.Parse()
	names := flag.Args()
	if len(names) == 0 {
		names = []string{"all"}
	}
	if err := run(names, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "gbooster-bench:", err)
		os.Exit(1)
	}
}

func run(names []string, seed uint64) error {
	want := make(map[string]bool)
	for _, n := range names {
		want[n] = true
	}
	all := want["all"]
	ran := 0

	show := func(name string, fn func() (string, error)) error {
		if !all && !want[name] {
			return nil
		}
		out, err := fn()
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Println(out)
		ran++
		return nil
	}

	steps := []struct {
		name string
		fn   func() (string, error)
	}{
		{"tab1", func() (string, error) { return experiments.TableI(), nil }},
		{"fig1", func() (string, error) { _, s, err := experiments.Fig1(); return s, err }},
		{"fig5", func() (string, error) {
			_, s1, err := experiments.Fig5("nexus5", seed)
			if err != nil {
				return "", err
			}
			_, s2, err := experiments.Fig5("lgg5", seed)
			if err != nil {
				return "", err
			}
			return s1 + "\n" + s2, nil
		}},
		{"fig6", func() (string, error) { _, s, err := experiments.Fig6(seed); return s, err }},
		{"fig7", func() (string, error) { _, s, err := experiments.Fig7(seed); return s, err }},
		{"tab3", func() (string, error) { _, s, err := experiments.TableIII(seed); return s, err }},
		{"traffic", func() (string, error) { _, s, err := experiments.Traffic("G1", 40, seed); return s, err }},
		{"forecast", func() (string, error) { _, s, err := experiments.Forecast(seed); return s, err }},
		{"cloud", func() (string, error) { _, s, err := experiments.CloudComparison(seed); return s, err }},
		{"overhead", func() (string, error) { _, s, err := experiments.Overhead(seed); return s, err }},
		{"quality", func() (string, error) { _, s, err := experiments.EncoderQuality(seed); return s, err }},
		{"ablations", func() (string, error) { _, s, err := experiments.Ablations(seed); return s, err }},
		{"multiuser", func() (string, error) { _, s, err := experiments.MultiUser(seed); return s, err }},
	}
	for _, s := range steps {
		if err := show(s.name, s.fn); err != nil {
			return err
		}
	}
	if ran == 0 {
		return fmt.Errorf("unknown experiment(s) %v; try: tab1 fig1 fig5 fig6 fig7 tab3 traffic forecast cloud overhead quality ablations multiuser all", names)
	}
	return nil
}
