// Command gbooster-play runs a catalog workload through the complete
// GBooster client path — simulated linker hooks, wrapper library, wire
// serialization, command cache, LZ4, reliable UDP — against one or more
// gbooster-server instances, and reports the achieved frame rate and
// traffic statistics. Optionally dumps the last displayed frame to PNG.
//
// Usage:
//
//	gbooster-play -servers 127.0.0.1:4870[,host:port...] [-workload G1]
//	              [-frames 300] [-png out.png] [-report]
package main

import (
	"flag"
	"fmt"
	"image"
	"image/png"
	"os"
	"strings"
	"time"

	"github.com/gbooster/gbooster"
	"github.com/gbooster/gbooster/internal/metrics"
)

func main() {
	servers := flag.String("servers", "127.0.0.1:4870", "comma-separated service device addresses")
	workloadID := flag.String("workload", "G1", "catalog workload (G1..G6, A1..A3)")
	frames := flag.Int("frames", 300, "frames to play")
	width := flag.Int("width", 600, "stream width")
	height := flag.Int("height", 480, "stream height")
	seed := flag.Uint64("seed", 1, "workload seed")
	pngPath := flag.String("png", "", "write the final frame to this PNG file")
	report := flag.Bool("report", false, "print the standard collector reports after playing")
	predict := flag.Bool("predict", false, "enable the predictive control plane (ARMAX forecast, radio pre-wake, energy/thermal accounting)")
	flag.Parse()

	if err := run(*servers, *workloadID, *frames, *width, *height, *seed, *pngPath, *report, *predict); err != nil {
		fmt.Fprintln(os.Stderr, "gbooster-play:", err)
		os.Exit(1)
	}
}

func run(servers, workloadID string, frames, width, height int, seed uint64, pngPath string, report, predict bool) error {
	var opts []gbooster.Option
	if predict {
		opts = append(opts, gbooster.WithPredictiveControl())
	}
	player, err := gbooster.NewPlayer(gbooster.PlayerConfig{
		Workload: workloadID,
		Width:    width,
		Height:   height,
		Seed:     seed,
	}, opts...)
	if err != nil {
		return err
	}
	defer func() { _ = player.Close() }()
	for _, addr := range strings.Split(servers, ",") {
		if err := player.Connect(strings.TrimSpace(addr)); err != nil {
			return err
		}
		fmt.Printf("connected to %s\n", addr)
	}

	// One registry on the unified snapshot path — the same aggregation
	// gbooster-load runs per session. The first observation (right after
	// connect) anchors the interval collectors; periodic observations
	// give the FPS collector per-interval samples.
	reg := metrics.NewStandardRegistry()
	reg.Observe(player.Snapshot())

	start := time.Now()
	var last *image.RGBA
	for f := 0; f < frames; f++ {
		img, err := player.StepFrame(10 * time.Second)
		if err != nil {
			return fmt.Errorf("frame %d: %w", f, err)
		}
		last = img
		if f%30 == 29 {
			reg.Observe(player.Snapshot())
		}
	}
	elapsed := time.Since(start)
	s := player.Snapshot()
	reg.Observe(s)

	st := s.PlayerStats
	fmt.Printf("played %d frames of %s in %v (%.1f FPS end-to-end)\n",
		frames, workloadID, elapsed.Round(time.Millisecond), float64(frames)/elapsed.Seconds())
	fmt.Printf("frames sent=%d displayed=%d; mean issue-to-display %v (max %v)\n",
		st.FramesSent, st.FramesShown,
		s.MeanFrameLatency().Round(time.Microsecond), s.FrameLatencyMax.Round(time.Microsecond))
	fmt.Printf("uplink raw %0.1f KB/frame -> wire %0.1f KB/frame (%.0f%% reduction)\n",
		float64(st.RawBytes)/float64(frames)/1024, float64(st.WireBytes)/float64(frames)/1024,
		(1-float64(st.WireBytes)/float64(st.RawBytes))*100)
	fmt.Printf("uplink stages: cache hit rate %.0f%% -> %0.1f KB/frame cached, LZ4 dictionary %.2fx\n",
		st.CacheHitRate()*100, float64(st.PreCompressBytes)/float64(frames)/1024,
		st.CompressionRatio())
	if st.DownlinkBytes > 0 {
		fmt.Printf("downlink %0.1f KB/frame encoded; quality now=%d min=%d steps=%d\n",
			float64(st.DownlinkBytes)/float64(frames)/1024,
			st.QualityNow, st.QualityMin, st.QualityChanges)
	}
	if fs := s.FailoverStats; fs.ReDispatched+fs.Evictions+fs.Readmissions+fs.FramesSkipped+fs.LateFrames > 0 {
		fmt.Printf("failover: re-dispatched=%d evicted=%d readmitted=%d skipped=%d late=%d\n",
			fs.ReDispatched, fs.Evictions, fs.Readmissions, fs.FramesSkipped, fs.LateFrames)
	}
	if hs := s.HandoffStats; hs.BootstrapsSent+hs.Completed+hs.Failed > 0 {
		fmt.Printf("handoff: bootstraps=%d (%0.1f KB total) completed=%d failed=%d mean-latency=%v\n",
			hs.BootstrapsSent, float64(hs.BootstrapBytes)/1024, hs.Completed, hs.Failed,
			hs.MeanLatency.Round(time.Microsecond))
	}
	if ps := s.Predict; ps != nil {
		fmt.Printf("predict: forecast err %.2f Mbps ewma; exceedance tp=%d fp=%d (%.0f%%) fn=%d (%.0f%%); load forecast %.1f rec\n",
			ps.ForecastErrEWMA, ps.TPExceed,
			ps.FPExceed, ps.ExceedanceFPRate()*100,
			ps.FNExceed, ps.ExceedanceFNRate()*100, ps.LoadForecast)
		fmt.Printf("radio: wifi windows=%d bt windows=%d wakeups=%d wake-stalls=%d\n",
			ps.WiFiWindows, ps.BTWindows, ps.WakeUps, ps.WakeStalls)
		fmt.Printf("energy: %.2f J total (%.2f mJ/frame) — wifi %.2f J, bt %.2f J, cpu %.2f J, display %.2f J; gpu %.1f°C scale=%.2f swaps=%d\n",
			ps.EnergyJoules, ps.EnergyPerFrameJ()*1000,
			ps.EnergyWiFiJ, ps.EnergyBTJ, ps.EnergyCPUJ, ps.EnergyDisplayJ,
			ps.GPUTempC, ps.ThermalScale, ps.ThermalSwaps)
	}
	for _, ds := range s.Devices {
		if ds.Health != "healthy" {
			fmt.Printf("device %s: %s\n", ds.Service, ds.Health)
		}
	}
	if report {
		fmt.Println("collector reports:")
		for _, r := range reg.Reports() {
			parts := make([]string, 0, len(r.Fields))
			for _, f := range r.Fields {
				parts = append(parts, fmt.Sprintf("%s=%.3g%s", f.Name, f.Value, f.Unit))
			}
			fmt.Printf("  %-10s %s\n", r.Collector, strings.Join(parts, " "))
		}
	}

	if pngPath != "" && last != nil {
		f, err := os.Create(pngPath)
		if err != nil {
			return err
		}
		defer func() { _ = f.Close() }()
		if err := png.Encode(f, last); err != nil {
			return err
		}
		fmt.Printf("wrote final frame to %s\n", pngPath)
	}
	return nil
}
