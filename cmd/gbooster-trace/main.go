// Command gbooster-trace records a workload's intercepted GLES command
// stream to a trace file and replays traces on the software GPU — the
// apitrace/glretrace workflow for GBooster's wire format. Recording
// exercises the full interception path (deferred vertex pointers
// resolve exactly as they would on the wire); replay re-executes every
// frame and can dump the final framebuffer.
//
// Usage:
//
//	gbooster-trace record -workload G1 -frames 120 -o g1.trace
//	gbooster-trace replay -i g1.trace [-png last.png]
package main

import (
	"flag"
	"fmt"
	"image"
	"image/png"
	"io"
	"os"
	"time"

	"github.com/gbooster/gbooster/internal/gles"
	"github.com/gbooster/gbooster/internal/glwire"
	"github.com/gbooster/gbooster/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: gbooster-trace record|replay [flags]")
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "record":
		err = record(os.Args[2:])
	case "replay":
		err = replay(os.Args[2:])
	default:
		err = fmt.Errorf("unknown subcommand %q", os.Args[1])
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "gbooster-trace:", err)
		os.Exit(1)
	}
}

func record(args []string) error {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	workloadID := fs.String("workload", "G1", "catalog workload")
	frames := fs.Int("frames", 120, "frames to record")
	seed := fs.Uint64("seed", 1, "workload seed")
	out := fs.String("o", "out.trace", "trace file to write")
	if err := fs.Parse(args); err != nil {
		return err
	}
	prof, err := workload.ByID(*workloadID)
	if err != nil {
		return err
	}
	game := workload.NewGame(prof, *seed)
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer func() { _ = f.Close() }()
	tw, err := glwire.NewTraceWriter(f, game.Arrays())
	if err != nil {
		return err
	}
	for i := 0; i < *frames; i++ {
		if err := tw.WriteFrame(game.NextFrame().Commands); err != nil {
			return err
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	n, bytes := tw.Stats()
	fmt.Printf("recorded %d frames of %s to %s (%.1f KB, %.1f KB/frame)\n",
		n, *workloadID, *out, float64(bytes)/1024, float64(bytes)/float64(n)/1024)
	return nil
}

func replay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	in := fs.String("i", "out.trace", "trace file to replay")
	width := fs.Int("width", workload.StreamW, "framebuffer width")
	height := fs.Int("height", workload.StreamH, "framebuffer height")
	pngPath := fs.String("png", "", "write the final framebuffer to this PNG")
	if err := fs.Parse(args); err != nil {
		return err
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer func() { _ = f.Close() }()
	tr, err := glwire.NewTraceReader(f)
	if err != nil {
		return err
	}
	gpu := gles.NewGPU(*width, *height)
	start := time.Now()
	var frames int
	for {
		cmds, err := tr.NextFrame()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if _, err := gpu.ExecuteAll(cmds); err != nil {
			return fmt.Errorf("frame %d: %w", frames, err)
		}
		frames++
	}
	elapsed := time.Since(start)
	fmt.Printf("replayed %d frames in %v (%.1f FPS), %d fragments shaded, %d commands\n",
		frames, elapsed.Round(time.Millisecond),
		float64(frames)/elapsed.Seconds(), gpu.FragmentsShaded, gpu.Ctx.Stats.Commands)
	if *pngPath != "" {
		img := image.NewRGBA(image.Rect(0, 0, *width, *height))
		copy(img.Pix, gpu.FB.Pix)
		out, err := os.Create(*pngPath)
		if err != nil {
			return err
		}
		defer func() { _ = out.Close() }()
		if err := png.Encode(out, img); err != nil {
			return err
		}
		fmt.Printf("wrote final framebuffer to %s\n", *pngPath)
	}
	return nil
}
