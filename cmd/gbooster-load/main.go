// Command gbooster-load drives scenario-shaped fleets of simulated
// players against a GBooster server and reports per-scenario SLOs:
// frame-latency quantiles, delivered FPS, failover and handoff
// activity, quality-ladder movement, and fleet capacity pressure.
//
// By default each scenario gets a fresh in-process fleet behind an
// emulated network (per-session loss/jitter/bandwidth from the
// scenario's link profiles), so a capacity study needs no running
// server. With -addr the same scenarios aim at a real gbooster-server
// over UDP instead; link profiles then don't apply and fleet counters
// aren't visible.
//
// Usage:
//
//	gbooster-load [-scenario all|production-day,spike,flash-crowd,churn]
//	              [-sessions 0] [-frames 0] [-seed 0] [-workers 0]
//	              [-width 320] [-height 240] [-link profile]
//	              [-max-sessions 0] [-idle 30s] [-quality 0]
//	              [-adaptive-quality] [-quality-floor 0] [-parallelism 1]
//	              [-addr host:port] [-bench]
//
// With -bench, machine-readable Go-benchmark lines go to stdout (one
// per scenario, parsed by scripts/benchjson into BENCH_load.json) and
// the human tables to stderr; without it, tables go to stdout.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/gbooster/gbooster"
	"github.com/gbooster/gbooster/internal/loadgen"
	"github.com/gbooster/gbooster/internal/netsim"
)

func main() {
	scenarios := flag.String("scenario", "all", "comma-separated scenario presets, or \"all\" ("+strings.Join(loadgen.ScenarioNames(), ", ")+")")
	sessions := flag.Int("sessions", 0, "override each scenario's session count (0 = preset)")
	frames := flag.Int("frames", 0, "override each scenario's frames per session (0 = preset)")
	seed := flag.Uint64("seed", 0, "override each scenario's seed (0 = preset)")
	workers := flag.Int("workers", 0, "concurrent session workers (0 = one per CPU)")
	width := flag.Int("width", 320, "stream width")
	height := flag.Int("height", 240, "stream height")
	link := flag.String("link", "", "force every session onto one link profile ("+strings.Join(netsim.ProfileNames(), ", ")+")")
	maxSessions := flag.Int("max-sessions", 0, "in-process fleet admission cap (0 = default)")
	idle := flag.Duration("idle", 30*time.Second, "in-process fleet idle-reap timeout")
	quality := flag.Int("quality", 0, "turbo codec quality (0 = default)")
	adaptive := flag.Bool("adaptive-quality", false, "step quality down under congestion")
	qualityFloor := flag.Int("quality-floor", 0, "adaptive quality lower bound (0 = default)")
	parallelism := flag.Int("parallelism", 1, "per-session data-plane workers (1 = serial; sessions already run concurrently)")
	addr := flag.String("addr", "", "aim at a real server at this UDP address instead of an in-process fleet")
	bench := flag.Bool("bench", false, "emit Go-benchmark lines on stdout (tables move to stderr)")
	flag.Parse()

	names := loadgen.ScenarioNames()
	if *scenarios != "all" {
		names = strings.Split(*scenarios, ",")
	}
	opts := []gbooster.Option{
		gbooster.WithQuality(*quality),
		gbooster.WithParallelism(*parallelism),
	}
	if *adaptive {
		opts = append(opts, gbooster.WithAdaptiveQuality(*qualityFloor))
	}

	tables := os.Stdout
	if *bench {
		tables = os.Stderr
	}
	failed := false
	for _, name := range names {
		sc, err := loadgen.ScenarioByName(strings.TrimSpace(name))
		if err != nil {
			fatal(err)
		}
		if *sessions > 0 {
			sc.Sessions = *sessions
		}
		if *frames > 0 {
			sc.FramesPerSession = *frames
		}
		if *seed != 0 {
			sc.Seed = *seed
		}
		if *link != "" {
			p, err := netsim.ProfileByName(*link)
			if err != nil {
				fatal(err)
			}
			sc.Links = []loadgen.WeightedProfile{{Profile: p, Weight: 1}}
		}

		slo, err := runScenario(sc, *addr, *width, *height, *maxSessions, *idle, *workers, opts)
		if err != nil {
			fatal(err)
		}
		fmt.Fprint(tables, slo.Table())
		if *bench {
			fmt.Println(slo.BenchLine())
		}
		if slo.Failed > 0 {
			failed = true
		}
	}
	if failed {
		fatal(fmt.Errorf("some sessions failed (see tables)"))
	}
}

// runScenario builds a fresh target per scenario — each preset starts
// against an empty fleet, so results don't depend on run order — and
// executes it.
func runScenario(sc loadgen.Scenario, addr string, width, height, maxSessions int, idle time.Duration, workers int, opts []gbooster.Option) (loadgen.SLO, error) {
	var target loadgen.Target
	var err error
	if addr != "" {
		target, err = loadgen.NewUDPTarget(addr)
	} else {
		target, err = loadgen.NewFleetTarget(gbooster.FleetConfig{
			Width:       width,
			Height:      height,
			MaxSessions: maxSessions,
			IdleTimeout: idle,
		}, opts...)
	}
	if err != nil {
		return loadgen.SLO{}, err
	}
	defer func() { _ = target.Close() }()

	results, err := loadgen.Run(loadgen.RunConfig{
		Target:  target,
		Width:   width,
		Height:  height,
		Workers: workers,
		Options: opts,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	}, sc)
	if err != nil {
		return loadgen.SLO{}, err
	}
	return loadgen.Summarize(sc.Name, results), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gbooster-load:", err)
	os.Exit(1)
}
