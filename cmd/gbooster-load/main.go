// Command gbooster-load drives scenario-shaped fleets of simulated
// players against a GBooster server and reports per-scenario SLOs:
// frame-latency quantiles, delivered FPS, failover and handoff
// activity, quality-ladder movement, and fleet capacity pressure.
//
// By default each scenario gets a fresh in-process fleet behind an
// emulated network (per-session loss/jitter/bandwidth from the
// scenario's link profiles), so a capacity study needs no running
// server. With -addr the same scenarios aim at a real gbooster-server
// over UDP instead; link profiles then don't apply and fleet counters
// aren't visible.
//
// Usage:
//
//	gbooster-load [-scenario all|production-day,spike,flash-crowd,churn,congested]
//	              [-sessions 0] [-frames 0] [-seed 0] [-workers 0]
//	              [-width 320] [-height 240] [-link profile]
//	              [-arrival-window 0] [-churn-fraction -1]
//	              [-max-sessions 0] [-idle 30s] [-quality 0]
//	              [-adaptive-quality] [-quality-floor 0] [-parallelism 1]
//	              [-addr host:port] [-bench]
//
// With -bench, machine-readable Go-benchmark lines go to stdout (one
// per scenario, parsed by scripts/benchjson into BENCH_load.json) and
// the human tables to stderr; without it, tables go to stdout.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/gbooster/gbooster"
	"github.com/gbooster/gbooster/internal/loadgen"
	"github.com/gbooster/gbooster/internal/netsim"
)

func main() {
	scenarios := flag.String("scenario", "all", "comma-separated scenario presets, or \"all\" ("+strings.Join(loadgen.ScenarioNames(), ", ")+")")
	sessions := flag.Int("sessions", 0, "override each scenario's session count (0 = preset)")
	frames := flag.Int("frames", 0, "override each scenario's frames per session (0 = preset)")
	seed := flag.Uint64("seed", 0, "override each scenario's seed (0 = preset)")
	workers := flag.Int("workers", 0, "concurrent session workers (0 = one per CPU)")
	width := flag.Int("width", 320, "stream width")
	height := flag.Int("height", 240, "stream height")
	link := flag.String("link", "", "force every session onto one link profile ("+strings.Join(netsim.ProfileNames(), ", ")+")")
	arrival := flag.Duration("arrival-window", 0, "override each scenario's session arrival window (0 = preset)")
	churn := flag.Float64("churn-fraction", -1, "override each scenario's total churn share 0..1, split across crash/drain/hot-join in the preset's proportions (negative = preset)")
	maxSessions := flag.Int("max-sessions", 0, "in-process fleet admission cap (0 = default)")
	idle := flag.Duration("idle", 30*time.Second, "in-process fleet idle-reap timeout")
	quality := flag.Int("quality", 0, "turbo codec quality (0 = default)")
	adaptive := flag.Bool("adaptive-quality", false, "step quality down under congestion")
	qualityFloor := flag.Int("quality-floor", 0, "adaptive quality lower bound (0 = default)")
	parallelism := flag.Int("parallelism", 1, "per-session data-plane workers (1 = serial; sessions already run concurrently)")
	addr := flag.String("addr", "", "aim at a real server at this UDP address instead of an in-process fleet")
	bench := flag.Bool("bench", false, "emit Go-benchmark lines on stdout (tables move to stderr)")
	predict := flag.Bool("predict", false, "enable each session's predictive control plane (ARMAX forecast, radio pre-wake, energy accounting)")
	flag.Parse()

	names := loadgen.ScenarioNames()
	if *scenarios != "all" {
		names = strings.Split(*scenarios, ",")
	}
	opts := []gbooster.Option{
		gbooster.WithQuality(*quality),
		gbooster.WithParallelism(*parallelism),
	}
	if *adaptive {
		opts = append(opts, gbooster.WithAdaptiveQuality(*qualityFloor))
	}
	if *predict {
		opts = append(opts, gbooster.WithPredictiveControl())
	}

	tables := os.Stdout
	if *bench {
		tables = os.Stderr
	}
	failed := false
	for _, name := range names {
		sc, err := loadgen.ScenarioByName(strings.TrimSpace(name))
		if err != nil {
			fatal(err)
		}
		sc, err = applyOverrides(sc, overrides{
			Sessions:      *sessions,
			Frames:        *frames,
			Seed:          *seed,
			Link:          *link,
			ArrivalWindow: *arrival,
			ChurnFraction: *churn,
		})
		if err != nil {
			fatal(err)
		}

		slo, err := runScenario(sc, *addr, *width, *height, *maxSessions, *idle, *workers, opts)
		if err != nil {
			fatal(err)
		}
		fmt.Fprint(tables, slo.Table())
		if *bench {
			fmt.Println(slo.BenchLine())
		}
		if slo.Failed > 0 {
			failed = true
		}
	}
	if failed {
		fatal(fmt.Errorf("some sessions failed (see tables)"))
	}
}

// overrides captures the per-scenario CLI knobs that rewrite a preset
// before it runs. Zero values (and a negative ChurnFraction) mean
// "keep the preset's setting".
type overrides struct {
	Sessions      int
	Frames        int
	Seed          uint64
	Link          string
	ArrivalWindow time.Duration
	ChurnFraction float64
}

// applyOverrides rewrites sc with the set overrides. ChurnFraction
// redistributes the total churn share across the preset's
// crash/drain/hot-join proportions — a preset with no churn at all
// splits the fraction evenly three ways, so -churn-fraction works on
// every preset, not only the churn-flavored ones.
func applyOverrides(sc loadgen.Scenario, o overrides) (loadgen.Scenario, error) {
	if o.Sessions > 0 {
		sc.Sessions = o.Sessions
	}
	if o.Frames > 0 {
		sc.FramesPerSession = o.Frames
	}
	if o.Seed != 0 {
		sc.Seed = o.Seed
	}
	if o.Link != "" {
		p, err := netsim.ProfileByName(o.Link)
		if err != nil {
			return sc, err
		}
		sc.Links = []loadgen.WeightedProfile{{Profile: p, Weight: 1}}
	}
	if o.ArrivalWindow > 0 {
		sc.ArrivalWindow = o.ArrivalWindow
	}
	if o.ChurnFraction >= 0 {
		if o.ChurnFraction > 1 {
			return sc, fmt.Errorf("churn-fraction %v out of range [0, 1]", o.ChurnFraction)
		}
		total := sc.Crash + sc.Drain + sc.HotJoin
		if total > 0 {
			scale := o.ChurnFraction / total
			sc.Crash *= scale
			sc.Drain *= scale
			sc.HotJoin *= scale
		} else {
			sc.Crash = o.ChurnFraction / 3
			sc.Drain = o.ChurnFraction / 3
			sc.HotJoin = o.ChurnFraction / 3
		}
	}
	return sc, nil
}

// runScenario builds a fresh target per scenario — each preset starts
// against an empty fleet, so results don't depend on run order — and
// executes it.
func runScenario(sc loadgen.Scenario, addr string, width, height, maxSessions int, idle time.Duration, workers int, opts []gbooster.Option) (loadgen.SLO, error) {
	var target loadgen.Target
	var err error
	if addr != "" {
		target, err = loadgen.NewUDPTarget(addr)
	} else {
		target, err = loadgen.NewFleetTarget(gbooster.FleetConfig{
			Width:       width,
			Height:      height,
			MaxSessions: maxSessions,
			IdleTimeout: idle,
		}, opts...)
	}
	if err != nil {
		return loadgen.SLO{}, err
	}
	defer func() { _ = target.Close() }()

	results, err := loadgen.Run(loadgen.RunConfig{
		Target:  target,
		Width:   width,
		Height:  height,
		Workers: workers,
		Options: opts,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	}, sc)
	if err != nil {
		return loadgen.SLO{}, err
	}
	return loadgen.Summarize(sc.Name, results), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gbooster-load:", err)
	os.Exit(1)
}
