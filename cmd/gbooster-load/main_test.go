package main

import (
	"strings"
	"testing"
	"time"

	"github.com/gbooster/gbooster/internal/loadgen"
	"github.com/gbooster/gbooster/internal/netsim"
)

// TestApplyOverridesKeepsPreset pins the "zero means preset" contract:
// an all-default overrides value must leave every scenario field alone,
// including the churn shares (ChurnFraction is negative by default, not
// zero, precisely so a zeroed churn preset survives).
func TestApplyOverridesKeepsPreset(t *testing.T) {
	sc, err := loadgen.ScenarioByName("churn")
	if err != nil {
		t.Fatal(err)
	}
	got, err := applyOverrides(sc, overrides{ChurnFraction: -1})
	if err != nil {
		t.Fatal(err)
	}
	if got.Sessions != sc.Sessions || got.FramesPerSession != sc.FramesPerSession ||
		got.Seed != sc.Seed || got.ArrivalWindow != sc.ArrivalWindow {
		t.Errorf("defaults rewrote the preset: %+v != %+v", got, sc)
	}
	if got.Crash != sc.Crash || got.Drain != sc.Drain || got.HotJoin != sc.HotJoin {
		t.Errorf("defaults rewrote churn: crash=%v drain=%v hotjoin=%v",
			got.Crash, got.Drain, got.HotJoin)
	}
}

// TestApplyOverridesBasics covers the scalar overrides, including the
// new arrival-window knob.
func TestApplyOverridesBasics(t *testing.T) {
	sc, err := loadgen.ScenarioByName("spike")
	if err != nil {
		t.Fatal(err)
	}
	got, err := applyOverrides(sc, overrides{
		Sessions:      7,
		Frames:        11,
		Seed:          99,
		Link:          "wifi-good",
		ArrivalWindow: 1500 * time.Millisecond,
		ChurnFraction: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.Sessions != 7 || got.FramesPerSession != 11 || got.Seed != 99 {
		t.Errorf("scalars not applied: %+v", got)
	}
	if got.ArrivalWindow != 1500*time.Millisecond {
		t.Errorf("arrival window = %v, want 1.5s", got.ArrivalWindow)
	}
	if len(got.Links) != 1 || got.Links[0].Profile.Name != netsim.WiFiGood.Name {
		t.Errorf("link not pinned: %+v", got.Links)
	}
}

// TestApplyOverridesChurnProportional: on a preset with churn, the
// fraction redistributes across the preset's own crash/drain/hot-join
// proportions instead of flattening them.
func TestApplyOverridesChurnProportional(t *testing.T) {
	sc := loadgen.Scenario{Crash: 0.2, Drain: 0.1, HotJoin: 0.1}
	got, err := applyOverrides(sc, overrides{ChurnFraction: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if !close1(got.Crash, 0.4) || !close1(got.Drain, 0.2) || !close1(got.HotJoin, 0.2) {
		t.Errorf("proportions lost: crash=%v drain=%v hotjoin=%v",
			got.Crash, got.Drain, got.HotJoin)
	}
	if sum := got.Crash + got.Drain + got.HotJoin; !close1(sum, 0.8) {
		t.Errorf("total churn = %v, want 0.8", sum)
	}
}

// TestApplyOverridesChurnEvenSplit: a churn-free preset splits the
// fraction evenly so the knob works everywhere; zero explicitly
// disables churn on a churny preset.
func TestApplyOverridesChurnEvenSplit(t *testing.T) {
	got, err := applyOverrides(loadgen.Scenario{}, overrides{ChurnFraction: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if !close1(got.Crash, 0.2) || !close1(got.Drain, 0.2) || !close1(got.HotJoin, 0.2) {
		t.Errorf("even split lost: crash=%v drain=%v hotjoin=%v",
			got.Crash, got.Drain, got.HotJoin)
	}

	got, err = applyOverrides(loadgen.Scenario{Crash: 0.5, HotJoin: 0.5}, overrides{ChurnFraction: 0})
	if err != nil {
		t.Fatal(err)
	}
	if got.Crash != 0 || got.Drain != 0 || got.HotJoin != 0 {
		t.Errorf("zero fraction left churn: crash=%v drain=%v hotjoin=%v",
			got.Crash, got.Drain, got.HotJoin)
	}
}

// TestApplyOverridesErrors pins the two rejection paths: an unknown
// link profile and an out-of-range churn fraction.
func TestApplyOverridesErrors(t *testing.T) {
	if _, err := applyOverrides(loadgen.Scenario{}, overrides{Link: "carrier-pigeon", ChurnFraction: -1}); err == nil {
		t.Error("unknown link accepted")
	}
	_, err := applyOverrides(loadgen.Scenario{}, overrides{ChurnFraction: 1.5})
	if err == nil || !strings.Contains(err.Error(), "churn-fraction") {
		t.Errorf("churn-fraction 1.5 accepted (err=%v)", err)
	}
}

func close1(got, want float64) bool {
	d := got - want
	return d < 1e-9 && d > -1e-9
}
