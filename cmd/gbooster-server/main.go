// Command gbooster-server runs a GBooster service device over UDP: it
// accepts one client, replays its intercepted OpenGL ES command stream
// on the software GPU, and streams turbo-encoded frames back — the
// §IV-C server side on a real socket.
//
// Usage:
//
//	gbooster-server [-addr :4870] [-width 600] [-height 480]
//	                [-quality 60] [-parallelism 0]
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/gbooster/gbooster"
)

func main() {
	addr := flag.String("addr", ":4870", "UDP address to listen on")
	width := flag.Int("width", 600, "stream width")
	height := flag.Int("height", 480, "stream height")
	quality := flag.Int("quality", 0, "turbo codec quality (0 = default)")
	parallelism := flag.Int("parallelism", 0, "data-plane workers (0 = one per CPU, 1 = serial)")
	flag.Parse()

	srv, err := gbooster.NewStreamServer(
		gbooster.StreamServerConfig{Width: *width, Height: *height},
		gbooster.WithQuality(*quality),
		gbooster.WithParallelism(*parallelism),
	)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gbooster-server:", err)
		os.Exit(1)
	}
	fmt.Printf("gbooster-server: serving %dx%d on %s (waiting for a client)\n", *width, *height, *addr)
	if err := srv.ServeUDP(*addr); err != nil {
		fmt.Fprintln(os.Stderr, "gbooster-server:", err)
		os.Exit(1)
	}
}
