// Command gbooster-server runs a GBooster service device over UDP. By
// default it accepts one client, replays its intercepted OpenGL ES
// command stream on the software GPU, and streams turbo-encoded frames
// back — the §IV-C server side on a real socket. With -fleet it serves
// many clients at once on the same listener: inbound datagrams are
// demultiplexed by source address onto per-session state, sessions past
// -max-sessions are refused, and idle sessions are reaped after -idle.
//
// Usage:
//
//	gbooster-server [-addr :4870] [-width 600] [-height 480]
//	                [-quality 60] [-adaptive-quality] [-quality-floor 20]
//	                [-parallelism 0]
//	                [-fleet] [-max-sessions 1024] [-idle 2m] [-stats 0]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/gbooster/gbooster"
	"github.com/gbooster/gbooster/internal/metrics"
)

func main() {
	addr := flag.String("addr", ":4870", "UDP address to listen on")
	width := flag.Int("width", 600, "stream width")
	height := flag.Int("height", 480, "stream height")
	quality := flag.Int("quality", 0, "turbo codec quality (0 = default)")
	adaptive := flag.Bool("adaptive-quality", false, "step quality down under transport congestion (-quality becomes the ceiling)")
	qualityFloor := flag.Int("quality-floor", 0, "adaptive quality lower bound (0 = default)")
	parallelism := flag.Int("parallelism", 0, "data-plane workers (0 = one per CPU, 1 = serial)")
	fleetMode := flag.Bool("fleet", false, "serve many clients on one listener (multi-tenant mode)")
	maxSessions := flag.Int("max-sessions", 0, "fleet admission cap (0 = default 1024)")
	idle := flag.Duration("idle", 0, "fleet idle-session reap timeout (0 = default 2m)")
	statsEvery := flag.Duration("stats", 0, "fleet stats report interval (0 = off)")
	flag.Parse()

	opts := []gbooster.Option{
		gbooster.WithQuality(*quality),
		gbooster.WithParallelism(*parallelism),
	}
	if *adaptive {
		opts = append(opts, gbooster.WithAdaptiveQuality(*qualityFloor))
	}

	if *fleetMode {
		if err := runFleet(*addr, *width, *height, *maxSessions, *idle, *statsEvery, opts); err != nil {
			fmt.Fprintln(os.Stderr, "gbooster-server:", err)
			os.Exit(1)
		}
		return
	}

	srv, err := gbooster.NewStreamServer(
		gbooster.StreamServerConfig{Width: *width, Height: *height},
		opts...,
	)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gbooster-server:", err)
		os.Exit(1)
	}
	fmt.Printf("gbooster-server: serving %dx%d on %s (waiting for a client)\n", *width, *height, *addr)
	if err := srv.ServeUDP(*addr); err != nil {
		fmt.Fprintln(os.Stderr, "gbooster-server:", err)
		os.Exit(1)
	}
}

// runFleet serves the multi-tenant mode, optionally sampling fleet
// counters every statsEvery and printing a running report — live
// session count plus the capacity-pressure signals (admission
// rejections, GPU-gate queueing).
func runFleet(addr string, width, height, maxSessions int, idle, statsEvery time.Duration, opts []gbooster.Option) error {
	fl, err := gbooster.NewFleet(
		gbooster.FleetConfig{
			Width:       width,
			Height:      height,
			MaxSessions: maxSessions,
			IdleTimeout: idle,
		},
		opts...,
	)
	if err != nil {
		return err
	}
	fmt.Printf("gbooster-server: fleet serving %dx%d on %s\n", width, height, addr)

	if statsEvery > 0 {
		go func() {
			tick := time.NewTicker(statsEvery)
			defer tick.Stop()
			var col metrics.FleetCollector
			for range tick.C {
				// The unified snapshot path: the fleet snapshot rides a
				// PlayerSnapshot into the same collector gbooster-load's
				// sessions feed.
				snap := fl.Snapshot()
				col.Observe(metrics.PlayerSnapshot{Fleet: &snap.FleetStats})
				tot := col.Totals()
				perSyscall := 0.0
				if snap.EgressSyscalls > 0 {
					perSyscall = float64(snap.EgressDatagrams) / float64(snap.EgressSyscalls)
				}
				fmt.Printf("fleet: sessions=%d peak=%d frames=%d fps=%.1f forecast_fps=%.1f reject_rate=%.3f gate_wait_rate=%.3f non_protocol=%d egress_dgrams=%d egress_per_syscall=%.1f egress_drops=%d\n",
					snap.Sessions, col.PeakSessions(), tot.Frames, snap.FrameRate, snap.ForecastFrameRate,
					col.RejectRate(), col.GateWaitRate(), tot.NonProtocol,
					snap.EgressDatagrams, perSyscall, snap.EgressDrops)
			}
		}()
	}
	return fl.Serve(addr)
}
