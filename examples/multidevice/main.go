// Multidevice: reproduce the shape of the paper's Fig. 7 — frame rate
// versus the number of nearby service devices — using the public
// simulation API. One Shield plus a growing pool of desktop PCs serve a
// Nexus 5 running an action game.
package main

import (
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/gbooster/gbooster"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "multidevice:", err)
		os.Exit(1)
	}
}

func run() error {
	base := gbooster.Options{
		Workload: "G1",
		Phone:    "nexus5",
		Duration: 5 * time.Minute,
		Seed:     7,
	}
	local, err := gbooster.SimulateLocal(base)
	if err != nil {
		return err
	}

	fmt.Println("Frame rate vs number of service devices (G1 on Nexus 5)")
	fmt.Printf("  %-8s %-10s %-10s\n", "devices", "medianFPS", "stability")
	fmt.Printf("  %-8d %-10.1f %8.0f%%  (local execution)\n", 0, local.MedianFPS, local.FPSStability*100)

	prev := local.MedianFPS
	for n := 1; n <= 5; n++ {
		opts := base
		opts.Services = []string{"shield"}
		for i := 1; i < n; i++ {
			opts.Services = append(opts.Services, "optiplex")
		}
		res, err := gbooster.SimulateOffload(opts)
		if err != nil {
			return err
		}
		note := ""
		if res.MedianFPS > prev*1.05 {
			note = "scaling"
		} else if n > 1 {
			note = "plateau: at most 3 requests buffer in the pipeline"
		}
		fmt.Printf("  %-8d %-10.1f %8.0f%%  %s\n", n, res.MedianFPS, res.FPSStability*100, note)
		prev = res.MedianFPS
	}

	// The §VI-A ablation: without the non-blocking SwapBuffer rewrite
	// only one request is ever in flight, so extra devices are useless.
	blocked := base
	blocked.Services = []string{"shield", "optiplex", "optiplex"}
	blocked.BlockingSwapBuffer = true
	res, err := gbooster.SimulateOffload(blocked)
	if err != nil {
		return err
	}
	fmt.Printf("\nWith the stock blocking SwapBuffer and 3 devices: %.1f FPS\n", res.MedianFPS)
	fmt.Println(strings.TrimSpace(`
The non-blocking SwapBuffer rewrite is what lets multiple rendering
requests buffer and fan out across devices (paper §VI-A).`))
	return nil
}
