// Streaming: run the real data plane end to end in one process — a
// service-device server and a hooked client exchanging genuine command
// streams and turbo-encoded frames over loopback UDP — and write the
// final rendered frame to a PNG.
//
// This is the §IV pipeline with nothing mocked: the linker resolves the
// game's GL calls into the preloaded wrapper, commands serialize with
// deferred glVertexAttribPointer handling, the mirrored LRU cache and
// LZ4 shrink the uplink, reliable UDP carries both directions, the
// server replays everything on the software GPU, and the turbo codec
// ships tile deltas back.
package main

import (
	"fmt"
	"image/png"
	"os"
	"time"

	"github.com/gbooster/gbooster"
)

const (
	width  = 320
	height = 240
	frames = 90
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "streaming:", err)
		os.Exit(1)
	}
}

func run() error {
	srv, err := gbooster.NewStreamServer(gbooster.StreamServerConfig{Width: width, Height: height})
	if err != nil {
		return err
	}
	serverErr := make(chan error, 1)
	go func() { serverErr <- srv.ServeUDP("127.0.0.1:4872") }()
	defer func() { _ = srv.Close() }()
	time.Sleep(200 * time.Millisecond) // let the listener come up

	player, err := gbooster.NewPlayer(gbooster.PlayerConfig{Workload: "G6", Width: width, Height: height, Seed: 42})
	if err != nil {
		return err
	}
	defer func() { _ = player.Close() }()
	if err := player.Connect("127.0.0.1:4872"); err != nil {
		return err
	}

	start := time.Now()
	img, err := player.StepFrame(10 * time.Second)
	if err != nil {
		return err
	}
	for f := 1; f < frames; f++ {
		img, err = player.StepFrame(10 * time.Second)
		if err != nil {
			return fmt.Errorf("frame %d: %w", f, err)
		}
	}
	elapsed := time.Since(start)

	st := player.Stats()
	fmt.Printf("streamed %d frames of Cut the Rope over loopback UDP in %v (%.1f FPS)\n",
		frames, elapsed.Round(time.Millisecond), float64(frames)/elapsed.Seconds())
	fmt.Printf("frames sent=%d displayed=%d; uplink %0.1f KB/frame raw -> %0.1f KB/frame on the wire\n",
		st.FramesSent, st.FramesShown, float64(st.RawBytes)/float64(frames)/1024, float64(st.WireBytes)/float64(frames)/1024)

	out, err := os.Create("frame.png")
	if err != nil {
		return err
	}
	defer func() { _ = out.Close() }()
	if err := png.Encode(out, img); err != nil {
		return err
	}
	fmt.Println("wrote the final displayed frame to frame.png")
	select {
	case err := <-serverErr:
		if err != nil {
			return fmt.Errorf("server: %w", err)
		}
	default:
	}
	return nil
}
