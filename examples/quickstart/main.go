// Quickstart: simulate one gameplay session locally and offloaded, and
// print the paper's headline comparison — the two calls every user of
// the library starts with.
package main

import (
	"fmt"
	"os"
	"time"

	"github.com/gbooster/gbooster"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	opts := gbooster.Options{
		Workload: "G1", // GTA San Andreas, the paper's heaviest game
		Phone:    "nexus5",
		Duration: 15 * time.Minute,
		Seed:     1,
	}
	local, err := gbooster.SimulateLocal(opts)
	if err != nil {
		return err
	}
	opts.Services = []string{"shield"} // one Nvidia Shield nearby
	offload, err := gbooster.SimulateOffload(opts)
	if err != nil {
		return err
	}

	fmt.Println("GBooster quickstart: GTA San Andreas on a Nexus 5, 15 minutes")
	fmt.Printf("%-22s %12s %12s\n", "", "local", "offloaded")
	fmt.Printf("%-22s %12.1f %12.1f\n", "median FPS", local.MedianFPS, offload.MedianFPS)
	fmt.Printf("%-22s %11.0f%% %11.0f%%\n", "FPS stability", local.FPSStability*100, offload.FPSStability*100)
	fmt.Printf("%-22s %12v %12v\n", "response time",
		local.AvgResponse.Round(time.Millisecond), offload.AvgResponse.Round(time.Millisecond))
	fmt.Printf("%-22s %11.1fW %11.1fW\n", "average power", local.AvgPowerW, offload.AvgPowerW)
	fmt.Printf("\nFPS boost: +%.0f%%   energy saving: %.0f%%\n",
		(offload.MedianFPS/local.MedianFPS-1)*100,
		(1-offload.EnergyJoules/local.EnergyJoules)*100)
	return nil
}
