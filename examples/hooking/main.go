// Hooking: a guided tour of the §IV-A interception mechanism. An
// "application" resolves its GL entry points through all three paths
// the paper enumerates — direct linking, eglGetProcAddress, and
// dlopen/dlsym — first against a stock process image (calls reach the
// local GPU), then with the GBooster wrapper preloaded (calls are
// intercepted without the application changing a single line).
//
// This example deliberately reaches into the library's internal
// packages to expose the machinery the public API hides.
package main

import (
	"fmt"
	"os"

	"github.com/gbooster/gbooster/internal/gles"
	"github.com/gbooster/gbooster/internal/hook"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hooking:", err)
		os.Exit(1)
	}
}

// app resolves and calls glClearColor the way a real application in the
// given link mode would.
func app(ln *hook.Linker, mode hook.LinkMode) error {
	fn, err := hook.ResolveGL(ln, mode, "glClearColor")
	if err != nil {
		return fmt.Errorf("resolve via %v: %w", mode, err)
	}
	fn(gles.CmdClearColor(1, 0, 0, 1))
	return nil
}

func run() error {
	// A stock Android-like process: the genuine GL library backed by
	// the local (software) GPU.
	ln := hook.NewLinker()
	gpu := gles.NewGPU(64, 64)
	if _, err := hook.InstallGenuineGL(ln, gpu, nil); err != nil {
		return err
	}

	fmt.Println("1) Stock process image — all three resolution paths hit the local GPU:")
	for _, mode := range []hook.LinkMode{hook.LinkDirect, hook.LinkProcAddress, hook.LinkDlopen} {
		if err := app(ln, mode); err != nil {
			return err
		}
		fmt.Printf("   %-18s -> local GPU executed %d commands\n", mode, gpu.Ctx.Stats.Commands)
	}

	// Install GBooster: register the wrapper library, claim the GL
	// sonames, preload it (the LD_PRELOAD moment).
	var intercepted []gles.Command
	if _, err := hook.InstallWrapper(ln, "libgbooster.so", func(cmd gles.Command) {
		intercepted = append(intercepted, cmd)
	}); err != nil {
		return err
	}

	fmt.Println("\n2) Wrapper preloaded — the same application code is now intercepted:")
	before := gpu.Ctx.Stats.Commands
	for _, mode := range []hook.LinkMode{hook.LinkDirect, hook.LinkProcAddress, hook.LinkDlopen} {
		if err := app(ln, mode); err != nil {
			return err
		}
		fmt.Printf("   %-18s -> wrapper captured %d commands (local GPU still at %d)\n",
			mode, len(intercepted), gpu.Ctx.Stats.Commands)
	}
	if gpu.Ctx.Stats.Commands != before {
		return fmt.Errorf("local GPU executed commands after hooking")
	}
	if len(intercepted) != 3 {
		return fmt.Errorf("wrapper captured %d commands, want 3", len(intercepted))
	}
	fmt.Println("\nNo application code changed; the dynamic linker did all the work (paper §IV-A).")
	return nil
}
