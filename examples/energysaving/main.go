// Energysaving: reproduce the shape of the paper's Fig. 6 — normalized
// energy with offloading, and the cost of disabling the Bluetooth/WiFi
// interface switching — across game genres.
package main

import (
	"fmt"
	"os"
	"time"

	"github.com/gbooster/gbooster"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "energysaving:", err)
		os.Exit(1)
	}
}

func run() error {
	games := []struct {
		id, label string
	}{
		{"G2", "Modern Combat (action)"},
		{"G3", "Star Wars (role playing)"},
		{"G6", "Cut the Rope (puzzle)"},
		{"A1", "Ebook Reader (non-gaming)"},
	}
	fmt.Println("Normalized energy (offload / local execution, 3-minute cooled sessions)")
	fmt.Printf("  %-26s %16s %16s\n", "application", "with switching", "always-WiFi")
	for _, g := range games {
		opts := gbooster.Options{
			Workload: g.id,
			Phone:    "nexus5",
			Services: []string{"shield"},
			Duration: 3 * time.Minute,
			Seed:     3,
		}
		local, err := gbooster.SimulateLocal(opts)
		if err != nil {
			return err
		}
		withSwitch, err := gbooster.SimulateOffload(opts)
		if err != nil {
			return err
		}
		opts.DisableSwitching = true
		alwaysOn, err := gbooster.SimulateOffload(opts)
		if err != nil {
			return err
		}
		fmt.Printf("  %-26s %15.0f%% %15.0f%%\n", g.label,
			withSwitch.EnergyJoules/local.EnergyJoules*100,
			alwaysOn.EnergyJoules/local.EnergyJoules*100)
	}
	fmt.Println("\nGPU-heavy games save the most; the ARMAX-driven interface switching")
	fmt.Println("keeps WiFi asleep whenever Bluetooth can carry the stream (paper §V-B).")
	return nil
}
