package gbooster

import (
	"testing"
	"time"

	"github.com/gbooster/gbooster/internal/metrics"
	"github.com/gbooster/gbooster/internal/rudp"
)

// TestPredictiveControlSnapshot runs a real session with
// WithPredictiveControl and pins the acceptance criterion: the
// prediction/energy/thermal block rides Player.Snapshot into a
// metrics.Registry, and its collector reports without disturbing the
// other collectors.
func TestPredictiveControlSnapshot(t *testing.T) {
	const w, h = 64, 48
	player, err := NewPlayer(PlayerConfig{Workload: "G6", Width: w, Height: h, Seed: 7},
		WithPredictiveControl())
	if err != nil {
		t.Fatal(err)
	}

	srv, err := NewStreamServer(StreamServerConfig{Width: w, Height: h})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	pcC, pcS := rudp.NewMemPair(0, 11)
	go func() { _ = srv.ServeConn(pcS, pcC.Addr()) }()
	if err := player.ConnectConn("mem", pcC, pcS.Addr(), 1000); err != nil {
		t.Fatal(err)
	}

	for f := 0; f < 12; f++ {
		if _, err := player.StepFrame(5 * time.Second); err != nil {
			t.Fatalf("frame %d: %v", f, err)
		}
	}
	// Let the wall-clock control tick run at least one window so the
	// controller has observed the session's traffic.
	time.Sleep(250 * time.Millisecond)

	s := player.Snapshot()
	if s.Predict == nil {
		t.Fatal("Snapshot().Predict is nil with predictive control enabled")
	}
	if s.Predict.Frames == 0 {
		t.Errorf("predict block saw no frames (want the 12 stepped)")
	}

	reg := metrics.NewStandardRegistry()
	reg.Observe(s)
	reports := reg.Reports()
	var predictReport *metrics.Report
	for i := range reports {
		if reports[i].Collector == "predict" {
			predictReport = &reports[i]
		}
	}
	if predictReport == nil {
		t.Fatal("standard registry has no predict collector")
	}
	if v, ok := predictReport.Get("windows"); !ok || v <= 0 {
		t.Errorf("predict report windows = %v ok=%v, want > 0", v, ok)
	}

	// Close settles the radio energy accounts; the final snapshot must
	// carry total modeled energy.
	if err := player.Close(); err != nil {
		t.Fatal(err)
	}
	final := player.Snapshot()
	if final.Predict == nil || final.Predict.EnergyJoules <= 0 {
		t.Fatalf("post-close predict energy = %+v, want > 0", final.Predict)
	}
	// Close is idempotent even with the predictive tick running.
	if err := player.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestPredictDefaultOff: without the option the snapshot carries no
// predict block and dispatch stays purely reactive.
func TestPredictDefaultOff(t *testing.T) {
	player, err := NewPlayer(PlayerConfig{Workload: "G6", Width: 32, Height: 32, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer player.Close()
	if s := player.Snapshot(); s.Predict != nil {
		t.Fatalf("default player snapshot carries predict block: %+v", s.Predict)
	}
}
