package gbooster

import (
	"errors"
	"net"
	"testing"
	"time"
)

// TestFleetServesTwoPlayersOverUDP drives the public fleet surface end
// to end: one shared UDP listener, two independent Players, each
// getting its own rendered stream.
func TestFleetServesTwoPlayersOverUDP(t *testing.T) {
	probe, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no UDP loopback: %v", err)
	}
	addr := probe.LocalAddr().String()
	_ = probe.Close()

	const w, h = 96, 64
	fl, err := NewFleet(FleetConfig{Width: w, Height: h, MaxSessions: 8})
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- fl.Serve(addr) }()
	defer func() { _ = fl.Close() }()
	time.Sleep(100 * time.Millisecond)

	players := make([]*Player, 2)
	for i := range players {
		p, err := NewPlayer(PlayerConfig{Workload: "G5", Width: w, Height: h, Seed: uint64(31 + i)})
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = p.Close() }()
		if err := p.Connect(addr); err != nil {
			t.Fatalf("player %d connect: %v", i, err)
		}
		players[i] = p
	}
	for f := 0; f < 4; f++ {
		for i, p := range players {
			img, err := p.StepFrame(10 * time.Second)
			if err != nil {
				t.Fatalf("player %d frame %d: %v", i, f, err)
			}
			if img.Bounds().Dx() != w || img.Bounds().Dy() != h {
				t.Fatalf("player %d bounds %v", i, img.Bounds())
			}
		}
	}

	st := fl.Stats()
	if st.Sessions != 2 || st.Admitted != 2 {
		t.Fatalf("sessions=%d admitted=%d, want 2/2", st.Sessions, st.Admitted)
	}
	if st.Frames < 8 {
		t.Fatalf("frames=%d, want >= 8", st.Frames)
	}
	if st.Rejected != 0 {
		t.Fatalf("rejected=%d, want 0", st.Rejected)
	}
	if st.GateEntries < st.Frames {
		t.Fatalf("gate entries %d < frames %d", st.GateEntries, st.Frames)
	}

	if err := fl.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	select {
	case err := <-serveErr:
		if !errors.Is(err, ErrServerClosed) {
			t.Fatalf("Serve after Close = %v, want ErrServerClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve still blocked after Close")
	}
}
