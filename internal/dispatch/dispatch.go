// Package dispatch implements GBooster's multi-device request
// assignment (paper §VI-C). Each rendering request of workload r is
// sent to the service device j minimizing
//
//	(w_j + r)/c_j + l_j                                   (Eq. 4)
//
// where w_j is the workload already queued on j, c_j its computation
// capability, and l_j its round-trip latency to the user device.
// Because this rule does not guarantee completion order, results are
// re-sequenced by a reorder buffer before display.
package dispatch

import (
	"errors"
	"fmt"
	"time"
)

// Errors.
var (
	ErrNoDevices  = errors.New("dispatch: no service devices")
	ErrBadRequest = errors.New("dispatch: invalid request")
	ErrDuplicate  = errors.New("dispatch: duplicate sequence number")
)

// Device is one dispatch target with Eq. 4's parameters.
type Device struct {
	ID string
	// Capability is c^j in workload units per second.
	Capability float64
	// RTT is l^j.
	RTT time.Duration

	queued float64 // w^j: outstanding workload
}

// NewDevice validates and builds a device.
func NewDevice(id string, capability float64, rtt time.Duration) (*Device, error) {
	if capability <= 0 {
		return nil, fmt.Errorf("%w: capability %v", ErrBadRequest, capability)
	}
	if rtt < 0 {
		return nil, fmt.Errorf("%w: rtt %v", ErrBadRequest, rtt)
	}
	return &Device{ID: id, Capability: capability, RTT: rtt}, nil
}

// Queued returns the outstanding workload w^j.
func (d *Device) Queued() float64 { return d.queued }

// cost evaluates Eq. 4 for a request of workload r.
func (d *Device) cost(r float64) time.Duration {
	sec := (d.queued + r) / d.Capability
	return time.Duration(sec*float64(time.Second)) + d.RTT
}

// Scheduler assigns requests to devices. Not safe for concurrent use;
// the session loop owns it.
type Scheduler struct {
	devices []*Device

	// Stats accumulate assignment behaviour.
	Stats Stats
}

// Stats counts scheduler activity.
type Stats struct {
	Assigned  int
	PerDevice map[string]int
	TotalWork float64
}

// NewScheduler builds a scheduler over the devices.
func NewScheduler(devices ...*Device) (*Scheduler, error) {
	if len(devices) == 0 {
		return nil, ErrNoDevices
	}
	return &Scheduler{
		devices: append([]*Device(nil), devices...),
		Stats:   Stats{PerDevice: make(map[string]int)},
	}, nil
}

// Devices returns the scheduler's devices (shared, not copied — the
// scheduler owns their queue state).
func (s *Scheduler) Devices() []*Device { return s.devices }

// Assign picks the Eq. 4-minimal device for a request of workload r,
// enqueues the work on it, and returns the device along with the
// estimated completion latency.
func (s *Scheduler) Assign(r float64) (*Device, time.Duration, error) {
	if r < 0 {
		return nil, 0, fmt.Errorf("%w: workload %v", ErrBadRequest, r)
	}
	var best *Device
	var bestCost time.Duration
	for _, d := range s.devices {
		c := d.cost(r)
		if best == nil || c < bestCost {
			best, bestCost = d, c
		}
	}
	best.queued += r
	s.Stats.Assigned++
	s.Stats.PerDevice[best.ID]++
	s.Stats.TotalWork += r
	return best, bestCost, nil
}

// Complete releases workload r from device d's queue when its result
// has been produced.
func (s *Scheduler) Complete(d *Device, r float64) {
	if d == nil || r < 0 {
		return
	}
	d.queued -= r
	if d.queued < 0 {
		d.queued = 0
	}
}

// Reorder releases out-of-order results in sequence-number order
// (§VI-C: "our system keeps track of the sequence numbers of the
// requests, such that we can display their results in a proper
// order"). The zero value is NOT ready; use NewReorder.
type Reorder[T any] struct {
	next    uint64
	pending map[uint64]T
	// MaxPending bounds buffered out-of-order results.
	maxPending int
}

// NewReorder returns a buffer expecting sequence numbers from first,
// holding at most maxPending out-of-order entries (<=0 means 1024).
func NewReorder[T any](first uint64, maxPending int) *Reorder[T] {
	if maxPending <= 0 {
		maxPending = 1024
	}
	return &Reorder[T]{next: first, pending: make(map[uint64]T), maxPending: maxPending}
}

// Next returns the sequence number the buffer is waiting for.
func (r *Reorder[T]) Next() uint64 { return r.next }

// Pending returns the number of buffered out-of-order results.
func (r *Reorder[T]) Pending() int { return len(r.pending) }

// Push inserts a result and returns every result now releasable in
// order (possibly none).
func (r *Reorder[T]) Push(seq uint64, v T) ([]T, error) {
	if seq < r.next {
		return nil, fmt.Errorf("%w: seq %d already released", ErrDuplicate, seq)
	}
	if _, dup := r.pending[seq]; dup {
		return nil, fmt.Errorf("%w: seq %d buffered twice", ErrDuplicate, seq)
	}
	if len(r.pending) >= r.maxPending {
		return nil, fmt.Errorf("dispatch: reorder buffer full (%d pending, next=%d)", len(r.pending), r.next)
	}
	r.pending[seq] = v
	var out []T
	for {
		v, ok := r.pending[r.next]
		if !ok {
			break
		}
		delete(r.pending, r.next)
		out = append(out, v)
		r.next++
	}
	return out, nil
}
