// Package dispatch implements GBooster's multi-device request
// assignment (paper §VI-C). Each rendering request of workload r is
// sent to the service device j minimizing
//
//	(w_j + r)/c_j + l_j                                   (Eq. 4)
//
// where w_j is the workload already queued on j, c_j its computation
// capability, and l_j its round-trip latency to the user device.
// Because this rule does not guarantee completion order, results are
// re-sequenced by a reorder buffer before display.
package dispatch

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// Errors.
var (
	ErrNoDevices  = errors.New("dispatch: no service devices")
	ErrBadRequest = errors.New("dispatch: invalid request")
	ErrDuplicate  = errors.New("dispatch: duplicate sequence number")
	// ErrNoHealthyDevices means every device is evicted, joining, or
	// quarantined: the request cannot be placed.
	ErrNoHealthyDevices = errors.New("dispatch: no healthy service devices")
)

// Health is a device's position in the failure state machine:
//
//	Healthy --failure--> Suspect --failure--> Evicted
//	Suspect --success--> Healthy
//	Evicted --probe due, bootstrap begun--> Joining
//	Joining --fingerprint ack matched--> Suspect (probation)
//	Joining --failure or mismatch--> Evicted
//
// Evicted devices receive no traffic; once their probe timer expires
// they become bootstrap candidates (NeedsBootstrap), not assignment
// candidates — an evicted device's mirrored caches and GL state are
// stale (state updates skip it), so it only re-enters the rotation
// after a bootstrap restore whose state fingerprint it has acked
// (FinishJoin). A quarantined device (transport dead) never returns.
type Health int

const (
	Healthy Health = iota
	Suspect
	Evicted
	// Joining marks a device mid-handoff: a bootstrap stream is in
	// flight and the device receives state updates (to stay current) but
	// no frame batches until its fingerprint ack admits it.
	Joining
)

// String renders the health state.
func (h Health) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case Suspect:
		return "suspect"
	case Evicted:
		return "evicted"
	case Joining:
		return "joining"
	default:
		return fmt.Sprintf("health(%d)", int(h))
	}
}

// Device is one dispatch target with Eq. 4's parameters.
type Device struct {
	ID string
	// Capability is c^j in workload units per second.
	Capability float64
	// RTT is l^j.
	RTT time.Duration

	queued float64 // w^j: outstanding workload

	health      Health
	failures    int           // consecutive failures since last success
	probeAt     time.Time     // when an evicted device may be probed
	cooldown    time.Duration // current eviction cool-down (doubles per re-eviction)
	quarantined bool          // transport is dead: never readmit
}

// Health returns the device's current failure state.
func (d *Device) Health() Health { return d.health }

// Quarantined reports whether the device is permanently out of service.
func (d *Device) Quarantined() bool { return d.quarantined }

// NewDevice validates and builds a device.
func NewDevice(id string, capability float64, rtt time.Duration) (*Device, error) {
	if capability <= 0 {
		return nil, fmt.Errorf("%w: capability %v", ErrBadRequest, capability)
	}
	if rtt < 0 {
		return nil, fmt.Errorf("%w: rtt %v", ErrBadRequest, rtt)
	}
	return &Device{ID: id, Capability: capability, RTT: rtt}, nil
}

// Queued returns the outstanding workload w^j.
func (d *Device) Queued() float64 { return d.queued }

// SetRTT refreshes l^j from a live latency measurement (e.g. the
// transport's smoothed RTT), so Eq. 4 ranks devices by current path
// latency rather than the configured estimate. Non-positive samples
// are ignored.
func (d *Device) SetRTT(rtt time.Duration) {
	if rtt > 0 {
		d.RTT = rtt
	}
}

// cost evaluates Eq. 4 for a request of workload r.
func (d *Device) cost(r float64) time.Duration {
	sec := (d.queued + r) / d.Capability
	return time.Duration(sec*float64(time.Second)) + d.RTT
}

// Scheduler assigns requests to devices. Not safe for concurrent use;
// the session loop owns it.
type Scheduler struct {
	devices []*Device

	// EvictAfter is the consecutive-failure count that evicts a device
	// (default 2: one strike suspends, the second evicts).
	EvictAfter int
	// ProbeAfter is the cool-down before an evicted device becomes a
	// readmission candidate (default 1s, doubling per re-eviction up to
	// 16x).
	ProbeAfter time.Duration
	// Now is the scheduler's clock (default time.Now), a test hook.
	Now func() time.Time

	// forecast, when set, returns the workload expected to arrive within
	// the control horizon (same units as request workloads). Eq. 4 then
	// evaluates each candidate against the predicted near-future load
	// instead of only the request at hand — see SetForecast.
	forecast func() float64

	// Stats accumulate assignment behaviour.
	Stats Stats
}

// Stats counts scheduler activity.
type Stats struct {
	Assigned  int
	PerDevice map[string]int
	TotalWork float64
	// Reassigned counts orphaned requests moved to a replacement
	// device; Evictions and Readmissions count health transitions.
	Reassigned   int
	Evictions    int
	Readmissions int
}

// NewScheduler builds a scheduler over the devices.
func NewScheduler(devices ...*Device) (*Scheduler, error) {
	if len(devices) == 0 {
		return nil, ErrNoDevices
	}
	return &Scheduler{
		devices:    append([]*Device(nil), devices...),
		EvictAfter: 2,
		ProbeAfter: time.Second,
		Now:        time.Now,
		Stats:      Stats{PerDevice: make(map[string]int)},
	}, nil
}

// AddDevice attaches another device to a live scheduler, preserving
// accumulated statistics and existing queue state.
func (s *Scheduler) AddDevice(d *Device) error {
	if d == nil {
		return fmt.Errorf("%w: nil device", ErrBadRequest)
	}
	for _, have := range s.devices {
		if have == d {
			return fmt.Errorf("%w: device %q already attached", ErrBadRequest, d.ID)
		}
	}
	s.devices = append(s.devices, d)
	return nil
}

// Devices returns the scheduler's devices (shared, not copied — the
// scheduler owns their queue state).
func (s *Scheduler) Devices() []*Device { return s.devices }

// assignable reports whether d may receive frame traffic. Only Healthy
// and Suspect devices qualify: Evicted devices hold stale mirrors and
// Joining devices are still proving their bootstrap restore.
func (s *Scheduler) assignable(d *Device) bool {
	return d.health == Healthy || d.health == Suspect
}

// SetForecast installs (or clears, with nil) a predicted-load hook.
// When present, pick evaluates Eq. 4 with r inflated by the forecast —
// `(w_j + r + r̂)/c_j + l_j` — so device selection anticipates the
// burst the predictor sees coming: a high-capability device wins
// *before* the burst lands, instead of after queueing has already
// penalized the low-latency pick. Only the real request workload is
// enqueued; the forecast only biases selection.
func (s *Scheduler) SetForecast(f func() float64) { s.forecast = f }

// forecastBias returns the current prediction, clamped to non-negative
// and finite (NaN fails the comparison and yields zero).
func (s *Scheduler) forecastBias() float64 {
	if s.forecast == nil {
		return 0
	}
	if f := s.forecast(); f > 0 && f < math.MaxFloat64 {
		return f
	}
	return 0
}

// pick runs Eq. 4 over the assignable devices not rejected by skip.
func (s *Scheduler) pick(r float64, skip func(*Device) bool) (*Device, time.Duration, error) {
	if r < 0 {
		return nil, 0, fmt.Errorf("%w: workload %v", ErrBadRequest, r)
	}
	bias := s.forecastBias()
	var best *Device
	var bestCost time.Duration
	for _, d := range s.devices {
		if !s.assignable(d) || (skip != nil && skip(d)) {
			continue
		}
		c := d.cost(r + bias)
		if best == nil || c < bestCost {
			best, bestCost = d, c
		}
	}
	if best == nil {
		return nil, 0, ErrNoHealthyDevices
	}
	best.queued += r
	s.Stats.Assigned++
	s.Stats.PerDevice[best.ID]++
	s.Stats.TotalWork += r
	return best, bestCost, nil
}

// NeedsBootstrap reports whether d is an eligible bootstrap candidate:
// evicted, not quarantined, and past its probe cool-down. The caller
// starts a handoff with MarkJoining and resolves it with FinishJoin.
func (s *Scheduler) NeedsBootstrap(d *Device) bool {
	return d != nil && d.health == Evicted && !d.quarantined && !s.Now().Before(d.probeAt)
}

// MarkJoining moves d into the Joining state for the duration of a
// bootstrap handoff: it receives state updates but no frame batches.
// Quarantined devices cannot join.
func (s *Scheduler) MarkJoining(d *Device) {
	if d == nil || d.quarantined || d.health == Joining {
		return
	}
	d.health = Joining
}

// FinishJoin resolves a handoff. On success (the device acked the
// bootstrap's state fingerprint) it enters the rotation on probation —
// a single further failure re-evicts it, one success heals it — and
// counts as a readmission. On failure it is re-evicted with a doubled
// cool-down. A no-op unless d is Joining.
func (s *Scheduler) FinishJoin(d *Device, ok bool) {
	if d == nil || d.health != Joining {
		return
	}
	if !ok {
		s.evict(d)
		return
	}
	d.health = Suspect
	d.failures = s.EvictAfter - 1
	s.Stats.Readmissions++
}

// Drain administratively evicts d: it stops receiving frames and state
// updates so its owner can migrate in-flight work and detach (or later
// readmit it via bootstrap). Unlike a failure eviction, draining does
// not grow the cool-down.
func (s *Scheduler) Drain(d *Device) {
	if d == nil || d.health == Evicted {
		return
	}
	d.health = Evicted
	d.probeAt = s.Now().Add(s.ProbeAfter)
	s.Stats.Evictions++
}

// Assign picks the Eq. 4-minimal device for a request of workload r,
// enqueues the work on it, and returns the device along with the
// estimated completion latency. Evicted and Joining devices are never
// assigned; an evicted device returns via the bootstrap handoff
// (NeedsBootstrap / MarkJoining / FinishJoin).
func (s *Scheduler) Assign(r float64) (*Device, time.Duration, error) {
	return s.pick(r, nil)
}

// Reassign places an orphaned request of workload r on a device other
// than the excluded ones (those that already failed it). The caller is
// responsible for releasing the request's workload from its previous
// device via Complete.
func (s *Scheduler) Reassign(r float64, exclude ...*Device) (*Device, time.Duration, error) {
	d, cost, err := s.pick(r, func(d *Device) bool {
		for _, x := range exclude {
			if d == x {
				return true
			}
		}
		return false
	})
	if err != nil {
		return nil, 0, err
	}
	s.Stats.Reassigned++
	return d, cost, nil
}

// ReportFailure records that d failed to answer a request in time:
// one strike suspends a healthy device, EvictAfter strikes evict it
// until its readmission probe. Returns the resulting health.
func (s *Scheduler) ReportFailure(d *Device) Health {
	if d == nil {
		return Healthy
	}
	d.failures++
	switch {
	case d.health == Evicted:
		// Already out; extend nothing (probe timer governs return).
	case d.health == Joining:
		// The handoff's transport failed mid-bootstrap: back out.
		s.evict(d)
	case d.failures >= s.EvictAfter:
		s.evict(d)
	default:
		d.health = Suspect
	}
	return d.health
}

// ReportSuccess records that d produced a result: strikes clear and the
// device returns to full health. Evicted and Joining devices are NOT
// healed — a late result from a pre-eviction dispatch proves the device
// is alive, but its mirrored caches and GL state have diverged (state
// updates skip evicted devices), so only a fingerprint-acked bootstrap
// (FinishJoin) may return it to the rotation.
func (s *Scheduler) ReportSuccess(d *Device) {
	if d == nil || d.quarantined || d.health == Evicted || d.health == Joining {
		return
	}
	d.health = Healthy
	d.failures = 0
	d.cooldown = 0
}

// Quarantine permanently evicts d: its transport is dead (e.g. the
// connection closed), so it must never be readmitted — a revived
// server needs a fresh attach.
func (s *Scheduler) Quarantine(d *Device) {
	if d == nil || d.quarantined {
		return
	}
	if d.health != Evicted {
		s.evict(d)
	}
	d.quarantined = true
}

// evict transitions d to Evicted and arms its readmission probe with an
// exponentially growing cool-down.
func (s *Scheduler) evict(d *Device) {
	d.health = Evicted
	if d.cooldown <= 0 {
		d.cooldown = s.ProbeAfter
	} else if d.cooldown < 16*s.ProbeAfter {
		d.cooldown *= 2
	}
	d.probeAt = s.Now().Add(d.cooldown)
	s.Stats.Evictions++
}

// Complete releases workload r from device d's queue when its result
// has been produced.
func (s *Scheduler) Complete(d *Device, r float64) {
	if d == nil || r < 0 {
		return
	}
	d.queued -= r
	if d.queued < 0 {
		d.queued = 0
	}
}

// Reorder releases out-of-order results in sequence-number order
// (§VI-C: "our system keeps track of the sequence numbers of the
// requests, such that we can display their results in a proper
// order"). The zero value is NOT ready; use NewReorder.
type Reorder[T any] struct {
	next    uint64
	pending map[uint64]T
	// skipped holds abandoned sequence numbers (lost on every device):
	// when next reaches one, the buffer advances past it instead of
	// wedging the display. A late result for a still-unreached skipped
	// seq cancels the tombstone and is delivered normally.
	skipped map[uint64]struct{}
	// MaxPending bounds buffered out-of-order results.
	maxPending int
	// skippedTotal counts sequence numbers the buffer advanced past
	// without a result.
	skippedTotal int
}

// NewReorder returns a buffer expecting sequence numbers from first,
// holding at most maxPending out-of-order entries (<=0 means 1024).
func NewReorder[T any](first uint64, maxPending int) *Reorder[T] {
	if maxPending <= 0 {
		maxPending = 1024
	}
	return &Reorder[T]{
		next:       first,
		pending:    make(map[uint64]T),
		skipped:    make(map[uint64]struct{}),
		maxPending: maxPending,
	}
}

// Next returns the sequence number the buffer is waiting for.
func (r *Reorder[T]) Next() uint64 { return r.next }

// Pending returns the number of buffered out-of-order results.
func (r *Reorder[T]) Pending() int { return len(r.pending) }

// Skipped returns how many sequence numbers were released without a
// result (gap-skips that actually took effect).
func (r *Reorder[T]) Skipped() int { return r.skippedTotal }

// Push inserts a result and returns every result now releasable in
// order (possibly none).
func (r *Reorder[T]) Push(seq uint64, v T) ([]T, error) {
	if seq < r.next {
		return nil, fmt.Errorf("%w: seq %d already released", ErrDuplicate, seq)
	}
	if _, dup := r.pending[seq]; dup {
		return nil, fmt.Errorf("%w: seq %d buffered twice", ErrDuplicate, seq)
	}
	if len(r.pending) >= r.maxPending {
		return nil, fmt.Errorf("dispatch: reorder buffer full (%d pending, next=%d)", len(r.pending), r.next)
	}
	// A late result for an abandoned seq un-abandons it: the display
	// recovers the frame instead of showing a gap.
	delete(r.skipped, seq)
	r.pending[seq] = v
	return r.drain(), nil
}

// Skip abandons seq — its result was lost on every device — so the
// display can advance past it. Results releasable as a consequence are
// returned. Skipping an already-released or buffered seq is a no-op
// (beyond draining).
func (r *Reorder[T]) Skip(seq uint64) []T {
	if seq < r.next {
		return nil
	}
	if _, ok := r.pending[seq]; !ok {
		r.skipped[seq] = struct{}{}
	}
	return r.drain()
}

// drain releases the in-order run at the head of the buffer, advancing
// past abandoned sequence numbers.
func (r *Reorder[T]) drain() []T {
	var out []T
	for {
		if v, ok := r.pending[r.next]; ok {
			delete(r.pending, r.next)
			out = append(out, v)
			r.next++
			continue
		}
		if _, ok := r.skipped[r.next]; ok {
			delete(r.skipped, r.next)
			r.skippedTotal++
			r.next++
			continue
		}
		return out
	}
}
