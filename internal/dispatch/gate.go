package dispatch

import (
	"sync/atomic"
)

// Gate bounds how many sessions render on the shared GPU backend at
// once — the fleet-side complement of Eq. 4's device picking. Where
// dispatch.Pick spreads one user's requests over many service devices,
// Gate schedules many users' requests onto one service device's
// rasterizer: admission beyond the configured width queues (FIFO-ish,
// via channel semantics) instead of oversubscribing the render workers
// and thrashing every session's latency. CrystalGPU's batching insight
// applies: a bounded number of large, back-to-back rasterizer runs
// beats an unbounded number of interleaved ones.
//
// The zero-width Gate is unlimited: Enter/Leave become counters only,
// so a fleet can run ungated and still report occupancy.
type Gate struct {
	slots chan struct{}

	entries atomic.Int64 // total Enter calls admitted
	waits   atomic.Int64 // Enter calls that found the gate full
	active  atomic.Int64 // sessions currently inside
}

// NewGate builds a gate admitting at most width concurrent renders;
// width <= 0 means unlimited.
func NewGate(width int) *Gate {
	g := &Gate{}
	if width > 0 {
		g.slots = make(chan struct{}, width)
	}
	return g
}

// Enter blocks until a render slot is free (or immediately if the gate
// is unlimited), or until cancel is closed, in which case it reports
// false and the caller must not render. A nil cancel never aborts.
func (g *Gate) Enter(cancel <-chan struct{}) bool {
	if g.slots != nil {
		select {
		case g.slots <- struct{}{}:
		default:
			// Full: record the contention, then wait for a slot.
			g.waits.Add(1)
			select {
			case g.slots <- struct{}{}:
			case <-cancel:
				return false
			}
		}
	}
	g.entries.Add(1)
	g.active.Add(1)
	return true
}

// Leave releases the slot taken by a successful Enter.
func (g *Gate) Leave() {
	g.active.Add(-1)
	if g.slots != nil {
		<-g.slots
	}
}

// GateStats is a point-in-time occupancy snapshot.
type GateStats struct {
	// Width is the configured concurrency bound (0 = unlimited).
	Width int
	// Entries counts renders admitted; Waits how many of those had to
	// queue behind a full gate first — the fleet's GPU-contention
	// signal.
	Entries, Waits int64
	// Active is the number of sessions rendering right now.
	Active int64
}

// Stats returns the gate's counters.
func (g *Gate) Stats() GateStats {
	return GateStats{
		Width:   cap(g.slots),
		Entries: g.entries.Load(),
		Waits:   g.waits.Load(),
		Active:  g.active.Load(),
	}
}
