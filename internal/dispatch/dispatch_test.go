package dispatch

import (
	"errors"
	"testing"
	"testing/quick"
	"time"
)

func mustDevice(t *testing.T, id string, cap float64, rtt time.Duration) *Device {
	t.Helper()
	d, err := NewDevice(id, cap, rtt)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewDeviceValidation(t *testing.T) {
	if _, err := NewDevice("x", 0, 0); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("zero capability error = %v", err)
	}
	if _, err := NewDevice("x", 1, -time.Second); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("negative rtt error = %v", err)
	}
}

func TestNewSchedulerEmpty(t *testing.T) {
	if _, err := NewScheduler(); !errors.Is(err, ErrNoDevices) {
		t.Fatalf("empty scheduler error = %v", err)
	}
}

func TestAssignPicksIdleFasterDevice(t *testing.T) {
	fast := mustDevice(t, "fast", 100, time.Millisecond)
	slow := mustDevice(t, "slow", 10, time.Millisecond)
	s, err := NewScheduler(fast, slow)
	if err != nil {
		t.Fatal(err)
	}
	d, est, err := s.Assign(50)
	if err != nil {
		t.Fatal(err)
	}
	if d != fast {
		t.Fatalf("assigned to %s, want fast", d.ID)
	}
	// Eq. 4: 50/100 s + 1 ms.
	want := 500*time.Millisecond + time.Millisecond
	if est != want {
		t.Fatalf("estimate = %v, want %v", est, want)
	}
}

func TestAssignAccountsQueueing(t *testing.T) {
	a := mustDevice(t, "a", 100, 0)
	b := mustDevice(t, "b", 100, 0)
	s, err := NewScheduler(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Equal devices: work alternates because queues grow.
	d1, _, _ := s.Assign(10)
	d2, _, _ := s.Assign(10)
	if d1 == d2 {
		t.Fatalf("both requests landed on %s despite queueing", d1.ID)
	}
}

func TestAssignRespectsLatency(t *testing.T) {
	near := mustDevice(t, "near", 100, time.Millisecond)
	far := mustDevice(t, "far", 100, 500*time.Millisecond)
	s, err := NewScheduler(near, far)
	if err != nil {
		t.Fatal(err)
	}
	// Small requests: latency dominates; everything goes near until the
	// queue penalty outweighs 499 ms.
	for i := 0; i < 5; i++ {
		d, _, _ := s.Assign(1)
		if d != near {
			t.Fatalf("request %d went to far too early", i)
		}
	}
	// Huge backlog eventually justifies the far device.
	sent := false
	for i := 0; i < 200; i++ {
		d, _, _ := s.Assign(30)
		if d == far {
			sent = true
			break
		}
	}
	if !sent {
		t.Fatal("far device never used despite backlog")
	}
}

func TestCompleteReleasesWork(t *testing.T) {
	a := mustDevice(t, "a", 100, 0)
	s, err := NewScheduler(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Assign(40); err != nil {
		t.Fatal(err)
	}
	if a.Queued() != 40 {
		t.Fatalf("queued = %v", a.Queued())
	}
	s.Complete(a, 40)
	if a.Queued() != 0 {
		t.Fatalf("queued after complete = %v", a.Queued())
	}
	// Over-completion clamps at zero; nil device is a no-op.
	s.Complete(a, 100)
	s.Complete(nil, 10)
	if a.Queued() != 0 {
		t.Fatalf("queued clamped = %v", a.Queued())
	}
}

func TestAssignNegativeWorkload(t *testing.T) {
	s, err := NewScheduler(mustDevice(t, "a", 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Assign(-1); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("negative workload error = %v", err)
	}
}

func TestSchedulerStats(t *testing.T) {
	a := mustDevice(t, "a", 100, 0)
	b := mustDevice(t, "b", 50, 0)
	s, err := NewScheduler(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		d, _, _ := s.Assign(10)
		s.Complete(d, 10)
	}
	if s.Stats.Assigned != 30 || s.Stats.TotalWork != 300 {
		t.Fatalf("stats %+v", s.Stats)
	}
	// With completion after every assign, the faster device always
	// wins ties via lower service time.
	if s.Stats.PerDevice["a"] != 30 {
		t.Fatalf("per-device: %v", s.Stats.PerDevice)
	}
}

func TestHeterogeneousThroughputShares(t *testing.T) {
	// In steady state with queues draining at service rate, a device
	// twice as capable should take roughly twice the requests.
	a := mustDevice(t, "2x", 200, 0)
	b := mustDevice(t, "1x", 100, 0)
	s, err := NewScheduler(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate time steps: each step assigns one request and drains
	// each queue by capability·dt.
	const dt = 0.01
	for i := 0; i < 3000; i++ {
		if _, _, err := s.Assign(3); err != nil {
			t.Fatal(err)
		}
		for _, d := range s.Devices() {
			drain := d.Capability * dt
			if drain > d.Queued() {
				drain = d.Queued()
			}
			s.Complete(d, drain)
		}
	}
	ratio := float64(s.Stats.PerDevice["2x"]) / float64(s.Stats.PerDevice["1x"])
	if ratio < 1.5 || ratio > 2.8 {
		t.Fatalf("assignment ratio = %.2f, want ~2", ratio)
	}
}

func TestReorderInOrder(t *testing.T) {
	r := NewReorder[string](0, 0)
	out, err := r.Push(0, "a")
	if err != nil || len(out) != 1 || out[0] != "a" {
		t.Fatalf("push 0: %v %v", out, err)
	}
	out, err = r.Push(1, "b")
	if err != nil || len(out) != 1 || out[0] != "b" {
		t.Fatalf("push 1: %v %v", out, err)
	}
}

func TestReorderOutOfOrder(t *testing.T) {
	r := NewReorder[int](0, 0)
	out, err := r.Push(2, 2)
	if err != nil || len(out) != 0 {
		t.Fatalf("push 2: %v %v", out, err)
	}
	out, err = r.Push(1, 1)
	if err != nil || len(out) != 0 {
		t.Fatalf("push 1: %v %v", out, err)
	}
	if r.Pending() != 2 || r.Next() != 0 {
		t.Fatalf("pending=%d next=%d", r.Pending(), r.Next())
	}
	out, err = r.Push(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 || out[0] != 0 || out[1] != 1 || out[2] != 2 {
		t.Fatalf("release order = %v", out)
	}
	if r.Pending() != 0 || r.Next() != 3 {
		t.Fatalf("state after drain: pending=%d next=%d", r.Pending(), r.Next())
	}
}

func TestReorderDuplicates(t *testing.T) {
	r := NewReorder[int](0, 0)
	if _, err := r.Push(0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Push(0, 0); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("released-dup error = %v", err)
	}
	if _, err := r.Push(5, 5); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Push(5, 5); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("buffered-dup error = %v", err)
	}
}

func TestReorderCapacity(t *testing.T) {
	r := NewReorder[int](0, 2)
	if _, err := r.Push(1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Push(2, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Push(3, 3); err == nil {
		t.Fatal("over-capacity push accepted")
	}
}

func TestReorderPropertyAnyPermutationReleasesInOrder(t *testing.T) {
	check := func(permSeed uint64, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		order := make([]uint64, n)
		for i := range order {
			order[i] = uint64(i)
		}
		// Fisher-Yates with a simple LCG.
		state := permSeed | 1
		for i := n - 1; i > 0; i-- {
			state = state*6364136223846793005 + 1442695040888963407
			j := int(state % uint64(i+1))
			order[i], order[j] = order[j], order[i]
		}
		r := NewReorder[uint64](0, n+1)
		var released []uint64
		for _, seq := range order {
			out, err := r.Push(seq, seq)
			if err != nil {
				return false
			}
			released = append(released, out...)
		}
		if len(released) != n {
			return false
		}
		for i, v := range released {
			if v != uint64(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
