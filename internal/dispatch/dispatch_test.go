package dispatch

import (
	"errors"
	"testing"
	"testing/quick"
	"time"
)

func mustDevice(t *testing.T, id string, cap float64, rtt time.Duration) *Device {
	t.Helper()
	d, err := NewDevice(id, cap, rtt)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewDeviceValidation(t *testing.T) {
	if _, err := NewDevice("x", 0, 0); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("zero capability error = %v", err)
	}
	if _, err := NewDevice("x", 1, -time.Second); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("negative rtt error = %v", err)
	}
}

func TestNewSchedulerEmpty(t *testing.T) {
	if _, err := NewScheduler(); !errors.Is(err, ErrNoDevices) {
		t.Fatalf("empty scheduler error = %v", err)
	}
}

func TestAssignPicksIdleFasterDevice(t *testing.T) {
	fast := mustDevice(t, "fast", 100, time.Millisecond)
	slow := mustDevice(t, "slow", 10, time.Millisecond)
	s, err := NewScheduler(fast, slow)
	if err != nil {
		t.Fatal(err)
	}
	d, est, err := s.Assign(50)
	if err != nil {
		t.Fatal(err)
	}
	if d != fast {
		t.Fatalf("assigned to %s, want fast", d.ID)
	}
	// Eq. 4: 50/100 s + 1 ms.
	want := 500*time.Millisecond + time.Millisecond
	if est != want {
		t.Fatalf("estimate = %v, want %v", est, want)
	}
}

func TestAssignAccountsQueueing(t *testing.T) {
	a := mustDevice(t, "a", 100, 0)
	b := mustDevice(t, "b", 100, 0)
	s, err := NewScheduler(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Equal devices: work alternates because queues grow.
	d1, _, _ := s.Assign(10)
	d2, _, _ := s.Assign(10)
	if d1 == d2 {
		t.Fatalf("both requests landed on %s despite queueing", d1.ID)
	}
}

func TestAssignRespectsLatency(t *testing.T) {
	near := mustDevice(t, "near", 100, time.Millisecond)
	far := mustDevice(t, "far", 100, 500*time.Millisecond)
	s, err := NewScheduler(near, far)
	if err != nil {
		t.Fatal(err)
	}
	// Small requests: latency dominates; everything goes near until the
	// queue penalty outweighs 499 ms.
	for i := 0; i < 5; i++ {
		d, _, _ := s.Assign(1)
		if d != near {
			t.Fatalf("request %d went to far too early", i)
		}
	}
	// Huge backlog eventually justifies the far device.
	sent := false
	for i := 0; i < 200; i++ {
		d, _, _ := s.Assign(30)
		if d == far {
			sent = true
			break
		}
	}
	if !sent {
		t.Fatal("far device never used despite backlog")
	}
}

func TestCompleteReleasesWork(t *testing.T) {
	a := mustDevice(t, "a", 100, 0)
	s, err := NewScheduler(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Assign(40); err != nil {
		t.Fatal(err)
	}
	if a.Queued() != 40 {
		t.Fatalf("queued = %v", a.Queued())
	}
	s.Complete(a, 40)
	if a.Queued() != 0 {
		t.Fatalf("queued after complete = %v", a.Queued())
	}
	// Over-completion clamps at zero; nil device is a no-op.
	s.Complete(a, 100)
	s.Complete(nil, 10)
	if a.Queued() != 0 {
		t.Fatalf("queued clamped = %v", a.Queued())
	}
}

func TestAssignNegativeWorkload(t *testing.T) {
	s, err := NewScheduler(mustDevice(t, "a", 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Assign(-1); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("negative workload error = %v", err)
	}
}

func TestSchedulerStats(t *testing.T) {
	a := mustDevice(t, "a", 100, 0)
	b := mustDevice(t, "b", 50, 0)
	s, err := NewScheduler(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		d, _, _ := s.Assign(10)
		s.Complete(d, 10)
	}
	if s.Stats.Assigned != 30 || s.Stats.TotalWork != 300 {
		t.Fatalf("stats %+v", s.Stats)
	}
	// With completion after every assign, the faster device always
	// wins ties via lower service time.
	if s.Stats.PerDevice["a"] != 30 {
		t.Fatalf("per-device: %v", s.Stats.PerDevice)
	}
}

func TestHeterogeneousThroughputShares(t *testing.T) {
	// In steady state with queues draining at service rate, a device
	// twice as capable should take roughly twice the requests.
	a := mustDevice(t, "2x", 200, 0)
	b := mustDevice(t, "1x", 100, 0)
	s, err := NewScheduler(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate time steps: each step assigns one request and drains
	// each queue by capability·dt.
	const dt = 0.01
	for i := 0; i < 3000; i++ {
		if _, _, err := s.Assign(3); err != nil {
			t.Fatal(err)
		}
		for _, d := range s.Devices() {
			drain := d.Capability * dt
			if drain > d.Queued() {
				drain = d.Queued()
			}
			s.Complete(d, drain)
		}
	}
	ratio := float64(s.Stats.PerDevice["2x"]) / float64(s.Stats.PerDevice["1x"])
	if ratio < 1.5 || ratio > 2.8 {
		t.Fatalf("assignment ratio = %.2f, want ~2", ratio)
	}
}

func TestReorderInOrder(t *testing.T) {
	r := NewReorder[string](0, 0)
	out, err := r.Push(0, "a")
	if err != nil || len(out) != 1 || out[0] != "a" {
		t.Fatalf("push 0: %v %v", out, err)
	}
	out, err = r.Push(1, "b")
	if err != nil || len(out) != 1 || out[0] != "b" {
		t.Fatalf("push 1: %v %v", out, err)
	}
}

func TestReorderOutOfOrder(t *testing.T) {
	r := NewReorder[int](0, 0)
	out, err := r.Push(2, 2)
	if err != nil || len(out) != 0 {
		t.Fatalf("push 2: %v %v", out, err)
	}
	out, err = r.Push(1, 1)
	if err != nil || len(out) != 0 {
		t.Fatalf("push 1: %v %v", out, err)
	}
	if r.Pending() != 2 || r.Next() != 0 {
		t.Fatalf("pending=%d next=%d", r.Pending(), r.Next())
	}
	out, err = r.Push(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 || out[0] != 0 || out[1] != 1 || out[2] != 2 {
		t.Fatalf("release order = %v", out)
	}
	if r.Pending() != 0 || r.Next() != 3 {
		t.Fatalf("state after drain: pending=%d next=%d", r.Pending(), r.Next())
	}
}

func TestReorderDuplicates(t *testing.T) {
	r := NewReorder[int](0, 0)
	if _, err := r.Push(0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Push(0, 0); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("released-dup error = %v", err)
	}
	if _, err := r.Push(5, 5); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Push(5, 5); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("buffered-dup error = %v", err)
	}
}

func TestReorderCapacity(t *testing.T) {
	r := NewReorder[int](0, 2)
	if _, err := r.Push(1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Push(2, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Push(3, 3); err == nil {
		t.Fatal("over-capacity push accepted")
	}
}

func TestReorderPropertyAnyPermutationReleasesInOrder(t *testing.T) {
	check := func(permSeed uint64, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		order := make([]uint64, n)
		for i := range order {
			order[i] = uint64(i)
		}
		// Fisher-Yates with a simple LCG.
		state := permSeed | 1
		for i := n - 1; i > 0; i-- {
			state = state*6364136223846793005 + 1442695040888963407
			j := int(state % uint64(i+1))
			order[i], order[j] = order[j], order[i]
		}
		r := NewReorder[uint64](0, n+1)
		var released []uint64
		for _, seq := range order {
			out, err := r.Push(seq, seq)
			if err != nil {
				return false
			}
			released = append(released, out...)
		}
		if len(released) != n {
			return false
		}
		for i, v := range released {
			if v != uint64(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// --- Failure-aware dispatch: health state machine -------------------

// fakeClock drives the scheduler's readmission timers deterministically.
type fakeClock struct{ t time.Time }

func (f *fakeClock) now() time.Time          { return f.t }
func (f *fakeClock) advance(d time.Duration) { f.t = f.t.Add(d) }

func newHealthRig(t *testing.T) (*Scheduler, *Device, *Device, *fakeClock) {
	t.Helper()
	a := mustDevice(t, "a", 100, 0)
	b := mustDevice(t, "b", 100, 0)
	s, err := NewScheduler(a, b)
	if err != nil {
		t.Fatal(err)
	}
	clk := &fakeClock{t: time.Unix(1000, 0)}
	s.Now = clk.now
	return s, a, b, clk
}

func TestHealthTransitions(t *testing.T) {
	s, a, _, clk := newHealthRig(t)
	if a.Health() != Healthy {
		t.Fatalf("initial health = %v", a.Health())
	}
	if h := s.ReportFailure(a); h != Suspect {
		t.Fatalf("after 1 failure health = %v, want suspect", h)
	}
	if h := s.ReportFailure(a); h != Evicted {
		t.Fatalf("after 2 failures health = %v, want evicted", h)
	}
	if s.Stats.Evictions != 1 {
		t.Fatalf("evictions = %d", s.Stats.Evictions)
	}
	// Further failures while evicted do not double-count.
	s.ReportFailure(a)
	if s.Stats.Evictions != 1 {
		t.Fatalf("evictions after redundant failure = %d", s.Stats.Evictions)
	}
	// A late success does NOT heal an evicted device: its mirrors are
	// stale, so only a fingerprint-acked bootstrap readmits it.
	s.ReportSuccess(a)
	if a.Health() != Evicted {
		t.Fatalf("evicted device healed by late result: %v", a.Health())
	}
	// The bootstrap path readmits it on probation; a success then heals.
	clk.advance(2 * time.Second)
	s.MarkJoining(a)
	s.FinishJoin(a, true)
	if a.Health() != Suspect {
		t.Fatalf("health after join = %v, want suspect", a.Health())
	}
	s.ReportSuccess(a)
	if a.Health() != Healthy {
		t.Fatalf("health after success = %v", a.Health())
	}
	// Suspect devices heal too.
	s.ReportFailure(a)
	s.ReportSuccess(a)
	if a.Health() != Healthy {
		t.Fatalf("suspect not healed: %v", a.Health())
	}
}

func TestAssignSkipsEvictedDevice(t *testing.T) {
	s, a, b, _ := newHealthRig(t)
	s.ReportFailure(a)
	s.ReportFailure(a) // evicted
	for i := 0; i < 5; i++ {
		d, _, err := s.Assign(1)
		if err != nil {
			t.Fatal(err)
		}
		if d != b {
			t.Fatalf("assignment %d landed on evicted device", i)
		}
	}
}

func TestAssignNoHealthyDevices(t *testing.T) {
	s, a, b, _ := newHealthRig(t)
	for _, d := range []*Device{a, b} {
		s.ReportFailure(d)
		s.ReportFailure(d)
	}
	if _, _, err := s.Assign(1); !errors.Is(err, ErrNoHealthyDevices) {
		t.Fatalf("all-evicted assign error = %v", err)
	}
}

// TestReadmissionRequiresBootstrap is the stale-mirror regression: an
// evicted device's caches have missed every state update since
// eviction, so a cooled-down probe must never return it to rotation
// directly — only a fingerprint-acked bootstrap handoff may.
func TestReadmissionRequiresBootstrap(t *testing.T) {
	s, a, b, clk := newHealthRig(t)
	s.ReportFailure(a)
	s.ReportFailure(a) // evicted, probe at +1s
	// Keep b busy so a would win on cost if it were assignable.
	b.queued = 1e6
	if d, _, _ := s.Assign(1); d != b {
		t.Fatal("evicted device assigned before its probe timer")
	}
	if s.NeedsBootstrap(a) {
		t.Fatal("bootstrap candidate before cool-down")
	}
	clk.advance(2 * time.Second)
	// Cool-down expiry makes it a bootstrap candidate, NOT assignable:
	// the pre-handoff code readmitted here with an unverified mirror.
	if d, _, _ := s.Assign(1); d != b {
		t.Fatal("evicted device assigned without a bootstrap handoff")
	}
	if !s.NeedsBootstrap(a) {
		t.Fatal("cooled-down evicted device should need a bootstrap")
	}
	s.MarkJoining(a)
	if a.Health() != Joining {
		t.Fatalf("health after MarkJoining = %v", a.Health())
	}
	if s.NeedsBootstrap(a) {
		t.Fatal("joining device reported as needing another bootstrap")
	}
	// While joining: still no frames, and a late result does not admit.
	if d, _, _ := s.Assign(1); d != b {
		t.Fatal("joining device assigned before its fingerprint ack")
	}
	s.ReportSuccess(a)
	if a.Health() != Joining {
		t.Fatalf("late result changed joining state: %v", a.Health())
	}
	// The matching fingerprint ack admits it on probation.
	s.FinishJoin(a, true)
	if a.Health() != Suspect {
		t.Fatalf("post-join health = %v, want suspect (probation)", a.Health())
	}
	if s.Stats.Readmissions != 1 {
		t.Fatalf("readmissions = %d", s.Stats.Readmissions)
	}
	if d, _, err := s.Assign(1); err != nil || d != a {
		t.Fatalf("admitted device not assignable: %v %v", d, err)
	}
	// Probation: a single failure re-evicts, with a doubled cool-down.
	if h := s.ReportFailure(a); h != Evicted {
		t.Fatalf("probation failure health = %v", h)
	}
	clk.advance(1500 * time.Millisecond) // less than the doubled 2s
	if s.NeedsBootstrap(a) {
		t.Fatal("bootstrap candidate again before doubled cool-down")
	}
}

// TestFinishJoinFailureReEvicts: a mismatched fingerprint (or an
// aborted handoff) re-evicts with a grown cool-down instead of
// admitting a diverged device.
func TestFinishJoinFailureReEvicts(t *testing.T) {
	s, a, _, clk := newHealthRig(t)
	s.ReportFailure(a)
	s.ReportFailure(a)
	clk.advance(2 * time.Second)
	s.MarkJoining(a)
	s.FinishJoin(a, false)
	if a.Health() != Evicted {
		t.Fatalf("failed join health = %v, want evicted", a.Health())
	}
	if s.Stats.Readmissions != 0 {
		t.Fatalf("failed join counted as readmission: %d", s.Stats.Readmissions)
	}
	if s.NeedsBootstrap(a) {
		t.Fatal("bootstrap candidate immediately after failed join")
	}
	clk.advance(2500 * time.Millisecond) // past the doubled 2s cool-down
	if !s.NeedsBootstrap(a) {
		t.Fatal("device never became a bootstrap candidate again")
	}
}

// TestDrainStopsTrafficWithoutGrowingCooldown: an administrative drain
// evicts immediately but leaves the failure cool-down alone, so a
// drained device can hot-rejoin promptly via bootstrap.
func TestDrainStopsTrafficWithoutGrowingCooldown(t *testing.T) {
	s, a, b, clk := newHealthRig(t)
	s.Drain(a)
	if a.Health() != Evicted {
		t.Fatalf("drained health = %v", a.Health())
	}
	if s.Stats.Evictions != 1 {
		t.Fatalf("drain evictions = %d", s.Stats.Evictions)
	}
	b.queued = 1e6
	if d, _, _ := s.Assign(1); d != b {
		t.Fatal("drained device still receives frames")
	}
	clk.advance(1100 * time.Millisecond)
	if !s.NeedsBootstrap(a) {
		t.Fatal("drained device not a bootstrap candidate after ProbeAfter")
	}
}

// TestMarkJoiningRejectsQuarantined: a dead transport can never join.
func TestMarkJoiningRejectsQuarantined(t *testing.T) {
	s, a, _, clk := newHealthRig(t)
	s.Quarantine(a)
	clk.advance(time.Hour)
	if s.NeedsBootstrap(a) {
		t.Fatal("quarantined device offered a bootstrap")
	}
	s.MarkJoining(a)
	if a.Health() != Evicted {
		t.Fatalf("quarantined device joined: %v", a.Health())
	}
}

func TestQuarantineNeverReadmits(t *testing.T) {
	s, a, b, clk := newHealthRig(t)
	s.Quarantine(a)
	if a.Health() != Evicted || !a.Quarantined() {
		t.Fatalf("quarantine state: %v %v", a.Health(), a.Quarantined())
	}
	if s.Stats.Evictions != 1 {
		t.Fatalf("quarantine evictions = %d", s.Stats.Evictions)
	}
	clk.advance(time.Hour)
	b.queued = 1e6
	if d, _, _ := s.Assign(1); d != b {
		t.Fatal("quarantined device readmitted")
	}
	// Even a (stale) success cannot revive it.
	s.ReportSuccess(a)
	if a.Health() != Evicted {
		t.Fatalf("quarantined device healed: %v", a.Health())
	}
}

func TestReassignExcludesFailedDevices(t *testing.T) {
	s, a, b, _ := newHealthRig(t)
	d, _, err := s.Reassign(1, a)
	if err != nil || d != b {
		t.Fatalf("reassign = %v, %v; want b", d, err)
	}
	if s.Stats.Reassigned != 1 {
		t.Fatalf("reassigned = %d", s.Stats.Reassigned)
	}
	if _, _, err := s.Reassign(1, a, b); !errors.Is(err, ErrNoHealthyDevices) {
		t.Fatalf("all-excluded reassign error = %v", err)
	}
}

func TestAddDevicePreservesStats(t *testing.T) {
	a := mustDevice(t, "a", 100, 0)
	s, err := NewScheduler(a)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		if _, _, err := s.Assign(2); err != nil {
			t.Fatal(err)
		}
	}
	b := mustDevice(t, "b", 100, 0)
	if err := s.AddDevice(b); err != nil {
		t.Fatal(err)
	}
	if err := s.AddDevice(b); err == nil {
		t.Fatal("duplicate device accepted")
	}
	if err := s.AddDevice(nil); err == nil {
		t.Fatal("nil device accepted")
	}
	if s.Stats.Assigned != 7 || s.Stats.TotalWork != 14 || s.Stats.PerDevice["a"] != 7 {
		t.Fatalf("stats zeroed by AddDevice: %+v", s.Stats)
	}
	if len(s.Devices()) != 2 {
		t.Fatalf("devices = %d", len(s.Devices()))
	}
	// The new device is immediately assignable (idle, so it wins).
	if d, _, _ := s.Assign(1); d != b {
		t.Fatalf("fresh idle device not chosen")
	}
}

// --- Reorder edge paths: gap-skip, late recovery, duplicates --------

func TestReorderSkipAdvancesPastLostSeq(t *testing.T) {
	r := NewReorder[int](0, 0)
	if _, err := r.Push(1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Push(2, 2); err != nil {
		t.Fatal(err)
	}
	out := r.Skip(0)
	if len(out) != 2 || out[0] != 1 || out[1] != 2 {
		t.Fatalf("skip released %v, want [1 2]", out)
	}
	if r.Next() != 3 || r.Skipped() != 1 {
		t.Fatalf("next=%d skipped=%d", r.Next(), r.Skipped())
	}
}

func TestReorderSkipFutureThenLateRecovery(t *testing.T) {
	r := NewReorder[int](0, 0)
	// Abandon seq 1 before the display reaches it...
	if out := r.Skip(1); len(out) != 0 {
		t.Fatalf("premature release %v", out)
	}
	// ...then its result shows up after all: the tombstone cancels and
	// the frame is recovered, not dropped.
	if _, err := r.Push(1, 11); err != nil {
		t.Fatalf("late push after skip: %v", err)
	}
	out, err := r.Push(0, 10)
	if err != nil || len(out) != 2 || out[0] != 10 || out[1] != 11 {
		t.Fatalf("recovered release = %v, %v", out, err)
	}
	if r.Skipped() != 0 {
		t.Fatalf("skipped = %d after recovery", r.Skipped())
	}
}

func TestReorderDuplicateAfterSkipRelease(t *testing.T) {
	r := NewReorder[int](0, 0)
	r.Skip(0)
	if r.Next() != 1 {
		t.Fatalf("next = %d after head skip", r.Next())
	}
	// The abandoned frame's result arrives after release: duplicate.
	if _, err := r.Push(0, 0); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("late push error = %v, want duplicate", err)
	}
}

func TestReorderSkipChainsThroughTombstones(t *testing.T) {
	r := NewReorder[int](0, 0)
	if _, err := r.Push(3, 3); err != nil {
		t.Fatal(err)
	}
	r.Skip(1)
	r.Skip(2)
	out := r.Skip(0)
	if len(out) != 1 || out[0] != 3 {
		t.Fatalf("chained skip released %v", out)
	}
	if r.Next() != 4 || r.Skipped() != 3 {
		t.Fatalf("next=%d skipped=%d", r.Next(), r.Skipped())
	}
}

func TestReorderSkipIdempotent(t *testing.T) {
	r := NewReorder[int](0, 0)
	r.Skip(2)
	r.Skip(2) // double-skip of the same seq must not double-advance
	r.Skip(0)
	r.Skip(1)
	if r.Next() != 3 || r.Skipped() != 3 {
		t.Fatalf("next=%d skipped=%d", r.Next(), r.Skipped())
	}
	// Skipping an already-released seq is a no-op.
	if out := r.Skip(1); out != nil {
		t.Fatalf("released-skip output %v", out)
	}
	if r.Next() != 3 {
		t.Fatalf("next moved: %d", r.Next())
	}
}

func TestReorderBufferFullThenSkipDrains(t *testing.T) {
	r := NewReorder[int](0, 3)
	for seq := uint64(1); seq <= 3; seq++ {
		if _, err := r.Push(seq, int(seq)); err != nil {
			t.Fatal(err)
		}
	}
	// Buffer full: the next out-of-order result is rejected...
	if _, err := r.Push(4, 4); err == nil {
		t.Fatal("over-capacity push accepted")
	}
	// ...but a gap-skip of the lost head drains it and frees space.
	out := r.Skip(0)
	if len(out) != 3 {
		t.Fatalf("drain released %d results", len(out))
	}
	if _, err := r.Push(4, 4); err != nil {
		t.Fatalf("post-drain push: %v", err)
	}
}
