package dispatch

import (
	"math"
	"testing"
	"time"
)

// TestForecastAnticipatoryAssignment pins the ISSUE's acceptance
// criterion: with a load forecast feeding Eq. 4, the scheduler moves
// traffic to the high-capability device *before* a burst lands —
// a reassignment that reactive (last-frame) dispatch misses.
//
// Setup: device A is low-latency but low-capability (the "nearby
// phone"); device B is higher-latency but an order of magnitude more
// capable (the "tablet"). For a single small request, A wins Eq. 4:
//
//	cost_A = 10/1000 s + 1 ms  = 11 ms
//	cost_B = 10/5000 s + 15 ms = 17 ms
//
// When the forecaster predicts a 200-unit burst in the next horizon,
// the biased cost flips:
//
//	cost_A = (10+200)/1000 s + 1 ms  = 211 ms
//	cost_B = (10+200)/5000 s + 15 ms = 57 ms
//
// so B is picked while the queue is still empty — anticipation, not
// reaction.
func TestForecastAnticipatoryAssignment(t *testing.T) {
	build := func() (*Scheduler, *Device, *Device) {
		a := mustDevice(t, "near-phone", 1000, time.Millisecond)
		b := mustDevice(t, "far-tablet", 5000, 15*time.Millisecond)
		s, err := NewScheduler(a, b)
		if err != nil {
			t.Fatal(err)
		}
		return s, a, b
	}

	// Reactive dispatch: no forecast — the small request goes to the
	// low-latency device, which the burst then swamps.
	reactive, a, _ := build()
	if d, _, err := reactive.Assign(10); err != nil || d != a {
		t.Fatalf("reactive pick = %v (err %v), want near-phone", d, err)
	}

	// Predictive dispatch: same request, same devices, but a forecast
	// of 200 units inbound. The high-capability device is picked before
	// the burst lands.
	predictive, _, b := build()
	predictive.SetForecast(func() float64 { return 200 })
	d, _, err := predictive.Assign(10)
	if err != nil {
		t.Fatal(err)
	}
	if d != b {
		t.Fatalf("predictive pick = %s, want far-tablet", d.ID)
	}
	// Only the real workload is enqueued; the forecast never inflates
	// the device's queue.
	if got := b.Queued(); got != 10 {
		t.Fatalf("queued = %v, want 10 (forecast must not be enqueued)", got)
	}
}

// TestForecastBiasClamped: negative, NaN, and infinite forecasts are
// ignored rather than corrupting Eq. 4.
func TestForecastBiasClamped(t *testing.T) {
	for _, bad := range []float64{-5, math.NaN(), math.Inf(1), math.Inf(-1)} {
		a := mustDevice(t, "a", 1000, time.Millisecond)
		b := mustDevice(t, "b", 5000, 15*time.Millisecond)
		s, err := NewScheduler(a, b)
		if err != nil {
			t.Fatal(err)
		}
		s.SetForecast(func() float64 { return bad })
		d, _, err := s.Assign(10)
		if err != nil {
			t.Fatal(err)
		}
		if d != a {
			t.Fatalf("forecast %v: pick = %s, want a (bias must clamp to 0)", bad, d.ID)
		}
	}
}

// TestSetRTTRefresh: a live SRTT sample replaces the configured l_j and
// changes the Eq. 4 ranking; non-positive samples are ignored.
func TestSetRTTRefresh(t *testing.T) {
	a := mustDevice(t, "a", 100, time.Millisecond)
	b := mustDevice(t, "b", 100, 2*time.Millisecond)
	s, err := NewScheduler(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// a's path degrades: refreshing its RTT flips the pick to b.
	a.SetRTT(50 * time.Millisecond)
	if d, _, _ := s.Assign(1); d != b {
		t.Fatalf("pick after SetRTT = %s, want b", d.ID)
	}
	before := a.RTT
	a.SetRTT(0)
	a.SetRTT(-time.Second)
	if a.RTT != before {
		t.Fatalf("non-positive SetRTT changed RTT to %v", a.RTT)
	}
}
