package dispatch

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestGateBoundsConcurrency(t *testing.T) {
	const width = 3
	g := NewGate(width)
	var inside, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if !g.Enter(nil) {
				t.Error("Enter with nil cancel aborted")
				return
			}
			n := inside.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(2 * time.Millisecond) // hold the slot
			inside.Add(-1)
			g.Leave()
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > width {
		t.Fatalf("observed %d concurrent renders through a width-%d gate", p, width)
	}
	st := g.Stats()
	if st.Entries != 24 || st.Active != 0 || st.Width != width {
		t.Fatalf("stats %+v", st)
	}
	if st.Waits == 0 {
		t.Fatal("24 renders through 3 slots recorded zero waits")
	}
}

func TestGateUnlimited(t *testing.T) {
	g := NewGate(0)
	for i := 0; i < 100; i++ {
		if !g.Enter(nil) {
			t.Fatal("unlimited gate blocked")
		}
	}
	if st := g.Stats(); st.Active != 100 || st.Width != 0 {
		t.Fatalf("stats %+v", st)
	}
	for i := 0; i < 100; i++ {
		g.Leave()
	}
	if st := g.Stats(); st.Active != 0 {
		t.Fatalf("active after drain = %d", st.Active)
	}
}

func TestGateCancelWhileQueued(t *testing.T) {
	g := NewGate(1)
	if !g.Enter(nil) {
		t.Fatal("first Enter failed")
	}
	cancel := make(chan struct{})
	aborted := make(chan bool, 1)
	go func() { aborted <- g.Enter(cancel) }()
	time.Sleep(10 * time.Millisecond) // let it queue behind the full gate
	close(cancel)
	select {
	case ok := <-aborted:
		if ok {
			t.Fatal("cancelled Enter reported admission")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled Enter never returned")
	}
	g.Leave()
	// The aborted waiter must not have consumed the slot.
	if !g.Enter(nil) {
		t.Fatal("slot leaked to a cancelled waiter")
	}
	g.Leave()
}
