package metrics

import "time"

// This file is the unified observability surface: the per-feature stat
// structs that accreted on gbooster.Player across PRs 1-7 (streaming
// counters, transport health, failover, device states, handoffs) now
// live here as one coherent set, and PlayerSnapshot / FleetSnapshot
// bundle them into a single consistent read. The public package aliases
// these types, so gbooster.PlayerStats and metrics.PlayerStats are the
// same type and a gbooster.PlayerSnapshot feeds a metrics.Registry
// directly.

// PlayerStats summarizes a session's streaming counters.
type PlayerStats struct {
	// FramesSent counts frame batches dispatched to service devices;
	// FramesShown counts frames delivered to the display in order.
	FramesSent, FramesShown int64
	// RawBytes is the serialized command volume before caching and
	// compression; WireBytes what actually crossed the network. Their
	// ratio is the paper's traffic-reduction metric.
	RawBytes, WireBytes int64
	// PreCompressBytes is the uplink volume after the mirrored command
	// cache but before stream compression: the compression ratio is
	// PreCompressBytes/WireBytes, and the cache's own reduction
	// RawBytes/PreCompressBytes.
	PreCompressBytes int64
	// CacheHits / CacheMisses count records the mirrored caches replaced
	// with a 9-byte reference vs. shipped in full.
	CacheHits, CacheMisses int64
	// DownlinkBytes counts encoded frame bytes received from the
	// servers (the downlink half of the traffic picture).
	DownlinkBytes int64
	// QualityNow is the encode quality of the most recently displayed
	// frame, read from the turbo packet headers (zero before the first
	// frame); QualityMin the lowest seen; QualityChanges the number of
	// mid-stream steps. A QualityMin below the configured quality means
	// a server-side adaptive ladder shed bytes under congestion.
	QualityNow, QualityMin int
	QualityChanges         int64
}

// CompressionRatio returns cache-encoded bytes over wire bytes — the
// inter-frame LZ4 dictionary's multiplicative reduction (1 means the
// compressor removed nothing). Zero with no traffic.
func (s PlayerStats) CompressionRatio() float64 {
	if s.WireBytes <= 0 {
		return 0
	}
	return float64(s.PreCompressBytes) / float64(s.WireBytes)
}

// CacheHitRate returns the fraction of encoded records the mirrored
// command caches deduplicated, in [0,1].
func (s PlayerStats) CacheHitRate() float64 {
	if total := s.CacheHits + s.CacheMisses; total > 0 {
		return float64(s.CacheHits) / float64(total)
	}
	return 0
}

// TransportHealth is one service connection's loss-recovery snapshot:
// the adaptive estimator's SRTT and current RTO, the fraction of data
// transmissions that were retransmissions, and send-window occupancy.
type TransportHealth struct {
	Service         string
	SRTT            time.Duration
	RTTVar          time.Duration
	RTO             time.Duration
	ResendRate      float64
	WindowOccupancy int
	WindowLimit     int
	DataSent        int64
	DataResent      int64
	FastResent      int64
	TimeoutResent   int64
}

// WindowUse returns occupancy over limit, in [0,1] (zero with no
// limit).
func (t TransportHealth) WindowUse() float64 {
	if t.WindowLimit <= 0 {
		return 0
	}
	return float64(t.WindowOccupancy) / float64(t.WindowLimit)
}

// FailoverStats summarizes the client's §VI-C fault tolerance over the
// session: orphaned frames re-dispatched to replicas, devices evicted
// and readmitted by the health state machine, frames abandoned on
// every device, duplicate results from slow devices, and messages the
// receive path dropped.
type FailoverStats struct {
	ReDispatched   int64
	FramesSkipped  int64
	LateFrames     int64
	Evictions      int64
	Readmissions   int64
	RecvBadMsgs    int64
	RecvUnexpected int64
}

// DeviceState is one attached service device's dispatch view.
type DeviceState struct {
	Service string
	// Health is "healthy", "suspect", "evicted", or "joining" (a
	// bootstrap handoff is in flight and the device is not yet in the
	// rotation).
	Health string
	// Queued is the device's outstanding Eq. 4 workload.
	Queued float64
}

// HandoffStats summarizes the session's elastic-device activity:
// checkpoint bootstrap streams shipped to joining or readmitted
// devices, handoffs admitted on a matching state-fingerprint ack, and
// handoffs aborted.
type HandoffStats struct {
	// BootstrapsSent counts session bootstrap streams shipped;
	// BootstrapBytes their total size on the wire.
	BootstrapsSent int64
	BootstrapBytes int64
	// Completed counts handoffs whose device was admitted to the
	// rotation; Failed those aborted on a fingerprint mismatch, a send
	// failure, or the handoff deadline.
	Completed int64
	Failed    int64
	// MeanLatency is the average checkpoint-to-admission time of the
	// completed handoffs (zero with none).
	MeanLatency time.Duration
}

// FleetStats is a point-in-time snapshot of a multi-tenant fleet.
// Admitted/Rejected/NonProtocol/Frames and the gate counters are
// cumulative; Sessions, TimersArmed, and GateActive are instantaneous.
type FleetStats struct {
	// Sessions is the live session count; PeakSessions the high-water
	// mark since the fleet started serving.
	Sessions, PeakSessions int64
	// Admitted counts sessions ever admitted; Rejected datagrams
	// dropped over capacity; NonProtocol datagrams dropped for not
	// carrying the protocol magic.
	Admitted, Rejected, NonProtocol int64
	// Frames counts rendering requests served across all sessions.
	Frames int64
	// TimersArmed is how many sessions currently hold a slot on the
	// shared retransmission timer wheel (in-flight data only).
	TimersArmed int
	// GateWidth is the render-concurrency bound (0 = unlimited);
	// GateEntries counts renders admitted through the gate, GateWaits
	// how many of those had to queue, and GateActive how many hold a
	// slot right now.
	GateWidth                          int
	GateEntries, GateWaits, GateActive int64
	// EgressDatagrams/EgressSyscalls are the coalescing egress writer's
	// cumulative datagram output and the syscalls spent producing it —
	// their ratio is the achieved datagrams-per-syscall. EgressBatches
	// counts drain flushes, EgressDrops datagrams shed by a full egress
	// queue (recovered by transport retransmission). All zero when the
	// egress writer is disabled.
	EgressDatagrams, EgressSyscalls, EgressBatches, EgressDrops int64
	// FrameRate is the fleet's smoothed aggregate render throughput
	// (frames/s, EWMA over 1 s samples); ForecastFrameRate is the ARMA
	// forecast of that rate one horizon ahead. Both zero until the
	// fleet's load sampler has seen its first window.
	FrameRate, ForecastFrameRate float64
}

// PredictStats is the per-session predictive control plane's snapshot
// (paper §V-B wired live): interface-switch activity, exceedance
// forecast quality, and the modeled energy/thermal state driven from
// frame/byte/radio activity. Attached to PlayerSnapshot only when
// predictive control is enabled.
type PredictStats struct {
	// Windows counts closed control windows (100 ms each by default);
	// Frames the frames observed by the controller.
	Windows, Frames int64
	// WakeUps/Sleeps count WiFi radio transitions commanded by the
	// switch; WakeStalls counts windows where demand exceeded the usable
	// path while WiFi was still waking (the realized wake-latency stall
	// the forecaster exists to prevent).
	WakeUps, Sleeps, WakeStalls int64
	// WiFiWindows/BTWindows count windows routed over each interface.
	WiFiWindows, BTWindows int64
	// TPExceed..TNExceed score the threshold-exceedance forecasts
	// (predicted vs. realized, horizon-aligned): a false negative is a
	// spike the model missed, a false positive a spurious wake.
	TPExceed, FPExceed, FNExceed, TNExceed int64
	// ForecastErrEWMA is the smoothed |h-step forecast − realized| in
	// Mbps; ForecastMbps and DemandMbps are the latest horizon forecast
	// and the latest closed window's realized demand.
	ForecastErrEWMA, ForecastMbps, DemandMbps float64
	// LoadForecast is the predicted near-future workload (record units)
	// currently biasing Eq. 4 dispatch.
	LoadForecast float64
	// EnergyJoules is the session's total modeled energy; EnergyWiFiJ,
	// EnergyBTJ, EnergyCPUJ, EnergyDisplayJ, and EnergyGPUJ its
	// components (radio integration + activity-driven CPU/display/GPU
	// draw).
	EnergyJoules                                                 float64
	EnergyWiFiJ, EnergyBTJ, EnergyCPUJ, EnergyDisplayJ, EnergyGPUJ float64
	// GPUTempC and ThermalScale are the thermal governor's state;
	// Throttled reports whether it ever throttled; ThermalSwaps counts
	// frequency swaps.
	GPUTempC, ThermalScale float64
	Throttled              bool
	ThermalSwaps           int64
}

// EnergyPerFrameJ returns modeled joules per observed frame (zero
// before the first frame).
func (p PredictStats) EnergyPerFrameJ() float64 {
	if p.Frames <= 0 {
		return 0
	}
	return p.EnergyJoules / float64(p.Frames)
}

// ExceedanceFPRate returns FP/(FP+TN): calm periods wrongly predicted
// to spike (cheap: WiFi woke for nothing).
func (p PredictStats) ExceedanceFPRate() float64 {
	if total := p.FPExceed + p.TNExceed; total > 0 {
		return float64(p.FPExceed) / float64(total)
	}
	return 0
}

// ExceedanceFNRate returns FN/(FN+TP): real spikes the forecast missed
// (costly: traffic queues behind a sleeping WiFi interface).
func (p PredictStats) ExceedanceFNRate() float64 {
	if total := p.FNExceed + p.TPExceed; total > 0 {
		return float64(p.FNExceed) / float64(total)
	}
	return 0
}

// PlayerSnapshot is one consistent observation of a whole session: the
// streaming, failover, and handoff counter blocks from a single
// underlying stats read, plus the per-device dispatch and transport
// views taken back-to-back with it. It is what a Collector observes
// and what Player.Snapshot returns — the five legacy per-feature
// getters are thin slices of it.
type PlayerSnapshot struct {
	// Elapsed is the session age (time since the player was built) at
	// the moment of the snapshot, so collectors can difference
	// successive snapshots into rates.
	Elapsed time.Duration

	PlayerStats
	FailoverStats
	HandoffStats

	// Devices is each attached service device's failover health, in
	// attach order; Transports the per-service transport health in the
	// same order.
	Devices    []DeviceState
	Transports []TransportHealth

	// FrameLatencyTotal/Max/Count accumulate the caller-visible frame
	// span (StepFrame issue to display — the paper's Eq. 5 response
	// time) measured by the player itself. Zero before the first frame.
	FrameLatencyTotal time.Duration
	FrameLatencyMax   time.Duration
	FrameLatencyCount int64

	// Fleet carries the serving fleet's counters when the observer can
	// see them (the load harness's in-process mode, a server-side stats
	// loop); nil for a standalone player, which has no fleet view.
	Fleet *FleetStats

	// Predict carries the predictive control plane's stats when the
	// session runs with WithPredictiveControl; nil otherwise, so
	// existing collectors see no change.
	Predict *PredictStats
}

// DeliveredFPS returns display throughput over the session so far
// (frames shown per second of session age). Zero before any frame.
func (s PlayerSnapshot) DeliveredFPS() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.FramesShown) / s.Elapsed.Seconds()
}

// MeanFrameLatency returns the mean caller-visible frame span (zero
// with no timed frames).
func (s PlayerSnapshot) MeanFrameLatency() time.Duration {
	if s.FrameLatencyCount <= 0 {
		return 0
	}
	return s.FrameLatencyTotal / time.Duration(s.FrameLatencyCount)
}

// FleetSnapshot is the fleet-side mirror of PlayerSnapshot: one
// consistent read of a fleet's counters. It is what Fleet.Snapshot
// returns; the legacy Fleet.Stats getter is a slice of it.
type FleetSnapshot struct {
	FleetStats
}
