package metrics

// PredictCollector aggregates the predictive control plane's stats.
// Like the fleet collector it observes a snapshot rider that may be
// absent: snapshots from sessions without predictive control (nil
// Predict) are skipped, so registering this collector changes nothing
// for existing sessions.
type PredictCollector struct {
	last     PredictStats
	seen     bool
	sessions int64 // distinct cumulative streams folded in (Add calls)

	// Across-session accumulation for harnesses that fan many sessions
	// into one collector: cumulative counters sum, gauges keep the
	// last/worst value.
	total PredictStats
}

// Add folds one session's final (cumulative) predict stats into the
// collector. Observe-driven use feeds successive snapshots of one
// session instead; a given instance should use one entry point.
func (c *PredictCollector) Add(p PredictStats) {
	c.sessions++
	c.total.Windows += p.Windows
	c.total.Frames += p.Frames
	c.total.WakeUps += p.WakeUps
	c.total.Sleeps += p.Sleeps
	c.total.WakeStalls += p.WakeStalls
	c.total.WiFiWindows += p.WiFiWindows
	c.total.BTWindows += p.BTWindows
	c.total.TPExceed += p.TPExceed
	c.total.FPExceed += p.FPExceed
	c.total.FNExceed += p.FNExceed
	c.total.TNExceed += p.TNExceed
	c.total.EnergyJoules += p.EnergyJoules
	c.total.EnergyWiFiJ += p.EnergyWiFiJ
	c.total.EnergyBTJ += p.EnergyBTJ
	c.total.EnergyCPUJ += p.EnergyCPUJ
	c.total.EnergyDisplayJ += p.EnergyDisplayJ
	c.total.EnergyGPUJ += p.EnergyGPUJ
	c.total.ThermalSwaps += p.ThermalSwaps
	c.total.ForecastErrEWMA = p.ForecastErrEWMA
	c.total.ForecastMbps = p.ForecastMbps
	c.total.DemandMbps = p.DemandMbps
	c.total.LoadForecast = p.LoadForecast
	c.total.ThermalScale = p.ThermalScale
	if p.GPUTempC > c.total.GPUTempC {
		c.total.GPUTempC = p.GPUTempC
	}
	if p.Throttled {
		c.total.Throttled = true
	}
}

// Observe tracks the latest snapshot's predict rider; counters are
// cumulative within a session, so the last observation is the complete
// picture and Report folds it in once.
func (c *PredictCollector) Observe(s PlayerSnapshot) {
	if s.Predict == nil {
		return
	}
	c.last = *s.Predict
	c.seen = true
}

// Totals returns the aggregated stats (the last observed snapshot
// folded in on demand).
func (c *PredictCollector) Totals() PredictStats {
	if c.seen {
		c.Add(c.last)
		c.seen = false
	}
	return c.total
}

// Sessions returns how many cumulative streams were folded in.
func (c *PredictCollector) Sessions() int64 {
	c.Totals()
	return c.sessions
}

// WiFiOnFraction returns WiFi-routed windows over all routed windows.
func (c *PredictCollector) WiFiOnFraction() float64 {
	t := c.Totals()
	if total := t.WiFiWindows + t.BTWindows; total > 0 {
		return float64(t.WiFiWindows) / float64(total)
	}
	return 0
}

// Report summarizes prediction quality and the energy/thermal loop.
func (c *PredictCollector) Report() Report {
	t := c.Totals()
	throttled := 0.0
	if t.Throttled {
		throttled = 1
	}
	return Report{Collector: "predict", Fields: []Field{
		{Name: "windows", Value: float64(t.Windows)},
		{Name: "wakeups", Value: float64(t.WakeUps)},
		{Name: "wake_stalls", Value: float64(t.WakeStalls)},
		{Name: "exceed_fp_rate", Value: t.ExceedanceFPRate(), Unit: "ratio"},
		{Name: "exceed_fn_rate", Value: t.ExceedanceFNRate(), Unit: "ratio"},
		{Name: "forecast_err", Value: t.ForecastErrEWMA, Unit: "Mbps"},
		{Name: "wifi_fraction", Value: c.WiFiOnFraction(), Unit: "ratio"},
		{Name: "energy_j", Value: t.EnergyJoules, Unit: "J"},
		{Name: "energy_per_frame", Value: t.EnergyPerFrameJ() * 1000, Unit: "mJ"},
		{Name: "energy_radio_j", Value: t.EnergyWiFiJ + t.EnergyBTJ, Unit: "J"},
		{Name: "gpu_temp_max", Value: t.GPUTempC, Unit: "C"},
		{Name: "throttled", Value: throttled},
		{Name: "thermal_swaps", Value: float64(t.ThermalSwaps)},
	}}
}
