package metrics

import (
	"testing"
	"time"
)

// snapAt fabricates a session snapshot t seconds in, with frames shown
// at a steady 30 FPS and cumulative counters growing linearly.
func snapAt(t int) PlayerSnapshot {
	sec := time.Duration(t) * time.Second
	return PlayerSnapshot{
		Elapsed: sec,
		PlayerStats: PlayerStats{
			FramesSent:       int64(30 * t),
			FramesShown:      int64(30 * t),
			RawBytes:         int64(10000 * t),
			PreCompressBytes: int64(4000 * t),
			WireBytes:        int64(1000 * t),
			CacheHits:        int64(90 * t),
			CacheMisses:      int64(10 * t),
			DownlinkBytes:    int64(50000 * t),
			QualityNow:       60,
		},
		FailoverStats: FailoverStats{
			ReDispatched:  int64(2 * t),
			FramesSkipped: int64(t),
		},
		HandoffStats: HandoffStats{
			BootstrapsSent: int64(t),
			BootstrapBytes: int64(2048 * t),
			Completed:      int64(t),
			MeanLatency:    5 * time.Millisecond,
		},
		Transports: []TransportHealth{{
			Service:         "dev0",
			SRTT:            4 * time.Millisecond,
			RTO:             20 * time.Millisecond,
			ResendRate:      0.01,
			WindowOccupancy: 8,
			WindowLimit:     32,
		}},
		FrameLatencyTotal: time.Duration(30*t) * 10 * time.Millisecond,
		FrameLatencyMax:   25 * time.Millisecond,
		FrameLatencyCount: int64(30 * t),
	}
}

// TestRegistryFanOut drives the eight standard collectors through a
// Registry with synthetic snapshots and checks each one aggregated
// what the snapshot path should have fed it.
func TestRegistryFanOut(t *testing.T) {
	reg := NewStandardRegistry()
	for i := 1; i <= 10; i++ {
		s := snapAt(i)
		s.Fleet = &FleetStats{Sessions: 3, Admitted: int64(3 + i), Rejected: int64(i), Frames: int64(90 * i)}
		reg.Observe(s)
	}

	reports := map[string]Report{}
	for _, r := range reg.Reports() {
		reports[r.Collector] = r
	}
	want := []string{"fps", "response", "transport", "failover", "uplink", "handoff", "quality", "fleet"}
	for _, name := range want {
		if _, ok := reports[name]; !ok {
			t.Fatalf("missing report %q; got %v", name, reports)
		}
	}

	if v, _ := reports["fps"].Get("median"); v < 29.9 || v > 30.1 {
		t.Errorf("fps median = %v, want ~30", v)
	}
	// 9 intervals from 10 observations (first sets the baseline).
	if v, _ := reports["fps"].Get("samples"); v != 9 {
		t.Errorf("fps samples = %v, want 9", v)
	}
	if v, _ := reports["response"].Get("mean"); v != 10 {
		t.Errorf("response mean = %v ms, want 10", v)
	}
	if v, _ := reports["response"].Get("max"); v != 25 {
		t.Errorf("response max = %v ms, want 25", v)
	}
	// Cumulative collectors difference first-to-last: span is t=1..10.
	if v, _ := reports["failover"].Get("redispatched"); v != 18 {
		t.Errorf("failover redispatched = %v, want 18", v)
	}
	if v, _ := reports["failover"].Get("gap_skips"); v != 9 {
		t.Errorf("failover gap_skips = %v, want 9", v)
	}
	if v, _ := reports["uplink"].Get("compression"); v != 4 {
		t.Errorf("uplink compression = %v, want 4", v)
	}
	if v, _ := reports["uplink"].Get("cache_hit_rate"); v != 0.9 {
		t.Errorf("uplink cache_hit_rate = %v, want 0.9", v)
	}
	if v, _ := reports["handoff"].Get("completed"); v != 9 {
		t.Errorf("handoff completed = %v, want 9", v)
	}
	if v, _ := reports["handoff"].Get("latency_mean"); v != 5 {
		t.Errorf("handoff latency_mean = %v ms, want 5", v)
	}
	if v, _ := reports["quality"].Get("final"); v != 60 {
		t.Errorf("quality final = %v, want 60", v)
	}
	if v, _ := reports["quality"].Get("downlink_kb"); v <= 0 {
		t.Errorf("quality downlink_kb = %v, want > 0", v)
	}
	if v, _ := reports["transport"].Get("srtt_mean"); v != 4 {
		t.Errorf("transport srtt_mean = %v ms, want 4", v)
	}
	if v, _ := reports["transport"].Get("window_use_mean"); v != 0.25 {
		t.Errorf("transport window_use_mean = %v, want 0.25", v)
	}
	if v, _ := reports["fleet"].Get("rejected"); v != 9 {
		t.Errorf("fleet rejected = %v, want 9", v)
	}
	if v, _ := reports["fleet"].Get("peak_sessions"); v != 3 {
		t.Errorf("fleet peak_sessions = %v, want 3", v)
	}
}

// TestFleetCollectorSkipsStandalone checks that snapshots without a
// fleet rider leave the fleet collector untouched.
func TestFleetCollectorSkipsStandalone(t *testing.T) {
	var c FleetCollector
	c.Observe(snapAt(1))
	if c.Count() != 0 {
		t.Fatalf("fleet collector observed a standalone snapshot: count=%d", c.Count())
	}
}

// TestSnapshotHelpers covers the PlayerSnapshot convenience methods.
func TestSnapshotHelpers(t *testing.T) {
	s := snapAt(10)
	if got := s.DeliveredFPS(); got != 30 {
		t.Errorf("DeliveredFPS = %v, want 30", got)
	}
	if got := s.MeanFrameLatency(); got != 10*time.Millisecond {
		t.Errorf("MeanFrameLatency = %v, want 10ms", got)
	}
	var zero PlayerSnapshot
	if zero.DeliveredFPS() != 0 || zero.MeanFrameLatency() != 0 {
		t.Errorf("zero snapshot helpers must return 0")
	}
}
