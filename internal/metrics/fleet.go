package metrics

// FleetSample is one periodic snapshot of a multi-tenant fleet
// manager's counters. Sessions is instantaneous; the rest are
// cumulative since the fleet started serving.
type FleetSample struct {
	Sessions    int64
	Admitted    int64
	Rejected    int64
	NonProtocol int64
	Frames      int64
	GateWaits   int64
}

// FleetCollector accumulates periodic fleet snapshots over a serving
// span so capacity pressure (admission rejections, GPU-gate queueing)
// can be separated from steady-state throughput in a report. Cumulative
// fields are differenced first-to-last; Sessions is tracked for its
// mean and peak.
type FleetCollector struct {
	count        int
	first, last  FleetSample
	sessionTotal int64
	peakSessions int64
}

// Add records one snapshot.
func (c *FleetCollector) Add(s FleetSample) {
	if c.count == 0 {
		c.first = s
	}
	c.last = s
	c.count++
	c.sessionTotal += s.Sessions
	if s.Sessions > c.peakSessions {
		c.peakSessions = s.Sessions
	}
}

// Count returns the number of samples.
func (c *FleetCollector) Count() int { return c.count }

// Totals returns the cumulative activity across the sampled span (last
// minus first snapshot); Sessions holds the last sample's live count.
func (c *FleetCollector) Totals() FleetSample {
	if c.count == 0 {
		return FleetSample{}
	}
	return FleetSample{
		Sessions:    c.last.Sessions,
		Admitted:    c.last.Admitted - c.first.Admitted,
		Rejected:    c.last.Rejected - c.first.Rejected,
		NonProtocol: c.last.NonProtocol - c.first.NonProtocol,
		Frames:      c.last.Frames - c.first.Frames,
		GateWaits:   c.last.GateWaits - c.first.GateWaits,
	}
}

// PeakSessions returns the highest live session count sampled.
func (c *FleetCollector) PeakSessions() int64 { return c.peakSessions }

// MeanSessions returns the mean live session count across samples.
func (c *FleetCollector) MeanSessions() float64 {
	if c.count == 0 {
		return 0
	}
	return float64(c.sessionTotal) / float64(c.count)
}

// RejectRate returns the fraction of admission decisions in the span
// that were refusals, in [0,1] — sustained nonzero values mean the
// fleet is turning clients away and MaxSessions (or capacity) is the
// binding constraint.
func (c *FleetCollector) RejectRate() float64 {
	t := c.Totals()
	if total := t.Admitted + t.Rejected; total > 0 {
		return float64(t.Rejected) / float64(total)
	}
	return 0
}

// GateWaitRate returns the fraction of frames in the span that queued
// for the GPU gate before rendering — the fleet's render-contention
// signal.
func (c *FleetCollector) GateWaitRate() float64 {
	t := c.Totals()
	if t.Frames > 0 {
		return float64(t.GateWaits) / float64(t.Frames)
	}
	return 0
}

// Clean reports whether the sampled span saw no capacity pressure:
// no rejections and no gate queueing.
func (c *FleetCollector) Clean() bool {
	t := c.Totals()
	return t.Rejected == 0 && t.GateWaits == 0
}
