package metrics

import "time"

// This file is the redesigned aggregation API: instead of callers
// hand-wiring eight collector structs and feeding each from a
// different Player getter, every collector implements Collector —
// Observe(PlayerSnapshot) / Report() — and a Registry fans one
// snapshot into all of them. gbooster-play and gbooster-load drive
// identical collector sets through this one path.
//
// Each collector keeps its original Add(...) entry point for callers
// that already have feature-shaped samples; a given collector instance
// should be driven through Add or through Observe, not both.

// Field is one named scalar in a Report. Unit is a short suffix for
// display ("ms", "fps", "ratio", "" for counts).
type Field struct {
	Name  string
	Value float64
	Unit  string
}

// Report is one collector's aggregated view of everything it observed.
type Report struct {
	// Collector names the producing collector ("fps", "response", ...).
	Collector string
	Fields    []Field
}

// Get returns the named field's value, and whether it exists.
func (r Report) Get(name string) (float64, bool) {
	for _, f := range r.Fields {
		if f.Name == name {
			return f.Value, true
		}
	}
	return 0, false
}

// Collector aggregates a stream of session snapshots into a Report.
// All eight metrics collectors implement it.
type Collector interface {
	Observe(PlayerSnapshot)
	Report() Report
}

// Registry fans each observed snapshot into a set of collectors. The
// zero value is ready to use.
type Registry struct {
	collectors []Collector
}

// NewRegistry returns a registry over the given collectors.
func NewRegistry(cs ...Collector) *Registry {
	return &Registry{collectors: cs}
}

// Register adds a collector to the fan-out set.
func (r *Registry) Register(c Collector) {
	r.collectors = append(r.collectors, c)
}

// Observe feeds one snapshot to every registered collector.
func (r *Registry) Observe(s PlayerSnapshot) {
	for _, c := range r.collectors {
		c.Observe(s)
	}
}

// Reports returns every collector's report, in registration order.
func (r *Registry) Reports() []Report {
	out := make([]Report, 0, len(r.collectors))
	for _, c := range r.collectors {
		out = append(out, c.Report())
	}
	return out
}

// Collectors returns the registered collectors in registration order,
// for callers that need a concrete collector back (type-assert on the
// element).
func (r *Registry) Collectors() []Collector { return r.collectors }

// StandardCollectors returns one fresh instance of each of the nine
// collectors, in report order: fps, response, transport, failover,
// uplink, handoff, quality, fleet, predict.
func StandardCollectors() []Collector {
	return []Collector{
		&FPSCollector{},
		&ResponseCollector{},
		&TransportCollector{},
		&FailoverCollector{},
		&UplinkCollector{},
		&HandoffCollector{},
		&QualityCollector{},
		&FleetCollector{},
		&PredictCollector{},
	}
}

// NewStandardRegistry returns a registry preloaded with the standard
// collectors.
func NewStandardRegistry() *Registry { return NewRegistry(StandardCollectors()...) }

// ms converts a duration to float milliseconds for report fields.
func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// Observe turns consecutive snapshots into per-interval FPS samples:
// frames shown since the previous observation over session time
// elapsed since it. The first observation only establishes the
// baseline.
func (c *FPSCollector) Observe(s PlayerSnapshot) {
	if c.obsSeen {
		if dt := s.Elapsed - c.obsElapsed; dt > 0 {
			c.Add(float64(s.FramesShown-c.obsFrames) / dt.Seconds())
		}
	}
	c.obsSeen = true
	c.obsFrames = s.FramesShown
	c.obsElapsed = s.Elapsed
}

// Report summarizes the FPS samples.
func (c *FPSCollector) Report() Report {
	return Report{Collector: "fps", Fields: []Field{
		{Name: "median", Value: c.Median(), Unit: "fps"},
		{Name: "mean", Value: c.Mean(), Unit: "fps"},
		{Name: "p1", Value: c.Percentile(1), Unit: "fps"},
		{Name: "stability", Value: c.Stability(), Unit: "ratio"},
		{Name: "samples", Value: float64(c.Count())},
	}}
}

// Observe replaces the collector's state with the snapshot's cumulative
// frame-latency counters — the player already aggregates Eq. 5 spans,
// so the latest snapshot is the complete picture.
func (c *ResponseCollector) Observe(s PlayerSnapshot) {
	c.total = s.FrameLatencyTotal
	c.count = int(s.FrameLatencyCount)
	if s.FrameLatencyMax > c.max {
		c.max = s.FrameLatencyMax
	}
}

// Report summarizes the response times.
func (c *ResponseCollector) Report() Report {
	return Report{Collector: "response", Fields: []Field{
		{Name: "mean", Value: ms(c.Average()), Unit: "ms"},
		{Name: "max", Value: ms(c.Max()), Unit: "ms"},
		{Name: "frames", Value: float64(c.Count())},
	}}
}

// Observe records one health sample per service connection in the
// snapshot.
func (c *TransportCollector) Observe(s PlayerSnapshot) {
	for _, t := range s.Transports {
		c.Add(TransportSample{
			SRTT:       t.SRTT,
			RTO:        t.RTO,
			ResendRate: t.ResendRate,
			WindowUse:  t.WindowUse(),
		})
	}
}

// Report summarizes the transport health samples.
func (c *TransportCollector) Report() Report {
	return Report{Collector: "transport", Fields: []Field{
		{Name: "srtt_mean", Value: ms(c.MeanSRTT()), Unit: "ms"},
		{Name: "rto_mean", Value: ms(c.MeanRTO()), Unit: "ms"},
		{Name: "rto_max", Value: ms(c.MaxRTO()), Unit: "ms"},
		{Name: "resend_rate", Value: c.FinalResendRate(), Unit: "ratio"},
		{Name: "window_use_mean", Value: c.MeanWindowUse(), Unit: "ratio"},
		{Name: "samples", Value: float64(c.Count())},
	}}
}

// Observe records the snapshot's cumulative failover counters as one
// sample (the collector differences first from last).
func (c *FailoverCollector) Observe(s PlayerSnapshot) {
	c.Add(FailoverSample{
		ReDispatched:  s.ReDispatched,
		Evictions:     s.Evictions,
		Readmissions:  s.Readmissions,
		FramesSkipped: s.FramesSkipped,
	})
}

// Report summarizes the failover activity over the observed span.
func (c *FailoverCollector) Report() Report {
	t := c.Totals()
	return Report{Collector: "failover", Fields: []Field{
		{Name: "redispatched", Value: float64(t.ReDispatched)},
		{Name: "evictions", Value: float64(t.Evictions)},
		{Name: "readmissions", Value: float64(t.Readmissions)},
		{Name: "gap_skips", Value: float64(t.FramesSkipped)},
		{Name: "max_burst", Value: float64(c.MaxBurst())},
	}}
}

// Observe records the snapshot's cumulative uplink counters as one
// sample (the collector differences first from last).
func (c *UplinkCollector) Observe(s PlayerSnapshot) {
	c.Add(UplinkSample{
		RawBytes:         s.RawBytes,
		PreCompressBytes: s.PreCompressBytes,
		WireBytes:        s.WireBytes,
		CacheHits:        s.CacheHits,
		CacheMisses:      s.CacheMisses,
	})
}

// Report summarizes the uplink traffic reduction over the observed
// span.
func (c *UplinkCollector) Report() Report {
	t := c.Totals()
	return Report{Collector: "uplink", Fields: []Field{
		{Name: "wire_kb", Value: float64(t.WireBytes) / 1024, Unit: "KB"},
		{Name: "raw_kb", Value: float64(t.RawBytes) / 1024, Unit: "KB"},
		{Name: "compression", Value: c.CompressionRatio(), Unit: "ratio"},
		{Name: "cache_hit_rate", Value: c.CacheHitRate(), Unit: "ratio"},
	}}
}

// Observe records the snapshot's cumulative handoff counters as one
// sample (the collector differences first from last). The snapshot
// carries a mean latency rather than a running total, so the total is
// reconstructed as mean × completed.
func (c *HandoffCollector) Observe(s PlayerSnapshot) {
	c.Add(HandoffSample{
		BootstrapsSent: s.BootstrapsSent,
		BootstrapBytes: s.BootstrapBytes,
		Completed:      s.Completed,
		Failed:         s.Failed,
		LatencyTotal:   s.HandoffStats.MeanLatency * time.Duration(s.Completed),
	})
}

// Report summarizes the handoff activity over the observed span.
func (c *HandoffCollector) Report() Report {
	t := c.Totals()
	return Report{Collector: "handoff", Fields: []Field{
		{Name: "completed", Value: float64(t.Completed)},
		{Name: "failed", Value: float64(t.Failed)},
		{Name: "bootstraps", Value: float64(t.BootstrapsSent)},
		{Name: "bootstrap_kb", Value: float64(t.BootstrapBytes) / 1024, Unit: "KB"},
		{Name: "latency_mean", Value: ms(c.MeanLatency()), Unit: "ms"},
	}}
}

// Observe records the snapshot's quality-ladder state as one sample
// (ignored until the first decoded frame reports a quality).
func (c *QualityCollector) Observe(s PlayerSnapshot) {
	c.Add(QualitySample{
		Quality:       s.QualityNow,
		Changes:       s.QualityChanges,
		DownlinkBytes: s.DownlinkBytes,
	})
}

// Report summarizes the quality ladder over the observed span.
func (c *QualityCollector) Report() Report {
	return Report{Collector: "quality", Fields: []Field{
		{Name: "mean", Value: c.Mean()},
		{Name: "min", Value: float64(c.Min())},
		{Name: "final", Value: float64(c.Final())},
		{Name: "steps", Value: float64(c.Changes())},
		{Name: "downlink_kb", Value: float64(c.DownlinkBytes()) / 1024, Unit: "KB"},
	}}
}

// Observe records the snapshot's fleet rider, if present, as one
// sample. Snapshots from standalone players (no fleet view) are
// skipped.
func (c *FleetCollector) Observe(s PlayerSnapshot) {
	if s.Fleet == nil {
		return
	}
	c.Add(FleetSample{
		Sessions:    s.Fleet.Sessions,
		Admitted:    s.Fleet.Admitted,
		Rejected:    s.Fleet.Rejected,
		NonProtocol: s.Fleet.NonProtocol,
		Frames:      s.Fleet.Frames,
		GateWaits:   s.Fleet.GateWaits,
	})
}

// Report summarizes the fleet counters over the observed span.
func (c *FleetCollector) Report() Report {
	t := c.Totals()
	return Report{Collector: "fleet", Fields: []Field{
		{Name: "sessions", Value: float64(t.Sessions)},
		{Name: "peak_sessions", Value: float64(c.PeakSessions())},
		{Name: "admitted", Value: float64(t.Admitted)},
		{Name: "rejected", Value: float64(t.Rejected)},
		{Name: "frames", Value: float64(t.Frames)},
		{Name: "gate_wait_rate", Value: c.GateWaitRate(), Unit: "ratio"},
	}}
}
