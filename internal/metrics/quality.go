package metrics

// QualitySample is one periodic snapshot of a session's adaptive-quality
// state: the encode quality currently in effect (read from the turbo
// packet headers on the player side, or the ladder on the server side),
// the cumulative count of mid-stream quality steps, and the cumulative
// encoded downlink bytes.
type QualitySample struct {
	Quality       int
	Changes       int64
	DownlinkBytes int64
}

// QualityCollector accumulates quality snapshots over a session so a
// report can show how the congestion-aware ladder traded fidelity for
// bytes: the quality floor it hit, its mean level, how often it moved,
// and the downlink volume across the sampled span. Changes and
// DownlinkBytes are cumulative; the collector differences them.
type QualityCollector struct {
	count       int
	qTotal      int64
	min         int
	first, last QualitySample
}

// Add records one snapshot. Samples with no quality yet (zero, before
// the first decoded frame) are ignored.
func (c *QualityCollector) Add(s QualitySample) {
	if s.Quality <= 0 {
		return
	}
	if c.count == 0 {
		c.first = s
		c.min = s.Quality
	} else if s.Quality < c.min {
		c.min = s.Quality
	}
	c.last = s
	c.qTotal += int64(s.Quality)
	c.count++
}

// Count returns the number of samples.
func (c *QualityCollector) Count() int { return c.count }

// Mean returns the mean quality level across samples.
func (c *QualityCollector) Mean() float64 {
	if c.count == 0 {
		return 0
	}
	return float64(c.qTotal) / float64(c.count)
}

// Min returns the lowest quality sampled — how far the ladder stepped
// down at its worst. Zero with no samples.
func (c *QualityCollector) Min() int { return c.min }

// Final returns the last sampled quality (where the ladder settled).
func (c *QualityCollector) Final() int { return c.last.Quality }

// Changes returns the mid-stream quality steps across the sampled span
// (last minus first snapshot).
func (c *QualityCollector) Changes() int64 {
	return c.last.Changes - c.first.Changes
}

// DownlinkBytes returns the encoded downlink volume across the sampled
// span.
func (c *QualityCollector) DownlinkBytes() int64 {
	return c.last.DownlinkBytes - c.first.DownlinkBytes
}

// Steady reports whether quality never moved over the sampled span — an
// uncongested session (or a fixed-quality server).
func (c *QualityCollector) Steady() bool { return c.Changes() == 0 }
