// Package metrics implements the user-experience metrics of the
// paper's evaluation (§VII-B):
//
//   - median FPS over per-second samples, which "naturally omits fringe
//     results" like loading screens;
//   - FPS stability: the fraction of the session played within ±20% of
//     the median FPS (low stability indicates jitter);
//   - average response time (Eq. 5).
package metrics

import (
	"math"
	"sort"
	"time"
)

// FPSCollector accumulates per-second frame-rate samples.
type FPSCollector struct {
	samples []float64

	// Observation baseline for the snapshot path: the previous
	// snapshot's cumulative frame count and session age, differenced
	// into a rate by Observe.
	obsSeen    bool
	obsFrames  int64
	obsElapsed time.Duration
}

// Add records one per-second FPS sample.
func (c *FPSCollector) Add(fps float64) {
	if fps < 0 || math.IsNaN(fps) || math.IsInf(fps, 0) {
		return
	}
	c.samples = append(c.samples, fps)
}

// Count returns the number of samples.
func (c *FPSCollector) Count() int { return len(c.samples) }

// Median returns the median FPS, or 0 with no samples.
func (c *FPSCollector) Median() float64 {
	if len(c.samples) == 0 {
		return 0
	}
	s := append([]float64(nil), c.samples...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Stability returns the fraction of samples within ±20% of the median
// (the paper's FPS-stability definition).
func (c *FPSCollector) Stability() float64 {
	if len(c.samples) == 0 {
		return 0
	}
	med := c.Median()
	if med == 0 {
		return 0
	}
	lo, hi := med*0.8, med*1.2
	in := 0
	for _, v := range c.samples {
		if v >= lo && v <= hi {
			in++
		}
	}
	return float64(in) / float64(len(c.samples))
}

// Mean returns the arithmetic mean FPS.
func (c *FPSCollector) Mean() float64 {
	if len(c.samples) == 0 {
		return 0
	}
	var sum float64
	for _, v := range c.samples {
		sum += v
	}
	return sum / float64(len(c.samples))
}

// Percentile returns the p-th percentile (0..100) by nearest-rank.
func (c *FPSCollector) Percentile(p float64) float64 {
	if len(c.samples) == 0 {
		return 0
	}
	s := append([]float64(nil), c.samples...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(s)))) - 1
	if rank < 0 {
		rank = 0
	}
	return s[rank]
}

// ResponseCollector accumulates per-frame response times (Eq. 5: the
// span from rendering-request issue to on-screen display).
type ResponseCollector struct {
	total time.Duration
	count int
	max   time.Duration
}

// Add records one response time.
func (c *ResponseCollector) Add(d time.Duration) {
	if d < 0 {
		return
	}
	c.total += d
	c.count++
	if d > c.max {
		c.max = d
	}
}

// Average returns the mean response time, or 0 with no samples.
func (c *ResponseCollector) Average() time.Duration {
	if c.count == 0 {
		return 0
	}
	return c.total / time.Duration(c.count)
}

// Max returns the worst response time observed.
func (c *ResponseCollector) Max() time.Duration { return c.max }

// Count returns the number of samples.
func (c *ResponseCollector) Count() int { return c.count }

// TransportSample is one periodic snapshot of a reliable-UDP
// connection's health: the smoothed RTT and current retransmission
// timeout of its adaptive loss-recovery state machine, the fraction of
// data transmissions that were retransmissions, and how full the send
// window is (occupancy / limit, in [0,1]).
type TransportSample struct {
	SRTT       time.Duration
	RTO        time.Duration
	ResendRate float64
	WindowUse  float64
}

// TransportCollector accumulates transport-health samples over a
// session so FPS/latency regressions can be attributed to the network
// (high RTO, resend storms, window saturation) rather than the render
// path.
type TransportCollector struct {
	count        int
	srttTotal    time.Duration
	rtoTotal     time.Duration
	maxRTO       time.Duration
	maxResend    float64
	resendLast   float64
	windowTotal  float64
	maxWindowUse float64
}

// Add records one health snapshot.
func (c *TransportCollector) Add(s TransportSample) {
	if s.SRTT < 0 || s.RTO < 0 || s.ResendRate < 0 || s.WindowUse < 0 {
		return
	}
	c.count++
	c.srttTotal += s.SRTT
	c.rtoTotal += s.RTO
	if s.RTO > c.maxRTO {
		c.maxRTO = s.RTO
	}
	if s.ResendRate > c.maxResend {
		c.maxResend = s.ResendRate
	}
	c.resendLast = s.ResendRate
	c.windowTotal += s.WindowUse
	if s.WindowUse > c.maxWindowUse {
		c.maxWindowUse = s.WindowUse
	}
}

// Count returns the number of samples.
func (c *TransportCollector) Count() int { return c.count }

// MeanSRTT returns the mean smoothed RTT across samples.
func (c *TransportCollector) MeanSRTT() time.Duration {
	if c.count == 0 {
		return 0
	}
	return c.srttTotal / time.Duration(c.count)
}

// MeanRTO returns the mean retransmission timeout across samples.
func (c *TransportCollector) MeanRTO() time.Duration {
	if c.count == 0 {
		return 0
	}
	return c.rtoTotal / time.Duration(c.count)
}

// MaxRTO returns the worst retransmission timeout observed — the
// transport's deepest backoff during the session.
func (c *TransportCollector) MaxRTO() time.Duration { return c.maxRTO }

// MaxResendRate returns the worst cumulative resend rate observed.
func (c *TransportCollector) MaxResendRate() float64 { return c.maxResend }

// FinalResendRate returns the last sample's resend rate — since the
// rate is cumulative, this is the whole session's overhead.
func (c *TransportCollector) FinalResendRate() float64 { return c.resendLast }

// MeanWindowUse returns the mean send-window occupancy fraction.
func (c *TransportCollector) MeanWindowUse() float64 {
	if c.count == 0 {
		return 0
	}
	return c.windowTotal / float64(c.count)
}

// MaxWindowUse returns the peak send-window occupancy fraction.
func (c *TransportCollector) MaxWindowUse() float64 { return c.maxWindowUse }

// FailoverSample is one cumulative snapshot of the client's §VI-C
// fault-tolerance counters: re-dispatches of orphaned frames,
// device evictions/readmissions, and frames abandoned on every device.
type FailoverSample struct {
	ReDispatched  int64
	Evictions     int64
	Readmissions  int64
	FramesSkipped int64
}

// events sums the failure-driven activity in a sample.
func (s FailoverSample) events() int64 {
	return s.ReDispatched + s.Evictions + s.FramesSkipped
}

// FailoverCollector accumulates periodic failover snapshots over a
// session so FPS dips can be attributed to device failures (an
// eviction/re-dispatch burst) rather than the network or render path.
// Samples are cumulative; the collector differences them.
type FailoverCollector struct {
	count       int
	first, last FailoverSample
	maxBurst    int64
}

// Add records one cumulative snapshot.
func (c *FailoverCollector) Add(s FailoverSample) {
	if c.count == 0 {
		c.first = s
	} else if burst := s.events() - c.last.events(); burst > c.maxBurst {
		c.maxBurst = burst
	}
	c.last = s
	c.count++
}

// Count returns the number of samples.
func (c *FailoverCollector) Count() int { return c.count }

// Totals returns the failover activity across the sampled span (last
// minus first snapshot).
func (c *FailoverCollector) Totals() FailoverSample {
	if c.count == 0 {
		return FailoverSample{}
	}
	return FailoverSample{
		ReDispatched:  c.last.ReDispatched - c.first.ReDispatched,
		Evictions:     c.last.Evictions - c.first.Evictions,
		Readmissions:  c.last.Readmissions - c.first.Readmissions,
		FramesSkipped: c.last.FramesSkipped - c.first.FramesSkipped,
	}
}

// MaxBurst returns the largest per-interval jump in failure events —
// the sharpest failover episode of the session.
func (c *FailoverCollector) MaxBurst() int64 { return c.maxBurst }

// Clean reports whether the sampled span saw no failover activity at
// all.
func (c *FailoverCollector) Clean() bool { return c.Totals().events() == 0 }

// UplinkSample is one cumulative snapshot of the client's uplink
// traffic-reduction counters: raw serialized record bytes, bytes after
// the mirrored command cache (pre-compression), bytes on the wire after
// stream compression, and the cache's record-level hit/miss decisions.
type UplinkSample struct {
	RawBytes         int64
	PreCompressBytes int64
	WireBytes        int64
	CacheHits        int64
	CacheMisses      int64
}

// UplinkCollector accumulates periodic uplink snapshots so a session
// report can quantify the two §IV-B traffic-reduction stages
// separately: how much the mirrored command cache removed, and how much
// the inter-frame LZ4 dictionary removed on top. Samples are
// cumulative; the collector differences first from last.
type UplinkCollector struct {
	count       int
	first, last UplinkSample
}

// Add records one cumulative snapshot.
func (c *UplinkCollector) Add(s UplinkSample) {
	if c.count == 0 {
		c.first = s
	}
	c.last = s
	c.count++
}

// Count returns the number of samples.
func (c *UplinkCollector) Count() int { return c.count }

// Totals returns the uplink counters across the sampled span (last
// minus first snapshot).
func (c *UplinkCollector) Totals() UplinkSample {
	if c.count == 0 {
		return UplinkSample{}
	}
	return UplinkSample{
		RawBytes:         c.last.RawBytes - c.first.RawBytes,
		PreCompressBytes: c.last.PreCompressBytes - c.first.PreCompressBytes,
		WireBytes:        c.last.WireBytes - c.first.WireBytes,
		CacheHits:        c.last.CacheHits - c.first.CacheHits,
		CacheMisses:      c.last.CacheMisses - c.first.CacheMisses,
	}
}

// CompressionRatio returns pre-compression bytes over wire bytes — the
// stream compressor's multiplicative reduction (1 means it removed
// nothing; higher is better). Zero with no wire traffic.
func (c *UplinkCollector) CompressionRatio() float64 {
	t := c.Totals()
	if t.WireBytes <= 0 {
		return 0
	}
	return float64(t.PreCompressBytes) / float64(t.WireBytes)
}

// CacheHitRate returns the fraction of encoded records the mirrored
// cache replaced with a 9-byte reference, in [0,1].
func (c *UplinkCollector) CacheHitRate() float64 {
	t := c.Totals()
	if total := t.CacheHits + t.CacheMisses; total > 0 {
		return float64(t.CacheHits) / float64(total)
	}
	return 0
}

// HandoffSample is one cumulative snapshot of the client's session
// checkpoint & live handoff counters: bootstrap streams shipped (and
// their bytes), handoffs admitted on a matching fingerprint ack,
// handoffs aborted, and the total checkpoint-to-admission latency over
// the completed ones.
type HandoffSample struct {
	BootstrapsSent int64
	BootstrapBytes int64
	Completed      int64
	Failed         int64
	LatencyTotal   time.Duration
}

// HandoffCollector accumulates periodic handoff snapshots over a
// session so elastic-device churn (hot-joins, drains, readmissions) can
// be separated from steady-state streaming in a report. Samples are
// cumulative; the collector differences them.
type HandoffCollector struct {
	count       int
	first, last HandoffSample
	maxBoot     int64
}

// Add records one cumulative snapshot.
func (c *HandoffCollector) Add(s HandoffSample) {
	if c.count == 0 {
		c.first = s
	} else if boot := s.BootstrapBytes - c.last.BootstrapBytes; boot > c.maxBoot {
		c.maxBoot = boot
	}
	c.last = s
	c.count++
}

// Count returns the number of samples.
func (c *HandoffCollector) Count() int { return c.count }

// Totals returns the handoff activity across the sampled span (last
// minus first snapshot).
func (c *HandoffCollector) Totals() HandoffSample {
	if c.count == 0 {
		return HandoffSample{}
	}
	return HandoffSample{
		BootstrapsSent: c.last.BootstrapsSent - c.first.BootstrapsSent,
		BootstrapBytes: c.last.BootstrapBytes - c.first.BootstrapBytes,
		Completed:      c.last.Completed - c.first.Completed,
		Failed:         c.last.Failed - c.first.Failed,
		LatencyTotal:   c.last.LatencyTotal - c.first.LatencyTotal,
	}
}

// MeanLatency returns the average checkpoint-to-admission time of the
// completed handoffs in the sampled span (zero with none).
func (c *HandoffCollector) MeanLatency() time.Duration {
	t := c.Totals()
	if t.Completed <= 0 {
		return 0
	}
	return t.LatencyTotal / time.Duration(t.Completed)
}

// MeanBootstrapBytes returns the average bootstrap stream size of the
// sampled span (zero with none sent).
func (c *HandoffCollector) MeanBootstrapBytes() int64 {
	t := c.Totals()
	if t.BootstrapsSent <= 0 {
		return 0
	}
	return t.BootstrapBytes / t.BootstrapsSent
}

// MaxBootstrapBurst returns the largest per-interval jump in bootstrap
// bytes — the sharpest handoff episode of the session.
func (c *HandoffCollector) MaxBootstrapBurst() int64 { return c.maxBoot }

// Clean reports whether the sampled span saw no handoff activity.
func (c *HandoffCollector) Clean() bool {
	t := c.Totals()
	return t.BootstrapsSent == 0 && t.Completed == 0 && t.Failed == 0
}
