package metrics

import "testing"

func TestFleetCollectorTotalsAndRates(t *testing.T) {
	var c FleetCollector
	if c.Count() != 0 || c.Totals() != (FleetSample{}) || !c.Clean() {
		t.Fatalf("zero collector not empty: %+v", c.Totals())
	}
	c.Add(FleetSample{Sessions: 10, Admitted: 10, Frames: 100})
	c.Add(FleetSample{Sessions: 40, Admitted: 50, Rejected: 10, NonProtocol: 3, Frames: 500, GateWaits: 40})
	c.Add(FleetSample{Sessions: 20, Admitted: 70, Rejected: 30, NonProtocol: 5, Frames: 900, GateWaits: 100})
	if c.Count() != 3 {
		t.Fatalf("count = %d", c.Count())
	}
	tot := c.Totals()
	want := FleetSample{Sessions: 20, Admitted: 60, Rejected: 30, NonProtocol: 5, Frames: 800, GateWaits: 100}
	if tot != want {
		t.Fatalf("totals = %+v, want %+v", tot, want)
	}
	if c.PeakSessions() != 40 {
		t.Fatalf("peak = %d, want 40", c.PeakSessions())
	}
	if got, want := c.MeanSessions(), float64(10+40+20)/3; got != want {
		t.Fatalf("mean sessions = %v, want %v", got, want)
	}
	// 30 rejections out of 90 admission decisions.
	if got := c.RejectRate(); got < 0.333 || got > 0.334 {
		t.Fatalf("reject rate = %v, want ~1/3", got)
	}
	// 100 gate waits over 800 frames.
	if got := c.GateWaitRate(); got != 0.125 {
		t.Fatalf("gate wait rate = %v, want 0.125", got)
	}
	if c.Clean() {
		t.Fatal("span with rejections and gate waits reported clean")
	}
}

func TestFleetCollectorClean(t *testing.T) {
	var c FleetCollector
	c.Add(FleetSample{Sessions: 2, Admitted: 2, Frames: 10})
	c.Add(FleetSample{Sessions: 2, Admitted: 2, Frames: 50})
	if !c.Clean() {
		t.Fatalf("pressure-free span not clean: %+v", c.Totals())
	}
	if c.RejectRate() != 0 || c.GateWaitRate() != 0 {
		t.Fatalf("rates nonzero on clean span")
	}
}
