package metrics

import "testing"

func TestQualityCollectorEmpty(t *testing.T) {
	var c QualityCollector
	if c.Count() != 0 || c.Mean() != 0 || c.Min() != 0 || c.Final() != 0 {
		t.Fatal("empty collector not zero-valued")
	}
	if !c.Steady() {
		t.Fatal("empty collector not steady")
	}
}

func TestQualityCollectorIgnoresUnprimedSamples(t *testing.T) {
	var c QualityCollector
	c.Add(QualitySample{Quality: 0, DownlinkBytes: 100})
	if c.Count() != 0 {
		t.Fatal("zero-quality sample counted")
	}
}

func TestQualityCollectorLadderSession(t *testing.T) {
	var c QualityCollector
	// A ladder stepping 85 -> 70 -> 40 under congestion, then
	// recovering to 55; cumulative changes and downlink bytes.
	samples := []QualitySample{
		{Quality: 85, Changes: 0, DownlinkBytes: 1000},
		{Quality: 70, Changes: 1, DownlinkBytes: 1800},
		{Quality: 40, Changes: 2, DownlinkBytes: 2300},
		{Quality: 40, Changes: 2, DownlinkBytes: 2700},
		{Quality: 55, Changes: 3, DownlinkBytes: 3300},
	}
	for _, s := range samples {
		c.Add(s)
	}
	if c.Count() != 5 {
		t.Fatalf("Count = %d", c.Count())
	}
	if c.Min() != 40 {
		t.Fatalf("Min = %d, want 40", c.Min())
	}
	if c.Final() != 55 {
		t.Fatalf("Final = %d, want 55", c.Final())
	}
	if got, want := c.Mean(), float64(85+70+40+40+55)/5; got != want {
		t.Fatalf("Mean = %v, want %v", got, want)
	}
	if c.Changes() != 3 {
		t.Fatalf("Changes = %d, want 3", c.Changes())
	}
	if c.DownlinkBytes() != 2300 {
		t.Fatalf("DownlinkBytes = %d, want 2300", c.DownlinkBytes())
	}
	if c.Steady() {
		t.Fatal("ladder session reported steady")
	}
}

func TestQualityCollectorSteadySession(t *testing.T) {
	var c QualityCollector
	for i := 0; i < 4; i++ {
		c.Add(QualitySample{Quality: 85, Changes: 0, DownlinkBytes: int64(i) * 500})
	}
	if !c.Steady() {
		t.Fatal("fixed-quality session not steady")
	}
	if c.Min() != 85 || c.Final() != 85 {
		t.Fatalf("Min/Final = %d/%d", c.Min(), c.Final())
	}
	if c.DownlinkBytes() != 1500 {
		t.Fatalf("DownlinkBytes = %d", c.DownlinkBytes())
	}
}
