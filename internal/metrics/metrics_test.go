package metrics

import (
	"math"
	"testing"
	"time"
)

func TestMedianOddEven(t *testing.T) {
	var c FPSCollector
	for _, v := range []float64{10, 30, 20} {
		c.Add(v)
	}
	if c.Median() != 20 {
		t.Fatalf("odd median = %v", c.Median())
	}
	c.Add(40)
	if c.Median() != 25 {
		t.Fatalf("even median = %v", c.Median())
	}
	if c.Count() != 4 {
		t.Fatalf("count = %d", c.Count())
	}
}

func TestMedianIgnoresFringeExtremes(t *testing.T) {
	// The paper's rationale for the median: loading screens at 0 FPS
	// and menus at 60 FPS must not move the reported rate.
	var c FPSCollector
	for i := 0; i < 100; i++ {
		c.Add(30)
	}
	for i := 0; i < 10; i++ {
		c.Add(0)
		c.Add(60)
	}
	if c.Median() != 30 {
		t.Fatalf("median with fringe samples = %v, want 30", c.Median())
	}
}

func TestStability(t *testing.T) {
	var c FPSCollector
	// 8 samples at 30 (within band), 2 far outside.
	for i := 0; i < 8; i++ {
		c.Add(30)
	}
	c.Add(10)
	c.Add(60)
	if got := c.Stability(); math.Abs(got-0.8) > 1e-9 {
		t.Fatalf("stability = %v, want 0.8", got)
	}
	var empty FPSCollector
	if empty.Stability() != 0 || empty.Median() != 0 || empty.Mean() != 0 {
		t.Fatal("empty collector should report zeros")
	}
}

func TestStabilityBandIsTwentyPercent(t *testing.T) {
	var c FPSCollector
	for i := 0; i < 10; i++ {
		c.Add(50)
	}
	c.Add(40) // exactly -20%: inside
	c.Add(60) // exactly +20%: inside
	c.Add(39) // outside
	if got := c.Stability(); math.Abs(got-12.0/13.0) > 1e-9 {
		t.Fatalf("stability = %v", got)
	}
}

func TestAddRejectsInvalid(t *testing.T) {
	var c FPSCollector
	c.Add(-1)
	c.Add(math.NaN())
	c.Add(math.Inf(1))
	if c.Count() != 0 {
		t.Fatalf("invalid samples accepted: %d", c.Count())
	}
}

func TestMeanAndPercentile(t *testing.T) {
	var c FPSCollector
	for _, v := range []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100} {
		c.Add(v)
	}
	if c.Mean() != 55 {
		t.Fatalf("mean = %v", c.Mean())
	}
	if got := c.Percentile(50); got != 50 {
		t.Fatalf("p50 = %v", got)
	}
	if got := c.Percentile(0); got != 10 {
		t.Fatalf("p0 = %v", got)
	}
	if got := c.Percentile(100); got != 100 {
		t.Fatalf("p100 = %v", got)
	}
	if got := c.Percentile(90); got != 90 {
		t.Fatalf("p90 = %v", got)
	}
	var empty FPSCollector
	if empty.Percentile(50) != 0 {
		t.Fatal("empty percentile should be 0")
	}
}

func TestResponseCollector(t *testing.T) {
	var c ResponseCollector
	c.Add(10 * time.Millisecond)
	c.Add(30 * time.Millisecond)
	c.Add(-time.Millisecond) // ignored
	if got := c.Average(); got != 20*time.Millisecond {
		t.Fatalf("average = %v", got)
	}
	if got := c.Max(); got != 30*time.Millisecond {
		t.Fatalf("max = %v", got)
	}
	if c.Count() != 2 {
		t.Fatalf("count = %d", c.Count())
	}
	var empty ResponseCollector
	if empty.Average() != 0 {
		t.Fatal("empty average should be 0")
	}
}

func TestTransportCollector(t *testing.T) {
	var c TransportCollector
	c.Add(TransportSample{SRTT: 20 * time.Millisecond, RTO: 60 * time.Millisecond, ResendRate: 0.1, WindowUse: 0.5})
	c.Add(TransportSample{SRTT: 40 * time.Millisecond, RTO: 120 * time.Millisecond, ResendRate: 0.05, WindowUse: 1.0})
	c.Add(TransportSample{SRTT: -time.Millisecond}) // ignored
	if c.Count() != 2 {
		t.Fatalf("count = %d", c.Count())
	}
	if got := c.MeanSRTT(); got != 30*time.Millisecond {
		t.Fatalf("mean SRTT = %v", got)
	}
	if got := c.MeanRTO(); got != 90*time.Millisecond {
		t.Fatalf("mean RTO = %v", got)
	}
	if got := c.MaxRTO(); got != 120*time.Millisecond {
		t.Fatalf("max RTO = %v", got)
	}
	if got := c.MaxResendRate(); got != 0.1 {
		t.Fatalf("max resend = %v", got)
	}
	if got := c.FinalResendRate(); got != 0.05 {
		t.Fatalf("final resend = %v", got)
	}
	if got := c.MeanWindowUse(); got != 0.75 {
		t.Fatalf("mean window use = %v", got)
	}
	if got := c.MaxWindowUse(); got != 1.0 {
		t.Fatalf("max window use = %v", got)
	}
	var empty TransportCollector
	if empty.MeanSRTT() != 0 || empty.MeanRTO() != 0 || empty.MeanWindowUse() != 0 {
		t.Fatal("empty collector means should be 0")
	}
}

func TestFailoverCollectorTotalsAndBurst(t *testing.T) {
	var c FailoverCollector
	if !c.Clean() || c.Count() != 0 || c.MaxBurst() != 0 {
		t.Fatal("zero collector must be clean and empty")
	}
	// Cumulative snapshots: a quiet interval, then an eviction burst,
	// then quiet again.
	c.Add(FailoverSample{ReDispatched: 2, Evictions: 1})
	c.Add(FailoverSample{ReDispatched: 2, Evictions: 1})
	c.Add(FailoverSample{ReDispatched: 7, Evictions: 2, Readmissions: 1, FramesSkipped: 1})
	c.Add(FailoverSample{ReDispatched: 7, Evictions: 2, Readmissions: 1, FramesSkipped: 1})
	if c.Count() != 4 {
		t.Fatalf("Count = %d, want 4", c.Count())
	}
	tot := c.Totals()
	want := FailoverSample{ReDispatched: 5, Evictions: 1, Readmissions: 1, FramesSkipped: 1}
	if tot != want {
		t.Fatalf("Totals = %+v, want %+v", tot, want)
	}
	// The burst interval contributed (7-2)+(2-1)+(1-0) = 7 events.
	if c.MaxBurst() != 7 {
		t.Fatalf("MaxBurst = %d, want 7", c.MaxBurst())
	}
	if c.Clean() {
		t.Fatal("collector with failover activity must not be clean")
	}
}

func TestFailoverCollectorClean(t *testing.T) {
	var c FailoverCollector
	// A session that starts with pre-existing counters but sees no new
	// activity across the sampled span is clean.
	s := FailoverSample{ReDispatched: 3, Evictions: 2, Readmissions: 1, FramesSkipped: 4}
	c.Add(s)
	c.Add(s)
	c.Add(s)
	if !c.Clean() {
		t.Fatalf("no-activity span reported dirty: %+v", c.Totals())
	}
	if c.MaxBurst() != 0 {
		t.Fatalf("MaxBurst = %d, want 0", c.MaxBurst())
	}
	// Readmissions alone do not count as failure events...
	c.Add(FailoverSample{ReDispatched: 3, Evictions: 2, Readmissions: 2, FramesSkipped: 4})
	if !c.Clean() {
		t.Fatal("readmission-only span must stay clean")
	}
	// ...but a skipped frame does.
	c.Add(FailoverSample{ReDispatched: 3, Evictions: 2, Readmissions: 2, FramesSkipped: 5})
	if c.Clean() {
		t.Fatal("skipped frame must dirty the span")
	}
}

func TestUplinkCollector(t *testing.T) {
	var c UplinkCollector
	if c.CompressionRatio() != 0 || c.CacheHitRate() != 0 || c.Count() != 0 {
		t.Fatal("empty collector must report zeros")
	}
	// Session starts with pre-existing cumulative counters; the span is
	// the difference between first and last snapshot.
	c.Add(UplinkSample{RawBytes: 1000, PreCompressBytes: 500, WireBytes: 250, CacheHits: 10, CacheMisses: 10})
	c.Add(UplinkSample{RawBytes: 5000, PreCompressBytes: 2500, WireBytes: 750, CacheHits: 80, CacheMisses: 20})
	c.Add(UplinkSample{RawBytes: 9000, PreCompressBytes: 4500, WireBytes: 1250, CacheHits: 160, CacheMisses: 30})
	tot := c.Totals()
	want := UplinkSample{RawBytes: 8000, PreCompressBytes: 4000, WireBytes: 1000, CacheHits: 150, CacheMisses: 20}
	if tot != want {
		t.Fatalf("Totals = %+v, want %+v", tot, want)
	}
	// 4000 cache-encoded bytes became 1000 on the wire: 4x.
	if r := c.CompressionRatio(); r != 4 {
		t.Fatalf("CompressionRatio = %v, want 4", r)
	}
	// 150 of 170 records were cache references.
	if hr := c.CacheHitRate(); hr < 0.88 || hr > 0.883 {
		t.Fatalf("CacheHitRate = %v, want ~150/170", hr)
	}
	if c.Count() != 3 {
		t.Fatalf("Count = %d, want 3", c.Count())
	}
}

func TestUplinkCollectorNoTraffic(t *testing.T) {
	var c UplinkCollector
	s := UplinkSample{RawBytes: 100, PreCompressBytes: 60, WireBytes: 30, CacheHits: 5, CacheMisses: 5}
	c.Add(s)
	c.Add(s)
	if c.CompressionRatio() != 0 {
		t.Fatal("no new wire traffic must report ratio 0, not a division artifact")
	}
	if c.CacheHitRate() != 0 {
		t.Fatal("no new records must report hit rate 0")
	}
}

func TestHandoffCollectorTotalsAndMeans(t *testing.T) {
	var c HandoffCollector
	if !c.Clean() || c.MeanLatency() != 0 || c.MeanBootstrapBytes() != 0 {
		t.Fatal("empty collector should be clean with zero means")
	}
	c.Add(HandoffSample{BootstrapsSent: 1, BootstrapBytes: 1000, Completed: 1, LatencyTotal: 10 * time.Millisecond})
	c.Add(HandoffSample{BootstrapsSent: 3, BootstrapBytes: 5000, Completed: 2, Failed: 1, LatencyTotal: 40 * time.Millisecond})
	c.Add(HandoffSample{BootstrapsSent: 4, BootstrapBytes: 6000, Completed: 3, Failed: 1, LatencyTotal: 70 * time.Millisecond})
	tot := c.Totals()
	if tot.BootstrapsSent != 3 || tot.BootstrapBytes != 5000 || tot.Completed != 2 || tot.Failed != 1 {
		t.Fatalf("totals = %+v", tot)
	}
	if got := c.MeanLatency(); got != 30*time.Millisecond {
		t.Fatalf("MeanLatency = %v, want 30ms", got)
	}
	if got := c.MeanBootstrapBytes(); got != 5000/3 {
		t.Fatalf("MeanBootstrapBytes = %d, want %d", got, 5000/3)
	}
	if got := c.MaxBootstrapBurst(); got != 4000 {
		t.Fatalf("MaxBootstrapBurst = %d, want 4000", got)
	}
	if c.Clean() {
		t.Fatal("collector with handoff activity should not be clean")
	}
}
