// Package loadgen is the pattern-driven load harness: it plans and
// executes fleets of simulated GBooster players — arrival patterns,
// heterogeneous device classes, per-link network profiles, churn
// scripts — and aggregates per-session snapshots into scenario SLO
// reports. cmd/gbooster-load is its CLI; every perf PR proves itself
// by running scenarios through this package.
package loadgen

import (
	"fmt"
	"strings"
	"time"

	"github.com/gbooster/gbooster/internal/sim"
)

// Pattern is an arrival-rate shape: relative intensities over equal
// slices of the arrival window. Session start times are drawn from it
// by inverse-CDF sampling, so the same pattern scales to any session
// count and window length.
type Pattern struct {
	// Name is the flag-friendly identifier ("steady", "spike", ...).
	Name string
	// Buckets are relative arrival intensities; bucket i covers
	// [i/len, (i+1)/len) of the window. Non-positive weights count as
	// zero. Empty (or all-zero) means uniform.
	Buckets []float64
}

// Schedule draws n arrival offsets in [0, window) following the
// pattern, sorted ascending. The i-th arrival's quantile is
// (i + jitter)/n, so schedules are deterministic in rng yet not
// lockstep-aligned across sessions.
func (p Pattern) Schedule(n int, window time.Duration, rng *sim.RNG) []time.Duration {
	if n <= 0 {
		return nil
	}
	weights := make([]float64, 0, len(p.Buckets))
	var total float64
	for _, w := range p.Buckets {
		if w < 0 {
			w = 0
		}
		weights = append(weights, w)
		total += w
	}
	if total <= 0 {
		weights, total = []float64{1}, 1
	}
	out := make([]time.Duration, n)
	bucketSpan := float64(window) / float64(len(weights))
	for i := 0; i < n; i++ {
		u := (float64(i) + rng.Float64()) / float64(n) * total
		// Walk the CDF to the bucket containing quantile u, then place
		// the arrival linearly within it.
		var cum float64
		for j, w := range weights {
			if u < cum+w || j == len(weights)-1 {
				frac := 0.0
				if w > 0 {
					frac = (u - cum) / w
					if frac < 0 {
						frac = 0
					} else if frac > 1 {
						frac = 1
					}
				}
				out[i] = time.Duration((float64(j) + frac) * bucketSpan)
				break
			}
			cum += w
		}
	}
	return out
}

// The pattern catalog.

// Steady arrives uniformly across the window.
func Steady() Pattern { return Pattern{Name: "steady", Buckets: []float64{1}} }

// Ramp grows arrival intensity linearly across the window — a service
// filling up.
func Ramp() Pattern {
	b := make([]float64, 10)
	for i := range b {
		b[i] = float64(i + 1)
	}
	return Pattern{Name: "ramp", Buckets: b}
}

// Spike is a steady baseline with a brief mid-window surge at eight
// times the base rate.
func Spike() Pattern {
	b := []float64{1, 1, 1, 1, 1, 8, 8, 1, 1, 1, 1, 1}
	return Pattern{Name: "spike", Buckets: b}
}

// FlashCrowd compresses most arrivals into the opening slice of the
// window — a launch-moment stampede straight into the admission path.
func FlashCrowd() Pattern {
	b := []float64{30, 4, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1}
	return Pattern{Name: "flash-crowd", Buckets: b}
}

// Diurnal builds a pattern from per-hour multipliers (one bucket per
// entry; pass 24 for a day). Use DefaultDiurnal for the canonical
// evening-peak day.
func Diurnal(hourly ...float64) Pattern {
	return Pattern{Name: "diurnal", Buckets: append([]float64(nil), hourly...)}
}

// DefaultDiurnal is a compressed production day: a small overnight
// trough, a daytime shoulder, and an evening gaming peak.
func DefaultDiurnal() Pattern {
	return Diurnal(
		0.3, 0.2, 0.15, 0.1, 0.1, 0.15, // 00-05: trough
		0.3, 0.5, 0.7, 0.8, 0.9, 1.0, // 06-11: morning climb
		1.1, 1.0, 0.9, 1.0, 1.2, 1.5, // 12-17: afternoon
		2.0, 2.5, 2.8, 2.4, 1.5, 0.8, // 18-23: evening peak
	)
}

// patternCatalog indexes the named patterns.
func patternCatalog() map[string]Pattern {
	return map[string]Pattern{
		"steady":      Steady(),
		"ramp":        Ramp(),
		"spike":       Spike(),
		"flash-crowd": FlashCrowd(),
		"diurnal":     DefaultDiurnal(),
	}
}

// PatternNames returns the catalog's names for flag help.
func PatternNames() []string {
	return []string{"steady", "ramp", "spike", "flash-crowd", "diurnal"}
}

// PatternByName returns the named arrival pattern (case-insensitive).
func PatternByName(name string) (Pattern, error) {
	if p, ok := patternCatalog()[strings.ToLower(name)]; ok {
		return p, nil
	}
	return Pattern{}, fmt.Errorf("loadgen: unknown arrival pattern %q (have %s)",
		name, strings.Join(PatternNames(), ", "))
}
