package loadgen

import (
	"fmt"
	"sort"
	"strings"
)

// SLO is one scenario's service-level report, aggregated across every
// session the executor ran. Latency fields are milliseconds.
type SLO struct {
	Scenario string

	// Session accounting: OK ran their full frame budget, Crashed were
	// scripted to vanish, Rejected were refused admission, Failed hit a
	// terminal error.
	Sessions, OK, Crashed, Rejected, Failed int

	// Frames is the total displayed across all sessions.
	Frames int64
	// P50/P99/MeanLatency/MaxLatency summarize per-frame
	// issue-to-display latency over every successful frame.
	P50, P99, MeanLatency, MaxLatency float64
	// FPS is the mean delivered frame rate across sessions that got at
	// least one frame.
	FPS float64

	// Failover and lifecycle activity, summed over sessions.
	GapSkips, ReDispatched, Evictions int64
	HandoffsOK, HandoffsFailed        int64
	QualitySteps                      int64
	DownlinkBytes                     int64

	// Fleet counters at scenario end (zero when the target exposes
	// none).
	FleetPeak, FleetRejected, FleetGateWaits int64

	// PerClass counts sessions by device class, for the population
	// breakdown line.
	PerClass map[string]int
}

// Summarize aggregates per-session results into the scenario SLO:
// counter totals from each session's final snapshot, quantiles from
// the merged per-session digests.
func Summarize(name string, results []Result) SLO {
	slo := SLO{Scenario: name, Sessions: len(results), PerClass: map[string]int{}}
	merged := NewDigest()
	var fpsSum float64
	var fpsN int
	for _, r := range results {
		slo.PerClass[r.Plan.Class]++
		switch {
		case r.Err != nil:
			slo.Failed++
		case r.Rejected:
			slo.Rejected++
		case r.Crashed:
			slo.Crashed++
		default:
			slo.OK++
		}
		merged.Merge(r.Latency)
		s := r.Snapshot
		slo.Frames += int64(r.FramesOK)
		slo.GapSkips += s.FramesSkipped
		slo.ReDispatched += s.ReDispatched
		slo.Evictions += s.Evictions
		slo.HandoffsOK += s.HandoffStats.Completed
		slo.HandoffsFailed += s.HandoffStats.Failed
		slo.QualitySteps += s.QualityChanges
		slo.DownlinkBytes += s.DownlinkBytes
		if r.FramesOK > 0 {
			fpsSum += s.DeliveredFPS()
			fpsN++
		}
		if s.Fleet != nil {
			// Fleet counters are global and monotone; the last session
			// to finish carries the scenario-wide totals.
			if s.Fleet.PeakSessions > slo.FleetPeak {
				slo.FleetPeak = s.Fleet.PeakSessions
			}
			if s.Fleet.Rejected > slo.FleetRejected {
				slo.FleetRejected = s.Fleet.Rejected
			}
			if s.Fleet.GateWaits > slo.FleetGateWaits {
				slo.FleetGateWaits = s.Fleet.GateWaits
			}
		}
	}
	slo.P50 = merged.Quantile(0.50)
	slo.P99 = merged.Quantile(0.99)
	slo.MeanLatency = merged.Mean()
	slo.MaxLatency = merged.Max()
	if fpsN > 0 {
		slo.FPS = fpsSum / float64(fpsN)
	}
	return slo
}

// BenchLine renders the SLO as one Go-benchmark-format line, which is
// what scripts/benchjson parses into BENCH_load.json. Iterations are
// displayed frames; ns/op the mean frame latency.
func (s SLO) BenchLine() string {
	var b strings.Builder
	fmt.Fprintf(&b, "BenchmarkLoad/scenario=%s \t%8d\t%12.0f ns/op", s.Scenario, s.Frames, s.MeanLatency*1e6)
	add := func(v float64, unit string) { fmt.Fprintf(&b, "\t%12.3f %s", v, unit) }
	add(s.P50, "p50_ms")
	add(s.P99, "p99_ms")
	add(s.FPS, "fps")
	add(float64(s.OK), "sessions_ok")
	add(float64(s.Crashed), "sessions_crashed")
	add(float64(s.Rejected), "sessions_rejected")
	add(float64(s.Failed), "sessions_failed")
	add(float64(s.GapSkips), "gap_skips")
	add(float64(s.ReDispatched), "redispatched")
	add(float64(s.Evictions), "evictions")
	add(float64(s.HandoffsOK), "handoffs_ok")
	add(float64(s.HandoffsFailed), "handoffs_failed")
	add(float64(s.QualitySteps), "quality_steps")
	if s.Frames > 0 {
		add(float64(s.DownlinkBytes)/float64(s.Frames)/1024, "downlink_kb/frame")
	} else {
		add(0, "downlink_kb/frame")
	}
	add(float64(s.FleetPeak), "fleet_peak")
	add(float64(s.FleetRejected), "fleet_rejected")
	add(float64(s.FleetGateWaits), "fleet_gate_waits")
	return b.String()
}

// Table renders the SLO as a human-readable console block.
func (s SLO) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scenario %-16s sessions=%d ok=%d crashed=%d rejected=%d failed=%d\n",
		s.Scenario, s.Sessions, s.OK, s.Crashed, s.Rejected, s.Failed)
	fmt.Fprintf(&b, "  latency  p50=%.2fms p99=%.2fms mean=%.2fms max=%.2fms (%d frames)\n",
		s.P50, s.P99, s.MeanLatency, s.MaxLatency, s.Frames)
	fmt.Fprintf(&b, "  delivery fps=%.1f gap_skips=%d redispatched=%d evictions=%d\n",
		s.FPS, s.GapSkips, s.ReDispatched, s.Evictions)
	fmt.Fprintf(&b, "  elastic  handoffs_ok=%d handoffs_failed=%d quality_steps=%d downlink=%.1fKB\n",
		s.HandoffsOK, s.HandoffsFailed, s.QualitySteps, float64(s.DownlinkBytes)/1024)
	fmt.Fprintf(&b, "  fleet    peak=%d rejected=%d gate_waits=%d\n",
		s.FleetPeak, s.FleetRejected, s.FleetGateWaits)
	classes := make([]string, 0, len(s.PerClass))
	for c := range s.PerClass {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	parts := make([]string, 0, len(classes))
	for _, c := range classes {
		parts = append(parts, fmt.Sprintf("%s=%d", c, s.PerClass[c]))
	}
	fmt.Fprintf(&b, "  classes  %s\n", strings.Join(parts, " "))
	return b.String()
}
