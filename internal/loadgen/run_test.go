package loadgen

import (
	"testing"
	"time"

	"github.com/gbooster/gbooster"
	"github.com/gbooster/gbooster/internal/netsim"
)

// TestRunAgainstFleet is the end-to-end smoke: a small mixed-churn
// scenario against an in-process fleet on the hub. Every session must
// finish cleanly or via its scripted crash — no failures — and the
// aggregated SLO must show frames, fleet visibility, and per-session
// reports from the shared collector path.
func TestRunAgainstFleet(t *testing.T) {
	const w, h = 64, 48
	target, err := NewFleetTarget(gbooster.FleetConfig{
		Width: w, Height: h,
		// Idle reap well past the test horizon: crashed sessions leak
		// until reap by design, and live ones must never be reaped.
		IdleTimeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer target.Close()

	sc := Scenario{
		Name:             "smoke",
		Sessions:         6,
		ArrivalWindow:    300 * time.Millisecond,
		FramesPerSession: 10,
		FrameTimeout:     10 * time.Second,
		Links:            []WeightedProfile{{Profile: netsim.Loopback, Weight: 1}},
		Crash:            0.2,
		HotJoin:          0.2,
		Seed:             9,
	}
	results, err := Run(RunConfig{Target: target, Width: w, Height: h, Workers: 4, Logf: t.Logf}, sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != sc.Sessions {
		t.Fatalf("%d results for %d sessions", len(results), sc.Sessions)
	}
	for _, r := range results {
		if r.Err != nil {
			t.Errorf("session %s (%s churn=%q): %v", r.Plan.Name, r.Plan.Class, r.Plan.Churn, r.Err)
		}
		if r.Rejected {
			t.Errorf("session %s rejected — fleet has no cap this small", r.Plan.Name)
		}
		if !r.Crashed && r.FramesOK != sc.FramesPerSession {
			t.Errorf("session %s: %d/%d frames", r.Plan.Name, r.FramesOK, sc.FramesPerSession)
		}
		if r.Crashed && r.Plan.Churn != ChurnCrash {
			t.Errorf("session %s crashed without a crash script", r.Plan.Name)
		}
		if int64(r.FramesOK) != r.Latency.Count() {
			t.Errorf("session %s: %d frames but %d latency samples", r.Plan.Name, r.FramesOK, r.Latency.Count())
		}
		if len(r.Reports) == 0 {
			t.Errorf("session %s: no collector reports", r.Plan.Name)
		}
		if r.Snapshot.Fleet == nil {
			t.Errorf("session %s: snapshot missing the fleet rider", r.Plan.Name)
		}
	}

	slo := Summarize(sc.Name, results)
	if slo.Failed != 0 || slo.OK+slo.Crashed != sc.Sessions {
		t.Fatalf("accounting: %+v", slo)
	}
	if slo.Frames == 0 || slo.P50 <= 0 || slo.FPS <= 0 {
		t.Errorf("empty SLO: frames=%d p50=%v fps=%v", slo.Frames, slo.P50, slo.FPS)
	}
	if slo.FleetPeak == 0 {
		t.Errorf("fleet rider never observed: %+v", slo)
	}
	t.Logf("\n%s", slo.Table())
}

// TestRunCongestedQualityLadder drives the canned congested preset
// with adaptive quality on and requires the quality ladder to actually
// step: sustained WiFiCongested loss and delay must push at least one
// session down from the 85 ceiling toward the 25 floor, surfacing as
// quality_steps > 0 in the aggregated SLO.
func TestRunCongestedQualityLadder(t *testing.T) {
	const w, h = 96, 72
	opts := []gbooster.Option{
		gbooster.WithQuality(85),
		gbooster.WithAdaptiveQuality(25),
	}
	target, err := NewFleetTarget(gbooster.FleetConfig{
		Width: w, Height: h,
		IdleTimeout: 30 * time.Second,
	}, opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer target.Close()

	sc := CongestedScenario()
	sc.FrameTimeout = 30 * time.Second
	results, err := Run(RunConfig{Target: target, Width: w, Height: h, Workers: 4, Options: opts, Logf: t.Logf}, sc)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Err != nil {
			t.Errorf("session %s: %v", r.Plan.Name, r.Err)
		}
	}
	slo := Summarize(sc.Name, results)
	if slo.Failed != 0 {
		t.Fatalf("sessions failed on the congested link: %+v", slo)
	}
	if slo.QualitySteps == 0 {
		t.Errorf("quality ladder never stepped under congestion: %+v", slo)
	}
	t.Logf("\n%s", slo.Table())
}

// TestRunHandoffChurn pins the lifecycle scripts against the fleet:
// hot-join and drain sessions must complete bootstrap handoffs.
func TestRunHandoffChurn(t *testing.T) {
	const w, h = 64, 48
	target, err := NewFleetTarget(gbooster.FleetConfig{
		Width: w, Height: h,
		IdleTimeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer target.Close()

	sc := Scenario{
		Name:             "handoff-smoke",
		Sessions:         4,
		ArrivalWindow:    200 * time.Millisecond,
		FramesPerSession: 16,
		FrameTimeout:     10 * time.Second,
		Links:            []WeightedProfile{{Profile: netsim.Loopback, Weight: 1}},
		HotJoin:          1.0, // every session hot-joins
		Seed:             21,
	}
	results, err := Run(RunConfig{Target: target, Width: w, Height: h, Workers: 4}, sc)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Err != nil {
			t.Errorf("session %s: %v", r.Plan.Name, r.Err)
			continue
		}
		if r.Plan.Churn != ChurnHotJoin {
			t.Fatalf("session %s: churn %q, scripted hotjoin for all", r.Plan.Name, r.Plan.Churn)
		}
		if r.Snapshot.HandoffStats.Completed == 0 {
			t.Errorf("session %s: hot-join completed no handoff: %+v", r.Plan.Name, r.Snapshot.HandoffStats)
		}
	}
	slo := Summarize(sc.Name, results)
	if slo.HandoffsOK < int64(sc.Sessions) {
		t.Errorf("handoffs_ok = %d, want >= %d", slo.HandoffsOK, sc.Sessions)
	}
}
