package loadgen

import (
	"math"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"github.com/gbooster/gbooster/internal/sim"
)

// TestDigestQuantilesVsSort checks the log-bucketed digest against a
// reference nearest-rank sort on a mixed distribution: every queried
// quantile must land within the digest's relative error bound.
func TestDigestQuantilesVsSort(t *testing.T) {
	rng := sim.NewRNG(42)
	d := NewDigest()
	var ref []float64
	for i := 0; i < 20000; i++ {
		// Lognormal-ish latencies with a heavy tail, in ms.
		v := math.Exp(rng.Norm(2.5, 0.8))
		if rng.Bool(0.01) {
			v *= 20 // tail spikes
		}
		d.Add(v)
		ref = append(ref, v)
	}
	sort.Float64s(ref)
	refQ := func(q float64) float64 {
		rank := int(math.Ceil(q*float64(len(ref)))) - 1
		if rank < 0 {
			rank = 0
		}
		return ref[rank]
	}
	for _, q := range []float64{0.01, 0.25, 0.5, 0.9, 0.99, 0.999} {
		got, want := d.Quantile(q), refQ(q)
		if relErr := math.Abs(got-want) / want; relErr > 0.05 {
			t.Errorf("q%.3f: digest %.3f vs sort %.3f (rel err %.3f)", q, got, want, relErr)
		}
	}
	if d.Count() != int64(len(ref)) {
		t.Errorf("Count = %d, want %d", d.Count(), len(ref))
	}
	if got, want := d.Max(), ref[len(ref)-1]; got != want {
		t.Errorf("Max = %v, want exact %v", got, want)
	}
	if got, want := d.Min(), ref[0]; got != want {
		t.Errorf("Min = %v, want exact %v", got, want)
	}
	var sum float64
	for _, v := range ref {
		sum += v
	}
	if got, want := d.Mean(), sum/float64(len(ref)); math.Abs(got-want)/want > 1e-9 {
		t.Errorf("Mean = %v, want exact %v", got, want)
	}
}

// TestDigestMergeEqualsUnion checks split-and-merge agrees with one
// digest fed the whole stream — the property scenario aggregation
// rests on.
func TestDigestMergeEqualsUnion(t *testing.T) {
	rng := sim.NewRNG(7)
	whole, a, b := NewDigest(), NewDigest(), NewDigest()
	for i := 0; i < 5000; i++ {
		v := rng.Exp(30)
		whole.Add(v)
		if i%2 == 0 {
			a.Add(v)
		} else {
			b.Add(v)
		}
	}
	a.Merge(b)
	if a.Count() != whole.Count() || a.Max() != whole.Max() || a.Min() != whole.Min() {
		t.Fatalf("merged count/max/min diverge: %d/%v/%v vs %d/%v/%v",
			a.Count(), a.Max(), a.Min(), whole.Count(), whole.Max(), whole.Min())
	}
	for _, q := range []float64{0.1, 0.5, 0.99} {
		if got, want := a.Quantile(q), whole.Quantile(q); got != want {
			t.Errorf("q%.2f: merged %v != union %v", q, got, want)
		}
	}
	// Merging an empty digest must not disturb min tracking.
	empty := NewDigest()
	before := whole.Min()
	whole.Merge(empty)
	if whole.Min() != before {
		t.Errorf("merge(empty) changed Min: %v -> %v", before, whole.Min())
	}
}

// TestPatternScheduleShape checks arrival schedules: count, bounds,
// ordering, and that shaped patterns actually skew arrivals where the
// shape says.
func TestPatternScheduleShape(t *testing.T) {
	window := 10 * time.Second
	for _, name := range PatternNames() {
		p, err := PatternByName(name)
		if err != nil {
			t.Fatal(err)
		}
		starts := p.Schedule(200, window, sim.NewRNG(5))
		if len(starts) != 200 {
			t.Fatalf("%s: %d starts", name, len(starts))
		}
		for i, s := range starts {
			if s < 0 || s >= window {
				t.Fatalf("%s: start[%d] = %v outside [0, %v)", name, i, s, window)
			}
			if i > 0 && s < starts[i-1] {
				t.Fatalf("%s: schedule not sorted at %d", name, i)
			}
		}
	}
	// Flash crowd: most arrivals in the first 1/12 of the window.
	starts := FlashCrowd().Schedule(200, window, sim.NewRNG(5))
	early := 0
	for _, s := range starts {
		if s < window/12 {
			early++
		}
	}
	if early < 120 {
		t.Errorf("flash-crowd: only %d/200 arrivals in the first slice", early)
	}
	// Steady: roughly half in each half.
	starts = Steady().Schedule(200, window, sim.NewRNG(5))
	firstHalf := 0
	for _, s := range starts {
		if s < window/2 {
			firstHalf++
		}
	}
	if firstHalf < 80 || firstHalf > 120 {
		t.Errorf("steady: %d/200 arrivals in the first half", firstHalf)
	}
}

// TestPlanDeterminism is the seeded-scenario smoke: the same scenario
// value must expand to the identical plan — arrivals, device mix,
// links, churn script — on every call.
func TestPlanDeterminism(t *testing.T) {
	for _, name := range ScenarioNames() {
		sc, err := ScenarioByName(name)
		if err != nil {
			t.Fatal(err)
		}
		a, b := sc.Plan(), sc.Plan()
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: two Plan() calls diverge", name)
		}
		sc2 := sc
		sc2.Seed++
		if reflect.DeepEqual(a, sc2.Plan()) {
			t.Errorf("%s: different seeds produced identical plans", name)
		}
	}
}

// TestPlanScript checks plan contents: unique names, frame budgets,
// churn fractions honored, and churn frames inside the run.
func TestPlanScript(t *testing.T) {
	sc := Churn()
	sc.Sessions = 200
	plans := sc.Plan()
	names := map[string]bool{}
	counts := map[ChurnKind]int{}
	for _, p := range plans {
		if names[p.Name] {
			t.Fatalf("duplicate session name %s", p.Name)
		}
		names[p.Name] = true
		if p.Frames != sc.FramesPerSession {
			t.Fatalf("%s: frames %d", p.Name, p.Frames)
		}
		if p.Workload == "" || p.Class == "" || p.LinkName == "" {
			t.Fatalf("%s: incomplete plan %+v", p.Name, p)
		}
		counts[p.Churn]++
		if p.Churn != ChurnNone && (p.ChurnFrame < p.Frames/3 || p.ChurnFrame >= p.Frames) {
			t.Fatalf("%s: churn frame %d outside middle window of %d", p.Name, p.ChurnFrame, p.Frames)
		}
	}
	// 25% each scripted; allow generous sampling slack at n=200.
	for _, k := range []ChurnKind{ChurnCrash, ChurnDrain, ChurnHotJoin} {
		if c := counts[k]; c < 25 || c > 75 {
			t.Errorf("churn %q count %d, want ~50", k, c)
		}
	}
	if counts[ChurnNone] < 25 {
		t.Errorf("undisturbed count %d, want ~50", counts[ChurnNone])
	}
}

// TestSummarizeAndBenchLine drives Summarize over synthetic results
// and checks the SLO and its bench-format rendering.
func TestSummarizeAndBenchLine(t *testing.T) {
	mk := func(frames int, lat float64) Result {
		d := NewDigest()
		for i := 0; i < frames; i++ {
			d.Add(lat)
		}
		r := Result{Plan: SessionPlan{Class: "lgg5"}, Latency: d, FramesOK: frames}
		r.Snapshot.FramesShown = int64(frames)
		r.Snapshot.Elapsed = time.Second
		r.Snapshot.FramesSkipped = 2
		r.Snapshot.HandoffStats.Completed = 1
		return r
	}
	crashed := mk(3, 40)
	crashed.Crashed = true
	rejected := Result{Plan: SessionPlan{Class: "nexus5"}, Latency: NewDigest(), Rejected: true}
	slo := Summarize("unit", []Result{mk(10, 20), mk(10, 20), crashed, rejected})
	if slo.Sessions != 4 || slo.OK != 2 || slo.Crashed != 1 || slo.Rejected != 1 || slo.Failed != 0 {
		t.Fatalf("session accounting: %+v", slo)
	}
	if slo.Frames != 23 {
		t.Errorf("Frames = %d, want 23", slo.Frames)
	}
	if slo.GapSkips != 6 || slo.HandoffsOK != 3 {
		t.Errorf("gap_skips=%d handoffs=%d", slo.GapSkips, slo.HandoffsOK)
	}
	if slo.P50 < 19 || slo.P50 > 21 {
		t.Errorf("P50 = %v, want ~20", slo.P50)
	}
	if slo.PerClass["lgg5"] != 3 || slo.PerClass["nexus5"] != 1 {
		t.Errorf("PerClass = %v", slo.PerClass)
	}
	line := slo.BenchLine()
	for _, want := range []string{"BenchmarkLoad/scenario=unit", "ns/op", "p50_ms", "p99_ms", "fps", "gap_skips", "handoffs_ok"} {
		if !strings.Contains(line, want) {
			t.Errorf("bench line missing %q: %s", want, line)
		}
	}
	if tbl := slo.Table(); !strings.Contains(tbl, "scenario unit") {
		t.Errorf("table: %s", tbl)
	}
}
