package loadgen

import (
	"fmt"
	"strings"
	"time"

	"github.com/gbooster/gbooster/internal/device"
	"github.com/gbooster/gbooster/internal/netsim"
	"github.com/gbooster/gbooster/internal/sim"
)

// ChurnKind is a mid-session lifecycle event a churn script injects
// into one session.
type ChurnKind string

const (
	// ChurnNone runs the session to completion undisturbed.
	ChurnNone ChurnKind = ""
	// ChurnCrash abruptly blackholes the session's link mid-run: the
	// client vanishes without closing anything and the fleet must
	// idle-reap its state.
	ChurnCrash ChurnKind = "crash"
	// ChurnHotJoin attaches a second fleet connection mid-run — PR 5's
	// elastic hot-join, with the session bootstrap handoff admitting the
	// newcomer.
	ChurnHotJoin ChurnKind = "hotjoin"
	// ChurnDrain hot-joins a second connection, then administratively
	// drains the first a few frames later: in-flight frames migrate to
	// the replica (PR 2's failover machinery) and the drained device is
	// later readmitted via bootstrap handoff.
	ChurnDrain ChurnKind = "drain"
)

// DeviceClass is one slice of the simulated player population: a
// catalog phone, the workloads that population runs, and its share.
type DeviceClass struct {
	// Name labels the class in reports ("nexus5", ...).
	Name string
	// Phone is the catalog device the class simulates.
	Phone device.UserDevice
	// Workloads are the catalog workload IDs this class plays, chosen
	// uniformly per session.
	Workloads []string
	// Weight is the class's relative population share.
	Weight float64
}

// DefaultCatalog is the heterogeneous player population, one class per
// paper phone with shares proportional to the Table-I GPU-capability
// ratios (3.6 : 4.8 : 6.7) — newer, more capable phones are the larger
// and hungrier slice, running the heavier games.
func DefaultCatalog() []DeviceClass {
	rows := device.TableI()
	return []DeviceClass{
		{Name: "nexus5", Phone: device.Nexus5(), Workloads: []string{"G5", "G6", "A2"}, Weight: rows[0].DevGPUGPps},
		{Name: "lgg4", Phone: device.LGG4(), Workloads: []string{"G3", "G6"}, Weight: rows[1].DevGPUGPps},
		{Name: "lgg5", Phone: device.LGG5(), Workloads: []string{"G2", "G5"}, Weight: rows[2].DevGPUGPps},
	}
}

// WeightedProfile is a link profile with a population share.
type WeightedProfile struct {
	Profile netsim.Profile
	Weight  float64
}

// Scenario is a complete load-test specification. Plan expands it into
// per-session plans, purely as a function of the scenario value (same
// Seed → identical plan), so every run of a scenario is replayable.
type Scenario struct {
	// Name labels the scenario in reports and BENCH_load.json.
	Name string
	// Sessions is how many players arrive over the window.
	Sessions int
	// ArrivalWindow is the span arrivals are spread over.
	ArrivalWindow time.Duration
	// FramesPerSession is each session's frame-loop length.
	FramesPerSession int
	// FrameInterval paces the frame loop (0 = as fast as possible).
	FrameInterval time.Duration
	// FrameTimeout bounds each StepFrame call.
	FrameTimeout time.Duration
	// Pattern shapes arrivals across the window.
	Pattern Pattern
	// Links is the per-session link-profile mix (empty = loopback).
	Links []WeightedProfile
	// Catalog is the device-class mix (empty = DefaultCatalog).
	Catalog []DeviceClass
	// Crash, Drain, HotJoin are the fractions of sessions scripted
	// with each churn kind (the rest run undisturbed).
	Crash, Drain, HotJoin float64
	// Seed roots every random choice the plan makes.
	Seed uint64
}

// SessionPlan is one session's script: who arrives, when, over what
// link, playing what, and what churn strikes it.
type SessionPlan struct {
	// ID is the session's index; Name its unique identity on the wire
	// (the hub port / source address).
	ID   int
	Name string
	// Start is the arrival offset from scenario begin.
	Start time.Duration
	// Class and Workload identify the simulated population slice.
	Class    string
	Workload string
	// Link is the session's emulated path; LinkName its profile name.
	Link     netsim.LinkConfig
	LinkName string
	// Frames is the session's frame budget; Seed its private stream.
	Frames int
	Seed   uint64
	// Churn is the scripted event (ChurnNone for most sessions) and
	// ChurnFrame the frame index it fires before.
	Churn      ChurnKind
	ChurnFrame int
}

// withDefaults fills the zero-value fields.
func (sc Scenario) withDefaults() Scenario {
	if sc.Sessions <= 0 {
		sc.Sessions = 16
	}
	if sc.ArrivalWindow <= 0 {
		sc.ArrivalWindow = 10 * time.Second
	}
	if sc.FramesPerSession <= 0 {
		sc.FramesPerSession = 30
	}
	if sc.FrameTimeout <= 0 {
		sc.FrameTimeout = 10 * time.Second
	}
	if len(sc.Pattern.Buckets) == 0 {
		sc.Pattern = Steady()
	}
	if len(sc.Links) == 0 {
		sc.Links = []WeightedProfile{{Profile: netsim.Loopback, Weight: 1}}
	}
	if len(sc.Catalog) == 0 {
		sc.Catalog = DefaultCatalog()
	}
	return sc
}

// Plan expands the scenario into per-session plans, sorted by start
// time. It is pure in the scenario value: calling it twice yields
// identical plans, which is what makes scenario runs replayable.
func (sc Scenario) Plan() []SessionPlan {
	sc = sc.withDefaults()
	root := sim.NewRNG(sc.Seed)
	// Independent streams per concern, so e.g. adding a churn kind
	// cannot shift which workload session 7 plays.
	arrivalRNG := root.Fork()
	mixRNG := root.Fork()
	churnRNG := root.Fork()
	seedRNG := root.Fork()

	starts := sc.Pattern.Schedule(sc.Sessions, sc.ArrivalWindow, arrivalRNG)
	plans := make([]SessionPlan, sc.Sessions)
	for i := range plans {
		class := pickClass(sc.Catalog, mixRNG)
		link := pickProfile(sc.Links, mixRNG)
		p := SessionPlan{
			ID:       i,
			Name:     fmt.Sprintf("s%04d", i),
			Start:    starts[i],
			Class:    class.Name,
			Workload: class.Workloads[mixRNG.Intn(len(class.Workloads))],
			Link:     link.Link,
			LinkName: link.Name,
			Frames:   sc.FramesPerSession,
			Seed:     seedRNG.Uint64(),
		}
		// Churn script: at most one event per session, striking in the
		// middle third of its frame budget so there is streaming state
		// worth handing off (and frames left to observe the recovery).
		r := churnRNG.Float64()
		third := p.Frames / 3
		if third < 1 {
			third = 1
		}
		switch {
		case r < sc.Crash:
			p.Churn = ChurnCrash
		case r < sc.Crash+sc.Drain:
			p.Churn = ChurnDrain
		case r < sc.Crash+sc.Drain+sc.HotJoin:
			p.Churn = ChurnHotJoin
		}
		if p.Churn != ChurnNone {
			p.ChurnFrame = third + churnRNG.Intn(third)
		}
		plans[i] = p
	}
	return plans
}

// pickClass draws a device class by weight.
func pickClass(catalog []DeviceClass, rng *sim.RNG) DeviceClass {
	var total float64
	for _, c := range catalog {
		if c.Weight > 0 {
			total += c.Weight
		}
	}
	if total <= 0 {
		return catalog[rng.Intn(len(catalog))]
	}
	u := rng.Float64() * total
	for _, c := range catalog {
		if c.Weight <= 0 {
			continue
		}
		if u < c.Weight {
			return c
		}
		u -= c.Weight
	}
	return catalog[len(catalog)-1]
}

// pickProfile draws a link profile by weight.
func pickProfile(links []WeightedProfile, rng *sim.RNG) netsim.Profile {
	var total float64
	for _, l := range links {
		if l.Weight > 0 {
			total += l.Weight
		}
	}
	if total <= 0 {
		return links[rng.Intn(len(links))].Profile
	}
	u := rng.Float64() * total
	for _, l := range links {
		if l.Weight <= 0 {
			continue
		}
		if u < l.Weight {
			return l.Profile
		}
		u -= l.Weight
	}
	return links[len(links)-1].Profile
}

// Preset scenarios. Sizes are deliberately modest — these run on a
// developer machine in seconds; scale Sessions/Frames up via flags for
// real capacity studies.

// ProductionDay is the realistic mixed day: diurnal arrivals, the full
// device catalog, mostly-good links with a congested and a lossy tail,
// and light organic churn.
func ProductionDay() Scenario {
	return Scenario{
		Name:             "production-day",
		Sessions:         24,
		ArrivalWindow:    8 * time.Second,
		FramesPerSession: 30,
		Pattern:          DefaultDiurnal(),
		Links: []WeightedProfile{
			{Profile: netsim.WiFiGood, Weight: 6},
			{Profile: netsim.LTE, Weight: 3},
			{Profile: netsim.WiFiCongested, Weight: 1},
		},
		Crash:   0.05,
		HotJoin: 0.10,
		Seed:    1,
	}
}

// Burst is the spike preset: a steady floor with a mid-window surge
// that stresses admission and the GPU gate.
func Burst() Scenario {
	return Scenario{
		Name:             "spike",
		Sessions:         24,
		ArrivalWindow:    6 * time.Second,
		FramesPerSession: 24,
		Pattern:          Spike(),
		Links: []WeightedProfile{
			{Profile: netsim.WiFiGood, Weight: 3},
			{Profile: netsim.LTE, Weight: 1},
		},
		Seed: 2,
	}
}

// FlashCrowdScenario is the stampede: nearly everyone arrives in the
// opening moments, straight into the admission cap.
func FlashCrowdScenario() Scenario {
	return Scenario{
		Name:             "flash-crowd",
		Sessions:         32,
		ArrivalWindow:    5 * time.Second,
		FramesPerSession: 20,
		Pattern:          FlashCrowd(),
		Links: []WeightedProfile{
			{Profile: netsim.WiFiGood, Weight: 1},
		},
		Seed: 3,
	}
}

// Churn is the lifecycle torture test: steady arrivals where most
// sessions crash, drain, or hot-join mid-run, exercising idle-reap,
// failover migration, and bootstrap handoff under load.
func Churn() Scenario {
	return Scenario{
		Name:             "churn",
		Sessions:         16,
		ArrivalWindow:    5 * time.Second,
		FramesPerSession: 30,
		Pattern:          Steady(),
		Links: []WeightedProfile{
			{Profile: netsim.WiFiGood, Weight: 1},
		},
		Crash:   0.25,
		Drain:   0.25,
		HotJoin: 0.25,
		Seed:    4,
	}
}

// CongestedScenario is the bad-network preset: a handful of sessions,
// every one on congested WiFi, running long enough for the congestion
// feedback loop to bite. The catalog is pinned to the heaviest
// workload (G5): the point is saturating the constrained link, and the
// default mixed population's lighter workloads fit inside the congested
// budget without ever tripping the feedback. With adaptive quality
// enabled (-adaptive-quality) this is the preset that demonstrates the
// quality ladder: the SLO's quality_steps goes positive as sessions
// step down under sustained loss and delay.
func CongestedScenario() Scenario {
	return Scenario{
		Name:             "congested",
		Sessions:         3,
		ArrivalWindow:    500 * time.Millisecond,
		FramesPerSession: 80,
		Pattern:          Steady(),
		Links: []WeightedProfile{
			{Profile: netsim.WiFiCongested, Weight: 1},
		},
		Catalog: []DeviceClass{
			{Name: "nexus5", Phone: device.Nexus5(), Workloads: []string{"G5"}, Weight: 1},
		},
		Seed: 5,
	}
}

// ScenarioNames returns the preset names for flag help.
func ScenarioNames() []string {
	return []string{"production-day", "spike", "flash-crowd", "churn", "congested"}
}

// ScenarioByName returns the named preset (case-insensitive).
func ScenarioByName(name string) (Scenario, error) {
	switch strings.ToLower(name) {
	case "production-day":
		return ProductionDay(), nil
	case "spike", "burst":
		return Burst(), nil
	case "flash-crowd":
		return FlashCrowdScenario(), nil
	case "churn":
		return Churn(), nil
	case "congested":
		return CongestedScenario(), nil
	}
	return Scenario{}, fmt.Errorf("loadgen: unknown scenario %q (have %s)",
		name, strings.Join(ScenarioNames(), ", "))
}
