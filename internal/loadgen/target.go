package loadgen

import (
	"fmt"
	"net"

	"github.com/gbooster/gbooster"
	"github.com/gbooster/gbooster/internal/metrics"
	"github.com/gbooster/gbooster/internal/netsim"
)

// Target is what a scenario's sessions connect to: an in-process fleet
// behind an emulated network (FleetTarget), or a real server over UDP
// (UDPTarget).
type Target interface {
	// Dial opens one named connection to the target. name must be
	// unique among live connections (it is the client's source address
	// in the in-process topology); link shapes the emulated path where
	// the target has one; seed roots the path's randomness.
	Dial(name string, link netsim.LinkConfig, seed uint64) (Conn, error)
	// FleetStats reads the serving fleet's counters, or nil when the
	// target has no view of them (a remote server).
	FleetStats() *metrics.FleetStats
	// Close tears the target down.
	Close() error
}

// Conn is one dialed connection: the packet conn a Player connects
// over, the peer address to aim at, and a crash injector.
type Conn struct {
	PC   net.PacketConn
	Peer net.Addr

	crash func()
}

// Crash severs the connection the way a dying client would — abruptly
// and without closing anything (no-op if the target can't).
func (c Conn) Crash() {
	if c.crash != nil {
		c.crash()
	}
}

// FleetTarget serves scenarios against an in-process gbooster.Fleet
// listening on a netsim.Hub: every session gets its own emulated link
// (loss/jitter/bandwidth per its plan) and a unique source address for
// the fleet to demultiplex on.
type FleetTarget struct {
	fl   *gbooster.Fleet
	hub  *netsim.Hub
	done chan error
}

// NewFleetTarget builds the fleet and starts serving the hub.
func NewFleetTarget(cfg gbooster.FleetConfig, opts ...gbooster.Option) (*FleetTarget, error) {
	fl, err := gbooster.NewFleet(cfg, opts...)
	if err != nil {
		return nil, fmt.Errorf("loadgen: %w", err)
	}
	t := &FleetTarget{fl: fl, hub: netsim.NewHub("fleet"), done: make(chan error, 1)}
	go func() { t.done <- fl.ServeConn(t.hub) }()
	return t, nil
}

// Dial attaches a new client port to the hub.
func (t *FleetTarget) Dial(name string, link netsim.LinkConfig, seed uint64) (Conn, error) {
	port, err := t.hub.Attach(name, link, seed)
	if err != nil {
		return Conn{}, err
	}
	return Conn{PC: port, Peer: t.hub.Addr(), crash: port.Blackhole}, nil
}

// FleetStats reads the fleet's counters through its snapshot.
func (t *FleetTarget) FleetStats() *metrics.FleetStats {
	s := t.fl.Snapshot().FleetStats
	return &s
}

// Fleet exposes the underlying fleet (for tests asserting on it).
func (t *FleetTarget) Fleet() *gbooster.Fleet { return t.fl }

// Close shuts the fleet (and with it the hub and every port) down and
// waits for the serve loop to exit.
func (t *FleetTarget) Close() error {
	err := t.fl.Close()
	<-t.done
	return err
}

// UDPTarget aims scenarios at a real server address. Link profiles
// don't apply — the real network is whatever it is — and the fleet's
// counters aren't visible from here.
type UDPTarget struct {
	addr *net.UDPAddr
}

// NewUDPTarget resolves the server address.
func NewUDPTarget(addr string) (*UDPTarget, error) {
	raddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("loadgen: resolve %q: %w", addr, err)
	}
	return &UDPTarget{addr: raddr}, nil
}

// Dial opens a fresh local UDP socket toward the server.
func (t *UDPTarget) Dial(string, netsim.LinkConfig, uint64) (Conn, error) {
	pc, err := net.ListenPacket("udp", ":0")
	if err != nil {
		return Conn{}, fmt.Errorf("loadgen: local socket: %w", err)
	}
	return Conn{PC: pc, Peer: t.addr, crash: func() { _ = pc.Close() }}, nil
}

// FleetStats is nil for a remote server.
func (t *UDPTarget) FleetStats() *metrics.FleetStats { return nil }

// Close is a no-op: sessions own their sockets.
func (t *UDPTarget) Close() error { return nil }
