package loadgen

import (
	"math"
	"time"
)

// Digest is a fixed-size log-bucketed quantile sketch for frame
// latencies: constant memory per session, a few percent relative error
// on quantiles, and cheap merging across sessions — what a scenario
// needs to report p50/p99 over hundreds of thousands of frames without
// keeping them all.
const (
	digestBuckets = 512
	digestGamma   = 1.05 // ≤2.5% relative quantile error
	// digestMin is the smallest distinguishable value (in the caller's
	// unit); everything at or below it lands in bucket 0.
	digestMin = 1e-3
)

var digestLogGamma = math.Log(digestGamma)

type Digest struct {
	counts [digestBuckets]int64
	n      int64
	sum    float64
	min    float64
	max    float64
}

// NewDigest returns an empty digest.
func NewDigest() *Digest { return &Digest{} }

// Add records one value. Negative and NaN values are ignored.
func (d *Digest) Add(v float64) {
	if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	i := bucketOf(v)
	d.counts[i]++
	if d.n == 0 || v < d.min {
		d.min = v
	}
	if v > d.max {
		d.max = v
	}
	d.n++
	d.sum += v
}

// AddDuration records a duration in milliseconds.
func (d *Digest) AddDuration(v time.Duration) {
	d.Add(float64(v) / float64(time.Millisecond))
}

// bucketOf maps a value to its log bucket.
func bucketOf(v float64) int {
	if v <= digestMin {
		return 0
	}
	i := int(math.Log(v/digestMin)/digestLogGamma) + 1
	if i >= digestBuckets {
		return digestBuckets - 1
	}
	return i
}

// bucketValue is the geometric midpoint a bucket reports for its
// members.
func bucketValue(i int) float64 {
	if i == 0 {
		return digestMin
	}
	return digestMin * math.Pow(digestGamma, float64(i)-0.5)
}

// Count returns the number of recorded values.
func (d *Digest) Count() int64 { return d.n }

// Mean returns the exact arithmetic mean of recorded values.
func (d *Digest) Mean() float64 {
	if d.n == 0 {
		return 0
	}
	return d.sum / float64(d.n)
}

// Max returns the exact maximum recorded value.
func (d *Digest) Max() float64 { return d.max }

// Min returns the exact minimum recorded value.
func (d *Digest) Min() float64 { return d.min }

// Quantile returns the approximate q-quantile (q in [0,1]), clamped to
// the exact observed min/max so tails never over-report. Zero with no
// values.
func (d *Digest) Quantile(q float64) float64 {
	if d.n == 0 {
		return 0
	}
	if q <= 0 {
		return d.min
	}
	if q >= 1 {
		return d.max
	}
	rank := int64(math.Ceil(q * float64(d.n)))
	var seen int64
	for i, c := range d.counts {
		seen += c
		if seen >= rank {
			v := bucketValue(i)
			if v < d.min {
				v = d.min
			}
			if v > d.max {
				v = d.max
			}
			return v
		}
	}
	return d.max
}

// Merge folds other into d. Merging preserves the per-bucket error
// bound: a merged digest answers quantiles as if it had seen both
// streams.
func (d *Digest) Merge(other *Digest) {
	if other == nil || other.n == 0 {
		return
	}
	for i, c := range other.counts {
		d.counts[i] += c
	}
	if d.n == 0 || other.min < d.min {
		d.min = other.min
	}
	if other.max > d.max {
		d.max = other.max
	}
	d.n += other.n
	d.sum += other.sum
}
