package loadgen

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"github.com/gbooster/gbooster"
	"github.com/gbooster/gbooster/internal/metrics"
	"github.com/gbooster/gbooster/internal/rudp"
)

// RunConfig configures scenario execution.
type RunConfig struct {
	// Target is what sessions connect to.
	Target Target
	// Width, Height is the streaming resolution (must match the
	// target's).
	Width, Height int
	// Workers bounds concurrently running sessions (0 = one per CPU).
	// Sessions queue behind busy workers, so a worker count below the
	// live-session demand implicitly caps concurrency.
	Workers int
	// Options tune each session's player.
	Options []gbooster.Option
	// Logf, if set, receives progress lines.
	Logf func(format string, args ...any)
}

// Result is one session's outcome.
type Result struct {
	Plan SessionPlan
	// Snapshot is the session's final unified snapshot (with the
	// fleet rider when the target exposes one).
	Snapshot gbooster.PlayerSnapshot
	// Reports are the session's metrics.Registry reports (the eight
	// standard collectors fed through the snapshot path).
	Reports []metrics.Report
	// Latency digests every successful frame's issue-to-display span,
	// in milliseconds.
	Latency *Digest
	// FramesOK counts frames that displayed.
	FramesOK int
	// Crashed marks a scripted mid-run crash (not a failure).
	Crashed bool
	// Rejected marks a session that never got a frame through and
	// timed out — an admission-capacity refusal at the fleet.
	Rejected bool
	// Err is the terminal error of a failed session (nil for clean,
	// crashed, and rejected sessions).
	Err error
}

// Run executes the scenario against the target: plans sessions, starts
// them on the arrival schedule through a worker pool, runs each frame
// loop with its churn script, and returns per-session results in plan
// order. The plan is deterministic in the scenario; the measured
// timings of course are not.
func Run(cfg RunConfig, sc Scenario) ([]Result, error) {
	if cfg.Target == nil {
		return nil, errors.New("loadgen: RunConfig.Target is required")
	}
	if cfg.Width <= 0 || cfg.Height <= 0 {
		return nil, fmt.Errorf("loadgen: bad resolution %dx%d", cfg.Width, cfg.Height)
	}
	sc = sc.withDefaults()
	plans := sc.Plan()
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(plans) {
		workers = len(plans)
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	// Feed jobs in start order so queueing behind busy workers delays
	// the tail of the arrival schedule, not random slices of it.
	ordered := append([]SessionPlan(nil), plans...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Start < ordered[j].Start })
	jobs := make(chan SessionPlan)
	results := make([]Result, len(plans))
	begin := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for p := range jobs {
				if d := time.Until(begin.Add(p.Start)); d > 0 {
					time.Sleep(d)
				}
				results[p.ID] = runSession(cfg, sc, p)
			}
		}()
	}
	logf("loadgen: %s: %d sessions over %v on %d workers", sc.Name, len(plans), sc.ArrivalWindow, workers)
	for _, p := range ordered {
		jobs <- p
	}
	close(jobs)
	wg.Wait()
	logf("loadgen: %s: done in %v", sc.Name, time.Since(begin).Round(time.Millisecond))
	return results, nil
}

// runSession plays one session's frame loop with its churn script and
// collects its snapshots.
func runSession(cfg RunConfig, sc Scenario, p SessionPlan) Result {
	res := Result{Plan: p, Latency: NewDigest()}
	player, err := gbooster.NewPlayer(gbooster.PlayerConfig{
		Workload: p.Workload,
		Width:    cfg.Width,
		Height:   cfg.Height,
		Seed:     p.Seed,
	}, cfg.Options...)
	if err != nil {
		res.Err = fmt.Errorf("session %s: %w", p.Name, err)
		return res
	}
	defer player.Close()

	conn, err := cfg.Target.Dial(p.Name, p.Link, p.Seed)
	if err != nil {
		res.Err = fmt.Errorf("session %s: dial: %w", p.Name, err)
		return res
	}
	if err := player.ConnectConn("dev0", conn.PC, conn.Peer, 1000); err != nil {
		res.Err = fmt.Errorf("session %s: connect: %w", p.Name, err)
		return res
	}

	// Per-session registry on the unified snapshot path. The first
	// observation right after connect anchors the cumulative collectors
	// so their first-to-last differencing spans the whole session.
	reg := metrics.NewStandardRegistry()
	observe := func() gbooster.PlayerSnapshot {
		s := player.Snapshot()
		s.Fleet = cfg.Target.FleetStats()
		reg.Observe(s)
		res.Snapshot = s
		return s
	}
	observe()

	// Drain churn waits for the hot-joined replica to be admitted
	// (bootstrap handoff completed) before draining the original
	// device; draining the only rotation member would stall the loop.
	handoffsAtJoin := int64(-1)
	drained := false

frames:
	for f := 0; f < p.Frames; f++ {
		if p.Churn != ChurnNone && f == p.ChurnFrame {
			switch p.Churn {
			case ChurnCrash:
				// Vanish without closing anything: the link goes dark
				// and the fleet is left to idle-reap the session.
				conn.Crash()
				res.Crashed = true
				break frames
			case ChurnHotJoin, ChurnDrain:
				second, derr := cfg.Target.Dial(p.Name+"-b", p.Link, p.Seed+1)
				if derr != nil {
					res.Err = fmt.Errorf("session %s: hot-join dial: %w", p.Name, derr)
					break frames
				}
				if cerr := player.ConnectConn("dev1", second.PC, second.Peer, 1000); cerr != nil {
					res.Err = fmt.Errorf("session %s: hot-join: %w", p.Name, cerr)
					break frames
				}
				handoffsAtJoin = res.Snapshot.HandoffStats.Completed
			}
		}
		if p.Churn == ChurnDrain && !drained && handoffsAtJoin >= 0 {
			if s := player.Snapshot(); s.HandoffStats.Completed > handoffsAtJoin {
				if derr := player.Drain("dev0"); derr == nil {
					drained = true
				}
			}
		}

		t0 := time.Now()
		if _, serr := player.StepFrame(sc.FrameTimeout); serr != nil {
			if res.FramesOK == 0 && errors.Is(serr, rudp.ErrTimeout) {
				// Nothing ever came back: the fleet never admitted us
				// (over capacity) — a clean refusal, not a failure.
				res.Rejected = true
			} else {
				res.Err = fmt.Errorf("session %s frame %d: %w", p.Name, f, serr)
			}
			break frames
		}
		res.Latency.AddDuration(time.Since(t0))
		res.FramesOK++
		if f%8 == 7 {
			observe()
		}
		if sc.FrameInterval > 0 {
			if d := sc.FrameInterval - time.Since(t0); d > 0 {
				time.Sleep(d)
			}
		}
	}

	observe()
	res.Reports = reg.Reports()
	return res
}
