package thermal

import (
	"errors"
	"testing"
	"time"
)

func TestNewGovernorValidation(t *testing.T) {
	if _, err := NewGovernor(Config{}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("empty config error = %v", err)
	}
	bad := PhoneGPU()
	bad.Levels[0], bad.Levels[1] = bad.Levels[1], bad.Levels[0]
	if _, err := NewGovernor(bad); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("unsorted levels error = %v", err)
	}
	bad = PhoneGPU()
	bad.ThrottleC, bad.RecoverC = 70, 85
	if _, err := NewGovernor(bad); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("inverted thresholds error = %v", err)
	}
	bad = PhoneGPU()
	bad.HeatPerJoule = 0
	if _, err := NewGovernor(bad); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("zero coefficient error = %v", err)
	}
}

func TestIdleGPUStaysCoolAndFast(t *testing.T) {
	g, err := NewGovernor(PhoneGPU())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3600; i++ {
		g.Step(time.Second, 0.05)
	}
	if g.EverThrottled() {
		t.Fatalf("idle GPU throttled at %.1f C", g.TemperatureC())
	}
	if g.FrequencyMHz() != 600 {
		t.Fatalf("idle frequency = %v", g.FrequencyMHz())
	}
}

func TestHeavyLoadThrottlesAfterMinutes(t *testing.T) {
	// The Fig. 1 shape: full frequency holds for several minutes, then
	// the governor steps down substantially.
	g, err := NewGovernor(PhoneGPU())
	if err != nil {
		t.Fatal(err)
	}
	var throttleAt time.Duration
	for at := time.Duration(0); at < 25*time.Minute; at += time.Second {
		g.Step(time.Second, 1)
		if throttleAt == 0 && g.EverThrottled() {
			throttleAt = at
		}
	}
	if throttleAt == 0 {
		t.Fatalf("heavy load never throttled; temp = %.1f C", g.TemperatureC())
	}
	if throttleAt < 4*time.Minute || throttleAt > 16*time.Minute {
		t.Fatalf("first throttle at %v, want minutes-scale onset (paper: ~10 min)", throttleAt)
	}
	if g.FrequencyMHz() >= 600 {
		t.Fatal("frequency did not drop under sustained load")
	}
}

func TestCooledDeviceNeverThrottles(t *testing.T) {
	g, err := NewGovernor(CooledGPU())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3600; i++ {
		g.Step(time.Second, 1)
	}
	if g.EverThrottled() {
		t.Fatalf("cooled device throttled at %.1f C", g.TemperatureC())
	}
	if g.Scale() != 1 {
		t.Fatalf("cooled device scale = %v", g.Scale())
	}
}

func TestRecoveryAfterLoadRemoved(t *testing.T) {
	g, err := NewGovernor(PhoneGPU())
	if err != nil {
		t.Fatal(err)
	}
	// Heat until throttled.
	for i := 0; i < 1800 && !g.EverThrottled(); i++ {
		g.Step(time.Second, 1)
	}
	if !g.EverThrottled() {
		t.Fatal("did not throttle")
	}
	// Cool down idle; governor must climb back to the top level.
	for i := 0; i < 3600; i++ {
		g.Step(time.Second, 0)
	}
	if g.FrequencyMHz() != 600 {
		t.Fatalf("did not recover: %v MHz at %.1f C", g.FrequencyMHz(), g.TemperatureC())
	}
	down, up := g.Swaps()
	if down == 0 || up == 0 {
		t.Fatalf("swaps = %d down, %d up", down, up)
	}
}

func TestMinResidencyPreventsThrash(t *testing.T) {
	cfg := PhoneGPU()
	cfg.MinResidency = 10 * time.Second
	g, err := NewGovernor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Force temperature to the threshold region and step rapidly.
	for i := 0; i < 100000; i++ {
		g.Step(100*time.Millisecond, 1)
	}
	down, up := g.Swaps()
	total := down + up
	// With 10 s residency over ~2.8 h, level changes are bounded.
	if total > 1100 {
		t.Fatalf("governor thrashing: %d level changes", total)
	}
}

func TestStepEdgeCases(t *testing.T) {
	g, err := NewGovernor(PhoneGPU())
	if err != nil {
		t.Fatal(err)
	}
	before := g.TemperatureC()
	g.Step(0, 1)
	g.Step(-time.Second, 1)
	if g.TemperatureC() != before {
		t.Fatal("non-positive dt changed state")
	}
	g.Step(time.Second, 5) // clamped to 1
	g.Step(time.Second, -3)
	if g.TemperatureC() < before {
		t.Fatal("clamped utilization behaved oddly")
	}
}

func TestPowerWScalesWithUtilizationAndLevel(t *testing.T) {
	g, err := NewGovernor(PhoneGPU())
	if err != nil {
		t.Fatal(err)
	}
	if got := g.PowerW(1); got != 3.0 {
		t.Fatalf("full power = %v", got)
	}
	if got := g.PowerW(0.5); got != 1.5 {
		t.Fatalf("half power = %v", got)
	}
	if got := g.PowerW(7); got != 3.0 {
		t.Fatalf("clamped power = %v", got)
	}
}

func TestTraceShapeMatchesFig1(t *testing.T) {
	trace, err := Trace(PhoneGPU(), 1, 25*time.Minute, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) < 1000 {
		t.Fatalf("trace has %d points", len(trace))
	}
	// Early plateau at 600 MHz.
	for _, p := range trace[:240] {
		if p.MHz != 600 {
			t.Fatalf("throttled too early at %v", p.At)
		}
	}
	// Late samples oscillate below the top frequency, and the governor
	// visits a deeply throttled level at some point.
	var lateSum float64
	late := trace[len(trace)-120:]
	for _, p := range late {
		lateSum += p.MHz
	}
	if avg := lateSum / float64(len(late)); avg > 580 {
		t.Fatalf("late average frequency %.0f MHz, want clear throttling", avg)
	}
	minF := trace[0].MHz
	for _, p := range trace {
		if p.MHz < minF {
			minF = p.MHz
		}
	}
	if minF > 305 {
		t.Fatalf("min frequency %.0f MHz; no drastic drop", minF)
	}
	// Temperature is monotone-ish up to the first throttle.
	if trace[60].TempC <= trace[0].TempC {
		t.Fatal("temperature not rising under load")
	}
	if _, err := Trace(Config{}, 1, time.Minute, time.Second); err == nil {
		t.Fatal("Trace accepted invalid config")
	}
}
