// Package thermal models mobile GPU thermal throttling (paper §II,
// Fig. 1): a lumped-heat model drives a DVFS governor that steps the
// GPU frequency down when the die crosses a throttle temperature and
// back up when it cools. On a passively cooled phone running a heavy
// game this reproduces the paper's trace — roughly ten minutes at the
// top frequency, then a drastic drop — and it is the mechanism behind
// the FPS-stability gap between local execution and offloading
// (service devices have fans and never throttle).
package thermal

import (
	"errors"
	"fmt"
	"time"
)

// Errors.
var ErrBadConfig = errors.New("thermal: invalid config")

// FreqLevel is one DVFS operating point.
type FreqLevel struct {
	MHz float64
	// PowerW is the dissipation at full utilization on this level.
	PowerW float64
}

// Config parameterizes the model.
type Config struct {
	// Levels must be ordered fastest first.
	Levels []FreqLevel
	// AmbientC is the environment temperature.
	AmbientC float64
	// ThrottleC steps the governor down when exceeded; RecoverC steps
	// it back up when the die cools below it.
	ThrottleC, RecoverC float64
	// HeatPerJoule converts dissipated power to heating rate (K/s per
	// W) and CoolPerSec is the Newton cooling coefficient (1/s).
	HeatPerJoule, CoolPerSec float64
	// MinResidency is the minimum time between governor level changes.
	MinResidency time.Duration
}

// PhoneGPU returns a configuration calibrated to the paper's Fig. 1
// trace: ~600 MHz sustained for about ten minutes under a heavy game,
// then throttling toward 100 MHz.
func PhoneGPU() Config {
	return Config{
		Levels: []FreqLevel{
			{MHz: 600, PowerW: 3.0},
			{MHz: 490, PowerW: 2.2},
			{MHz: 390, PowerW: 1.6},
			{MHz: 305, PowerW: 1.1},
			{MHz: 100, PowerW: 0.4},
		},
		AmbientC:     25,
		ThrottleC:    85,
		RecoverC:     70,
		HeatPerJoule: 0.036,
		CoolPerSec:   0.0010,
		MinResidency: 2 * time.Second,
	}
}

// CooledGPU returns a configuration for an actively cooled service
// device (console/PC): the fan multiplies the cooling coefficient so
// the die never reaches the throttle threshold.
func CooledGPU() Config {
	cfg := PhoneGPU()
	cfg.CoolPerSec *= 20
	return cfg
}

// Governor is a live thermal model + DVFS governor instance.
type Governor struct {
	cfg       Config
	tempC     float64
	level     int
	sinceSwap time.Duration
	elapsed   time.Duration
	throttled bool
	swapsDown int
	swapsUp   int
}

// NewGovernor validates cfg and returns a governor at ambient
// temperature on the fastest level.
func NewGovernor(cfg Config) (*Governor, error) {
	if len(cfg.Levels) == 0 {
		return nil, fmt.Errorf("%w: no levels", ErrBadConfig)
	}
	for i := 1; i < len(cfg.Levels); i++ {
		if cfg.Levels[i].MHz >= cfg.Levels[i-1].MHz {
			return nil, fmt.Errorf("%w: levels must be fastest-first", ErrBadConfig)
		}
	}
	if cfg.ThrottleC <= cfg.RecoverC {
		return nil, fmt.Errorf("%w: throttle %v <= recover %v", ErrBadConfig, cfg.ThrottleC, cfg.RecoverC)
	}
	if cfg.HeatPerJoule <= 0 || cfg.CoolPerSec <= 0 {
		return nil, fmt.Errorf("%w: non-positive coefficients", ErrBadConfig)
	}
	return &Governor{cfg: cfg, tempC: cfg.AmbientC}, nil
}

// Step advances the model by dt with the GPU at the given utilization
// (0..1): the die integrates heat, and the governor may change level.
func (g *Governor) Step(dt time.Duration, utilization float64) {
	if dt <= 0 {
		return
	}
	if utilization < 0 {
		utilization = 0
	}
	if utilization > 1 {
		utilization = 1
	}
	sec := dt.Seconds()
	p := g.cfg.Levels[g.level].PowerW * utilization
	g.tempC += (g.cfg.HeatPerJoule*p - g.cfg.CoolPerSec*(g.tempC-g.cfg.AmbientC)) * sec
	g.elapsed += dt
	g.sinceSwap += dt
	if g.sinceSwap < g.cfg.MinResidency {
		return
	}
	switch {
	case g.tempC >= g.cfg.ThrottleC && g.level < len(g.cfg.Levels)-1:
		g.level++
		g.sinceSwap = 0
		g.throttled = true
		g.swapsDown++
	case g.tempC <= g.cfg.RecoverC && g.level > 0:
		g.level--
		g.sinceSwap = 0
		g.swapsUp++
	}
}

// FrequencyMHz returns the current operating frequency.
func (g *Governor) FrequencyMHz() float64 { return g.cfg.Levels[g.level].MHz }

// Scale returns current frequency relative to the fastest level; GPU
// throughput (fillrate) scales with it.
func (g *Governor) Scale() float64 {
	return g.cfg.Levels[g.level].MHz / g.cfg.Levels[0].MHz
}

// TemperatureC returns the current die temperature.
func (g *Governor) TemperatureC() float64 { return g.tempC }

// EverThrottled reports whether the governor ever stepped down.
func (g *Governor) EverThrottled() bool { return g.throttled }

// Swaps reports level changes (down, up) for diagnostics.
func (g *Governor) Swaps() (down, up int) { return g.swapsDown, g.swapsUp }

// PowerW returns the dissipation at the current level for a given
// utilization — the GPU component of the energy model.
func (g *Governor) PowerW(utilization float64) float64 {
	if utilization < 0 {
		utilization = 0
	}
	if utilization > 1 {
		utilization = 1
	}
	return g.cfg.Levels[g.level].PowerW * utilization
}

// TracePoint is one sample of a thermal trace.
type TracePoint struct {
	At    time.Duration
	MHz   float64
	TempC float64
}

// Trace runs the governor at constant utilization for total time,
// sampling every interval — the generator for the Fig. 1 reproduction.
func Trace(cfg Config, utilization float64, total, interval time.Duration) ([]TracePoint, error) {
	g, err := NewGovernor(cfg)
	if err != nil {
		return nil, err
	}
	if interval <= 0 {
		interval = time.Second
	}
	var out []TracePoint
	for at := time.Duration(0); at <= total; at += interval {
		out = append(out, TracePoint{At: at, MHz: g.FrequencyMHz(), TempC: g.TemperatureC()})
		g.Step(interval, utilization)
	}
	return out, nil
}
