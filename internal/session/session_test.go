package session

import (
	"bytes"
	"errors"
	"testing"

	"github.com/gbooster/gbooster/internal/cmdcache"
	"github.com/gbooster/gbooster/internal/gles"
	"github.com/gbooster/gbooster/internal/lz4"
	"github.com/gbooster/gbooster/internal/sim"
)

// liveSession builds a mid-stream session: a populated GL context, a
// warmed command cache (with evictions), and a compressor that has
// shipped enough blocks to hold a dictionary window.
func liveSession(t *testing.T, seed uint64) (*gles.Context, *cmdcache.Cache, *lz4.Compressor) {
	t.Helper()
	rng := sim.NewRNG(seed)
	ctx := gles.NewContext()
	mustApply := func(cmd gles.Command) {
		t.Helper()
		if err := ctx.Apply(cmd); err != nil {
			t.Fatalf("apply %v: %v", cmd, err)
		}
	}
	mustApply(gles.Command{Op: gles.OpClearColor, Floats: []float32{0.1, 0.2, 0.3, 1}})
	mustApply(gles.Command{Op: gles.OpGenTexture, Ints: []int32{1}})
	mustApply(gles.Command{Op: gles.OpBindTexture, Ints: []int32{gles.TexTarget2D, 1}})
	texels := make([]byte, 2*2*4)
	mustApply(gles.Command{Op: gles.OpTexImage2D,
		Ints: []int32{gles.TexTarget2D, 0, 2, 2, gles.TexFormatRGBA},
		Data: texels, DataLen: int32(len(texels))})
	mustApply(gles.Command{Op: gles.OpGenBuffer, Ints: []int32{2}})
	mustApply(gles.Command{Op: gles.OpBindBuffer, Ints: []int32{gles.BufTargetArray, 2}})
	mustApply(gles.Command{Op: gles.OpBufferData,
		Ints: []int32{gles.BufTargetArray, gles.UsageStaticDraw},
		Data: []byte{9, 8, 7, 6}, DataLen: 4})

	cache := cmdcache.New(1 << 11)
	comp := lz4.NewCompressor()
	for i := 0; i < 64; i++ {
		rec := make([]byte, 32+rng.Intn(128))
		for j := range rec {
			rec[j] = byte(rng.Intn(16))
		}
		wire, _, err := cache.EncodeRecord(nil, rec)
		if err != nil {
			t.Fatal(err)
		}
		_ = comp.Compress(nil, wire)
	}
	return ctx, cache, comp
}

func TestCheckpointRoundTrip(t *testing.T) {
	ctx, cache, comp := liveSession(t, 1)
	cp, err := Capture(ctx, cache, comp)
	if err != nil {
		t.Fatal(err)
	}
	stream := Append(nil, cp)
	if len(stream) != cp.Size() {
		t.Fatalf("Size() = %d, encoded %d bytes", cp.Size(), len(stream))
	}
	got, err := Decode(stream)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.State, cp.State) || !bytes.Equal(got.Dict, cp.Dict) {
		t.Fatal("state or dict bytes diverge after round trip")
	}
	if got.CacheCap != cp.CacheCap || len(got.Records) != len(cp.Records) {
		t.Fatalf("cache meta diverges: cap %d/%d records %d/%d",
			got.CacheCap, cp.CacheCap, len(got.Records), len(cp.Records))
	}
	for i := range cp.Records {
		if !bytes.Equal(got.Records[i], cp.Records[i]) {
			t.Fatalf("record %d diverges", i)
		}
	}
	if got.Fingerprint() != cp.Fingerprint() {
		t.Fatal("fingerprint diverges after round trip")
	}
}

// TestRestoreReachesIdenticalState is the codec half of the tentpole
// property: a cold restore reproduces the context (snapshot and
// fingerprint), a cache mirror with identical future behaviour, and a
// decompressor that picks up the compressed stream mid-flight.
func TestRestoreReachesIdenticalState(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		ctx, cache, comp := liveSession(t, seed)
		cp, err := Capture(ctx, cache, comp)
		if err != nil {
			t.Fatal(err)
		}
		stream := Append(nil, cp)
		dcp, err := Decode(stream)
		if err != nil {
			t.Fatal(err)
		}
		rctx, rcache, rdecomp, err := Restore(dcp)
		if err != nil {
			t.Fatal(err)
		}
		if rctx.Snapshot() != ctx.Snapshot() {
			t.Fatalf("seed %d: snapshot mismatch", seed)
		}
		if gles.StateFingerprint(rctx) != cp.Fingerprint() {
			t.Fatalf("seed %d: restored fingerprint diverges", seed)
		}
		// Future cache + compression behaviour must match a full-history
		// mirror: encode fresh traffic through the original pair and
		// decode through the restored pair.
		rng := sim.NewRNG(seed * 97)
		for i := 0; i < 32; i++ {
			rec := make([]byte, 24+rng.Intn(64))
			for j := range rec {
				rec[j] = byte(rng.Intn(16))
			}
			wire, _, err := cache.EncodeRecord(nil, rec)
			if err != nil {
				t.Fatal(err)
			}
			blk := comp.Compress(nil, wire)
			raw, err := rdecomp.Decompress(nil, blk, lz4.MaxBlockSize)
			if err != nil {
				t.Fatalf("seed %d block %d: decompress: %v", seed, i, err)
			}
			recs, err := rcache.DecodeAll(raw)
			if err != nil {
				t.Fatalf("seed %d block %d: cache decode: %v", seed, i, err)
			}
			if len(recs) != 1 || !bytes.Equal(recs[0], rec) {
				t.Fatalf("seed %d block %d: restored mirror decoded wrong record", seed, i)
			}
		}
	}
}

func TestDecodeRejectsCorruptStream(t *testing.T) {
	ctx, cache, comp := liveSession(t, 3)
	cp, err := Capture(ctx, cache, comp)
	if err != nil {
		t.Fatal(err)
	}
	stream := Append(nil, cp)

	cases := map[string][]byte{
		"empty":         nil,
		"short":         stream[:3],
		"bad magic":     append([]byte("XXXX"), stream[4:]...),
		"bad version":   append([]byte("GBCK\x09"), stream[5:]...),
		"no sections":   stream[:5],
		"trailing":      append(append([]byte(nil), stream...), 0x7f, 0x01),
		"unknown tag":   append(append([]byte(nil), stream...), 0x40, 0x00),
		"repeated tag":  append(append([]byte(nil), stream...), tagDict, 0x00),
		"dict first":    append([]byte("GBCK\x01"), tagDict, 0x00),
		"length overrun": func() []byte {
			s := append([]byte(nil), stream...)
			s[6] = 0xff // state section length varint, now far past the end
			s[7] = 0x7f
			return s
		}(),
	}
	for name, data := range cases {
		if _, err := Decode(data); !errors.Is(err, ErrBadStream) {
			t.Errorf("%s: err = %v, want ErrBadStream", name, err)
		}
	}
	// Truncation must error except exactly at a section boundary, where
	// the prefix is a legitimately shorter stream (optional sections).
	boundaries := map[int]bool{
		5 + sectionLen(len(cp.State)):                                  true,
		5 + sectionLen(len(cp.State)) + sectionLen(cp.cachePayloadLen()): true,
	}
	for cut := 5; cut < len(stream); cut += 101 {
		if _, err := Decode(stream[:cut]); err == nil && !boundaries[cut] {
			t.Errorf("truncation at %d decoded without error", cut)
		}
	}
}

func TestRestoreRejectsCorruptState(t *testing.T) {
	ctx, cache, comp := liveSession(t, 4)
	cp, err := Capture(ctx, cache, comp)
	if err != nil {
		t.Fatal(err)
	}
	cp.State = cp.State[:len(cp.State)-1]
	if _, _, _, err := Restore(cp); err == nil {
		t.Fatal("truncated state should fail restore")
	}
}

func TestCaptureRejectsNil(t *testing.T) {
	if _, err := Capture(nil, nil, nil); !errors.Is(err, ErrBadStream) {
		t.Fatalf("err = %v, want ErrBadStream", err)
	}
}
