// Package session implements GBooster's checkpoint codec and bootstrap
// stream: the serialized durable state of a live streaming session —
// the GL context, the mirrored command cache in eviction order, and the
// LZ4 inter-frame dictionary window — packaged so a cold service device
// can replay it and join mid-stream in the exact state a full-history
// device would hold.
//
// The wire format is versioned and length-delimited:
//
//	"GBCK" | version(1) | section*
//	section = tag(1) | uvarint(len) | payload
//
// Sections appear in strictly ascending tag order. tagState (the
// canonical gles context encoding) is mandatory; tagCache and tagDict
// are omitted when empty. Unknown tags, out-of-order sections, length
// overruns, and trailing bytes are all decode errors — a corrupt
// bootstrap must fail loudly, never panic, and never half-restore.
//
// Admission rule: the checkpoint's Fingerprint is the FNV-1a hash of
// the canonical state section. A restored device re-encodes its rebuilt
// context and acks the resulting fingerprint; the dispatcher admits it
// to the rotation only on an exact match (see DESIGN.md §12).
package session

import (
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/gbooster/gbooster/internal/cmdcache"
	"github.com/gbooster/gbooster/internal/gles"
	"github.com/gbooster/gbooster/internal/lz4"
)

// Errors.
var (
	// ErrBadStream reports a malformed bootstrap stream.
	ErrBadStream = errors.New("session: malformed bootstrap stream")
)

// Wire constants.
const (
	version = 1

	tagState = 1 // canonical gles context state (mandatory)
	tagCache = 2 // cmdcache capacity + records in eviction order
	tagDict  = 3 // lz4 dictionary window
)

// magic marks a bootstrap stream.
var magic = [4]byte{'G', 'B', 'C', 'K'}

// Checkpoint is a session's durable state, captured atomically with
// respect to the frame stream: everything a cold device needs to serve
// the next frame exactly as a full-history device would.
type Checkpoint struct {
	// State is the canonical gles context encoding
	// (gles.AppendContextState output).
	State []byte
	// CacheCap is the command cache's byte budget; Records holds its
	// records in eviction order (LRU first, MRU last).
	CacheCap int
	Records  [][]byte
	// Dict is the LZ4 compressor's dictionary window at the checkpoint.
	Dict []byte
}

// Capture snapshots a session's durable state. The returned checkpoint
// owns its bytes — the inputs may keep mutating after Capture returns.
func Capture(ctx *gles.Context, cache *cmdcache.Cache, comp *lz4.Compressor) (*Checkpoint, error) {
	if ctx == nil || cache == nil || comp == nil {
		return nil, fmt.Errorf("%w: nil input", ErrBadStream)
	}
	cp := &Checkpoint{
		State:    gles.AppendContextState(nil, ctx),
		CacheCap: cache.Capacity(),
		Dict:     append([]byte(nil), comp.DictWindow()...),
	}
	err := cache.Export(func(rec []byte) error {
		cp.Records = append(cp.Records, append([]byte(nil), rec...))
		return nil
	})
	if err != nil {
		return nil, err
	}
	return cp, nil
}

// Fingerprint hashes the checkpoint's canonical state section with
// FNV-1a. It equals gles.StateFingerprint of the captured context, so
// a restored device recomputing the fingerprint from its rebuilt
// context proves byte-identical state.
func (cp *Checkpoint) Fingerprint() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range cp.State {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}

// Size returns the encoded bootstrap-stream length in bytes.
func (cp *Checkpoint) Size() int {
	n := len(magic) + 1
	n += sectionLen(len(cp.State))
	if cacheLen := cp.cachePayloadLen(); cacheLen > 0 {
		n += sectionLen(cacheLen)
	}
	if len(cp.Dict) > 0 {
		n += sectionLen(len(cp.Dict))
	}
	return n
}

func (cp *Checkpoint) cachePayloadLen() int {
	if len(cp.Records) == 0 {
		return 0
	}
	n := uvarintLen(uint64(cp.CacheCap)) + uvarintLen(uint64(len(cp.Records)))
	for _, rec := range cp.Records {
		n += uvarintLen(uint64(len(rec))) + len(rec)
	}
	return n
}

func sectionLen(payload int) int {
	return 1 + uvarintLen(uint64(payload)) + payload
}

// Append encodes cp as a bootstrap stream appended to dst.
func Append(dst []byte, cp *Checkpoint) []byte {
	dst = append(dst, magic[:]...)
	dst = append(dst, version)

	dst = append(dst, tagState)
	dst = binary.AppendUvarint(dst, uint64(len(cp.State)))
	dst = append(dst, cp.State...)

	if cacheLen := cp.cachePayloadLen(); cacheLen > 0 {
		dst = append(dst, tagCache)
		dst = binary.AppendUvarint(dst, uint64(cacheLen))
		dst = binary.AppendUvarint(dst, uint64(cp.CacheCap))
		dst = binary.AppendUvarint(dst, uint64(len(cp.Records)))
		for _, rec := range cp.Records {
			dst = binary.AppendUvarint(dst, uint64(len(rec)))
			dst = append(dst, rec...)
		}
	}

	if len(cp.Dict) > 0 {
		dst = append(dst, tagDict)
		dst = binary.AppendUvarint(dst, uint64(len(cp.Dict)))
		dst = append(dst, cp.Dict...)
	}
	return dst
}

// Decode parses a bootstrap stream. The returned checkpoint's byte
// slices alias data; the caller keeps data alive while using it.
// Truncated or corrupt input returns ErrBadStream — never a panic.
func Decode(data []byte) (*Checkpoint, error) {
	if len(data) < len(magic)+1 {
		return nil, fmt.Errorf("%w: %d bytes", ErrBadStream, len(data))
	}
	if [4]byte(data[:4]) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadStream)
	}
	if data[4] != version {
		return nil, fmt.Errorf("%w: version %d", ErrBadStream, data[4])
	}
	rest := data[5:]
	cp := &Checkpoint{}
	lastTag := 0
	sawState := false
	for len(rest) > 0 {
		tag := int(rest[0])
		if tag <= lastTag {
			return nil, fmt.Errorf("%w: section %d out of order", ErrBadStream, tag)
		}
		lastTag = tag
		n, used := binary.Uvarint(rest[1:])
		if used <= 0 {
			return nil, fmt.Errorf("%w: section %d length", ErrBadStream, tag)
		}
		body := rest[1+used:]
		if n > uint64(len(body)) {
			return nil, fmt.Errorf("%w: section %d truncated", ErrBadStream, tag)
		}
		payload := body[:n]
		rest = body[n:]
		switch tag {
		case tagState:
			cp.State = payload
			sawState = true
		case tagCache:
			if err := cp.decodeCache(payload); err != nil {
				return nil, err
			}
		case tagDict:
			cp.Dict = payload
		default:
			return nil, fmt.Errorf("%w: unknown section %d", ErrBadStream, tag)
		}
	}
	if !sawState {
		return nil, fmt.Errorf("%w: missing state section", ErrBadStream)
	}
	return cp, nil
}

func (cp *Checkpoint) decodeCache(payload []byte) error {
	capv, used := binary.Uvarint(payload)
	if used <= 0 || capv > 1<<31 {
		return fmt.Errorf("%w: cache capacity", ErrBadStream)
	}
	payload = payload[used:]
	count, used := binary.Uvarint(payload)
	if used <= 0 || count > uint64(len(payload)) {
		return fmt.Errorf("%w: cache record count", ErrBadStream)
	}
	payload = payload[used:]
	cp.CacheCap = int(capv)
	cp.Records = make([][]byte, 0, count)
	for i := uint64(0); i < count; i++ {
		n, used := binary.Uvarint(payload)
		if used <= 0 || n > uint64(len(payload)-used) {
			return fmt.Errorf("%w: cache record %d", ErrBadStream, i)
		}
		cp.Records = append(cp.Records, payload[used:used+int(n)])
		payload = payload[used+int(n):]
	}
	if len(payload) != 0 {
		return fmt.Errorf("%w: %d trailing cache bytes", ErrBadStream, len(payload))
	}
	return nil
}

// Restore rebuilds the session substrate a cold server needs: the GL
// context, a seeded command-cache mirror, and a dictionary-primed
// decompressor. Restore is all-or-nothing — on error nothing usable is
// returned, so a server can keep its previous state on a bad stream.
func Restore(cp *Checkpoint) (*gles.Context, *cmdcache.Cache, *lz4.Decompressor, error) {
	ctx, err := gles.DecodeContextState(cp.State)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("session: restore state: %w", err)
	}
	cache := cmdcache.New(cp.CacheCap)
	for i, rec := range cp.Records {
		if err := cache.Seed(rec); err != nil {
			return nil, nil, nil, fmt.Errorf("session: seed record %d: %w", i, err)
		}
	}
	decomp := lz4.NewDecompressor()
	decomp.SeedDict(cp.Dict)
	return ctx, cache, decomp, nil
}

func uvarintLen(v uint64) int {
	var buf [binary.MaxVarintLen64]byte
	return binary.PutUvarint(buf[:], v)
}
