package session

import (
	"testing"

	"github.com/gbooster/gbooster/internal/cmdcache"
	"github.com/gbooster/gbooster/internal/gles"
	"github.com/gbooster/gbooster/internal/lz4"
)

// FuzzDecode hardens the bootstrap-stream decoder: arbitrary input may
// be rejected but must never panic, and any input that decodes must
// also survive Restore (error or success, no crash) and re-encode to a
// stream that decodes again.
func FuzzDecode(f *testing.F) {
	ctx := gles.NewContext()
	cache := cmdcache.New(1 << 10)
	comp := lz4.NewCompressor()
	_, _, _ = cache.EncodeRecord(nil, []byte("seed record"))
	_ = comp.Compress(nil, []byte("seed block seed block"))
	if cp, err := Capture(ctx, cache, comp); err == nil {
		f.Add(Append(nil, cp))
	}
	f.Add([]byte("GBCK\x01"))
	f.Add([]byte{})
	f.Add([]byte("GBCK\x01\x01\x00"))

	f.Fuzz(func(t *testing.T, data []byte) {
		cp, err := Decode(data)
		if err != nil {
			return
		}
		rctx, rcache, rdecomp, err := Restore(cp)
		if err != nil {
			return
		}
		if rctx == nil || rcache == nil || rdecomp == nil {
			t.Fatal("successful restore returned nil component")
		}
		if _, err := Decode(Append(nil, cp)); err != nil {
			t.Fatalf("re-encoded stream failed to decode: %v", err)
		}
	})
}
