// Package sim provides a discrete virtual clock and event queue used to
// run GBooster sessions in virtual time. All timing-sensitive components
// (radios, thermal governor, pipeline stages) take a *Clock rather than
// reading the wall clock, which makes every experiment deterministic and
// allows a 15-minute gameplay session to run in milliseconds.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Clock is a virtual clock. The zero value is ready to use and starts at
// time zero. Clock is not safe for concurrent use; simulations are
// single-goroutine by design.
type Clock struct {
	now    time.Duration
	events eventQueue
	nextID uint64
}

// Now returns the current virtual time as an offset from the start of
// the simulation.
func (c *Clock) Now() time.Duration { return c.now }

// Advance moves the clock forward by d without running events. It
// panics if d is negative, because a simulation can never move
// backwards.
func (c *Clock) Advance(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("sim: Advance by negative duration %v", d))
	}
	c.now += d
}

// Event is a scheduled callback. The callback receives the clock whose
// virtual time has been advanced to the event's deadline.
type Event struct {
	At time.Duration
	Fn func(now time.Duration)

	id    uint64
	index int // heap index; -1 once popped or cancelled
}

// Schedule registers fn to run when virtual time reaches at. Events
// scheduled for the past run immediately on the next Run/Step call.
// The returned *Event may be passed to Cancel.
func (c *Clock) Schedule(at time.Duration, fn func(now time.Duration)) *Event {
	c.nextID++
	ev := &Event{At: at, Fn: fn, id: c.nextID}
	heap.Push(&c.events, ev)
	return ev
}

// ScheduleAfter registers fn to run d after the current virtual time.
func (c *Clock) ScheduleAfter(d time.Duration, fn func(now time.Duration)) *Event {
	return c.Schedule(c.now+d, fn)
}

// Cancel removes a pending event. Cancelling an event that already ran
// or was already cancelled is a no-op.
func (c *Clock) Cancel(ev *Event) {
	if ev == nil || ev.index < 0 || ev.index >= len(c.events) || c.events[ev.index] != ev {
		return
	}
	heap.Remove(&c.events, ev.index)
	ev.index = -1
}

// Pending reports the number of events waiting to run.
func (c *Clock) Pending() int { return len(c.events) }

// Step runs the earliest pending event, advancing the clock to its
// deadline. It reports whether an event ran.
func (c *Clock) Step() bool {
	if len(c.events) == 0 {
		return false
	}
	ev, ok := heap.Pop(&c.events).(*Event)
	if !ok {
		return false
	}
	ev.index = -1
	if ev.At > c.now {
		c.now = ev.At
	}
	ev.Fn(c.now)
	return true
}

// RunUntil executes events in deadline order until the queue is empty
// or the next event is later than deadline. The clock finishes at
// min(deadline, last event time) and is then advanced to deadline.
func (c *Clock) RunUntil(deadline time.Duration) {
	for len(c.events) > 0 && c.events[0].At <= deadline {
		c.Step()
	}
	if c.now < deadline {
		c.now = deadline
	}
}

// Run executes all pending events, including ones scheduled by other
// events, until the queue drains. It panics if more than maxEvents
// events run, which guards against accidental self-perpetuating event
// loops in tests.
func (c *Clock) Run(maxEvents int) {
	for i := 0; len(c.events) > 0; i++ {
		if i >= maxEvents {
			panic(fmt.Sprintf("sim: Run exceeded %d events", maxEvents))
		}
		c.Step()
	}
}

// eventQueue is a min-heap of events ordered by deadline, with the
// insertion id as a tie-breaker so equal-deadline events run FIFO.
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].At != q[j].At {
		return q[i].At < q[j].At
	}
	return q[i].id < q[j].id
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev, ok := x.(*Event)
	if !ok {
		panic("sim: eventQueue.Push given non-*Event")
	}
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}
