package sim

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestClockZeroValue(t *testing.T) {
	var c Clock
	if got := c.Now(); got != 0 {
		t.Fatalf("Now() = %v, want 0", got)
	}
	if c.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", c.Pending())
	}
	if c.Step() {
		t.Fatal("Step() on empty clock reported an event ran")
	}
}

func TestClockAdvance(t *testing.T) {
	var c Clock
	c.Advance(3 * time.Second)
	c.Advance(2 * time.Second)
	if got, want := c.Now(), 5*time.Second; got != want {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
}

func TestClockAdvanceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Advance(-1) did not panic")
		}
	}()
	var c Clock
	c.Advance(-time.Second)
}

func TestClockEventOrder(t *testing.T) {
	var c Clock
	var order []int
	c.Schedule(30*time.Millisecond, func(time.Duration) { order = append(order, 3) })
	c.Schedule(10*time.Millisecond, func(time.Duration) { order = append(order, 1) })
	c.Schedule(20*time.Millisecond, func(time.Duration) { order = append(order, 2) })
	c.Run(100)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events ran in order %v, want [1 2 3]", order)
	}
	if got, want := c.Now(), 30*time.Millisecond; got != want {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
}

func TestClockEqualDeadlineFIFO(t *testing.T) {
	var c Clock
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		c.Schedule(time.Millisecond, func(time.Duration) { order = append(order, i) })
	}
	c.Run(100)
	for i, v := range order {
		if v != i {
			t.Fatalf("equal-deadline events ran in order %v, want FIFO", order)
		}
	}
}

func TestClockScheduleAfter(t *testing.T) {
	var c Clock
	c.Advance(time.Second)
	var at time.Duration
	c.ScheduleAfter(500*time.Millisecond, func(now time.Duration) { at = now })
	c.Run(10)
	if want := 1500 * time.Millisecond; at != want {
		t.Fatalf("event ran at %v, want %v", at, want)
	}
}

func TestClockCancel(t *testing.T) {
	var c Clock
	ran := false
	ev := c.Schedule(time.Millisecond, func(time.Duration) { ran = true })
	c.Cancel(ev)
	c.Cancel(ev) // double-cancel is a no-op
	c.Cancel(nil)
	c.Run(10)
	if ran {
		t.Fatal("cancelled event still ran")
	}
}

func TestClockCancelMiddleOfHeap(t *testing.T) {
	var c Clock
	var order []int
	evs := make([]*Event, 0, 5)
	for i := 0; i < 5; i++ {
		i := i
		evs = append(evs, c.Schedule(time.Duration(i)*time.Millisecond, func(time.Duration) {
			order = append(order, i)
		}))
	}
	c.Cancel(evs[2])
	c.Run(100)
	want := []int{0, 1, 3, 4}
	if len(order) != len(want) {
		t.Fatalf("ran %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("ran %v, want %v", order, want)
		}
	}
}

func TestClockRunUntil(t *testing.T) {
	var c Clock
	var ran []time.Duration
	for _, d := range []time.Duration{10, 20, 30, 40} {
		c.Schedule(d*time.Millisecond, func(now time.Duration) { ran = append(ran, now) })
	}
	c.RunUntil(25 * time.Millisecond)
	if len(ran) != 2 {
		t.Fatalf("RunUntil ran %d events, want 2", len(ran))
	}
	if got, want := c.Now(), 25*time.Millisecond; got != want {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
	if c.Pending() != 2 {
		t.Fatalf("Pending() = %d, want 2", c.Pending())
	}
}

func TestClockEventSchedulesEvent(t *testing.T) {
	var c Clock
	var times []time.Duration
	c.Schedule(time.Millisecond, func(now time.Duration) {
		times = append(times, now)
		c.ScheduleAfter(time.Millisecond, func(now time.Duration) {
			times = append(times, now)
		})
	})
	c.Run(10)
	if len(times) != 2 || times[1] != 2*time.Millisecond {
		t.Fatalf("chained events ran at %v, want [1ms 2ms]", times)
	}
}

func TestClockRunGuardPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("runaway event loop did not trip the Run guard")
		}
	}()
	var c Clock
	var loop func(time.Duration)
	loop = func(time.Duration) { c.ScheduleAfter(time.Millisecond, loop) }
	c.Schedule(0, loop)
	c.Run(50)
}

func TestClockPastEventRunsAtCurrentTime(t *testing.T) {
	var c Clock
	c.Advance(time.Second)
	var at time.Duration
	c.Schedule(time.Millisecond, func(now time.Duration) { at = now })
	c.Run(10)
	if at != time.Second {
		t.Fatalf("past-deadline event ran at %v, want clock's current time 1s", at)
	}
	if c.Now() != time.Second {
		t.Fatalf("clock moved backwards to %v", c.Now())
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at step %d", i)
		}
	}
	c := NewRNG(43)
	same := true
	a = NewRNG(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v, want [0,1)", v)
		}
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(2)
	counts := make([]int, 7)
	for i := 0; i < 7000; i++ {
		counts[r.Intn(7)]++
	}
	for v, n := range counts {
		if n == 0 {
			t.Fatalf("Intn(7) never produced %d in 7000 draws", v)
		}
	}
}

func TestRNGIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGNormMoments(t *testing.T) {
	r := NewRNG(7)
	const n = 50000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Norm(10, 2)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if mean < 9.9 || mean > 10.1 {
		t.Fatalf("Norm mean = %v, want ~10", mean)
	}
	if variance < 3.6 || variance > 4.4 {
		t.Fatalf("Norm variance = %v, want ~4", variance)
	}
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(9)
	const n = 50000
	var sum float64
	for i := 0; i < n; i++ {
		v := r.Exp(5)
		if v < 0 {
			t.Fatalf("Exp produced negative value %v", v)
		}
		sum += v
	}
	if mean := sum / n; mean < 4.8 || mean > 5.2 {
		t.Fatalf("Exp mean = %v, want ~5", mean)
	}
}

func TestRNGForkIndependence(t *testing.T) {
	r := NewRNG(11)
	f := r.Fork()
	if r.Uint64() == f.Uint64() {
		t.Fatal("fork produced the same first value as parent")
	}
}

func TestRNGBoolProbabilityProperty(t *testing.T) {
	// Property: over many draws, Bool(p) frequency tracks p within 3 sigma.
	check := func(seed uint64, pRaw float64) bool {
		p := math.Abs(math.Mod(pRaw, 1))
		if math.IsNaN(p) || math.IsInf(p, 0) {
			p = 0.5
		}
		r := NewRNG(seed)
		const n = 20000
		hits := 0
		for i := 0; i < n; i++ {
			if r.Bool(p) {
				hits++
			}
		}
		freq := float64(hits) / n
		sigma := 3 * 0.5 / 141.4 // 3*sqrt(p(1-p)/n) upper bound at p=0.5
		return freq >= p-sigma-0.001 && freq <= p+sigma+0.001
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestClockEventsNeverRunEarlyProperty(t *testing.T) {
	// Property: for any set of scheduled deadlines, every event runs at
	// exactly max(deadline, schedule-time clock) and the clock is
	// monotone throughout.
	check := func(seed uint64, nRaw uint8) bool {
		rng := NewRNG(seed)
		var c Clock
		n := int(nRaw%40) + 1
		type obs struct {
			deadline time.Duration
			ranAt    time.Duration
		}
		results := make([]*obs, 0, n)
		for i := 0; i < n; i++ {
			d := time.Duration(rng.Intn(1000)) * time.Millisecond
			o := &obs{deadline: d, ranAt: -1}
			c.Schedule(d, func(now time.Duration) { o.ranAt = now })
			results = append(results, o)
		}
		prev := time.Duration(-1)
		for c.Pending() > 0 {
			if !c.Step() {
				return false
			}
			if c.Now() < prev {
				return false // clock moved backwards
			}
			prev = c.Now()
		}
		for _, o := range results {
			if o.ranAt < o.deadline {
				return false // ran early
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
