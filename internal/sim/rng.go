package sim

import "math"

// RNG is a small, fast, seedable pseudo-random generator
// (SplitMix64-based) used by workload generators and network jitter
// models. Experiments seed it explicitly so every run is reproducible.
// The zero value is valid and equivalent to NewRNG(0).
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Norm returns a normally distributed value with the given mean and
// standard deviation, using the Box-Muller transform.
func (r *RNG) Norm(mean, stddev float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// Exp returns an exponentially distributed value with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// Fork returns a new generator whose stream is independent of, but
// deterministically derived from, the receiver. Use it to give each
// subsystem its own stream without coupling their consumption order.
func (r *RNG) Fork() *RNG {
	return NewRNG(r.Uint64() ^ 0xd1b54a32d192ed03)
}
