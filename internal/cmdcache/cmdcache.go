// Package cmdcache implements the LRU command cache GBooster uses to
// eliminate uplink redundancy (paper §V-A): consecutive frames repeat
// most of their graphics commands, so the user device and the service
// device each keep a mirrored LRU cache of recent serialized command
// records, and the sender ships an 8-byte reference instead of the full
// record whenever the record is cached.
//
// Determinism is the core invariant: the receiver reconstructs the
// sender's cache purely from the wire stream (full records insert,
// references touch), so the two caches evict identically and a
// reference always resolves. Hash collisions are handled on the sender:
// a colliding record is sent in full, replacing the cache entry on both
// sides.
package cmdcache

import (
	"container/list"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
)

// Wire flags.
const (
	flagFull = 0x00
	flagRef  = 0x01
)

// Errors.
var (
	ErrBadWire     = errors.New("cmdcache: malformed wire data")
	ErrUnknownRef  = errors.New("cmdcache: reference to uncached record")
	ErrRecordLimit = errors.New("cmdcache: record exceeds limit")
)

// MaxRecordBytes bounds one record on the wire.
const MaxRecordBytes = 64 << 20

// DefaultCapacity is the default cache budget per side. The paper
// measured ~47.8 MB total extra memory on the user device; the command
// cache is the dominant share of it.
const DefaultCapacity = 32 << 20

// entry is one cached record.
type entry struct {
	key   uint64
	bytes []byte
}

// Cache is one side's LRU of serialized command records, bounded by
// total byte size.
type Cache struct {
	capacity int
	size     int
	order    *list.List // front = most recently used
	byKey    map[uint64]*list.Element

	// Stats accumulate cache effectiveness for the traffic experiments.
	Stats Stats
}

// Stats counts cache activity.
type Stats struct {
	Hits       int
	Misses     int
	Collisions int
	Evictions  int
	// RawBytes is the total size of records offered to the encoder;
	// WireBytes is what actually went on the wire. Their ratio is the
	// redundancy-elimination factor of §V-A.
	RawBytes  int64
	WireBytes int64
}

// New returns a cache bounded to capacity bytes of stored records. A
// non-positive capacity falls back to DefaultCapacity.
func New(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Cache{
		capacity: capacity,
		order:    list.New(),
		byKey:    make(map[uint64]*list.Element),
	}
}

// MemoryBytes reports the bytes of record data currently cached (the
// quantity behind the paper's §VII-G memory-overhead measurement).
func (c *Cache) MemoryBytes() int { return c.size }

// Len reports the number of cached records.
func (c *Cache) Len() int { return c.order.Len() }

// hashRecord fingerprints a record.
func hashRecord(rec []byte) uint64 {
	h := fnv.New64a()
	_, _ = h.Write(rec)
	return h.Sum64()
}

// EncodeRecord appends the wire form of rec to dst: a reference when
// the identical record is cached, the full record otherwise. It
// returns the extended slice and whether it was a cache hit.
func (c *Cache) EncodeRecord(dst, rec []byte) ([]byte, bool, error) {
	if len(rec) > MaxRecordBytes {
		return dst, false, fmt.Errorf("%w: %d bytes", ErrRecordLimit, len(rec))
	}
	c.Stats.RawBytes += int64(len(rec))
	key := hashRecord(rec)
	if el, ok := c.byKey[key]; ok {
		ent, valid := el.Value.(*entry)
		if !valid {
			return dst, false, fmt.Errorf("cmdcache: corrupt LRU element %T", el.Value)
		}
		if bytesEqual(ent.bytes, rec) {
			c.order.MoveToFront(el)
			dst = append(dst, flagRef)
			dst = binary.LittleEndian.AppendUint64(dst, key)
			c.Stats.Hits++
			c.Stats.WireBytes += 9
			return dst, true, nil
		}
		// Hash collision: replace the entry on both sides by sending
		// the record in full.
		c.Stats.Collisions++
		c.removeElement(el)
	}
	c.insert(key, rec)
	dst = append(dst, flagFull)
	dst = binary.AppendUvarint(dst, uint64(len(rec)))
	dst = append(dst, rec...)
	c.Stats.Misses++
	c.Stats.WireBytes += int64(1 + uvarintLen(uint64(len(rec))) + len(rec))
	return dst, false, nil
}

// DecodeRecord parses one wire item from src, returning the record and
// the number of bytes consumed. The receiver cache mutates exactly as
// the sender's did, preserving the mirror invariant.
func (c *Cache) DecodeRecord(src []byte) ([]byte, int, error) {
	if len(src) == 0 {
		return nil, 0, fmt.Errorf("%w: empty", ErrBadWire)
	}
	switch src[0] {
	case flagRef:
		if len(src) < 9 {
			return nil, 0, fmt.Errorf("%w: short reference", ErrBadWire)
		}
		key := binary.LittleEndian.Uint64(src[1:9])
		el, ok := c.byKey[key]
		if !ok {
			return nil, 0, fmt.Errorf("%w: key %x", ErrUnknownRef, key)
		}
		ent, valid := el.Value.(*entry)
		if !valid {
			return nil, 0, fmt.Errorf("cmdcache: corrupt LRU element %T", el.Value)
		}
		c.order.MoveToFront(el)
		c.Stats.Hits++
		return ent.bytes, 9, nil
	case flagFull:
		n, used := binary.Uvarint(src[1:])
		if used <= 0 {
			return nil, 0, fmt.Errorf("%w: record length", ErrBadWire)
		}
		if n > MaxRecordBytes {
			return nil, 0, fmt.Errorf("%w: %d bytes", ErrRecordLimit, n)
		}
		start := 1 + used
		if uint64(len(src)-start) < n {
			return nil, 0, fmt.Errorf("%w: record truncated", ErrBadWire)
		}
		rec := src[start : start+int(n)]
		key := hashRecord(rec)
		if el, ok := c.byKey[key]; ok {
			// Mirror the sender's collision replacement.
			c.removeElement(el)
		}
		c.insert(key, rec)
		c.Stats.Misses++
		return rec, start + int(n), nil
	default:
		return nil, 0, fmt.Errorf("%w: flag %#x", ErrBadWire, src[0])
	}
}

// insert adds a copied record at the front, evicting from the back
// until within capacity. Records larger than the whole capacity are
// intentionally still inserted then immediately evicted down to one
// entry, keeping sender/receiver behaviour identical without a special
// case on the wire.
func (c *Cache) insert(key uint64, rec []byte) {
	ent := &entry{key: key, bytes: append([]byte(nil), rec...)}
	el := c.order.PushFront(ent)
	c.byKey[key] = el
	c.size += len(ent.bytes)
	for c.size > c.capacity && c.order.Len() > 1 {
		back := c.order.Back()
		if back == nil || back == el {
			break
		}
		c.removeElement(back)
		c.Stats.Evictions++
	}
}

func (c *Cache) removeElement(el *list.Element) {
	ent, ok := el.Value.(*entry)
	if !ok {
		return
	}
	c.order.Remove(el)
	delete(c.byKey, ent.key)
	c.size -= len(ent.bytes)
}

// EncodeAll encodes a batch of records.
func (c *Cache) EncodeAll(dst []byte, recs [][]byte) ([]byte, int, error) {
	hits := 0
	for i, rec := range recs {
		var hit bool
		var err error
		dst, hit, err = c.EncodeRecord(dst, rec)
		if err != nil {
			return dst, hits, fmt.Errorf("record %d: %w", i, err)
		}
		if hit {
			hits++
		}
	}
	return dst, hits, nil
}

// DecodeAll decodes a whole wire buffer back into records.
func (c *Cache) DecodeAll(src []byte) ([][]byte, error) {
	var recs [][]byte
	for len(src) > 0 {
		rec, n, err := c.DecodeRecord(src)
		if err != nil {
			return recs, fmt.Errorf("item %d: %w", len(recs), err)
		}
		// Copy: refs alias cache storage that later inserts may evict.
		recs = append(recs, append([]byte(nil), rec...))
		src = src[n:]
	}
	return recs, nil
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func uvarintLen(v uint64) int {
	var buf [binary.MaxVarintLen64]byte
	return binary.PutUvarint(buf[:], v)
}
