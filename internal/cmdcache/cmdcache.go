// Package cmdcache implements the LRU command cache GBooster uses to
// eliminate uplink redundancy (paper §V-A): consecutive frames repeat
// most of their graphics commands, so the user device and the service
// device each keep a mirrored LRU cache of recent serialized command
// records, and the sender ships an 8-byte reference instead of the full
// record whenever the record is cached.
//
// Determinism is the core invariant: the receiver reconstructs the
// sender's cache purely from the wire stream (full records insert,
// references touch), so the two caches evict identically and a
// reference always resolves. Hash collisions are handled on the sender:
// a colliding record is sent in full, replacing the cache entry on both
// sides.
//
// The cache sits on the per-frame send path, so its internals are built
// to stay off the garbage collector's books: entries live in a slab
// indexed by int32, the LRU is an intrusive doubly-linked list of slab
// indices (no container/list element allocations), removed entries park
// on a free list keeping their byte buffers for reuse, and record
// hashing is an inline FNV-1a loop instead of a hash.Hash64 allocation
// per record.
package cmdcache

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Wire flags.
const (
	flagFull = 0x00
	flagRef  = 0x01
)

// Errors.
var (
	ErrBadWire     = errors.New("cmdcache: malformed wire data")
	ErrUnknownRef  = errors.New("cmdcache: reference to uncached record")
	ErrRecordLimit = errors.New("cmdcache: record exceeds limit")
)

// MaxRecordBytes bounds one record on the wire.
const MaxRecordBytes = 64 << 20

// DefaultCapacity is the default cache budget per side. The paper
// measured ~47.8 MB total extra memory on the user device; the command
// cache is the dominant share of it.
const DefaultCapacity = 32 << 20

// noIndex terminates the intrusive list and free list.
const noIndex = -1

// entry is one slab slot: a cached record plus its intrusive LRU
// links. Freed slots chain through next and keep their byte buffer so
// a later insert of similar size allocates nothing.
type entry struct {
	key        uint64
	bytes      []byte
	prev, next int32
}

// Cache is one side's LRU of serialized command records, bounded by
// total byte size.
type Cache struct {
	capacity int
	size     int
	entries  []entry          // slab; indices are stable handles
	head     int32            // most recently used, noIndex when empty
	tail     int32            // least recently used, noIndex when empty
	free     int32            // free-list head (chained via next), noIndex when exhausted
	count    int              // live entries
	byKey    map[uint64]int32 // key -> slab index

	// Stats accumulate cache effectiveness for the traffic experiments.
	Stats Stats
}

// Stats counts cache activity.
type Stats struct {
	Hits       int
	Misses     int
	Collisions int
	Evictions  int
	// RawBytes is the total size of records offered to the encoder;
	// WireBytes is what actually went on the wire. Their ratio is the
	// redundancy-elimination factor of §V-A.
	RawBytes  int64
	WireBytes int64
}

// New returns a cache bounded to capacity bytes of stored records. A
// non-positive capacity falls back to DefaultCapacity.
func New(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Cache{
		capacity: capacity,
		head:     noIndex,
		tail:     noIndex,
		free:     noIndex,
		byKey:    make(map[uint64]int32),
	}
}

// MemoryBytes reports the bytes of record data currently cached (the
// quantity behind the paper's §VII-G memory-overhead measurement).
func (c *Cache) MemoryBytes() int { return c.size }

// Capacity reports the cache's byte budget. A checkpoint records it so
// the restored mirror evicts at the same boundary as the original.
func (c *Cache) Capacity() int { return c.capacity }

// Export visits every cached record in eviction order (LRU first, MRU
// last). Seeding a fresh cache of the same capacity with the visited
// records in that order reproduces this cache exactly: content, recency
// order, and therefore all future eviction decisions. The visited slice
// aliases cache storage; copy it if it must outlive the visit.
func (c *Cache) Export(visit func(rec []byte) error) error {
	for i := c.tail; i != noIndex; i = c.entries[i].prev {
		if err := visit(c.entries[i].bytes); err != nil {
			return err
		}
	}
	return nil
}

// Seed inserts one record at the MRU position without touching the
// wire statistics — it reconstructs a mirror from a checkpoint rather
// than encoding traffic. Feeding Export's output to Seed in order
// yields a cache byte-equivalent to the exported one.
func (c *Cache) Seed(rec []byte) error {
	if len(rec) > MaxRecordBytes {
		return fmt.Errorf("%w: %d bytes", ErrRecordLimit, len(rec))
	}
	key := hashRecord(rec)
	if i, ok := c.byKey[key]; ok {
		c.removeIndex(i)
	}
	c.insert(key, rec)
	return nil
}

// Len reports the number of cached records.
func (c *Cache) Len() int { return c.count }

// FNV-1a constants (matching hash/fnv's 64-bit variant).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// hashRecord fingerprints a record: inline FNV-1a, byte-identical to
// hash/fnv.New64a over the same bytes but with no hasher allocation.
func hashRecord(rec []byte) uint64 {
	h := uint64(fnvOffset64)
	for _, b := range rec {
		h ^= uint64(b)
		h *= fnvPrime64
	}
	return h
}

// unlink removes slot i from the LRU list (it stays in the slab).
func (c *Cache) unlink(i int32) {
	e := &c.entries[i]
	if e.prev != noIndex {
		c.entries[e.prev].next = e.next
	} else {
		c.head = e.next
	}
	if e.next != noIndex {
		c.entries[e.next].prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = noIndex, noIndex
}

// pushFront links slot i at the MRU end.
func (c *Cache) pushFront(i int32) {
	e := &c.entries[i]
	e.prev = noIndex
	e.next = c.head
	if c.head != noIndex {
		c.entries[c.head].prev = i
	}
	c.head = i
	if c.tail == noIndex {
		c.tail = i
	}
}

// moveToFront is the LRU touch.
func (c *Cache) moveToFront(i int32) {
	if c.head == i {
		return
	}
	c.unlink(i)
	c.pushFront(i)
}

// alloc returns a slab slot for a new entry, reusing a freed slot (and
// its buffer) when one exists.
func (c *Cache) alloc() int32 {
	if c.free != noIndex {
		i := c.free
		c.free = c.entries[i].next
		c.entries[i].next = noIndex
		return i
	}
	c.entries = append(c.entries, entry{prev: noIndex, next: noIndex})
	return int32(len(c.entries) - 1)
}

// removeIndex evicts slot i: off the LRU list, out of the key map,
// onto the free list. The byte buffer stays with the slot for reuse.
func (c *Cache) removeIndex(i int32) {
	c.unlink(i)
	e := &c.entries[i]
	delete(c.byKey, e.key)
	c.size -= len(e.bytes)
	c.count--
	e.next = c.free
	c.free = i
}

// insert adds a copied record at the front, evicting from the back
// until within capacity. Records larger than the whole capacity are
// intentionally still inserted then immediately evicted down to one
// entry, keeping sender/receiver behaviour identical without a special
// case on the wire.
func (c *Cache) insert(key uint64, rec []byte) {
	i := c.alloc()
	e := &c.entries[i]
	e.key = key
	e.bytes = append(e.bytes[:0], rec...)
	c.pushFront(i)
	c.byKey[key] = i
	c.size += len(e.bytes)
	c.count++
	for c.size > c.capacity && c.count > 1 {
		back := c.tail
		if back == noIndex || back == i {
			break
		}
		c.removeIndex(back)
		c.Stats.Evictions++
	}
}

// EncodeRecord appends the wire form of rec to dst: a reference when
// the identical record is cached, the full record otherwise. It
// returns the extended slice and whether it was a cache hit.
func (c *Cache) EncodeRecord(dst, rec []byte) ([]byte, bool, error) {
	if len(rec) > MaxRecordBytes {
		return dst, false, fmt.Errorf("%w: %d bytes", ErrRecordLimit, len(rec))
	}
	c.Stats.RawBytes += int64(len(rec))
	key := hashRecord(rec)
	if i, ok := c.byKey[key]; ok {
		if bytesEqual(c.entries[i].bytes, rec) {
			c.moveToFront(i)
			dst = append(dst, flagRef)
			dst = binary.LittleEndian.AppendUint64(dst, key)
			c.Stats.Hits++
			c.Stats.WireBytes += 9
			return dst, true, nil
		}
		// Hash collision: replace the entry on both sides by sending
		// the record in full.
		c.Stats.Collisions++
		c.removeIndex(i)
	}
	c.insert(key, rec)
	dst = append(dst, flagFull)
	dst = binary.AppendUvarint(dst, uint64(len(rec)))
	dst = append(dst, rec...)
	c.Stats.Misses++
	c.Stats.WireBytes += int64(1 + uvarintLen(uint64(len(rec))) + len(rec))
	return dst, false, nil
}

// DecodeRecord parses one wire item from src, returning the record and
// the number of bytes consumed. The receiver cache mutates exactly as
// the sender's did, preserving the mirror invariant. For references
// the returned slice aliases cache storage that a later insert may
// evict and reuse; copy it if it must outlive subsequent cache calls.
func (c *Cache) DecodeRecord(src []byte) ([]byte, int, error) {
	if len(src) == 0 {
		return nil, 0, fmt.Errorf("%w: empty", ErrBadWire)
	}
	switch src[0] {
	case flagRef:
		if len(src) < 9 {
			return nil, 0, fmt.Errorf("%w: short reference", ErrBadWire)
		}
		key := binary.LittleEndian.Uint64(src[1:9])
		i, ok := c.byKey[key]
		if !ok {
			return nil, 0, fmt.Errorf("%w: key %x", ErrUnknownRef, key)
		}
		c.moveToFront(i)
		c.Stats.Hits++
		return c.entries[i].bytes, 9, nil
	case flagFull:
		n, used := binary.Uvarint(src[1:])
		if used <= 0 {
			return nil, 0, fmt.Errorf("%w: record length", ErrBadWire)
		}
		if n > MaxRecordBytes {
			return nil, 0, fmt.Errorf("%w: %d bytes", ErrRecordLimit, n)
		}
		start := 1 + used
		if uint64(len(src)-start) < n {
			return nil, 0, fmt.Errorf("%w: record truncated", ErrBadWire)
		}
		rec := src[start : start+int(n)]
		key := hashRecord(rec)
		if i, ok := c.byKey[key]; ok {
			// Mirror the sender's collision replacement.
			c.removeIndex(i)
		}
		c.insert(key, rec)
		c.Stats.Misses++
		return rec, start + int(n), nil
	default:
		return nil, 0, fmt.Errorf("%w: flag %#x", ErrBadWire, src[0])
	}
}

// EncodeAll encodes a batch of records.
func (c *Cache) EncodeAll(dst []byte, recs [][]byte) ([]byte, int, error) {
	hits := 0
	for i, rec := range recs {
		var hit bool
		var err error
		dst, hit, err = c.EncodeRecord(dst, rec)
		if err != nil {
			return dst, hits, fmt.Errorf("record %d: %w", i, err)
		}
		if hit {
			hits++
		}
	}
	return dst, hits, nil
}

// DecodeAll decodes a whole wire buffer back into records.
func (c *Cache) DecodeAll(src []byte) ([][]byte, error) {
	var recs [][]byte
	for len(src) > 0 {
		rec, n, err := c.DecodeRecord(src)
		if err != nil {
			return recs, fmt.Errorf("item %d: %w", len(recs), err)
		}
		// Copy: refs alias cache storage that later inserts may evict.
		recs = append(recs, append([]byte(nil), rec...))
		src = src[n:]
	}
	return recs, nil
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func uvarintLen(v uint64) int {
	var buf [binary.MaxVarintLen64]byte
	return binary.PutUvarint(buf[:], v)
}
