package cmdcache

import (
	"bytes"
	"container/list"
	"encoding/binary"
	"hash/fnv"
	"testing"

	"github.com/gbooster/gbooster/internal/sim"
)

// refCache is the original container/list + hash/fnv implementation,
// kept verbatim as the behavioural reference: the slab LRU must match
// it decision-for-decision (hits, misses, collisions, evictions) and
// byte-for-byte on the wire, or deployed mixed old/new fleets would
// desync their mirrored caches.
type refCache struct {
	capacity int
	size     int
	order    *list.List
	byKey    map[uint64]*list.Element
	stats    Stats
}

type refEntry struct {
	key   uint64
	bytes []byte
}

func newRefCache(capacity int) *refCache {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &refCache{
		capacity: capacity,
		order:    list.New(),
		byKey:    make(map[uint64]*list.Element),
	}
}

func refHash(rec []byte) uint64 {
	h := fnv.New64a()
	_, _ = h.Write(rec)
	return h.Sum64()
}

func (c *refCache) encodeRecord(dst, rec []byte) ([]byte, bool, error) {
	if len(rec) > MaxRecordBytes {
		return dst, false, ErrRecordLimit
	}
	c.stats.RawBytes += int64(len(rec))
	key := refHash(rec)
	if el, ok := c.byKey[key]; ok {
		ent := el.Value.(*refEntry)
		if bytes.Equal(ent.bytes, rec) {
			c.order.MoveToFront(el)
			dst = append(dst, flagRef)
			dst = binary.LittleEndian.AppendUint64(dst, key)
			c.stats.Hits++
			c.stats.WireBytes += 9
			return dst, true, nil
		}
		c.stats.Collisions++
		c.removeElement(el)
	}
	c.insert(key, rec)
	dst = append(dst, flagFull)
	dst = binary.AppendUvarint(dst, uint64(len(rec)))
	dst = append(dst, rec...)
	c.stats.Misses++
	c.stats.WireBytes += int64(1 + uvarintLen(uint64(len(rec))) + len(rec))
	return dst, false, nil
}

func (c *refCache) insert(key uint64, rec []byte) {
	ent := &refEntry{key: key, bytes: append([]byte(nil), rec...)}
	el := c.order.PushFront(ent)
	c.byKey[key] = el
	c.size += len(ent.bytes)
	for c.size > c.capacity && c.order.Len() > 1 {
		back := c.order.Back()
		if back == nil || back == el {
			break
		}
		c.removeElement(back)
		c.stats.Evictions++
	}
}

func (c *refCache) removeElement(el *list.Element) {
	ent := el.Value.(*refEntry)
	c.order.Remove(el)
	delete(c.byKey, ent.key)
	c.size -= len(ent.bytes)
}

// lruKeys walks a cache's recency order front (MRU) to back (LRU).
func (c *Cache) lruKeys() []uint64 {
	var keys []uint64
	for i := c.head; i != noIndex; i = c.entries[i].next {
		keys = append(keys, c.entries[i].key)
	}
	return keys
}

func (c *refCache) lruKeys() []uint64 {
	var keys []uint64
	for el := c.order.Front(); el != nil; el = el.Next() {
		keys = append(keys, el.Value.(*refEntry).key)
	}
	return keys
}

// recordStream generates a workload-shaped random record stream: a
// small working set of hot records (cache hits), a long tail of cold
// ones (misses + evictions), and occasional giant records that blow
// most of the cache out (eviction storms).
func recordStream(seed uint64, n int) [][]byte {
	r := sim.NewRNG(seed)
	hot := make([][]byte, 32)
	for i := range hot {
		rec := make([]byte, int(r.Uint64()%60)+4)
		for j := range rec {
			rec[j] = byte(r.Uint64())
		}
		hot[i] = rec
	}
	recs := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		switch r.Uint64() % 10 {
		case 0, 1, 2: // cold record
			rec := make([]byte, int(r.Uint64()%120)+1)
			for j := range rec {
				rec[j] = byte(r.Uint64())
			}
			recs = append(recs, rec)
		case 3: // oversized record: eviction pressure
			rec := make([]byte, int(r.Uint64()%800)+200)
			for j := range rec {
				rec[j] = byte(r.Uint64())
			}
			recs = append(recs, rec)
		default: // hot record
			recs = append(recs, hot[r.Uint64()%uint64(len(hot))])
		}
	}
	return recs
}

// TestDifferentialOldVsNew drives the slab LRU and the original
// list-based implementation through the same 10k-record streams and
// demands identical wire bytes, identical hit decisions, and identical
// final cache states — the determinism invariant the receiver's mirror
// depends on.
func TestDifferentialOldVsNew(t *testing.T) {
	for _, tc := range []struct {
		name     string
		seed     uint64
		capacity int
	}{
		{"tight-cache", 1, 2 << 10},
		{"roomy-cache", 2, 64 << 10},
		{"tiny-cache", 3, 64},
		{"default-ish", 4, 16 << 10},
	} {
		t.Run(tc.name, func(t *testing.T) {
			recs := recordStream(tc.seed, 10000)
			oldC := newRefCache(tc.capacity)
			newC := New(tc.capacity)
			mirror := New(tc.capacity) // receiver fed the new sender's wire
			for i, rec := range recs {
				oldWire, oldHit, oldErr := oldC.encodeRecord(nil, rec)
				newWire, newHit, newErr := newC.EncodeRecord(nil, rec)
				if (oldErr == nil) != (newErr == nil) {
					t.Fatalf("rec %d: error divergence old=%v new=%v", i, oldErr, newErr)
				}
				if oldHit != newHit {
					t.Fatalf("rec %d: hit divergence old=%v new=%v", i, oldHit, newHit)
				}
				if !bytes.Equal(oldWire, newWire) {
					t.Fatalf("rec %d: wire divergence (%d vs %d bytes)", i, len(oldWire), len(newWire))
				}
				got, n, err := mirror.DecodeRecord(newWire)
				if err != nil {
					t.Fatalf("rec %d: mirror decode: %v", i, err)
				}
				if n != len(newWire) || !bytes.Equal(got, rec) {
					t.Fatalf("rec %d: mirror returned wrong record", i)
				}
			}
			oldSt, newSt := oldC.stats, newC.Stats
			if oldSt != newSt {
				t.Fatalf("stats divergence:\nold %+v\nnew %+v", oldSt, newSt)
			}
			if oldC.size != newC.MemoryBytes() || oldC.order.Len() != newC.Len() {
				t.Fatalf("state divergence: old %d bytes/%d recs, new %d bytes/%d recs",
					oldC.size, oldC.order.Len(), newC.MemoryBytes(), newC.Len())
			}
			oldKeys, newKeys := oldC.lruKeys(), newC.lruKeys()
			if len(oldKeys) != len(newKeys) {
				t.Fatalf("LRU length divergence: %d vs %d", len(oldKeys), len(newKeys))
			}
			for i := range oldKeys {
				if oldKeys[i] != newKeys[i] {
					t.Fatalf("LRU order divergence at %d: %x vs %x", i, oldKeys[i], newKeys[i])
				}
			}
			// The receiver mirror must agree with the sender too.
			if mirrorKeys := mirror.lruKeys(); len(mirrorKeys) != len(newKeys) {
				t.Fatalf("mirror length divergence: %d vs %d", len(mirrorKeys), len(newKeys))
			} else {
				for i := range mirrorKeys {
					if mirrorKeys[i] != newKeys[i] {
						t.Fatalf("mirror order divergence at %d", i)
					}
				}
			}
		})
	}
}

// TestInlineFNVMatchesStdlib pins the inline hash to hash/fnv: a
// mismatch would make every deployed cache key change under us.
func TestInlineFNVMatchesStdlib(t *testing.T) {
	r := sim.NewRNG(99)
	for i := 0; i < 2000; i++ {
		rec := make([]byte, int(r.Uint64()%200))
		for j := range rec {
			rec[j] = byte(r.Uint64())
		}
		if hashRecord(rec) != refHash(rec) {
			t.Fatalf("FNV divergence on %d-byte record", len(rec))
		}
	}
}

// TestEncodeSteadyStateZeroAlloc pins the fast path: once the working
// set is cached, encoding a hit must not allocate.
func TestEncodeSteadyStateZeroAlloc(t *testing.T) {
	c := New(1 << 20)
	rec := bytes.Repeat([]byte{0xAB}, 64)
	dst := make([]byte, 0, 64)
	var err error
	if dst, _, err = c.EncodeRecord(dst[:0], rec); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(100, func() {
		dst, _, _ = c.EncodeRecord(dst[:0], rec)
	}); n != 0 {
		t.Fatalf("steady-state EncodeRecord allocates %v times per record", n)
	}
}
