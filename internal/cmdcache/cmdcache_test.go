package cmdcache

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"github.com/gbooster/gbooster/internal/sim"
)

func TestFirstSendIsMissSecondIsHit(t *testing.T) {
	snd, rcv := New(0), New(0)
	rec := []byte("glDrawElements:stream-bytes")

	wire, hit, err := snd.EncodeRecord(nil, rec)
	if err != nil || hit {
		t.Fatalf("first encode hit=%v err=%v", hit, err)
	}
	got, n, err := rcv.DecodeRecord(wire)
	if err != nil || n != len(wire) || !bytes.Equal(got, rec) {
		t.Fatalf("decode full: %q %d %v", got, n, err)
	}

	wire2, hit, err := snd.EncodeRecord(nil, rec)
	if err != nil || !hit {
		t.Fatalf("second encode hit=%v err=%v", hit, err)
	}
	if len(wire2) != 9 {
		t.Fatalf("reference wire = %d bytes, want 9", len(wire2))
	}
	got, _, err = rcv.DecodeRecord(wire2)
	if err != nil || !bytes.Equal(got, rec) {
		t.Fatalf("decode ref: %q %v", got, err)
	}
	if snd.Stats.Hits != 1 || snd.Stats.Misses != 1 {
		t.Fatalf("sender stats %+v", snd.Stats)
	}
}

func TestRedundantStreamCompressesHeavily(t *testing.T) {
	snd := New(0)
	frame := [][]byte{
		[]byte("glUseProgram(1)"),
		[]byte("glBindTexture(0x0DE1, 3)"),
		[]byte("glUniformMatrix4fv(...)"),
		[]byte("glDrawElements(TRIANGLES, 36)"),
	}
	var raw, wireTotal int64
	for f := 0; f < 100; f++ {
		for _, rec := range frame {
			wire, _, err := snd.EncodeRecord(nil, rec)
			if err != nil {
				t.Fatal(err)
			}
			raw += int64(len(rec))
			wireTotal += int64(len(wire))
		}
	}
	if ratio := float64(wireTotal) / float64(raw); ratio > 0.5 {
		t.Fatalf("redundant stream wire ratio = %.2f, want < 0.5", ratio)
	}
	if snd.Stats.Hits != 4*99 {
		t.Fatalf("hits = %d, want %d", snd.Stats.Hits, 4*99)
	}
}

func TestMirrorInvariantUnderEviction(t *testing.T) {
	// Tiny caches force constant eviction; the receiver must stay in
	// lockstep so every reference resolves.
	snd, rcv := New(64), New(64)
	rng := sim.NewRNG(7)
	pool := make([][]byte, 8)
	for i := range pool {
		pool[i] = []byte{byte(i), byte(i), byte(i), byte(i), byte(i), byte(i), byte(i), byte(i), byte(i), byte(i)}
	}
	for step := 0; step < 2000; step++ {
		rec := pool[rng.Intn(len(pool))]
		wire, _, err := snd.EncodeRecord(nil, rec)
		if err != nil {
			t.Fatal(err)
		}
		got, n, err := rcv.DecodeRecord(wire)
		if err != nil {
			t.Fatalf("step %d: %v (mirror broke)", step, err)
		}
		if n != len(wire) || !bytes.Equal(got, rec) {
			t.Fatalf("step %d: decoded %q want %q", step, got, rec)
		}
	}
	if snd.Stats.Evictions == 0 {
		t.Fatal("test did not exercise eviction")
	}
	if snd.Len() != rcv.Len() || snd.MemoryBytes() != rcv.MemoryBytes() {
		t.Fatalf("caches diverged: snd %d/%dB rcv %d/%dB",
			snd.Len(), snd.MemoryBytes(), rcv.Len(), rcv.MemoryBytes())
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	// Capacity for two 10-byte records.
	snd := New(20)
	a, b, c := bytes.Repeat([]byte("a"), 10), bytes.Repeat([]byte("b"), 10), bytes.Repeat([]byte("c"), 10)
	for _, r := range [][]byte{a, b} {
		if _, _, err := snd.EncodeRecord(nil, r); err != nil {
			t.Fatal(err)
		}
	}
	// Touch a so b is least recently used.
	if _, hit, _ := snd.EncodeRecord(nil, a); !hit {
		t.Fatal("expected hit on a")
	}
	// Insert c: must evict b, keep a.
	if _, _, err := snd.EncodeRecord(nil, c); err != nil {
		t.Fatal(err)
	}
	if _, hit, _ := snd.EncodeRecord(nil, a); !hit {
		t.Fatal("a was wrongly evicted")
	}
	if _, hit, _ := snd.EncodeRecord(nil, b); hit {
		t.Fatal("b should have been evicted")
	}
}

func TestOversizedRecordStillRoundTrips(t *testing.T) {
	snd, rcv := New(16), New(16)
	big := bytes.Repeat([]byte("x"), 100)
	wire, hit, err := snd.EncodeRecord(nil, big)
	if err != nil || hit {
		t.Fatalf("oversized encode hit=%v err=%v", hit, err)
	}
	got, _, err := rcv.DecodeRecord(wire)
	if err != nil || !bytes.Equal(got, big) {
		t.Fatalf("oversized decode: %v", err)
	}
	// Oversized record may stay as the single resident entry, but the
	// caches agree.
	if snd.Len() != rcv.Len() {
		t.Fatalf("len diverged %d vs %d", snd.Len(), rcv.Len())
	}
}

func TestRecordLimit(t *testing.T) {
	snd := New(0)
	huge := make([]byte, MaxRecordBytes+1)
	if _, _, err := snd.EncodeRecord(nil, huge); !errors.Is(err, ErrRecordLimit) {
		t.Fatalf("limit error = %v", err)
	}
}

func TestDecodeErrors(t *testing.T) {
	rcv := New(0)
	if _, _, err := rcv.DecodeRecord(nil); !errors.Is(err, ErrBadWire) {
		t.Fatalf("empty error = %v", err)
	}
	if _, _, err := rcv.DecodeRecord([]byte{0x07}); !errors.Is(err, ErrBadWire) {
		t.Fatalf("bad flag error = %v", err)
	}
	if _, _, err := rcv.DecodeRecord([]byte{flagRef, 1, 2}); !errors.Is(err, ErrBadWire) {
		t.Fatalf("short ref error = %v", err)
	}
	if _, _, err := rcv.DecodeRecord([]byte{flagRef, 1, 2, 3, 4, 5, 6, 7, 8}); !errors.Is(err, ErrUnknownRef) {
		t.Fatalf("unknown ref error = %v", err)
	}
	if _, _, err := rcv.DecodeRecord([]byte{flagFull, 10, 'a'}); !errors.Is(err, ErrBadWire) {
		t.Fatalf("truncated full error = %v", err)
	}
}

func TestEncodeAllDecodeAll(t *testing.T) {
	snd, rcv := New(0), New(0)
	recs := [][]byte{
		[]byte("one"), []byte("two"), []byte("one"), []byte("three"), []byte("two"),
	}
	wire, hits, err := snd.EncodeAll(nil, recs)
	if err != nil {
		t.Fatal(err)
	}
	if hits != 2 {
		t.Fatalf("hits = %d, want 2", hits)
	}
	got, err := rcv.DecodeAll(wire)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("decoded %d records", len(got))
	}
	for i := range recs {
		if !bytes.Equal(got[i], recs[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], recs[i])
		}
	}
}

func TestDecodedRecordsSurviveLaterEviction(t *testing.T) {
	// DecodeAll results must not alias storage that later inserts evict.
	snd, rcv := New(32), New(32)
	recs := [][]byte{
		bytes.Repeat([]byte("a"), 20),
		bytes.Repeat([]byte("b"), 20),
		bytes.Repeat([]byte("c"), 20),
	}
	wire, _, err := snd.EncodeAll(nil, recs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := rcv.DecodeAll(wire)
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if !bytes.Equal(got[i], recs[i]) {
			t.Fatalf("record %d corrupted by eviction", i)
		}
	}
}

func TestMemoryAccounting(t *testing.T) {
	c := New(1000)
	if _, _, err := c.EncodeRecord(nil, bytes.Repeat([]byte("x"), 100)); err != nil {
		t.Fatal(err)
	}
	if c.MemoryBytes() != 100 || c.Len() != 1 {
		t.Fatalf("memory = %d len = %d", c.MemoryBytes(), c.Len())
	}
}

func TestWireBytesStatMatchesOutput(t *testing.T) {
	snd := New(0)
	var total int64
	for _, rec := range [][]byte{[]byte("aaaa"), []byte("bbbb"), []byte("aaaa")} {
		wire, _, err := snd.EncodeRecord(nil, rec)
		if err != nil {
			t.Fatal(err)
		}
		total += int64(len(wire))
	}
	if snd.Stats.WireBytes != total {
		t.Fatalf("WireBytes = %d, actual %d", snd.Stats.WireBytes, total)
	}
}

func TestMirrorProperty(t *testing.T) {
	// Property: for any record sequence drawn from a small alphabet,
	// a fresh receiver reproduces the exact records, and both caches
	// finish with identical shape.
	check := func(seed uint64, steps uint16, capRaw uint16) bool {
		capacity := int(capRaw%200) + 20
		snd, rcv := New(capacity), New(capacity)
		rng := sim.NewRNG(seed)
		for i := 0; i < int(steps%400)+1; i++ {
			n := rng.Intn(30) + 1
			rec := make([]byte, n)
			fill := byte(rng.Intn(5))
			for k := range rec {
				rec[k] = fill
			}
			wire, _, err := snd.EncodeRecord(nil, rec)
			if err != nil {
				return false
			}
			got, used, err := rcv.DecodeRecord(wire)
			if err != nil || used != len(wire) || !bytes.Equal(got, rec) {
				return false
			}
		}
		return snd.Len() == rcv.Len() && snd.MemoryBytes() == rcv.MemoryBytes()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncodeRecordHit(b *testing.B) {
	c := New(0)
	rec := bytes.Repeat([]byte("glDrawElements-args"), 4)
	if _, _, err := c.EncodeRecord(nil, rec); err != nil {
		b.Fatal(err)
	}
	var buf []byte
	b.ReportAllocs()
	b.SetBytes(int64(len(rec)))
	for i := 0; i < b.N; i++ {
		var err error
		buf, _, err = c.EncodeRecord(buf[:0], rec)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeRecordRef(b *testing.B) {
	snd, rcv := New(0), New(0)
	rec := bytes.Repeat([]byte("glDrawElements-args"), 4)
	if _, _, err := snd.EncodeRecord(nil, rec); err != nil {
		b.Fatal(err)
	}
	wire, _, err := snd.EncodeRecord(nil, rec)
	if err != nil {
		b.Fatal(err)
	}
	// Prime the receiver with the full record once.
	full, _, err := New(0).EncodeRecord(nil, rec)
	if err != nil {
		b.Fatal(err)
	}
	if _, _, err := rcv.DecodeRecord(full); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.SetBytes(int64(len(rec)))
	for i := 0; i < b.N; i++ {
		if _, _, err := rcv.DecodeRecord(wire); err != nil {
			b.Fatal(err)
		}
	}
}

// TestExportSeedReproducesCache proves a checkpointed cache mirror is
// behaviourally identical to the original: same records in the same
// recency order, and — because eviction order follows from that order —
// identical wire encodings for any future record stream.
func TestExportSeedReproducesCache(t *testing.T) {
	const cap = 1 << 10
	src := New(cap)
	rng := sim.NewRNG(77)
	var history [][]byte
	for i := 0; i < 200; i++ {
		var rec []byte
		if len(history) > 0 && rng.Intn(3) == 0 {
			rec = history[rng.Intn(len(history))] // revisit: exercises moveToFront
		} else {
			rec = make([]byte, 16+rng.Intn(96))
			for j := range rec {
				rec[j] = byte(rng.Intn(256))
			}
			history = append(history, rec)
		}
		if _, _, err := src.EncodeRecord(nil, rec); err != nil {
			t.Fatal(err)
		}
	}

	clone := New(src.Capacity())
	if err := src.Export(func(rec []byte) error { return clone.Seed(rec) }); err != nil {
		t.Fatal(err)
	}
	if clone.Len() != src.Len() || clone.MemoryBytes() != src.MemoryBytes() {
		t.Fatalf("clone len=%d bytes=%d, want len=%d bytes=%d",
			clone.Len(), clone.MemoryBytes(), src.Len(), src.MemoryBytes())
	}
	var order, cloneOrder [][]byte
	collect := func(dst *[][]byte) func([]byte) error {
		return func(rec []byte) error {
			*dst = append(*dst, append([]byte(nil), rec...))
			return nil
		}
	}
	if err := src.Export(collect(&order)); err != nil {
		t.Fatal(err)
	}
	if err := clone.Export(collect(&cloneOrder)); err != nil {
		t.Fatal(err)
	}
	if len(order) != len(cloneOrder) {
		t.Fatalf("order length %d != %d", len(cloneOrder), len(order))
	}
	for i := range order {
		if !bytes.Equal(order[i], cloneOrder[i]) {
			t.Fatalf("eviction-order position %d differs", i)
		}
	}

	// Future behaviour: both caches must encode an arbitrary follow-up
	// stream (hits, misses, evictions) to identical wire bytes.
	for i := 0; i < 100; i++ {
		var rec []byte
		if len(history) > 0 && rng.Intn(2) == 0 {
			rec = history[rng.Intn(len(history))]
		} else {
			rec = make([]byte, 16+rng.Intn(200))
			for j := range rec {
				rec[j] = byte(rng.Intn(256))
			}
		}
		a, _, err := src.EncodeRecord(nil, rec)
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := clone.EncodeRecord(nil, rec)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("follow-up record %d: wire bytes diverge", i)
		}
	}
}

func TestSeedRejectsOversizedRecord(t *testing.T) {
	c := New(0)
	if err := c.Seed(make([]byte, MaxRecordBytes+1)); !errors.Is(err, ErrRecordLimit) {
		t.Fatalf("err = %v, want ErrRecordLimit", err)
	}
}
