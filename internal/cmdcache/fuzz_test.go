package cmdcache

import (
	"testing"
	"testing/quick"
)

func TestDecodeRecordNeverPanicsOnArbitraryBytes(t *testing.T) {
	check := func(data []byte) bool {
		c := New(1024)
		_, _, _ = c.DecodeRecord(data)
		_, _ = c.DecodeAll(data)
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
