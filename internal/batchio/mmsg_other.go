//go:build !linux || !(amd64 || arm64)

package batchio

import "net"

// mmsgIO is absent on platforms without sendmmsg/recvmmsg wiring;
// newMmsgIO returning nil routes everything through the portable
// WriteTo/ReadFrom loop.
type mmsgIO struct{}

func newMmsgIO(net.PacketConn) *mmsgIO { return nil }

func (*mmsgIO) send([]Datagram) (int, int, error) { return 0, 0, errNoFastPath }

func (*mmsgIO) recv([][]byte, []int, []net.Addr) (int, int, error) { return 0, 0, errNoFastPath }
