//go:build linux && (amd64 || arm64)

package batchio

import (
	"net"
	"sync"
	"syscall"
	"unsafe"
)

// mmsghdr mirrors struct mmsghdr from <sys/socket.h>: a Msghdr plus the
// kernel-filled transfer length, padded to keep the array stride right
// on 64-bit.
type mmsghdr struct {
	hdr    syscall.Msghdr
	msgLen uint32
	_      [4]byte
}

// emptyByte anchors zero-length iovecs: the kernel wants a non-nil base
// even for empty datagrams.
var emptyByte byte

// mmsgIO is one direction's batched-syscall state: the raw fd hook plus
// reusable header/iovec/sockaddr arrays so steady-state batches build
// without allocating. The mutex serializes scratch reuse; callers that
// want parallel syscalls should use separate Senders.
type mmsgIO struct {
	mu  sync.Mutex
	rc  syscall.RawConn
	ip6 bool

	hdrs  [MaxBatch]mmsghdr
	iovs  [MaxBatch]syscall.Iovec
	names [MaxBatch]syscall.RawSockaddrInet6
}

// newMmsgIO hooks pc's raw fd when it is a real UDP socket; anything
// else (netsim hubs, in-memory pipes) gets nil and the portable loop.
func newMmsgIO(pc net.PacketConn) *mmsgIO {
	uc, ok := pc.(*net.UDPConn)
	if !ok {
		return nil
	}
	rc, err := uc.SyscallConn()
	if err != nil {
		return nil
	}
	la, ok := uc.LocalAddr().(*net.UDPAddr)
	if !ok {
		return nil
	}
	return &mmsgIO{rc: rc, ip6: la.IP.To4() == nil}
}

// putSockaddr encodes ua into slot i's name buffer in the socket's own
// family, returning the sockaddr length (0 when the address can't be
// expressed, e.g. a v6 peer on a v4 socket).
func (m *mmsgIO) putSockaddr(i int, ua *net.UDPAddr) uint32 {
	if m.ip6 {
		ip := ua.IP.To16()
		if ip == nil {
			return 0
		}
		sa := &m.names[i]
		*sa = syscall.RawSockaddrInet6{Family: syscall.AF_INET6}
		p := (*[2]byte)(unsafe.Pointer(&sa.Port))
		p[0], p[1] = byte(ua.Port>>8), byte(ua.Port)
		copy(sa.Addr[:], ip)
		return syscall.SizeofSockaddrInet6
	}
	ip := ua.IP.To4()
	if ip == nil {
		return 0
	}
	sa := (*syscall.RawSockaddrInet4)(unsafe.Pointer(&m.names[i]))
	*sa = syscall.RawSockaddrInet4{Family: syscall.AF_INET}
	p := (*[2]byte)(unsafe.Pointer(&sa.Port))
	p[0], p[1] = byte(ua.Port>>8), byte(ua.Port)
	copy(sa.Addr[:], ip)
	return syscall.SizeofSockaddrInet4
}

// addrAt decodes slot i's kernel-filled sockaddr into a fresh UDPAddr.
func (m *mmsgIO) addrAt(i int) net.Addr {
	raw := &m.names[i]
	switch raw.Family {
	case syscall.AF_INET:
		sa := (*syscall.RawSockaddrInet4)(unsafe.Pointer(raw))
		p := (*[2]byte)(unsafe.Pointer(&sa.Port))
		ip := make(net.IP, 4)
		copy(ip, sa.Addr[:])
		return &net.UDPAddr{IP: ip, Port: int(p[0])<<8 | int(p[1])}
	case syscall.AF_INET6:
		p := (*[2]byte)(unsafe.Pointer(&raw.Port))
		ip := make(net.IP, 16)
		copy(ip, raw.Addr[:])
		return &net.UDPAddr{IP: ip, Port: int(p[0])<<8 | int(p[1])}
	}
	return nil
}

// send pushes batch through sendmmsg, chunking at MaxBatch, and returns
// datagrams sent and syscalls spent. errNoFastPath means an address the
// raw path can't encode; the caller's portable loop picks up from the
// returned count.
func (m *mmsgIO) send(batch []Datagram) (int, int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	sent, syscalls := 0, 0
	for sent < len(batch) {
		k := len(batch) - sent
		if k > MaxBatch {
			k = MaxBatch
		}
		for i := 0; i < k; i++ {
			d := batch[sent+i]
			ua, ok := d.Addr.(*net.UDPAddr)
			if !ok {
				return sent, syscalls, errNoFastPath
			}
			nameLen := m.putSockaddr(i, ua)
			if nameLen == 0 {
				return sent, syscalls, errNoFastPath
			}
			iov := &m.iovs[i]
			if len(d.Buf) > 0 {
				iov.Base = &d.Buf[0]
			} else {
				iov.Base = &emptyByte
			}
			iov.Len = uint64(len(d.Buf))
			h := &m.hdrs[i]
			h.hdr = syscall.Msghdr{
				Name:    (*byte)(unsafe.Pointer(&m.names[i])),
				Namelen: nameLen,
				Iov:     iov,
				Iovlen:  1,
			}
			h.msgLen = 0
		}
		done := 0
		var sysErr error
		werr := m.rc.Write(func(fd uintptr) bool {
			for done < k {
				r, _, e := syscall.Syscall6(sysSENDMMSG, fd,
					uintptr(unsafe.Pointer(&m.hdrs[done])), uintptr(k-done), 0, 0, 0)
				syscalls++
				switch e {
				case 0:
					done += int(r)
				case syscall.EINTR:
					continue
				case syscall.EAGAIN:
					return false // park on the netpoller until writable
				default:
					sysErr = e
					return true
				}
			}
			return true
		})
		sent += done
		if sysErr != nil {
			return sent, syscalls, sysErr
		}
		if werr != nil {
			return sent, syscalls, werr
		}
	}
	return sent, syscalls, nil
}

// recv pulls up to min(len(bufs), MaxBatch) datagrams in one recvmmsg,
// blocking on the netpoller until at least one (or the read deadline)
// arrives. Every bufs[i] must be non-empty — size them for the MTU.
func (m *mmsgIO) recv(bufs [][]byte, sizes []int, addrs []net.Addr) (int, int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	k := len(bufs)
	if k > MaxBatch {
		k = MaxBatch
	}
	for i := 0; i < k; i++ {
		iov := &m.iovs[i]
		iov.Base = &bufs[i][0]
		iov.Len = uint64(len(bufs[i]))
		h := &m.hdrs[i]
		h.hdr = syscall.Msghdr{
			Name:    (*byte)(unsafe.Pointer(&m.names[i])),
			Namelen: syscall.SizeofSockaddrInet6,
			Iov:     iov,
			Iovlen:  1,
		}
		h.msgLen = 0
	}
	got, syscalls := 0, 0
	var sysErr error
	rerr := m.rc.Read(func(fd uintptr) bool {
		for {
			r, _, e := syscall.Syscall6(sysRECVMMSG, fd,
				uintptr(unsafe.Pointer(&m.hdrs[0])), uintptr(k),
				syscall.MSG_DONTWAIT, 0, 0)
			syscalls++
			switch e {
			case 0:
				got = int(r)
				return true
			case syscall.EINTR:
				continue
			case syscall.EAGAIN:
				return false // park on the netpoller until readable
			default:
				sysErr = e
				return true
			}
		}
	})
	if sysErr != nil {
		return 0, syscalls, sysErr
	}
	if rerr != nil {
		// Deadline expiry surfaces here as a net.OpError with
		// Timeout() == true, matching ReadFrom's contract.
		return 0, syscalls, rerr
	}
	for i := 0; i < got; i++ {
		sizes[i] = int(m.hdrs[i].msgLen)
		addrs[i] = m.addrAt(i)
	}
	return got, syscalls, nil
}
