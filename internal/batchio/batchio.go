// Package batchio amortizes the per-datagram syscall cost of UDP I/O:
// on linux it moves whole batches of datagrams through one
// sendmmsg/recvmmsg call (via the stdlib syscall package — no new
// dependencies), and everywhere else it degrades to the plain
// one-WriteTo/ReadFrom-per-datagram loop with identical delivery
// semantics. The fleet's egress writer and demux pump are the intended
// callers: at 1024 sessions the shared listener's syscall rate, not the
// now-cheap encode, is the downlink's dominant fixed cost.
//
// Both directions report datagram and syscall counts, so callers can
// observe the achieved coalescing (datagrams per syscall) directly.
package batchio

import (
	"errors"
	"net"
	"sync/atomic"
)

// errNoFastPath is the fast path's "this I can't express" signal: the
// portable loop takes over from wherever the batch stopped.
var errNoFastPath = errors.New("batchio: fast path unavailable")

// MaxBatch is the largest number of datagrams one batched syscall
// moves; larger Send batches are chunked transparently, and Recv never
// fills more than MaxBatch buffers per call.
const MaxBatch = 64

// Datagram pairs one packet payload with its peer address.
type Datagram struct {
	Buf  []byte
	Addr net.Addr
}

// Stats counts datagrams moved and syscalls consumed moving them. On
// the portable fallback path the two advance in lockstep; on the linux
// fast path Syscalls lags Datagrams by the achieved batching factor.
type Stats struct {
	Datagrams int64
	Syscalls  int64
}

// Sender writes batches of datagrams to a PacketConn, coalescing each
// batch into as few syscalls as the platform allows.
type Sender struct {
	pc   net.PacketConn
	fast *mmsgIO

	datagrams atomic.Int64
	syscalls  atomic.Int64
}

// NewSender builds a sender over pc. The linux sendmmsg fast path
// engages when pc is a real *net.UDPConn; any other conn (netsim hubs,
// in-memory pairs) uses the portable loop.
func NewSender(pc net.PacketConn) *Sender {
	return &Sender{pc: pc, fast: newMmsgIO(pc)}
}

// FastPath reports whether batched syscalls are in use.
func (s *Sender) FastPath() bool { return s.fast != nil }

// Stats returns cumulative datagram/syscall counts.
func (s *Sender) Stats() Stats {
	return Stats{Datagrams: s.datagrams.Load(), Syscalls: s.syscalls.Load()}
}

// Send writes every datagram in batch, in order, and returns how many
// landed. A fast-path error (unsupported address type, torn-down
// socket) falls back to the portable loop for the remainder, so partial
// delivery happens only when the socket itself is failing.
func (s *Sender) Send(batch []Datagram) (int, error) {
	if len(batch) == 0 {
		return 0, nil
	}
	sent := 0
	if s.fast != nil {
		n, sys, err := s.fast.send(batch)
		s.datagrams.Add(int64(n))
		s.syscalls.Add(int64(sys))
		sent = n
		if err == nil {
			return sent, nil
		}
		if err == errNoFastPath {
			// Address shapes this socket can't take the fast way;
			// don't retry per batch.
			s.fast = nil
		}
	}
	for _, d := range batch[sent:] {
		if _, err := s.pc.WriteTo(d.Buf, d.Addr); err != nil {
			return sent, err
		}
		sent++
		s.datagrams.Add(1)
		s.syscalls.Add(1)
	}
	return sent, nil
}

// Receiver reads datagrams from a PacketConn, draining as many as the
// platform surfaces per syscall.
type Receiver struct {
	pc   net.PacketConn
	fast *mmsgIO

	datagrams atomic.Int64
	syscalls  atomic.Int64
}

// NewReceiver builds a receiver over pc; the linux recvmmsg fast path
// engages when pc is a real *net.UDPConn.
func NewReceiver(pc net.PacketConn) *Receiver {
	return &Receiver{pc: pc, fast: newMmsgIO(pc)}
}

// FastPath reports whether batched syscalls are in use.
func (r *Receiver) FastPath() bool { return r.fast != nil }

// Stats returns cumulative datagram/syscall counts.
func (r *Receiver) Stats() Stats {
	return Stats{Datagrams: r.datagrams.Load(), Syscalls: r.syscalls.Load()}
}

// Recv fills bufs with up to len(bufs) datagrams, recording each
// payload length in sizes and source in addrs (both must be at least
// len(bufs) long), and returns how many arrived. It blocks until at
// least one datagram (or the conn's read deadline) arrives; the
// portable path delivers exactly one per call, the fast path as many
// as one recvmmsg surfaces. Deadline expiry returns a net.Error with
// Timeout() true, like ReadFrom.
func (r *Receiver) Recv(bufs [][]byte, sizes []int, addrs []net.Addr) (int, error) {
	if len(bufs) == 0 {
		return 0, nil
	}
	if r.fast != nil {
		n, sys, err := r.fast.recv(bufs, sizes, addrs)
		r.datagrams.Add(int64(n))
		r.syscalls.Add(int64(sys))
		if err == errNoFastPath {
			r.fast = nil
		} else {
			return n, err
		}
	}
	n, addr, err := r.pc.ReadFrom(bufs[0])
	if err != nil {
		return 0, err
	}
	sizes[0] = n
	addrs[0] = addr
	r.datagrams.Add(1)
	r.syscalls.Add(1)
	return 1, nil
}
