//go:build linux && amd64

package batchio

import "syscall"

// The stdlib syscall package's frozen linux/amd64 table predates
// sendmmsg, so its number is spelled out here; recvmmsg made the
// freeze and comes from the package.
const (
	sysSENDMMSG = 307
	sysRECVMMSG = syscall.SYS_RECVMMSG
)
