package batchio

import (
	"bytes"
	"net"
	"testing"
	"time"
)

// plainPC hides the concrete *net.UDPConn behind a plain PacketConn so
// the type assertion in newMmsgIO fails and the portable loop runs —
// the same socket, minus the batched syscalls.
type plainPC struct{ net.PacketConn }

func udpPair(t *testing.T) (send, recv *net.UDPConn) {
	t.Helper()
	loop := &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)}
	recv, err := net.ListenUDP("udp", loop)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { recv.Close() })
	recv.SetReadBuffer(4 << 20) // best effort; rmem_max may cap it
	send, err = net.ListenUDP("udp", loop)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { send.Close() })
	return send, recv
}

// collectFrom drains n datagrams from recv on a goroutine started
// before the send burst, so a full batch can't overflow the socket's
// receive buffer while nobody is reading.
func collectFrom(recv *net.UDPConn, n int) <-chan [][]byte {
	out := make(chan [][]byte, 1)
	go func() {
		recv.SetReadDeadline(time.Now().Add(5 * time.Second))
		var got [][]byte
		buf := make([]byte, 2048)
		for len(got) < n {
			k, _, err := recv.ReadFrom(buf)
			if err != nil {
				break
			}
			got = append(got, append([]byte(nil), buf[:k]...))
		}
		out <- got
	}()
	return out
}

// testBatch builds n deterministic datagrams of varied sizes (1..1200
// bytes) addressed to dst, so both send paths can be checked against
// one expected byte sequence.
func testBatch(n int, dst net.Addr) []Datagram {
	batch := make([]Datagram, n)
	for i := range batch {
		size := 1 + (i*37)%1200
		buf := make([]byte, size)
		for j := range buf {
			buf[j] = byte(i + j)
		}
		buf[0] = byte(i) // sequence marker for ordering checks
		batch[i] = Datagram{Buf: buf, Addr: dst}
	}
	return batch
}

// TestSendParityFastVsFallback sends the identical datagram sequence
// through the batched fast path and through the portable loop and
// requires byte-identical, in-order delivery from both — the batching
// must be invisible on the wire.
func TestSendParityFastVsFallback(t *testing.T) {
	for _, mode := range []string{"fast", "fallback"} {
		t.Run(mode, func(t *testing.T) {
			send, recv := udpPair(t)
			var s *Sender
			if mode == "fast" {
				s = NewSender(send)
			} else {
				s = NewSender(plainPC{send})
				if s.FastPath() {
					t.Fatal("wrapped conn must not engage the fast path")
				}
			}

			batch := testBatch(128, recv.LocalAddr())
			done := collectFrom(recv, len(batch))
			n, err := s.Send(batch)
			if err != nil {
				t.Fatalf("send: %v", err)
			}
			if n != len(batch) {
				t.Fatalf("sent %d of %d datagrams", n, len(batch))
			}

			got := <-done
			if len(got) != len(batch) {
				t.Fatalf("received %d of %d datagrams", len(got), len(batch))
			}
			for i, want := range batch {
				if !bytes.Equal(got[i], want.Buf) {
					t.Fatalf("datagram %d: wire bytes differ from sent (%d vs %d bytes, marker %d vs %d)",
						i, len(got[i]), len(want.Buf), got[i][0], want.Buf[0])
				}
			}

			st := s.Stats()
			if st.Datagrams != int64(len(batch)) {
				t.Fatalf("Datagrams = %d, want %d", st.Datagrams, len(batch))
			}
			switch {
			case mode == "fallback" && st.Syscalls != st.Datagrams:
				t.Errorf("portable loop: %d syscalls for %d datagrams, want 1:1", st.Syscalls, st.Datagrams)
			case mode == "fast" && s.FastPath() && st.Syscalls*4 > st.Datagrams:
				t.Errorf("fast path: %d syscalls for %d datagrams, want >=4x coalescing", st.Syscalls, st.Datagrams)
			}
		})
	}
}

// TestRecvParityFastVsFallback drains the identical inbound sequence
// through the batched receiver and the portable one, checking bytes,
// order, and source addresses agree.
func TestRecvParityFastVsFallback(t *testing.T) {
	for _, mode := range []string{"fast", "fallback"} {
		t.Run(mode, func(t *testing.T) {
			send, recv := udpPair(t)
			var r *Receiver
			if mode == "fast" {
				r = NewReceiver(recv)
			} else {
				r = NewReceiver(plainPC{recv})
				if r.FastPath() {
					t.Fatal("wrapped conn must not engage the fast path")
				}
			}

			// 64 queued datagrams stay well under the default socket
			// receive buffer even with per-packet kernel overhead.
			batch := testBatch(64, recv.LocalAddr())
			for i, d := range batch {
				if _, err := send.WriteTo(d.Buf, d.Addr); err != nil {
					t.Fatalf("seed datagram %d: %v", i, err)
				}
			}

			recv.SetReadDeadline(time.Now().Add(5 * time.Second))
			bufs := make([][]byte, 32)
			for i := range bufs {
				bufs[i] = make([]byte, 2048)
			}
			sizes := make([]int, len(bufs))
			addrs := make([]net.Addr, len(bufs))
			got := 0
			for got < len(batch) {
				n, err := r.Recv(bufs, sizes, addrs)
				if err != nil {
					t.Fatalf("after %d datagrams: %v", got, err)
				}
				for i := 0; i < n; i++ {
					want := batch[got]
					if !bytes.Equal(bufs[i][:sizes[i]], want.Buf) {
						t.Fatalf("datagram %d: payload differs (%d vs %d bytes)", got, sizes[i], len(want.Buf))
					}
					wantFrom := send.LocalAddr().(*net.UDPAddr)
					from, ok := addrs[i].(*net.UDPAddr)
					if !ok || from.Port != wantFrom.Port || !from.IP.Equal(wantFrom.IP) {
						t.Fatalf("datagram %d: source %v, want %v", got, addrs[i], wantFrom)
					}
					got++
				}
			}

			st := r.Stats()
			if st.Datagrams != int64(len(batch)) {
				t.Fatalf("Datagrams = %d, want %d", st.Datagrams, len(batch))
			}
			if mode == "fallback" && st.Syscalls != st.Datagrams {
				t.Errorf("portable loop: %d syscalls for %d datagrams, want 1:1", st.Syscalls, st.Datagrams)
			}
			if mode == "fast" && r.FastPath() && st.Syscalls >= st.Datagrams {
				t.Errorf("fast path: %d syscalls for %d datagrams, expected coalescing", st.Syscalls, st.Datagrams)
			}
		})
	}
}

// TestRecvDeadlineTimeout pins the deadline contract: expiry surfaces
// as a net.Error with Timeout() true on both paths, exactly like
// ReadFrom, so the fleet demux loop's idle tick keeps working.
func TestRecvDeadlineTimeout(t *testing.T) {
	for _, mode := range []string{"fast", "fallback"} {
		t.Run(mode, func(t *testing.T) {
			_, recv := udpPair(t)
			var r *Receiver
			if mode == "fast" {
				r = NewReceiver(recv)
			} else {
				r = NewReceiver(plainPC{recv})
			}
			recv.SetReadDeadline(time.Now().Add(20 * time.Millisecond))
			bufs := [][]byte{make([]byte, 2048)}
			n, err := r.Recv(bufs, make([]int, 1), make([]net.Addr, 1))
			if n != 0 || err == nil {
				t.Fatalf("Recv = %d, %v; want 0 and a timeout error", n, err)
			}
			ne, ok := err.(net.Error)
			if !ok || !ne.Timeout() {
				t.Fatalf("error %v (%T) is not a net.Error timeout", err, err)
			}
		})
	}
}

// TestSendEmptyAndChunking covers the edges: empty batches are free,
// and batches beyond MaxBatch land complete and in order.
func TestSendEmptyAndChunking(t *testing.T) {
	send, recv := udpPair(t)
	s := NewSender(send)
	if n, err := s.Send(nil); n != 0 || err != nil {
		t.Fatalf("empty Send = %d, %v", n, err)
	}

	batch := testBatch(150, recv.LocalAddr()) // > 2*MaxBatch on linux
	done := collectFrom(recv, len(batch))
	n, err := s.Send(batch)
	if err != nil || n != len(batch) {
		t.Fatalf("Send = %d, %v; want %d, nil", n, err, len(batch))
	}
	got := <-done
	if len(got) != len(batch) {
		t.Fatalf("received %d of %d datagrams", len(got), len(batch))
	}
	for i, want := range batch {
		if !bytes.Equal(got[i], want.Buf) {
			t.Fatalf("datagram %d: bytes differ", i)
		}
	}
}

// BenchmarkSend measures raw syscall amortization for the two paths.
func BenchmarkSend(b *testing.B) {
	loop := &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)}
	send, err := net.ListenUDP("udp", loop)
	if err != nil {
		b.Fatal(err)
	}
	defer send.Close()
	recv, err := net.ListenUDP("udp", loop)
	if err != nil {
		b.Fatal(err)
	}
	defer recv.Close()
	go func() { // drain so the receive buffer never pushes back
		buf := make([]byte, 2048)
		for {
			if _, _, err := recv.ReadFrom(buf); err != nil {
				return
			}
		}
	}()

	for _, mode := range []string{"fast", "fallback"} {
		b.Run(mode, func(b *testing.B) {
			var s *Sender
			if mode == "fast" {
				s = NewSender(send)
			} else {
				s = NewSender(plainPC{send})
			}
			batch := testBatch(64, recv.LocalAddr())
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Send(batch); err != nil {
					b.Fatal(err)
				}
			}
			st := s.Stats()
			if st.Syscalls > 0 {
				b.ReportMetric(float64(st.Datagrams)/float64(st.Syscalls), "datagrams/syscall")
			}
		})
	}
}
