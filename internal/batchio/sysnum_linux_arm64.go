//go:build linux && arm64

package batchio

// asm-generic syscall numbers: the stdlib syscall package's frozen
// linux/arm64 table carries neither, so both are spelled out here.
const (
	sysSENDMMSG = 269
	sysRECVMMSG = 243
)
