// Package pipeline is GBooster's session simulator: it runs a workload
// on a user device for a simulated gameplay session (the paper uses 15
// minutes) either locally or offloaded, and produces the §VII metrics —
// median FPS, FPS stability, average response time (Eq. 5), and the
// component energy account.
//
// The offloaded frame path is modeled as the stage pipeline the paper
// builds (§IV): intercept → serialize+cache+LZ4 → uplink radio → remote
// render → turbo encode → downlink radio → decode → display, with the
// §VI extensions (non-blocking SwapBuffer buffering up to B requests,
// Eq. 4 dispatch over multiple service devices, reorder by sequence
// number). Steady-state FPS is the reciprocal of the slowest pipeline
// stage; response time is the end-to-end latency through all stages
// plus any queueing the interface switch could not hide.
package pipeline

import (
	"errors"
	"fmt"
	"time"

	"github.com/gbooster/gbooster/internal/device"
	"github.com/gbooster/gbooster/internal/dispatch"
	"github.com/gbooster/gbooster/internal/energy"
	"github.com/gbooster/gbooster/internal/ifswitch"
	"github.com/gbooster/gbooster/internal/metrics"
	"github.com/gbooster/gbooster/internal/netsim"
	"github.com/gbooster/gbooster/internal/predict"
	"github.com/gbooster/gbooster/internal/sim"
	"github.com/gbooster/gbooster/internal/thermal"
	"github.com/gbooster/gbooster/internal/workload"
)

// Errors.
var ErrBadConfig = errors.New("pipeline: invalid config")

// Cost-model constants, calibrated against the paper's anchors. Each
// constant notes what pins it.
const (
	// GPUResidualPowerW is the user GPU's draw while offloading (it
	// still composites the decoded frames).
	GPUResidualPowerW = 0.08
	// SerializeMsPerKB is the CPU cost of serializing + cache-filtering
	// + LZ4-compressing one KB of command stream on the Nexus 5
	// (~40 MB/s, matching the §V-A "barely incurs extra CPU" claim).
	SerializeMsPerKB = 0.025
	// ClientDecodeMPps is the turbo decode rate on the phone CPU
	// (decode is far cheaper than encode; §VII-G's modest CPU overhead
	// pins it).
	ClientDecodeMPps = 30.0
	// TurboCompressedBytesPerPixel is the downlink volume per changed
	// pixel (the paper's ~25:1 on 4-byte RGBA gives 0.16 B/px).
	TurboCompressedBytesPerPixel = 0.16
	// InFlightRequests is B, the §VI-A internal buffer depth observed
	// by the paper ("the internal buffer possesses at most 3 requests").
	InFlightRequests = 3
	// WrapperMemoryMB is the measured §VII-G footprint of the wrapper
	// layer (caches + codec state).
	WrapperMemoryMB = 47.8
	// BaselineCPUUtil is the CPU share of the application's non-render
	// threads (physics, audio, engine bookkeeping) — the floor under
	// the §VII-G CPU-usage numbers (local 68%, offloaded 79%).
	BaselineCPUUtil = 0.5
	// RenderLoopCPUShare scales the render-loop's single-threaded work
	// into whole-device utilization.
	RenderLoopCPUShare = 0.45
)

// reportedCPUUtil converts render-loop utilization into the whole-app
// CPU usage a profiler would report (§VII-G).
func reportedCPUUtil(loopUtil float64) float64 {
	return clamp01(BaselineCPUUtil + RenderLoopCPUShare*loopUtil)
}

// referenceCPUGHz is the Nexus 5 effective capability all per-frame CPU
// costs are expressed against.
var _referenceCPU = device.Nexus5().CPU

// Mode selects local or offloaded execution.
type Mode int

// Modes.
const (
	ModeLocal Mode = iota + 1
	ModeOffload
)

// Config parameterizes one session run.
type Config struct {
	Profile workload.Profile
	User    device.UserDevice
	// Services are the offload destinations (ignored for local runs).
	Services []device.ServiceDevice
	// Duration is the session length (default 15 minutes, the paper's
	// protocol).
	Duration time.Duration
	// Seed drives all randomness.
	Seed uint64
	// Switching selects the radio policy (default predictive).
	Switching ifswitch.Policy
	// InFlight overrides the request buffer depth B (default 3); 1
	// models the unmodified blocking SwapBuffer (§VI-A ablation).
	InFlight int
	// Debug prints per-second stage breakdowns (development aid).
	Debug bool
}

func (c Config) withDefaults() Config {
	if c.Duration <= 0 {
		c.Duration = 15 * time.Minute
	}
	if c.Switching == 0 {
		c.Switching = ifswitch.PolicyPredictive
	}
	if c.InFlight <= 0 {
		c.InFlight = InFlightRequests
	}
	return c
}

// Result is one session's outcome.
type Result struct {
	Mode        Mode
	MedianFPS   float64
	Stability   float64
	AvgResponse time.Duration
	Energy      *energy.Account
	// AvgCPUUtil is mean CPU utilization (for the §VII-G overhead
	// comparison); Overloads counts windows where demand outran the
	// usable radio.
	AvgCPUUtil float64
	Overloads  int
	// WiFiOnFraction is the share of the session with WiFi powered.
	WiFiOnFraction float64
}

// RunLocal simulates the session executing entirely on the phone.
func RunLocal(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Profile.FrameWorkloadGP <= 0 {
		return Result{}, fmt.Errorf("%w: zero workload", ErrBadConfig)
	}
	rng := sim.NewRNG(cfg.Seed)
	gov, err := thermal.NewGovernor(cfg.User.GPU.Thermal)
	if err != nil {
		return Result{}, fmt.Errorf("governor: %w", err)
	}
	acct := energy.NewAccount()
	var fpsCol metrics.FPSCollector
	var respCol metrics.FPSCollector // per-second response samples (ms); median reported

	cpuScale := cfg.User.CPU.EffectiveGHz() / _referenceCPU.EffectiveGHz()
	effFill := cfg.User.GPU.FillrateGPps * workload.GPUEfficiency
	noise := newAR1(rng.Fork(), 0.8, cfg.Profile.WorkloadCV)

	seconds := int(cfg.Duration.Seconds())
	var cpuUtilSum float64
	for s := 0; s < seconds; s++ {
		mult := 1 + noise.next()
		if mult < 0.5 {
			mult = 0.5
		}
		gpuMsPerFrame := cfg.Profile.FrameWorkloadGP * mult / (effFill * gov.Scale()) * 1000
		cpuMsPerFrame := (cfg.Profile.LogicCPUMs + cfg.Profile.DriverCPUMs) / cpuScale
		period := maxf(gpuMsPerFrame, cpuMsPerFrame, 1000/cfg.Profile.FPSCap)
		fps := 1000 / period
		fpsCol.Add(fps)
		respCol.Add(period) // Eq. 5 locally: t_r = 1000/FPS

		gpuUtil := clamp01(gpuMsPerFrame / period)
		cpuUtil := clamp01(cpuMsPerFrame / period)
		cpuUtilSum += cpuUtil
		gov.Step(time.Second, gpuUtil)
		acct.AddPower(energy.ComponentGPU, gov.PowerW(gpuUtil), time.Second)
		acct.AddPower(energy.ComponentCPU,
			energy.CPUPower(cfg.User.CPUIdlePowerW, cfg.User.CPUActivePowerW, cpuUtil), time.Second)
		acct.AddPower(energy.ComponentDisplay, cfg.User.DisplayPowerW, time.Second)
	}
	return Result{
		Mode:        ModeLocal,
		MedianFPS:   fpsCol.Median(),
		Stability:   fpsCol.Stability(),
		AvgResponse: time.Duration(respCol.Median() * float64(time.Millisecond)),
		Energy:      acct,
		AvgCPUUtil:  reportedCPUUtil(cpuUtilSum / float64(seconds)),
	}, nil
}

// stageTimes holds the per-frame stage latencies (milliseconds) for one
// second of the offloaded pipeline.
type stageTimes struct {
	serializeMs float64 // client CPU: intercept+cache+LZ4
	uplinkMs    float64 // radio serialization + half RTT
	remoteMs    float64 // render + encode on the assigned device
	downlinkMs  float64 // radio serialization + half RTT
	decodeMs    float64 // client CPU: turbo decode + display hand-off
	logicMs     float64 // client CPU: game logic (pipelined with the rest)
}

// latencyMs is the end-to-end response latency (Eq. 5's 1000/FPS + t_p
// decomposition resolves to the full path latency here).
func (st stageTimes) latencyMs() float64 {
	return st.serializeMs + st.uplinkMs + st.remoteMs + st.downlinkMs + st.decodeMs
}

// clientMs is the client CPU stage (all client work shares the phone
// CPU, so the pieces serialize with each other).
func (st stageTimes) clientMs() float64 {
	return st.logicMs + st.serializeMs + st.decodeMs
}

// RunOffload simulates the session with GPU tasks offloaded to the
// configured service devices.
func RunOffload(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Services) == 0 {
		return Result{}, fmt.Errorf("%w: no service devices", ErrBadConfig)
	}
	if cfg.Profile.FrameWorkloadGP <= 0 {
		return Result{}, fmt.Errorf("%w: zero workload", ErrBadConfig)
	}
	rng := sim.NewRNG(cfg.Seed)
	clock := &sim.Clock{}
	acct := energy.NewAccount()

	// Predictive control plane on the virtual clock — the same
	// Controller the live Player runs on the wall clock. With switching
	// enabled the WiFi interface runs 802.11 power-save mode and dozes
	// between transfers; without the optimization it sits in
	// constantly-awake mode — the §V-B energy gap of Fig. 6(b) comes
	// largely from this idle-power difference plus the sleep periods.
	// The per-window CPU/display/GPU wattages stay zero: this simulator
	// keeps its own whole-device accounting below and shares its account
	// so the controller adds only the radio/switch energy.
	wifiSpec := cfg.User.WiFi
	if cfg.Switching == ifswitch.PolicyAlwaysWiFi {
		wifiSpec.PowerIdle = 0.8 // CAM
	} else {
		wifiSpec.PowerIdle = 0.15 // PSM dozing between frames
	}
	swCfg := ifswitch.DefaultConfig()
	swCfg.Policy = cfg.Switching
	ctl, err := predict.New(predict.Config{
		Clock:     clock,
		Switch:    swCfg,
		WiFi:      wifiSpec,
		Bluetooth: cfg.User.Bluetooth,
		Account:   acct,
		TargetFPS: cfg.Profile.FPSCap,
	})
	if err != nil {
		return Result{}, fmt.Errorf("predict: %w", err)
	}
	wifi, bt := ctl.Radios()

	// Dispatch scheduler with Eq. 4 parameters. Workload unit:
	// gigapixel-fragments.
	pixels := float64(workload.StreamW * workload.StreamH)
	changedMP := cfg.Profile.ChangedTileFraction * pixels / 1e6
	devices := make([]*dispatch.Device, 0, len(cfg.Services))
	remoteMsOf := make(map[string]float64, len(cfg.Services))
	for i, s := range cfg.Services {
		renderMs := cfg.Profile.FrameWorkloadGP / (s.GPU.FillrateGPps * workload.GPUEfficiency) * 1000
		encodeMs := changedMP / s.EncoderMPps * 1000
		svcMs := renderMs + encodeMs
		id := fmt.Sprintf("%s#%d", s.Name, i)
		remoteMsOf[id] = svcMs
		d, err := dispatch.NewDevice(id, cfg.Profile.FrameWorkloadGP/(svcMs/1000), s.RTT)
		if err != nil {
			return Result{}, fmt.Errorf("device %s: %w", id, err)
		}
		devices = append(devices, d)
	}
	sched, err := dispatch.NewScheduler(devices...)
	if err != nil {
		return Result{}, fmt.Errorf("scheduler: %w", err)
	}

	var fpsCol metrics.FPSCollector
	var respCol metrics.FPSCollector // per-second response samples (ms)

	cpuScale := cfg.User.CPU.EffectiveGHz() / _referenceCPU.EffectiveGHz()
	noise := newAR1(rng.Fork(), 0.8, cfg.Profile.WorkloadCV)
	burst := newBurstProcess(rng.Fork(), cfg.Profile)

	// Compressed downlink volume: changed pixels × bytes-per-pixel
	// after turbo compression (0.16 B/px = the paper's ~25:1 on RGBA).
	downBytesPerFrame := changedMP * 1e6 * TurboCompressedBytesPerPixel
	upBytesPerFrame := cfg.Profile.UplinkKBPerFrame * 1024

	seconds := int(cfg.Duration.Seconds())
	var cpuUtilSum, wifiOnSum float64
	overloads := 0
	reorder := dispatch.NewReorder[uint64](0, 64)
	var seq uint64

	for s := 0; s < seconds; s++ {
		mult := 1 + noise.next()
		if mult < 0.5 {
			mult = 0.5
		}
		// The B-deep request buffer absorbs per-frame service-time
		// transients, so the offloaded pipeline sees damped workload
		// noise — the mechanism behind the paper's higher FPS
		// stability under offloading (§VII-B).
		mult = 1 + 0.7*(mult-1)
		inBurst, touches := burst.second()
		trafficMult := 1.0
		if inBurst {
			trafficMult = cfg.Profile.BurstSceneFactor
		}

		var st stageTimes
		st.logicMs = cfg.Profile.LogicCPUMs / cpuScale
		upBytes := upBytesPerFrame * trafficMult * mult
		downBytes := downBytesPerFrame * trafficMult * mult
		st.serializeMs = upBytes / 1024 * SerializeMsPerKB / cpuScale
		st.decodeMs = changedMP * trafficMult / ClientDecodeMPps * 1000 / cpuScale

		// Assign this second's representative request via Eq. 4 and use
		// the chosen device pool: with B in flight, up to B distinct
		// devices serve concurrently, so the remote stage rate is the
		// sum over the B best devices.
		dev, _, err := sched.Assign(cfg.Profile.FrameWorkloadGP * mult)
		if err != nil {
			return Result{}, fmt.Errorf("assign: %w", err)
		}
		sched.Complete(dev, cfg.Profile.FrameWorkloadGP*mult)
		st.remoteMs = remoteMsOf[dev.ID] * mult

		remoteRate := remoteStageRate(remoteMsOf, mult, cfg.InFlight)

		// Pre-compute a provisional FPS to size this second's traffic.
		provFPS := minf(cfg.Profile.FPSCap, 1000/st.clientMs(), remoteRate)

		// Drive the control plane at its native 100 ms window: each Step
		// observes demand, forecasts the horizon, pre-wakes or sleeps the
		// radio, routes and transmits the window's traffic (queueing the
		// overflow of overloaded windows as backlog), and integrates
		// radio energy.
		var overloadDelayMs float64
		demandMbps := provFPS * (upBytes + downBytes) * 8 / 1e6
		for w := 0; w < 10; w++ {
			exo := []float64{float64(touches), float64(cfg.Profile.TexturesPerFrame) * trafficMult}
			out := ctl.Step(demandMbps, exo)
			if out.Overloaded {
				overloads++
				overloadDelayMs += float64(out.QueueDelay.Milliseconds()) / 10
			}
			// The meter sees the window's offered load (the switch's
			// observed-traffic signal); the controller's Step already
			// performed the radio transmit.
			ctl.AddBytes(int(demandMbps * 1e6 / 8 / 10))
			clock.Advance(100 * time.Millisecond)
		}

		// Radio stage: the WiFi medium is half duplex — uplink and
		// downlink share airtime.
		radio := activeRadioRate(ctl.Switch(), wifi, bt)
		rtt := cfg.Services[0].RTT
		radioMsPerFrame := (upBytes + downBytes) * 8 / radio * 1000
		st.uplinkMs = upBytes*8/radio*1000 + float64(rtt.Milliseconds())/2
		st.downlinkMs = downBytes*8/radio*1000 + float64(rtt.Milliseconds())/2

		fps := minf(
			cfg.Profile.FPSCap,
			1000/st.clientMs(),
			remoteRate,
			1000/radioMsPerFrame,
			float64(cfg.InFlight)*1000/st.latencyMs(),
		)
		// Overload queueing (a realized forecast miss) stalls frames.
		if overloadDelayMs > 0 {
			fps = minf(fps, 1000/(1000/fps+overloadDelayMs))
		}
		if cfg.Debug {
			fmt.Printf("s=%d fps=%.1f client=%.1f remoteRate=%.1f radioMs=%.1f lat=%.1f ovl=%.1f mult=%.2f burst=%v\n",
				s, fps, st.clientMs(), remoteRate, radioMsPerFrame, st.latencyMs(), overloadDelayMs, mult, inBurst)
		}
		fpsCol.Add(fps)

		// Eq. 5: t_r = 1000/FPS + t_p, where t_p covers the offloading
		// intermediate steps outside the rendering pipeline's own period
		// (serialization, both radio legs, decode, queueing).
		tp := st.serializeMs + st.uplinkMs + st.downlinkMs + st.decodeMs + overloadDelayMs
		respCol.Add(1000/fps + tp)

		// Reorder-buffer sanity: results arrive possibly out of order
		// across devices but are displayed in sequence.
		released, err := reorder.Push(seq, seq)
		if err != nil || len(released) == 0 {
			return Result{}, fmt.Errorf("reorder: %v released, err=%v", len(released), err)
		}
		seq++

		// Energy.
		cpuUtil := clamp01(st.clientMs() * fps / 1000)
		cpuUtilSum += cpuUtil
		acct.AddPower(energy.ComponentGPU, GPUResidualPowerW, time.Second)
		acct.AddPower(energy.ComponentCPU,
			energy.CPUPower(cfg.User.CPUIdlePowerW, cfg.User.CPUActivePowerW, cpuUtil), time.Second)
		acct.AddPower(energy.ComponentDisplay, cfg.User.DisplayPowerW, time.Second)
		if wifiOn, _ := ctl.Switch().ActiveRadios(); wifiOn {
			wifiOnSum++
		}
	}
	// Settle the radios' integrated energy into the shared account.
	ctl.Finish()

	return Result{
		Mode:           ModeOffload,
		MedianFPS:      fpsCol.Median(),
		Stability:      fpsCol.Stability(),
		AvgResponse:    time.Duration(respCol.Median() * float64(time.Millisecond)),
		Energy:         acct,
		AvgCPUUtil:     reportedCPUUtil(cpuUtilSum / float64(seconds)),
		Overloads:      overloads,
		WiFiOnFraction: wifiOnSum / float64(seconds),
	}, nil
}

// remoteStageRate computes the aggregate remote service rate in frames
// per second: the B fastest devices serve in parallel (only B requests
// are ever in flight).
func remoteStageRate(remoteMsOf map[string]float64, mult float64, inFlight int) float64 {
	times := make([]float64, 0, len(remoteMsOf))
	for _, ms := range remoteMsOf {
		times = append(times, ms*mult)
	}
	sortFloats(times)
	var rate float64
	for i := 0; i < len(times) && i < inFlight; i++ {
		rate += 1000 / times[i]
	}
	return rate
}

// activeRadioRate returns the effective bits/second of the radio that
// carries traffic right now.
func activeRadioRate(ctl *ifswitch.Controller, wifi, bt *netsim.Radio) float64 {
	if wifiOn, _ := ctl.ActiveRadios(); wifiOn && wifi.Ready() {
		return wifi.Spec.BitsPerSecond
	}
	return bt.Spec.BitsPerSecond
}

// ar1 is a mean-zero AR(1) noise process for temporally correlated
// workload variation.
type ar1 struct {
	rng   *sim.RNG
	phi   float64
	sigma float64
	state float64
}

func newAR1(rng *sim.RNG, phi, cv float64) *ar1 {
	return &ar1{rng: rng, phi: phi, sigma: cv}
}

func (a *ar1) next() float64 {
	innov := a.rng.Norm(0, a.sigma*0.6)
	a.state = a.phi*a.state + innov
	return a.state
}

// burstProcess generates per-second touch counts and burst flags from a
// profile's input dynamics.
type burstProcess struct {
	rng     *sim.RNG
	profile workload.Profile
	left    int
}

func newBurstProcess(rng *sim.RNG, p workload.Profile) *burstProcess {
	return &burstProcess{rng: rng, profile: p}
}

// second advances one second and reports whether a burst is active and
// how many touch events occurred.
func (b *burstProcess) second() (inBurst bool, touches int) {
	if b.left == 0 && b.rng.Bool(clamp01(b.profile.BurstRatePerSec)) {
		b.left = 2 + b.rng.Intn(3) // bursts last a few seconds
	}
	inBurst = b.left > 0
	if inBurst {
		b.left--
	}
	rate := b.profile.TouchRatePerSec
	if inBurst {
		rate *= 3
	}
	// Poisson-ish count.
	touches = int(rate)
	if b.rng.Bool(rate - float64(int(rate))) {
		touches++
	}
	return inBurst, touches
}

func clamp01(v float64) float64 {
	switch {
	case v < 0:
		return 0
	case v > 1:
		return 1
	default:
		return v
	}
}

func maxf(vals ...float64) float64 {
	m := vals[0]
	for _, v := range vals[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

func minf(vals ...float64) float64 {
	m := vals[0]
	for _, v := range vals[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

func sortFloats(v []float64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}
