package pipeline

import (
	"math"
	"testing"

	"github.com/gbooster/gbooster/internal/sim"
	"github.com/gbooster/gbooster/internal/workload"
)

func TestAR1NoiseMomentsAndCorrelation(t *testing.T) {
	n := newAR1(sim.NewRNG(5), 0.8, 0.2)
	const samples = 200000
	var sum, sumSq, lagSum float64
	prev := 0.0
	vals := make([]float64, samples)
	for i := 0; i < samples; i++ {
		v := n.next()
		vals[i] = v
		sum += v
		sumSq += v * v
		if i > 0 {
			lagSum += v * prev
		}
		prev = v
	}
	mean := sum / samples
	variance := sumSq/samples - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Fatalf("AR1 mean = %v, want ~0", mean)
	}
	// Lag-1 autocorrelation should be near phi.
	autocorr := (lagSum/samples - mean*mean) / variance
	if math.Abs(autocorr-0.8) > 0.05 {
		t.Fatalf("AR1 lag-1 autocorrelation = %v, want ~0.8", autocorr)
	}
	// Stationary sd should track the configured CV scale.
	sd := math.Sqrt(variance)
	if sd < 0.1 || sd > 0.35 {
		t.Fatalf("AR1 sd = %v for cv 0.2", sd)
	}
}

func TestBurstProcessRatesAndDurations(t *testing.T) {
	prof, err := workload.ByID("G1")
	if err != nil {
		t.Fatal(err)
	}
	b := newBurstProcess(sim.NewRNG(9), prof)
	const seconds = 20000
	burstSeconds, touches := 0, 0
	for s := 0; s < seconds; s++ {
		in, tc := b.second()
		if in {
			burstSeconds++
		}
		touches += tc
	}
	// Burst rate 0.06/s with 2-4 s duration -> ~15-20% of seconds.
	frac := float64(burstSeconds) / seconds
	if frac < 0.08 || frac > 0.35 {
		t.Fatalf("burst fraction = %.2f", frac)
	}
	// Touch rate ~4/s baseline, 12/s in bursts.
	perSec := float64(touches) / seconds
	if perSec < 3 || perSec > 8 {
		t.Fatalf("touch rate = %.1f/s", perSec)
	}
}

func TestStageTimesAccounting(t *testing.T) {
	st := stageTimes{
		serializeMs: 1, uplinkMs: 2, remoteMs: 20,
		downlinkMs: 4, decodeMs: 5, logicMs: 10,
	}
	if got := st.latencyMs(); got != 32 {
		t.Fatalf("latency = %v, want 32 (logic excluded)", got)
	}
	if got := st.clientMs(); got != 16 {
		t.Fatalf("client = %v, want 16 (logic+serialize+decode)", got)
	}
}

func TestRemoteStageRateRespectsInFlight(t *testing.T) {
	times := map[string]float64{"a": 10, "b": 20, "c": 40}
	// B=1: only the fastest device serves.
	if got := remoteStageRate(times, 1, 1); math.Abs(got-100) > 1e-9 {
		t.Fatalf("B=1 rate = %v", got)
	}
	// B=2: two fastest.
	if got := remoteStageRate(times, 1, 2); math.Abs(got-150) > 1e-9 {
		t.Fatalf("B=2 rate = %v", got)
	}
	// B beyond device count: everything serves.
	if got := remoteStageRate(times, 1, 5); math.Abs(got-175) > 1e-9 {
		t.Fatalf("B=5 rate = %v", got)
	}
	// Workload multiplier slows every device.
	if got := remoteStageRate(times, 2, 5); math.Abs(got-87.5) > 1e-9 {
		t.Fatalf("mult=2 rate = %v", got)
	}
}

func TestReportedCPUUtil(t *testing.T) {
	if got := reportedCPUUtil(0); got != BaselineCPUUtil {
		t.Fatalf("zero loop util = %v", got)
	}
	if got := reportedCPUUtil(1); math.Abs(got-(BaselineCPUUtil+RenderLoopCPUShare)) > 1e-9 {
		t.Fatalf("full loop util = %v", got)
	}
	if got := reportedCPUUtil(10); got > 1 {
		t.Fatalf("reported util %v exceeds 1", got)
	}
}

func TestMinMaxHelpers(t *testing.T) {
	if maxf(1, 5, 3) != 5 || minf(4, 2, 9) != 2 {
		t.Fatal("minf/maxf wrong")
	}
	v := []float64{3, 1, 2}
	sortFloats(v)
	if v[0] != 1 || v[1] != 2 || v[2] != 3 {
		t.Fatalf("sortFloats = %v", v)
	}
}
