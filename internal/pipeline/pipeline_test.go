package pipeline

import (
	"errors"
	"testing"
	"time"

	"github.com/gbooster/gbooster/internal/device"
	"github.com/gbooster/gbooster/internal/ifswitch"
	"github.com/gbooster/gbooster/internal/workload"
)

func profile(t *testing.T, id string) workload.Profile {
	t.Helper()
	p, err := workload.ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func runPair(t *testing.T, id string, user device.UserDevice, dur time.Duration) (local, off Result) {
	t.Helper()
	cfg := Config{Profile: profile(t, id), User: user, Duration: dur, Seed: 1}
	local, err := RunLocal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Services = []device.ServiceDevice{device.NvidiaShield()}
	off, err = RunOffload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return local, off
}

func TestConfigValidation(t *testing.T) {
	if _, err := RunLocal(Config{User: device.Nexus5()}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("zero-workload local error = %v", err)
	}
	if _, err := RunOffload(Config{Profile: profile(t, "G1"), User: device.Nexus5()}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("no-services offload error = %v", err)
	}
	if _, err := RunOffload(Config{User: device.Nexus5(), Services: []device.ServiceDevice{device.NvidiaShield()}}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("zero-workload offload error = %v", err)
	}
}

func TestDeterministicResults(t *testing.T) {
	cfg := Config{
		Profile: profile(t, "G1"), User: device.Nexus5(),
		Services: []device.ServiceDevice{device.NvidiaShield()},
		Duration: 2 * time.Minute, Seed: 7,
	}
	a, err := RunOffload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunOffload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.MedianFPS != b.MedianFPS || a.Stability != b.Stability || a.AvgResponse != b.AvgResponse {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestFig5ActionGameAnchorsNexus5(t *testing.T) {
	// Paper Fig. 5(a): G1 23->37, G2 22->40 on the Nexus 5.
	for _, tt := range []struct {
		id                   string
		localLo, localHi     float64
		offloadLo, offloadHi float64
	}{
		{"G1", 21, 25, 35, 43},
		{"G2", 20, 24, 34, 42},
	} {
		local, off := runPair(t, tt.id, device.Nexus5(), 15*time.Minute)
		if local.MedianFPS < tt.localLo || local.MedianFPS > tt.localHi {
			t.Errorf("%s local FPS = %.1f, want [%v,%v]", tt.id, local.MedianFPS, tt.localLo, tt.localHi)
		}
		if off.MedianFPS < tt.offloadLo || off.MedianFPS > tt.offloadHi {
			t.Errorf("%s offload FPS = %.1f, want [%v,%v]", tt.id, off.MedianFPS, tt.offloadLo, tt.offloadHi)
		}
		// Big relative boost for action games (paper: +61-82%).
		boost := off.MedianFPS / local.MedianFPS
		if boost < 1.5 || boost > 2.0 {
			t.Errorf("%s boost = %.2fx, want 1.5-2.0x", tt.id, boost)
		}
		// Stability improves (paper: ~0.55-0.60 -> ~0.74-0.75).
		if off.Stability <= local.Stability {
			t.Errorf("%s stability %.2f -> %.2f did not improve", tt.id, local.Stability, off.Stability)
		}
	}
}

func TestFig5PuzzleGamesBarelyBenefit(t *testing.T) {
	// Paper: G5 improves only 50 -> 52.
	local, off := runPair(t, "G5", device.Nexus5(), 15*time.Minute)
	if local.MedianFPS < 48 || local.MedianFPS > 52 {
		t.Fatalf("G5 local FPS = %.1f, want ~50", local.MedianFPS)
	}
	gain := off.MedianFPS - local.MedianFPS
	if gain < 0 || gain > 6 {
		t.Fatalf("G5 FPS gain = %.1f, want small positive", gain)
	}
	// Puzzle response increases (paper: +4 ms): t_p is pure overhead.
	if off.AvgResponse <= local.AvgResponse {
		t.Fatalf("G5 response %v -> %v should increase", local.AvgResponse, off.AvgResponse)
	}
}

func TestFig5ResponseTimes(t *testing.T) {
	// Action-game responses drop or hold (paper: ~-10 ms) and stay
	// far below the 100 ms human-perception bound.
	local, off := runPair(t, "G1", device.Nexus5(), 15*time.Minute)
	if off.AvgResponse > local.AvgResponse {
		t.Fatalf("G1 response rose: %v -> %v", local.AvgResponse, off.AvgResponse)
	}
	if off.AvgResponse > 45*time.Millisecond {
		t.Fatalf("G1 offload response = %v, want < 45ms", off.AvgResponse)
	}
	// RPGs drop a little (paper: ~-2 ms).
	localRPG, offRPG := runPair(t, "G3", device.Nexus5(), 15*time.Minute)
	if offRPG.AvgResponse >= localRPG.AvgResponse {
		t.Fatalf("G3 response did not drop: %v -> %v", localRPG.AvgResponse, offRPG.AvgResponse)
	}
}

func TestFig5NewGenerationDeviceBarelyBenefits(t *testing.T) {
	// Paper Fig. 5(d): the LG G5 handles action games at ~40 FPS
	// locally (≈2x the Nexus 5), so offloading adds nothing and
	// response times rise.
	local, off := runPair(t, "G1", device.LGG5(), 15*time.Minute)
	if local.MedianFPS < 38 || local.MedianFPS > 47 {
		t.Fatalf("LG G5 local G1 FPS = %.1f, want ~40-43", local.MedianFPS)
	}
	if off.MedianFPS > local.MedianFPS+3 {
		t.Fatalf("LG G5 offload FPS %.1f should not meaningfully beat local %.1f",
			off.MedianFPS, local.MedianFPS)
	}
}

func TestFig6EnergyShape(t *testing.T) {
	// Short cooled sessions, matching the paper's §VII-C protocol
	// (phones cooled, repeatable scene, no thermal drift).
	run := func(id string, policy ifswitch.Policy) (localJ, offJ float64) {
		cfg := Config{Profile: profile(t, id), User: device.Nexus5(), Duration: 3 * time.Minute, Seed: 5}
		local, err := RunLocal(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Services = []device.ServiceDevice{device.NvidiaShield()}
		cfg.Switching = policy
		off, err := RunOffload(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return local.Energy.TotalJoules(), off.Energy.TotalJoules()
	}
	// Action games save the most (paper: up to 70%; ours lands 50-60%).
	lg, og := run("G2", ifswitch.PolicyPredictive)
	actionNorm := og / lg
	if actionNorm > 0.6 {
		t.Fatalf("G2 normalized energy = %.2f, want <= 0.6", actionNorm)
	}
	// Puzzle games save less (paper: ~30%).
	lp, op := run("G6", ifswitch.PolicyPredictive)
	puzzleNorm := op / lp
	if puzzleNorm < actionNorm {
		t.Fatalf("puzzle norm %.2f below action norm %.2f; ordering inverted", puzzleNorm, actionNorm)
	}
	if puzzleNorm > 0.85 {
		t.Fatalf("G6 normalized energy = %.2f, want some saving", puzzleNorm)
	}
	// Fig 6(b): disabling switching raises energy.
	_, offAlways := run("G1", ifswitch.PolicyAlwaysWiFi)
	_, offPred := run("G1", ifswitch.PolicyPredictive)
	if offAlways <= offPred {
		t.Fatalf("always-wifi energy %.0fJ <= predictive %.0fJ", offAlways, offPred)
	}
}

func TestTableIIIAppsNoBoostSmallSaving(t *testing.T) {
	for _, id := range []string{"A1", "A2", "A3"} {
		cfg := Config{Profile: profile(t, id), User: device.Nexus5(), Duration: 3 * time.Minute, Seed: 2}
		local, err := RunLocal(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Services = []device.ServiceDevice{device.NvidiaShield()}
		off, err := RunOffload(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if off.MedianFPS-local.MedianFPS > 0.5 {
			t.Errorf("%s FPS boost = %.1f, want 0", id, off.MedianFPS-local.MedianFPS)
		}
		norm := off.Energy.TotalJoules() / local.Energy.TotalJoules()
		if norm < 0.8 || norm > 1.0 {
			t.Errorf("%s normalized energy = %.2f, want ~0.9 (paper: 0.92-0.94)", id, norm)
		}
	}
}

func TestFig7MultiDeviceScaling(t *testing.T) {
	p := profile(t, "G1")
	fpsAt := func(n int) float64 {
		svcs := []device.ServiceDevice{device.NvidiaShield()}
		for i := 1; i < n; i++ {
			svcs = append(svcs, device.OptiplexGTX750())
		}
		cfg := Config{Profile: p, User: device.Nexus5(), Services: svcs, Duration: 5 * time.Minute, Seed: 3}
		off, err := RunOffload(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return off.MedianFPS
	}
	one, three, five := fpsAt(1), fpsAt(3), fpsAt(5)
	local, err := RunLocal(Config{Profile: p, User: device.Nexus5(), Duration: 5 * time.Minute, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Paper Fig. 7: 23 -> 40 -> 51, flat beyond 3.
	if one <= local.MedianFPS*1.4 {
		t.Fatalf("1 device FPS %.1f vs local %.1f: no boost", one, local.MedianFPS)
	}
	if three <= one*1.15 {
		t.Fatalf("3 devices FPS %.1f vs 1 device %.1f: no scaling", three, one)
	}
	if five > three*1.05 {
		t.Fatalf("5 devices FPS %.1f vs 3 devices %.1f: plateau missing", five, three)
	}
	if three < 47 || three > 56 {
		t.Fatalf("3-device FPS = %.1f, want ~51", three)
	}
}

func TestBlockingSwapBufferAblation(t *testing.T) {
	// §VI-A: without the non-blocking SwapBuffer rewrite only one
	// request is in flight, so multi-device parallelism cannot help.
	p := profile(t, "G1")
	svcs := []device.ServiceDevice{device.NvidiaShield(), device.OptiplexGTX750(), device.OptiplexGTX750()}
	base := Config{Profile: p, User: device.Nexus5(), Services: svcs, Duration: 3 * time.Minute, Seed: 4}
	nonBlocking, err := RunOffload(base)
	if err != nil {
		t.Fatal(err)
	}
	blockCfg := base
	blockCfg.InFlight = 1
	blocking, err := RunOffload(blockCfg)
	if err != nil {
		t.Fatal(err)
	}
	if blocking.MedianFPS >= nonBlocking.MedianFPS {
		t.Fatalf("blocking SwapBuffer FPS %.1f >= non-blocking %.1f",
			blocking.MedianFPS, nonBlocking.MedianFPS)
	}
}

func TestOverheadCPUWithinPaperRange(t *testing.T) {
	// §VII-G: G1 local CPU ~68%, offloaded ~79% — a modest increase
	// that leaves the CPU unsaturated.
	local, off := runPair(t, "G1", device.Nexus5(), 5*time.Minute)
	if off.AvgCPUUtil <= local.AvgCPUUtil {
		t.Fatalf("offload CPU %.2f <= local %.2f; wrapper work missing", off.AvgCPUUtil, local.AvgCPUUtil)
	}
	if off.AvgCPUUtil > 0.95 {
		t.Fatalf("offload CPU %.2f saturated; paper reports 79%%", off.AvgCPUUtil)
	}
	if off.AvgCPUUtil-local.AvgCPUUtil > 0.3 {
		t.Fatalf("CPU overhead %.2f too large (paper: ~0.11)", off.AvgCPUUtil-local.AvgCPUUtil)
	}
}

func TestLocalThermalThrottlingHurtsStability(t *testing.T) {
	// Long local sessions on a passively cooled phone throttle; the
	// same session offloaded does not (service devices have fans).
	local, off := runPair(t, "G1", device.Nexus5(), 15*time.Minute)
	if local.Stability >= 0.8 {
		t.Fatalf("local stability %.2f; throttling should disturb it", local.Stability)
	}
	if off.Stability-local.Stability < 0.1 {
		t.Fatalf("offload stability %.2f barely above local %.2f", off.Stability, local.Stability)
	}
}

func TestWiFiStaysOffForPuzzleGames(t *testing.T) {
	// Puzzle traffic fits Bluetooth; WiFi should be off nearly all
	// session (that is where the energy saving comes from).
	_, off := runPair(t, "G5", device.Nexus5(), 10*time.Minute)
	if off.WiFiOnFraction > 0.2 {
		t.Fatalf("G5 WiFi on fraction = %.2f, want near 0", off.WiFiOnFraction)
	}
	// Action traffic needs WiFi most of the time.
	_, offAction := runPair(t, "G1", device.Nexus5(), 10*time.Minute)
	if offAction.WiFiOnFraction < 0.7 {
		t.Fatalf("G1 WiFi on fraction = %.2f, want high", offAction.WiFiOnFraction)
	}
}
