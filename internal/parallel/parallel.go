// Package parallel provides the data plane's shared worker pool: a
// persistent set of goroutines, sized by runtime.NumCPU at first use,
// that fan contiguous index spans out across cores. The turbo codec
// parallelizes over tiles, the rasterizer over scanline bands, and the
// core pipeline stages submit from their own goroutines — all against
// this one pool, so total data-plane concurrency stays bounded by the
// machine rather than by the number of live codecs.
//
// Determinism contract: Do only decides WHERE a span executes, never
// what it computes. Callers keep output deterministic by writing each
// span's results into disjoint, index-addressed storage and joining in
// index order; every user in this repo follows that discipline and
// asserts byte-identical output against the serial path in its tests.
package parallel

import (
	"runtime"
	"sync"
)

var (
	startOnce sync.Once
	poolSize  int
	tasks     chan func()
)

// start spins the persistent workers up. They park on the task channel
// for the life of the process; the pool is never torn down, exactly
// like the runtime's own background workers.
func start() {
	poolSize = runtime.NumCPU()
	tasks = make(chan func(), 4*poolSize)
	for i := 0; i < poolSize; i++ {
		go func() {
			for fn := range tasks {
				fn()
			}
		}()
	}
}

// Workers returns the size of the shared pool (runtime.NumCPU at the
// time the pool first started).
func Workers() int {
	startOnce.Do(start)
	return poolSize
}

// Degree resolves a caller-facing parallelism knob: values <= 0 mean
// "use every core" (the pool size); anything else passes through.
func Degree(n int) int {
	if n <= 0 {
		return Workers()
	}
	return n
}

// Do partitions [0, n) into contiguous spans and runs fn over all of
// them, using up to roughly `degree` additional workers from the shared
// pool. degree <= 0 means the full pool; degree == 1 runs fn(0, n)
// inline with no goroutines at all (the serial reference path). The
// submitting goroutine always executes spans itself, so Do makes
// progress even when the pool is saturated by other submitters and can
// never deadlock on pool capacity. Do returns when every span has
// completed; a panic in any span is re-raised on the caller.
func Do(degree, n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	degree = Degree(degree)
	if degree == 1 || n == 1 {
		fn(0, n)
		return
	}
	startOnce.Do(start)

	// Oversubscribe spans 2x the degree: spans are statically sized, so
	// extra spans let fast workers absorb imbalance (e.g. rasterizer
	// bands where all triangles landed in one region).
	spans := 2 * degree
	if spans > n {
		spans = n
	}

	var (
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicked bool
		panicVal any
	)
	run := func(lo, hi int) {
		defer wg.Done()
		defer func() {
			if r := recover(); r != nil {
				panicMu.Lock()
				if !panicked {
					panicked, panicVal = true, r
				}
				panicMu.Unlock()
			}
		}()
		fn(lo, hi)
	}

	wg.Add(spans)
	q, r := n/spans, n%spans
	lo := 0
	for i := 0; i < spans; i++ {
		hi := lo + q
		if i < r {
			hi++
		}
		l, h := lo, hi
		if i == spans-1 {
			// The submitter always works the last span itself.
			run(l, h)
		} else {
			select {
			case tasks <- func() { run(l, h) }:
			default:
				// Pool backlogged: run inline rather than block.
				run(l, h)
			}
		}
		lo = hi
	}
	wg.Wait()
	if panicked {
		panic(panicVal)
	}
}
