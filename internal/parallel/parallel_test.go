package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestDoCoversEveryIndexExactlyOnce(t *testing.T) {
	for _, degree := range []int{0, 1, 2, 3, runtime.NumCPU(), 64} {
		for _, n := range []int{0, 1, 2, 7, 100, 1023} {
			hits := make([]int32, n)
			Do(degree, n, func(lo, hi int) {
				if lo < 0 || hi > n || lo > hi {
					t.Errorf("degree %d n %d: bad span [%d,%d)", degree, n, lo, hi)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("degree %d n %d: index %d hit %d times", degree, n, i, h)
				}
			}
		}
	}
}

func TestDoSerialDegreeRunsInline(t *testing.T) {
	calls := 0
	Do(1, 50, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 50 {
			t.Fatalf("serial span [%d,%d), want [0,50)", lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("serial degree made %d calls", calls)
	}
}

func TestDoPropagatesPanic(t *testing.T) {
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
	}()
	Do(4, 100, func(lo, hi int) {
		if lo == 0 {
			panic("boom")
		}
	})
}

func TestDoNestedSubmittersMakeProgress(t *testing.T) {
	// Saturate the pool with concurrent submitters; every Do must still
	// complete because submitters execute spans themselves.
	done := make(chan struct{})
	for g := 0; g < 4*runtime.NumCPU(); g++ {
		go func() {
			var sum int64
			Do(0, 1000, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt64(&sum, int64(i))
				}
			})
			if sum != 1000*999/2 {
				t.Errorf("sum = %d", sum)
			}
			done <- struct{}{}
		}()
	}
	for g := 0; g < 4*runtime.NumCPU(); g++ {
		<-done
	}
}

func TestDegree(t *testing.T) {
	if Degree(0) != Workers() || Degree(-3) != Workers() {
		t.Fatal("non-positive degree should resolve to the pool size")
	}
	if Degree(3) != 3 {
		t.Fatal("positive degree should pass through")
	}
	if Workers() != runtime.NumCPU() {
		t.Fatalf("pool size %d, NumCPU %d", Workers(), runtime.NumCPU())
	}
}
