package gles

// This file provides typed constructors for every supported command.
// Workload generators and tests build streams through these instead of
// hand-assembling Command structs, which keeps argument layouts in one
// place (they must match Context.apply and the wire codec).

// CmdClearColor sets the clear color.
func CmdClearColor(r, g, b, a float32) Command {
	return Command{Op: OpClearColor, Floats: []float32{r, g, b, a}}
}

// CmdClear clears the buffers selected by mask.
func CmdClear(mask int32) Command {
	return Command{Op: OpClear, Ints: []int32{mask}}
}

// CmdViewport sets the viewport rectangle.
func CmdViewport(x, y, w, h int32) Command {
	return Command{Op: OpViewport, Ints: []int32{x, y, w, h}}
}

// CmdEnable enables a capability.
func CmdEnable(cap int32) Command { return Command{Op: OpEnable, Ints: []int32{cap}} }

// CmdDisable disables a capability.
func CmdDisable(cap int32) Command { return Command{Op: OpDisable, Ints: []int32{cap}} }

// CmdBlendFunc sets the blend factors.
func CmdBlendFunc(src, dst int32) Command {
	return Command{Op: OpBlendFunc, Ints: []int32{src, dst}}
}

// CmdDepthFunc sets the depth comparison.
func CmdDepthFunc(fn int32) Command { return Command{Op: OpDepthFunc, Ints: []int32{fn}} }

// CmdGenTexture creates texture object id.
func CmdGenTexture(id int32) Command { return Command{Op: OpGenTexture, Ints: []int32{id}} }

// CmdDeleteTexture deletes texture object id.
func CmdDeleteTexture(id int32) Command { return Command{Op: OpDeleteTexture, Ints: []int32{id}} }

// CmdActiveTexture selects the active texture unit (TextureUnit0 + n).
func CmdActiveTexture(unit int32) Command {
	return Command{Op: OpActiveTexture, Ints: []int32{unit}}
}

// CmdBindTexture binds a texture to the active unit.
func CmdBindTexture(target, id int32) Command {
	return Command{Op: OpBindTexture, Ints: []int32{target, id}}
}

// CmdTexImage2D uploads RGBA texel data for the bound texture.
func CmdTexImage2D(target, level, w, h int32, pixels []byte) Command {
	return Command{
		Op:      OpTexImage2D,
		Ints:    []int32{target, level, w, h, TexFormatRGBA},
		Data:    pixels,
		DataLen: int32(len(pixels)),
	}
}

// CmdTexParameteri sets a texture parameter.
func CmdTexParameteri(target, pname, val int32) Command {
	return Command{Op: OpTexParameteri, Ints: []int32{target, pname, val}}
}

// CmdGenBuffer creates buffer object id.
func CmdGenBuffer(id int32) Command { return Command{Op: OpGenBuffer, Ints: []int32{id}} }

// CmdDeleteBuffer deletes buffer object id.
func CmdDeleteBuffer(id int32) Command { return Command{Op: OpDeleteBuffer, Ints: []int32{id}} }

// CmdBindBuffer binds a buffer to a target.
func CmdBindBuffer(target, id int32) Command {
	return Command{Op: OpBindBuffer, Ints: []int32{target, id}}
}

// CmdBufferData uploads data into the buffer bound to target.
func CmdBufferData(target int32, data []byte, usage int32) Command {
	return Command{
		Op:      OpBufferData,
		Ints:    []int32{target, usage},
		Data:    data,
		DataLen: int32(len(data)),
	}
}

// CmdBufferSubData updates a range of the buffer bound to target.
func CmdBufferSubData(target, offset int32, data []byte) Command {
	return Command{
		Op:      OpBufferSubData,
		Ints:    []int32{target, offset},
		Data:    data,
		DataLen: int32(len(data)),
	}
}

// CmdCreateShader creates a shader object of the given type.
func CmdCreateShader(shaderType, id int32) Command {
	return Command{Op: OpCreateShader, Ints: []int32{shaderType, id}}
}

// CmdShaderSource attaches GLSL source text to a shader.
func CmdShaderSource(id int32, src string) Command {
	return Command{
		Op:      OpShaderSource,
		Ints:    []int32{id},
		Data:    []byte(src),
		DataLen: int32(len(src)),
	}
}

// CmdCompileShader compiles a shader.
func CmdCompileShader(id int32) Command { return Command{Op: OpCompileShader, Ints: []int32{id}} }

// CmdDeleteShader deletes a shader object.
func CmdDeleteShader(id int32) Command { return Command{Op: OpDeleteShader, Ints: []int32{id}} }

// CmdCreateProgram creates a program object.
func CmdCreateProgram(id int32) Command { return Command{Op: OpCreateProgram, Ints: []int32{id}} }

// CmdAttachShader attaches a shader to a program.
func CmdAttachShader(prog, shader int32) Command {
	return Command{Op: OpAttachShader, Ints: []int32{prog, shader}}
}

// CmdLinkProgram links a program.
func CmdLinkProgram(id int32) Command { return Command{Op: OpLinkProgram, Ints: []int32{id}} }

// CmdUseProgram makes a program current.
func CmdUseProgram(id int32) Command { return Command{Op: OpUseProgram, Ints: []int32{id}} }

// CmdDeleteProgram deletes a program object.
func CmdDeleteProgram(id int32) Command { return Command{Op: OpDeleteProgram, Ints: []int32{id}} }

// CmdUniform1i sets an integer (sampler) uniform.
func CmdUniform1i(loc, v int32) Command {
	return Command{Op: OpUniform1i, Ints: []int32{loc, v}}
}

// CmdUniform1f sets a scalar uniform.
func CmdUniform1f(loc int32, v float32) Command {
	return Command{Op: OpUniform1f, Ints: []int32{loc}, Floats: []float32{v}}
}

// CmdUniform2f sets a vec2 uniform.
func CmdUniform2f(loc int32, x, y float32) Command {
	return Command{Op: OpUniform2f, Ints: []int32{loc}, Floats: []float32{x, y}}
}

// CmdUniform4f sets a vec4 uniform.
func CmdUniform4f(loc int32, x, y, z, w float32) Command {
	return Command{Op: OpUniform4f, Ints: []int32{loc}, Floats: []float32{x, y, z, w}}
}

// CmdUniformMatrix4fv sets a 4×4 matrix uniform (column-major).
func CmdUniformMatrix4fv(loc int32, m [16]float32) Command {
	return Command{Op: OpUniformMatrix4fv, Ints: []int32{loc}, Floats: m[:]}
}

// CmdVertexAttribPointerVBO points an attribute at the given VBO.
func CmdVertexAttribPointerVBO(index, size, stride, offset, buffer int32) Command {
	return Command{
		Op:   OpVertexAttribPointer,
		Ints: []int32{index, size, AttribTypeFloat, 0, stride, offset, buffer},
	}
}

// CmdVertexAttribPointerClient points an attribute at a client-side
// array whose extent is NOT yet known — the §IV-B case. ptrID names the
// client array so a later draw call can resolve how many bytes to ship;
// resolve is the callback the interception layer uses to read the array
// once the extent is known.
func CmdVertexAttribPointerClient(index, size, stride int32, ptrID uint64) Command {
	return Command{
		Op:        OpVertexAttribPointer,
		Ints:      []int32{index, size, AttribTypeFloat, 0, stride, 0, 0},
		DataLen:   NoDataLen,
		ClientPtr: ptrID,
	}
}

// CmdVertexAttribPointerResolved is a client-array attrib pointer whose
// data extent is already resolved (used server-side after deferral).
func CmdVertexAttribPointerResolved(index, size, stride int32, data []byte) Command {
	return Command{
		Op:      OpVertexAttribPointer,
		Ints:    []int32{index, size, AttribTypeFloat, 0, stride, 0, 0},
		Data:    data,
		DataLen: int32(len(data)),
	}
}

// CmdEnableVertexAttribArray enables an attribute array.
func CmdEnableVertexAttribArray(index int32) Command {
	return Command{Op: OpEnableVertexAttribArray, Ints: []int32{index}}
}

// CmdDisableVertexAttribArray disables an attribute array.
func CmdDisableVertexAttribArray(index int32) Command {
	return Command{Op: OpDisableVertexAttribArray, Ints: []int32{index}}
}

// CmdDrawArrays draws count vertices starting at first.
func CmdDrawArrays(mode, first, count int32) Command {
	return Command{Op: OpDrawArrays, Ints: []int32{mode, first, count}}
}

// CmdDrawElementsClient draws with client-memory uint16 indices.
func CmdDrawElementsClient(mode int32, indices []uint16) Command {
	data := U16ToBytes(indices)
	return Command{
		Op:      OpDrawElements,
		Ints:    []int32{mode, int32(len(indices)), IndexTypeUshort, 0},
		Data:    data,
		DataLen: int32(len(data)),
	}
}

// CmdDrawElementsVBO draws with indices taken from the bound
// element-array buffer at a byte offset.
func CmdDrawElementsVBO(mode, count, offset int32) Command {
	return Command{Op: OpDrawElements, Ints: []int32{mode, count, IndexTypeUshort, offset}}
}

// CmdFlush flushes the pipeline.
func CmdFlush() Command { return Command{Op: OpFlush} }

// CmdFinish blocks until the pipeline drains.
func CmdFinish() Command { return Command{Op: OpFinish} }

// CmdSwapBuffers marks the end of a frame.
func CmdSwapBuffers() Command { return Command{Op: OpSwapBuffers} }

// CmdScissor sets the scissor rectangle (effective when CapScissorTest
// is enabled).
func CmdScissor(x, y, w, h int32) Command {
	return Command{Op: OpScissor, Ints: []int32{x, y, w, h}}
}
