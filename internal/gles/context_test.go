package gles

import (
	"errors"
	"testing"
)

func TestOpString(t *testing.T) {
	tests := []struct {
		op   Op
		want string
	}{
		{OpClearColor, "glClearColor"},
		{OpVertexAttribPointer, "glVertexAttribPointer"},
		{OpSwapBuffers, "eglSwapBuffers"},
		{Op(999), "Op(999)"},
	}
	for _, tt := range tests {
		if got := tt.op.String(); got != tt.want {
			t.Errorf("Op(%d).String() = %q, want %q", tt.op, got, tt.want)
		}
	}
}

func TestEveryOpHasName(t *testing.T) {
	for op := Op(1); op < opSentinel; op++ {
		if !op.Valid() {
			t.Errorf("op %d in range but not Valid()", op)
		}
		if _, ok := _opNames[op]; !ok {
			t.Errorf("op %d has no name", op)
		}
	}
	if Op(0).Valid() || opSentinel.Valid() {
		t.Error("zero or sentinel op reported Valid()")
	}
	if NumOps() != int(opSentinel)-1 {
		t.Errorf("NumOps() = %d, want %d", NumOps(), int(opSentinel)-1)
	}
}

func TestCommandClone(t *testing.T) {
	orig := Command{
		Op:        OpTexImage2D,
		Ints:      []int32{1, 2, 3},
		Floats:    []float32{1.5},
		Data:      []byte{9, 8},
		DataLen:   2,
		ClientPtr: 77,
	}
	cp := orig.Clone()
	cp.Ints[0] = 100
	cp.Data[0] = 100
	cp.Floats[0] = 100
	if orig.Ints[0] != 1 || orig.Data[0] != 9 || orig.Floats[0] != 1.5 {
		t.Fatal("Clone shares backing arrays with original")
	}
	if cp.ClientPtr != 77 || cp.DataLen != 2 {
		t.Fatal("Clone lost scalar fields")
	}
}

func TestCommandAccessorsOutOfRange(t *testing.T) {
	c := Command{Op: OpClear, Ints: []int32{5}}
	if c.Int(0) != 5 || c.Int(1) != 0 || c.Int(-1) != 0 {
		t.Fatal("Int accessor out-of-range handling wrong")
	}
	if c.Float(0) != 0 {
		t.Fatal("Float accessor out-of-range handling wrong")
	}
}

func TestMutatesStateClassification(t *testing.T) {
	mutating := []Command{
		CmdClearColor(0, 0, 0, 1), CmdViewport(0, 0, 1, 1), CmdEnable(CapBlend),
		CmdGenTexture(1), CmdBindTexture(TexTarget2D, 0), CmdUseProgram(0),
		CmdUniform4f(1, 0, 0, 0, 0), CmdVertexAttribPointerResolved(1, 2, 0, nil),
		CmdBufferData(BufTargetArray, nil, UsageStaticDraw),
	}
	for _, c := range mutating {
		if !c.MutatesState() {
			t.Errorf("%v should be state-mutating", c.Op)
		}
	}
	nonMutating := []Command{
		CmdClear(ClearColorBit), CmdDrawArrays(DrawModeTriangles, 0, 3),
		CmdDrawElementsVBO(DrawModeTriangles, 3, 0), CmdSwapBuffers(),
		CmdFlush(), CmdFinish(),
	}
	for _, c := range nonMutating {
		if c.MutatesState() {
			t.Errorf("%v should not be state-mutating", c.Op)
		}
	}
}

func TestFrameBoundaryAndDrawClassification(t *testing.T) {
	if !CmdSwapBuffers().IsFrameBoundary() {
		t.Error("SwapBuffers not a frame boundary")
	}
	if CmdFlush().IsFrameBoundary() {
		t.Error("Flush wrongly a frame boundary")
	}
	if !CmdDrawArrays(DrawModeTriangles, 0, 3).IsDraw() || !CmdClear(ClearColorBit).IsDraw() {
		t.Error("draw classification wrong")
	}
	if CmdUseProgram(1).IsDraw() {
		t.Error("UseProgram wrongly classified as draw")
	}
}

func TestUniformLocationStableAndBounded(t *testing.T) {
	a, b := UniformLocation("uMVP"), UniformLocation("uMVP")
	if a != b {
		t.Fatal("UniformLocation not deterministic")
	}
	for _, name := range []string{"", "a", "uLongUniformName", "aPosition"} {
		loc := UniformLocation(name)
		if loc < 0 || loc >= UniformLocationSize {
			t.Errorf("UniformLocation(%q) = %d out of range", name, loc)
		}
	}
}

func TestContextClearColorAndViewport(t *testing.T) {
	ctx := NewContext()
	if err := ctx.Apply(CmdClearColor(0.1, 0.2, 0.3, 0.4)); err != nil {
		t.Fatal(err)
	}
	if ctx.ClearR != 0.1 || ctx.ClearG != 0.2 || ctx.ClearB != 0.3 || ctx.ClearA != 0.4 {
		t.Fatal("clear color not stored")
	}
	if err := ctx.Apply(CmdViewport(5, 6, 640, 480)); err != nil {
		t.Fatal(err)
	}
	if ctx.ViewportX != 5 || ctx.ViewportY != 6 || ctx.ViewportW != 640 || ctx.ViewportH != 480 {
		t.Fatal("viewport not stored")
	}
	if err := ctx.Apply(CmdViewport(0, 0, -1, 10)); !errors.Is(err, ErrBadArguments) {
		t.Fatalf("negative viewport error = %v, want ErrBadArguments", err)
	}
}

func TestContextEnableDisable(t *testing.T) {
	ctx := NewContext()
	mustApply(t, ctx, CmdEnable(CapBlend))
	if !ctx.Caps[CapBlend] {
		t.Fatal("Enable did not set capability")
	}
	mustApply(t, ctx, CmdDisable(CapBlend))
	if ctx.Caps[CapBlend] {
		t.Fatal("Disable did not clear capability")
	}
}

func TestContextTextureLifecycle(t *testing.T) {
	ctx := NewContext()
	mustApply(t, ctx, CmdGenTexture(7))
	mustApply(t, ctx, CmdBindTexture(TexTarget2D, 7))
	pix := make([]byte, 2*2*4)
	for i := range pix {
		pix[i] = byte(i)
	}
	mustApply(t, ctx, CmdTexImage2D(TexTarget2D, 0, 2, 2, pix))
	tex := ctx.Textures[7]
	if tex.Width != 2 || tex.Height != 2 || len(tex.Pixels) != 16 {
		t.Fatalf("texture not uploaded: %+v", tex)
	}
	if ctx.Stats.TexelsLoaded != 4 {
		t.Fatalf("TexelsLoaded = %d, want 4", ctx.Stats.TexelsLoaded)
	}
	// Upload owns its copy: mutating source must not change the texture.
	pix[0] = 200
	if tex.Pixels[0] == 200 {
		t.Fatal("TexImage2D aliases caller data")
	}
	mustApply(t, ctx, CmdDeleteTexture(7))
	if _, ok := ctx.Textures[7]; ok {
		t.Fatal("DeleteTexture left the texture")
	}
}

func TestContextTextureErrors(t *testing.T) {
	ctx := NewContext()
	if err := ctx.Apply(CmdGenTexture(0)); !errors.Is(err, ErrBadArguments) {
		t.Fatalf("GenTexture(0) error = %v", err)
	}
	if err := ctx.Apply(CmdBindTexture(TexTarget2D, 42)); !errors.Is(err, ErrUnknownObject) {
		t.Fatalf("Bind of unknown texture error = %v", err)
	}
	if err := ctx.Apply(CmdTexImage2D(TexTarget2D, 0, 2, 2, nil)); err == nil {
		t.Fatal("TexImage2D with no bound texture succeeded")
	}
	mustApply(t, ctx, CmdGenTexture(1))
	mustApply(t, ctx, CmdBindTexture(TexTarget2D, 1))
	if err := ctx.Apply(CmdTexImage2D(TexTarget2D, 0, 4, 4, make([]byte, 3))); !errors.Is(err, ErrBadArguments) {
		t.Fatalf("short texel data error = %v", err)
	}
	if ctx.Stats.Errors == 0 {
		t.Fatal("error counter not incremented")
	}
}

func TestContextActiveTextureUnits(t *testing.T) {
	ctx := NewContext()
	mustApply(t, ctx, CmdGenTexture(1))
	mustApply(t, ctx, CmdGenTexture(2))
	mustApply(t, ctx, CmdActiveTexture(TextureUnit0+1))
	mustApply(t, ctx, CmdBindTexture(TexTarget2D, 2))
	mustApply(t, ctx, CmdActiveTexture(TextureUnit0))
	mustApply(t, ctx, CmdBindTexture(TexTarget2D, 1))
	if ctx.BoundTexture[0] != 1 || ctx.BoundTexture[1] != 2 {
		t.Fatalf("texture unit bindings = %v", ctx.BoundTexture[:2])
	}
	if err := ctx.Apply(CmdActiveTexture(TextureUnit0 + MaxTextureUnits)); !errors.Is(err, ErrBadArguments) {
		t.Fatalf("out-of-range texture unit error = %v", err)
	}
}

func TestContextBufferLifecycle(t *testing.T) {
	ctx := NewContext()
	mustApply(t, ctx, CmdGenBuffer(3))
	mustApply(t, ctx, CmdBindBuffer(BufTargetArray, 3))
	mustApply(t, ctx, CmdBufferData(BufTargetArray, []byte{1, 2, 3, 4}, UsageStaticDraw))
	if got := ctx.Buffers[3].Data; len(got) != 4 || got[0] != 1 {
		t.Fatalf("buffer data = %v", got)
	}
	mustApply(t, ctx, CmdBufferSubData(BufTargetArray, 2, []byte{9, 9}))
	if got := ctx.Buffers[3].Data; got[2] != 9 || got[3] != 9 || got[0] != 1 {
		t.Fatalf("subdata result = %v", got)
	}
	if err := ctx.Apply(CmdBufferSubData(BufTargetArray, 3, []byte{1, 2})); !errors.Is(err, ErrBadArguments) {
		t.Fatalf("overflowing subdata error = %v", err)
	}
	mustApply(t, ctx, CmdDeleteBuffer(3))
	if _, ok := ctx.Buffers[3]; ok {
		t.Fatal("DeleteBuffer left the buffer")
	}
}

func TestContextBufferErrors(t *testing.T) {
	ctx := NewContext()
	if err := ctx.Apply(CmdBindBuffer(BufTargetArray, 9)); !errors.Is(err, ErrUnknownObject) {
		t.Fatalf("bind unknown buffer error = %v", err)
	}
	if err := ctx.Apply(CmdBufferData(BufTargetArray, []byte{1}, UsageStaticDraw)); !errors.Is(err, ErrUnknownObject) {
		t.Fatalf("BufferData with nothing bound error = %v", err)
	}
	if err := ctx.Apply(CmdBindBuffer(0x1234, 0)); !errors.Is(err, ErrBadArguments) {
		t.Fatalf("bad buffer target error = %v", err)
	}
}

func TestContextShaderProgramLifecycle(t *testing.T) {
	ctx := NewContext()
	mustApply(t, ctx, CmdCreateShader(ShaderTypeVertex, 1))
	mustApply(t, ctx, CmdShaderSource(1, "attribute vec2 aPosition;"))
	mustApply(t, ctx, CmdCompileShader(1))
	mustApply(t, ctx, CmdCreateShader(ShaderTypeFragment, 2))
	mustApply(t, ctx, CmdShaderSource(2, "void main(){}"))
	mustApply(t, ctx, CmdCompileShader(2))
	mustApply(t, ctx, CmdCreateProgram(5))
	mustApply(t, ctx, CmdAttachShader(5, 1))
	mustApply(t, ctx, CmdAttachShader(5, 2))
	mustApply(t, ctx, CmdLinkProgram(5))
	mustApply(t, ctx, CmdUseProgram(5))
	if ctx.CurrentProgram != 5 {
		t.Fatalf("CurrentProgram = %d, want 5", ctx.CurrentProgram)
	}
	p := ctx.Programs[5]
	if !p.Linked || len(p.Shaders) != 2 {
		t.Fatalf("program state: %+v", p)
	}
	if sh := ctx.Shaders[1]; !sh.Compiled || sh.Source == "" {
		t.Fatalf("shader state: %+v", sh)
	}
	mustApply(t, ctx, CmdUseProgram(0))
	if ctx.CurrentProgram != 0 {
		t.Fatal("UseProgram(0) did not unbind")
	}
}

func TestContextShaderProgramErrors(t *testing.T) {
	ctx := NewContext()
	if err := ctx.Apply(CmdShaderSource(9, "x")); !errors.Is(err, ErrUnknownObject) {
		t.Fatalf("ShaderSource unknown error = %v", err)
	}
	if err := ctx.Apply(CmdCompileShader(9)); !errors.Is(err, ErrUnknownObject) {
		t.Fatalf("CompileShader unknown error = %v", err)
	}
	if err := ctx.Apply(CmdAttachShader(9, 9)); !errors.Is(err, ErrUnknownObject) {
		t.Fatalf("AttachShader unknown error = %v", err)
	}
	if err := ctx.Apply(CmdUseProgram(9)); !errors.Is(err, ErrUnknownObject) {
		t.Fatalf("UseProgram unknown error = %v", err)
	}
	if err := ctx.Apply(Command{Op: Op(200)}); !errors.Is(err, ErrUnknownOp) {
		t.Fatalf("unknown op error = %v", err)
	}
}

func TestContextUniforms(t *testing.T) {
	ctx := NewContext()
	mustApply(t, ctx, CmdUniform4f(LocTint, 1, 0.5, 0.25, 1))
	if got := ctx.Uniforms[LocTint]; len(got) != 4 || got[1] != 0.5 {
		t.Fatalf("uniform4f = %v", got)
	}
	mustApply(t, ctx, CmdUniform1i(LocSampler, 3))
	if ctx.UniformInts[LocSampler] != 3 {
		t.Fatal("uniform1i not stored")
	}
	var m [16]float32
	for i := range m {
		m[i] = float32(i)
	}
	mustApply(t, ctx, CmdUniformMatrix4fv(LocMVP, m))
	if got := ctx.Uniforms[LocMVP]; len(got) != 16 || got[15] != 15 {
		t.Fatalf("matrix uniform = %v", got)
	}
}

func TestContextVertexAttribPointerClientArrayNeedsResolvedLen(t *testing.T) {
	ctx := NewContext()
	err := ctx.Apply(CmdVertexAttribPointerClient(LocPosition, 2, 0, 1))
	if !errors.Is(err, ErrBadArguments) {
		t.Fatalf("unresolved client attrib applied server-side, err = %v", err)
	}
	data := FloatsToBytes([]float32{0, 0, 1, 0, 0, 1})
	mustApply(t, ctx, CmdVertexAttribPointerResolved(LocPosition, 2, 0, data))
	b := ctx.Attribs[LocPosition]
	if b.Size != 2 || len(b.ClientData) != len(data) {
		t.Fatalf("attrib binding = %+v", b)
	}
}

func TestContextVertexAttribPointerVBO(t *testing.T) {
	ctx := NewContext()
	mustApply(t, ctx, CmdGenBuffer(1))
	mustApply(t, ctx, CmdBindBuffer(BufTargetArray, 1))
	mustApply(t, ctx, CmdBufferData(BufTargetArray, FloatsToBytes([]float32{1, 2, 3, 4}), UsageStaticDraw))
	mustApply(t, ctx, CmdVertexAttribPointerVBO(LocPosition, 2, 0, 0, 1))
	if err := ctx.Apply(CmdVertexAttribPointerVBO(LocPosition, 2, 0, 0, 99)); !errors.Is(err, ErrUnknownObject) {
		t.Fatalf("attrib to unknown VBO error = %v", err)
	}
	if err := ctx.Apply(CmdVertexAttribPointerVBO(LocPosition, 5, 0, 0, 1)); !errors.Is(err, ErrBadArguments) {
		t.Fatalf("attrib size 5 error = %v", err)
	}
}

func TestAttribFloatsFromVBOAndClient(t *testing.T) {
	ctx := NewContext()
	vals := []float32{1, 2, 3, 4, 5, 6}
	// Client array path.
	mustApply(t, ctx, CmdVertexAttribPointerResolved(LocPosition, 2, 0, FloatsToBytes(vals)))
	got, err := ctx.AttribFloats(ctx.Attribs[LocPosition], 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if got[i] != v {
			t.Fatalf("client attrib floats = %v", got)
		}
	}
	// VBO path with offset.
	mustApply(t, ctx, CmdGenBuffer(1))
	mustApply(t, ctx, CmdBindBuffer(BufTargetArray, 1))
	mustApply(t, ctx, CmdBufferData(BufTargetArray, FloatsToBytes(append([]float32{99}, vals...)), UsageStaticDraw))
	mustApply(t, ctx, CmdVertexAttribPointerVBO(LocPosition, 2, 0, 4, 1))
	got, err = ctx.AttribFloats(ctx.Attribs[LocPosition], 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 3 || got[3] != 6 {
		t.Fatalf("VBO attrib floats = %v", got)
	}
	// Out of range.
	if _, err := ctx.AttribFloats(ctx.Attribs[LocPosition], 0, 100); !errors.Is(err, ErrOutOfRangeDraw) {
		t.Fatalf("out-of-range attrib error = %v", err)
	}
	if _, err := ctx.AttribFloats(nil, 0, 1); !errors.Is(err, ErrBadArguments) {
		t.Fatalf("nil binding error = %v", err)
	}
}

func TestAttribFloatsStride(t *testing.T) {
	ctx := NewContext()
	// Interleaved x,y,u,v per vertex; stride 16, positions at offset 0.
	inter := []float32{0, 0, 9, 9, 1, 0, 9, 9, 0, 1, 9, 9}
	mustApply(t, ctx, CmdVertexAttribPointerResolved(LocPosition, 2, 16, FloatsToBytes(inter)))
	got, err := ctx.AttribFloats(ctx.Attribs[LocPosition], 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{0, 0, 1, 0, 0, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("strided floats = %v, want %v", got, want)
		}
	}
}

func TestDrawValidation(t *testing.T) {
	ctx := NewContext()
	if err := ctx.Apply(CmdDrawArrays(DrawModeTriangles, 0, 3)); !errors.Is(err, ErrNoProgram) {
		t.Fatalf("draw without program error = %v", err)
	}
	mustApply(t, ctx, CmdCreateProgram(1))
	mustApply(t, ctx, CmdUseProgram(1))
	if err := ctx.Apply(CmdDrawArrays(DrawModeTriangles, 0, 3)); !errors.Is(err, ErrMissingAttrib) {
		t.Fatalf("draw without position error = %v", err)
	}
	if ctx.Stats.Draws != 2 {
		t.Fatalf("Stats.Draws = %d, want 2", ctx.Stats.Draws)
	}
}

func TestStateReplicationConsistency(t *testing.T) {
	// The §VI-B invariant: two contexts that apply the same
	// state-mutating stream have identical snapshots.
	stream := []Command{
		CmdClearColor(0, 0, 0, 1),
		CmdGenTexture(1),
		CmdBindTexture(TexTarget2D, 1),
		CmdTexImage2D(TexTarget2D, 0, 2, 2, make([]byte, 16)),
		CmdGenBuffer(1),
		CmdBindBuffer(BufTargetArray, 1),
		CmdBufferData(BufTargetArray, make([]byte, 64), UsageStaticDraw),
		CmdCreateProgram(1),
		CmdUseProgram(1),
		CmdUniform4f(LocTint, 1, 1, 1, 1),
		CmdVertexAttribPointerVBO(LocPosition, 2, 0, 0, 1),
		CmdEnableVertexAttribArray(LocPosition),
	}
	a, b := NewContext(), NewContext()
	for _, cmd := range stream {
		if cmd.MutatesState() {
			mustApply(t, a, cmd)
			mustApply(t, b, cmd)
		}
	}
	if a.Snapshot() != b.Snapshot() {
		t.Fatalf("replicated contexts diverged:\n a=%+v\n b=%+v", a.Snapshot(), b.Snapshot())
	}
}

func TestTextureSample(t *testing.T) {
	tex := &Texture{Width: 2, Height: 2, Pixels: []byte{
		255, 0, 0, 255 /**/, 0, 255, 0, 255,
		0, 0, 255, 255 /**/, 255, 255, 255, 255,
	}}
	r, g, b, _ := tex.Sample(0.1, 0.1)
	if r != 255 || g != 0 || b != 0 {
		t.Fatalf("Sample(0.1,0.1) = %d,%d,%d, want red", r, g, b)
	}
	r, g, b, _ = tex.Sample(0.9, 0.9)
	if r != 255 || g != 255 || b != 255 {
		t.Fatalf("Sample(0.9,0.9) = %d,%d,%d, want white", r, g, b)
	}
	// Repeat wrapping: u=1.1 is the same as u=0.1.
	r, _, _, _ = tex.Sample(1.1, 0.1)
	if r != 255 {
		t.Fatalf("wrapped sample red channel = %d", r)
	}
	// Negative wraps too.
	_, g, _, _ = tex.Sample(-0.4, 0.1) // wraps to 0.6 -> green texel
	if g != 255 {
		t.Fatalf("negative-wrap sample green = %d", g)
	}
	// Nil and empty textures sample opaque white.
	var nilTex *Texture
	if r, g, b, a := nilTex.Sample(0, 0); r != 255 || g != 255 || b != 255 || a != 255 {
		t.Fatal("nil texture does not sample white")
	}
}

func mustApply(t *testing.T, ctx *Context, cmd Command) {
	t.Helper()
	if err := ctx.Apply(cmd); err != nil {
		t.Fatalf("apply %v: %v", cmd, err)
	}
}
