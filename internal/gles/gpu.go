package gles

import (
	"fmt"

	"github.com/gbooster/gbooster/internal/parallel"
)

// GPU couples a Context with a Framebuffer and executes command
// streams, exactly as the paper's service device feeds intercepted
// commands into its local GPU (§IV-C). It also accounts the work each
// command performs so callers can convert workload into GPU time via a
// device's fillrate.
type GPU struct {
	Ctx *Context
	FB  *Framebuffer

	// FragmentsShaded accumulates fragments rasterized since creation.
	FragmentsShaded int64
	// FramesCompleted counts SwapBuffers boundaries executed.
	FramesCompleted int64

	// par is the scanline-band rasterization degree; <= 1 keeps the
	// serial path. Output is byte-identical at every degree.
	par int
}

// NewGPU returns a GPU rendering into a w×h framebuffer with a fresh
// context. Rasterization is serial by default; opt in to band
// parallelism with SetParallelism.
func NewGPU(w, h int) *GPU {
	return &GPU{Ctx: NewContext(), FB: NewFramebuffer(w, h)}
}

// SetParallelism sets the scanline-band worker degree for draw calls:
// n <= 0 selects one band per CPU, 1 restores the serial path. Safe to
// call between Execute calls, not concurrently with them.
func (g *GPU) SetParallelism(n int) {
	g.par = parallel.Degree(n)
}

// ExecResult describes what one command did.
type ExecResult struct {
	// Fragments is the number of fragments shaded by the command (only
	// draws and clears shade fragments).
	Fragments int64
	// FrameDone reports that the command was a SwapBuffers boundary and
	// the current framebuffer content is the finished frame.
	FrameDone bool
}

// Execute runs one command: state commands mutate the context, draw
// commands rasterize into the framebuffer. Errors are diagnostic; the
// GPU remains usable, like a real driver raising GL_INVALID_OPERATION.
func (g *GPU) Execute(cmd Command) (ExecResult, error) {
	var res ExecResult
	if err := g.Ctx.Apply(cmd); err != nil {
		return res, fmt.Errorf("apply %v: %w", cmd.Op, err)
	}
	switch cmd.Op {
	case OpClear:
		mask := cmd.Int(0)
		if mask&ClearColorBit != 0 {
			res.Fragments = g.clearColor()
		}
		if mask&ClearDepthBit != 0 {
			g.FB.ClearDepthBuf()
		}
	case OpDrawArrays:
		verts, err := g.Ctx.gatherVertices(int(cmd.Int(1)), int(cmd.Int(2)), nil)
		if err != nil {
			return res, fmt.Errorf("drawArrays: %w", err)
		}
		res.Fragments = g.Ctx.drawTriangles(g.FB, verts, cmd.Int(0), g.par)
	case OpDrawElements:
		indices, err := g.drawIndices(cmd)
		if err != nil {
			return res, err
		}
		verts, err := g.Ctx.gatherVertices(0, 0, indices)
		if err != nil {
			return res, fmt.Errorf("drawElements: %w", err)
		}
		res.Fragments = g.Ctx.drawTriangles(g.FB, verts, cmd.Int(0), g.par)
	case OpSwapBuffers:
		g.FramesCompleted++
		res.FrameDone = true
	}
	g.FragmentsShaded += res.Fragments
	return res, nil
}

// ExecuteAll runs a command slice, stopping at the first error.
func (g *GPU) ExecuteAll(cmds []Command) (ExecResult, error) {
	var total ExecResult
	for _, cmd := range cmds {
		res, err := g.Execute(cmd)
		total.Fragments += res.Fragments
		total.FrameDone = total.FrameDone || res.FrameDone
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// clearColor clears the color buffer, honoring the scissor rectangle
// like real GL (glClear is scissored when GL_SCISSOR_TEST is on).
func (g *GPU) clearColor() int64 {
	ctx := g.Ctx
	if !ctx.Caps[CapScissorTest] {
		g.FB.ClearColorBuf(ctx.ClearR, ctx.ClearG, ctx.ClearB, ctx.ClearA)
		return int64(g.FB.W * g.FB.H)
	}
	// Scissor rect is in GL coordinates (origin bottom-left).
	x0, w := int(ctx.ScissorX), int(ctx.ScissorW)
	top := g.FB.H - int(ctx.ScissorY) - int(ctx.ScissorH)
	bottom := g.FB.H - int(ctx.ScissorY)
	if x0 < 0 {
		x0 = 0
	}
	if top < 0 {
		top = 0
	}
	if bottom > g.FB.H {
		bottom = g.FB.H
	}
	if x0+w > g.FB.W {
		w = g.FB.W - x0
	}
	cr := clamp8(ctx.ClearR)
	cg := clamp8(ctx.ClearG)
	cb := clamp8(ctx.ClearB)
	ca := clamp8(ctx.ClearA)
	var cleared int64
	for y := top; y < bottom; y++ {
		row := (y*g.FB.W + x0) * 4
		for x := 0; x < w; x++ {
			i := row + x*4
			g.FB.Pix[i], g.FB.Pix[i+1], g.FB.Pix[i+2], g.FB.Pix[i+3] = cr, cg, cb, ca
			cleared++
		}
	}
	return cleared
}

// drawIndices resolves the index array for a DrawElements call, either
// from the bound element-array buffer (at the offset argument) or from
// client memory carried in the command.
func (g *GPU) drawIndices(cmd Command) ([]uint16, error) {
	count := int(cmd.Int(1))
	if count < 0 {
		return nil, fmt.Errorf("%w: count %d", ErrBadArguments, count)
	}
	var raw []byte
	if g.Ctx.BoundElemBuf != 0 {
		buf, ok := g.Ctx.Buffers[g.Ctx.BoundElemBuf]
		if !ok {
			return nil, fmt.Errorf("%w: element buffer %d", ErrUnknownObject, g.Ctx.BoundElemBuf)
		}
		off := int(cmd.Int(3))
		if off < 0 || off+count*2 > len(buf.Data) {
			return nil, fmt.Errorf("%w: indices [%d,%d) of %d", ErrOutOfRangeDraw, off, off+count*2, len(buf.Data))
		}
		raw = buf.Data[off : off+count*2]
	} else {
		if count*2 > len(cmd.Data) {
			return nil, fmt.Errorf("%w: %d indices with %d data bytes", ErrOutOfRangeDraw, count, len(cmd.Data))
		}
		raw = cmd.Data[:count*2]
	}
	return BytesToU16(raw), nil
}

// EstimateCost returns the command's GPU workload in fragments without
// executing it, following the offline-profiling approach of TimeGraph
// that the paper adopts for Eq. 4's request workload r. Estimates are
// intentionally cheap and slightly conservative: draws are costed by
// the clip-space bounding box of their vertices; state changes carry a
// small fixed pipeline-stall cost.
func EstimateCost(ctx *Context, fbW, fbH int, cmd Command) int64 {
	const stateChangeCost = 16 // fragments-equivalent pipeline cost
	switch cmd.Op {
	case OpClear:
		return int64(fbW * fbH)
	case OpDrawArrays:
		return estimateDrawCost(ctx, fbW, fbH, int(cmd.Int(2)))
	case OpDrawElements:
		return estimateDrawCost(ctx, fbW, fbH, int(cmd.Int(1)))
	case OpTexImage2D:
		return int64(cmd.Int(2)) * int64(cmd.Int(3))
	case OpBufferData, OpBufferSubData:
		return int64(len(cmd.Data) / 4)
	case OpSwapBuffers, OpFlush, OpFinish:
		return 0
	default:
		return stateChangeCost
	}
}

func estimateDrawCost(ctx *Context, fbW, fbH int, vertCount int) int64 {
	// Without running the vertex stage we assume triangles cover a
	// screen fraction proportional to triangle count, capped at one
	// full-screen overdraw. 128 fragments/triangle reflects the small-
	// triangle regime of mobile scenes.
	const fragsPerTri = 128
	tris := vertCount / 3
	cost := int64(tris) * fragsPerTri
	if maxCost := int64(fbW * fbH); cost > maxCost {
		cost = maxCost
	}
	if ctx != nil && ctx.Caps[CapBlend] {
		cost += cost / 4 // blending touches the target twice
	}
	return cost
}
