package gles

import (
	"bytes"
	"testing"
)

// populatedContext builds a context exercising every durable-state
// section: textures, buffers, shaders, programs, uniforms, attribs
// (both VBO-backed and client-array), caps, and the scalar block.
func populatedContext(t *testing.T) *Context {
	t.Helper()
	c := NewContext()
	apply := func(cmd Command) {
		t.Helper()
		if err := c.Apply(cmd); err != nil {
			t.Fatalf("apply %v: %v", cmd, err)
		}
	}
	apply(Command{Op: OpClearColor, Floats: []float32{0.25, 0.5, 0.75, 1}})
	apply(Command{Op: OpViewport, Ints: []int32{0, 0, 320, 240}})
	apply(Command{Op: OpScissor, Ints: []int32{8, 8, 100, 90}})
	apply(Command{Op: OpEnable, Ints: []int32{CapDepthTest}})
	apply(Command{Op: OpEnable, Ints: []int32{CapBlend}})
	apply(Command{Op: OpDisable, Ints: []int32{CapBlend}})
	apply(Command{Op: OpBlendFunc, Ints: []int32{BlendSrcAlpha, BlendOneMinusSrcA}})
	apply(Command{Op: OpDepthFunc, Ints: []int32{DepthFuncLessEqual}})

	apply(Command{Op: OpGenTexture, Ints: []int32{7}})
	apply(Command{Op: OpBindTexture, Ints: []int32{TexTarget2D, 7}})
	texels := make([]byte, 4*4*4)
	for i := range texels {
		texels[i] = byte(i * 3)
	}
	apply(Command{Op: OpTexImage2D, Ints: []int32{TexTarget2D, 0, 4, 4, TexFormatRGBA},
		Data: texels, DataLen: int32(len(texels))})
	apply(Command{Op: OpGenTexture, Ints: []int32{9}}) // no pixels uploaded

	apply(Command{Op: OpGenBuffer, Ints: []int32{3}})
	apply(Command{Op: OpBindBuffer, Ints: []int32{BufTargetArray, 3}})
	apply(Command{Op: OpBufferData, Ints: []int32{BufTargetArray, UsageStaticDraw},
		Data: []byte{1, 2, 3, 4, 5, 6, 7, 8}, DataLen: 8})

	apply(Command{Op: OpCreateShader, Ints: []int32{ShaderTypeVertex, 11}})
	apply(Command{Op: OpShaderSource, Ints: []int32{11}, Data: []byte("attribute vec4 aPosition;")})
	apply(Command{Op: OpCompileShader, Ints: []int32{11}})
	apply(Command{Op: OpCreateShader, Ints: []int32{ShaderTypeFragment, 12}})
	apply(Command{Op: OpShaderSource, Ints: []int32{12}, Data: []byte("uniform vec4 uTint;")})
	apply(Command{Op: OpCompileShader, Ints: []int32{12}})
	apply(Command{Op: OpCreateProgram, Ints: []int32{20}})
	apply(Command{Op: OpAttachShader, Ints: []int32{20, 11}})
	apply(Command{Op: OpAttachShader, Ints: []int32{20, 12}})
	apply(Command{Op: OpLinkProgram, Ints: []int32{20}})
	apply(Command{Op: OpUseProgram, Ints: []int32{20}})

	apply(Command{Op: OpUniform1i, Ints: []int32{LocSampler, 0}})
	apply(Command{Op: OpUniform4f, Ints: []int32{LocTint}, Floats: []float32{1, 0.5, 0.25, 1}})
	apply(Command{Op: OpUniformMatrix4fv, Ints: []int32{LocMVP}, Floats: make([]float32, 16)})

	apply(Command{Op: OpVertexAttribPointer,
		Ints: []int32{LocPosition, 3, AttribTypeFloat, 0, 0, 0, 3}})
	apply(Command{Op: OpEnableVertexAttribArray, Ints: []int32{LocPosition}})
	apply(Command{Op: OpVertexAttribPointer,
		Ints: []int32{LocColor, 4, AttribTypeFloat, 0, 16, 0, 0},
		Data: make([]byte, 64), DataLen: 64})
	return c
}

func TestContextStateRoundTrip(t *testing.T) {
	c := populatedContext(t)
	enc := AppendContextState(nil, c)
	got, err := DecodeContextState(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Snapshot() != c.Snapshot() {
		t.Fatalf("snapshot mismatch:\n got %+v\nwant %+v", got.Snapshot(), c.Snapshot())
	}
	// Canonical identity: the decoded context re-encodes to the same
	// bytes, so fingerprints agree across a restore.
	re := AppendContextState(nil, got)
	if !bytes.Equal(enc, re) {
		t.Fatal("re-encoded state differs from original encoding")
	}
	if StateFingerprint(c) != StateFingerprint(got) {
		t.Fatal("fingerprint mismatch after round trip")
	}
}

func TestContextStateFingerprintSeesMutation(t *testing.T) {
	a := populatedContext(t)
	b := populatedContext(t)
	if StateFingerprint(a) != StateFingerprint(b) {
		t.Fatal("identical histories should fingerprint equal")
	}
	if err := b.Apply(Command{Op: OpUniform1f, Ints: []int32{5}, Floats: []float32{3}}); err != nil {
		t.Fatal(err)
	}
	if StateFingerprint(a) == StateFingerprint(b) {
		t.Fatal("mutated context should change the fingerprint")
	}
}

func TestDecodeContextStateRejectsCorrupt(t *testing.T) {
	enc := AppendContextState(nil, populatedContext(t))
	if _, err := DecodeContextState(nil); err == nil {
		t.Fatal("empty input should error")
	}
	for cut := 1; cut < len(enc); cut += 7 {
		if _, err := DecodeContextState(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d should error", cut)
		}
	}
	if _, err := DecodeContextState(append(append([]byte(nil), enc...), 0)); err == nil {
		t.Fatal("trailing bytes should error")
	}
	bad := append([]byte(nil), enc...)
	bad[0] = 99
	if _, err := DecodeContextState(bad); err == nil {
		t.Fatal("unknown version should error")
	}
}
