package gles

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
)

// Canonical context-state serialization for the session bootstrap
// stream (§VI-B state replication, extended to cold joins). The
// encoding is deterministic — map sections are emitted in ascending key
// order — so two contexts holding identical state always serialize to
// identical bytes, and StateFingerprint over those bytes is a usable
// admission check: a restored device re-encodes its context and the
// fingerprints either match exactly or the restore diverged.
//
// The encoding covers durable state only. ContextStats is excluded (it
// is observational, not replicated), as is the framebuffer (it is
// device-side output, reconstructed by the next frame's clear+draws).

// ErrBadState reports a malformed context-state encoding.
var ErrBadState = errors.New("gles: malformed context state")

// stateVersion guards the canonical layout; bump on any change.
const stateVersion = 1

// AppendContextState appends the canonical encoding of c's durable
// state to dst and returns the extended slice.
func AppendContextState(dst []byte, c *Context) []byte {
	dst = append(dst, stateVersion)

	// Fixed scalar block.
	for _, f := range [...]float32{c.ClearR, c.ClearG, c.ClearB, c.ClearA} {
		dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(f))
	}
	for _, v := range [...]int32{
		c.ViewportX, c.ViewportY, c.ViewportW, c.ViewportH,
		c.ScissorX, c.ScissorY, c.ScissorW, c.ScissorH,
		c.BlendSrc, c.BlendDst, c.DepthFn,
		c.ActiveTexUnit, c.BoundArrayBuf, c.BoundElemBuf, c.CurrentProgram,
	} {
		dst = binary.AppendVarint(dst, int64(v))
	}
	for _, v := range c.BoundTexture {
		dst = binary.AppendVarint(dst, int64(v))
	}

	// Map sections, each length-prefixed and key-sorted.
	dst = binary.AppendUvarint(dst, uint64(len(c.Caps)))
	for _, k := range sortedKeys(c.Caps) {
		dst = binary.AppendVarint(dst, int64(k))
		dst = appendBool(dst, c.Caps[k])
	}

	dst = binary.AppendUvarint(dst, uint64(len(c.Textures)))
	for _, id := range sortedKeys(c.Textures) {
		t := c.Textures[id]
		dst = binary.AppendVarint(dst, int64(id))
		dst = binary.AppendVarint(dst, int64(t.Width))
		dst = binary.AppendVarint(dst, int64(t.Height))
		dst = appendBytes(dst, t.Pixels)
	}

	dst = binary.AppendUvarint(dst, uint64(len(c.Buffers)))
	for _, id := range sortedKeys(c.Buffers) {
		b := c.Buffers[id]
		dst = binary.AppendVarint(dst, int64(id))
		dst = binary.AppendVarint(dst, int64(b.Usage))
		dst = appendBytes(dst, b.Data)
	}

	dst = binary.AppendUvarint(dst, uint64(len(c.Shaders)))
	for _, id := range sortedKeys(c.Shaders) {
		sh := c.Shaders[id]
		dst = binary.AppendVarint(dst, int64(id))
		dst = binary.AppendVarint(dst, int64(sh.Type))
		dst = appendBool(dst, sh.Compiled)
		dst = appendBytes(dst, []byte(sh.Source))
	}

	dst = binary.AppendUvarint(dst, uint64(len(c.Programs)))
	for _, id := range sortedKeys(c.Programs) {
		p := c.Programs[id]
		dst = binary.AppendVarint(dst, int64(id))
		dst = appendBool(dst, p.Linked)
		dst = binary.AppendUvarint(dst, uint64(len(p.Shaders)))
		for _, sid := range p.Shaders {
			dst = binary.AppendVarint(dst, int64(sid))
		}
	}

	dst = binary.AppendUvarint(dst, uint64(len(c.Uniforms)))
	for _, loc := range sortedKeys(c.Uniforms) {
		vals := c.Uniforms[loc]
		dst = binary.AppendVarint(dst, int64(loc))
		dst = binary.AppendUvarint(dst, uint64(len(vals)))
		for _, f := range vals {
			dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(f))
		}
	}

	dst = binary.AppendUvarint(dst, uint64(len(c.UniformInts)))
	for _, loc := range sortedKeys(c.UniformInts) {
		dst = binary.AppendVarint(dst, int64(loc))
		dst = binary.AppendVarint(dst, int64(c.UniformInts[loc]))
	}

	dst = binary.AppendUvarint(dst, uint64(len(c.Attribs)))
	for _, idx := range sortedKeys(c.Attribs) {
		b := c.Attribs[idx]
		dst = binary.AppendVarint(dst, int64(idx))
		dst = appendBool(dst, b.Enabled)
		for _, v := range [...]int32{b.Size, b.Type, b.Stride, b.Offset, b.Buffer} {
			dst = binary.AppendVarint(dst, int64(v))
		}
		dst = appendBytes(dst, b.ClientData)
	}
	return dst
}

// DecodeContextState rebuilds a context from its canonical encoding.
// Truncated or corrupt input returns ErrBadState; it never panics.
// Re-encoding the returned context reproduces data byte-for-byte.
func DecodeContextState(data []byte) (*Context, error) {
	r := stateReader{buf: data}
	if v, err := r.byte(); err != nil {
		return nil, err
	} else if v != stateVersion {
		return nil, fmt.Errorf("%w: version %d", ErrBadState, v)
	}
	c := NewContext()

	if err := r.floats(&c.ClearR, &c.ClearG, &c.ClearB, &c.ClearA); err != nil {
		return nil, err
	}
	if err := r.ints(
		&c.ViewportX, &c.ViewportY, &c.ViewportW, &c.ViewportH,
		&c.ScissorX, &c.ScissorY, &c.ScissorW, &c.ScissorH,
		&c.BlendSrc, &c.BlendDst, &c.DepthFn,
		&c.ActiveTexUnit, &c.BoundArrayBuf, &c.BoundElemBuf, &c.CurrentProgram,
	); err != nil {
		return nil, err
	}
	for i := range c.BoundTexture {
		if err := r.ints(&c.BoundTexture[i]); err != nil {
			return nil, err
		}
	}

	n, err := r.count()
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		var k int32
		if err := r.ints(&k); err != nil {
			return nil, err
		}
		v, err := r.bool()
		if err != nil {
			return nil, err
		}
		c.Caps[k] = v
	}

	if n, err = r.count(); err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		t := &Texture{}
		var w, h int32
		if err := r.ints(&t.ID, &w, &h); err != nil {
			return nil, err
		}
		t.Width, t.Height = int(w), int(h)
		if t.Pixels, err = r.bytes(); err != nil {
			return nil, err
		}
		c.Textures[t.ID] = t
	}

	if n, err = r.count(); err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		b := &Buffer{}
		if err := r.ints(&b.ID, &b.Usage); err != nil {
			return nil, err
		}
		if b.Data, err = r.bytes(); err != nil {
			return nil, err
		}
		c.Buffers[b.ID] = b
	}

	if n, err = r.count(); err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		sh := &Shader{}
		if err := r.ints(&sh.ID, &sh.Type); err != nil {
			return nil, err
		}
		if sh.Compiled, err = r.bool(); err != nil {
			return nil, err
		}
		src, err := r.bytes()
		if err != nil {
			return nil, err
		}
		sh.Source = string(src)
		c.Shaders[sh.ID] = sh
	}

	if n, err = r.count(); err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		p := &Program{}
		if err := r.ints(&p.ID); err != nil {
			return nil, err
		}
		if p.Linked, err = r.bool(); err != nil {
			return nil, err
		}
		m, err := r.count()
		if err != nil {
			return nil, err
		}
		for j := 0; j < m; j++ {
			var sid int32
			if err := r.ints(&sid); err != nil {
				return nil, err
			}
			p.Shaders = append(p.Shaders, sid)
		}
		c.Programs[p.ID] = p
	}

	if n, err = r.count(); err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		var loc int32
		if err := r.ints(&loc); err != nil {
			return nil, err
		}
		m, err := r.count()
		if err != nil {
			return nil, err
		}
		vals := make([]float32, m)
		for j := range vals {
			if err := r.floats(&vals[j]); err != nil {
				return nil, err
			}
		}
		c.Uniforms[loc] = vals
	}

	if n, err = r.count(); err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		var loc, v int32
		if err := r.ints(&loc, &v); err != nil {
			return nil, err
		}
		c.UniformInts[loc] = v
	}

	if n, err = r.count(); err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		var idx int32
		if err := r.ints(&idx); err != nil {
			return nil, err
		}
		b := &AttribBinding{}
		if b.Enabled, err = r.bool(); err != nil {
			return nil, err
		}
		if err := r.ints(&b.Size, &b.Type, &b.Stride, &b.Offset, &b.Buffer); err != nil {
			return nil, err
		}
		if b.ClientData, err = r.bytes(); err != nil {
			return nil, err
		}
		c.Attribs[idx] = b
	}

	if len(r.buf) != r.pos {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadState, len(r.buf)-r.pos)
	}
	return c, nil
}

// StateFingerprint hashes c's canonical encoding (FNV-1a, 64-bit). Two
// contexts fingerprint equal exactly when their durable state is
// byte-identical under the canonical encoding.
func StateFingerprint(c *Context) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range AppendContextState(nil, c) {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}

func sortedKeys[V any](m map[int32]V) []int32 {
	keys := make([]int32, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func appendBool(dst []byte, v bool) []byte {
	if v {
		return append(dst, 1)
	}
	return append(dst, 0)
}

// appendBytes writes a uvarint length prefix then the bytes. nil and
// empty encode identically; decode returns nil for both, so the
// canonical re-encode is stable.
func appendBytes(dst, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// stateReader walks an encoded state buffer with strict bounds checks.
type stateReader struct {
	buf []byte
	pos int
}

func (r *stateReader) byte() (byte, error) {
	if r.pos >= len(r.buf) {
		return 0, fmt.Errorf("%w: truncated", ErrBadState)
	}
	b := r.buf[r.pos]
	r.pos++
	return b, nil
}

func (r *stateReader) bool() (bool, error) {
	b, err := r.byte()
	if err != nil {
		return false, err
	}
	switch b {
	case 0:
		return false, nil
	case 1:
		return true, nil
	default:
		return false, fmt.Errorf("%w: bool %#x", ErrBadState, b)
	}
}

// ints decodes signed varints into each target, rejecting values
// outside int32 range.
func (r *stateReader) ints(out ...*int32) error {
	for _, p := range out {
		v, n := binary.Varint(r.buf[r.pos:])
		if n <= 0 {
			return fmt.Errorf("%w: varint", ErrBadState)
		}
		if v < math.MinInt32 || v > math.MaxInt32 {
			return fmt.Errorf("%w: int32 overflow %d", ErrBadState, v)
		}
		r.pos += n
		*p = int32(v)
	}
	return nil
}

func (r *stateReader) floats(out ...*float32) error {
	for _, p := range out {
		if r.pos+4 > len(r.buf) {
			return fmt.Errorf("%w: truncated float", ErrBadState)
		}
		*p = math.Float32frombits(binary.LittleEndian.Uint32(r.buf[r.pos:]))
		r.pos += 4
	}
	return nil
}

// count decodes an element count, bounded by the remaining input (each
// element costs at least one byte) so corrupt input cannot force a
// giant allocation.
func (r *stateReader) count() (int, error) {
	v, n := binary.Uvarint(r.buf[r.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: count", ErrBadState)
	}
	r.pos += n
	if v > uint64(len(r.buf)-r.pos) {
		return 0, fmt.Errorf("%w: count %d exceeds input", ErrBadState, v)
	}
	return int(v), nil
}

// bytes decodes a length-prefixed byte string, returning nil for an
// empty one. The returned slice is a copy.
func (r *stateReader) bytes() ([]byte, error) {
	v, n := binary.Uvarint(r.buf[r.pos:])
	if n <= 0 {
		return nil, fmt.Errorf("%w: length", ErrBadState)
	}
	r.pos += n
	if v > uint64(len(r.buf)-r.pos) {
		return nil, fmt.Errorf("%w: %d bytes exceed input", ErrBadState, v)
	}
	if v == 0 {
		return nil, nil
	}
	out := append([]byte(nil), r.buf[r.pos:r.pos+int(v)]...)
	r.pos += int(v)
	return out, nil
}
