package gles

import (
	"crypto/sha256"
	"encoding/hex"
	"testing"
)

// TestRasterizerGoldenHash locks the rasterizer's exact output for a
// fixed scene. Multi-device consistency (§VI-B) relies on every replica
// producing byte-identical framebuffers from the same stream, so any
// change to rasterization rules must be deliberate: update the hash
// only when the change is intended, since it invalidates cross-device
// determinism with older builds.
func TestRasterizerGoldenHash(t *testing.T) {
	gpu := NewGPU(64, 64)
	var m [16]float32
	m[0], m[5], m[10], m[15] = 1, 1, 1, 1
	m[12] = 0.25 // translate right
	tex := make([]byte, 8*8*4)
	for i := range tex {
		tex[i] = byte(i * 7)
	}
	stream := []Command{
		CmdViewport(0, 0, 64, 64),
		CmdClearColor(0.05, 0.1, 0.15, 1),
		CmdClear(ClearColorBit | ClearDepthBit),
		CmdCreateProgram(1),
		CmdUseProgram(1),
		CmdEnable(CapBlend),
		CmdBlendFunc(BlendSrcAlpha, BlendOneMinusSrcA),
		CmdGenTexture(1),
		CmdBindTexture(TexTarget2D, 1),
		CmdTexImage2D(TexTarget2D, 0, 8, 8, tex),
		CmdUniform1i(LocSampler, 0),
		CmdUniformMatrix4fv(LocMVP, m),
		CmdUniform4f(LocTint, 0.9, 0.8, 1, 0.7),
		CmdVertexAttribPointerResolved(LocPosition, 2, 0,
			FloatsToBytes([]float32{-0.8, -0.8, 0.6, -0.5, -0.1, 0.7})),
		CmdEnableVertexAttribArray(LocPosition),
		CmdVertexAttribPointerResolved(LocTexCoord, 2, 0,
			FloatsToBytes([]float32{0, 0, 1, 0, 0.5, 1})),
		CmdEnableVertexAttribArray(LocTexCoord),
		CmdDrawArrays(DrawModeTriangles, 0, 3),
		CmdSwapBuffers(),
	}
	if _, err := gpu.ExecuteAll(stream); err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(gpu.FB.Pix)
	got := hex.EncodeToString(sum[:8])
	const want = "028d340408b8f8eb"
	if got != want {
		t.Fatalf("framebuffer hash = %s, want %s — rasterization rules changed", got, want)
	}
	// Regardless of pinning, the same stream must re-produce the same
	// bytes within a build.
	gpu2 := NewGPU(64, 64)
	if _, err := gpu2.ExecuteAll(stream); err != nil {
		t.Fatal(err)
	}
	sum2 := sha256.Sum256(gpu2.FB.Pix)
	if sum != sum2 {
		t.Fatal("identical streams produced different framebuffers")
	}
}
