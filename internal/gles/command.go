// Package gles models the OpenGL ES 2.0 client/server interface that
// GBooster intercepts and offloads. It provides:
//
//   - a compact command representation (Command) covering the GLES 2.0
//     subset exercised by the workload generators,
//   - a stateful server-side Context (the "OpenGL context" of §VI-B),
//   - a software rasterizer GPU that genuinely executes draw calls into
//     an RGBA framebuffer, and
//   - a per-command workload cost model used for GPU-time accounting
//     (after TimeGraph-style offline profiling, paper §VI-C).
//
// The real system hooks the closed-source Android GLES driver; this
// package is the substituted, fully observable equivalent. Shaders are
// "compiled" by declaration scanning, and the rasterizer implements a
// fixed vertex/fragment pipeline (MVP transform, vertex color, single
// texture) that matches the conventions used by the workload package.
package gles

import (
	"fmt"
	"hash/fnv"
)

// Op identifies one GLES (or EGL) entry point.
type Op uint16

// Supported operations. The set covers every call emitted by the
// workload generators plus the calls §IV of the paper discusses by name
// (glVertexAttribPointer, glDrawElements, eglSwapBuffers).
const (
	OpClearColor Op = iota + 1
	OpClear
	OpViewport
	OpEnable
	OpDisable
	OpBlendFunc
	OpDepthFunc
	OpGenTexture
	OpDeleteTexture
	OpActiveTexture
	OpBindTexture
	OpTexImage2D
	OpTexParameteri
	OpGenBuffer
	OpDeleteBuffer
	OpBindBuffer
	OpBufferData
	OpBufferSubData
	OpCreateShader
	OpShaderSource
	OpCompileShader
	OpDeleteShader
	OpCreateProgram
	OpAttachShader
	OpLinkProgram
	OpUseProgram
	OpDeleteProgram
	OpUniform1i
	OpUniform1f
	OpUniform2f
	OpUniform4f
	OpUniformMatrix4fv
	OpVertexAttribPointer
	OpEnableVertexAttribArray
	OpDisableVertexAttribArray
	OpDrawArrays
	OpDrawElements
	OpFlush
	OpFinish
	OpSwapBuffers // EGL: frame boundary; paper rewrites its behaviour (§IV-C, §VI-A)
	OpScissor

	opSentinel // keep last
)

var _opNames = map[Op]string{
	OpClearColor:               "glClearColor",
	OpClear:                    "glClear",
	OpViewport:                 "glViewport",
	OpEnable:                   "glEnable",
	OpDisable:                  "glDisable",
	OpBlendFunc:                "glBlendFunc",
	OpDepthFunc:                "glDepthFunc",
	OpGenTexture:               "glGenTextures",
	OpDeleteTexture:            "glDeleteTextures",
	OpActiveTexture:            "glActiveTexture",
	OpBindTexture:              "glBindTexture",
	OpTexImage2D:               "glTexImage2D",
	OpTexParameteri:            "glTexParameteri",
	OpGenBuffer:                "glGenBuffers",
	OpDeleteBuffer:             "glDeleteBuffers",
	OpBindBuffer:               "glBindBuffer",
	OpBufferData:               "glBufferData",
	OpBufferSubData:            "glBufferSubData",
	OpCreateShader:             "glCreateShader",
	OpShaderSource:             "glShaderSource",
	OpCompileShader:            "glCompileShader",
	OpDeleteShader:             "glDeleteShader",
	OpCreateProgram:            "glCreateProgram",
	OpAttachShader:             "glAttachShader",
	OpLinkProgram:              "glLinkProgram",
	OpUseProgram:               "glUseProgram",
	OpDeleteProgram:            "glDeleteProgram",
	OpUniform1i:                "glUniform1i",
	OpUniform1f:                "glUniform1f",
	OpUniform2f:                "glUniform2f",
	OpUniform4f:                "glUniform4f",
	OpUniformMatrix4fv:         "glUniformMatrix4fv",
	OpVertexAttribPointer:      "glVertexAttribPointer",
	OpEnableVertexAttribArray:  "glEnableVertexAttribArray",
	OpDisableVertexAttribArray: "glDisableVertexAttribArray",
	OpDrawArrays:               "glDrawArrays",
	OpDrawElements:             "glDrawElements",
	OpFlush:                    "glFlush",
	OpFinish:                   "glFinish",
	OpSwapBuffers:              "eglSwapBuffers",
	OpScissor:                  "glScissor",
}

// String returns the GL entry-point name for the op.
func (o Op) String() string {
	if s, ok := _opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("Op(%d)", uint16(o))
}

// Valid reports whether o names a known operation.
func (o Op) Valid() bool { return o > 0 && o < opSentinel }

// NumOps returns the number of defined operations; useful for
// table-driven code that must cover the whole command set.
func NumOps() int { return int(opSentinel) - 1 }

// AllOps returns every defined operation in declaration order. The hook
// layer uses it to populate library symbol tables covering the full
// command set.
func AllOps() []Op {
	out := make([]Op, 0, NumOps())
	for op := Op(1); op < opSentinel; op++ {
		out = append(out, op)
	}
	return out
}

// Enable/Disable capabilities and enum values. Values mirror the real
// GLES constants where it costs nothing, so traces read naturally.
const (
	CapBlend       = 0x0BE2
	CapDepthTest   = 0x0B71
	CapScissorTest = 0x0C11
	CapCullFace    = 0x0B44
)

// Clear bits.
const (
	ClearColorBit = 0x00004000
	ClearDepthBit = 0x00000100
)

// Texture and buffer targets.
const (
	TexTarget2D         = 0x0DE1
	BufTargetArray      = 0x8892
	BufTargetElemArray  = 0x8893
	ShaderTypeVertex    = 0x8B31
	ShaderTypeFragment  = 0x8B30
	TexFormatRGBA       = 0x1908
	TexFormatRGB        = 0x1907
	AttribTypeFloat     = 0x1406
	IndexTypeUshort     = 0x1403
	DrawModeTriangles   = 0x0004
	DrawModeTriStrip    = 0x0005
	BlendSrcAlpha       = 0x0302
	BlendOneMinusSrcA   = 0x0303
	UsageStaticDraw     = 0x88E4
	UsageDynamicDraw    = 0x88E8
	TexMinFilter        = 0x2801
	TexMagFilter        = 0x2800
	FilterNearest       = 0x2600
	FilterLinear        = 0x2601
	DepthFuncLess       = 0x0201
	DepthFuncLessEqual  = 0x0203
	TextureUnit0        = 0x84C0
	MaxVertexAttribs    = 16
	MaxTextureUnits     = 8
	UniformLocationSize = 1024
)

// NoDataLen marks a Command whose Data length was unknown at intercept
// time. This happens exactly for client-array glVertexAttribPointer: the
// pointer's extent is only revealed by a later draw call (§IV-B). The
// wire encoder defers such commands until the length is resolved.
const NoDataLen = -1

// Command is one intercepted GLES call. Parameters are split by type:
// Ints carries integer/enum/boolean arguments in call order, Floats
// carries float arguments in call order, and Data carries the payload a
// pointer argument refers to (texel data, buffer data, index data,
// client vertex arrays, shader source bytes).
type Command struct {
	Op Op
	// Ints holds the integer arguments (ids, enums, sizes, offsets).
	Ints []int32
	// Floats holds the float arguments (colors, uniform values,
	// matrices in column-major order).
	Floats []float32
	// Data is the resolved pointer payload, if any.
	Data []byte
	// DataLen is len(Data) once known, or NoDataLen when the payload
	// extent is still unresolved (deferred glVertexAttribPointer).
	DataLen int32
	// ClientPtr identifies the client-side array a deferred command's
	// pointer refers to, so a later draw call can resolve its extent.
	// Zero when the command has no deferred payload.
	ClientPtr uint64
}

// Clone returns a deep copy of the command. Commands cross goroutine
// and cache boundaries, so boundaries copy per the style guide.
func (c Command) Clone() Command {
	out := Command{Op: c.Op, DataLen: c.DataLen, ClientPtr: c.ClientPtr}
	if len(c.Ints) > 0 {
		out.Ints = append([]int32(nil), c.Ints...)
	}
	if len(c.Floats) > 0 {
		out.Floats = append([]float32(nil), c.Floats...)
	}
	if len(c.Data) > 0 {
		out.Data = append([]byte(nil), c.Data...)
	}
	return out
}

// Int returns Ints[i], or 0 when the argument list is shorter. Malformed
// commands degrade to no-ops rather than panicking the server.
func (c Command) Int(i int) int32 {
	if i < 0 || i >= len(c.Ints) {
		return 0
	}
	return c.Ints[i]
}

// Float returns Floats[i], or 0 when the argument list is shorter.
func (c Command) Float(i int) float32 {
	if i < 0 || i >= len(c.Floats) {
		return 0
	}
	return c.Floats[i]
}

// String renders the command for traces and test failures.
func (c Command) String() string {
	return fmt.Sprintf("%s(ints=%v floats=%d data=%dB)", c.Op, c.Ints, len(c.Floats), len(c.Data))
}

// MutatesState reports whether the command alters durable OpenGL
// context state (textures, buffers, programs, uniforms, attrib
// bindings, global toggles). §VI-B replicates exactly these commands to
// every service device to keep contexts consistent; draws and frame
// boundaries are not replicated.
func (c Command) MutatesState() bool {
	switch c.Op {
	case OpDrawArrays, OpDrawElements, OpClear, OpSwapBuffers, OpFlush, OpFinish:
		return false
	default:
		return true
	}
}

// IsDraw reports whether the command triggers rasterization work.
func (c Command) IsDraw() bool {
	return c.Op == OpDrawArrays || c.Op == OpDrawElements || c.Op == OpClear
}

// IsFrameBoundary reports whether the command ends a rendering request
// (a frame) — the paper's unit of dispatch in §VI.
func (c Command) IsFrameBoundary() bool { return c.Op == OpSwapBuffers }

// UniformLocation derives the uniform/attribute location for a name.
//
// In real GLES the application asks the driver (glGetUniformLocation),
// which would force a synchronous round trip in an offloading system.
// GBooster's substituted driver makes locations a pure function of the
// name so client and every service device agree without communication;
// this stands in for the paper's implicit handling of value-returning
// calls. Locations fall in [0, UniformLocationSize).
func UniformLocation(name string) int32 {
	h := fnv.New32a()
	_, _ = h.Write([]byte(name))
	return int32(h.Sum32() % UniformLocationSize)
}

// Well-known attribute and uniform locations for the fixed pipeline the
// rasterizer implements. Workloads bind positions/colors/texcoords to
// these names; the rasterizer recognizes the derived locations.
var (
	LocPosition = UniformLocation("aPosition")
	LocColor    = UniformLocation("aColor")
	LocTexCoord = UniformLocation("aTexCoord")
	LocMVP      = UniformLocation("uMVP")
	LocTint     = UniformLocation("uTint")
	LocSampler  = UniformLocation("uTexture")
)
