package gles

import "testing"

func TestWellKnownLocationsDistinct(t *testing.T) {
	locs := map[int32]string{}
	for name, loc := range map[string]int32{
		"aPosition": LocPosition, "aColor": LocColor, "aTexCoord": LocTexCoord,
		"uMVP": LocMVP, "uTint": LocTint, "uTexture": LocSampler,
	} {
		if prev, dup := locs[loc]; dup {
			t.Fatalf("location collision: %q and %q both map to %d", prev, name, loc)
		}
		locs[loc] = name
	}
}
