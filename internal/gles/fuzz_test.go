package gles

import (
	"testing"

	"github.com/gbooster/gbooster/internal/sim"
)

// TestExecuteNeverPanicsOnArbitraryCommands throws random commands —
// valid ops with garbage arguments — at the GPU. A real driver raises
// GL errors; it never crashes the process, and neither may this one.
func TestExecuteNeverPanicsOnArbitraryCommands(t *testing.T) {
	rng := sim.NewRNG(71)
	gpu := NewGPU(32, 32)
	for trial := 0; trial < 20000; trial++ {
		cmd := Command{
			Op: Op(rng.Intn(NumOps() + 4)), // includes invalid ops
		}
		for i := rng.Intn(8); i > 0; i-- {
			cmd.Ints = append(cmd.Ints, int32(rng.Uint64()))
		}
		for i := rng.Intn(20); i > 0; i-- {
			cmd.Floats = append(cmd.Floats, float32(rng.Norm(0, 100)))
		}
		if rng.Bool(0.4) {
			cmd.Data = make([]byte, rng.Intn(256))
			for i := range cmd.Data {
				cmd.Data[i] = byte(rng.Uint64())
			}
			cmd.DataLen = int32(len(cmd.Data))
		}
		_, _ = gpu.Execute(cmd) // errors fine, panics not
	}
}

// TestExecuteNeverPanicsOnHostileDraws targets the draw paths with
// arguments crafted to overrun buffers if bounds checks were missing.
func TestExecuteNeverPanicsOnHostileDraws(t *testing.T) {
	gpu := NewGPU(16, 16)
	setup := []Command{
		CmdCreateProgram(1), CmdUseProgram(1),
		CmdVertexAttribPointerResolved(LocPosition, 2, 0, FloatsToBytes([]float32{0, 0, 1, 0, 0, 1})),
		CmdEnableVertexAttribArray(LocPosition),
	}
	for _, c := range setup {
		if _, err := gpu.Execute(c); err != nil {
			t.Fatal(err)
		}
	}
	hostile := []Command{
		CmdDrawArrays(DrawModeTriangles, 0, 1<<30),
		CmdDrawArrays(DrawModeTriangles, -5, 10),
		CmdDrawArrays(DrawModeTriangles, 1<<30, 1<<30),
		CmdDrawElementsClient(DrawModeTriangles, []uint16{0, 1, 65535}),
		CmdDrawElementsVBO(DrawModeTriangles, 1<<30, 0),
		{Op: OpDrawElements, Ints: []int32{DrawModeTriangles, -1, IndexTypeUshort, 0}},
		CmdDrawArrays(DrawModeTriStrip, 0, 2), // too few for a triangle
	}
	for i, c := range hostile {
		if _, err := gpu.Execute(c); err == nil {
			// Some (like the strip with 2 vertices) legitimately no-op.
			continue
		} else {
			_ = i
		}
	}
}

// TestContextApplyNeverPanicsOnShortArgs drops each op's arguments
// entirely — the accessors must degrade, not panic.
func TestContextApplyNeverPanicsOnShortArgs(t *testing.T) {
	ctx := NewContext()
	for _, op := range AllOps() {
		_ = ctx.Apply(Command{Op: op})
	}
}
