package gles

import (
	"testing"
	"testing/quick"
)

// setupDrawCtx builds a GPU with a linked program and viewport covering
// the whole framebuffer.
func setupDrawCtx(t testing.TB, w, h int) *GPU {
	t.Helper()
	gpu := NewGPU(w, h)
	for _, cmd := range []Command{
		CmdViewport(0, 0, int32(w), int32(h)),
		CmdCreateShader(ShaderTypeVertex, 1),
		CmdShaderSource(1, "attribute vec2 aPosition; uniform mat4 uMVP;"),
		CmdCompileShader(1),
		CmdCreateShader(ShaderTypeFragment, 2),
		CmdShaderSource(2, "uniform vec4 uTint; uniform sampler2D uTexture;"),
		CmdCompileShader(2),
		CmdCreateProgram(1),
		CmdAttachShader(1, 1),
		CmdAttachShader(1, 2),
		CmdLinkProgram(1),
		CmdUseProgram(1),
	} {
		if _, err := gpu.Execute(cmd); err != nil {
			t.Fatalf("setup %v: %v", cmd, err)
		}
	}
	return gpu
}

func drawFullScreenQuad(t *testing.T, gpu *GPU) {
	t.Helper()
	quad := FloatsToBytes([]float32{-1, -1, 1, -1, -1, 1, 1, -1, 1, 1, -1, 1})
	mustExec(t, gpu, CmdVertexAttribPointerResolved(LocPosition, 2, 0, quad))
	mustExec(t, gpu, CmdEnableVertexAttribArray(LocPosition))
	mustExec(t, gpu, CmdDrawArrays(DrawModeTriangles, 0, 6))
}

func mustExec(t testing.TB, gpu *GPU, cmd Command) ExecResult {
	t.Helper()
	res, err := gpu.Execute(cmd)
	if err != nil {
		t.Fatalf("execute %v: %v", cmd, err)
	}
	return res
}

func TestClearFillsFramebuffer(t *testing.T) {
	gpu := NewGPU(8, 8)
	mustExec(t, gpu, CmdClearColor(1, 0, 0, 1))
	res := mustExec(t, gpu, CmdClear(ClearColorBit|ClearDepthBit))
	if res.Fragments != 64 {
		t.Fatalf("clear fragments = %d, want 64", res.Fragments)
	}
	r, g, b, a := gpu.FB.At(3, 3)
	if r != 255 || g != 0 || b != 0 || a != 255 {
		t.Fatalf("cleared pixel = %d,%d,%d,%d, want red", r, g, b, a)
	}
	for _, d := range gpu.FB.Depth {
		if d != 1 {
			t.Fatal("depth not cleared to far plane")
		}
	}
}

func TestDrawFullScreenQuadCoversFramebuffer(t *testing.T) {
	gpu := setupDrawCtx(t, 16, 16)
	mustExec(t, gpu, CmdUniform4f(LocTint, 0, 1, 0, 1))
	drawFullScreenQuad(t, gpu)
	covered := 0
	for y := 0; y < 16; y++ {
		for x := 0; x < 16; x++ {
			_, g, _, _ := gpu.FB.At(x, y)
			if g == 255 {
				covered++
			}
		}
	}
	if covered < 16*16*95/100 {
		t.Fatalf("full-screen quad covered only %d/256 pixels", covered)
	}
	if gpu.FragmentsShaded < int64(covered) {
		t.Fatalf("FragmentsShaded = %d < covered %d", gpu.FragmentsShaded, covered)
	}
}

func TestDrawRespectsWindingNormalization(t *testing.T) {
	// Both CW and CCW triangles must rasterize (no silent culling).
	for name, verts := range map[string][]float32{
		"ccw": {-1, -1, 1, -1, 0, 1},
		"cw":  {-1, -1, 0, 1, 1, -1},
	} {
		gpu := setupDrawCtx(t, 16, 16)
		mustExec(t, gpu, CmdUniform4f(LocTint, 1, 1, 1, 1))
		mustExec(t, gpu, CmdVertexAttribPointerResolved(LocPosition, 2, 0, FloatsToBytes(verts)))
		mustExec(t, gpu, CmdEnableVertexAttribArray(LocPosition))
		res := mustExec(t, gpu, CmdDrawArrays(DrawModeTriangles, 0, 3))
		if res.Fragments == 0 {
			t.Errorf("%s triangle shaded no fragments", name)
		}
	}
}

func TestDrawDegenerateTriangleShadesNothing(t *testing.T) {
	gpu := setupDrawCtx(t, 16, 16)
	line := FloatsToBytes([]float32{-1, -1, 0, 0, 1, 1}) // collinear
	mustExec(t, gpu, CmdVertexAttribPointerResolved(LocPosition, 2, 0, line))
	mustExec(t, gpu, CmdEnableVertexAttribArray(LocPosition))
	res := mustExec(t, gpu, CmdDrawArrays(DrawModeTriangles, 0, 3))
	if res.Fragments != 0 {
		t.Fatalf("degenerate triangle shaded %d fragments", res.Fragments)
	}
}

func TestDrawOffscreenTriangleClipped(t *testing.T) {
	gpu := setupDrawCtx(t, 16, 16)
	off := FloatsToBytes([]float32{5, 5, 6, 5, 5, 6}) // entirely outside NDC
	mustExec(t, gpu, CmdVertexAttribPointerResolved(LocPosition, 2, 0, off))
	mustExec(t, gpu, CmdEnableVertexAttribArray(LocPosition))
	res := mustExec(t, gpu, CmdDrawArrays(DrawModeTriangles, 0, 3))
	if res.Fragments != 0 {
		t.Fatalf("offscreen triangle shaded %d fragments", res.Fragments)
	}
}

func TestVertexColorInterpolation(t *testing.T) {
	gpu := setupDrawCtx(t, 32, 32)
	quad := FloatsToBytes([]float32{-1, -1, 1, -1, -1, 1, 1, -1, 1, 1, -1, 1})
	colors := FloatsToBytes([]float32{
		1, 0, 0, 1 /**/, 1, 0, 0, 1 /**/, 1, 0, 0, 1,
		1, 0, 0, 1 /**/, 1, 0, 0, 1 /**/, 1, 0, 0, 1,
	})
	mustExec(t, gpu, CmdVertexAttribPointerResolved(LocPosition, 2, 0, quad))
	mustExec(t, gpu, CmdEnableVertexAttribArray(LocPosition))
	mustExec(t, gpu, CmdVertexAttribPointerResolved(LocColor, 4, 0, colors))
	mustExec(t, gpu, CmdEnableVertexAttribArray(LocColor))
	mustExec(t, gpu, CmdDrawArrays(DrawModeTriangles, 0, 6))
	r, g, _, _ := gpu.FB.At(16, 16)
	if r != 255 || g != 0 {
		t.Fatalf("vertex-colored pixel = r%d g%d, want red", r, g)
	}
}

func TestTexturedDraw(t *testing.T) {
	gpu := setupDrawCtx(t, 16, 16)
	// 1x1 blue texture.
	mustExec(t, gpu, CmdGenTexture(1))
	mustExec(t, gpu, CmdBindTexture(TexTarget2D, 1))
	mustExec(t, gpu, CmdTexImage2D(TexTarget2D, 0, 1, 1, []byte{0, 0, 255, 255}))
	mustExec(t, gpu, CmdUniform1i(LocSampler, 0))
	quad := FloatsToBytes([]float32{-1, -1, 1, -1, -1, 1, 1, -1, 1, 1, -1, 1})
	uvs := FloatsToBytes([]float32{0, 0, 1, 0, 0, 1, 1, 0, 1, 1, 0, 1})
	mustExec(t, gpu, CmdVertexAttribPointerResolved(LocPosition, 2, 0, quad))
	mustExec(t, gpu, CmdEnableVertexAttribArray(LocPosition))
	mustExec(t, gpu, CmdVertexAttribPointerResolved(LocTexCoord, 2, 0, uvs))
	mustExec(t, gpu, CmdEnableVertexAttribArray(LocTexCoord))
	mustExec(t, gpu, CmdDrawArrays(DrawModeTriangles, 0, 6))
	r, g, b, _ := gpu.FB.At(8, 8)
	if r != 0 || g != 0 || b != 255 {
		t.Fatalf("textured pixel = %d,%d,%d, want blue", r, g, b)
	}
}

func TestDepthTest(t *testing.T) {
	gpu := setupDrawCtx(t, 16, 16)
	mustExec(t, gpu, CmdEnable(CapDepthTest))
	mustExec(t, gpu, CmdClear(ClearDepthBit))
	tri := func(z float32) []byte {
		return FloatsToBytes([]float32{-1, -1, z, 1, -1, z, 0, 1, z})
	}
	// Near red triangle first.
	mustExec(t, gpu, CmdUniform4f(LocTint, 1, 0, 0, 1))
	mustExec(t, gpu, CmdVertexAttribPointerResolved(LocPosition, 3, 0, tri(-0.5)))
	mustExec(t, gpu, CmdEnableVertexAttribArray(LocPosition))
	mustExec(t, gpu, CmdDrawArrays(DrawModeTriangles, 0, 3))
	// Far green triangle second must be rejected by the depth test.
	mustExec(t, gpu, CmdUniform4f(LocTint, 0, 1, 0, 1))
	mustExec(t, gpu, CmdVertexAttribPointerResolved(LocPosition, 3, 0, tri(0.5)))
	res := mustExec(t, gpu, CmdDrawArrays(DrawModeTriangles, 0, 3))
	if res.Fragments != 0 {
		t.Fatalf("occluded triangle shaded %d fragments", res.Fragments)
	}
	r, g, _, _ := gpu.FB.At(8, 10)
	if r != 255 || g != 0 {
		t.Fatalf("depth-tested pixel = r%d g%d, want red", r, g)
	}
}

func TestAlphaBlend(t *testing.T) {
	gpu := setupDrawCtx(t, 8, 8)
	mustExec(t, gpu, CmdClearColor(0, 0, 0, 1))
	mustExec(t, gpu, CmdClear(ClearColorBit))
	mustExec(t, gpu, CmdEnable(CapBlend))
	mustExec(t, gpu, CmdBlendFunc(BlendSrcAlpha, BlendOneMinusSrcA))
	mustExec(t, gpu, CmdUniform4f(LocTint, 1, 1, 1, 0.5))
	drawFullScreenQuad(t, gpu)
	r, _, _, _ := gpu.FB.At(4, 4)
	if r < 100 || r > 155 {
		t.Fatalf("blended red channel = %d, want ~128", r)
	}
}

func TestMVPTransformTranslation(t *testing.T) {
	gpu := setupDrawCtx(t, 20, 20)
	// Identity with x translation +0.5 NDC (column-major).
	m := [16]float32{1, 0, 0, 0, 0, 1, 0, 0, 0, 0, 1, 0, 0.5, 0, 0, 1}
	mustExec(t, gpu, CmdUniformMatrix4fv(LocMVP, m))
	mustExec(t, gpu, CmdUniform4f(LocTint, 1, 1, 1, 1))
	// Small triangle near origin moves right of center.
	tri := FloatsToBytes([]float32{-0.1, -0.1, 0.1, -0.1, 0, 0.1})
	mustExec(t, gpu, CmdVertexAttribPointerResolved(LocPosition, 2, 0, tri))
	mustExec(t, gpu, CmdEnableVertexAttribArray(LocPosition))
	mustExec(t, gpu, CmdDrawArrays(DrawModeTriangles, 0, 3))
	leftLit, rightLit := 0, 0
	for y := 0; y < 20; y++ {
		for x := 0; x < 20; x++ {
			if r, _, _, _ := gpu.FB.At(x, y); r == 255 {
				if x < 10 {
					leftLit++
				} else {
					rightLit++
				}
			}
		}
	}
	if rightLit == 0 || leftLit > rightLit {
		t.Fatalf("translated triangle lit left=%d right=%d, want right side", leftLit, rightLit)
	}
}

func TestTriangleStripMode(t *testing.T) {
	gpu := setupDrawCtx(t, 16, 16)
	mustExec(t, gpu, CmdUniform4f(LocTint, 1, 1, 1, 1))
	strip := FloatsToBytes([]float32{-1, -1, 1, -1, -1, 1, 1, 1})
	mustExec(t, gpu, CmdVertexAttribPointerResolved(LocPosition, 2, 0, strip))
	mustExec(t, gpu, CmdEnableVertexAttribArray(LocPosition))
	res := mustExec(t, gpu, CmdDrawArrays(DrawModeTriStrip, 0, 4))
	if res.Fragments < 16*16*9/10 {
		t.Fatalf("strip quad shaded %d fragments, want near 256", res.Fragments)
	}
}

func TestDrawElementsClientIndices(t *testing.T) {
	gpu := setupDrawCtx(t, 16, 16)
	mustExec(t, gpu, CmdUniform4f(LocTint, 1, 1, 1, 1))
	verts := FloatsToBytes([]float32{-1, -1, 1, -1, 1, 1, -1, 1})
	mustExec(t, gpu, CmdVertexAttribPointerResolved(LocPosition, 2, 0, verts))
	mustExec(t, gpu, CmdEnableVertexAttribArray(LocPosition))
	res := mustExec(t, gpu, CmdDrawElementsClient(DrawModeTriangles, []uint16{0, 1, 2, 0, 2, 3}))
	if res.Fragments < 16*16*9/10 {
		t.Fatalf("indexed quad shaded %d fragments", res.Fragments)
	}
}

func TestDrawElementsVBOIndices(t *testing.T) {
	gpu := setupDrawCtx(t, 16, 16)
	mustExec(t, gpu, CmdUniform4f(LocTint, 1, 1, 1, 1))
	verts := FloatsToBytes([]float32{-1, -1, 1, -1, 1, 1, -1, 1})
	mustExec(t, gpu, CmdVertexAttribPointerResolved(LocPosition, 2, 0, verts))
	mustExec(t, gpu, CmdEnableVertexAttribArray(LocPosition))
	mustExec(t, gpu, CmdGenBuffer(9))
	mustExec(t, gpu, CmdBindBuffer(BufTargetElemArray, 9))
	mustExec(t, gpu, CmdBufferData(BufTargetElemArray, U16ToBytes([]uint16{0, 1, 2, 0, 2, 3}), UsageStaticDraw))
	res := mustExec(t, gpu, CmdDrawElementsVBO(DrawModeTriangles, 6, 0))
	if res.Fragments < 16*16*9/10 {
		t.Fatalf("VBO-indexed quad shaded %d fragments", res.Fragments)
	}
	// Out-of-range offset errors.
	if _, err := gpu.Execute(CmdDrawElementsVBO(DrawModeTriangles, 6, 100)); err == nil {
		t.Fatal("out-of-range index offset succeeded")
	}
}

func TestDrawElementsShortClientData(t *testing.T) {
	gpu := setupDrawCtx(t, 8, 8)
	verts := FloatsToBytes([]float32{-1, -1, 1, -1, 1, 1})
	mustExec(t, gpu, CmdVertexAttribPointerResolved(LocPosition, 2, 0, verts))
	mustExec(t, gpu, CmdEnableVertexAttribArray(LocPosition))
	cmd := Command{Op: OpDrawElements, Ints: []int32{DrawModeTriangles, 6, IndexTypeUshort, 0}, Data: []byte{0, 0}}
	if _, err := gpu.Execute(cmd); err == nil {
		t.Fatal("draw with short index data succeeded")
	}
}

func TestSwapBuffersMarksFrame(t *testing.T) {
	gpu := NewGPU(4, 4)
	res := mustExec(t, gpu, CmdSwapBuffers())
	if !res.FrameDone || gpu.FramesCompleted != 1 {
		t.Fatalf("SwapBuffers result = %+v, frames = %d", res, gpu.FramesCompleted)
	}
}

func TestExecuteAll(t *testing.T) {
	gpu := NewGPU(4, 4)
	res, err := gpu.ExecuteAll([]Command{
		CmdClearColor(0, 0, 1, 1),
		CmdClear(ClearColorBit),
		CmdSwapBuffers(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fragments != 16 || !res.FrameDone {
		t.Fatalf("ExecuteAll result = %+v", res)
	}
	// Stops at first error.
	_, err = gpu.ExecuteAll([]Command{CmdUseProgram(42), CmdClear(ClearColorBit)})
	if err == nil {
		t.Fatal("ExecuteAll did not surface error")
	}
}

func TestFramebufferImageAndBounds(t *testing.T) {
	fb := NewFramebuffer(3, 2)
	fb.Pix[0] = 200
	img := fb.Image()
	if img.Bounds().Dx() != 3 || img.Bounds().Dy() != 2 {
		t.Fatalf("image bounds = %v", img.Bounds())
	}
	if img.Pix[0] != 200 {
		t.Fatal("Image did not copy pixels")
	}
	img.Pix[0] = 10
	if fb.Pix[0] != 200 {
		t.Fatal("Image aliases framebuffer")
	}
	if r, _, _, _ := fb.At(-1, 0); r != 0 {
		t.Fatal("out-of-bounds At not zero")
	}
}

func TestNewFramebufferPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewFramebuffer(0,5) did not panic")
		}
	}()
	NewFramebuffer(0, 5)
}

func TestEstimateCostProperties(t *testing.T) {
	ctx := NewContext()
	if c := EstimateCost(ctx, 640, 480, CmdClear(ClearColorBit)); c != 640*480 {
		t.Fatalf("clear cost = %d", c)
	}
	if c := EstimateCost(ctx, 640, 480, CmdSwapBuffers()); c != 0 {
		t.Fatalf("swap cost = %d", c)
	}
	small := EstimateCost(ctx, 640, 480, CmdDrawArrays(DrawModeTriangles, 0, 30))
	big := EstimateCost(ctx, 640, 480, CmdDrawArrays(DrawModeTriangles, 0, 300))
	if small <= 0 || big <= small {
		t.Fatalf("draw cost monotonicity: small=%d big=%d", small, big)
	}
	// Cost capped at one framebuffer of overdraw (plus blend surcharge).
	huge := EstimateCost(ctx, 64, 64, CmdDrawArrays(DrawModeTriangles, 0, 3_000_000))
	if huge > int64(64*64)*2 {
		t.Fatalf("draw cost uncapped: %d", huge)
	}
	if c := EstimateCost(ctx, 640, 480, CmdTexImage2D(TexTarget2D, 0, 64, 64, nil)); c != 64*64 {
		t.Fatalf("teximage cost = %d", c)
	}
	if c := EstimateCost(ctx, 640, 480, CmdUseProgram(1)); c <= 0 {
		t.Fatalf("state-change cost = %d", c)
	}
}

func TestBytesRoundTripProperty(t *testing.T) {
	floats := func(vals []float32) bool {
		got := BytesToFloats(FloatsToBytes(vals))
		if len(got) != len(vals) {
			return false
		}
		for i := range vals {
			// NaN != NaN; compare bit patterns via encode-again.
			a, b := FloatsToBytes(vals[i:i+1]), FloatsToBytes(got[i:i+1])
			for k := range a {
				if a[k] != b[k] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(floats, nil); err != nil {
		t.Errorf("float round trip: %v", err)
	}
	u16s := func(vals []uint16) bool {
		got := BytesToU16(U16ToBytes(vals))
		if len(got) != len(vals) {
			return false
		}
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(u16s, nil); err != nil {
		t.Errorf("u16 round trip: %v", err)
	}
}

func TestRasterizerDeterministicProperty(t *testing.T) {
	// Property: executing the same stream twice on fresh GPUs produces
	// byte-identical framebuffers (required for multi-device
	// consistency, §VI-B).
	run := func() []byte {
		gpu := setupDrawCtx(t, 24, 24)
		mustExec(t, gpu, CmdUniform4f(LocTint, 0.7, 0.3, 0.9, 1))
		tri := FloatsToBytes([]float32{-0.8, -0.8, 0.9, -0.4, 0, 0.9})
		mustExec(t, gpu, CmdVertexAttribPointerResolved(LocPosition, 2, 0, tri))
		mustExec(t, gpu, CmdEnableVertexAttribArray(LocPosition))
		mustExec(t, gpu, CmdDrawArrays(DrawModeTriangles, 0, 3))
		return gpu.FB.Pix
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("framebuffers differ at byte %d", i)
		}
	}
}

func TestScissorClipsDraws(t *testing.T) {
	gpu := setupDrawCtx(t, 16, 16)
	mustExec(t, gpu, CmdUniform4f(LocTint, 1, 1, 1, 1))
	mustExec(t, gpu, CmdEnable(CapScissorTest))
	// Scissor to the left half (GL coordinates: origin bottom-left).
	mustExec(t, gpu, CmdScissor(0, 0, 8, 16))
	drawFullScreenQuad(t, gpu)
	leftLit, rightLit := 0, 0
	for y := 0; y < 16; y++ {
		for x := 0; x < 16; x++ {
			if r, _, _, _ := gpu.FB.At(x, y); r == 255 {
				if x < 8 {
					leftLit++
				} else {
					rightLit++
				}
			}
		}
	}
	if rightLit != 0 {
		t.Fatalf("scissored draw lit %d pixels outside the rect", rightLit)
	}
	if leftLit < 100 {
		t.Fatalf("scissored draw lit only %d pixels inside", leftLit)
	}
	// Disable: full screen again.
	mustExec(t, gpu, CmdDisable(CapScissorTest))
	res := mustExec(t, gpu, CmdDrawArrays(DrawModeTriangles, 0, 6))
	if res.Fragments < 200 {
		t.Fatalf("unscissored redraw shaded %d fragments", res.Fragments)
	}
	// Negative scissor rect is rejected.
	if _, err := gpu.Execute(CmdScissor(0, 0, -1, 4)); err == nil {
		t.Fatal("negative scissor accepted")
	}
}

func TestScissoredClear(t *testing.T) {
	gpu := NewGPU(16, 16)
	mustExec(t, gpu, CmdClearColor(0, 0, 1, 1))
	mustExec(t, gpu, CmdClear(ClearColorBit)) // full clear to blue
	mustExec(t, gpu, CmdEnable(CapScissorTest))
	mustExec(t, gpu, CmdScissor(4, 4, 8, 8))
	mustExec(t, gpu, CmdClearColor(1, 0, 0, 1))
	res := mustExec(t, gpu, CmdClear(ClearColorBit)) // red only in rect
	if res.Fragments != 64 {
		t.Fatalf("scissored clear touched %d fragments, want 64", res.Fragments)
	}
	// Inside the rect (GL y=4..12 -> rows 4..12 from bottom): red.
	if r, _, b, _ := gpu.FB.At(8, 8); r != 255 || b != 0 {
		t.Fatalf("inside-rect pixel = r%d b%d, want red", r, b)
	}
	// Outside: still blue.
	if r, _, b, _ := gpu.FB.At(1, 1); r != 0 || b != 255 {
		t.Fatalf("outside-rect pixel = r%d b%d, want blue", r, b)
	}
	// Hostile rect clamps rather than panicking.
	mustExec(t, gpu, CmdScissor(12, 12, 100, 100))
	if _, err := gpu.Execute(CmdClear(ClearColorBit)); err != nil {
		t.Fatal(err)
	}
}
