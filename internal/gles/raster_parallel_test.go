package gles

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"

	"github.com/gbooster/gbooster/internal/sim"
)

// uniqueDegrees dedupes a degree list (NumCPU may collide with the
// fixed entries).
func uniqueDegrees(ds []int) []int {
	seen := map[int]bool{}
	var out []int
	for _, d := range ds {
		if !seen[d] {
			seen[d] = true
			out = append(out, d)
		}
	}
	return out
}

func parDegrees() []int {
	return uniqueDegrees([]int{1, 2, 3, runtime.NumCPU()})
}

func benchDegrees() []int {
	return uniqueDegrees([]int{1, 2, 4, runtime.NumCPU()})
}

// triangleSoup emits count random triangles as a flat xyz vertex slice,
// spanning the NDC cube with some spill past the edges so clipping is
// exercised too.
func triangleSoup(rng *sim.RNG, count int) []float32 {
	verts := make([]float32, 0, count*9)
	coord := func() float32 { return float32(rng.Intn(3000))/1000 - 1.5 }
	depth := func() float32 { return float32(rng.Intn(2000))/1000 - 1 }
	for i := 0; i < count; i++ {
		for v := 0; v < 3; v++ {
			verts = append(verts, coord(), coord(), depth())
		}
	}
	return verts
}

// renderScene draws a randomized stream — clears, soups, a strip, a
// textured blended quad, a scissored pass — at the given band degree
// and returns the final framebuffer.
func renderScene(t *testing.T, w, h, par int, seed uint64) *GPU {
	t.Helper()
	rng := sim.NewRNG(seed)
	gpu := setupDrawCtx(t, w, h)
	gpu.SetParallelism(par)
	mustExec(t, gpu, CmdClearColor(0.1, 0.2, 0.3, 1))
	mustExec(t, gpu, CmdClear(ClearColorBit|ClearDepthBit))
	mustExec(t, gpu, CmdEnable(CapDepthTest))

	// Opaque depth-tested soup.
	mustExec(t, gpu, CmdUniform4f(LocTint, 0.9, 0.4, 0.2, 1))
	soup := triangleSoup(rng, 40)
	mustExec(t, gpu, CmdVertexAttribPointerResolved(LocPosition, 3, 0, FloatsToBytes(soup)))
	mustExec(t, gpu, CmdEnableVertexAttribArray(LocPosition))
	mustExec(t, gpu, CmdDrawArrays(DrawModeTriangles, 0, int32(len(soup)/3)))

	// Blended translucent soup on top: blend order is visible in the
	// output, so this catches any reordering across bands.
	mustExec(t, gpu, CmdEnable(CapBlend))
	mustExec(t, gpu, CmdBlendFunc(BlendSrcAlpha, BlendOneMinusSrcA))
	mustExec(t, gpu, CmdUniform4f(LocTint, 0.2, 0.8, 0.6, 0.5))
	soup2 := triangleSoup(rng, 30)
	mustExec(t, gpu, CmdVertexAttribPointerResolved(LocPosition, 3, 0, FloatsToBytes(soup2)))
	mustExec(t, gpu, CmdDrawArrays(DrawModeTriangles, 0, int32(len(soup2)/3)))

	// Triangle strip (odd-index winding swap must survive assembly).
	mustExec(t, gpu, CmdUniform4f(LocTint, 0.5, 0.5, 1, 0.7))
	strip := FloatsToBytes([]float32{-0.9, -0.9, 0, 0.9, -0.7, 0.2, -0.8, 0.6, -0.1, 0.7, 0.9, 0.4})
	mustExec(t, gpu, CmdVertexAttribPointerResolved(LocPosition, 3, 0, strip))
	mustExec(t, gpu, CmdDrawArrays(DrawModeTriStrip, 0, 4))

	// Textured blended quad.
	mustExec(t, gpu, CmdGenTexture(1))
	mustExec(t, gpu, CmdBindTexture(TexTarget2D, 1))
	tex := make([]byte, 8*8*4)
	for i := range tex {
		tex[i] = byte(rng.Intn(256))
	}
	mustExec(t, gpu, CmdTexImage2D(TexTarget2D, 0, 8, 8, tex))
	mustExec(t, gpu, CmdUniform1i(LocSampler, 0))
	mustExec(t, gpu, CmdUniform4f(LocTint, 1, 1, 1, 0.8))
	quad := FloatsToBytes([]float32{-0.6, -0.6, 0.6, -0.6, -0.6, 0.6, 0.6, -0.6, 0.6, 0.6, -0.6, 0.6})
	uvs := FloatsToBytes([]float32{0, 0, 1, 0, 0, 1, 1, 0, 1, 1, 0, 1})
	mustExec(t, gpu, CmdVertexAttribPointerResolved(LocPosition, 2, 0, quad))
	mustExec(t, gpu, CmdVertexAttribPointerResolved(LocTexCoord, 2, 0, uvs))
	mustExec(t, gpu, CmdEnableVertexAttribArray(LocTexCoord))
	mustExec(t, gpu, CmdDrawArrays(DrawModeTriangles, 0, 6))

	// Scissored final pass: the scissor box cuts across band
	// boundaries.
	mustExec(t, gpu, CmdEnable(CapScissorTest))
	mustExec(t, gpu, CmdScissor(int32(w/4), int32(h/4), int32(w/2), int32(h/2)))
	mustExec(t, gpu, CmdUniform4f(LocTint, 1, 0.3, 0.3, 0.4))
	soup3 := triangleSoup(rng, 10)
	mustExec(t, gpu, CmdVertexAttribPointerResolved(LocPosition, 3, 0, FloatsToBytes(soup3)))
	mustExec(t, gpu, CmdDisableVertexAttribArray(LocTexCoord))
	mustExec(t, gpu, CmdDrawArrays(DrawModeTriangles, 0, int32(len(soup3)/3)))
	return gpu
}

// TestParallelRasterByteIdentical is the raster half of the tentpole
// determinism property: every band degree must reproduce the serial
// framebuffer (color and depth) and fragment count exactly.
func TestParallelRasterByteIdentical(t *testing.T) {
	const w, h = 160, 120
	for seed := uint64(1); seed <= 4; seed++ {
		ref := renderScene(t, w, h, 1, seed)
		for _, par := range parDegrees()[1:] {
			t.Run(fmt.Sprintf("seed=%d/par=%d", seed, par), func(t *testing.T) {
				gpu := renderScene(t, w, h, par, seed)
				if !bytes.Equal(ref.FB.Pix, gpu.FB.Pix) {
					t.Fatal("color buffer diverged from serial render")
				}
				for i := range ref.FB.Depth {
					if ref.FB.Depth[i] != gpu.FB.Depth[i] {
						t.Fatalf("depth buffer diverged at %d", i)
					}
				}
				if ref.FragmentsShaded != gpu.FragmentsShaded {
					t.Fatalf("fragments shaded: serial %d, par=%d %d",
						ref.FragmentsShaded, par, gpu.FragmentsShaded)
				}
			})
		}
	}
}

// TestParallelRasterSmallFramebufferStaysSerial: below minParallelRows
// the band fan-out is skipped but output must of course still match.
func TestParallelRasterSmallFramebufferStaysSerial(t *testing.T) {
	const w, h = 32, 32
	ref := renderScene(t, w, h, 1, 7)
	gpu := renderScene(t, w, h, 8, 7)
	if !bytes.Equal(ref.FB.Pix, gpu.FB.Pix) {
		t.Fatal("small-framebuffer render diverged")
	}
}

// TestGPUSetParallelismDegree: n <= 0 resolves to the machine width.
func TestGPUSetParallelismDegree(t *testing.T) {
	gpu := NewGPU(4, 4)
	if gpu.par != 0 {
		t.Fatalf("new GPU par = %d, want serial default", gpu.par)
	}
	gpu.SetParallelism(0)
	if gpu.par != runtime.NumCPU() {
		t.Fatalf("SetParallelism(0) -> %d, want NumCPU", gpu.par)
	}
	gpu.SetParallelism(1)
	if gpu.par != 1 {
		t.Fatalf("SetParallelism(1) -> %d", gpu.par)
	}
}

// BenchmarkRaster measures band-parallel fill throughput across worker
// degrees at the paper's streaming resolution. The par=1 series is the
// serial reference for BENCH_dataplane.json speedups.
func BenchmarkRaster(b *testing.B) {
	const w, h = 1280, 720
	rng := sim.NewRNG(11)
	soup := triangleSoup(rng, 120)
	for _, par := range benchDegrees() {
		b.Run(fmt.Sprintf("%dx%d/par=%d", w, h, par), func(b *testing.B) {
			gpu := setupDrawCtx(b, w, h)
			gpu.SetParallelism(par)
			if _, err := gpu.Execute(CmdUniform4f(LocTint, 0.9, 0.5, 0.3, 1)); err != nil {
				b.Fatal(err)
			}
			if _, err := gpu.Execute(CmdVertexAttribPointerResolved(LocPosition, 3, 0, FloatsToBytes(soup))); err != nil {
				b.Fatal(err)
			}
			if _, err := gpu.Execute(CmdEnableVertexAttribArray(LocPosition)); err != nil {
				b.Fatal(err)
			}
			draw := CmdDrawArrays(DrawModeTriangles, 0, int32(len(soup)/3))
			b.SetBytes(int64(w * h * 4))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := gpu.Execute(draw); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
