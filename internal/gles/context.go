package gles

import (
	"errors"
	"fmt"
)

// Errors reported by Context.Apply. Servers log these; they never
// panic, mirroring how a GL driver records GL_INVALID_* errors.
var (
	ErrUnknownOp      = errors.New("gles: unknown op")
	ErrBadArguments   = errors.New("gles: bad arguments")
	ErrUnknownObject  = errors.New("gles: unknown object id")
	ErrNoProgram      = errors.New("gles: no program in use")
	ErrMissingAttrib  = errors.New("gles: draw without position attribute")
	ErrOutOfRangeDraw = errors.New("gles: draw references data out of range")
)

// Texture is a server-side texture object.
type Texture struct {
	ID     int32
	Width  int
	Height int
	// Pixels is RGBA, 4 bytes per texel, row-major.
	Pixels []byte
}

// Sample returns the texel at normalized coordinates (u, v) with
// repeat wrapping and nearest filtering.
func (t *Texture) Sample(u, v float32) (r, g, b, a uint8) {
	if t == nil || t.Width == 0 || t.Height == 0 {
		return 255, 255, 255, 255
	}
	u -= float32(int(u))
	if u < 0 {
		u++
	}
	v -= float32(int(v))
	if v < 0 {
		v++
	}
	x := int(u * float32(t.Width))
	y := int(v * float32(t.Height))
	if x >= t.Width {
		x = t.Width - 1
	}
	if y >= t.Height {
		y = t.Height - 1
	}
	i := (y*t.Width + x) * 4
	if i+3 >= len(t.Pixels) {
		return 255, 255, 255, 255
	}
	return t.Pixels[i], t.Pixels[i+1], t.Pixels[i+2], t.Pixels[i+3]
}

// Buffer is a server-side VBO/IBO.
type Buffer struct {
	ID    int32
	Data  []byte
	Usage int32
}

// Shader is a compiled shader object. Compilation is declaration
// scanning: the context only needs to know which attributes/uniforms a
// program declares.
type Shader struct {
	ID       int32
	Type     int32
	Source   string
	Compiled bool
}

// Program is a linked program object.
type Program struct {
	ID      int32
	Shaders []int32
	Linked  bool
}

// AttribBinding records a glVertexAttribPointer call.
type AttribBinding struct {
	Enabled bool
	Size    int32 // components per vertex: 1..4
	Type    int32 // AttribTypeFloat
	Stride  int32 // bytes between vertices; 0 = tightly packed
	Offset  int32 // byte offset when sourcing from a bound VBO
	// Buffer is the VBO id the pointer sources from, or 0 for a
	// client-side array carried in ClientData.
	Buffer     int32
	ClientData []byte
}

// Context is the OpenGL ES server-side state machine (§VI-B). All
// rendering state lives here; replicating the state-mutating command
// stream to two Contexts leaves them identical, which is the invariant
// GBooster's multi-device mode depends on.
type Context struct {
	Textures map[int32]*Texture
	Buffers  map[int32]*Buffer
	Shaders  map[int32]*Shader
	Programs map[int32]*Program

	ClearR, ClearG, ClearB, ClearA float32
	ViewportX, ViewportY           int32
	ViewportW, ViewportH           int32
	ScissorX, ScissorY             int32
	ScissorW, ScissorH             int32

	Caps map[int32]bool // Enable/Disable toggles

	BlendSrc, BlendDst int32
	DepthFn            int32

	ActiveTexUnit int32
	BoundTexture  [MaxTextureUnits]int32
	BoundArrayBuf int32
	BoundElemBuf  int32

	CurrentProgram int32
	Uniforms       map[int32][]float32 // location -> value (len 1..16)
	UniformInts    map[int32]int32     // sampler bindings etc.

	Attribs map[int32]*AttribBinding

	// Stats accumulate across Apply calls; the cost model and the
	// exogenous-feature extraction (§V-B) read them.
	Stats ContextStats
}

// ContextStats counts work the context has performed.
type ContextStats struct {
	Commands     int
	Draws        int
	TexelsLoaded int64
	BytesBuffers int64
	Errors       int
}

// NewContext returns an empty context with default GL state.
func NewContext() *Context {
	return &Context{
		Textures:    make(map[int32]*Texture),
		Buffers:     make(map[int32]*Buffer),
		Shaders:     make(map[int32]*Shader),
		Programs:    make(map[int32]*Program),
		Caps:        make(map[int32]bool),
		Uniforms:    make(map[int32][]float32),
		UniformInts: make(map[int32]int32),
		Attribs:     make(map[int32]*AttribBinding),
		ViewportW:   1, ViewportH: 1,
		BlendSrc: BlendSrcAlpha, BlendDst: BlendOneMinusSrcA,
		DepthFn: DepthFuncLess,
	}
}

// Apply executes one state-affecting command against the context. Draw
// commands only validate here; rasterization is the GPU's job. The
// returned error is diagnostic — the context stays usable.
func (c *Context) Apply(cmd Command) error {
	c.Stats.Commands++
	err := c.apply(cmd)
	if err != nil {
		c.Stats.Errors++
	}
	return err
}

func (c *Context) apply(cmd Command) error {
	switch cmd.Op {
	case OpClearColor:
		c.ClearR, c.ClearG, c.ClearB, c.ClearA = cmd.Float(0), cmd.Float(1), cmd.Float(2), cmd.Float(3)
	case OpClear:
		// Framebuffer-side effect handled by the GPU.
	case OpViewport:
		if cmd.Int(2) < 0 || cmd.Int(3) < 0 {
			return fmt.Errorf("%w: viewport %dx%d", ErrBadArguments, cmd.Int(2), cmd.Int(3))
		}
		c.ViewportX, c.ViewportY = cmd.Int(0), cmd.Int(1)
		c.ViewportW, c.ViewportH = cmd.Int(2), cmd.Int(3)
	case OpEnable:
		c.Caps[cmd.Int(0)] = true
	case OpDisable:
		c.Caps[cmd.Int(0)] = false
	case OpBlendFunc:
		c.BlendSrc, c.BlendDst = cmd.Int(0), cmd.Int(1)
	case OpDepthFunc:
		c.DepthFn = cmd.Int(0)
	case OpGenTexture:
		id := cmd.Int(0)
		if id <= 0 {
			return fmt.Errorf("%w: texture id %d", ErrBadArguments, id)
		}
		c.Textures[id] = &Texture{ID: id}
	case OpDeleteTexture:
		delete(c.Textures, cmd.Int(0))
	case OpActiveTexture:
		unit := cmd.Int(0) - TextureUnit0
		if unit < 0 || unit >= MaxTextureUnits {
			return fmt.Errorf("%w: texture unit %d", ErrBadArguments, cmd.Int(0))
		}
		c.ActiveTexUnit = unit
	case OpBindTexture:
		id := cmd.Int(1)
		if id != 0 {
			if _, ok := c.Textures[id]; !ok {
				return fmt.Errorf("%w: texture %d", ErrUnknownObject, id)
			}
		}
		c.BoundTexture[c.ActiveTexUnit] = id
	case OpTexImage2D:
		// Ints: target, level, width, height, format
		id := c.BoundTexture[c.ActiveTexUnit]
		tex, ok := c.Textures[id]
		if !ok {
			return fmt.Errorf("%w: no texture bound", ErrUnknownObject)
		}
		w, h := int(cmd.Int(2)), int(cmd.Int(3))
		if w <= 0 || h <= 0 || len(cmd.Data) < w*h*4 {
			return fmt.Errorf("%w: teximage %dx%d with %d bytes", ErrBadArguments, w, h, len(cmd.Data))
		}
		tex.Width, tex.Height = w, h
		tex.Pixels = append([]byte(nil), cmd.Data[:w*h*4]...)
		c.Stats.TexelsLoaded += int64(w * h)
	case OpTexParameteri:
		// Filtering is always nearest in the substituted rasterizer.
	case OpGenBuffer:
		id := cmd.Int(0)
		if id <= 0 {
			return fmt.Errorf("%w: buffer id %d", ErrBadArguments, id)
		}
		c.Buffers[id] = &Buffer{ID: id}
	case OpDeleteBuffer:
		delete(c.Buffers, cmd.Int(0))
	case OpBindBuffer:
		target, id := cmd.Int(0), cmd.Int(1)
		if id != 0 {
			if _, ok := c.Buffers[id]; !ok {
				return fmt.Errorf("%w: buffer %d", ErrUnknownObject, id)
			}
		}
		switch target {
		case BufTargetArray:
			c.BoundArrayBuf = id
		case BufTargetElemArray:
			c.BoundElemBuf = id
		default:
			return fmt.Errorf("%w: buffer target %#x", ErrBadArguments, target)
		}
	case OpBufferData:
		buf, err := c.boundBuffer(cmd.Int(0))
		if err != nil {
			return err
		}
		buf.Data = append([]byte(nil), cmd.Data...)
		buf.Usage = cmd.Int(1)
		c.Stats.BytesBuffers += int64(len(cmd.Data))
	case OpBufferSubData:
		buf, err := c.boundBuffer(cmd.Int(0))
		if err != nil {
			return err
		}
		off := int(cmd.Int(1))
		if off < 0 || off+len(cmd.Data) > len(buf.Data) {
			return fmt.Errorf("%w: subdata [%d,%d) into %d", ErrBadArguments, off, off+len(cmd.Data), len(buf.Data))
		}
		copy(buf.Data[off:], cmd.Data)
		c.Stats.BytesBuffers += int64(len(cmd.Data))
	case OpCreateShader:
		id := cmd.Int(1)
		if id <= 0 {
			return fmt.Errorf("%w: shader id %d", ErrBadArguments, id)
		}
		c.Shaders[id] = &Shader{ID: id, Type: cmd.Int(0)}
	case OpShaderSource:
		sh, ok := c.Shaders[cmd.Int(0)]
		if !ok {
			return fmt.Errorf("%w: shader %d", ErrUnknownObject, cmd.Int(0))
		}
		sh.Source = string(cmd.Data)
	case OpCompileShader:
		sh, ok := c.Shaders[cmd.Int(0)]
		if !ok {
			return fmt.Errorf("%w: shader %d", ErrUnknownObject, cmd.Int(0))
		}
		sh.Compiled = true
	case OpDeleteShader:
		delete(c.Shaders, cmd.Int(0))
	case OpCreateProgram:
		id := cmd.Int(0)
		if id <= 0 {
			return fmt.Errorf("%w: program id %d", ErrBadArguments, id)
		}
		c.Programs[id] = &Program{ID: id}
	case OpAttachShader:
		p, ok := c.Programs[cmd.Int(0)]
		if !ok {
			return fmt.Errorf("%w: program %d", ErrUnknownObject, cmd.Int(0))
		}
		if _, ok := c.Shaders[cmd.Int(1)]; !ok {
			return fmt.Errorf("%w: shader %d", ErrUnknownObject, cmd.Int(1))
		}
		p.Shaders = append(p.Shaders, cmd.Int(1))
	case OpLinkProgram:
		p, ok := c.Programs[cmd.Int(0)]
		if !ok {
			return fmt.Errorf("%w: program %d", ErrUnknownObject, cmd.Int(0))
		}
		p.Linked = true
	case OpUseProgram:
		id := cmd.Int(0)
		if id != 0 {
			if _, ok := c.Programs[id]; !ok {
				return fmt.Errorf("%w: program %d", ErrUnknownObject, id)
			}
		}
		c.CurrentProgram = id
	case OpDeleteProgram:
		delete(c.Programs, cmd.Int(0))
	case OpUniform1i:
		c.UniformInts[cmd.Int(0)] = cmd.Int(1)
	case OpUniform1f, OpUniform2f, OpUniform4f, OpUniformMatrix4fv:
		loc := cmd.Int(0)
		c.Uniforms[loc] = append([]float32(nil), cmd.Floats...)
	case OpVertexAttribPointer:
		// Ints: index, size, type, normalized, stride, offset, buffer
		idx := cmd.Int(0)
		size := cmd.Int(1)
		if size < 1 || size > 4 {
			return fmt.Errorf("%w: attrib size %d", ErrBadArguments, size)
		}
		b := c.attrib(idx)
		b.Size, b.Type = size, cmd.Int(2)
		b.Stride, b.Offset = cmd.Int(4), cmd.Int(5)
		b.Buffer = cmd.Int(6)
		if b.Buffer == 0 {
			if cmd.DataLen == NoDataLen {
				return fmt.Errorf("%w: client-array attrib with unresolved length", ErrBadArguments)
			}
			b.ClientData = append([]byte(nil), cmd.Data...)
		} else {
			if _, ok := c.Buffers[b.Buffer]; !ok {
				return fmt.Errorf("%w: attrib buffer %d", ErrUnknownObject, b.Buffer)
			}
			b.ClientData = nil
		}
	case OpEnableVertexAttribArray:
		c.attrib(cmd.Int(0)).Enabled = true
	case OpDisableVertexAttribArray:
		c.attrib(cmd.Int(0)).Enabled = false
	case OpDrawArrays, OpDrawElements:
		c.Stats.Draws++
		return c.validateDraw(cmd)
	case OpScissor:
		if cmd.Int(2) < 0 || cmd.Int(3) < 0 {
			return fmt.Errorf("%w: scissor %dx%d", ErrBadArguments, cmd.Int(2), cmd.Int(3))
		}
		c.ScissorX, c.ScissorY = cmd.Int(0), cmd.Int(1)
		c.ScissorW, c.ScissorH = cmd.Int(2), cmd.Int(3)
	case OpFlush, OpFinish, OpSwapBuffers:
		// No state effect; scheduling semantics live in the runtime.
	default:
		return fmt.Errorf("%w: %v", ErrUnknownOp, cmd.Op)
	}
	return nil
}

func (c *Context) boundBuffer(target int32) (*Buffer, error) {
	var id int32
	switch target {
	case BufTargetArray:
		id = c.BoundArrayBuf
	case BufTargetElemArray:
		id = c.BoundElemBuf
	default:
		return nil, fmt.Errorf("%w: buffer target %#x", ErrBadArguments, target)
	}
	buf, ok := c.Buffers[id]
	if !ok {
		return nil, fmt.Errorf("%w: no buffer bound to %#x", ErrUnknownObject, target)
	}
	return buf, nil
}

func (c *Context) attrib(idx int32) *AttribBinding {
	b, ok := c.Attribs[idx]
	if !ok {
		b = &AttribBinding{}
		c.Attribs[idx] = b
	}
	return b
}

func (c *Context) validateDraw(cmd Command) error {
	if c.CurrentProgram == 0 {
		return ErrNoProgram
	}
	pos, ok := c.Attribs[LocPosition]
	if !ok || !pos.Enabled {
		return ErrMissingAttrib
	}
	return nil
}

// AttribFloats extracts count vertices (starting at first) for the
// given attribute binding as packed float32 components. It returns an
// error when the binding's backing store is too short — the condition
// the deferred-serialization logic of §IV-B exists to avoid.
func (c *Context) AttribFloats(b *AttribBinding, first, count int) ([]float32, error) {
	if b == nil {
		return nil, ErrBadArguments
	}
	src := b.ClientData
	off := 0
	if b.Buffer != 0 {
		buf, ok := c.Buffers[b.Buffer]
		if !ok {
			return nil, fmt.Errorf("%w: attrib buffer %d", ErrUnknownObject, b.Buffer)
		}
		src = buf.Data
		off = int(b.Offset)
	}
	stride := int(b.Stride)
	vertexBytes := int(b.Size) * 4
	if stride == 0 {
		stride = vertexBytes
	}
	if first < 0 || count < 0 || stride <= 0 {
		return nil, fmt.Errorf("%w: first=%d count=%d stride=%d", ErrBadArguments, first, count, stride)
	}
	if count == 0 {
		return nil, nil
	}
	// Bound the request by the backing store BEFORE allocating: a
	// hostile draw count must fail cheaply, not reserve count*size
	// floats (a real driver raises GL_INVALID_OPERATION here).
	lastBase := off + (first+count-1)*stride
	if lastBase < 0 || lastBase+vertexBytes > len(src) {
		return nil, fmt.Errorf("%w: %d vertices need %d bytes, have %d",
			ErrOutOfRangeDraw, first+count, lastBase+vertexBytes, len(src))
	}
	out := make([]float32, 0, count*int(b.Size))
	for v := first; v < first+count; v++ {
		base := off + v*stride
		if base < 0 || base+vertexBytes > len(src) {
			return nil, fmt.Errorf("%w: vertex %d needs [%d,%d) of %d bytes",
				ErrOutOfRangeDraw, v, base, base+vertexBytes, len(src))
		}
		for k := 0; k < int(b.Size); k++ {
			out = append(out, f32FromBytes(src[base+k*4:]))
		}
	}
	return out, nil
}

// Snapshot summarizes durable state for consistency checks between
// replicated contexts. Two contexts that applied the same state-mutating
// stream must produce identical snapshots.
func (c *Context) Snapshot() StateSnapshot {
	s := StateSnapshot{
		Textures:       len(c.Textures),
		Buffers:        len(c.Buffers),
		Programs:       len(c.Programs),
		Shaders:        len(c.Shaders),
		CurrentProgram: c.CurrentProgram,
		TexelBytes:     0,
		BufferBytes:    0,
		UniformCount:   len(c.Uniforms),
	}
	for _, t := range c.Textures {
		s.TexelBytes += int64(len(t.Pixels))
	}
	for _, b := range c.Buffers {
		s.BufferBytes += int64(len(b.Data))
	}
	return s
}

// StateSnapshot is a compact fingerprint of durable context state.
type StateSnapshot struct {
	Textures       int
	Buffers        int
	Programs       int
	Shaders        int
	CurrentProgram int32
	TexelBytes     int64
	BufferBytes    int64
	UniformCount   int
}
