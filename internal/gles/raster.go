package gles

import (
	"fmt"
	"image"
	"image/color"
	"sync/atomic"

	"github.com/gbooster/gbooster/internal/parallel"
)

// Framebuffer is an RGBA8 render target with an optional depth buffer.
type Framebuffer struct {
	W, H  int
	Pix   []byte    // RGBA, 4 bytes per pixel, row-major
	Depth []float32 // one entry per pixel, cleared to +1 (far plane)
}

// NewFramebuffer allocates a w×h render target cleared to opaque black.
func NewFramebuffer(w, h int) *Framebuffer {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("gles: framebuffer size %dx%d", w, h))
	}
	fb := &Framebuffer{
		W: w, H: h,
		Pix:   make([]byte, w*h*4),
		Depth: make([]float32, w*h),
	}
	fb.ClearColorBuf(0, 0, 0, 1)
	fb.ClearDepthBuf()
	return fb
}

// ClearColorBuf fills the color buffer with the given color (components
// in [0,1]).
func (fb *Framebuffer) ClearColorBuf(r, g, b, a float32) {
	cr, cg, cb, ca := clamp8(r), clamp8(g), clamp8(b), clamp8(a)
	for i := 0; i < len(fb.Pix); i += 4 {
		fb.Pix[i], fb.Pix[i+1], fb.Pix[i+2], fb.Pix[i+3] = cr, cg, cb, ca
	}
}

// ClearDepthBuf resets the depth buffer to the far plane.
func (fb *Framebuffer) ClearDepthBuf() {
	for i := range fb.Depth {
		fb.Depth[i] = 1
	}
}

// At returns the pixel at (x, y) or transparent black when out of range.
func (fb *Framebuffer) At(x, y int) (r, g, b, a uint8) {
	if x < 0 || y < 0 || x >= fb.W || y >= fb.H {
		return 0, 0, 0, 0
	}
	i := (y*fb.W + x) * 4
	return fb.Pix[i], fb.Pix[i+1], fb.Pix[i+2], fb.Pix[i+3]
}

// Image copies the framebuffer into an image.Image, for debugging and
// for golden-file style tests.
func (fb *Framebuffer) Image() *image.RGBA {
	img := image.NewRGBA(image.Rect(0, 0, fb.W, fb.H))
	copy(img.Pix, fb.Pix)
	return img
}

// SetAll fills the framebuffer with a single color; test helper.
func (fb *Framebuffer) SetAll(c color.RGBA) {
	for i := 0; i < len(fb.Pix); i += 4 {
		fb.Pix[i], fb.Pix[i+1], fb.Pix[i+2], fb.Pix[i+3] = c.R, c.G, c.B, c.A
	}
}

func clamp8(v float32) uint8 {
	switch {
	case v <= 0:
		return 0
	case v >= 1:
		return 255
	default:
		return uint8(v*255 + 0.5)
	}
}

// vertex is a post-transform vertex entering rasterization.
type vertex struct {
	x, y, z    float32 // screen-space position and NDC depth
	r, g, b, a float32 // vertex color (already tinted)
	u, v       float32 // texture coordinates
}

// rasterState gathers everything a draw call needs from the context.
type rasterState struct {
	mvp       [16]float32
	hasMVP    bool
	tint      [4]float32
	tex       *Texture
	blend     bool
	depthTest bool
	vpX, vpY  int
	vpW, vpH  int
	scissor   bool
	scX, scY  int
	scW, scH  int
}

func (c *Context) rasterState() rasterState {
	st := rasterState{
		tint:      [4]float32{1, 1, 1, 1},
		blend:     c.Caps[CapBlend],
		depthTest: c.Caps[CapDepthTest],
		vpX:       int(c.ViewportX), vpY: int(c.ViewportY),
		vpW: int(c.ViewportW), vpH: int(c.ViewportH),
		scissor: c.Caps[CapScissorTest],
		scX:     int(c.ScissorX), scY: int(c.ScissorY),
		scW: int(c.ScissorW), scH: int(c.ScissorH),
	}
	if m, ok := c.Uniforms[LocMVP]; ok && len(m) == 16 {
		copy(st.mvp[:], m)
		st.hasMVP = true
	}
	if tv, ok := c.Uniforms[LocTint]; ok && len(tv) == 4 {
		copy(st.tint[:], tv)
	}
	unit := int32(0)
	if u, ok := c.UniformInts[LocSampler]; ok {
		unit = u
	}
	if unit >= 0 && unit < MaxTextureUnits {
		if id := c.BoundTexture[unit]; id != 0 {
			st.tex = c.Textures[id]
		}
	}
	return st
}

// transform applies the MVP matrix (column-major, as glUniformMatrix4fv
// supplies it) and the viewport transform to one model-space position.
func (st *rasterState) transform(px, py, pz float32) (x, y, z float32) {
	nx, ny, nz, nw := px, py, pz, float32(1)
	if st.hasMVP {
		m := &st.mvp
		nx = m[0]*px + m[4]*py + m[8]*pz + m[12]
		ny = m[1]*px + m[5]*py + m[9]*pz + m[13]
		nz = m[2]*px + m[6]*py + m[10]*pz + m[14]
		nw = m[3]*px + m[7]*py + m[11]*pz + m[15]
	}
	if nw != 0 && nw != 1 {
		nx, ny, nz = nx/nw, ny/nw, nz/nw
	}
	x = float32(st.vpX) + (nx+1)*0.5*float32(st.vpW)
	y = float32(st.vpY) + (1-(ny+1)*0.5)*float32(st.vpH) // flip: GL origin is bottom-left
	return x, y, nz
}

// gatherVertices builds the post-transform vertex list for a draw.
func (c *Context) gatherVertices(first, count int, indices []uint16) ([]vertex, error) {
	st := c.rasterState()
	pos := c.Attribs[LocPosition]
	if pos == nil || !pos.Enabled {
		return nil, ErrMissingAttrib
	}
	maxV := first + count
	if len(indices) > 0 {
		maxV = 0
		for _, ix := range indices {
			if int(ix)+1 > maxV {
				maxV = int(ix) + 1
			}
		}
	}
	posData, err := c.AttribFloats(pos, 0, maxV)
	if err != nil {
		return nil, fmt.Errorf("position attrib: %w", err)
	}
	var colData, uvData []float32
	var colSize int32
	if cb := c.Attribs[LocColor]; cb != nil && cb.Enabled {
		if colData, err = c.AttribFloats(cb, 0, maxV); err != nil {
			return nil, fmt.Errorf("color attrib: %w", err)
		}
		colSize = cb.Size
	}
	if tb := c.Attribs[LocTexCoord]; tb != nil && tb.Enabled {
		if uvData, err = c.AttribFloats(tb, 0, maxV); err != nil {
			return nil, fmt.Errorf("texcoord attrib: %w", err)
		}
	}

	fetch := func(vi int) vertex {
		var v vertex
		base := vi * int(pos.Size)
		px, py, pz := posData[base], posData[base+1], float32(0)
		if pos.Size >= 3 {
			pz = posData[base+2]
		}
		v.x, v.y, v.z = st.transform(px, py, pz)
		v.r, v.g, v.b, v.a = st.tint[0], st.tint[1], st.tint[2], st.tint[3]
		if colData != nil {
			cb := vi * int(colSize)
			v.r *= colData[cb]
			if colSize >= 2 {
				v.g *= colData[cb+1]
			}
			if colSize >= 3 {
				v.b *= colData[cb+2]
			}
			if colSize >= 4 {
				v.a *= colData[cb+3]
			}
		}
		if uvData != nil {
			v.u, v.v = uvData[vi*2], uvData[vi*2+1]
		}
		return v
	}

	verts := make([]vertex, 0, count)
	if len(indices) > 0 {
		for _, ix := range indices {
			verts = append(verts, fetch(int(ix)))
		}
	} else {
		for vi := first; vi < first+count; vi++ {
			verts = append(verts, fetch(vi))
		}
	}
	return verts, nil
}

// tri is one assembled triangle, in submission order.
type tri struct{ v0, v1, v2 vertex }

// assembleTriangles expands the vertex list into triangles, honoring
// strip winding (odd strip triangles swap the leading pair so both
// orders rasterize consistently).
func assembleTriangles(dst []tri, verts []vertex, mode int32) []tri {
	switch mode {
	case DrawModeTriStrip:
		for i := 0; i+2 < len(verts); i++ {
			if i%2 == 0 {
				dst = append(dst, tri{verts[i], verts[i+1], verts[i+2]})
			} else {
				dst = append(dst, tri{verts[i+1], verts[i], verts[i+2]})
			}
		}
	default: // DrawModeTriangles
		for i := 0; i+2 < len(verts); i += 3 {
			dst = append(dst, tri{verts[i], verts[i+1], verts[i+2]})
		}
	}
	return dst
}

// minParallelRows is the framebuffer height below which band decomposition
// is not worth the fan-out overhead.
const minParallelRows = 64

// drawTriangles rasterizes the vertex list as triangles (or a strip)
// into fb and returns the number of fragments shaded — the quantity the
// fillrate-based GPU-time model consumes.
//
// par is the scanline-band worker degree. For par > 1 the framebuffer
// rows are split into contiguous bands and every band rasterizes the
// full triangle list, in submission order, clipped to its own rows
// (sort-middle style). Each pixel is owned by exactly one band, so the
// per-pixel sequence of depth tests and blends is exactly the serial
// one and the output is byte-identical at every degree — the
// determinism tests assert this on Pix and Depth both.
func (c *Context) drawTriangles(fb *Framebuffer, verts []vertex, mode int32, par int) int64 {
	st := c.rasterState()
	tris := assembleTriangles(nil, verts, mode)
	if par <= 1 || len(tris) == 0 || fb.H < minParallelRows {
		var shaded int64
		for _, t := range tris {
			shaded += rasterizeTriangleBand(fb, &st, t.v0, t.v1, t.v2, 0, fb.H)
		}
		return shaded
	}
	var total int64
	parallel.Do(par, fb.H, func(lo, hi int) {
		var shaded int64
		for _, t := range tris {
			shaded += rasterizeTriangleBand(fb, &st, t.v0, t.v1, t.v2, lo, hi)
		}
		// Per-pixel work is disjoint across bands; only the fragment
		// counter is shared. Integer addition commutes, so the total
		// matches the serial count exactly.
		atomic.AddInt64(&total, shaded)
	})
	return total
}

// rasterizeTriangleBand fills one screen-space triangle with
// interpolated color, optional texturing, optional depth test, and
// optional alpha blending, restricted to rows [yLo, yHi). It returns
// the number of fragments shaded. The serial path passes [0, fb.H);
// the parallel path gives each worker a disjoint row band.
func rasterizeTriangleBand(fb *Framebuffer, st *rasterState, v0, v1, v2 vertex, yLo, yHi int) int64 {
	minX := int(min3(v0.x, v1.x, v2.x))
	maxX := int(max3(v0.x, v1.x, v2.x)) + 1
	minY := int(min3(v0.y, v1.y, v2.y))
	maxY := int(max3(v0.y, v1.y, v2.y)) + 1
	if minX < 0 {
		minX = 0
	}
	if minY < yLo {
		minY = yLo
	}
	if maxX > fb.W {
		maxX = fb.W
	}
	if maxY > yHi {
		maxY = yHi
	}
	if st.scissor {
		// GL scissor origin is bottom-left; framebuffer rows run
		// top-down, so convert before clipping the bounding box.
		top := fb.H - st.scY - st.scH
		bottom := fb.H - st.scY
		if minX < st.scX {
			minX = st.scX
		}
		if maxX > st.scX+st.scW {
			maxX = st.scX + st.scW
		}
		if minY < top {
			minY = top
		}
		if maxY > bottom {
			maxY = bottom
		}
	}
	if minX >= maxX || minY >= maxY {
		return 0
	}

	area := edge(v0, v1, v2.x, v2.y)
	if area == 0 {
		return 0
	}
	if area < 0 { // normalize winding so both orders rasterize
		v1, v2 = v2, v1
		area = -area
	}
	inv := 1 / area

	// Top-left fill rule: a pixel center exactly on an edge belongs to
	// at most one of the two triangles sharing that edge, so adjacent
	// triangles never double-shade (which would show as seams under
	// alpha blending).
	in0 := edgeIncludesZero(v1, v2)
	in1 := edgeIncludesZero(v2, v0)
	in2 := edgeIncludesZero(v0, v1)

	var shaded int64
	for y := minY; y < maxY; y++ {
		fy := float32(y) + 0.5
		for x := minX; x < maxX; x++ {
			fx := float32(x) + 0.5
			w0 := edge(v1, v2, fx, fy) * inv
			w1 := edge(v2, v0, fx, fy) * inv
			w2 := edge(v0, v1, fx, fy) * inv
			if w0 < 0 || w1 < 0 || w2 < 0 {
				continue
			}
			if (w0 == 0 && !in0) || (w1 == 0 && !in1) || (w2 == 0 && !in2) {
				continue
			}
			idx := y*fb.W + x
			z := w0*v0.z + w1*v1.z + w2*v2.z
			if st.depthTest {
				if z > fb.Depth[idx] {
					continue
				}
				fb.Depth[idx] = z
			}
			r := w0*v0.r + w1*v1.r + w2*v2.r
			g := w0*v0.g + w1*v1.g + w2*v2.g
			b := w0*v0.b + w1*v1.b + w2*v2.b
			a := w0*v0.a + w1*v1.a + w2*v2.a
			if st.tex != nil {
				u := w0*v0.u + w1*v1.u + w2*v2.u
				v := w0*v0.v + w1*v1.v + w2*v2.v
				tr, tg, tb, ta := st.tex.Sample(u, v)
				r *= float32(tr) / 255
				g *= float32(tg) / 255
				b *= float32(tb) / 255
				a *= float32(ta) / 255
			}
			pi := idx * 4
			if st.blend && a < 1 {
				ia := 1 - a
				r = r*a + float32(fb.Pix[pi])/255*ia
				g = g*a + float32(fb.Pix[pi+1])/255*ia
				b = b*a + float32(fb.Pix[pi+2])/255*ia
				a = a + float32(fb.Pix[pi+3])/255*ia
			}
			fb.Pix[pi] = clamp8(r)
			fb.Pix[pi+1] = clamp8(g)
			fb.Pix[pi+2] = clamp8(b)
			fb.Pix[pi+3] = clamp8(a)
			shaded++
		}
	}
	return shaded
}

func edge(a, b vertex, px, py float32) float32 {
	return (b.x-a.x)*(py-a.y) - (b.y-a.y)*(px-a.x)
}

// edgeIncludesZero reports whether pixel centers lying exactly on the
// a→b edge count as inside. With normalized (positive-area) winding,
// edges pointing "down" in screen space (and, for ties, horizontal
// edges pointing left) own their pixels; the opposite edge of the
// neighbouring triangle points the other way and gives them up.
func edgeIncludesZero(a, b vertex) bool {
	dy := b.y - a.y
	if dy != 0 {
		return dy > 0
	}
	return b.x-a.x < 0
}

func min3(a, b, c float32) float32 {
	m := a
	if b < m {
		m = b
	}
	if c < m {
		m = c
	}
	return m
}

func max3(a, b, c float32) float32 {
	m := a
	if b > m {
		m = b
	}
	if c > m {
		m = c
	}
	return m
}
