package gles

import (
	"encoding/binary"
	"math"
)

// f32FromBytes decodes a little-endian float32. Callers guarantee at
// least four readable bytes.
func f32FromBytes(b []byte) float32 {
	return math.Float32frombits(binary.LittleEndian.Uint32(b))
}

// f32ToBytes appends the little-endian encoding of v to dst.
func f32ToBytes(dst []byte, v float32) []byte {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], math.Float32bits(v))
	return append(dst, buf[:]...)
}

// FloatsToBytes packs float32 values into a little-endian byte slice —
// the layout client vertex arrays use.
func FloatsToBytes(vals []float32) []byte {
	out := make([]byte, 0, len(vals)*4)
	for _, v := range vals {
		out = f32ToBytes(out, v)
	}
	return out
}

// BytesToFloats unpacks a little-endian byte slice into float32 values.
// Trailing bytes that do not form a full float are ignored.
func BytesToFloats(b []byte) []float32 {
	n := len(b) / 4
	out := make([]float32, n)
	for i := 0; i < n; i++ {
		out[i] = f32FromBytes(b[i*4:])
	}
	return out
}

// U16ToBytes packs uint16 index values little-endian, the layout of
// GLES unsigned-short element arrays.
func U16ToBytes(vals []uint16) []byte {
	out := make([]byte, len(vals)*2)
	for i, v := range vals {
		binary.LittleEndian.PutUint16(out[i*2:], v)
	}
	return out
}

// BytesToU16 unpacks little-endian uint16 values.
func BytesToU16(b []byte) []uint16 {
	n := len(b) / 2
	out := make([]uint16, n)
	for i := 0; i < n; i++ {
		out[i] = binary.LittleEndian.Uint16(b[i*2:])
	}
	return out
}
