package cloud

import (
	"testing"
	"time"

	"github.com/gbooster/gbooster/internal/workload"
)

func TestOnLiveMatchesPaperMeasurements(t *testing.T) {
	p := OnLive()
	g1, err := workload.ByID("G1")
	if err != nil {
		t.Fatal(err)
	}
	r := p.Evaluate(g1)
	// §VII-F: "stream games at ... 30 FPS and average response time of
	// approximately 150 ms".
	if r.FPS != 30 {
		t.Fatalf("FPS = %v, want capped at 30", r.FPS)
	}
	if r.Response < 120*time.Millisecond || r.Response > 190*time.Millisecond {
		t.Fatalf("response = %v, want ~150ms", r.Response)
	}
}

func TestBandwidthLimitBindsBelowCap(t *testing.T) {
	p := OnLive()
	p.BandwidthMbps = 3 // starved downlink
	r := p.Evaluate(workload.Profile{})
	if r.FPS >= 30 {
		t.Fatalf("FPS = %v, want below encoder cap on a 3 Mbps link", r.FPS)
	}
}

func TestResponseDominatedByWAN(t *testing.T) {
	p := OnLive()
	near := p
	near.RTT = 5 * time.Millisecond
	wan := p.Evaluate(workload.Profile{}).Response
	lan := near.Evaluate(workload.Profile{}).Response
	if wan-lan < 60*time.Millisecond {
		t.Fatalf("WAN RTT contributes %v, want ~75ms", wan-lan)
	}
}
