// Package cloud models the cloud remote-rendering baseline GBooster is
// compared against in §VII-F (OnLive-style): games run in a distant
// data center, frames come back as a video stream over an Internet
// connection. Two structural properties produce the paper's numbers —
// the platform's video encoder caps the stream at 30 FPS, and the WAN
// round trip puts the response time near 150 ms, roughly five times
// GBooster's.
package cloud

import (
	"time"

	"github.com/gbooster/gbooster/internal/workload"
)

// Platform describes a cloud gaming service.
type Platform struct {
	Name string
	// BandwidthMbps is the user's Internet downlink.
	BandwidthMbps float64
	// RTT is the WAN round trip to the data center.
	RTT time.Duration
	// EncoderFPSCap is the service-side video pipeline's frame cap.
	EncoderFPSCap float64
	// StreamW, StreamH is the video resolution.
	StreamW, StreamH int
	// BitsPerPixel is the compressed video rate (H.264-class).
	BitsPerPixel float64
	// EncodeLatency and DecodeLatency are the codec's per-frame delays.
	EncodeLatency, DecodeLatency time.Duration
}

// OnLive returns the platform as measured in the paper's comparison: a
// 10 Mbps connection streaming 1280×720 at a 30 FPS encoder cap with
// ~150 ms response time.
func OnLive() Platform {
	return Platform{
		Name:          "OnLive",
		BandwidthMbps: 10,
		RTT:           80 * time.Millisecond,
		EncoderFPSCap: 30,
		StreamW:       1280, StreamH: 720,
		BitsPerPixel:  0.33, // ≈0.3 Mb per 720p frame → ~9 Mbps at 30 FPS
		EncodeLatency: 18 * time.Millisecond,
		DecodeLatency: 12 * time.Millisecond,
	}
}

// Result is the platform's predicted user experience for one game.
type Result struct {
	FPS      float64
	Response time.Duration
}

// Evaluate returns the FPS and response time the platform delivers for
// a game. The cloud server's GPU is assumed ample (the paper's cloud
// rig always sustains the encoder cap); the binding constraints are the
// encoder cap, downlink bandwidth, and WAN latency.
func (p Platform) Evaluate(_ workload.Profile) Result {
	frameBits := float64(p.StreamW*p.StreamH) * p.BitsPerPixel
	bwFPS := p.BandwidthMbps * 1e6 / frameBits
	fps := p.EncoderFPSCap
	if bwFPS < fps {
		fps = bwFPS
	}
	frameTx := time.Duration(frameBits / (p.BandwidthMbps * 1e6) * float64(time.Second))
	// Response: input upstream + render (on average half a frame
	// period, since the server pipeline is already in flight) + encode
	// + frame transmission + downstream + decode.
	halfPeriod := time.Duration(float64(time.Second) / fps / 2)
	resp := p.RTT + halfPeriod + p.EncodeLatency + frameTx + p.DecodeLatency
	return Result{FPS: fps, Response: resp}
}
