package core

import (
	"container/heap"
	"errors"
	"fmt"
	"sync"

	"github.com/gbooster/gbooster/internal/gles"
)

// This file implements the paper's §VIII "Towards Multiple Users"
// extension: one service device serving several user devices at once.
// The baseline design the paper describes queues incoming rendering
// requests and submits them to the GPU first-come-first-served; the
// paper then observes FCFS is "problematic for time-critical
// applications" — a fast-paced shooter queued behind a chess game waits
// needlessly — and proposes priority scheduling. Both policies are
// implemented here, so the FCFS-vs-priority comparison the paper leaves
// as future work is an experiment in this repository.

// SchedPolicy selects how a shared service device orders requests.
type SchedPolicy int

// Policies.
const (
	// SchedFCFS is the paper's §VIII baseline: strict arrival order.
	SchedFCFS SchedPolicy = iota + 1
	// SchedPriority serves higher-priority clients first (arrival order
	// within a class) — the paper's proposed improvement for
	// time-critical applications.
	SchedPriority
)

// String names the policy.
func (p SchedPolicy) String() string {
	switch p {
	case SchedFCFS:
		return "fcfs"
	case SchedPriority:
		return "priority"
	default:
		return fmt.Sprintf("SchedPolicy(%d)", int(p))
	}
}

// Multi-user errors.
var (
	ErrUnknownClient = errors.New("core: unknown client")
	ErrServerClosed  = errors.New("core: multi-user server closed")
)

// multiRequest is one queued rendering request.
type multiRequest struct {
	clientID string
	priority int // higher first under SchedPriority
	arrival  uint64
	msg      []byte
	reply    chan multiReply
	index    int
}

type multiReply struct {
	data []byte
	err  error
}

// requestQueue orders requests by the active policy.
type requestQueue struct {
	policy SchedPolicy
	items  []*multiRequest
}

func (q *requestQueue) Len() int { return len(q.items) }

func (q *requestQueue) Less(i, j int) bool {
	a, b := q.items[i], q.items[j]
	if q.policy == SchedPriority && a.priority != b.priority {
		return a.priority > b.priority
	}
	return a.arrival < b.arrival
}

func (q *requestQueue) Swap(i, j int) {
	q.items[i], q.items[j] = q.items[j], q.items[i]
	q.items[i].index = i
	q.items[j].index = j
}

func (q *requestQueue) Push(x any) {
	req, ok := x.(*multiRequest)
	if !ok {
		panic("core: requestQueue.Push given non-request")
	}
	req.index = len(q.items)
	q.items = append(q.items, req)
}

func (q *requestQueue) Pop() any {
	old := q.items
	n := len(old)
	req := old[n-1]
	old[n-1] = nil
	q.items = old[:n-1]
	return req
}

// MultiServer shares one service device's GPU among several clients.
// Each client gets its own GL context, command cache, and frame encoder
// (contexts are per-application state), but requests funnel through one
// execution queue — the GPU executes rendering requests
// non-preemptively (§VI-A), one at a time.
type MultiServer struct {
	cfg    ServerConfig
	policy SchedPolicy

	mu       sync.Mutex
	sessions map[string]*multiSession
	queue    requestQueue
	arrival  uint64
	notEmpty *sync.Cond
	closed   bool

	wg sync.WaitGroup

	stats MultiStats
}

type multiSession struct {
	server   *Server
	priority int
}

// MultiStats counts shared-device behaviour.
type MultiStats struct {
	Requests    int64
	PerClient   map[string]int64
	MaxQueueLen int
}

// NewMultiServer builds a shared service device with the given
// scheduling policy and starts its single GPU worker.
func NewMultiServer(cfg ServerConfig, policy SchedPolicy) (*MultiServer, error) {
	cfg = cfg.withDefaults()
	if cfg.Width <= 0 || cfg.Height <= 0 {
		return nil, fmt.Errorf("%w: resolution %dx%d", ErrBadMessage, cfg.Width, cfg.Height)
	}
	if policy != SchedFCFS && policy != SchedPriority {
		policy = SchedFCFS
	}
	m := &MultiServer{
		cfg:      cfg,
		policy:   policy,
		sessions: make(map[string]*multiSession),
		queue:    requestQueue{policy: policy},
		stats:    MultiStats{PerClient: make(map[string]int64)},
	}
	m.notEmpty = sync.NewCond(&m.mu)
	m.wg.Add(1)
	go m.worker()
	return m, nil
}

// AddClient registers a client with a scheduling priority (higher is
// more time-critical; only SchedPriority uses it).
func (m *MultiServer) AddClient(id string, priority int) error {
	srv, err := NewServer(m.cfg)
	if err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrServerClosed
	}
	if _, dup := m.sessions[id]; dup {
		return fmt.Errorf("core: client %q already registered", id)
	}
	m.sessions[id] = &multiSession{server: srv, priority: priority}
	return nil
}

// Submit enqueues one client message and blocks until the GPU worker
// has executed it, returning the reply (nil for state updates).
func (m *MultiServer) Submit(clientID string, msg []byte) ([]byte, error) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrServerClosed
	}
	sess, ok := m.sessions[clientID]
	if !ok {
		m.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrUnknownClient, clientID)
	}
	req := &multiRequest{
		clientID: clientID,
		priority: sess.priority,
		arrival:  m.arrival,
		msg:      msg,
		reply:    make(chan multiReply, 1),
	}
	m.arrival++
	heap.Push(&m.queue, req)
	if m.queue.Len() > m.stats.MaxQueueLen {
		m.stats.MaxQueueLen = m.queue.Len()
	}
	m.notEmpty.Signal()
	m.mu.Unlock()

	r := <-req.reply
	return r.data, r.err
}

// worker is the single GPU execution loop: requests run one at a time,
// non-preemptively, in policy order.
func (m *MultiServer) worker() {
	defer m.wg.Done()
	for {
		m.mu.Lock()
		for m.queue.Len() == 0 && !m.closed {
			m.notEmpty.Wait()
		}
		if m.closed && m.queue.Len() == 0 {
			m.mu.Unlock()
			return
		}
		popped, ok := heap.Pop(&m.queue).(*multiRequest)
		if !ok {
			m.mu.Unlock()
			continue
		}
		sess := m.sessions[popped.clientID]
		m.stats.Requests++
		m.stats.PerClient[popped.clientID]++
		m.mu.Unlock()

		data, err := sess.server.Handle(popped.msg)
		popped.reply <- multiReply{data: data, err: err}
	}
}

// Stats snapshots the shared-device counters.
func (m *MultiServer) Stats() MultiStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := MultiStats{
		Requests:    m.stats.Requests,
		MaxQueueLen: m.stats.MaxQueueLen,
		PerClient:   make(map[string]int64, len(m.stats.PerClient)),
	}
	for k, v := range m.stats.PerClient {
		out.PerClient[k] = v
	}
	return out
}

// SessionSnapshot exposes one client's GL-state fingerprint. The
// concrete snapshot type lets callers compare sessions directly
// (StateSnapshot is comparable) instead of type-asserting an any.
func (m *MultiServer) SessionSnapshot(clientID string) (gles.StateSnapshot, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	sess, ok := m.sessions[clientID]
	if !ok {
		return gles.StateSnapshot{}, fmt.Errorf("%w: %q", ErrUnknownClient, clientID)
	}
	return sess.server.Snapshot(), nil
}

// Close drains the queue and stops the worker. Pending requests still
// execute; new Submits fail.
func (m *MultiServer) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	m.notEmpty.Broadcast()
	m.mu.Unlock()
	m.wg.Wait()
}

// SubmitAsync enqueues a message without waiting for execution; the
// returned channel delivers the reply. Load generators in the
// multi-user experiments use it to keep the queue saturated.
func (m *MultiServer) SubmitAsync(clientID string, msg []byte) (<-chan error, error) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrServerClosed
	}
	sess, ok := m.sessions[clientID]
	if !ok {
		m.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrUnknownClient, clientID)
	}
	req := &multiRequest{
		clientID: clientID,
		priority: sess.priority,
		arrival:  m.arrival,
		msg:      msg,
		reply:    make(chan multiReply, 1),
	}
	m.arrival++
	heap.Push(&m.queue, req)
	if m.queue.Len() > m.stats.MaxQueueLen {
		m.stats.MaxQueueLen = m.queue.Len()
	}
	m.notEmpty.Signal()
	m.mu.Unlock()

	done := make(chan error, 1)
	go func() {
		r := <-req.reply
		done <- r.err
	}()
	return done, nil
}
