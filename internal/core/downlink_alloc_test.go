package core

import (
	"encoding/binary"
	"runtime/debug"
	"testing"

	"github.com/gbooster/gbooster/internal/cmdcache"
	"github.com/gbooster/gbooster/internal/gles"
	"github.com/gbooster/gbooster/internal/glwire"
	"github.com/gbooster/gbooster/internal/lz4"
	"github.com/gbooster/gbooster/internal/rudp"
)

// appendDataPkt builds one rudp data datagram by hand: magic, type,
// big-endian seq, zero timestamp, payload. The layout mirrors the rudp
// header the way ackAllSent does for ACKs, so the gate can feed the
// receive path through Inject without a live peer.
func appendDataPkt(dst []byte, seq uint32, payload []byte) []byte {
	dst = append(dst, 0xB7, 1)
	dst = binary.BigEndian.AppendUint32(dst, seq)
	dst = binary.BigEndian.AppendUint32(dst, 0)
	return append(dst, payload...)
}

// TestDownlinkServeZeroAllocSteadyState is the downlink mirror of the
// uplink gate: once the caches, the LZ4 dictionary windows, and every
// scratch pool are warm, serving a frame — datagram receive, stream
// reassembly, message delivery, LZ4 decompression, cache decode, wire
// decode, GL execution, turbo encode, reply framing, reliable send, and
// ACK processing — must not allocate at all. The path under test is the
// real server+rudp stack: rudp delivery into core.Server.Handle and the
// reply back out through rudp.Conn.Send, exactly the per-message cycle
// serveSync and the fleet's runSession drive.
func TestDownlinkServeZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun counts the race runtime's shadow allocations; the gate runs in the non-race pass")
	}
	srv, err := NewServer(ServerConfig{Width: 64, Height: 48, PipelineDepth: -1})
	if err != nil {
		t.Fatal(err)
	}
	conn := rudp.New(newDiscardConn(), discardAddr{}, rudp.Options{})
	defer conn.Close()

	// Client-side uplink pipeline, mirroring the server's decode stack in
	// lockstep: the command cache and the LZ4 dictionary window are both
	// stateful, so messages must be produced live, not replayed.
	clientCache := cmdcache.New(0)
	comp := lz4.NewCompressor()
	enc := glwire.NewEncoder(nil)

	// Four frame variants (distinct clear shades) so the cache reaches
	// hit-steady-state while the encoder still sees changing tiles.
	var cmds [3]gles.Command
	var variants [4][][]byte
	for i := range variants {
		shade := float32(i) * 0.25
		cmds[0] = gles.CmdClearColor(shade, shade, shade, 1)
		cmds[1] = gles.CmdClear(gles.ClearColorBit)
		cmds[2] = gles.CmdSwapBuffers()
		buf, err := enc.EncodeAll(nil, cmds[:])
		if err != nil {
			t.Fatal(err)
		}
		recs, err := glwire.SplitRecords(buf)
		if err != nil {
			t.Fatal(err)
		}
		variants[i] = recs
	}

	const maxPayload = 1200 // rudp default datagram payload bound
	var (
		wireBuf  []byte
		msgBuf   []byte
		frameBuf []byte
		pktBuf   []byte
		ackPkt   = make([]byte, 10)
		dataSeq  uint32
		iter     int
	)
	step := func() {
		// Uplink: encode one frame batch the way a live client would.
		wire, _, err := clientCache.EncodeAll(wireBuf[:0], variants[iter%len(variants)])
		wireBuf = wire
		if err != nil {
			t.Fatal(err)
		}
		msg := appendMsgHeader(msgBuf[:0], MsgFrameBatch, uint64(iter))
		msg = comp.Compress(msg, wire)
		msgBuf = msg
		iter++

		// Wire: frame the message and inject it as in-order data
		// datagrams, driving reassembly, delivery, and the ACK reply.
		framed := binary.AppendUvarint(frameBuf[:0], uint64(len(msg)))
		framed = append(framed, msg...)
		frameBuf = framed
		for off := 0; off < len(framed); off += maxPayload {
			end := off + maxPayload
			if end > len(framed) {
				end = len(framed)
			}
			pktBuf = appendDataPkt(pktBuf[:0], dataSeq, framed[off:end])
			dataSeq++
			conn.Inject(pktBuf)
		}

		// Serve: the per-message cycle of serveSync / fleet.runSession.
		got, err := conn.Recv(0)
		if err != nil {
			t.Fatal(err)
		}
		reply, err := srv.Handle(got)
		if err != nil {
			t.Fatal(err)
		}
		if reply == nil {
			t.Fatal("frame batch produced no reply")
		}
		if err := conn.Send(reply); err != nil {
			t.Fatal(err)
		}
		releaseMsg(conn, got)

		// Drain the send window so pending slots recycle.
		ackAllSent(conn, ackPkt)
	}

	// Warm every layer: the caches need one cycle through the variants,
	// the scratch buffers a few more, and the LZ4 history windows keep
	// amortized-growing until cumulative traffic passes histMax (256 KiB)
	// on both the compressor and the server's mirroring decompressor.
	for i := 0; i < 3000; i++ {
		step()
	}

	// A GC in the measurement window may empty the sync.Pool-backed
	// packet scratch, which would charge a spurious refill to the loop.
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	if n := testing.AllocsPerRun(100, step); n != 0 {
		t.Fatalf("steady-state downlink serve allocates %v times per frame", n)
	}
}
