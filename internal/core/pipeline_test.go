package core

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/gbooster/gbooster/internal/rudp"
)

// servePipe starts srv on an in-memory connection pair and returns the
// client end plus a join function.
func servePipe(tb testing.TB, srv *Server) (*rudp.Conn, func()) {
	tb.Helper()
	pcC, pcS := rudp.NewMemPair(0, 42)
	opts := rudp.DefaultOptions()
	connC := rudp.New(pcC, pcS.Addr(), opts)
	connS := rudp.New(pcS, pcC.Addr(), opts)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = srv.ServeWithTimeout(connS, 2*time.Second)
		_ = connS.Close()
	}()
	return connC, func() {
		_ = connC.Close()
		wg.Wait()
	}
}

// TestServePipelinedMatchesSync: the overlapped serve loop must produce
// byte-identical replies, in the same order, as the synchronous one —
// the stage-overlap analogue of the codec determinism property.
func TestServePipelinedMatchesSync(t *testing.T) {
	const frames = 8
	collect := func(depth int) [][]byte {
		srv, err := NewServer(ServerConfig{Width: testW, Height: testH, PipelineDepth: depth})
		if err != nil {
			t.Fatal(err)
		}
		conn, join := servePipe(t, srv)
		defer join()
		builder := newBatchBuilder(t, "G5", 3)
		var replies [][]byte
		for i := 0; i < frames; i++ {
			if err := conn.Send(builder.next(t)); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < frames; i++ {
			msg, err := conn.Recv(5 * time.Second)
			if err != nil {
				t.Fatalf("reply %d: %v", i, err)
			}
			replies = append(replies, msg)
		}
		return replies
	}
	want := collect(-1) // synchronous reference
	got := collect(2)   // overlapped
	for i := range want {
		if !bytes.Equal(want[i], got[i]) {
			t.Fatalf("reply %d: pipelined serve diverged from sync (%dB vs %dB)",
				i, len(got[i]), len(want[i]))
		}
	}
}

// TestServePipelineConfigDepth checks the depth resolution rules.
func TestServePipelineConfigDepth(t *testing.T) {
	cases := []struct{ in, want int }{{-1, 0}, {0, DefaultPipelineDepth}, {3, 3}}
	for _, tc := range cases {
		if got := (ServerConfig{PipelineDepth: tc.in}).pipelineDepth(); got != tc.want {
			t.Errorf("server pipelineDepth(%d) = %d, want %d", tc.in, got, tc.want)
		}
		if got := (ClientConfig{PipelineDepth: tc.in}).pipelineDepth(); got != tc.want {
			t.Errorf("client pipelineDepth(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

// BenchmarkFramePipeline measures end-to-end frame round trips with the
// render/encode stages serialized vs overlapped, keeping two requests
// in flight so the server-side pipeline can actually fill.
func BenchmarkFramePipeline(b *testing.B) {
	for _, mode := range []struct {
		name  string
		depth int
	}{{"sync", -1}, {"overlap", 0}} {
		b.Run(fmt.Sprintf("640x360/%s", mode.name), func(b *testing.B) {
			srv, err := NewServer(ServerConfig{Width: 640, Height: 360, PipelineDepth: mode.depth})
			if err != nil {
				b.Fatal(err)
			}
			conn, join := servePipe(b, srv)
			defer join()
			builder := newBatchBuilder(b, "G5", 1)
			const ahead = 2
			b.SetBytes(640 * 360 * 4)
			b.ResetTimer()
			sent := 0
			for i := 0; i < b.N; i++ {
				for sent < b.N && sent-i < ahead {
					if err := conn.Send(builder.next(b)); err != nil {
						b.Fatal(err)
					}
					sent++
				}
				if _, err := conn.Recv(10 * time.Second); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
