// Package core is the GBooster runtime: the client wrapper that
// intercepts an application's GLES calls and ships them out, and the
// service-device server that replays them on a GPU and streams encoded
// frames back. It composes every substrate the paper describes —
// dynamic-linker hooking (hook), wire serialization with deferred
// vertex pointers (glwire), the mirrored LRU command cache (cmdcache),
// LZ4 stream compression (lz4), reliable UDP (rudp), the turbo frame
// codec (turbo), Eq. 4 multi-device dispatch with state replication and
// sequence-number reordering (dispatch), and the software GPU (gles).
package core

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Message types on the reliable channel.
const (
	// MsgFrameBatch carries one rendering request: the LZ4-compressed,
	// cache-filtered command records of a frame, plus its sequence
	// number. The receiving server executes it and replies.
	MsgFrameBatch = 1
	// MsgEncodedFrame is the server's reply: the turbo packet of the
	// rendered frame, echoing the request's sequence number.
	MsgEncodedFrame = 2
	// MsgStateUpdate replicates state-mutating commands to servers that
	// were NOT assigned the frame (§VI-B consistency). No reply.
	MsgStateUpdate = 3
	// MsgBootstrap carries a session bootstrap stream (internal/session)
	// to a cold or readmitting server: the canonical GL state, the
	// command-cache mirror in eviction order, and the LZ4 dictionary
	// window. The server restores and replies with MsgBootstrapAck.
	MsgBootstrap = 4
	// MsgBootstrapAck is the server's reply to MsgBootstrap: 8 bytes,
	// little-endian, the state fingerprint re-computed from the restored
	// context (0 when the restore failed). The client admits the device
	// to the rotation only on an exact fingerprint match.
	MsgBootstrapAck = 5
)

// Protocol errors.
var (
	ErrBadMessage = errors.New("core: malformed message")
	ErrClosed     = errors.New("core: closed")
)

// FrameBatchMsg frames a rendering-request message for external
// drivers (experiments) that speak the protocol directly.
func FrameBatchMsg(seq uint64, payload []byte) []byte {
	return encodeMsg(MsgFrameBatch, seq, payload)
}

// appendMsgHeader appends a message's framing (type byte + uvarint
// seq) to dst. The pooled uplink path builds header and payload into
// one reused buffer instead of allocating per message via encodeMsg.
func appendMsgHeader(dst []byte, msgType byte, seq uint64) []byte {
	dst = append(dst, msgType)
	return binary.AppendUvarint(dst, seq)
}

// encodeMsg frames a message: type byte, uvarint seq, payload.
func encodeMsg(msgType byte, seq uint64, payload []byte) []byte {
	out := make([]byte, 0, len(payload)+10)
	out = appendMsgHeader(out, msgType, seq)
	return append(out, payload...)
}

// decodeMsg splits a framed message.
func decodeMsg(msg []byte) (msgType byte, seq uint64, payload []byte, err error) {
	if len(msg) < 2 {
		return 0, 0, nil, fmt.Errorf("%w: %d bytes", ErrBadMessage, len(msg))
	}
	msgType = msg[0]
	seq, n := binary.Uvarint(msg[1:])
	if n <= 0 {
		return 0, 0, nil, fmt.Errorf("%w: bad seq", ErrBadMessage)
	}
	return msgType, seq, msg[1+n:], nil
}
