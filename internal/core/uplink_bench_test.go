package core

import (
	"testing"

	"github.com/gbooster/gbooster/internal/cmdcache"
	"github.com/gbooster/gbooster/internal/lz4"
)

// BenchmarkUplinkFrame measures the steady-state client uplink encode —
// mirrored-cache EncodeAll, LZ4, and message framing per frame — over a
// workload game trace, and reports the resulting bytes on the wire.
// dict=on is the shipping inter-frame dictionary compressor; dict=off
// the stateless per-frame baseline it replaced. The wirebytes/frame gap
// between the two is the dictionary's whole value proposition: steady-
// state frames are dominated by cache-reference streams that differ
// only slightly frame to frame, which a per-frame compressor cannot
// exploit.
func BenchmarkUplinkFrame(b *testing.B) {
	frames := buildTraceFrames(b, "G1", 7, 64)
	for _, v := range []struct {
		name string
		dict bool
	}{{"dict=on", true}, {"dict=off", false}} {
		b.Run(v.name, func(b *testing.B) {
			cache := cmdcache.New(0)
			comp := lz4.NewCompressor()
			var wireBuf, msgBuf []byte
			var bytesOnWire, cacheBytes int64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				recs := frames[i%len(frames)]
				wire, _, err := cache.EncodeAll(wireBuf[:0], recs)
				wireBuf = wire
				if err != nil {
					b.Fatal(err)
				}
				hdr := appendMsgHeader(msgBuf[:0], MsgFrameBatch, uint64(i))
				var msg []byte
				if v.dict {
					msg = comp.Compress(hdr, wire)
				} else {
					msg = lz4.Compress(hdr, wire)
				}
				msgBuf = msg
				bytesOnWire += int64(len(msg))
				cacheBytes += int64(len(wire))
			}
			b.ReportMetric(float64(bytesOnWire)/float64(b.N), "wirebytes/frame")
			b.ReportMetric(float64(cacheBytes)/float64(b.N), "cachebytes/frame")
		})
	}
}
