package core

import (
	"github.com/gbooster/gbooster/internal/gles"
	"github.com/gbooster/gbooster/internal/glwire"
	"github.com/gbooster/gbooster/internal/workload"
)

// frameEncoder round-trips commands through the wire codec, resolving
// deferred vertex pointers against a game's array table — the same
// transformation the client applies before shipping.
type frameEncoder struct {
	enc *glwire.Encoder
	dec glwire.Decoder
}

func newFrameEncoder(g *workload.Game) *frameEncoder {
	return &frameEncoder{enc: glwire.NewEncoder(g.Arrays())}
}

func (f *frameEncoder) encodeAll(cmds []gles.Command) ([]gles.Command, error) {
	buf, err := f.enc.EncodeAll(nil, cmds)
	if err != nil {
		return nil, err
	}
	return f.dec.DecodeAll(buf)
}
