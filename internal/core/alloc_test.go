package core

import (
	"encoding/binary"
	"fmt"
	"net"
	"runtime/debug"
	"sync"
	"testing"
	"time"

	"github.com/gbooster/gbooster/internal/glwire"
	"github.com/gbooster/gbooster/internal/rudp"
	"github.com/gbooster/gbooster/internal/workload"
)

// discardConn is a PacketConn that swallows writes and blocks reads
// until closed, so a client's transport can run with no peer and no
// background packet traffic polluting allocation measurements.
type discardConn struct {
	closed chan struct{}
	once   sync.Once
}

func newDiscardConn() *discardConn { return &discardConn{closed: make(chan struct{})} }

func (d *discardConn) ReadFrom(p []byte) (int, net.Addr, error) {
	<-d.closed
	return 0, nil, net.ErrClosed
}
func (d *discardConn) WriteTo(p []byte, _ net.Addr) (int, error) { return len(p), nil }
func (d *discardConn) Close() error {
	d.once.Do(func() { close(d.closed) })
	return nil
}
func (d *discardConn) LocalAddr() net.Addr              { return discardAddr{} }
func (d *discardConn) SetDeadline(time.Time) error      { return nil }
func (d *discardConn) SetReadDeadline(time.Time) error  { return nil }
func (d *discardConn) SetWriteDeadline(time.Time) error { return nil }

type discardAddr struct{}

func (discardAddr) Network() string { return "discard" }
func (discardAddr) String() string  { return "discard" }

// buildTraceFrames pre-serializes n frames of a workload game into
// split record sets, the form consume() accumulates them in.
func buildTraceFrames(t testing.TB, id string, seed uint64, n int) [][][]byte {
	t.Helper()
	prof, err := workload.ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	game := workload.NewGame(prof, seed)
	enc := glwire.NewEncoder(game.Arrays())
	frames := make([][][]byte, 0, n)
	for i := 0; i < n; i++ {
		buf, err := enc.EncodeAll(nil, game.NextFrame().Commands)
		if err != nil {
			t.Fatal(err)
		}
		recs, err := glwire.SplitRecords(buf)
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, recs)
	}
	return frames
}

// ackAllSent synthesizes a cumulative ACK covering everything conn has
// sent and feeds it through Inject, draining the retransmit window the
// way a live peer would. The 10-byte layout mirrors the rudp header:
// magic, type, big-endian seq, big-endian timestamp echo (zero selects
// the sender-side RTT fallback).
func ackAllSent(conn *rudp.Conn, pkt []byte) {
	pkt[0] = 0xB7 // rudp magic byte
	pkt[1] = 2    // ACK packet type
	binary.BigEndian.PutUint32(pkt[2:6], uint32(conn.Stats().DataSent))
	binary.BigEndian.PutUint32(pkt[6:10], 0)
	conn.Inject(pkt)
}

// TestUplinkFlushZeroAllocSteadyState is the PR's allocation gate: once
// caches, compressors, and scratch pools are warm, shipping a frame —
// record staging, cache encode, dictionary compression, message
// framing, datagram send, ACK processing, and request completion —
// must not allocate at all.
func TestUplinkFlushZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun counts the race runtime's shadow allocations; the gate runs in the non-race pass")
	}
	c, err := NewClient(ClientConfig{
		Width:  64,
		Height: 48,
		// Keep the failover sweep out of the measurement window.
		FailoverInterval: time.Hour,
		FailoverMaxWait:  time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	conns := make([]*rudp.Conn, 2)
	for i := range conns {
		conns[i] = rudp.New(newDiscardConn(), discardAddr{}, rudp.Options{})
		if err := c.AddService(fmt.Sprintf("dev%d", i), conns[i], 1000, 10*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}

	frames := buildTraceFrames(t, "G1", 7, 4)
	ackPkt := make([]byte, 10)
	iter := 0
	step := func() {
		recs := frames[iter%len(frames)]
		iter++
		c.mu.Lock()
		for _, rec := range recs {
			c.frameRecs = append(c.frameRecs, c.copyRecLocked(rec))
		}
		err := c.flushFrameLocked()
		c.mu.Unlock()
		if err != nil {
			t.Fatal(err)
		}
		// Drain both transports' retransmit windows so pending slots
		// recycle instead of accumulating.
		for _, conn := range conns {
			ackAllSent(conn, ackPkt)
		}
		// Retire the request the way a server reply would, minus the
		// frame decode (downlink is out of scope for the uplink gate).
		c.mu.Lock()
		for seq, req := range c.inflight {
			c.sched.Complete(req.svc.dev, req.workload)
			delete(c.inflight, seq)
			c.releaseReqLocked(req)
		}
		c.mu.Unlock()
	}

	// Warm every layer to steady state: the command caches need one
	// cycle through the frame set, the scratch buffers a few more, and
	// the LZ4 history windows keep amortized-growing until cumulative
	// wire traffic passes histMax (256 KiB) on both the batch and the
	// state-replication compressor — the state stream carries only a
	// fraction of each frame, so it saturates last.
	for i := 0; i < 3000; i++ {
		step()
	}

	// A GC in the measurement window may empty the sync.Pool-backed
	// scratch, which would charge a spurious refill to the loop.
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	if n := testing.AllocsPerRun(100, step); n != 0 {
		t.Fatalf("steady-state uplink flush allocates %v times per frame", n)
	}
}
