package core

import (
	"testing"
	"testing/quick"
)

func TestServerHandleNeverPanicsOnArbitraryBytes(t *testing.T) {
	srv, err := NewServer(ServerConfig{Width: 16, Height: 16})
	if err != nil {
		t.Fatal(err)
	}
	check := func(data []byte) bool {
		_, _ = srv.Handle(data)
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
	// Valid framing around garbage payloads.
	checkFramed := func(seq uint64, payload []byte) bool {
		_, _ = srv.Handle(encodeMsg(MsgFrameBatch, seq, payload))
		_, _ = srv.Handle(encodeMsg(MsgStateUpdate, seq, payload))
		return true
	}
	if err := quick.Check(checkFramed, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
