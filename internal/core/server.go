package core

import (
	"fmt"
	"sync"
	"time"

	"github.com/gbooster/gbooster/internal/cmdcache"
	"github.com/gbooster/gbooster/internal/gles"
	"github.com/gbooster/gbooster/internal/glwire"
	"github.com/gbooster/gbooster/internal/lz4"
	"github.com/gbooster/gbooster/internal/rudp"
	"github.com/gbooster/gbooster/internal/turbo"
)

// ServerConfig parameterizes a service-device endpoint.
type ServerConfig struct {
	// Width, Height is the streaming resolution (must match the
	// client).
	Width, Height int
	// Quality is the turbo codec quality (default turbo.DefaultQuality).
	Quality int
	// CacheBytes bounds the mirrored command cache (default
	// cmdcache.DefaultCapacity).
	CacheBytes int
}

func (c ServerConfig) withDefaults() ServerConfig {
	if c.Quality <= 0 {
		c.Quality = turbo.DefaultQuality
	}
	return c
}

// ServerStats counts server work.
type ServerStats struct {
	FramesRendered  int64
	StateUpdates    int64
	BytesIn         int64
	BytesOut        int64
	FragmentsShaded int64
	ExecErrors      int64
}

// Server is one service device: it replays command streams on its GPU
// and returns turbo-encoded frames (§IV-C). A server handles one client
// connection; the paper's multi-user mode runs one Server per client in
// FCFS order.
type Server struct {
	cfg   ServerConfig
	gpu   *gles.GPU
	enc   *turbo.Encoder
	cache *cmdcache.Cache
	dec   glwire.Decoder

	mu    sync.Mutex
	stats ServerStats
}

// NewServer builds a server with a fresh GPU context.
func NewServer(cfg ServerConfig) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.Width <= 0 || cfg.Height <= 0 {
		return nil, fmt.Errorf("%w: resolution %dx%d", ErrBadMessage, cfg.Width, cfg.Height)
	}
	return &Server{
		cfg:   cfg,
		gpu:   gles.NewGPU(cfg.Width, cfg.Height),
		enc:   turbo.NewEncoder(cfg.Width, cfg.Height, cfg.Quality),
		cache: cmdcache.New(cfg.CacheBytes),
	}, nil
}

// Stats returns a snapshot of the server counters.
func (s *Server) Stats() ServerStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.FragmentsShaded = s.gpu.FragmentsShaded
	return s.stats
}

// Serve processes messages from conn until it closes. It replies to
// frame batches with encoded frames on the same connection.
func (s *Server) Serve(conn *rudp.Conn) error {
	for {
		msg, err := conn.Recv(0)
		if err != nil {
			if err == rudp.ErrClosed {
				return nil
			}
			return fmt.Errorf("core: server recv: %w", err)
		}
		reply, err := s.Handle(msg)
		if err != nil {
			return err
		}
		if reply != nil {
			if err := conn.Send(reply); err != nil {
				return fmt.Errorf("core: server send: %w", err)
			}
		}
	}
}

// Handle processes one message and returns the reply to send (nil for
// state updates). Exposed so simulations can drive a server without a
// transport.
func (s *Server) Handle(msg []byte) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.BytesIn += int64(len(msg))
	msgType, seq, payload, err := decodeMsg(msg)
	if err != nil {
		return nil, err
	}
	switch msgType {
	case MsgFrameBatch:
		frame, err := s.executeBatch(payload)
		if err != nil {
			return nil, err
		}
		if frame == nil {
			return nil, nil // batch without a SwapBuffers boundary
		}
		pkt, err := s.enc.Encode(frame, false)
		if err != nil {
			return nil, fmt.Errorf("core: encode frame: %w", err)
		}
		s.stats.FramesRendered++
		reply := encodeMsg(MsgEncodedFrame, seq, pkt)
		s.stats.BytesOut += int64(len(reply))
		return reply, nil
	case MsgStateUpdate:
		if _, err := s.executeBatch(payload); err != nil {
			return nil, err
		}
		s.stats.StateUpdates++
		return nil, nil
	default:
		return nil, fmt.Errorf("%w: type %d", ErrBadMessage, msgType)
	}
}

// executeBatch decompresses, cache-decodes, deserializes, and executes
// one batch. It returns the framebuffer when the batch ended a frame.
func (s *Server) executeBatch(payload []byte) ([]byte, error) {
	raw, err := lz4.Decompress(nil, payload, lz4.MaxBlockSize)
	if err != nil {
		return nil, fmt.Errorf("core: lz4: %w", err)
	}
	recs, err := s.cache.DecodeAll(raw)
	if err != nil {
		return nil, fmt.Errorf("core: cache: %w", err)
	}
	frameDone := false
	for _, rec := range recs {
		cmd, _, err := s.dec.Decode(rec)
		if err != nil {
			return nil, fmt.Errorf("core: wire: %w", err)
		}
		res, err := s.gpu.Execute(cmd)
		if err != nil {
			// Driver-style diagnostics: record and continue, like a
			// real GPU raising GL errors without dying.
			s.stats.ExecErrors++
		}
		if res.FrameDone {
			frameDone = true
		}
	}
	if !frameDone {
		return nil, nil
	}
	return s.gpu.FB.Pix, nil
}

// Snapshot exposes the server's GL context fingerprint for the §VI-B
// consistency checks.
func (s *Server) Snapshot() gles.StateSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gpu.Ctx.Snapshot()
}

// ServeWithTimeout is Serve with an idle timeout, for tests that must
// terminate even if the peer forgets to close.
func (s *Server) ServeWithTimeout(conn *rudp.Conn, idle time.Duration) error {
	for {
		msg, err := conn.Recv(idle)
		if err != nil {
			if err == rudp.ErrClosed || err == rudp.ErrTimeout {
				return nil
			}
			return fmt.Errorf("core: server recv: %w", err)
		}
		reply, err := s.Handle(msg)
		if err != nil {
			return err
		}
		if reply != nil {
			if err := conn.Send(reply); err != nil {
				return fmt.Errorf("core: server send: %w", err)
			}
		}
	}
}
