package core

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/gbooster/gbooster/internal/cmdcache"
	"github.com/gbooster/gbooster/internal/gles"
	"github.com/gbooster/gbooster/internal/glwire"
	"github.com/gbooster/gbooster/internal/lz4"
	"github.com/gbooster/gbooster/internal/rudp"
	"github.com/gbooster/gbooster/internal/session"
	"github.com/gbooster/gbooster/internal/turbo"
)

// DefaultPipelineDepth bounds frames in flight between Serve's render
// and encode stages when ServerConfig.PipelineDepth is zero.
const DefaultPipelineDepth = 2

// ServerConfig parameterizes a service-device endpoint.
type ServerConfig struct {
	// Width, Height is the streaming resolution (must match the
	// client).
	Width, Height int
	// Quality is the turbo codec quality (default turbo.DefaultQuality).
	Quality int
	// CacheBytes bounds the mirrored command cache (default
	// cmdcache.DefaultCapacity).
	CacheBytes int
	// Parallelism is the data-plane worker degree for rasterization
	// bands and codec tiles: 0 selects one worker per CPU, 1 the serial
	// reference path. Output is byte-identical at every degree.
	Parallelism int
	// DiffThreshold overrides the turbo changed-tile sensitivity: 0
	// keeps turbo.DefaultDiffThreshold, negative ships every
	// nonidentical tile (exact mode).
	DiffThreshold float64
	// PipelineDepth bounds frames in flight between Serve's render and
	// encode stages: 0 selects DefaultPipelineDepth, negative disables
	// the overlap (render and encode run strictly in sequence).
	PipelineDepth int
	// AdaptiveQuality enables the congestion-aware quality ladder:
	// Quality becomes the ceiling, and the server steps encode quality
	// down toward QualityFloor when the connection's rudp stats show
	// retransmits, receive-queue pushback, a half-full send window, or
	// RTT inflation — recovering gradually once the link runs clean.
	AdaptiveQuality bool
	// QualityFloor is the lowest quality the ladder will select
	// (default DefaultQualityFloor, clamped to at most Quality).
	QualityFloor int
}

// DefaultQualityFloor is the quality ladder's lower bound when
// ServerConfig.QualityFloor is zero.
const DefaultQualityFloor = 20

func (c ServerConfig) withDefaults() ServerConfig {
	if c.Quality <= 0 {
		c.Quality = turbo.DefaultQuality
	}
	if c.QualityFloor <= 0 {
		c.QualityFloor = DefaultQualityFloor
	}
	if c.QualityFloor > c.Quality {
		c.QualityFloor = c.Quality
	}
	return c
}

// pipelineDepth resolves the render/encode overlap bound.
func (c ServerConfig) pipelineDepth() int {
	switch {
	case c.PipelineDepth < 0:
		return 0
	case c.PipelineDepth == 0:
		return DefaultPipelineDepth
	default:
		return c.PipelineDepth
	}
}

// ServerStats counts server work.
type ServerStats struct {
	FramesRendered  int64
	StateUpdates    int64
	BytesIn         int64
	BytesOut        int64
	FragmentsShaded int64
	ExecErrors      int64
	// Bootstraps counts session checkpoints successfully restored
	// (MsgBootstrap messages that replaced this server's state).
	Bootstraps int64
	// QualityNow is the encode quality currently in effect (the
	// configured quality when the adaptive ladder is off);
	// QualityStepsDown / QualityStepsUp count ladder moves.
	QualityNow       int
	QualityStepsDown int64
	QualityStepsUp   int64
}

// Server is one service device: it replays command streams on its GPU
// and returns turbo-encoded frames (§IV-C). A server handles one client
// connection; the paper's multi-user mode runs one Server per client in
// FCFS order.
type Server struct {
	cfg   ServerConfig
	cache *cmdcache.Cache
	dec   glwire.Decoder

	// mu guards the render stage (GPU, cache, decoder, stats); encMu
	// guards the encode stage (the turbo encoder). Separate locks are
	// what let the pipelined serve path render frame N while frame N−1
	// is still being encoded.
	mu       sync.Mutex
	gpu      *gles.GPU
	stats    ServerStats
	decomp   *lz4.Decompressor // mirrors the client compressors' dictionary window
	rawBuf   []byte            // decompression scratch, reused across batches
	fragBase int64             // FragmentsShaded carried over from pre-bootstrap GPUs

	encMu    sync.Mutex
	enc      *turbo.Encoder
	forceKey bool   // next encoded frame must be a keyframe (post-bootstrap resync)
	replyBuf []byte // framed-reply staging, reused across encodes (guarded by encMu)
	// Adaptive-quality state (guarded by encMu; nil ladder when the
	// feature is off). lastAdapt rate-limits transport sampling.
	ladder    *qualityLadder
	lastAdapt time.Time

	// frameMu guards frameFree: recycled framebuffer copies for the
	// pipelined serve path. A persistent free list rather than a
	// sync.Pool — the population is bounded by the pipeline depth, and
	// survival across GC cycles (and across Serve calls) is the point.
	frameMu   sync.Mutex
	frameFree [][]byte
}

// NewServer builds a server with a fresh GPU context.
func NewServer(cfg ServerConfig) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.Width <= 0 || cfg.Height <= 0 {
		return nil, fmt.Errorf("%w: resolution %dx%d", ErrBadMessage, cfg.Width, cfg.Height)
	}
	s := &Server{
		cfg:    cfg,
		gpu:    gles.NewGPU(cfg.Width, cfg.Height),
		enc:    turbo.NewEncoder(cfg.Width, cfg.Height, cfg.Quality),
		cache:  cmdcache.New(cfg.CacheBytes),
		decomp: lz4.NewDecompressor(),
	}
	s.gpu.SetParallelism(cfg.Parallelism)
	s.enc.SetParallelism(cfg.Parallelism)
	if cfg.DiffThreshold > 0 {
		s.enc.SetDiffThreshold(cfg.DiffThreshold)
	} else if cfg.DiffThreshold < 0 {
		s.enc.SetDiffThreshold(0)
	}
	if cfg.AdaptiveQuality {
		s.ladder = newQualityLadder(cfg.Quality, cfg.QualityFloor)
	}
	return s, nil
}

// Stats returns a snapshot of the server counters.
func (s *Server) Stats() ServerStats {
	s.mu.Lock()
	s.stats.FragmentsShaded = s.fragBase + s.gpu.FragmentsShaded
	st := s.stats
	s.mu.Unlock()
	s.encMu.Lock()
	if s.ladder != nil {
		st.QualityNow = s.ladder.current
		st.QualityStepsDown = s.ladder.stepsDown
		st.QualityStepsUp = s.ladder.stepsUp
	} else {
		st.QualityNow = s.cfg.Quality
	}
	s.encMu.Unlock()
	return st
}

// qualityAdaptInterval rate-limits transport sampling for the adaptive
// ladder: one observation per interval is plenty at streaming frame
// rates, and keeps the ladder's step cadence independent of fps.
const qualityAdaptInterval = 100 * time.Millisecond

// AdaptQuality samples conn's transport stats and applies the ladder's
// quality choice to the encoder. The serve loops call it after each
// received message; external message pumps that drive the server
// through Handle (the fleet's per-session loop) must call it themselves
// or the ladder never observes the transport. Uses TryLock so the
// receive path never blocks behind an in-progress encode (skipping a
// sample is harmless — the next message retries). No-op when the
// adaptive ladder is off.
func (s *Server) AdaptQuality(conn *rudp.Conn) {
	if s.ladder == nil {
		return
	}
	if !s.encMu.TryLock() {
		return
	}
	defer s.encMu.Unlock()
	now := time.Now()
	if now.Sub(s.lastAdapt) < qualityAdaptInterval {
		return
	}
	s.lastAdapt = now
	s.enc.SetQuality(s.ladder.observe(conn.Stats()))
}

// Serve processes messages from conn until it closes. It replies to
// frame batches with encoded frames on the same connection. With a
// positive pipeline depth the render and encode stages overlap: the
// main loop renders frame N while a companion goroutine turbo-encodes
// and sends frame N−1.
func (s *Server) Serve(conn *rudp.Conn) error {
	return s.serve(conn, 0)
}

// ServeWithTimeout is Serve with an idle timeout, for tests that must
// terminate even if the peer forgets to close.
func (s *Server) ServeWithTimeout(conn *rudp.Conn, idle time.Duration) error {
	return s.serve(conn, idle)
}

// encodeJob carries one rendered frame from the render stage to the
// encode stage.
type encodeJob struct {
	frame []byte
	seq   uint64
}

func (s *Server) serve(conn *rudp.Conn, idle time.Duration) error {
	depth := s.cfg.pipelineDepth()
	if depth <= 0 {
		return s.serveSync(conn, idle)
	}

	jobs := make(chan encodeJob, depth)
	errc := make(chan error, 1)
	var outstanding atomic.Int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for job := range jobs {
			reply, err := s.encodeReply(job.frame, job.seq)
			s.putFrameBuf(job.frame)
			if err == nil {
				if serr := conn.Send(reply); serr != nil {
					err = fmt.Errorf("core: server send: %w", serr)
				}
			}
			outstanding.Add(-1)
			if err != nil {
				select {
				case errc <- err:
				default:
				}
				// Keep draining so the render stage never blocks on a
				// full jobs channel while shutting down.
			}
		}
	}()
	defer func() {
		close(jobs)
		wg.Wait()
	}()

	for {
		select {
		case err := <-errc:
			return err
		default:
		}
		msg, err := conn.Recv(idle)
		if err != nil {
			if err == rudp.ErrTimeout && outstanding.Load() > 0 {
				// Not idle: the encoder is still working the backlog.
				// Declaring idle here would flush-and-return the moment
				// the last reply hit the wire, with no quiet period for
				// the transport to finish delivering it — the serial
				// loop's idle timeout only ever fired after a full idle
				// window with nothing in flight anywhere.
				continue
			}
			if err == rudp.ErrClosed || err == rudp.ErrTimeout {
				return nil
			}
			return fmt.Errorf("core: server recv: %w", err)
		}
		s.AdaptQuality(conn)
		frame, seq, direct, err := s.renderMsg(msg)
		if err != nil {
			return err
		}
		if direct != nil {
			// Direct replies (bootstrap acks) bypass the encode stage.
			// Sending here, possibly ahead of queued encode jobs, is
			// safe: renderMsg already restored state serially in recv
			// order, and the ack carries no frame ordering.
			if err := conn.Send(direct); err != nil {
				return fmt.Errorf("core: server send: %w", err)
			}
			continue
		}
		if frame == nil {
			conn.Release(msg)
			continue
		}
		// The live framebuffer is only valid until the next render, so
		// the encoder stage gets a copy from the server's free list.
		buf := s.getFrameBuf()
		copy(buf, frame)
		conn.Release(msg)
		outstanding.Add(1)
		jobs <- encodeJob{frame: buf, seq: seq}
	}
}

// getFrameBuf pops a recycled framebuffer copy (or allocates the first
// few); putFrameBuf returns one after the encode stage is done with it.
// Steady-state streaming therefore recycles the same depth+1 buffers.
func (s *Server) getFrameBuf() []byte {
	s.frameMu.Lock()
	if n := len(s.frameFree); n > 0 {
		buf := s.frameFree[n-1]
		s.frameFree[n-1] = nil
		s.frameFree = s.frameFree[:n-1]
		s.frameMu.Unlock()
		return buf
	}
	s.frameMu.Unlock()
	return make([]byte, s.cfg.Width*s.cfg.Height*4)
}

func (s *Server) putFrameBuf(buf []byte) {
	if cap(buf) < s.cfg.Width*s.cfg.Height*4 {
		return
	}
	buf = buf[:s.cfg.Width*s.cfg.Height*4]
	s.frameMu.Lock()
	s.frameFree = append(s.frameFree, buf)
	s.frameMu.Unlock()
}

// serveSync is the non-overlapped serve loop (PipelineDepth < 0): each
// frame is rendered, encoded, and sent before the next recv.
func (s *Server) serveSync(conn *rudp.Conn, idle time.Duration) error {
	for {
		msg, err := conn.Recv(idle)
		if err != nil {
			if err == rudp.ErrClosed || err == rudp.ErrTimeout {
				return nil
			}
			return fmt.Errorf("core: server recv: %w", err)
		}
		s.AdaptQuality(conn)
		reply, err := s.Handle(msg)
		if err != nil {
			return err
		}
		if reply != nil {
			if err := conn.Send(reply); err != nil {
				return fmt.Errorf("core: server send: %w", err)
			}
		}
		releaseMsg(conn, msg)
	}
}

// releaseMsg recycles a delivered message buffer once the serve loop is
// done with it. Bootstrap payloads are exempt: session.Decode's
// checkpoint aliases the message bytes, and the restored cache and
// dictionary may keep referencing them after Handle returns.
func releaseMsg(conn *rudp.Conn, msg []byte) {
	if len(msg) > 0 && msg[0] == MsgBootstrap {
		return
	}
	conn.Release(msg)
}

// Handle processes one message and returns the reply to send (nil for
// state updates). Exposed so simulations can drive a server without a
// transport. Handle is the synchronous composition of the two pipeline
// stages; the rendered frame is encoded before Handle returns, so no
// copy is needed.
func (s *Server) Handle(msg []byte) ([]byte, error) {
	frame, seq, direct, err := s.renderMsg(msg)
	if err != nil {
		return nil, err
	}
	if direct != nil {
		return direct, nil
	}
	if frame == nil {
		return nil, nil
	}
	return s.encodeReply(frame, seq)
}

// renderMsg runs the render stage under s.mu: decode, cache-resolve,
// and execute one message. It returns the live framebuffer (valid only
// until the next render) when the batch completed a frame needing
// encode, nil otherwise. direct is a reply to send as-is, bypassing the
// encode stage (bootstrap acks).
func (s *Server) renderMsg(msg []byte) (frame []byte, seq uint64, direct []byte, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.BytesIn += int64(len(msg))
	msgType, seq, payload, err := decodeMsg(msg)
	if err != nil {
		return nil, 0, nil, err
	}
	switch msgType {
	case MsgFrameBatch:
		frame, err := s.executeBatch(payload)
		if err != nil {
			return nil, 0, nil, err
		}
		return frame, seq, nil, nil // frame == nil: no SwapBuffers boundary
	case MsgStateUpdate:
		if _, err := s.executeBatch(payload); err != nil {
			return nil, 0, nil, err
		}
		s.stats.StateUpdates++
		return nil, 0, nil, nil
	case MsgBootstrap:
		return nil, 0, encodeMsg(MsgBootstrapAck, seq, s.applyBootstrapLocked(payload)), nil
	default:
		return nil, 0, nil, fmt.Errorf("%w: type %d", ErrBadMessage, msgType)
	}
}

// applyBootstrapLocked restores a session checkpoint under s.mu and
// returns the 8-byte ack payload: the state fingerprint re-computed
// from the restored context, or zero when the stream was rejected (the
// server keeps its previous state untouched — Restore is atomic).
// After a successful restore the next encoded frame is forced to a
// keyframe: frames this server rendered before eviction may never have
// reached the client's decoder, so the delta codec's two ends could
// disagree; a keyframe resynchronizes them unconditionally.
func (s *Server) applyBootstrapLocked(payload []byte) []byte {
	var ack [8]byte
	cp, err := session.Decode(payload)
	if err == nil {
		var ctx *gles.Context
		var cache *cmdcache.Cache
		var decomp *lz4.Decompressor
		if ctx, cache, decomp, err = session.Restore(cp); err == nil {
			gpu := gles.NewGPU(s.cfg.Width, s.cfg.Height)
			gpu.SetParallelism(s.cfg.Parallelism)
			gpu.Ctx = ctx
			s.fragBase += s.gpu.FragmentsShaded
			s.gpu = gpu
			s.cache = cache
			s.decomp = decomp
			s.stats.Bootstraps++
			// encMu nests inside s.mu only here; encodeReply takes the
			// two locks sequentially, never nested, so order is safe.
			s.encMu.Lock()
			s.forceKey = true
			s.encMu.Unlock()
			binary.LittleEndian.PutUint64(ack[:], gles.StateFingerprint(ctx))
		}
	}
	if err != nil {
		s.stats.ExecErrors++
	}
	return ack[:]
}

// encodeReply runs the encode stage: turbo-encode one finished frame
// under s.encMu and wrap it in a reply message. Frames must reach the
// encoder in render order — the closed-loop delta codec's prev state is
// order-sensitive — which both callers guarantee (Handle by being
// synchronous, serve by using a single encoder goroutine fed from an
// ordered channel). The reply is built in the server's reusable staging
// buffer: it stays valid only until the next encode, so callers must
// send (rudp copies on Send) or copy it before handling another message.
func (s *Server) encodeReply(frame []byte, seq uint64) ([]byte, error) {
	s.encMu.Lock()
	key := s.forceKey
	s.forceKey = false
	pkt, err := s.enc.Encode(frame, key)
	if err != nil {
		s.encMu.Unlock()
		return nil, fmt.Errorf("core: encode frame: %w", err)
	}
	reply := appendMsgHeader(s.replyBuf[:0], MsgEncodedFrame, seq)
	reply = append(reply, pkt...)
	s.replyBuf = reply
	s.encMu.Unlock()
	s.mu.Lock()
	s.stats.FramesRendered++
	s.stats.BytesOut += int64(len(reply))
	s.mu.Unlock()
	return reply, nil
}

// executeBatch decompresses, cache-decodes, deserializes, and executes
// one batch. It returns the framebuffer when the batch ended a frame.
// Records stream through decode→execute one at a time: a record aliases
// cache storage that only the NEXT DecodeRecord's insert may evict, and
// the GL context copies anything it retains past Execute, so no
// per-record copy (and no record list) is ever materialized.
func (s *Server) executeBatch(payload []byte) ([]byte, error) {
	raw, err := s.decomp.Decompress(s.rawBuf[:0], payload, lz4.MaxBlockSize)
	s.rawBuf = raw
	if err != nil {
		return nil, fmt.Errorf("core: lz4: %w", err)
	}
	frameDone := false
	for i := 0; len(raw) > 0; i++ {
		rec, n, err := s.cache.DecodeRecord(raw)
		if err != nil {
			return nil, fmt.Errorf("core: cache: item %d: %w", i, err)
		}
		raw = raw[n:]
		cmd, _, err := s.dec.DecodeNoCopy(rec)
		if err != nil {
			return nil, fmt.Errorf("core: wire: %w", err)
		}
		res, err := s.gpu.Execute(cmd)
		if err != nil {
			// Driver-style diagnostics: record and continue, like a
			// real GPU raising GL errors without dying.
			s.stats.ExecErrors++
		}
		if res.FrameDone {
			frameDone = true
		}
	}
	if !frameDone {
		return nil, nil
	}
	return s.gpu.FB.Pix, nil
}

// Snapshot exposes the server's GL context fingerprint for the §VI-B
// consistency checks.
func (s *Server) Snapshot() gles.StateSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gpu.Ctx.Snapshot()
}
