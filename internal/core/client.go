package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/gbooster/gbooster/internal/cmdcache"
	"github.com/gbooster/gbooster/internal/dispatch"
	"github.com/gbooster/gbooster/internal/gles"
	"github.com/gbooster/gbooster/internal/glwire"
	"github.com/gbooster/gbooster/internal/hook"
	"github.com/gbooster/gbooster/internal/lz4"
	"github.com/gbooster/gbooster/internal/rudp"
	"github.com/gbooster/gbooster/internal/session"
	"github.com/gbooster/gbooster/internal/turbo"
)

// ClientConfig parameterizes the user-device runtime.
type ClientConfig struct {
	// Width, Height is the streaming resolution.
	Width, Height int
	// Quality is the turbo codec quality (must match the servers).
	Quality int
	// Arrays resolves deferred client vertex arrays (§IV-B); pass the
	// application's registry.
	Arrays glwire.ClientArrays
	// CacheBytes bounds each per-server command cache.
	CacheBytes int
	// Parallelism is the tile-parallel turbo decode degree: 0 selects
	// one worker per CPU, 1 the serial reference path. Output is
	// byte-identical at every degree.
	Parallelism int
	// PipelineDepth bounds frames in flight between each service's
	// receive and decode stages: 0 selects DefaultPipelineDepth,
	// negative decodes inline on the receive goroutine.
	PipelineDepth int

	// Failover tuning (zero values take the defaults below). A device
	// whose head-of-line request stops making progress — no result
	// within a deadline derived from its transport SRTT/RTO and its
	// observed per-frame service time — is struck, its orphaned frames
	// re-dispatched to a healthy replica; a frame lost on every device
	// is gap-skipped so the display never wedges on a dead device.

	// FailoverInterval is the overdue-scan period (default 25ms).
	FailoverInterval time.Duration
	// FailoverMinWait floors the progress deadline (default 200ms) so
	// a cold transport estimator cannot trigger spurious failovers.
	FailoverMinWait time.Duration
	// FailoverMaxWait caps the client's patience per head-of-line
	// result (default 3s). It is also the full deadline for a device
	// that has never produced a result — there is no service-time
	// observation to scale from. Devices legitimately slower than this
	// per frame need a larger value.
	FailoverMaxWait time.Duration
	// FailoverAttempts bounds total dispatch attempts per frame,
	// including the first (default 3).
	FailoverAttempts int

	// HandoffTimeout caps a bootstrap handoff: a joining device that has
	// not acked the checkpoint fingerprint within this window is
	// re-evicted (default 2×FailoverMaxWait).
	HandoffTimeout time.Duration
}

func (c ClientConfig) withDefaults() ClientConfig {
	if c.Quality <= 0 {
		c.Quality = turbo.DefaultQuality
	}
	if c.FailoverInterval <= 0 {
		c.FailoverInterval = 25 * time.Millisecond
	}
	if c.FailoverMinWait <= 0 {
		c.FailoverMinWait = 200 * time.Millisecond
	}
	if c.FailoverMaxWait <= 0 {
		c.FailoverMaxWait = 3 * time.Second
	}
	if c.FailoverMaxWait < c.FailoverMinWait {
		c.FailoverMaxWait = c.FailoverMinWait
	}
	if c.FailoverAttempts <= 0 {
		c.FailoverAttempts = 3
	}
	if c.HandoffTimeout <= 0 {
		c.HandoffTimeout = 2 * c.FailoverMaxWait
	}
	return c
}

// pipelineDepth resolves the receive/decode overlap bound.
func (c ClientConfig) pipelineDepth() int {
	switch {
	case c.PipelineDepth < 0:
		return 0
	case c.PipelineDepth == 0:
		return DefaultPipelineDepth
	default:
		return c.PipelineDepth
	}
}

// Frame is one displayed frame.
type Frame struct {
	Seq    uint64
	Pixels []byte // RGBA copy, Width*Height*4
}

// ClientStats counts client-side work.
type ClientStats struct {
	FramesSent      int64
	FramesDisplayed int64
	RawBytes        int64 // serialized records before cache+LZ4
	WireBytes       int64 // bytes actually sent
	StateBytes      int64 // replication traffic to non-assigned servers
	// PreCompressBytes counts cache-encoded uplink bytes before stream
	// compression (frame batches and state updates). The uplink LZ4
	// ratio is WireBytes relative to it.
	PreCompressBytes int64
	// CacheHits / CacheMisses count records the mirrored command caches
	// replaced with a reference vs. shipped in full, across batch and
	// state-replication encodes.
	CacheHits   int64
	CacheMisses int64

	// Failover counters (§VI-C fault tolerance).

	// ReDispatched counts frame batches re-sent to a replacement
	// device after the assigned one missed its deadline.
	ReDispatched int64
	// FramesSkipped counts frames abandoned on every device and
	// gap-skipped so the display could advance.
	FramesSkipped int64
	// LateFrames counts results that arrived after their seq was
	// released or already buffered (duplicates from re-dispatch or a
	// slow-but-alive device).
	LateFrames int64
	// Evictions / Readmissions mirror the dispatch health state
	// machine's transitions.
	Evictions    int64
	Readmissions int64
	// RecvBadMsgs counts undecodable messages dropped by the receive
	// loop; RecvUnexpected counts well-formed messages of a type the
	// client does not handle.
	RecvBadMsgs    int64
	RecvUnexpected int64

	// Handoff counters (session checkpoint & live device handoff).

	// BootstrapsSent counts session bootstrap streams shipped to
	// joining or readmitting devices; BootstrapBytes their total size.
	BootstrapsSent int64
	BootstrapBytes int64
	// HandoffsCompleted counts handoffs admitted on a matching
	// fingerprint ack; HandoffsFailed counts handoffs aborted on a
	// mismatched ack, a send failure, or the handoff deadline.
	HandoffsCompleted int64
	HandoffsFailed    int64
	// HandoffLatencyTotal accumulates checkpoint-to-admission time over
	// completed handoffs (mean = total / HandoffsCompleted).
	HandoffLatencyTotal time.Duration

	// Downlink / adaptive-quality counters.

	// DownlinkBytes counts encoded frame payload bytes received and
	// decoded across all service connections.
	DownlinkBytes int64
	// QualityNow is the quality of the most recently decoded frame
	// (from the turbo packet header; zero before the first frame).
	// QualityMin is the lowest quality seen, and QualityChanges counts
	// mid-stream quality steps — both reveal a server-side adaptive
	// ladder at work.
	QualityNow     int
	QualityMin     int
	QualityChanges int64

	// Transport holds one health snapshot per attached service
	// connection, in attach order.
	Transport []TransportHealth
}

// TransportHealth is one service connection's reliable-UDP snapshot:
// the adaptive-RTO estimator state (SRTT/RTTVAR/RTO), resend counters,
// and window occupancy, tagged with the service name.
type TransportHealth struct {
	Service string
	rudp.Stats
}

// inflightReq tracks an outstanding rendering request: Eq. 4 queue
// accounting plus everything the failover path needs to re-dispatch it
// — the raw records (re-encoded through the replacement device's
// mirrored cache), the send time its deadline is measured from, and
// the devices that already failed it.
type inflightReq struct {
	svc      *service
	workload float64
	recs     [][]byte
	sentAt   time.Time
	attempts int
	tried    map[string]bool // device IDs that already failed this frame
}

// service is one connected service device.
type service struct {
	name  string
	conn  *rudp.Conn
	cache *cmdcache.Cache
	comp  *lz4.Compressor // inter-frame uplink stream state (guarded by Client.mu)
	dec   *turbo.Decoder
	dev   *dispatch.Device

	// Failure-detector state (guarded by Client.mu). A server works
	// its queue serially, so the client watches per-device progress,
	// not per-request wall time: lastReply marks the most recent
	// result, svcEWMA smooths the observed head-of-line service time.
	lastReply time.Time
	svcEWMA   time.Duration

	// lastQuality is the turbo quality of this service's most recent
	// decoded frame (guarded by Client.mu); changes feed
	// ClientStats.QualityChanges.
	lastQuality int

	// Handoff state (guarded by Client.mu). While a bootstrap handoff
	// is live the device is Joining: it gets state updates but no frame
	// batches. handoffSending marks the window where the handoff
	// goroutine still owns the send path — state updates encoded during
	// it are appended to joinQueue so the goroutine can ship them after
	// the bootstrap, preserving the cache/compressor stream order. The
	// epoch invalidates a superseded goroutine or late ack.
	handoffLive     bool
	handoffSending  bool
	handoffAcked    bool
	handoffAckFP    uint64
	handoffFP       uint64
	handoffSentAt   time.Time
	handoffDeadline time.Time
	handoffEpoch    uint64
	joinQueue       [][]byte
}

// Client is the wrapper-side runtime installed behind the hooked GL
// symbols. Its CommandSink intercepts every GL call; frames flush on
// eglSwapBuffers, which returns immediately (the §VI-A non-blocking
// rewrite).
type Client struct {
	cfg ClientConfig

	mu        sync.Mutex
	enc       *glwire.Encoder
	services  []*service
	sched     *dispatch.Scheduler
	seq       uint64
	frameRecs [][]byte
	inflight  map[uint64]*inflightReq
	reorder   *dispatch.Reorder[Frame]
	stats     ClientStats
	sinkErr   error

	// loadForecast, when set, supplies the predictive controller's
	// expected extra workload (records) for the forecast horizon; the
	// scheduler adds it to Eq. 4's r term so device selection anticipates
	// the burst instead of reacting to it. Non-nil also enables the live
	// SRTT refresh in sweepOverdue (guarded by mu).
	loadForecast func() float64

	// shadow mirrors the servers' GL context byte-for-byte: every
	// encoded state-mutating record is decoded and applied to it, so a
	// session checkpoint captured from it restores a cold server to
	// exactly the state its peers hold. It must track the *encoded*
	// records, not the raw commands — the encoder resolves deferred
	// client-array attribs at draw time, so the wire stream is the only
	// faithful source (guarded by mu).
	shadow    *gles.Context
	shadowDec glwire.Decoder

	// Pooled uplink scratch. The steady-state flush path reuses all of
	// these across frames so shipping a frame allocates nothing (see
	// DESIGN.md §11 for the ownership rules). scratch is a sync.Pool so
	// concurrent users (flush under mu, failover redispatch) never
	// contend; the free lists below are mu-guarded like the data they
	// recycle.
	scratch  sync.Pool      // of *uplinkScratch
	encBuf   []byte         // glwire encode scratch (guarded by mu)
	splitBuf [][]byte       // record-split scratch (guarded by mu)
	recFree  [][]byte       // record-copy buffers awaiting reuse (guarded by mu)
	recsFree [][][]byte     // frame record-slice headers (guarded by mu)
	reqFree  []*inflightReq // completed request structs (guarded by mu)
	stateBuf [][]byte       // state-replication filter scratch (guarded by mu)

	frames chan Frame
	done   chan struct{}
	wg     sync.WaitGroup
	closed sync.Once
}

// uplinkScratch is one send's reusable buffer set: the cache-encoded
// wire bytes and the framed, compressed message built from them. Both
// are fully consumed before the scratch is returned (the compressor
// copies wire into its history window; rudp copies msg into its
// retransmit window), so ownership never escapes the pool.
type uplinkScratch struct {
	wire []byte
	msg  []byte
}

func (c *Client) getScratch() *uplinkScratch {
	return c.scratch.Get().(*uplinkScratch)
}

func (c *Client) putScratch(sc *uplinkScratch) {
	c.scratch.Put(sc)
}

// getRecsLocked returns an empty record-slice header for the next
// frame's accumulation, reusing a released frame's header when one is
// available.
func (c *Client) getRecsLocked() [][]byte {
	if n := len(c.recsFree); n > 0 {
		recs := c.recsFree[n-1]
		c.recsFree[n-1] = nil
		c.recsFree = c.recsFree[:n-1]
		return recs
	}
	return nil
}

// copyRecLocked copies one encoded record into a client-owned buffer,
// reusing a released record's buffer when one is available. frameRecs
// must own its bytes — the encoder scratch it is sliced from is
// overwritten by the next command.
func (c *Client) copyRecLocked(rec []byte) []byte {
	var buf []byte
	if n := len(c.recFree); n > 0 {
		buf = c.recFree[n-1]
		c.recFree[n-1] = nil
		c.recFree = c.recFree[:n-1]
	}
	return append(buf[:0], rec...)
}

// getReqLocked returns a request struct ready to fill, reusing a
// completed one when available.
func (c *Client) getReqLocked() *inflightReq {
	if n := len(c.reqFree); n > 0 {
		req := c.reqFree[n-1]
		c.reqFree[n-1] = nil
		c.reqFree = c.reqFree[:n-1]
		return req
	}
	return &inflightReq{tried: make(map[string]bool)}
}

// releaseReqLocked recycles a finished request: its record buffers and
// slice header go back on the free lists and the struct is reset for
// reuse. The caller must be done with req.recs — future frames
// overwrite the buffers.
func (c *Client) releaseReqLocked(req *inflightReq) {
	for i, rec := range req.recs {
		c.recFree = append(c.recFree, rec)
		req.recs[i] = nil
	}
	c.recsFree = append(c.recsFree, req.recs[:0])
	req.recs = nil
	req.svc = nil
	req.workload = 0
	req.sentAt = time.Time{}
	req.attempts = 0
	clear(req.tried)
	c.reqFree = append(c.reqFree, req)
}

// NewClient builds a client runtime; attach servers with AddService
// before generating frames.
func NewClient(cfg ClientConfig) (*Client, error) {
	cfg = cfg.withDefaults()
	if cfg.Width <= 0 || cfg.Height <= 0 {
		return nil, fmt.Errorf("%w: resolution %dx%d", ErrBadMessage, cfg.Width, cfg.Height)
	}
	c := &Client{
		cfg:      cfg,
		enc:      glwire.NewEncoder(cfg.Arrays),
		inflight: make(map[uint64]*inflightReq),
		reorder:  dispatch.NewReorder[Frame](0, 256),
		shadow:   gles.NewContext(),
		frames:   make(chan Frame, 64),
		done:     make(chan struct{}),
	}
	c.scratch.New = func() any { return new(uplinkScratch) }
	c.wg.Add(1)
	go c.failoverLoop()
	return c, nil
}

// AddService attaches a connected service device. capability is Eq. 4's
// c^j in records/second (relative values are what matter); rtt its l^j.
func (c *Client) AddService(name string, conn *rudp.Conn, capability float64, rtt time.Duration) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	dev, err := dispatch.NewDevice(name, capability, rtt)
	if err != nil {
		return fmt.Errorf("core: add service: %w", err)
	}
	svc := &service{
		name:  name,
		conn:  conn,
		cache: cmdcache.New(c.cfg.CacheBytes),
		comp:  lz4.NewCompressor(),
		dec:   turbo.NewDecoder(c.cfg.Width, c.cfg.Height, c.cfg.Quality),
		dev:   dev,
	}
	svc.dec.SetParallelism(c.cfg.Parallelism)
	// Grow the live scheduler rather than rebuilding it: a rebuild
	// would silently zero the accumulated Assigned/PerDevice/TotalWork
	// stats (and the health state) of the existing devices.
	if c.sched == nil {
		c.sched, err = dispatch.NewScheduler(dev)
		if err != nil {
			return fmt.Errorf("core: scheduler: %w", err)
		}
		if c.loadForecast != nil {
			c.sched.SetForecast(c.loadForecast)
		}
	} else if err := c.sched.AddDevice(dev); err != nil {
		return fmt.Errorf("core: scheduler: %w", err)
	}
	c.services = append(c.services, svc)
	if depth := c.cfg.pipelineDepth(); depth > 0 {
		// Receive/decode overlap: the recv goroutine validates and
		// hands off, the decode goroutine runs the turbo decoder. The
		// bounded channel keeps a slow decoder from buffering the
		// world.
		jobs := make(chan decodeJob, depth)
		c.wg.Add(2)
		go c.recvLoop(svc, jobs)
		go c.decodeLoop(svc, jobs)
	} else {
		c.wg.Add(1)
		go c.recvLoop(svc, nil)
	}
	if c.seq > 0 {
		// Mid-session hot-join: the new server is cold while its peers
		// carry the full session state, so it must not enter the
		// rotation until a bootstrap handoff has replayed the shadow
		// checkpoint into it and it has acked the state fingerprint.
		// MarkJoining happens inside beginHandoffLocked, before mu is
		// released, so no frame can be assigned to the cold device.
		if err := c.beginHandoffLocked(svc); err != nil {
			return err
		}
	}
	return nil
}

// DeviceState is one attached device's dispatch view: its health in
// the failure state machine and its outstanding Eq. 4 workload.
type DeviceState struct {
	Service string
	Health  dispatch.Health
	Queued  float64
}

// DeviceStates snapshots every attached device's health and queue.
func (c *Client) DeviceStates() []DeviceState {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]DeviceState, 0, len(c.services))
	for _, s := range c.services {
		out = append(out, DeviceState{Service: s.name, Health: s.dev.Health(), Queued: s.dev.Queued()})
	}
	return out
}

// Sink returns the CommandSink to install behind the hooked GL symbols.
func (c *Client) Sink() hook.CommandSink {
	return func(cmd gles.Command) { c.consume(cmd) }
}

// Install registers and preloads the GBooster wrapper library in the
// process's linker — the complete §IV-A hook installation.
func (c *Client) Install(ln *hook.Linker, soname string) error {
	_, err := hook.InstallWrapper(ln, soname, c.Sink())
	return err
}

// Err surfaces the first asynchronous error the sink path hit (the GL
// ABI has no error return, matching the real wrapper's constraint).
func (c *Client) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sinkErr
}

// Stats snapshots client counters, including per-service transport
// health.
func (c *Client) Stats() ClientStats {
	c.mu.Lock()
	st := c.stats
	if c.sched != nil {
		st.Evictions = int64(c.sched.Stats.Evictions)
		st.Readmissions = int64(c.sched.Stats.Readmissions)
	}
	svcs := append([]*service(nil), c.services...)
	c.mu.Unlock()
	st.Transport = make([]TransportHealth, 0, len(svcs))
	for _, s := range svcs {
		st.Transport = append(st.Transport, TransportHealth{Service: s.name, Stats: s.conn.Stats()})
	}
	return st
}

// SetLoadForecast installs the predictive controller's load-forecast
// hook: f returns the expected extra workload (records) arriving
// within the forecast horizon, and the scheduler biases Eq. 4's cost
// with it so device selection anticipates the burst. Installing a hook
// also enables the live SRTT refresh in the failure sweep, keeping
// l_j current with measured transport latency. Pass nil to restore
// purely reactive dispatch.
func (c *Client) SetLoadForecast(f func() float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.loadForecast = f
	if c.sched != nil {
		c.sched.SetForecast(f)
	}
}

// TrafficBytes returns total wire traffic (uplink + downlink) the
// client has moved, for traffic-rate differencing by the predictive
// controller.
func (c *Client) TrafficBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats.WireBytes + c.stats.DownlinkBytes
}

// TransportStats returns the per-service transport health snapshots
// alone, for callers polling link quality without the full counter set.
func (c *Client) TransportStats() []TransportHealth {
	return c.Stats().Transport
}

// consume intercepts one GL command.
func (c *Client) consume(cmd gles.Command) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.sinkErr != nil {
		return
	}
	buf, err := c.enc.Encode(c.encBuf[:0], cmd)
	c.encBuf = buf
	if err != nil {
		c.sinkErr = fmt.Errorf("core: serialize %v: %w", cmd.Op, err)
		return
	}
	if len(buf) > 0 {
		recs, err := glwire.AppendSplitRecords(c.splitBuf[:0], buf)
		c.splitBuf = recs
		if err != nil {
			c.sinkErr = fmt.Errorf("core: split: %w", err)
			return
		}
		for _, rec := range recs {
			c.frameRecs = append(c.frameRecs, c.copyRecLocked(rec))
			c.stats.RawBytes += int64(len(rec))
			c.applyShadowLocked(rec)
		}
	}
	if cmd.IsFrameBoundary() {
		if err := c.flushFrameLocked(); err != nil {
			c.sinkErr = err
		}
	}
}

// flushFrameLocked ships the accumulated frame: the full batch to the
// Eq. 4-chosen server, state-mutating records to every other live
// server. A frame no device will accept is gap-skipped — only that
// frame fails, never the whole client.
func (c *Client) flushFrameLocked() error {
	recs := c.frameRecs
	c.frameRecs = c.getRecsLocked()
	if len(c.services) == 0 {
		return fmt.Errorf("%w: no service devices attached", ErrClosed)
	}
	seq := c.seq
	c.seq++
	req := c.getReqLocked()
	req.workload = float64(len(recs))
	req.recs = recs
	if err := c.sendBatchLocked(seq, req); err != nil {
		if !errors.Is(err, dispatch.ErrNoHealthyDevices) {
			return err
		}
		// Every device is dead or quarantined: degrade to dropping this
		// frame instead of poisoning the sink.
		c.stats.FramesSkipped++
		skipped := c.reorder.Skip(seq)
		c.releaseReqLocked(req)
		c.deliverLocked(skipped)
		return nil
	}
	c.inflight[seq] = req
	c.stats.FramesSent++

	// State replication to the others (the real system multicasts; one
	// logical transmission per non-assigned server here). Evicted
	// devices are excluded: their reliable channel would queue the
	// update unacknowledged until the send window wedged the client.
	stateRecs := c.stateBuf[:0]
	for _, rec := range recs {
		op, err := glwire.PeekOp(rec)
		if err != nil {
			c.stateBuf = stateRecs
			return fmt.Errorf("core: peek: %w", err)
		}
		if (gles.Command{Op: op}).MutatesState() {
			stateRecs = append(stateRecs, rec)
		}
	}
	c.stateBuf = stateRecs
	if len(stateRecs) == 0 {
		return nil
	}
	sc := c.getScratch()
	defer c.putScratch(sc)
	for _, s := range c.services {
		if s == req.svc {
			continue
		}
		switch s.dev.Health() {
		case dispatch.Evicted:
			continue
		case dispatch.Joining:
			if !s.handoffLive {
				// Joining with no live handoff: an abort is in flight
				// (the sweeper will resolve the state); don't desync
				// the mirrored cache by encoding into it.
				continue
			}
		}
		if s.handoffLive && s.handoffSending {
			// The handoff goroutine still owns this device's send path
			// (bootstrap or earlier queued updates not yet on the
			// wire). Encode NOW — the mirrored cache and compressor
			// must advance in flush order — but queue the finished
			// message for the goroutine to ship after its backlog.
			wire, hits, err := s.cache.EncodeAll(sc.wire[:0], stateRecs)
			sc.wire = wire
			if err != nil {
				return fmt.Errorf("core: state encode: %w", err)
			}
			c.stats.CacheHits += int64(hits)
			c.stats.CacheMisses += int64(len(stateRecs) - hits)
			msg := s.comp.Compress(appendMsgHeader(sc.msg[:0], MsgStateUpdate, 0), wire)
			sc.msg = msg
			s.joinQueue = append(s.joinQueue, append([]byte(nil), msg...))
			c.stats.PreCompressBytes += int64(len(wire))
			continue
		}
		if !c.windowFitsLocked(s, stateRecs) && !c.waitWindowLocked(s, stateRecs) {
			// The channel stayed saturated with unacked data through
			// the drain wait — a strong dead-device signal. Dropping
			// the update here keeps the command caches coherent
			// (neither side encodes it); only the replica's GL state
			// goes stale, which readmission tolerates (see DESIGN.md,
			// failure semantics).
			c.sched.ReportFailure(s.dev)
			continue
		}
		wire, hits, err := s.cache.EncodeAll(sc.wire[:0], stateRecs)
		sc.wire = wire
		if err != nil {
			return fmt.Errorf("core: state encode: %w", err)
		}
		c.stats.CacheHits += int64(hits)
		c.stats.CacheMisses += int64(len(stateRecs) - hits)
		msg := s.comp.Compress(appendMsgHeader(sc.msg[:0], MsgStateUpdate, 0), wire)
		sc.msg = msg
		if err := s.conn.Send(msg); err != nil {
			// The conn is dead for good; its cache and compressor just
			// diverged from the server's, so the device must never come
			// back.
			c.sched.Quarantine(s.dev)
			continue
		}
		c.stats.WireBytes += int64(len(msg))
		c.stats.StateBytes += int64(len(msg))
		c.stats.PreCompressBytes += int64(len(wire))
	}
	return nil
}

// windowGuardSlack keeps a few datagrams of headroom so a send can
// never block on a saturated reliable channel while holding c.mu.
const windowGuardSlack = 4

// waitWindowLocked gives s's transport a bounded chance to drain a
// saturated send window before the caller may treat the saturation as
// a dead-device signal. A burst of frame flushes can legitimately fill
// the window faster than acks return — the guard exists so a dead
// peer can't wedge the pipeline forever, not to fail devices that are
// merely backlogged — so back off for a few RTOs and recheck. Returns
// true once the send fits. c.mu stays held across the sleeps: ack
// processing is rudp-internal and needs no client state, and the wait
// is bounded, so decode/failover work is delayed, never deadlocked.
func (c *Client) waitWindowLocked(s *service, recs [][]byte) bool {
	// Progress-based, like the failover detector: any ack progress
	// (occupancy dropping) resets the clock, so a slowly-draining
	// window is waited out however long it takes, while a window that
	// stops moving for a few RTOs is declared stuck.
	quiet := 4 * s.conn.Stats().RTO
	if quiet < 50*time.Millisecond {
		quiet = 50 * time.Millisecond
	}
	if quiet > 500*time.Millisecond {
		quiet = 500 * time.Millisecond
	}
	last := s.conn.Stats().WindowOccupancy
	deadline := time.Now().Add(quiet)
	for time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
		if c.windowFitsLocked(s, recs) {
			return true
		}
		if occ := s.conn.Stats().WindowOccupancy; occ < last {
			last = occ
			deadline = time.Now().Add(quiet)
		}
	}
	return false
}

// windowFitsLocked estimates whether sending recs to s could block on
// its transport window. The estimate uses raw record bytes (an upper
// bound on the encoded size) against the default datagram payload.
func (c *Client) windowFitsLocked(s *service, recs [][]byte) bool {
	st := s.conn.Stats()
	if st.WindowLimit <= 0 {
		return true
	}
	total := 0
	for _, r := range recs {
		total += len(r)
	}
	need := total/1200 + 1 + windowGuardSlack
	return st.WindowOccupancy+need <= st.WindowLimit
}

// serviceFor maps a dispatch device back to its service.
func (c *Client) serviceFor(dev *dispatch.Device) *service {
	for _, s := range c.services {
		if s.dev == dev {
			return s
		}
	}
	return nil
}

// sendBatchLocked places req's frame on an assignable device and ships
// it, trying further devices if a chosen one cannot accept the send.
// On success req.svc/sentAt/attempts reflect the dispatch. On failure
// every touched device's queue accounting has been rolled back and the
// request is on no device.
func (c *Client) sendBatchLocked(seq uint64, req *inflightReq) error {
	sc := c.getScratch()
	defer c.putScratch(sc)
	for {
		var dev *dispatch.Device
		var err error
		if len(req.tried) == 0 {
			dev, _, err = c.sched.Assign(req.workload)
		} else {
			var exclude []*dispatch.Device
			for _, s := range c.services {
				if req.tried[s.dev.ID] {
					exclude = append(exclude, s.dev)
				}
			}
			dev, _, err = c.sched.Reassign(req.workload, exclude...)
		}
		if err != nil {
			return err
		}
		svc := c.serviceFor(dev)
		if svc == nil {
			c.sched.Complete(dev, req.workload)
			return fmt.Errorf("core: assigned device %q has no service", dev.ID)
		}
		req.tried[dev.ID] = true
		// Never let Send block on a saturated window while holding mu:
		// guard before encoding so a rejected device's mirrored cache
		// stays untouched. A window that stays full through the drain
		// wait counts as a failure; one that is merely absorbing a
		// burst does not.
		if !c.windowFitsLocked(svc, req.recs) && !c.waitWindowLocked(svc, req.recs) {
			c.sched.Complete(dev, req.workload)
			c.sched.ReportFailure(dev)
			continue
		}
		wire, hits, err := svc.cache.EncodeAll(sc.wire[:0], req.recs)
		sc.wire = wire
		if err != nil {
			c.sched.Complete(dev, req.workload)
			return fmt.Errorf("core: cache encode: %w", err)
		}
		c.stats.CacheHits += int64(hits)
		c.stats.CacheMisses += int64(len(req.recs) - hits)
		batch := svc.comp.Compress(appendMsgHeader(sc.msg[:0], MsgFrameBatch, seq), wire)
		sc.msg = batch
		if err := svc.conn.Send(batch); err != nil {
			// Roll the workload back off the device and drop the seq
			// from its books — leaving either in place leaks the slot
			// forever. The cache and compressor already advanced past a
			// batch the server will never see, so the device is done
			// for good.
			c.sched.Complete(dev, req.workload)
			c.sched.Quarantine(dev)
			continue
		}
		c.stats.WireBytes += int64(len(batch))
		c.stats.PreCompressBytes += int64(len(wire))
		req.svc = svc
		req.sentAt = time.Now()
		req.attempts++
		return nil
	}
}

// deliverLocked forwards released frames to the display channel while
// holding mu (see recvLoop for why ordering requires that). It reports
// false if the client shut down mid-delivery.
func (c *Client) deliverLocked(released []Frame) bool {
	for _, f := range released {
		select {
		case c.frames <- f:
		case <-c.done:
			return false
		}
	}
	c.stats.FramesDisplayed += int64(len(released))
	return true
}

// failoverLoop periodically sweeps inflight requests for overdue
// results — the §VI-C data plane's liveness guarantee: a device that
// accepts a request and never answers cannot stall the display.
func (c *Client) failoverLoop() {
	defer c.wg.Done()
	ticker := time.NewTicker(c.cfg.FailoverInterval)
	defer ticker.Stop()
	for {
		select {
		case <-c.done:
			return
		case <-ticker.C:
			if !c.sweepOverdue(time.Now()) {
				return
			}
		}
	}
}

// progressWait is how long a device may go without answering its
// head-of-line request before it is declared failed. A device that is
// merely slow keeps producing results, which keeps pushing the
// reference point forward; only a device making no progress at all can
// exceed this wait. Derived from the transport estimator (absorbing a
// few retransmissions) and the observed per-frame service time; a
// device that has never answered gets the full FailoverMaxWait.
func (c *Client) progressWait(svc *service) time.Duration {
	if svc.svcEWMA <= 0 {
		return c.cfg.FailoverMaxWait
	}
	st := svc.conn.Stats()
	wait := 2*st.SRTT + 3*st.RTO
	if wait < c.cfg.FailoverMinWait {
		wait = c.cfg.FailoverMinWait
	}
	if g := 4 * svc.svcEWMA; g > wait {
		wait = g
	}
	if wait > c.cfg.FailoverMaxWait {
		wait = c.cfg.FailoverMaxWait
	}
	return wait
}

// sweepOverdue finds devices whose head-of-line request has made no
// progress past their deadline, strikes them, and re-dispatches every
// request orphaned on them to a healthy replica (whose mirrored cache
// already carries the replicated state stream). When no device remains
// or a frame's attempts are spent, only that frame is abandoned, via
// the reorder buffer's gap-skip. Returns false if the client shut down
// during frame delivery.
func (c *Client) sweepOverdue(now time.Time) bool {
	c.mu.Lock()
	if c.sinkErr != nil || c.sched == nil {
		c.mu.Unlock()
		return true
	}
	if c.loadForecast != nil {
		// Predictive dispatch refreshes each device's l_j from the
		// transport's measured SRTT, so Eq. 4 ranks devices on live
		// latency rather than the admission-time estimate. Gated on the
		// forecast hook so default (reactive) behavior is unchanged.
		for _, svc := range c.services {
			if srtt := svc.conn.Stats().SRTT; srtt > 0 {
				svc.dev.SetRTT(srtt)
			}
		}
	}
	// Oldest outstanding dispatch per device: replies come back in
	// dispatch order on each connection, so this is the request the
	// device owes next.
	head := make(map[*service]time.Time)
	for _, req := range c.inflight {
		if t, ok := head[req.svc]; !ok || req.sentAt.Before(t) {
			head[req.svc] = req.sentAt
		}
	}
	var failed []*service
	for svc, h := range head {
		ref := h
		if svc.lastReply.After(ref) {
			ref = svc.lastReply
		}
		if now.After(ref.Add(c.progressWait(svc))) {
			failed = append(failed, svc)
		}
	}
	for _, svc := range failed {
		// One strike per failure event, not per orphaned frame.
		c.sched.ReportFailure(svc.dev)
		if !c.migrateOrphansLocked(svc) {
			c.mu.Unlock()
			return false
		}
	}
	c.sweepHandoffsLocked(now)
	c.mu.Unlock()
	return true
}

// migrateOrphansLocked re-dispatches every inflight request currently
// owned by svc to a healthy replica (whose mirrored cache already
// carries the replicated state stream), gap-skipping any frame whose
// attempts are spent or that no device will accept. Shared by the
// failure sweep and administrative draining. Returns false if the
// client shut down mid-delivery.
func (c *Client) migrateOrphansLocked(svc *service) bool {
	var orphans []uint64
	for seq, req := range c.inflight {
		if req.svc == svc {
			orphans = append(orphans, seq)
		}
	}
	// Ascending order so consecutive skips release frames
	// deterministically.
	sort.Slice(orphans, func(i, j int) bool { return orphans[i] < orphans[j] })
	for _, seq := range orphans {
		req := c.inflight[seq]
		c.sched.Complete(svc.dev, req.workload)
		if req.attempts < c.cfg.FailoverAttempts {
			if err := c.sendBatchLocked(seq, req); err == nil {
				c.stats.ReDispatched++
				continue
			}
		}
		// Lost on every device: fail only this frame.
		delete(c.inflight, seq)
		c.releaseReqLocked(req)
		c.stats.FramesSkipped++
		if !c.deliverLocked(c.reorder.Skip(seq)) {
			return false
		}
	}
	return true
}

// applyShadowLocked applies one just-encoded state-mutating record to
// the shadow context, keeping it byte-faithful to the wire stream the
// servers replay. Decode/apply errors are deliberately not surfaced:
// the servers run the identical deterministic code on the identical
// bytes, so both sides reject the same records and stay in lockstep.
func (c *Client) applyShadowLocked(rec []byte) {
	op, err := glwire.PeekOp(rec)
	if err != nil || !(gles.Command{Op: op}).MutatesState() {
		return
	}
	if cmd, _, err := c.shadowDec.Decode(rec); err == nil {
		_ = c.shadow.Apply(cmd)
	}
}

// beginHandoffLocked starts a bootstrap handoff to svc: it captures a
// session checkpoint (shadow GL state, svc's mirrored command cache in
// eviction order, svc's compression dictionary window), moves the
// device to Joining, and hands the bootstrap to a goroutine — rudp
// sends block on a full window and must never run under c.mu.
func (c *Client) beginHandoffLocked(svc *service) error {
	if svc.handoffLive {
		return nil
	}
	cp, err := session.Capture(c.shadow, svc.cache, svc.comp)
	if err != nil {
		return fmt.Errorf("core: checkpoint: %w", err)
	}
	boot := session.Append(appendMsgHeader(make([]byte, 0, cp.Size()+16), MsgBootstrap, 0), cp)
	c.sched.MarkJoining(svc.dev)
	if svc.dev.Health() != dispatch.Joining {
		return fmt.Errorf("core: handoff: device %q cannot join", svc.name)
	}
	svc.handoffLive = true
	svc.handoffSending = true
	svc.handoffAcked = false
	svc.handoffFP = cp.Fingerprint()
	svc.handoffSentAt = time.Now()
	svc.handoffDeadline = svc.handoffSentAt.Add(c.cfg.HandoffTimeout)
	svc.handoffEpoch++
	svc.joinQueue = svc.joinQueue[:0]
	c.stats.BootstrapsSent++
	c.stats.BootstrapBytes += int64(len(boot))
	c.stats.WireBytes += int64(len(boot))
	c.wg.Add(1)
	go c.runHandoff(svc, svc.handoffEpoch, boot)
	return nil
}

// runHandoff ships one handoff's bootstrap stream and then drains the
// join queue — state updates that were encoded (in flush order, under
// mu) while the bootstrap was still in flight. Only after the queue is
// empty does it release the send path back to flushFrameLocked; the
// handoffSending flag flips under the same mu hold that observes the
// empty queue, so the server sees bootstrap, queued updates, and live
// updates in exactly the order the mirrored cache and compressor
// produced them.
func (c *Client) runHandoff(svc *service, epoch uint64, boot []byte) {
	defer c.wg.Done()
	if err := svc.conn.Send(boot); err != nil {
		c.mu.Lock()
		c.abortHandoffLocked(svc, epoch)
		c.mu.Unlock()
		return
	}
	c.mu.Lock()
	for svc.handoffLive && svc.handoffEpoch == epoch && len(svc.joinQueue) > 0 {
		msg := svc.joinQueue[0]
		svc.joinQueue = svc.joinQueue[1:]
		c.mu.Unlock()
		err := svc.conn.Send(msg)
		c.mu.Lock()
		if err != nil {
			// The cache and compressor advanced past a message the
			// server will never see; the device must never come back.
			c.sched.Quarantine(svc.dev)
			c.abortHandoffLocked(svc, epoch)
			c.mu.Unlock()
			return
		}
		c.stats.WireBytes += int64(len(msg))
		c.stats.StateBytes += int64(len(msg))
	}
	if svc.handoffLive && svc.handoffEpoch == epoch {
		svc.handoffSending = false
		if svc.handoffAcked {
			// The ack raced ahead of the queue drain; admission was
			// deferred to here so no frame batch could jump the queued
			// state updates on the wire.
			c.finishHandoffLocked(svc, epoch, svc.handoffAckFP)
		}
	}
	c.mu.Unlock()
}

// finishHandoffLocked resolves a live handoff against the server's ack:
// the device is admitted to the rotation only when the server's
// fingerprint — re-computed from its restored context — exactly matches
// the checkpoint's, proving byte-identical state. Anything else (a zero
// fingerprint marks a failed restore) re-evicts the device.
func (c *Client) finishHandoffLocked(svc *service, epoch uint64, fp uint64) {
	if !svc.handoffLive || svc.handoffEpoch != epoch {
		return
	}
	ok := fp != 0 && fp == svc.handoffFP
	c.clearHandoffLocked(svc)
	c.sched.FinishJoin(svc.dev, ok)
	if ok {
		c.stats.HandoffsCompleted++
		c.stats.HandoffLatencyTotal += time.Since(svc.handoffSentAt)
	} else {
		c.stats.HandoffsFailed++
	}
}

// abortHandoffLocked fails a live handoff (deadline, send error, or a
// mid-join eviction) and re-evicts the device. Stale epochs — a
// superseded goroutine waking up after its handoff was already resolved
// — are ignored.
func (c *Client) abortHandoffLocked(svc *service, epoch uint64) {
	if !svc.handoffLive || svc.handoffEpoch != epoch {
		return
	}
	c.clearHandoffLocked(svc)
	c.sched.FinishJoin(svc.dev, false)
	c.stats.HandoffsFailed++
}

func (c *Client) clearHandoffLocked(svc *service) {
	svc.handoffLive = false
	svc.handoffSending = false
	svc.handoffAcked = false
	svc.joinQueue = nil
}

// sweepHandoffsLocked advances the handoff lifecycle on the failover
// tick: live handoffs past their deadline (or whose device fell out of
// Joining, e.g. a mid-join failure report) are aborted, and evicted
// devices whose probe cool-down has passed get a fresh bootstrap — but
// only once their send window has fully drained. A blackholed device
// never drains its unacked window, so the liveness precheck keeps dead
// devices from wedging handoff goroutines on blocked sends.
func (c *Client) sweepHandoffsLocked(now time.Time) {
	for _, svc := range c.services {
		if svc.handoffLive {
			if svc.dev.Health() != dispatch.Joining || now.After(svc.handoffDeadline) {
				c.abortHandoffLocked(svc, svc.handoffEpoch)
			}
			continue
		}
		if c.sched.NeedsBootstrap(svc.dev) && svc.conn.Stats().WindowOccupancy == 0 {
			_ = c.beginHandoffLocked(svc)
		}
	}
}

// DrainService administratively removes a device from the rotation: no
// further frames or state updates are dispatched to it, and its
// in-flight frames migrate to the remaining replicas through the same
// re-dispatch path a failed device's orphans take. The device stays
// attached and may later be readmitted via a bootstrap handoff.
func (c *Client) DrainService(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var svc *service
	for _, s := range c.services {
		if s.name == name {
			svc = s
			break
		}
	}
	if svc == nil {
		return fmt.Errorf("core: drain: unknown service %q", name)
	}
	if svc.handoffLive {
		c.abortHandoffLocked(svc, svc.handoffEpoch)
	}
	c.sched.Drain(svc.dev)
	c.migrateOrphansLocked(svc)
	return nil
}

// decodeJob carries one validated encoded-frame payload from a
// service's receive goroutine to its decode goroutine.
type decodeJob struct {
	seq     uint64
	payload []byte
}

// recvLoop reads messages from one server, validates them, and either
// hands encoded frames to the service's decode goroutine (jobs != nil)
// or decodes them inline (jobs == nil, PipelineDepth < 0).
func (c *Client) recvLoop(svc *service, jobs chan<- decodeJob) {
	defer c.wg.Done()
	if jobs != nil {
		defer close(jobs)
	}
	for {
		msg, err := svc.conn.Recv(0)
		if err != nil {
			return // closed
		}
		msgType, seq, payload, err := decodeMsg(msg)
		if err != nil {
			c.mu.Lock()
			c.stats.RecvBadMsgs++
			c.mu.Unlock()
			continue
		}
		if msgType == MsgBootstrapAck {
			c.handleBootstrapAck(svc, payload)
			continue
		}
		if msgType != MsgEncodedFrame {
			c.mu.Lock()
			c.stats.RecvUnexpected++
			c.mu.Unlock()
			continue
		}
		if jobs == nil {
			if !c.decodeOne(svc, seq, payload) {
				return
			}
			continue
		}
		select {
		case jobs <- decodeJob{seq: seq, payload: payload}:
		case <-c.done:
			return
		}
	}
}

// handleBootstrapAck resolves (or defers) a handoff on the server's
// fingerprint ack. If the handoff goroutine still owns the send path,
// admission is deferred until its queue drains — admitting earlier
// would let a frame batch overtake the queued state updates.
func (c *Client) handleBootstrapAck(svc *service, payload []byte) {
	var fp uint64
	if len(payload) == 8 {
		fp = binary.LittleEndian.Uint64(payload)
	}
	c.mu.Lock()
	switch {
	case !svc.handoffLive:
		c.stats.RecvUnexpected++
	case svc.handoffSending:
		svc.handoffAcked = true
		svc.handoffAckFP = fp
	default:
		c.finishHandoffLocked(svc, svc.handoffEpoch, fp)
	}
	c.mu.Unlock()
}

// decodeLoop drains one service's decode jobs. Per-connection replies
// arrive in dispatch order; a single decode goroutine per service
// preserves that order into the reorder buffer.
func (c *Client) decodeLoop(svc *service, jobs <-chan decodeJob) {
	defer c.wg.Done()
	for job := range jobs {
		if !c.decodeOne(svc, job.seq, job.payload) {
			return
		}
	}
}

// decodeOne turbo-decodes one encoded frame and runs the bookkeeping:
// liveness credit, inflight completion, service-time EWMA, reorder
// push, and delivery. It reports false when the client shut down
// mid-delivery.
func (c *Client) decodeOne(svc *service, seq uint64, payload []byte) bool {
	pixels, err := svc.dec.Decode(payload)
	if err != nil {
		c.mu.Lock()
		if c.sinkErr == nil {
			c.sinkErr = fmt.Errorf("core: frame decode: %w", err)
		}
		c.mu.Unlock()
		return true
	}
	frame := Frame{Seq: seq, Pixels: append([]byte(nil), pixels...)}
	now := time.Now()
	c.mu.Lock()
	c.stats.DownlinkBytes += int64(len(payload))
	// Track the quality the server encoded at (carried in the turbo
	// packet header) so a server-side adaptive ladder is visible here.
	if q := svc.dec.Quality(); q > 0 {
		if c.stats.QualityMin == 0 || q < c.stats.QualityMin {
			c.stats.QualityMin = q
		}
		if svc.lastQuality != 0 && q != svc.lastQuality {
			c.stats.QualityChanges++
		}
		svc.lastQuality = q
		c.stats.QualityNow = q
	}
	// A result is proof of life for the device that produced it.
	c.sched.ReportSuccess(svc.dev)
	if req, ok := c.inflight[seq]; ok {
		if req.svc == svc {
			// Head-of-line service time: how long this request took
			// once it reached the front of the device's queue.
			start := req.sentAt
			if svc.lastReply.After(start) {
				start = svc.lastReply
			}
			if sample := now.Sub(start); svc.svcEWMA <= 0 {
				svc.svcEWMA = sample
			} else {
				svc.svcEWMA += (sample - svc.svcEWMA) / 4
			}
		}
		// Credit whichever device currently carries the request —
		// after a re-dispatch a slow original may answer first.
		c.sched.Complete(req.svc.dev, req.workload)
		delete(c.inflight, seq)
		c.releaseReqLocked(req)
	}
	svc.lastReply = now
	released, err := c.reorder.Push(seq, frame)
	if err != nil {
		if errors.Is(err, dispatch.ErrDuplicate) {
			// Expected under failover: both the original and the
			// replacement device may answer, and a gap-skipped
			// frame may still trickle in.
			c.stats.LateFrames++
		} else if c.sinkErr == nil {
			c.sinkErr = fmt.Errorf("core: reorder: %w", err)
		}
	}
	// Deliver while still holding the lock: two decode paths that
	// release consecutive batches must not interleave their channel
	// sends, or frames display out of order. The frames channel is
	// only ever read (never locked) by consumers, so holding mu
	// across the send cannot deadlock.
	if !c.deliverLocked(released) {
		c.mu.Unlock()
		return false
	}
	c.mu.Unlock()
	return true
}

// NextFrame returns the next in-order displayed frame, waiting up to
// timeout.
func (c *Client) NextFrame(timeout time.Duration) (Frame, error) {
	var timer <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		timer = t.C
	}
	select {
	case f, ok := <-c.frames:
		if !ok {
			return Frame{}, ErrClosed
		}
		return f, nil
	case <-timer:
		return Frame{}, rudp.ErrTimeout
	case <-c.done:
		return Frame{}, ErrClosed
	}
}

// Close shuts down the client and its connections.
func (c *Client) Close() error {
	var err error
	c.closed.Do(func() {
		close(c.done)
		c.mu.Lock()
		svcs := append([]*service(nil), c.services...)
		c.mu.Unlock()
		for _, s := range svcs {
			if cerr := s.conn.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}
		c.wg.Wait()
	})
	return err
}
