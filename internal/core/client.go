package core

import (
	"fmt"
	"sync"
	"time"

	"github.com/gbooster/gbooster/internal/cmdcache"
	"github.com/gbooster/gbooster/internal/dispatch"
	"github.com/gbooster/gbooster/internal/gles"
	"github.com/gbooster/gbooster/internal/glwire"
	"github.com/gbooster/gbooster/internal/hook"
	"github.com/gbooster/gbooster/internal/lz4"
	"github.com/gbooster/gbooster/internal/rudp"
	"github.com/gbooster/gbooster/internal/turbo"
)

// ClientConfig parameterizes the user-device runtime.
type ClientConfig struct {
	// Width, Height is the streaming resolution.
	Width, Height int
	// Quality is the turbo codec quality (must match the servers).
	Quality int
	// Arrays resolves deferred client vertex arrays (§IV-B); pass the
	// application's registry.
	Arrays glwire.ClientArrays
	// CacheBytes bounds each per-server command cache.
	CacheBytes int
}

func (c ClientConfig) withDefaults() ClientConfig {
	if c.Quality <= 0 {
		c.Quality = turbo.DefaultQuality
	}
	return c
}

// Frame is one displayed frame.
type Frame struct {
	Seq    uint64
	Pixels []byte // RGBA copy, Width*Height*4
}

// ClientStats counts client-side work.
type ClientStats struct {
	FramesSent      int64
	FramesDisplayed int64
	RawBytes        int64 // serialized records before cache+LZ4
	WireBytes       int64 // bytes actually sent
	StateBytes      int64 // replication traffic to non-assigned servers
	CacheHits       int64
	// Transport holds one health snapshot per attached service
	// connection, in attach order.
	Transport []TransportHealth
}

// TransportHealth is one service connection's reliable-UDP snapshot:
// the adaptive-RTO estimator state (SRTT/RTTVAR/RTO), resend counters,
// and window occupancy, tagged with the service name.
type TransportHealth struct {
	Service string
	rudp.Stats
}

// inflightReq tracks an outstanding rendering request for Eq. 4 queue
// accounting.
type inflightReq struct {
	svc      *service
	workload float64
}

// service is one connected service device.
type service struct {
	name  string
	conn  *rudp.Conn
	cache *cmdcache.Cache
	dec   *turbo.Decoder
	dev   *dispatch.Device
}

// Client is the wrapper-side runtime installed behind the hooked GL
// symbols. Its CommandSink intercepts every GL call; frames flush on
// eglSwapBuffers, which returns immediately (the §VI-A non-blocking
// rewrite).
type Client struct {
	cfg ClientConfig

	mu        sync.Mutex
	enc       *glwire.Encoder
	services  []*service
	sched     *dispatch.Scheduler
	seq       uint64
	frameRecs [][]byte
	inflight  map[uint64]inflightReq
	reorder   *dispatch.Reorder[Frame]
	stats     ClientStats
	sinkErr   error

	frames chan Frame
	done   chan struct{}
	wg     sync.WaitGroup
	closed sync.Once
}

// NewClient builds a client runtime; attach servers with AddService
// before generating frames.
func NewClient(cfg ClientConfig) (*Client, error) {
	cfg = cfg.withDefaults()
	if cfg.Width <= 0 || cfg.Height <= 0 {
		return nil, fmt.Errorf("%w: resolution %dx%d", ErrBadMessage, cfg.Width, cfg.Height)
	}
	return &Client{
		cfg:      cfg,
		enc:      glwire.NewEncoder(cfg.Arrays),
		inflight: make(map[uint64]inflightReq),
		reorder:  dispatch.NewReorder[Frame](0, 256),
		frames:   make(chan Frame, 64),
		done:     make(chan struct{}),
	}, nil
}

// AddService attaches a connected service device. capability is Eq. 4's
// c^j in records/second (relative values are what matter); rtt its l^j.
func (c *Client) AddService(name string, conn *rudp.Conn, capability float64, rtt time.Duration) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	dev, err := dispatch.NewDevice(name, capability, rtt)
	if err != nil {
		return fmt.Errorf("core: add service: %w", err)
	}
	svc := &service{
		name:  name,
		conn:  conn,
		cache: cmdcache.New(c.cfg.CacheBytes),
		dec:   turbo.NewDecoder(c.cfg.Width, c.cfg.Height, c.cfg.Quality),
		dev:   dev,
	}
	c.services = append(c.services, svc)
	devs := make([]*dispatch.Device, 0, len(c.services))
	for _, s := range c.services {
		devs = append(devs, s.dev)
	}
	c.sched, err = dispatch.NewScheduler(devs...)
	if err != nil {
		return fmt.Errorf("core: scheduler: %w", err)
	}
	c.wg.Add(1)
	go c.recvLoop(svc)
	return nil
}

// Sink returns the CommandSink to install behind the hooked GL symbols.
func (c *Client) Sink() hook.CommandSink {
	return func(cmd gles.Command) { c.consume(cmd) }
}

// Install registers and preloads the GBooster wrapper library in the
// process's linker — the complete §IV-A hook installation.
func (c *Client) Install(ln *hook.Linker, soname string) error {
	_, err := hook.InstallWrapper(ln, soname, c.Sink())
	return err
}

// Err surfaces the first asynchronous error the sink path hit (the GL
// ABI has no error return, matching the real wrapper's constraint).
func (c *Client) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sinkErr
}

// Stats snapshots client counters, including per-service transport
// health.
func (c *Client) Stats() ClientStats {
	c.mu.Lock()
	st := c.stats
	svcs := append([]*service(nil), c.services...)
	c.mu.Unlock()
	st.Transport = make([]TransportHealth, 0, len(svcs))
	for _, s := range svcs {
		st.Transport = append(st.Transport, TransportHealth{Service: s.name, Stats: s.conn.Stats()})
	}
	return st
}

// TransportStats returns the per-service transport health snapshots
// alone, for callers polling link quality without the full counter set.
func (c *Client) TransportStats() []TransportHealth {
	return c.Stats().Transport
}

// consume intercepts one GL command.
func (c *Client) consume(cmd gles.Command) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.sinkErr != nil {
		return
	}
	buf, err := c.enc.Encode(nil, cmd)
	if err != nil {
		c.sinkErr = fmt.Errorf("core: serialize %v: %w", cmd.Op, err)
		return
	}
	if len(buf) > 0 {
		recs, err := glwire.SplitRecords(buf)
		if err != nil {
			c.sinkErr = fmt.Errorf("core: split: %w", err)
			return
		}
		for _, rec := range recs {
			c.frameRecs = append(c.frameRecs, append([]byte(nil), rec...))
			c.stats.RawBytes += int64(len(rec))
		}
	}
	if cmd.IsFrameBoundary() {
		if err := c.flushFrameLocked(); err != nil {
			c.sinkErr = err
		}
	}
}

// flushFrameLocked ships the accumulated frame: the full batch to the
// Eq. 4-chosen server, state-mutating records to every other server.
func (c *Client) flushFrameLocked() error {
	recs := c.frameRecs
	c.frameRecs = nil
	if len(c.services) == 0 {
		return fmt.Errorf("%w: no service devices attached", ErrClosed)
	}
	assigned, _, err := c.sched.Assign(float64(len(recs)))
	if err != nil {
		return fmt.Errorf("core: assign: %w", err)
	}
	var target *service
	for _, s := range c.services {
		if s.dev == assigned {
			target = s
			break
		}
	}
	if target == nil {
		return fmt.Errorf("core: assigned device %q has no service", assigned.ID)
	}

	seq := c.seq
	c.seq++
	c.inflight[seq] = inflightReq{svc: target, workload: float64(len(recs))}

	// Full batch to the assigned server, through its mirrored cache.
	wire, hits, err := target.cache.EncodeAll(nil, recs)
	if err != nil {
		return fmt.Errorf("core: cache encode: %w", err)
	}
	c.stats.CacheHits += int64(hits)
	batch := encodeMsg(MsgFrameBatch, seq, lz4.Compress(nil, wire))
	if err := target.conn.Send(batch); err != nil {
		return fmt.Errorf("core: send batch: %w", err)
	}
	c.stats.WireBytes += int64(len(batch))
	c.stats.FramesSent++

	// State replication to the others (the real system multicasts; one
	// logical transmission per non-assigned server here).
	var stateRecs [][]byte
	for _, rec := range recs {
		op, err := glwire.PeekOp(rec)
		if err != nil {
			return fmt.Errorf("core: peek: %w", err)
		}
		if (gles.Command{Op: op}).MutatesState() {
			stateRecs = append(stateRecs, rec)
		}
	}
	for _, s := range c.services {
		if s == target || len(stateRecs) == 0 {
			continue
		}
		wire, _, err := s.cache.EncodeAll(nil, stateRecs)
		if err != nil {
			return fmt.Errorf("core: state encode: %w", err)
		}
		msg := encodeMsg(MsgStateUpdate, 0, lz4.Compress(nil, wire))
		if err := s.conn.Send(msg); err != nil {
			return fmt.Errorf("core: send state: %w", err)
		}
		c.stats.WireBytes += int64(len(msg))
		c.stats.StateBytes += int64(len(msg))
	}
	return nil
}

// recvLoop decodes encoded frames from one server and feeds the reorder
// buffer.
func (c *Client) recvLoop(svc *service) {
	defer c.wg.Done()
	for {
		msg, err := svc.conn.Recv(0)
		if err != nil {
			return // closed
		}
		msgType, seq, payload, err := decodeMsg(msg)
		if err != nil || msgType != MsgEncodedFrame {
			continue
		}
		pixels, err := svc.dec.Decode(payload)
		if err != nil {
			c.mu.Lock()
			if c.sinkErr == nil {
				c.sinkErr = fmt.Errorf("core: frame decode: %w", err)
			}
			c.mu.Unlock()
			continue
		}
		frame := Frame{Seq: seq, Pixels: append([]byte(nil), pixels...)}
		c.mu.Lock()
		if req, ok := c.inflight[seq]; ok {
			c.sched.Complete(req.svc.dev, req.workload)
			delete(c.inflight, seq)
		}
		released, err := c.reorder.Push(seq, frame)
		if err != nil && c.sinkErr == nil {
			c.sinkErr = fmt.Errorf("core: reorder: %w", err)
		}
		c.stats.FramesDisplayed += int64(len(released))
		// Deliver while still holding the lock: two receive loops that
		// release consecutive batches must not interleave their channel
		// sends, or frames display out of order. The frames channel is
		// only ever read (never locked) by consumers, so holding mu
		// across the send cannot deadlock.
		for _, f := range released {
			select {
			case c.frames <- f:
			case <-c.done:
				c.mu.Unlock()
				return
			}
		}
		c.mu.Unlock()
	}
}

// NextFrame returns the next in-order displayed frame, waiting up to
// timeout.
func (c *Client) NextFrame(timeout time.Duration) (Frame, error) {
	var timer <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		timer = t.C
	}
	select {
	case f, ok := <-c.frames:
		if !ok {
			return Frame{}, ErrClosed
		}
		return f, nil
	case <-timer:
		return Frame{}, rudp.ErrTimeout
	case <-c.done:
		return Frame{}, ErrClosed
	}
}

// Close shuts down the client and its connections.
func (c *Client) Close() error {
	var err error
	c.closed.Do(func() {
		close(c.done)
		c.mu.Lock()
		svcs := append([]*service(nil), c.services...)
		c.mu.Unlock()
		for _, s := range svcs {
			if cerr := s.conn.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}
		c.wg.Wait()
	})
	return err
}
