package core

import (
	"bytes"
	"encoding/binary"
	"testing"
	"time"

	"github.com/gbooster/gbooster/internal/dispatch"
	"github.com/gbooster/gbooster/internal/gles"
	"github.com/gbooster/gbooster/internal/rudp"
	"github.com/gbooster/gbooster/internal/workload"
)

// waitHandoffs polls the client until n handoffs have completed.
func waitHandoffs(t *testing.T, c *Client, n int64, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		st := c.Stats()
		if st.HandoffsFailed > 0 {
			t.Fatalf("handoff failed: %+v", st)
		}
		if st.HandoffsCompleted >= n {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("handoff did not complete within %v: %+v", timeout, c.Stats())
}

// addServer attaches one more in-memory server to a live rig client,
// exactly as newRig does for the initial set.
func addServer(t *testing.T, r *rig, name string, seed uint64) *Server {
	t.Helper()
	srv, err := NewServer(ServerConfig{Width: testW, Height: testH})
	if err != nil {
		t.Fatal(err)
	}
	opts := rudp.DefaultOptions()
	opts.RTO = 10 * time.Millisecond
	pcC, pcS := rudp.NewMemPair(0, seed)
	connC := rudp.New(pcC, pcS.Addr(), opts)
	connS := rudp.New(pcS, pcC.Addr(), opts)
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		_ = srv.ServeWithTimeout(connS, 500*time.Millisecond)
		_ = connS.Close()
	}()
	if err := r.client.AddService(name, connC, 1000, 2*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	r.servers = append(r.servers, srv)
	return srv
}

// TestHotJoinRestoresByteIdenticalState is the checkpoint round-trip
// property test: a server hot-joined mid-session via a bootstrap
// stream must reach the exact state a device that saw the full history
// holds — same state fingerprint, same StateSnapshot — and the next
// frame it renders must be byte-identical to a full-history local
// rendering of the same command stream.
func TestHotJoinRestoresByteIdenticalState(t *testing.T) {
	p, err := workload.ByID("G5")
	if err != nil {
		t.Fatal(err)
	}
	gameRemote := workload.NewGame(p, 17)
	gameLocal := workload.NewGame(p, 17)
	r := newRig(t, 1, &glwireArrays{game: gameRemote}, 0)
	sink := r.client.Sink()

	// Full-history reference: one persistent encoder, like the client's.
	localGPU := gles.NewGPU(testW, testH)
	localEnc := newFrameEncoder(gameLocal)
	renderLocal := func() {
		t.Helper()
		cmds, err := localEnc.encodeAll(gameLocal.NextFrame().Commands)
		if err != nil {
			t.Fatal(err)
		}
		for _, cmd := range cmds {
			if _, err := localGPU.Execute(cmd); err != nil {
				t.Fatal(err)
			}
		}
	}
	step := func(f int) {
		t.Helper()
		for _, cmd := range gameRemote.NextFrame().Commands {
			sink(cmd)
		}
		renderLocal()
		if err := r.client.Err(); err != nil {
			t.Fatalf("frame %d: %v", f, err)
		}
		if _, err := r.client.NextFrame(5 * time.Second); err != nil {
			t.Fatalf("frame %d: %v", f, err)
		}
	}

	const warmFrames = 10
	for f := 0; f < warmFrames; f++ {
		step(f)
	}

	// Hot-join a cold server mid-session. AddService must hold it out
	// of the rotation until the bootstrap handoff is acked.
	joined := addServer(t, r, "server-hotjoin", 555)
	waitHandoffs(t, r.client, 1, 5*time.Second)
	if got := joined.Stats().Bootstraps; got != 1 {
		t.Fatalf("joined server restored %d bootstraps, want 1", got)
	}

	// Byte-identical restored state, before it renders anything.
	wantFP := gles.StateFingerprint(localGPU.Ctx)
	if got := gles.StateFingerprint(joined.gpu.Ctx); got != wantFP {
		t.Fatalf("restored state fingerprint %#x, want %#x", got, wantFP)
	}
	if got, want := joined.Snapshot(), localGPU.Ctx.Snapshot(); got != want {
		t.Fatalf("restored snapshot diverged:\n got=%+v\nwant=%+v", got, want)
	}

	// Route everything to the joined server and check its next frames
	// pixel-for-pixel against the full-history rendering.
	if err := r.client.DrainService("server-A"); err != nil {
		t.Fatal(err)
	}
	for f := warmFrames; f < warmFrames+3; f++ {
		step(f)
		if !bytes.Equal(joined.gpu.FB.Pix, localGPU.FB.Pix) {
			t.Fatalf("frame %d: restored server's framebuffer diverged from full history", f)
		}
	}
	if got := gles.StateFingerprint(joined.gpu.Ctx); got != gles.StateFingerprint(localGPU.Ctx) {
		t.Fatal("restored server's state diverged after follow-up frames")
	}
	st := r.client.Stats()
	if st.FramesSkipped != 0 || st.HandoffsFailed != 0 {
		t.Fatalf("hot-join dropped frames or failed handoffs: %+v", st)
	}
	if st.BootstrapsSent != 1 || st.BootstrapBytes <= 0 {
		t.Fatalf("bootstrap accounting: %+v", st)
	}
}

// TestHandoffAdmissionRequiresFingerprintMatch gates the dispatch
// readmission on the server's ack: a mismatched or zero fingerprint
// must re-evict the device, a matching one admits it on probation.
func TestHandoffAdmissionRequiresFingerprintMatch(t *testing.T) {
	client, err := NewClient(ClientConfig{Width: testW, Height: testH})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = client.Close() }()
	pcC, pcS := rudp.NewMemPair(0, 7)
	defer func() { _ = pcS.Close() }()
	conn := rudp.New(pcC, pcS.Addr(), rudp.DefaultOptions())
	if err := client.AddService("dev", conn, 1000, time.Millisecond); err != nil {
		t.Fatal(err)
	}

	ackPayload := func(fp uint64) []byte {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], fp)
		return b[:]
	}
	arm := func(fp uint64) *service {
		client.mu.Lock()
		defer client.mu.Unlock()
		svc := client.services[0]
		client.sched.MarkJoining(svc.dev)
		svc.handoffLive = true
		svc.handoffSending = false
		svc.handoffFP = fp
		svc.handoffSentAt = time.Now()
		svc.handoffEpoch++
		return svc
	}

	svc := arm(42)
	client.handleBootstrapAck(svc, ackPayload(43))
	if st := client.Stats(); st.HandoffsFailed != 1 || st.HandoffsCompleted != 0 {
		t.Fatalf("mismatched ack admitted the device: %+v", st)
	}
	if h := svc.dev.Health(); h != dispatch.Evicted {
		t.Fatalf("device %v after mismatched ack, want evicted", h)
	}

	// A zero fingerprint marks a failed restore server-side.
	client.mu.Lock()
	client.sched.ProbeAfter = 0
	client.mu.Unlock()
	svc = arm(42)
	client.handleBootstrapAck(svc, ackPayload(0))
	if st := client.Stats(); st.HandoffsFailed != 2 {
		t.Fatalf("zero ack admitted the device: %+v", st)
	}

	// The matching ack admits, on probation.
	svc = arm(42)
	client.handleBootstrapAck(svc, ackPayload(42))
	if st := client.Stats(); st.HandoffsCompleted != 1 || st.HandoffsFailed != 2 {
		t.Fatalf("matching ack not admitted: %+v", st)
	}
	if h := svc.dev.Health(); h != dispatch.Suspect {
		t.Fatalf("device %v after matching ack, want suspect probation", h)
	}

	// A late duplicate ack (no live handoff) is just an unexpected
	// message, not a state transition.
	client.handleBootstrapAck(svc, ackPayload(42))
	if st := client.Stats(); st.RecvUnexpected != 1 || st.HandoffsCompleted != 1 {
		t.Fatalf("stale ack changed handoff state: %+v", st)
	}
}

// TestDrainServiceMigratesInflight drains a device that still owes
// results and checks its in-flight frames migrate to the replica
// instead of gap-skipping.
func TestDrainServiceMigratesInflight(t *testing.T) {
	p, err := workload.ByID("G5")
	if err != nil {
		t.Fatal(err)
	}
	game := workload.NewGame(p, 3)
	r := newRig(t, 2, &glwireArrays{game: game}, 0)
	sink := r.client.Sink()

	const frames = 8
	for f := 0; f < frames; f++ {
		for _, cmd := range game.NextFrame().Commands {
			sink(cmd)
		}
		if f == frames/2 {
			if err := r.client.DrainService("server-A"); err != nil {
				t.Fatal(err)
			}
		}
	}
	for f := 0; f < frames; f++ {
		got, err := r.client.NextFrame(5 * time.Second)
		if err != nil {
			t.Fatalf("frame %d: %v", f, err)
		}
		if got.Seq != uint64(f) {
			t.Fatalf("display order broken: got %d want %d", got.Seq, f)
		}
	}
	st := r.client.Stats()
	if st.FramesSkipped != 0 {
		t.Fatalf("drain skipped frames: %+v", st)
	}
	if err := r.client.DrainService("no-such-device"); err == nil {
		t.Fatal("draining an unknown service must fail")
	}
}
