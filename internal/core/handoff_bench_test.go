package core

import (
	"testing"

	"github.com/gbooster/gbooster/internal/cmdcache"
	"github.com/gbooster/gbooster/internal/gles"
	"github.com/gbooster/gbooster/internal/glwire"
	"github.com/gbooster/gbooster/internal/lz4"
	"github.com/gbooster/gbooster/internal/session"
)

// liveHandoffState replays a workload trace through the client-side
// session state — shadow GL context, mirrored command cache, and the
// inter-frame compressor — to the point a handoff would checkpoint it.
func liveHandoffState(b *testing.B) (*gles.Context, *cmdcache.Cache, *lz4.Compressor) {
	b.Helper()
	frames := buildTraceFrames(b, "G1", 7, 64)
	ctx := gles.NewContext()
	cache := cmdcache.New(0)
	comp := lz4.NewCompressor()
	var dec glwire.Decoder
	var wireBuf, msgBuf []byte
	for i, recs := range frames {
		for _, rec := range recs {
			op, err := glwire.PeekOp(rec)
			if err != nil {
				b.Fatal(err)
			}
			if !(gles.Command{Op: op}).MutatesState() {
				continue
			}
			cmd, _, err := dec.Decode(rec)
			if err != nil {
				b.Fatal(err)
			}
			_ = ctx.Apply(cmd)
		}
		wire, _, err := cache.EncodeAll(wireBuf[:0], recs)
		wireBuf = wire
		if err != nil {
			b.Fatal(err)
		}
		msgBuf = comp.Compress(appendMsgHeader(msgBuf[:0], MsgFrameBatch, uint64(i)), wire)
	}
	_ = msgBuf
	return ctx, cache, comp
}

// BenchmarkHandoff measures the session checkpoint path on a live
// mid-session state: capture (checkpoint + bootstrap-stream encode, the
// work done under the client's lock when a device joins) and restore
// (decode + rebuild of context, cache, and dictionary, the cold
// server's admission cost). bootbytes is the bootstrap stream size — a
// handoff ships this once, versus replaying the session's full history.
func BenchmarkHandoff(b *testing.B) {
	ctx, cache, comp := liveHandoffState(b)

	b.Run("capture", func(b *testing.B) {
		var boot []byte
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cp, err := session.Capture(ctx, cache, comp)
			if err != nil {
				b.Fatal(err)
			}
			boot = session.Append(boot[:0], cp)
		}
		b.ReportMetric(float64(len(boot)), "bootbytes")
	})

	b.Run("restore", func(b *testing.B) {
		cp, err := session.Capture(ctx, cache, comp)
		if err != nil {
			b.Fatal(err)
		}
		boot := session.Append(nil, cp)
		wantFP := cp.Fingerprint()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rcp, err := session.Decode(boot)
			if err != nil {
				b.Fatal(err)
			}
			rctx, _, _, err := session.Restore(rcp)
			if err != nil {
				b.Fatal(err)
			}
			if gles.StateFingerprint(rctx) != wantFP {
				b.Fatal("restored fingerprint mismatch")
			}
		}
		b.ReportMetric(float64(len(boot)), "bootbytes")
	})
}
