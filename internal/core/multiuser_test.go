package core

import (
	"errors"
	"sync"
	"testing"

	"github.com/gbooster/gbooster/internal/cmdcache"
	"github.com/gbooster/gbooster/internal/glwire"
	"github.com/gbooster/gbooster/internal/lz4"
	"github.com/gbooster/gbooster/internal/workload"
)

// buildBatch serializes one game frame into a MsgFrameBatch for a
// client of a MultiServer. Each client needs its own encoder/cache
// mirror, so the helper owns them.
type batchBuilder struct {
	game  *workload.Game
	enc   *glwire.Encoder
	cache *clientCache
	comp  *lz4.Compressor
	seq   uint64

	// Pooled scratch, exercising the same zero-allocation encode path
	// the real client uses.
	encBuf   []byte
	splitBuf [][]byte
	wireBuf  []byte
	msgBuf   []byte
}

// clientCache mirrors the server-side cache for one session.
type clientCache struct {
	c *cmdcache.Cache
}

func newMirrorCache() *cmdcache.Cache { return cmdcache.New(0) }

func newBatchBuilder(t testing.TB, id string, seed uint64) *batchBuilder {
	t.Helper()
	prof, err := workload.ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	game := workload.NewGame(prof, seed)
	return &batchBuilder{
		game:  game,
		enc:   glwire.NewEncoder(game.Arrays()),
		cache: &clientCache{c: newMirrorCache()},
		comp:  lz4.NewCompressor(),
	}
}

func (b *batchBuilder) next(t testing.TB) []byte {
	t.Helper()
	buf, err := b.enc.EncodeAll(b.encBuf[:0], b.game.NextFrame().Commands)
	b.encBuf = buf
	if err != nil {
		t.Fatal(err)
	}
	recs, err := glwire.AppendSplitRecords(b.splitBuf[:0], buf)
	b.splitBuf = recs
	if err != nil {
		t.Fatal(err)
	}
	wire, _, err := b.cache.c.EncodeAll(b.wireBuf[:0], recs)
	b.wireBuf = wire
	if err != nil {
		t.Fatal(err)
	}
	msg := b.comp.Compress(appendMsgHeader(b.msgBuf[:0], MsgFrameBatch, b.seq), wire)
	b.msgBuf = msg
	b.seq++
	// Callers retain messages (the backlog test pre-builds 150), so hand
	// out an owned copy — the scratch is overwritten by the next frame,
	// exactly like rudp copying a send into its retransmit window.
	return append([]byte(nil), msg...)
}

func TestSchedPolicyString(t *testing.T) {
	if SchedFCFS.String() != "fcfs" || SchedPriority.String() != "priority" ||
		SchedPolicy(9).String() == "" {
		t.Fatal("policy names wrong")
	}
}

func TestMultiServerValidation(t *testing.T) {
	if _, err := NewMultiServer(ServerConfig{}, SchedFCFS); err == nil {
		t.Fatal("zero-size multi server accepted")
	}
	m, err := NewMultiServer(ServerConfig{Width: 32, Height: 32}, SchedFCFS)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := m.AddClient("a", 0); err != nil {
		t.Fatal(err)
	}
	if err := m.AddClient("a", 0); err == nil {
		t.Fatal("duplicate client accepted")
	}
	if _, err := m.Submit("ghost", encodeMsg(MsgStateUpdate, 0, nil)); !errors.Is(err, ErrUnknownClient) {
		t.Fatalf("unknown client error = %v", err)
	}
	if _, err := m.SessionSnapshot("ghost"); !errors.Is(err, ErrUnknownClient) {
		t.Fatalf("unknown snapshot error = %v", err)
	}
}

func TestMultiServerIsolatesClientState(t *testing.T) {
	// Two clients with different games share the device; their GL
	// contexts must not bleed into each other.
	m, err := NewMultiServer(ServerConfig{Width: 64, Height: 48}, SchedFCFS)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	for _, id := range []string{"shooter", "puzzle"} {
		if err := m.AddClient(id, 0); err != nil {
			t.Fatal(err)
		}
	}
	shooter := newBatchBuilder(t, "G1", 1)
	puzzle := newBatchBuilder(t, "G5", 2)
	for i := 0; i < 4; i++ {
		if _, err := m.Submit("shooter", shooter.next(t)); err != nil {
			t.Fatalf("shooter frame %d: %v", i, err)
		}
		if _, err := m.Submit("puzzle", puzzle.next(t)); err != nil {
			t.Fatalf("puzzle frame %d: %v", i, err)
		}
	}
	a, err := m.SessionSnapshot("shooter")
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.SessionSnapshot("puzzle")
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("different games produced identical context fingerprints; state bleeding?")
	}
	st := m.Stats()
	if st.Requests != 8 || st.PerClient["shooter"] != 4 || st.PerClient["puzzle"] != 4 {
		t.Fatalf("stats %+v", st)
	}
}

func TestMultiServerFramesStillDecode(t *testing.T) {
	m, err := NewMultiServer(ServerConfig{Width: 64, Height: 48}, SchedPriority)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := m.AddClient("c", 5); err != nil {
		t.Fatal(err)
	}
	b := newBatchBuilder(t, "G6", 3)
	reply, err := m.Submit("c", b.next(t))
	if err != nil {
		t.Fatal(err)
	}
	typ, seq, payload, err := decodeMsg(reply)
	if err != nil || typ != MsgEncodedFrame || seq != 0 || len(payload) == 0 {
		t.Fatalf("reply: type=%d seq=%d len=%d err=%v", typ, seq, len(payload), err)
	}
}

func TestPrioritySchedulingJumpsQueue(t *testing.T) {
	// Flood the queue with low-priority requests, then submit one
	// high-priority request: under SchedPriority it must execute before
	// (almost all of) the backlog; under SchedFCFS it waits for
	// everything that arrived first.
	run := func(policy SchedPolicy) (queuedBefore int64, err error) {
		m, err := NewMultiServer(ServerConfig{Width: 64, Height: 48}, policy)
		if err != nil {
			return 0, err
		}
		defer m.Close()
		if err := m.AddClient("chess", 0); err != nil {
			return 0, err
		}
		if err := m.AddClient("shooter", 10); err != nil {
			return 0, err
		}
		chess := newBatchBuilder(t, "G4", 4)
		shooter := newBatchBuilder(t, "G2", 5)

		// Pre-build the backlog so enqueueing is instantaneous and a
		// real queue forms ahead of the shooter's request. The backlog
		// is large (tens of milliseconds of GPU work) so scheduler
		// noise cannot drain it before the shooter submits.
		const backlog = 150
		msgs := make([][]byte, 0, backlog)
		for i := 0; i < backlog; i++ {
			msgs = append(msgs, chess.next(t))
		}
		shooterMsg := shooter.next(t) // built ahead: submission must be instant
		var done []<-chan error
		for _, msg := range msgs {
			ch, err := m.SubmitAsync("chess", msg)
			if err != nil {
				return 0, err
			}
			done = append(done, ch)
		}
		// One time-critical request lands behind the backlog.
		if _, err := m.Submit("shooter", shooterMsg); err != nil {
			return 0, err
		}
		served := m.Stats().PerClient["chess"]
		for _, ch := range done {
			if err := <-ch; err != nil {
				return 0, err
			}
		}
		return served, nil
	}
	fcfsServed, err := run(SchedFCFS)
	if err != nil {
		t.Fatal(err)
	}
	prioServed, err := run(SchedPriority)
	if err != nil {
		t.Fatal(err)
	}
	// FCFS: the entire backlog executes before the shooter's request.
	if fcfsServed < 140 {
		t.Fatalf("FCFS served only %d chess requests before the shooter", fcfsServed)
	}
	// Priority: the shooter overtakes most of the queue.
	if prioServed > fcfsServed/2 {
		t.Fatalf("priority scheduling served %d chess requests before the shooter (fcfs: %d)",
			prioServed, fcfsServed)
	}
}

func TestRequestQueueOrderingDeterministic(t *testing.T) {
	// The scheduling property itself, without worker timing: a
	// high-priority request entering behind a low-priority backlog pops
	// first under SchedPriority and last under SchedFCFS; ties keep
	// arrival order.
	build := func(policy SchedPolicy) *requestQueue {
		q := &requestQueue{policy: policy}
		for i := 0; i < 5; i++ {
			pushRequest(q, &multiRequest{clientID: "low", priority: 0, arrival: uint64(i)})
		}
		pushRequest(q, &multiRequest{clientID: "high", priority: 10, arrival: 5})
		return q
	}
	q := build(SchedPriority)
	first := popRequest(q)
	if first.clientID != "high" {
		t.Fatalf("priority queue popped %q first", first.clientID)
	}
	var lastArrival uint64
	for q.Len() > 0 {
		r := popRequest(q)
		if r.arrival < lastArrival {
			t.Fatal("same-priority requests out of arrival order")
		}
		lastArrival = r.arrival
	}
	q = build(SchedFCFS)
	for i := 0; i < 5; i++ {
		if r := popRequest(q); r.clientID != "low" {
			t.Fatalf("FCFS popped %q at position %d", r.clientID, i)
		}
	}
	if r := popRequest(q); r.clientID != "high" {
		t.Fatalf("FCFS popped %q last", r.clientID)
	}
}

func TestMultiServerCloseRejectsNewWork(t *testing.T) {
	m, err := NewMultiServer(ServerConfig{Width: 16, Height: 16}, SchedFCFS)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AddClient("c", 0); err != nil {
		t.Fatal(err)
	}
	m.Close()
	m.Close() // idempotent
	if _, err := m.Submit("c", encodeMsg(MsgStateUpdate, 0, nil)); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("submit after close error = %v", err)
	}
	if err := m.AddClient("d", 0); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("add after close error = %v", err)
	}
}

func TestMultiServerConcurrentClients(t *testing.T) {
	// Hammer the shared device from several goroutines; everything must
	// complete without data races (run with -race) and produce replies.
	m, err := NewMultiServer(ServerConfig{Width: 48, Height: 32}, SchedPriority)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	const clients = 4
	builders := make([]*batchBuilder, clients)
	ids := []string{"a", "b", "c", "d"}
	games := []string{"G1", "G3", "G5", "A1"}
	for i := 0; i < clients; i++ {
		if err := m.AddClient(ids[i], i); err != nil {
			t.Fatal(err)
		}
		builders[i] = newBatchBuilder(t, games[i], uint64(10+i))
	}
	// Pre-build batches on the main goroutine (builders are not
	// thread-safe), then submit concurrently.
	const rounds = 6
	batches := make([][][]byte, clients)
	for i := range builders {
		for r := 0; r < rounds; r++ {
			batches[i] = append(batches[i], builders[i].next(t))
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if _, err := m.Submit(ids[i], batches[i][r]); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}()
	}
	wg.Wait()
	for i := 0; i < clients; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if st := m.Stats(); st.Requests != clients*rounds {
		t.Fatalf("requests = %d, want %d", st.Requests, clients*rounds)
	}
}

// heap helpers for the deterministic queue test.
func pushRequest(q *requestQueue, r *multiRequest) {
	r.reply = make(chan multiReply, 1)
	heapPush(q, r)
}

func popRequest(q *requestQueue) *multiRequest { return heapPop(q) }
