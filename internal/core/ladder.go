package core

import (
	"time"

	"github.com/gbooster/gbooster/internal/rudp"
)

// qualityLadder maps live transport congestion signals to a turbo
// quality setting. The encoder's configured quality is the ladder's
// ceiling; under congestion the ladder steps down toward the floor in
// multiplicative-ish decrements (sheds bytes fast), and climbs back in
// small additive increments after consecutive clean samples (probes
// gently, like AIMD). The header quality byte (turbo packet v2) carries
// each step to the decoder, so no side channel is needed.
type qualityLadder struct {
	ceiling int
	floor   int
	current int

	// Deltas are computed against the previous observation; the first
	// sample only primes them (a restarted ladder must not mistake
	// lifetime counters for fresh congestion).
	prevResent int64
	prevDrops  int64
	primed     bool

	// cleanRuns counts consecutive congestion-free samples; recovery
	// starts after two so a single quiet gap between loss bursts does
	// not bounce quality up and straight back down.
	cleanRuns int

	stepsDown int64
	stepsUp   int64
}

func newQualityLadder(ceiling, floor int) *qualityLadder {
	if floor < 1 {
		floor = 1
	}
	if floor > ceiling {
		floor = ceiling
	}
	return &qualityLadder{ceiling: ceiling, floor: floor, current: ceiling}
}

// congestionSlack is added to the doubled MinSRTT baseline before SRTT
// counts as congested, so jitter on very fast paths (MinSRTT near zero)
// does not read as queueing delay.
const congestionSlack = 10 * time.Millisecond

// observe folds one transport snapshot into the ladder and returns the
// quality the encoder should use now. Congestion is any of: new
// retransmits, new receive-queue drops, a send window at least half
// full, or a smoothed RTT more than twice the lifetime minimum (plus
// slack) — i.e. queueing delay, not path length.
func (l *qualityLadder) observe(st rudp.Stats) int {
	resent, drops := st.DataResent, st.RecvQueueDrops
	if !l.primed {
		l.prevResent, l.prevDrops = resent, drops
		l.primed = true
		return l.current
	}
	congested := resent > l.prevResent ||
		drops > l.prevDrops ||
		(st.WindowLimit > 0 && st.WindowOccupancy*2 >= st.WindowLimit) ||
		(st.MinSRTT > 0 && st.SRTT > 2*st.MinSRTT+congestionSlack)
	l.prevResent, l.prevDrops = resent, drops

	if congested {
		l.cleanRuns = 0
		if l.current > l.floor {
			step := l.current / 6
			if step < 5 {
				step = 5
			}
			l.current -= step
			if l.current < l.floor {
				l.current = l.floor
			}
			l.stepsDown++
		}
		return l.current
	}
	l.cleanRuns++
	if l.cleanRuns >= 2 && l.current < l.ceiling {
		l.current += 3
		if l.current > l.ceiling {
			l.current = l.ceiling
		}
		l.stepsUp++
	}
	return l.current
}
