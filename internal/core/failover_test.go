package core

import (
	"sync"
	"testing"
	"time"

	"github.com/gbooster/gbooster/internal/dispatch"
	"github.com/gbooster/gbooster/internal/gles"
	"github.com/gbooster/gbooster/internal/netsim"
	"github.com/gbooster/gbooster/internal/rudp"
	"github.com/gbooster/gbooster/internal/workload"
)

// failoverCfg is a tight-deadline client config for fast, deterministic
// failure detection in tests (renders here take single-digit ms).
func failoverCfg(arrays *glwireArrays) ClientConfig {
	return ClientConfig{
		Width: testW, Height: testH, Arrays: arrays.table(),
		FailoverInterval: 5 * time.Millisecond,
		FailoverMinWait:  40 * time.Millisecond,
		FailoverMaxWait:  400 * time.Millisecond,
	}
}

// linkRig wires a client to n servers over packet-level emulated links
// so tests can crash a device with the blackhole fault injector.
type linkRig struct {
	client  *Client
	servers []*Server
	links   [][2]*netsim.LinkConn // [client-side, server-side] per server
	wg      sync.WaitGroup
}

// crash emulates the death of server i: nothing it sends gets out, and
// nothing sent to it arrives.
func (r *linkRig) crash(i int) {
	r.links[i][0].Blackhole()
	r.links[i][1].Blackhole()
}

func newLinkRig(t *testing.T, n int, arrays *glwireArrays) *linkRig {
	t.Helper()
	client, err := NewClient(failoverCfg(arrays))
	if err != nil {
		t.Fatal(err)
	}
	r := &linkRig{client: client}
	opts := rudp.DefaultOptions()
	opts.RTO = 10 * time.Millisecond
	for i := 0; i < n; i++ {
		srv, err := NewServer(ServerConfig{Width: testW, Height: testH})
		if err != nil {
			t.Fatal(err)
		}
		lc, ls := netsim.NewLinkPair(netsim.LinkConfig{Delay: 200 * time.Microsecond}, uint64(50+i))
		connC := rudp.New(lc, ls.Addr(), opts)
		connS := rudp.New(ls, lc.Addr(), opts)
		if err := client.AddService(srv.String(i), connC, 1000, 2*time.Millisecond); err != nil {
			t.Fatal(err)
		}
		r.servers = append(r.servers, srv)
		r.links = append(r.links, [2]*netsim.LinkConn{lc, ls})
		r.wg.Add(1)
		go func(s *Server, c *rudp.Conn) {
			defer r.wg.Done()
			_ = s.ServeWithTimeout(c, 2*time.Second)
			_ = c.Close()
		}(srv, connS)
	}
	t.Cleanup(func() {
		_ = client.Close()
		r.wg.Wait()
	})
	return r
}

// TestFailoverRedispatchOnDeviceCrash is the §VI-C fault-tolerance
// soak: 3 servers, one blackholed mid-session. The player must keep
// receiving every frame in order — orphaned frames re-dispatched to
// the surviving replicas, the dead device evicted — with no sink
// error. Pre-failover code wedged Reorder on the lost sequence number
// and never displayed another frame.
func TestFailoverRedispatchOnDeviceCrash(t *testing.T) {
	p, err := workload.ByID("G5")
	if err != nil {
		t.Fatal(err)
	}
	game := workload.NewGame(p, 7)
	r := newLinkRig(t, 3, &glwireArrays{game: game})
	sink := r.client.Sink()

	const frames = 30
	const crashAt = 8
	for f := 0; f < frames; f++ {
		if f == crashAt {
			r.crash(0)
		}
		for _, cmd := range game.NextFrame().Commands {
			sink(cmd)
		}
		got, err := r.client.NextFrame(10 * time.Second)
		if err != nil {
			t.Fatalf("frame %d after crash: %v", f, err)
		}
		if got.Seq != uint64(f) {
			t.Fatalf("frame seq = %d, want %d (display order broken)", got.Seq, f)
		}
	}
	if err := r.client.Err(); err != nil {
		t.Fatalf("sink poisoned by device crash: %v", err)
	}
	st := r.client.Stats()
	if st.ReDispatched == 0 {
		t.Fatal("no orphaned frame was re-dispatched")
	}
	if st.Evictions == 0 {
		t.Fatal("dead device never evicted")
	}
	if st.FramesSkipped != 0 {
		t.Fatalf("%d frames skipped despite healthy replicas", st.FramesSkipped)
	}
	if st.FramesDisplayed != frames {
		t.Fatalf("displayed %d of %d frames", st.FramesDisplayed, frames)
	}
	// The survivors carried the load.
	rendered := int64(0)
	for _, srv := range r.servers[1:] {
		rendered += srv.Stats().FramesRendered
	}
	if rendered < frames-crashAt {
		t.Fatalf("survivors rendered %d frames, want >= %d", rendered, frames-crashAt)
	}
}

// TestFailoverGapSkipWhenAllDevicesDead drives the degraded path: the
// only device dies, so overdue frames must be gap-skipped — failing
// just those frames — rather than poisoning sinkErr or wedging the
// display forever.
func TestFailoverGapSkipWhenAllDevicesDead(t *testing.T) {
	p, err := workload.ByID("G5")
	if err != nil {
		t.Fatal(err)
	}
	game := workload.NewGame(p, 3)
	r := newLinkRig(t, 1, &glwireArrays{game: game})
	sink := r.client.Sink()

	// Healthy warm-up: 4 frames displayed.
	for f := 0; f < 4; f++ {
		for _, cmd := range game.NextFrame().Commands {
			sink(cmd)
		}
		got, err := r.client.NextFrame(5 * time.Second)
		if err != nil || got.Seq != uint64(f) {
			t.Fatalf("warm-up frame %d: seq=%d err=%v", f, got.Seq, err)
		}
	}
	r.crash(0)
	// Frames generated after the crash are lost on the only device.
	const lost = 3
	for f := 0; f < lost; f++ {
		for _, cmd := range game.NextFrame().Commands {
			sink(cmd)
		}
	}
	// They must be abandoned within the failover deadline, not wedge.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st := r.client.Stats(); st.FramesSkipped >= lost {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("lost frames never gap-skipped: %+v", r.client.Stats())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := r.client.Err(); err != nil {
		t.Fatalf("sink poisoned by total device loss: %v", err)
	}
	// The display is not wedged: NextFrame times out cleanly instead of
	// blocking forever on the lost sequence numbers.
	if _, err := r.client.NextFrame(50 * time.Millisecond); err != rudp.ErrTimeout {
		t.Fatalf("NextFrame after total loss = %v, want timeout", err)
	}
	// Further frames keep failing individually — still no sink error —
	// and the repeat offender is eventually evicted.
	for f := 0; f < 2; f++ {
		for _, cmd := range game.NextFrame().Commands {
			sink(cmd)
		}
		if err := r.client.Err(); err != nil {
			t.Fatalf("flush with no live devices poisoned sink: %v", err)
		}
		skipDeadline := time.Now().Add(5 * time.Second)
		for r.client.Stats().FramesSkipped < lost+int64(f)+1 {
			if time.Now().After(skipDeadline) {
				t.Fatalf("post-crash frame %d never abandoned: %+v", f, r.client.Stats())
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	states := r.client.DeviceStates()
	if len(states) != 1 || states[0].Health != dispatch.Evicted {
		t.Fatalf("device states = %+v, want evicted", states)
	}
	if states[0].Queued != 0 {
		t.Fatalf("evicted device still holds %v queued workload", states[0].Queued)
	}
}

// TestFlushRollbackOnSendFailure is the regression test for the
// inflight/queue leak: when Send fails, the seq must not stay in
// c.inflight and the workload must come off the device's queue. With
// failover, a dead-conn flush now degrades to a skipped frame instead
// of an error.
func TestFlushRollbackOnSendFailure(t *testing.T) {
	c, err := NewClient(ClientConfig{Width: testW, Height: testH})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	pcC, pcS := rudp.NewMemPair(0, 1)
	connC := rudp.New(pcC, pcS.Addr(), rudp.DefaultOptions())
	if err := c.AddService("dead", connC, 1000, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	_ = connC.Close() // every Send will now fail
	_ = pcS.Close()

	sink := c.Sink()
	sink(gles.CmdSwapBuffers())

	c.mu.Lock()
	inflight := len(c.inflight)
	queued := c.services[0].dev.Queued()
	quarantined := c.services[0].dev.Quarantined()
	c.mu.Unlock()
	if inflight != 0 {
		t.Fatalf("inflight leaked %d entries after send failure", inflight)
	}
	if queued != 0 {
		t.Fatalf("device queue leaked %v workload after send failure", queued)
	}
	if !quarantined {
		t.Fatal("dead-conn device not quarantined")
	}
	if err := c.Err(); err != nil {
		t.Fatalf("send failure poisoned sink: %v", err)
	}
	if st := c.Stats(); st.FramesSkipped != 1 {
		t.Fatalf("stats = %+v, want 1 skipped frame", st)
	}
}

// TestAddServicePreservesSchedulerStats is the regression test for
// AddService rebuilding the scheduler and silently zeroing its
// accumulated assignment statistics.
func TestAddServicePreservesSchedulerStats(t *testing.T) {
	p, err := workload.ByID("G5")
	if err != nil {
		t.Fatal(err)
	}
	game := workload.NewGame(p, 5)
	r := newRig(t, 1, &glwireArrays{game: game}, 0)
	sink := r.client.Sink()

	const frames = 3
	for f := 0; f < frames; f++ {
		for _, cmd := range game.NextFrame().Commands {
			sink(cmd)
		}
		if _, err := r.client.NextFrame(5 * time.Second); err != nil {
			t.Fatalf("frame %d: %v", f, err)
		}
	}
	// Attach a second service mid-session.
	srv, err := NewServer(ServerConfig{Width: testW, Height: testH})
	if err != nil {
		t.Fatal(err)
	}
	pcC, pcS := rudp.NewMemPair(0, 9)
	connC := rudp.New(pcC, pcS.Addr(), rudp.DefaultOptions())
	connS := rudp.New(pcS, pcC.Addr(), rudp.DefaultOptions())
	go func() {
		_ = srv.ServeWithTimeout(connS, 500*time.Millisecond)
		_ = connS.Close()
	}()
	if err := r.client.AddService("late", connC, 1000, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	r.client.mu.Lock()
	stats := r.client.sched.Stats
	devices := len(r.client.sched.Devices())
	r.client.mu.Unlock()
	if stats.Assigned != frames {
		t.Fatalf("scheduler stats zeroed by AddService: assigned = %d, want %d", stats.Assigned, frames)
	}
	if stats.TotalWork == 0 || len(stats.PerDevice) == 0 {
		t.Fatalf("scheduler stats zeroed by AddService: %+v", stats)
	}
	if devices != 2 {
		t.Fatalf("scheduler has %d devices, want 2", devices)
	}
}

// TestRecvLoopCountsDroppedMessages is the regression test for the
// receive loop silently discarding undecodable or unexpected messages.
func TestRecvLoopCountsDroppedMessages(t *testing.T) {
	c, err := NewClient(ClientConfig{Width: testW, Height: testH})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	pcC, pcS := rudp.NewMemPair(0, 2)
	connC := rudp.New(pcC, pcS.Addr(), rudp.DefaultOptions())
	connS := rudp.New(pcS, pcC.Addr(), rudp.DefaultOptions())
	defer connS.Close()
	if err := c.AddService("srv", connC, 1000, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	// One undecodable message (too short to frame)...
	if err := connS.Send([]byte{0xFF}); err != nil {
		t.Fatal(err)
	}
	// ...and one well-formed message of a type the client ignores.
	if err := connS.Send(encodeMsg(MsgStateUpdate, 0, []byte("x"))); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for {
		st := c.Stats()
		if st.RecvBadMsgs == 1 && st.RecvUnexpected == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("drops not counted: bad=%d unexpected=%d", st.RecvBadMsgs, st.RecvUnexpected)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
