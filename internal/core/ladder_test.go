package core

import (
	"testing"
	"time"

	"github.com/gbooster/gbooster/internal/rudp"
)

func TestQualityLadderStepsDownUnderCongestion(t *testing.T) {
	l := newQualityLadder(85, 20)
	// First sample only primes the deltas — even one arriving with
	// nonzero lifetime counters must not read as fresh congestion.
	if q := l.observe(rudp.Stats{DataResent: 50}); q != 85 {
		t.Fatalf("priming sample moved quality to %d", q)
	}
	// Sustained retransmit growth must walk quality to the floor.
	resent := int64(50)
	last := 85
	for i := 0; i < 30; i++ {
		resent += 3
		q := l.observe(rudp.Stats{DataResent: resent})
		if q > last {
			t.Fatalf("step %d: quality rose to %d under congestion", i, q)
		}
		last = q
	}
	if last != 20 {
		t.Fatalf("quality after sustained loss = %d, want floor 20", last)
	}
	if l.stepsDown == 0 {
		t.Fatal("stepsDown not counted")
	}
	// At the floor, further congestion holds (never below floor).
	resent += 3
	if q := l.observe(rudp.Stats{DataResent: resent}); q != 20 {
		t.Fatalf("quality fell below floor: %d", q)
	}
}

func TestQualityLadderRecoversWhenClean(t *testing.T) {
	l := newQualityLadder(85, 20)
	l.observe(rudp.Stats{}) // prime
	l.observe(rudp.Stats{RecvQueueDrops: 1})
	low := l.current
	if low >= 85 {
		t.Fatalf("drop sample did not step down (quality %d)", low)
	}
	// One clean sample is not enough to climb (anti-bounce).
	if q := l.observe(rudp.Stats{RecvQueueDrops: 1}); q != low {
		t.Fatalf("recovered after a single clean sample: %d", q)
	}
	// Sustained clean samples climb gently back to the ceiling.
	for i := 0; i < 60 && l.current < 85; i++ {
		next := l.observe(rudp.Stats{RecvQueueDrops: 1})
		if next < low {
			t.Fatalf("quality fell while clean: %d", next)
		}
		if next-low > 3 {
			t.Fatalf("recovery step too large: %d -> %d", low, next)
		}
		low = next
	}
	if l.current != 85 {
		t.Fatalf("quality did not recover to ceiling: %d", l.current)
	}
	if l.stepsUp == 0 {
		t.Fatal("stepsUp not counted")
	}
}

func TestQualityLadderCongestionSignals(t *testing.T) {
	base := rudp.Stats{MinSRTT: 5 * time.Millisecond, SRTT: 5 * time.Millisecond, WindowLimit: 32}
	cases := []struct {
		name string
		st   rudp.Stats
	}{
		{"resent", func() rudp.Stats { s := base; s.DataResent = 1; return s }()},
		{"drops", func() rudp.Stats { s := base; s.RecvQueueDrops = 1; return s }()},
		{"window", func() rudp.Stats { s := base; s.WindowOccupancy = 16; return s }()},
		{"rtt", func() rudp.Stats { s := base; s.SRTT = 25 * time.Millisecond; return s }()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			l := newQualityLadder(85, 20)
			l.observe(base)
			if q := l.observe(tc.st); q >= 85 {
				t.Fatalf("signal %s did not step quality down (got %d)", tc.name, q)
			}
		})
	}
	// A fast path with SRTT jitter under the slack must stay clean.
	l := newQualityLadder(85, 20)
	l.observe(base)
	jitter := base
	jitter.SRTT = base.SRTT + 8*time.Millisecond // < 2*min+10ms
	if q := l.observe(jitter); q != 85 {
		t.Fatalf("sub-slack RTT jitter stepped quality to %d", q)
	}
}

func TestQualityLadderFloorClamp(t *testing.T) {
	if l := newQualityLadder(30, 50); l.floor != 30 {
		t.Fatalf("floor above ceiling not clamped: %d", l.floor)
	}
	if l := newQualityLadder(30, -1); l.floor != 1 {
		t.Fatalf("nonpositive floor not clamped: %d", l.floor)
	}
}
