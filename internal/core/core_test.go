package core

import (
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/gbooster/gbooster/internal/gles"
	"github.com/gbooster/gbooster/internal/hook"
	"github.com/gbooster/gbooster/internal/rudp"
	"github.com/gbooster/gbooster/internal/turbo"
	"github.com/gbooster/gbooster/internal/workload"
)

const (
	testW = 96
	testH = 64
)

// rig wires a client to n in-memory servers, each served by its own
// goroutine.
type rig struct {
	client  *Client
	servers []*Server
	wg      sync.WaitGroup
}

func newRig(t *testing.T, n int, arrays *glwireArrays, loss float64) *rig {
	t.Helper()
	client, err := NewClient(ClientConfig{Width: testW, Height: testH, Arrays: arrays.table()})
	if err != nil {
		t.Fatal(err)
	}
	r := &rig{client: client}
	opts := rudp.DefaultOptions()
	opts.RTO = 10 * time.Millisecond
	for i := 0; i < n; i++ {
		srv, err := NewServer(ServerConfig{Width: testW, Height: testH})
		if err != nil {
			t.Fatal(err)
		}
		pcC, pcS := rudp.NewMemPair(loss, uint64(100+i))
		connC := rudp.New(pcC, pcS.Addr(), opts)
		connS := rudp.New(pcS, pcC.Addr(), opts)
		// Faster device for even indices: heterogeneity for Eq. 4.
		capability := 1000.0 + float64(i%2)*1000
		if err := client.AddService(srv.String(i), connC, capability, 2*time.Millisecond); err != nil {
			t.Fatal(err)
		}
		r.servers = append(r.servers, srv)
		r.wg.Add(1)
		go func(s *Server, c *rudp.Conn) {
			defer r.wg.Done()
			_ = s.ServeWithTimeout(c, 500*time.Millisecond)
			_ = c.Close()
		}(srv, connS)
	}
	t.Cleanup(func() {
		_ = client.Close()
		r.wg.Wait()
	})
	return r
}

// String labels a server for AddService.
func (s *Server) String(i int) string {
	return "server-" + string(rune('A'+i))
}

// glwireArrays adapts a workload game's array table (or none).
type glwireArrays struct {
	game *workload.Game
}

func (g *glwireArrays) table() interface {
	ClientArray(uint64) ([]byte, bool)
} {
	if g.game == nil {
		return nil
	}
	return g.game.Arrays()
}

func TestEndToEndSingleServer(t *testing.T) {
	p, err := workload.ByID("G5")
	if err != nil {
		t.Fatal(err)
	}
	game := workload.NewGame(p, 1)
	r := newRig(t, 1, &glwireArrays{game: game}, 0)

	// Drive the game through the hooked sink, exactly as an app would.
	ln := hook.NewLinker()
	if err := r.client.Install(ln, "libgbooster.so"); err != nil {
		t.Fatal(err)
	}
	swap, err := hook.ResolveGL(ln, hook.LinkDirect, "eglSwapBuffers")
	if err != nil {
		t.Fatal(err)
	}
	_ = swap

	const frames = 6
	for f := 0; f < frames; f++ {
		frame := game.NextFrame()
		for _, cmd := range frame.Commands {
			fn, err := hook.ResolveGL(ln, hook.LinkDirect, cmd.Op.String())
			if err != nil {
				t.Fatalf("resolve %v: %v", cmd.Op, err)
			}
			fn(cmd)
		}
		if err := r.client.Err(); err != nil {
			t.Fatalf("frame %d sink error: %v", f, err)
		}
	}
	for f := 0; f < frames; f++ {
		got, err := r.client.NextFrame(5 * time.Second)
		if err != nil {
			t.Fatalf("frame %d: %v", f, err)
		}
		if got.Seq != uint64(f) {
			t.Fatalf("frame seq = %d, want %d (display order broken)", got.Seq, f)
		}
		if len(got.Pixels) != testW*testH*4 {
			t.Fatalf("frame size = %d", len(got.Pixels))
		}
	}
	st := r.client.Stats()
	if st.FramesSent != frames || st.FramesDisplayed != frames {
		t.Fatalf("stats %+v", st)
	}
	if st.WireBytes >= st.RawBytes {
		t.Fatalf("no wire reduction: raw %d wire %d", st.RawBytes, st.WireBytes)
	}
	if st.CacheHits == 0 {
		t.Fatal("command cache never hit across coherent frames")
	}
	srvStats := r.servers[0].Stats()
	if srvStats.FramesRendered != frames || srvStats.ExecErrors != 0 {
		t.Fatalf("server stats %+v", srvStats)
	}
}

func TestEndToEndFramesMatchLocalRendering(t *testing.T) {
	// The offloaded path must produce (lossily) the same images a local
	// GPU would: render the identical stream locally and compare PSNR.
	p, err := workload.ByID("G6")
	if err != nil {
		t.Fatal(err)
	}
	gameRemote := workload.NewGame(p, 9)
	gameLocal := workload.NewGame(p, 9)
	r := newRig(t, 1, &glwireArrays{game: gameRemote}, 0)
	sink := r.client.Sink()

	localGPU := gles.NewGPU(testW, testH)
	localEnc := newLocalResolver(gameLocal)

	const frames = 4
	for f := 0; f < frames; f++ {
		remoteFrame := gameRemote.NextFrame()
		for _, cmd := range remoteFrame.Commands {
			sink(cmd)
		}
		localFrame := gameLocal.NextFrame()
		localPix, err := localEnc.render(localGPU, localFrame.Commands)
		if err != nil {
			t.Fatalf("local render %d: %v", f, err)
		}
		got, err := r.client.NextFrame(5 * time.Second)
		if err != nil {
			t.Fatalf("remote frame %d: %v", f, err)
		}
		if psnr := turbo.PSNR(localPix, got.Pixels); psnr < 25 {
			t.Fatalf("frame %d PSNR = %.1f dB vs local rendering", f, psnr)
		}
	}
}

// localResolver renders a command stream locally, resolving deferred
// pointers through the same glwire path the client uses.
type localResolver struct {
	game *workload.Game
}

func newLocalResolver(g *workload.Game) *localResolver { return &localResolver{game: g} }

func (l *localResolver) render(gpu *gles.GPU, cmds []gles.Command) ([]byte, error) {
	enc := newFrameEncoder(l.game)
	recs, err := enc.encodeAll(cmds)
	if err != nil {
		return nil, err
	}
	for _, cmd := range recs {
		if _, err := gpu.Execute(cmd); err != nil {
			return nil, err
		}
	}
	out := make([]byte, len(gpu.FB.Pix))
	copy(out, gpu.FB.Pix)
	return out, nil
}

func TestEndToEndMultiServerConsistency(t *testing.T) {
	// Three servers; frames are dispatched by Eq. 4 while state
	// replicates everywhere. Afterwards every server's GL state
	// fingerprint must agree (§VI-B), and the client must have used
	// more than one server.
	p, err := workload.ByID("G5")
	if err != nil {
		t.Fatal(err)
	}
	game := workload.NewGame(p, 4)
	r := newRig(t, 3, &glwireArrays{game: game}, 0)
	sink := r.client.Sink()

	const frames = 12
	for f := 0; f < frames; f++ {
		for _, cmd := range game.NextFrame().Commands {
			sink(cmd)
		}
	}
	for f := 0; f < frames; f++ {
		got, err := r.client.NextFrame(5 * time.Second)
		if err != nil {
			t.Fatalf("frame %d: %v", f, err)
		}
		if got.Seq != uint64(f) {
			t.Fatalf("out-of-order display: got %d want %d", got.Seq, f)
		}
	}
	// State consistency across replicas.
	base := r.servers[0].Snapshot()
	for i, srv := range r.servers[1:] {
		if got := srv.Snapshot(); got != base {
			t.Fatalf("server %d state diverged:\n base=%+v\n got=%+v", i+1, base, got)
		}
	}
	// Work actually spread out.
	rendered := 0
	busy := 0
	for _, srv := range r.servers {
		st := srv.Stats()
		rendered += int(st.FramesRendered)
		if st.FramesRendered > 0 {
			busy++
		}
	}
	if rendered != frames {
		t.Fatalf("servers rendered %d frames, want %d", rendered, frames)
	}
	if busy < 2 {
		t.Fatalf("only %d servers did work; dispatch not spreading", busy)
	}
	if st := r.client.Stats(); st.StateBytes == 0 {
		t.Fatal("no state replication traffic recorded")
	}
}

func TestEndToEndSurvivesPacketLoss(t *testing.T) {
	p, err := workload.ByID("G6")
	if err != nil {
		t.Fatal(err)
	}
	game := workload.NewGame(p, 13)
	r := newRig(t, 1, &glwireArrays{game: game}, 0.1)
	sink := r.client.Sink()
	const frames = 5
	for f := 0; f < frames; f++ {
		for _, cmd := range game.NextFrame().Commands {
			sink(cmd)
		}
	}
	for f := 0; f < frames; f++ {
		if _, err := r.client.NextFrame(10 * time.Second); err != nil {
			t.Fatalf("frame %d lost under 10%% loss: %v", f, err)
		}
	}
}

func TestClientValidation(t *testing.T) {
	if _, err := NewClient(ClientConfig{}); err == nil {
		t.Fatal("zero-size client accepted")
	}
	if _, err := NewServer(ServerConfig{}); err == nil {
		t.Fatal("zero-size server accepted")
	}
	c, err := NewClient(ClientConfig{Width: 8, Height: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Flushing a frame with no services is an error surfaced via Err.
	sink := c.Sink()
	sink(gles.CmdSwapBuffers())
	if err := c.Err(); !errors.Is(err, ErrClosed) {
		t.Fatalf("no-service flush error = %v", err)
	}
}

func TestServerRejectsBadMessages(t *testing.T) {
	srv, err := NewServer(ServerConfig{Width: 8, Height: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Handle(nil); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("nil message error = %v", err)
	}
	if _, err := srv.Handle([]byte{9, 0}); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("bad type error = %v", err)
	}
	// Corrupt LZ4 payload.
	if _, err := srv.Handle(encodeMsg(MsgFrameBatch, 0, []byte{0xF0, 0x01})); err == nil {
		t.Fatal("corrupt payload accepted")
	}
}

func TestProtocolRoundTrip(t *testing.T) {
	msg := encodeMsg(MsgEncodedFrame, 12345, []byte("payload"))
	typ, seq, payload, err := decodeMsg(msg)
	if err != nil || typ != MsgEncodedFrame || seq != 12345 || string(payload) != "payload" {
		t.Fatalf("round trip: %d %d %q %v", typ, seq, payload, err)
	}
	if _, _, _, err := decodeMsg([]byte{1}); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("short message error = %v", err)
	}
}
