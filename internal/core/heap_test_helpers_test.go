package core

import "container/heap"

func heapPush(q *requestQueue, r *multiRequest) { heap.Push(q, r) }

func heapPop(q *requestQueue) *multiRequest {
	popped, ok := heap.Pop(q).(*multiRequest)
	if !ok {
		panic("core: heapPop type")
	}
	return popped
}
