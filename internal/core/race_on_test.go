//go:build race

package core

// raceEnabled reports whether the race detector is compiled in. The
// allocation gate skips its exact-zero assertion under race: the race
// runtime allocates shadow state on sync operations, which
// testing.AllocsPerRun cannot tell apart from real allocations.
const raceEnabled = true
