package core

import (
	"math/rand"
	"testing"
	"time"

	"github.com/gbooster/gbooster/internal/gles"
	"github.com/gbooster/gbooster/internal/rudp"
)

// TestBurstBackpressureIsNotFailure pins the dispatch-time distinction
// between a saturated send window (backpressure: wait out the drain)
// and a dead device (failure: evict). A deliberately small transport
// window makes a burst of back-to-back flushes overfill the window
// deterministically; every frame must still ship — the only device
// must not be failure-reported into eviction with frames gap-skipped,
// which is exactly what the guard used to do under a burst.
func TestBurstBackpressureIsNotFailure(t *testing.T) {
	const w, h = 96, 64
	client, err := NewClient(ClientConfig{Width: w, Height: h})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = client.Close() }()
	srv, err := NewServer(ServerConfig{Width: w, Height: h})
	if err != nil {
		t.Fatal(err)
	}
	// Window of 24 datagrams: one ~16 KB frame (~19 datagrams by the
	// guard's conservative raw-bytes estimate) fits an empty window,
	// but the second back-to-back flush lands on top of the first
	// frame's ~14 unacked datagrams and must see saturation.
	opts := rudp.DefaultOptions()
	opts.Window = 24
	pcC, pcS := rudp.NewMemPair(0, 7)
	connC := rudp.New(pcC, pcS.Addr(), opts)
	connS := rudp.New(pcS, pcC.Addr(), opts)
	done := make(chan struct{})
	go func() {
		_ = srv.ServeWithTimeout(connS, 2*time.Second)
		_ = connS.Close()
		close(done)
	}()
	if err := client.AddService("dev", connC, 1000, 2*time.Millisecond); err != nil {
		t.Fatal(err)
	}

	// Uniform synthetic frames: a fresh incompressible 64×64 texture
	// upload every frame keeps each batch ~16 KB raw on the wire.
	rng := rand.New(rand.NewSource(7))
	sink := client.Sink()
	sink(gles.CmdGenTexture(1))
	sink(gles.CmdBindTexture(gles.TexTarget2D, 1))
	const frames = 10
	for f := 0; f < frames; f++ {
		pixels := make([]byte, 64*64*4)
		rng.Read(pixels)
		sink(gles.CmdTexImage2D(gles.TexTarget2D, 0, 64, 64, pixels))
		sink(gles.CmdClearColor(float32(f)/frames, 0.2, 0.4, 1))
		sink(gles.CmdClear(gles.ClearColorBit))
		sink(gles.CmdSwapBuffers())
	}
	if err := client.Err(); err != nil {
		t.Fatalf("sink error: %v (stats %+v)", err, client.Stats())
	}
	for f := 0; f < frames; f++ {
		if _, err := client.NextFrame(10 * time.Second); err != nil {
			t.Fatalf("frame %d: %v (stats %+v)", f, err, client.Stats())
		}
	}
	st := client.Stats()
	if st.FramesSent != frames || st.FramesDisplayed != frames {
		t.Fatalf("sent=%d displayed=%d, want %d", st.FramesSent, st.FramesDisplayed, frames)
	}
	if st.FramesSkipped != 0 || st.Evictions != 0 {
		t.Fatalf("burst misread as device failure: skipped=%d evictions=%d",
			st.FramesSkipped, st.Evictions)
	}
	_ = client.Close()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("server did not exit")
	}
}
