package core
