package workload

import (
	"github.com/gbooster/gbooster/internal/gles"
	"github.com/gbooster/gbooster/internal/glwire"
	"github.com/gbooster/gbooster/internal/sim"
)

// Features summarizes one generated frame — the §V-B exogenous
// attribute candidates come straight from here (touchstroke frequency,
// command-sequence length, texture count, inter-frame command diff).
type Features struct {
	Commands    int
	Draws       int
	Textures    int
	TouchEvents int
	Burst       bool
	// UploadBytes is texel/vertex data volume carried this frame.
	UploadBytes int
	// CmdDiff is the paper's attribute 4: the number of commands that
	// differ between this frame and the previous one (symmetric
	// difference of command fingerprints).
	CmdDiff int
}

// Frame is one generated rendering request.
type Frame struct {
	Commands []gles.Command
	Features Features
}

// Game generates the real GLES command stream for a workload profile:
// a scene of textured sprites moving under player input, with the
// texture-upload and scene-change dynamics of its genre. Streams are
// deterministic per seed.
type Game struct {
	profile Profile
	rng     *sim.RNG
	arrays  *glwire.ClientArrayTable

	frame     int
	sprites   []sprite
	spriteIDs []uint64 // client-array ids for dynamic sprite geometry
	textures  []int32
	burstLeft int
	prevFP    map[uint64]int // previous frame's command fingerprints
}

type sprite struct {
	x, y   float32
	vx, vy float32
	size   float32
	tex    int
}

// Object id bases keep generated GL object ids disjoint.
const (
	texIDBase    = 100
	vboQuad      = 1
	shaderVertex = 1
	shaderFrag   = 2
	programMain  = 1
)

// NewGame builds a generator for the profile, seeded deterministically.
func NewGame(profile Profile, seed uint64) *Game {
	g := &Game{
		profile: profile,
		rng:     sim.NewRNG(seed),
		arrays:  glwire.NewClientArrayTable(),
	}
	n := profile.DrawsPerFrame
	if n < 1 {
		n = 1
	}
	g.sprites = make([]sprite, n)
	for i := range g.sprites {
		g.sprites[i] = sprite{
			x:    float32(g.rng.Float64()*2 - 1),
			y:    float32(g.rng.Float64()*2 - 1),
			vx:   float32(g.rng.Norm(0, 0.02)),
			vy:   float32(g.rng.Norm(0, 0.02)),
			size: float32(0.05 + g.rng.Float64()*0.15),
			tex:  i % maxInt(profile.TexturesPerFrame, 1),
		}
	}
	return g
}

// Arrays exposes the client-array registry the generator registers
// dynamic vertex data in; the interception layer resolves deferred
// glVertexAttribPointer commands against it.
func (g *Game) Arrays() *glwire.ClientArrayTable { return g.arrays }

// Profile returns the generator's profile.
func (g *Game) Profile() Profile { return g.profile }

// texturePixels draws a deterministic pattern for texture id so frames
// carry real, distinct texel data.
func texturePixels(id int, variant int, size int) []byte {
	pix := make([]byte, size*size*4)
	for y := 0; y < size; y++ {
		for x := 0; x < size; x++ {
			i := (y*size + x) * 4
			pix[i] = byte((x*8 + id*37 + variant*11) & 0xFF)
			pix[i+1] = byte((y*8 + id*73) & 0xFF)
			pix[i+2] = byte(((x ^ y) * 16) & 0xFF)
			pix[i+3] = 255
		}
	}
	return pix
}

// setupCommands emits the one-time context setup: shaders, program,
// quad VBO, and texture uploads.
func (g *Game) setupCommands() []gles.Command {
	cmds := []gles.Command{
		gles.CmdViewport(0, 0, StreamW, StreamH),
		gles.CmdClearColor(0.1, 0.15, 0.2, 1),
		gles.CmdCreateShader(gles.ShaderTypeVertex, shaderVertex),
		gles.CmdShaderSource(shaderVertex,
			"attribute vec2 aPosition; attribute vec2 aTexCoord; uniform mat4 uMVP;"),
		gles.CmdCompileShader(shaderVertex),
		gles.CmdCreateShader(gles.ShaderTypeFragment, shaderFrag),
		gles.CmdShaderSource(shaderFrag,
			"uniform vec4 uTint; uniform sampler2D uTexture; varying vec2 vUV;"),
		gles.CmdCompileShader(shaderFrag),
		gles.CmdCreateProgram(programMain),
		gles.CmdAttachShader(programMain, shaderVertex),
		gles.CmdAttachShader(programMain, shaderFrag),
		gles.CmdLinkProgram(programMain),
		gles.CmdUseProgram(programMain),
		gles.CmdEnable(gles.CapBlend),
		gles.CmdBlendFunc(gles.BlendSrcAlpha, gles.BlendOneMinusSrcA),
	}
	// Unit quad VBO: two triangles of (pos, uv) interleaved.
	quad := gles.FloatsToBytes([]float32{
		// x, y, u, v
		-0.5, -0.5, 0, 0,
		0.5, -0.5, 1, 0,
		-0.5, 0.5, 0, 1,
		0.5, -0.5, 1, 0,
		0.5, 0.5, 1, 1,
		-0.5, 0.5, 0, 1,
	})
	cmds = append(cmds,
		gles.CmdGenBuffer(vboQuad),
		gles.CmdBindBuffer(gles.BufTargetArray, vboQuad),
		gles.CmdBufferData(gles.BufTargetArray, quad, gles.UsageStaticDraw),
	)
	nTex := maxInt(g.profile.TexturesPerFrame, 1)
	g.textures = make([]int32, nTex)
	for i := 0; i < nTex; i++ {
		id := int32(texIDBase + i)
		g.textures[i] = id
		cmds = append(cmds,
			gles.CmdGenTexture(id),
			gles.CmdBindTexture(gles.TexTarget2D, id),
			gles.CmdTexImage2D(gles.TexTarget2D, 0, 32, 32, texturePixels(i, 0, 32)),
			gles.CmdTexParameteri(gles.TexTarget2D, gles.TexMinFilter, gles.FilterNearest),
		)
	}
	return cmds
}

// NextFrame generates the next rendering request. The first call emits
// scene setup followed by the first frame.
func (g *Game) NextFrame() Frame {
	var cmds []gles.Command
	var feats Features
	if g.frame == 0 {
		cmds = g.setupCommands()
		for _, c := range cmds {
			feats.UploadBytes += len(c.Data)
		}
	}

	// Player input: Poisson touches per frame at the profile cap rate.
	perFrame := g.profile.TouchRatePerSec / g.profile.FPSCap
	touches := 0
	for g.rng.Bool(clamp01(perFrame)) {
		touches++
		perFrame -= 1 // at most a few per frame
	}
	// Input bursts (camera jumps) persist a handful of frames.
	if g.burstLeft == 0 && g.rng.Bool(clamp01(g.profile.BurstRatePerSec/g.profile.FPSCap)) {
		g.burstLeft = 6 + g.rng.Intn(8)
		touches += 2 + g.rng.Intn(4)
	}
	burst := g.burstLeft > 0
	if burst {
		g.burstLeft--
	}
	feats.TouchEvents = touches
	feats.Burst = burst

	// Move sprites; bursts fling everything (scene change).
	speed := float32(1)
	if burst {
		speed = float32(g.profile.BurstSceneFactor)
	}
	for i := range g.sprites {
		s := &g.sprites[i]
		s.x += s.vx * speed
		s.y += s.vy * speed
		if s.x > 1.2 || s.x < -1.2 {
			s.vx = -s.vx
		}
		if s.y > 1.2 || s.y < -1.2 {
			s.vy = -s.vy
		}
	}

	// Non-gaming UIs redraw only a dirty region: they scissor to the
	// changed strip (list rows, status text) instead of repainting the
	// whole screen — part of why their GPU load and downlink deltas are
	// tiny (Table III).
	if g.profile.Genre == GenreApp {
		stripH := int32(StreamH / 6)
		y := int32(g.rng.Intn(StreamH - int(stripH)))
		cmds = append(cmds,
			gles.CmdEnable(gles.CapScissorTest),
			gles.CmdScissor(0, y, StreamW, stripH),
		)
	}

	cmds = append(cmds, gles.CmdClear(gles.ClearColorBit))
	feats.Draws++ // clear rasterizes

	// Occasional texture animation: re-upload one texture's pixels;
	// bursts upload more (new scene content streaming in).
	uploads := 0
	if g.frame%30 == 15 {
		uploads = 1
	}
	if burst && g.frame%3 == 0 {
		uploads += int(g.profile.BurstSceneFactor)
	}
	for u := 0; u < uploads && len(g.textures) > 0; u++ {
		slot := g.rng.Intn(len(g.textures))
		pix := texturePixels(slot, g.frame+u, 32)
		cmds = append(cmds,
			gles.CmdBindTexture(gles.TexTarget2D, g.textures[slot]),
			gles.CmdTexImage2D(gles.TexTarget2D, 0, 32, 32, pix),
		)
		feats.UploadBytes += len(pix)
	}

	// Draw sprites. Most use the static quad VBO; a fraction use
	// client-side arrays to exercise the §IV-B deferred path.
	texBound := make(map[int32]bool)
	for i := range g.sprites {
		s := &g.sprites[i]
		tex := g.textures[s.tex%len(g.textures)]
		if !texBound[tex] {
			cmds = append(cmds, gles.CmdBindTexture(gles.TexTarget2D, tex))
			texBound[tex] = true
			feats.Textures++
		}
		mvp := spriteMVP(s)
		cmds = append(cmds, gles.CmdUniformMatrix4fv(gles.LocMVP, mvp))
		if i%8 == 7 {
			// Client-array path: dynamic geometry registered with the
			// array table; extent resolved at draw time.
			verts := gles.FloatsToBytes(spriteTriangles(s))
			var id uint64
			if i/8 < len(g.spriteIDs) {
				id = g.spriteIDs[i/8]
				g.arrays.Update(id, verts)
			} else {
				id = g.arrays.Register(verts)
				g.spriteIDs = append(g.spriteIDs, id)
			}
			cmds = append(cmds,
				gles.CmdVertexAttribPointerClient(gles.LocPosition, 2, 0, id),
				gles.CmdEnableVertexAttribArray(gles.LocPosition),
				gles.CmdDisableVertexAttribArray(gles.LocTexCoord),
				gles.CmdDrawArrays(gles.DrawModeTriangles, 0, 6),
			)
			feats.UploadBytes += len(verts)
		} else {
			cmds = append(cmds,
				gles.CmdBindBuffer(gles.BufTargetArray, vboQuad),
				gles.CmdVertexAttribPointerVBO(gles.LocPosition, 2, 16, 0, vboQuad),
				gles.CmdEnableVertexAttribArray(gles.LocPosition),
				gles.CmdVertexAttribPointerVBO(gles.LocTexCoord, 2, 16, 8, vboQuad),
				gles.CmdEnableVertexAttribArray(gles.LocTexCoord),
				gles.CmdDrawArrays(gles.DrawModeTriangles, 0, 6),
			)
		}
		feats.Draws++
	}
	cmds = append(cmds, gles.CmdSwapBuffers())
	feats.Commands = len(cmds)
	feats.CmdDiff = g.commandDiff(cmds)
	g.frame++
	return Frame{Commands: cmds, Features: feats}
}

// commandDiff computes the §V-B attribute 4 on the real stream: the
// symmetric-difference size between this frame's and the previous
// frame's command multisets, by cheap fingerprinting.
func (g *Game) commandDiff(cmds []gles.Command) int {
	cur := make(map[uint64]int, len(cmds))
	for i := range cmds {
		cur[fingerprint(&cmds[i])]++
	}
	diff := 0
	for fp, n := range cur {
		if p := g.prevFP[fp]; n > p {
			diff += n - p
		}
	}
	for fp, p := range g.prevFP {
		if n := cur[fp]; p > n {
			diff += p - n
		}
	}
	g.prevFP = cur
	return diff
}

// fingerprint hashes a command's op and arguments (FNV-1a over the
// argument words and a data prefix).
func fingerprint(c *gles.Command) uint64 {
	const (
		offset = 1469598103934665603
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(v uint64) {
		h ^= v
		h *= prime
	}
	mix(uint64(c.Op))
	for _, v := range c.Ints {
		mix(uint64(uint32(v)))
	}
	for _, v := range c.Floats {
		mix(uint64(uint32(v * 4096)))
	}
	for i := 0; i < len(c.Data) && i < 32; i++ {
		mix(uint64(c.Data[i]))
	}
	mix(uint64(len(c.Data)))
	return h
}

// spriteMVP builds a column-major translation+scale matrix.
func spriteMVP(s *sprite) [16]float32 {
	return [16]float32{
		s.size, 0, 0, 0,
		0, s.size, 0, 0,
		0, 0, 1, 0,
		s.x, s.y, 0, 1,
	}
}

// spriteTriangles emits two triangles for a sprite in model space
// already positioned (client-array sprites skip the MVP).
func spriteTriangles(s *sprite) []float32 {
	h := s.size / 2
	return []float32{
		s.x - h, s.y - h, s.x + h, s.y - h, s.x - h, s.y + h,
		s.x + h, s.y - h, s.x + h, s.y + h, s.x - h, s.y + h,
	}
}

func clamp01(v float64) float64 {
	switch {
	case v < 0:
		return 0
	case v > 1:
		return 1
	default:
		return v
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
