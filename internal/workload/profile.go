// Package workload synthesizes the applications the paper evaluates:
// the six games of Table II (two action, two role-playing, two puzzle)
// and the three non-gaming apps of Table III. Each workload has two
// faces:
//
//   - a real GLES command-stream generator (scene of moving textured
//     sprites driven by touch events) used to measure the actual data
//     plane — serialized bytes, cache hit rates, LZ4 ratios, turbo tile
//     deltas — on genuine command and pixel data; and
//
//   - a calibrated analytic profile (GPU gigapixels per frame, CPU
//     milliseconds per frame, scene dynamics) used to run 15-minute
//     sessions in virtual time.
//
// Calibration targets the paper's published anchors: G1 (GTA San
// Andreas) at ~23 FPS locally on the Nexus 5 and ~37-40 offloaded; G5
// (Candy Crush) at ~50 locally and ~52 offloaded; the LG G5 running
// action games at roughly twice the Nexus 5's rate. The constants and
// the anchor they serve are documented field by field.
package workload

import (
	"errors"
	"fmt"
)

// Genre of a workload.
type Genre int

// Genres from Table II, plus non-gaming apps (Table III).
const (
	GenreAction Genre = iota + 1
	GenreRolePlaying
	GenrePuzzle
	GenreApp
)

// String names the genre as the paper does.
func (g Genre) String() string {
	switch g {
	case GenreAction:
		return "Action"
	case GenreRolePlaying:
		return "Role playing"
	case GenrePuzzle:
		return "Puzzle"
	case GenreApp:
		return "Non-gaming"
	default:
		return fmt.Sprintf("Genre(%d)", int(g))
	}
}

// ErrUnknownWorkload reports a bad profile lookup.
var ErrUnknownWorkload = errors.New("workload: unknown workload")

// Profile is the calibrated description of one application.
type Profile struct {
	// ID is the paper's label (G1..G6, A1..A3); Name the app title.
	ID   string
	Name string

	Genre Genre

	// PackageSizeGB is Table II's installation size.
	PackageSizeGB float64

	// FrameWorkloadGP is the GPU work per frame in gigapixel-fragments
	// at the 600×480 streaming resolution. With the mobile-GPU
	// efficiency factor (see GPUEfficiency) this pins the local frame
	// rate: Nexus 5 local FPS = 3.6·η / FrameWorkloadGP.
	FrameWorkloadGP float64
	// WorkloadCV is the coefficient of variation of per-frame GPU work
	// (scene complexity noise); action games swing the most.
	WorkloadCV float64

	// LogicCPUMs is the game-logic CPU time per frame on the Nexus 5
	// reference CPU; DriverCPUMs is the local GL driver overhead that
	// offloading removes (the wrapper replaces it with serialize+decode
	// costs).
	LogicCPUMs  float64
	DriverCPUMs float64

	// DrawsPerFrame and TexturesPerFrame size the command stream.
	DrawsPerFrame    int
	TexturesPerFrame int

	// TouchRatePerSec is the baseline player input rate; BurstRatePerSec
	// the rate of input bursts that cause whole-scene changes (camera
	// jumps); BurstSceneFactor multiplies scene change and traffic
	// during a burst.
	TouchRatePerSec  float64
	BurstRatePerSec  float64
	BurstSceneFactor float64

	// UplinkKBPerFrame is the calibrated post-optimization uplink
	// volume per frame (after LRU cache + LZ4), in kilobytes. Values
	// keep steady-state action-game traffic just under Bluetooth
	// capacity so input bursts are what force WiFi wake-ups (§V-B).
	UplinkKBPerFrame float64

	// StaticTileFraction is the typical fraction of screen tiles that
	// change frame to frame (drives downlink volume through the turbo
	// codec); action ≈ most of the screen, puzzle ≈ little.
	ChangedTileFraction float64

	// FPSCap is the engine/display frame cap.
	FPSCap float64
}

// GPUEfficiency converts Table I marketing fillrates to achieved
// fragment throughput in real scenes (mobile GPUs sustain a small
// fraction of peak under blending, texturing, and bandwidth limits).
// Calibrated so Nexus 5 local G1 lands at the paper's ~23 FPS.
const GPUEfficiency = 0.08

// StreamW and StreamH are the streaming resolution — the paper's
// low-quality setting of §V-A (600×480 at 25+ FPS).
const (
	StreamW = 600
	StreamH = 480
)

// Games returns the six Table II games, calibrated to the paper's
// anchors.
func Games() []Profile {
	return []Profile{
		{
			ID: "G1", Name: "GTA San Andreas", Genre: GenreAction, PackageSizeGB: 2.41,
			// 0.288/23 -> 23 FPS local on Nexus 5 (paper Fig. 5a).
			FrameWorkloadGP: 0.01252, WorkloadCV: 0.22,
			LogicCPUMs: 12.0, DriverCPUMs: 3.0,
			DrawsPerFrame: 120, TexturesPerFrame: 48,
			TouchRatePerSec: 4, BurstRatePerSec: 0.06, BurstSceneFactor: 2.5,
			UplinkKBPerFrame: 12, ChangedTileFraction: 0.75, FPSCap: 60,
		},
		{
			ID: "G2", Name: "Modern Combat 5", Genre: GenreAction, PackageSizeGB: 0.89,
			// 0.288/22 -> 22 FPS local (paper Fig. 5a).
			FrameWorkloadGP: 0.01309, WorkloadCV: 0.22,
			LogicCPUMs: 11.0, DriverCPUMs: 3.0,
			DrawsPerFrame: 110, TexturesPerFrame: 40,
			TouchRatePerSec: 5, BurstRatePerSec: 0.07, BurstSceneFactor: 2.5,
			UplinkKBPerFrame: 12, ChangedTileFraction: 0.80, FPSCap: 60,
		},
		{
			ID: "G3", Name: "Star Wars: KOTOR", Genre: GenreRolePlaying, PackageSizeGB: 2.4,
			FrameWorkloadGP: 0.01108, WorkloadCV: 0.15,
			LogicCPUMs: 13.0, DriverCPUMs: 3.0,
			DrawsPerFrame: 90, TexturesPerFrame: 36,
			TouchRatePerSec: 2, BurstRatePerSec: 0.03, BurstSceneFactor: 1.8,
			UplinkKBPerFrame: 11, ChangedTileFraction: 0.55, FPSCap: 60,
		},
		{
			ID: "G4", Name: "Final Fantasy", Genre: GenreRolePlaying, PackageSizeGB: 3.05,
			FrameWorkloadGP: 0.01152, WorkloadCV: 0.15,
			LogicCPUMs: 14.0, DriverCPUMs: 3.0,
			DrawsPerFrame: 95, TexturesPerFrame: 38,
			TouchRatePerSec: 1.5, BurstRatePerSec: 0.03, BurstSceneFactor: 1.8,
			UplinkKBPerFrame: 11, ChangedTileFraction: 0.50, FPSCap: 60,
		},
		{
			ID: "G5", Name: "Candy Crush", Genre: GenrePuzzle, PackageSizeGB: 0.17,
			// CPU-bound: logic+driver = 20 ms -> 50 FPS local; offload
			// removes the driver and gains ~2 FPS (paper: 50 -> 52).
			FrameWorkloadGP: 0.0018, WorkloadCV: 0.08,
			LogicCPUMs: 17.5, DriverCPUMs: 2.5,
			DrawsPerFrame: 40, TexturesPerFrame: 20,
			TouchRatePerSec: 1, BurstRatePerSec: 0.01, BurstSceneFactor: 1.3,
			UplinkKBPerFrame: 4, ChangedTileFraction: 0.12, FPSCap: 60,
		},
		{
			ID: "G6", Name: "Cut the Rope", Genre: GenrePuzzle, PackageSizeGB: 0.12,
			FrameWorkloadGP: 0.0019, WorkloadCV: 0.08,
			LogicCPUMs: 18.3, DriverCPUMs: 2.5,
			DrawsPerFrame: 35, TexturesPerFrame: 16,
			TouchRatePerSec: 1.2, BurstRatePerSec: 0.01, BurstSceneFactor: 1.3,
			UplinkKBPerFrame: 4, ChangedTileFraction: 0.15, FPSCap: 60,
		},
	}
}

// Apps returns the three Table III non-gaming applications: near-static
// UIs rendered at the display cap with negligible GPU work, so
// offloading yields no FPS boost and only a small energy saving.
func Apps() []Profile {
	return []Profile{
		{
			ID: "A1", Name: "Ebook Reader", Genre: GenreApp,
			FrameWorkloadGP: 0.0003, WorkloadCV: 0.05,
			LogicCPUMs: 3.0, DriverCPUMs: 1.0,
			DrawsPerFrame: 12, TexturesPerFrame: 6,
			TouchRatePerSec: 0.3, BurstRatePerSec: 0.005, BurstSceneFactor: 1.2,
			UplinkKBPerFrame: 1.5, ChangedTileFraction: 0.04, FPSCap: 60,
		},
		{
			ID: "A2", Name: "Yahoo Weather", Genre: GenreApp,
			FrameWorkloadGP: 0.00035, WorkloadCV: 0.05,
			LogicCPUMs: 3.5, DriverCPUMs: 1.0,
			DrawsPerFrame: 16, TexturesPerFrame: 8,
			TouchRatePerSec: 0.3, BurstRatePerSec: 0.005, BurstSceneFactor: 1.2,
			UplinkKBPerFrame: 1.5, ChangedTileFraction: 0.05, FPSCap: 60,
		},
		{
			ID: "A3", Name: "Tumblr", Genre: GenreApp,
			FrameWorkloadGP: 0.00032, WorkloadCV: 0.05,
			LogicCPUMs: 3.2, DriverCPUMs: 1.0,
			DrawsPerFrame: 14, TexturesPerFrame: 7,
			TouchRatePerSec: 0.5, BurstRatePerSec: 0.005, BurstSceneFactor: 1.2,
			UplinkKBPerFrame: 1.8, ChangedTileFraction: 0.06, FPSCap: 60,
		},
	}
}

// ByID resolves any profile (game or app) by its paper label.
func ByID(id string) (Profile, error) {
	for _, p := range Games() {
		if p.ID == id {
			return p, nil
		}
	}
	for _, p := range Apps() {
		if p.ID == id {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("%w: %q", ErrUnknownWorkload, id)
}
