package workload

import (
	"math"
	"testing"

	"github.com/gbooster/gbooster/internal/gles"
	"github.com/gbooster/gbooster/internal/glwire"
)

func TestProfilesCalibrationAnchors(t *testing.T) {
	// Nexus 5 local FPS = 3.6 GP/s · η / workload. These anchors pin
	// the Fig. 5 reproduction.
	effFill := 3.6 * GPUEfficiency
	tests := []struct {
		id      string
		wantFPS float64
		tol     float64
	}{
		{"G1", 23, 1}, // paper: 23
		{"G2", 22, 1}, // paper: 22
	}
	for _, tt := range tests {
		p, err := ByID(tt.id)
		if err != nil {
			t.Fatal(err)
		}
		fps := effFill / p.FrameWorkloadGP
		if math.Abs(fps-tt.wantFPS) > tt.tol {
			t.Errorf("%s GPU-bound local FPS = %.1f, want ~%.0f", tt.id, fps, tt.wantFPS)
		}
	}
	// Puzzle games are CPU-bound at ~50 FPS locally.
	g5, err := ByID("G5")
	if err != nil {
		t.Fatal(err)
	}
	cpuFPS := 1000 / (g5.LogicCPUMs + g5.DriverCPUMs)
	if math.Abs(cpuFPS-50) > 1 {
		t.Errorf("G5 CPU-bound local FPS = %.1f, want ~50", cpuFPS)
	}
	gpuFPS := effFill / g5.FrameWorkloadGP
	if gpuFPS < cpuFPS*1.3 {
		t.Errorf("G5 should be CPU-bound: gpu %.0f vs cpu %.0f", gpuFPS, cpuFPS)
	}
}

func TestGamesMatchTableII(t *testing.T) {
	games := Games()
	if len(games) != 6 {
		t.Fatalf("Games() = %d entries, want 6", len(games))
	}
	wantGenre := map[string]Genre{
		"G1": GenreAction, "G2": GenreAction,
		"G3": GenreRolePlaying, "G4": GenreRolePlaying,
		"G5": GenrePuzzle, "G6": GenrePuzzle,
	}
	for _, g := range games {
		if g.Genre != wantGenre[g.ID] {
			t.Errorf("%s genre = %v", g.ID, g.Genre)
		}
		if g.FrameWorkloadGP <= 0 || g.LogicCPUMs <= 0 || g.FPSCap != 60 {
			t.Errorf("%s has degenerate parameters: %+v", g.ID, g)
		}
	}
	// Action games are the most GPU-intensive; puzzle the least.
	g1, _ := ByID("G1")
	g5, _ := ByID("G5")
	if g1.FrameWorkloadGP <= g5.FrameWorkloadGP*2 {
		t.Error("action workload should dwarf puzzle workload")
	}
	// Package sizes from Table II.
	if g1.PackageSizeGB != 2.41 || g5.PackageSizeGB != 0.17 {
		t.Error("package sizes do not match Table II")
	}
}

func TestAppsPresent(t *testing.T) {
	apps := Apps()
	if len(apps) != 3 {
		t.Fatalf("Apps() = %d entries, want 3", len(apps))
	}
	for _, a := range apps {
		if a.Genre != GenreApp {
			t.Errorf("%s genre = %v", a.ID, a.Genre)
		}
		if a.FrameWorkloadGP > 0.002 {
			t.Errorf("%s too GPU-heavy for a UI app", a.ID)
		}
	}
}

func TestByIDUnknown(t *testing.T) {
	if _, err := ByID("G9"); err == nil {
		t.Fatal("unknown id resolved")
	}
}

func TestGenreString(t *testing.T) {
	for g, want := range map[Genre]string{
		GenreAction: "Action", GenreRolePlaying: "Role playing",
		GenrePuzzle: "Puzzle", GenreApp: "Non-gaming", Genre(9): "Genre(9)",
	} {
		if got := g.String(); got != want {
			t.Errorf("genre %d = %q want %q", int(g), got, want)
		}
	}
}

func TestGameStreamDeterministic(t *testing.T) {
	p, err := ByID("G1")
	if err != nil {
		t.Fatal(err)
	}
	a, b := NewGame(p, 42), NewGame(p, 42)
	for i := 0; i < 5; i++ {
		fa, fb := a.NextFrame(), b.NextFrame()
		if len(fa.Commands) != len(fb.Commands) {
			t.Fatalf("frame %d lengths differ: %d vs %d", i, len(fa.Commands), len(fb.Commands))
		}
		if fa.Features != fb.Features {
			t.Fatalf("frame %d features differ: %+v vs %+v", i, fa.Features, fb.Features)
		}
	}
	c := NewGame(p, 43)
	diff := false
	for i := 0; i < 10 && !diff; i++ {
		fa, fc := a.NextFrame(), c.NextFrame()
		if len(fa.Commands) != len(fc.Commands) || fa.Features != fc.Features {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestGameStreamExecutesOnGPU(t *testing.T) {
	// End-to-end data plane: generate → serialize (resolving deferred
	// pointers) → decode → execute on the software GPU without errors.
	for _, id := range []string{"G1", "G5", "A1"} {
		t.Run(id, func(t *testing.T) {
			p, err := ByID(id)
			if err != nil {
				t.Fatal(err)
			}
			game := NewGame(p, 7)
			enc := glwire.NewEncoder(game.Arrays())
			gpu := gles.NewGPU(StreamW, StreamH)
			var dec glwire.Decoder
			for f := 0; f < 8; f++ {
				frame := game.NextFrame()
				buf, err := enc.EncodeAll(nil, frame.Commands)
				if err != nil {
					t.Fatalf("frame %d encode: %v", f, err)
				}
				cmds, err := dec.DecodeAll(buf)
				if err != nil {
					t.Fatalf("frame %d decode: %v", f, err)
				}
				res, err := gpu.ExecuteAll(cmds)
				if err != nil {
					t.Fatalf("frame %d execute: %v", f, err)
				}
				if !res.FrameDone {
					t.Fatalf("frame %d did not end with SwapBuffers", f)
				}
				if res.Fragments == 0 {
					t.Fatalf("frame %d rasterized nothing", f)
				}
			}
			if gpu.FramesCompleted != 8 {
				t.Fatalf("frames completed = %d", gpu.FramesCompleted)
			}
		})
	}
}

func TestGameFramesProduceChangingPixels(t *testing.T) {
	// The turbo codec's benefit rests on frame coherence: consecutive
	// frames must differ somewhat but not completely.
	p, err := ByID("G1")
	if err != nil {
		t.Fatal(err)
	}
	game := NewGame(p, 11)
	enc := glwire.NewEncoder(game.Arrays())
	gpu := gles.NewGPU(StreamW, StreamH)
	var dec glwire.Decoder
	render := func() []byte {
		frame := game.NextFrame()
		buf, err := enc.EncodeAll(nil, frame.Commands)
		if err != nil {
			t.Fatal(err)
		}
		cmds, err := dec.DecodeAll(buf)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := gpu.ExecuteAll(cmds); err != nil {
			t.Fatal(err)
		}
		return append([]byte(nil), gpu.FB.Pix...)
	}
	f0 := render()
	f1 := render()
	changed := 0
	for i := range f0 {
		if f0[i] != f1[i] {
			changed++
		}
	}
	frac := float64(changed) / float64(len(f0))
	if frac == 0 {
		t.Fatal("consecutive frames identical; scene is static")
	}
	if frac > 0.9 {
		t.Fatalf("consecutive frames %.0f%% different; no coherence", frac*100)
	}
}

func TestGameFeaturesSane(t *testing.T) {
	p, err := ByID("G2")
	if err != nil {
		t.Fatal(err)
	}
	game := NewGame(p, 3)
	var touches, bursts int
	for f := 0; f < 3600; f++ { // 60 seconds at 60 FPS
		fr := game.NextFrame()
		if fr.Features.Commands != len(fr.Commands) {
			t.Fatal("feature command count wrong")
		}
		if fr.Features.Draws < p.DrawsPerFrame {
			t.Fatalf("frame draws %d < sprites %d", fr.Features.Draws, p.DrawsPerFrame)
		}
		if fr.Features.Textures > p.TexturesPerFrame {
			t.Fatalf("textures %d > profile %d", fr.Features.Textures, p.TexturesPerFrame)
		}
		touches += fr.Features.TouchEvents
		if fr.Features.Burst {
			bursts++
		}
	}
	// ~5 touches/sec -> ~300 over 60 s (bursts add more).
	if touches < 120 || touches > 1200 {
		t.Fatalf("touches over 60s = %d, want near 300", touches)
	}
	if bursts == 0 {
		t.Fatal("no input bursts in 60 s of an action game")
	}
}

func TestGameUplinkRedundancyIsReal(t *testing.T) {
	// The premise of §V-A: consecutive frames' command streams are
	// mostly redundant. Measured on real serialized records, the LRU
	// cache should absorb well over half the bytes after warm-up.
	p, err := ByID("G1")
	if err != nil {
		t.Fatal(err)
	}
	game := NewGame(p, 5)
	enc := glwire.NewEncoder(game.Arrays())
	// Warm up with 3 frames.
	var warm []byte
	for f := 0; f < 3; f++ {
		warm, err = enc.EncodeAll(warm[:0], game.NextFrame().Commands)
		if err != nil {
			t.Fatal(err)
		}
	}
	// Measure per-record repetition across the next frames.
	seen := make(map[string]bool)
	recs, err := glwire.SplitRecords(warm)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		seen[string(r)] = true
	}
	var repeated, total int64
	for f := 0; f < 5; f++ {
		buf, err := enc.EncodeAll(nil, game.NextFrame().Commands)
		if err != nil {
			t.Fatal(err)
		}
		recs, err := glwire.SplitRecords(buf)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range recs {
			total += int64(len(r))
			if seen[string(r)] {
				repeated += int64(len(r))
			}
			seen[string(r)] = true
		}
	}
	if frac := float64(repeated) / float64(total); frac < 0.3 {
		t.Fatalf("repeated-record byte fraction = %.2f, want redundancy-dominated stream", frac)
	}
}

func TestCommandDiffTracksSceneDynamics(t *testing.T) {
	// Attribute 4 of §V-B: inter-frame command difference. Consecutive
	// frames of a coherent scene differ partially — never 0 (sprites
	// move), never everything (setup state repeats).
	p, err := ByID("G1")
	if err != nil {
		t.Fatal(err)
	}
	game := NewGame(p, 21)
	first := game.NextFrame()
	if first.Features.CmdDiff != first.Features.Commands {
		t.Fatalf("first frame diff %d != all %d commands", first.Features.CmdDiff, first.Features.Commands)
	}
	for f := 0; f < 10; f++ {
		fr := game.NextFrame()
		if fr.Features.CmdDiff == 0 {
			t.Fatalf("frame %d identical to previous; sprites should move", f)
		}
		if fr.Features.CmdDiff >= 2*fr.Features.Commands {
			t.Fatalf("frame %d diff %d out of range for %d commands", f, fr.Features.CmdDiff, fr.Features.Commands)
		}
	}
}

func TestCommandDiffStaticAppIsSmall(t *testing.T) {
	// A near-static UI changes far fewer commands per frame than an
	// action game, relative to stream size.
	action, err := ByID("G1")
	if err != nil {
		t.Fatal(err)
	}
	app, err := ByID("A1")
	if err != nil {
		t.Fatal(err)
	}
	rel := func(p Profile) float64 {
		g := NewGame(p, 5)
		g.NextFrame() // setup frame
		var diff, total int
		for f := 0; f < 10; f++ {
			fr := g.NextFrame()
			diff += fr.Features.CmdDiff
			total += fr.Features.Commands
		}
		return float64(diff) / float64(total)
	}
	// Both scenes animate every sprite, so diffs are substantial; the
	// action game must be at least as dynamic as the UI app.
	if rel(action) < rel(app)*0.8 {
		t.Fatalf("action rel diff %.2f < app %.2f", rel(action), rel(app))
	}
}
