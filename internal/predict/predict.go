// Package predict is GBooster's live predictive control plane: the
// glue that takes the paper's §V-B machinery — online ARMAX traffic
// forecasting (internal/timeseries), anticipatory interface switching
// (internal/ifswitch), and the energy/thermal models (internal/energy,
// internal/thermal) — out of the offline experiments and wires it into
// a running session.
//
// A Controller owns one session's control loop. Every frame the player
// reports its exogenous signals (touchstroke frequency, texture count
// — the paper's AIC-selected attributes, already flowing through the
// uplink); every control window (100 ms) the observed traffic closes a
// demand sample, the ARMAX model forecasts 500 ms ahead, the interface
// switch pre-wakes WiFi before predicted spikes, and the energy
// account and thermal governor integrate frame/byte/radio activity. A
// second model over per-window record counts produces the load
// forecast that biases dispatch's Eq. 4 toward high-capability devices
// *before* a burst lands.
//
// The same Controller drives three callers: the live Player (wall
// clock, real traffic), the offline pipeline simulator (virtual clock,
// modeled traffic), and the A/B experiment harness — one code path, as
// the offline/online split previously duplicated in
// internal/experiments and examples/energysaving.
package predict

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/gbooster/gbooster/internal/energy"
	"github.com/gbooster/gbooster/internal/ifswitch"
	"github.com/gbooster/gbooster/internal/metrics"
	"github.com/gbooster/gbooster/internal/netsim"
	"github.com/gbooster/gbooster/internal/thermal"
	"github.com/gbooster/gbooster/internal/timeseries"
	"github.com/gbooster/gbooster/internal/workload"
)

// Errors.
var ErrBadConfig = errors.New("predict: invalid config")

// wallClock adapts the real wall clock to netsim.Clock: time as an
// offset from the controller's construction. This is what lets the
// live path drive the same radio/meter/switch models the simulator
// runs under sim.Clock.
type wallClock struct{ base time.Time }

// NewWallClock returns a netsim.Clock backed by the real wall clock.
func NewWallClock() netsim.Clock { return &wallClock{base: time.Now()} }

func (w *wallClock) Now() time.Duration { return time.Since(w.base) }

// Config parameterizes a Controller.
type Config struct {
	// Clock is the time source (nil = real wall clock). Offline callers
	// pass their *sim.Clock so radios and meters run in virtual time.
	Clock netsim.Clock
	// Window is the control window (default 100 ms; with the default
	// 5-window horizon this gives the paper's 500 ms forecast).
	Window time.Duration
	// Switch configures the interface switch (zero value = the
	// paper-faithful ifswitch.DefaultConfig with ExoDim 2).
	Switch ifswitch.Config
	// WiFi / Bluetooth override the radio specs (zero Name = defaults:
	// 802.11n in power-save mode between transfers, Bluetooth HS).
	WiFi, Bluetooth netsim.RadioSpec
	// Account receives the energy integration (nil = a fresh account).
	// Callers that keep their own CPU/display/GPU accounting (the
	// pipeline simulator) share their account here and leave the power
	// fields below zero so nothing is double-counted.
	Account *energy.Account
	// Thermal configures the GPU thermal governor (zero Levels =
	// thermal.PhoneGPU()).
	Thermal thermal.Config
	// CPUIdleW/CPUActiveW/DisplayW/GPUResidualW drive the controller's
	// own per-window device power accounting; each component is charged
	// only when its wattage is set, so callers with external accounting
	// opt out by leaving them zero.
	CPUIdleW, CPUActiveW, DisplayW, GPUResidualW float64
	// TargetFPS scales frame activity into CPU/GPU utilization for the
	// power model (default 60).
	TargetFPS float64
	// Traffic, when set, is the cumulative session byte counter
	// (uplink + downlink) the live Tick differences into per-window
	// demand; callers that compute demand themselves use Step instead.
	Traffic func() int64
}

func (c Config) withDefaults() Config {
	if c.Clock == nil {
		c.Clock = NewWallClock()
	}
	if c.Window <= 0 {
		c.Window = 100 * time.Millisecond
	}
	if c.Switch.HorizonWindows == 0 && c.Switch.ExoDim == 0 && c.Switch.Policy == 0 {
		c.Switch = ifswitch.DefaultConfig()
	}
	if c.WiFi.Name == "" {
		c.WiFi = netsim.WiFi80211n()
		c.WiFi.PowerIdle = 0.15 // PSM: dozing between transfers
	}
	if c.Bluetooth.Name == "" {
		c.Bluetooth = netsim.BluetoothHS()
	}
	if c.Account == nil {
		c.Account = energy.NewAccount()
	}
	if len(c.Thermal.Levels) == 0 {
		c.Thermal = thermal.PhoneGPU()
	}
	if c.TargetFPS <= 0 {
		c.TargetFPS = 60
	}
	return c
}

// WindowOutcome reports how one control window went, for callers that
// model the consequences (the pipeline simulator turns QueueDelay into
// stalled frames).
type WindowOutcome struct {
	// Radio is the interface that carried the window's traffic.
	Radio *netsim.Radio
	// Overloaded reports a realized wake-latency stall: demand exceeded
	// the usable path while WiFi was off or still waking.
	Overloaded bool
	// QueueDelay is the stall the overload imposes on that window's
	// frames.
	QueueDelay time.Duration
	// ForecastMbps is the horizon forecast made this window.
	ForecastMbps float64
}

// Controller is one session's predictive control loop. All methods are
// safe for concurrent use: the live path runs ObserveFrame from the
// frame loop, Tick from a timer goroutine, and Snapshot from stats
// readers.
type Controller struct {
	mu  sync.Mutex
	cfg Config

	clock netsim.Clock
	wifi  *netsim.Radio
	bt    *netsim.Radio
	meter *netsim.Meter
	sw    *ifswitch.Controller

	// loadModel forecasts per-window dispatched records (the Eq. 4
	// workload unit), fed from frame features.
	loadModel *timeseries.Model
	loadEWMA  float64

	gov  *thermal.Governor
	acct *energy.Account

	// Per-window frame accumulators, reset every Tick/Step.
	frames   int64
	touches  float64
	textures float64
	records  float64

	lastTraffic int64
	trafficInit bool

	// backlogBytes is traffic that exceeded the usable path during an
	// overload and queues until a radio can drain it.
	backlogBytes float64

	// Exceedance scoring: ring of horizon forecasts, compared against
	// realized demand when their window arrives.
	ring    []forecastAt
	ringPos int

	finished bool

	stats metrics.PredictStats
}

type forecastAt struct {
	mbps  float64
	valid bool
}

// New builds a controller.
func New(cfg Config) (*Controller, error) {
	cfg = cfg.withDefaults()
	clock := cfg.Clock
	wifi := netsim.NewRadio(clock, cfg.WiFi, netsim.StateOff)
	bt := netsim.NewRadio(clock, cfg.Bluetooth, netsim.StateOn)
	meter := netsim.NewMeter(clock, cfg.Window)
	sw, err := ifswitch.New(clock, cfg.Switch, wifi, bt, meter)
	if err != nil {
		return nil, fmt.Errorf("predict: %w", err)
	}
	// Per-window record counts are a short-memory series; the touch and
	// texture signals that lead traffic also lead dispatch load, so the
	// load model shares the exogenous structure.
	loadModel, err := timeseries.NewARMAX(3, 2, 2, 2)
	if err != nil {
		return nil, fmt.Errorf("predict: load model: %w", err)
	}
	gov, err := thermal.NewGovernor(cfg.Thermal)
	if err != nil {
		return nil, fmt.Errorf("predict: governor: %w", err)
	}
	c := &Controller{
		cfg:       cfg,
		clock:     clock,
		wifi:      wifi,
		bt:        bt,
		meter:     meter,
		sw:        sw,
		loadModel: loadModel,
		gov:       gov,
		acct:      cfg.Account,
		ring:      make([]forecastAt, sw.Horizon()),
	}
	return c, nil
}

// Window returns the control window.
func (c *Controller) Window() time.Duration { return c.cfg.Window }

// ObserveFrame feeds one frame's exogenous signals into the current
// control window: touch events and texture count (the paper's selected
// attributes) plus the frame's record count for the load forecast.
func (c *Controller) ObserveFrame(f workload.Features) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.frames++
	c.stats.Frames++
	c.touches += float64(f.TouchEvents)
	c.textures += float64(f.Textures)
	c.records += float64(f.Commands)
}

// AddBytes reports n bytes of session traffic into the current window
// (for callers without a cumulative Traffic hook).
func (c *Controller) AddBytes(n int) {
	if n <= 0 {
		return
	}
	c.mu.Lock()
	c.meter.Add(n)
	c.mu.Unlock()
}

// Tick closes the current control window on the live path: it
// differences the session's cumulative traffic into this window's
// demand, drains the frame accumulators into exogenous inputs, and
// runs one Step.
func (c *Controller) Tick() WindowOutcome {
	c.mu.Lock()
	defer c.mu.Unlock()
	var demandMbps float64
	if c.cfg.Traffic != nil {
		now := c.cfg.Traffic()
		if c.trafficInit {
			delta := now - c.lastTraffic
			if delta > 0 {
				demandMbps = float64(delta) * 8 / c.cfg.Window.Seconds() / 1e6
			}
		}
		c.lastTraffic = now
		c.trafficInit = true
	} else {
		demandMbps = c.meter.CurrentMbps()
	}
	return c.step(demandMbps, c.drainExo())
}

// Step closes one control window with an externally computed demand
// (offline simulators own their demand model). exo is the window's
// exogenous vector; nil drains the frame accumulators instead.
func (c *Controller) Step(demandMbps float64, exo []float64) WindowOutcome {
	c.mu.Lock()
	defer c.mu.Unlock()
	if exo == nil {
		exo = c.drainExo()
	}
	return c.step(demandMbps, exo)
}

// drainExo converts and resets the frame accumulators. Caller holds mu.
func (c *Controller) drainExo() []float64 {
	exo := []float64{c.touches, c.textures}
	// Feed the per-window dispatched records into the load model with
	// the same leading signals.
	if err := c.loadModel.Observe(c.records, exo); err == nil {
		c.loadEWMA += (c.records - c.loadEWMA) / 8
	}
	c.frames, c.touches, c.textures, c.records = 0, 0, 0, 0
	return exo
}

// step runs one control window. Caller holds mu.
func (c *Controller) step(demandMbps float64, exo []float64) WindowOutcome {
	c.stats.Windows++
	c.stats.DemandMbps = demandMbps

	// Score the horizon forecast whose window just arrived.
	slot := &c.ring[c.ringPos]
	if slot.valid {
		threshold := c.sw.Threshold()
		predicted := slot.mbps > threshold
		actual := demandMbps > threshold
		switch {
		case predicted && actual:
			c.stats.TPExceed++
		case predicted && !actual:
			c.stats.FPExceed++
		case !predicted && actual:
			c.stats.FNExceed++
		default:
			c.stats.TNExceed++
		}
		err := slot.mbps - demandMbps
		if err < 0 {
			err = -err
		}
		c.stats.ForecastErrEWMA += (err - c.stats.ForecastErrEWMA) / 8
	}

	// Feed the switch: observe + forecast + wake/sleep. Errors can only
	// be exogenous-dimension mismatches; the config pins the dimension,
	// so they are ignored after construction.
	if len(exo) != c.cfg.Switch.ExoDim {
		resized := make([]float64, c.cfg.Switch.ExoDim)
		copy(resized, exo)
		exo = resized
	}
	wakeUpsBefore := c.sw.Stats.WakeUps
	sleepsBefore := c.sw.Stats.Sleeps
	_ = c.sw.Tick(demandMbps, exo)
	c.stats.WakeUps += int64(c.sw.Stats.WakeUps - wakeUpsBefore)
	c.stats.Sleeps += int64(c.sw.Stats.Sleeps - sleepsBefore)

	forecast := c.sw.Forecast(c.sw.Horizon())
	c.stats.ForecastMbps = forecast
	*slot = forecastAt{mbps: forecast, valid: true}
	c.ringPos = (c.ringPos + 1) % len(c.ring)

	// Route the window's traffic and account the radio transfer. During
	// an overload Bluetooth physically delivers only its capacity; the
	// excess queues as backlog and drains — typically over WiFi once it
	// finishes waking — in later windows. This is what makes a missed
	// forecast expensive: the stalled bytes cross the air twice as
	// occupancy (queue, then drain) and the frames behind them wait.
	out := c.sw.Route(demandMbps)
	bytesThisWindow := demandMbps * 1e6 / 8 * c.cfg.Window.Seconds()
	if out.Overloaded {
		c.stats.WakeStalls++
		capBytes := c.bt.Spec.BitsPerSecond / 8 * c.cfg.Window.Seconds()
		carried := bytesThisWindow
		if carried > capBytes {
			carried = capBytes
		}
		c.backlogBytes += bytesThisWindow - carried
		bytesThisWindow = carried
	} else if c.backlogBytes > 0 {
		bytesThisWindow += c.backlogBytes
		c.backlogBytes = 0
	}
	if out.Radio == c.wifi {
		c.stats.WiFiWindows++
	} else {
		c.stats.BTWindows++
	}
	if out.Radio.Ready() && bytesThisWindow > 0 {
		_, _ = out.Radio.Transmit(int(bytesThisWindow))
	}
	if c.cfg.Traffic != nil {
		// Live path: the meter is fed here (offline callers feed it via
		// AddBytes/their own loop).
		c.meter.Add(int(bytesThisWindow))
	}

	// Device power + thermal for this window, components gated on their
	// configured wattage.
	frameUtil := demandUtil(demandMbps, c.cfg.TargetFPS)
	c.gov.Step(c.cfg.Window, frameUtil)
	if c.cfg.GPUResidualW > 0 {
		c.acct.AddPower(energy.ComponentGPU, c.cfg.GPUResidualW, c.cfg.Window)
	}
	if c.cfg.CPUActiveW > 0 {
		c.acct.AddPower(energy.ComponentCPU,
			energy.CPUPower(c.cfg.CPUIdleW, c.cfg.CPUActiveW, frameUtil), c.cfg.Window)
	}
	if c.cfg.DisplayW > 0 {
		c.acct.AddPower(energy.ComponentDisplay, c.cfg.DisplayW, c.cfg.Window)
	}

	return WindowOutcome{
		Radio:        out.Radio,
		Overloaded:   out.Overloaded,
		QueueDelay:   out.QueueDelay,
		ForecastMbps: forecast,
	}
}

// demandUtil maps window demand into a coarse [0,1] device utilization
// for the power/thermal model: full utilization at the point the
// session saturates its target frame rate's traffic.
func demandUtil(demandMbps, targetFPS float64) float64 {
	// ~0.25 Mbps/fps is the modeled steady per-frame traffic at the
	// default stream size; the exact scale only shapes the modeled
	// curve, all A/B comparisons hold it fixed.
	full := targetFPS * 0.25
	if full <= 0 {
		return 0
	}
	u := demandMbps / full
	if u > 1 {
		u = 1
	}
	if u < 0 {
		u = 0
	}
	return u
}

// LoadForecast returns the predicted *additional* dispatch workload
// (record units) expected within the forecast horizon, for
// dispatch.Scheduler.SetForecast. Zero while the predicted load does
// not exceed the smoothed current load, so calm traffic leaves Eq. 4
// untouched.
func (c *Controller) LoadForecast() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.loadModel.Observations() < 8 {
		return 0
	}
	rHat := c.loadModel.Forecast(c.sw.Horizon()) - c.loadEWMA
	if rHat < 0 {
		return 0
	}
	c.stats.LoadForecast = rHat
	return rHat
}

// Finish folds the radios' integrated energy into the account (the
// per-window device power is already there) and freezes the
// controller. Idempotent.
func (c *Controller) Finish() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.finished {
		return
	}
	c.finished = true
	c.acct.AddEnergy(energy.ComponentWiFi, c.wifi.EnergyJoules())
	c.acct.AddEnergy(energy.ComponentBluetooth, c.bt.EnergyJoules())
}

// Account returns the controller's energy account.
func (c *Controller) Account() *energy.Account { return c.acct }

// Switch exposes the interface-switch controller (offline callers read
// its stats and active-radio state).
func (c *Controller) Switch() *ifswitch.Controller { return c.sw }

// Meter exposes the traffic meter for callers that feed it directly.
func (c *Controller) Meter() *netsim.Meter { return c.meter }

// Radios returns the WiFi and Bluetooth radio instances.
func (c *Controller) Radios() (wifi, bt *netsim.Radio) { return c.wifi, c.bt }

// Snapshot returns the control plane's stats: switch activity,
// exceedance forecast quality, and the energy/thermal state. Radio
// energy is included live (before Finish) without mutating the shared
// account.
func (c *Controller) Snapshot() metrics.PredictStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.EnergyCPUJ = c.acct.Component(energy.ComponentCPU)
	s.EnergyDisplayJ = c.acct.Component(energy.ComponentDisplay)
	s.EnergyGPUJ = c.acct.Component(energy.ComponentGPU)
	if c.finished {
		s.EnergyWiFiJ = c.acct.Component(energy.ComponentWiFi)
		s.EnergyBTJ = c.acct.Component(energy.ComponentBluetooth)
	} else {
		s.EnergyWiFiJ = c.wifi.EnergyJoules()
		s.EnergyBTJ = c.bt.EnergyJoules()
	}
	// Fixed summation order keeps snapshots bit-identical run to run
	// (the account's own total iterates a map).
	s.EnergyJoules = s.EnergyCPUJ + s.EnergyDisplayJ + s.EnergyGPUJ +
		s.EnergyWiFiJ + s.EnergyBTJ + c.acct.Component(energy.ComponentCodec)
	s.GPUTempC = c.gov.TemperatureC()
	s.ThermalScale = c.gov.Scale()
	s.Throttled = c.gov.EverThrottled()
	down, up := c.gov.Swaps()
	s.ThermalSwaps = int64(down + up)
	return s
}
