package predict

import (
	"fmt"

	"github.com/gbooster/gbooster/internal/ifswitch"
	"github.com/gbooster/gbooster/internal/sim"
)

// This file is the forecast-on/off A/B experiment the PR's BENCH gate
// runs: the same deterministic traffic trace is played through two
// controllers — PolicyPredictive (forecast on) and PolicyReactive
// (forecast off, wake only when demand already exceeds Bluetooth) — in
// virtual time, and the arms are compared on realized wake-latency
// stalls and modeled energy per delivered frame.

// ABPresets names the available A/B traffic presets. The names mirror
// the loadgen scenarios whose traffic shapes they reproduce at the
// control plane's 100 ms granularity: "spike" is synchronized bursts
// spaced far enough apart that WiFi re-associates each time (the
// worst-case wake latency), "flash-crowd" a front-loaded surge that
// decays into periodic bursts.
func ABPresets() []string { return []string{"spike", "flash-crowd"} }

// ABArm is one policy arm's outcome.
type ABArm struct {
	Policy          string
	Windows         int64
	WakeStalls      int64
	WakeUps         int64
	FramesDelivered float64
	EnergyJ         float64
	// EnergyPerFrameMJ is modeled millijoules per delivered frame — the
	// headline energy metric (delivered, not scheduled: stalled frames
	// don't count).
	EnergyPerFrameMJ float64
	ExceedFNRate     float64
	ExceedFPRate     float64
}

// ABResult compares the two arms over one preset and seed.
type ABResult struct {
	Preset string
	Seed   uint64
	On     ABArm // PolicyPredictive: ARMAX forecast pre-wakes WiFi
	Off    ABArm // PolicyReactive: wake only on realized overload
}

// StallReduction returns 1 − on/off stalls (1 = all stalls removed).
func (r ABResult) StallReduction() float64 {
	if r.Off.WakeStalls == 0 {
		return 0
	}
	return 1 - float64(r.On.WakeStalls)/float64(r.Off.WakeStalls)
}

// EnergyPerFrameReduction returns 1 − on/off energy per frame.
func (r ABResult) EnergyPerFrameReduction() float64 {
	if r.Off.EnergyPerFrameMJ == 0 {
		return 0
	}
	return 1 - r.On.EnergyPerFrameMJ/r.Off.EnergyPerFrameMJ
}

// abFramesPerWindow is the scheduled frame rate (60 fps at 100 ms
// windows).
const abFramesPerWindow = 6.0

// presetTraffic generates the preset's demand/exogenous trace at 100 ms
// granularity. Exogenous cues (touch bursts, texture surges) lead each
// demand spike by ~500 ms and stay elevated through it, which is the
// §V-B structure the ARMAX forecast exploits and reactive switching
// cannot.
func presetTraffic(preset string, seed uint64, n int) (series []float64, attrs [][]float64, err error) {
	rng := sim.NewRNG(seed ^ 0x9e3779b97f4a7c15)
	series = make([]float64, n)
	attrs = make([][]float64, n)

	// Burst schedule per preset. Heights are Mbps on top of the ~6 Mbps
	// baseline; Bluetooth capacity is 18 Mbps, switch threshold ~14.
	type burst struct{ at, lead, dur int }
	var bursts []burst
	switch preset {
	case "spike":
		// Synchronized bursts every ~8 s: WiFi sleeps and drifts past
		// its re-association deadline between them, so a reactive wake
		// pays the full 500 ms.
		for t := 100; t+40 < n; t += 75 + rng.Intn(15) {
			bursts = append(bursts, burst{at: t, lead: 6 + rng.Intn(2), dur: 8 + rng.Intn(5)})
		}
	case "flash-crowd":
		// Front-loaded: a dense opening volley, then the crowd thins.
		t := 80
		gap := 30
		for t+40 < n {
			bursts = append(bursts, burst{at: t, lead: 6 + rng.Intn(2), dur: 10 + rng.Intn(6)})
			t += gap + rng.Intn(10)
			if gap < 110 {
				gap += 12 // arrivals thin out
			}
		}
	default:
		return nil, nil, fmt.Errorf("predict: unknown A/B preset %q", preset)
	}

	spike := make([]float64, n)   // demand impulse
	touchUp := make([]float64, n) // exogenous cue
	texUp := make([]float64, n)
	for _, b := range bursts {
		// The cue starts `lead` windows before traffic and holds through
		// the burst.
		for k := -b.lead; k < b.dur; k++ {
			if t := b.at + k; t >= 0 && t < n {
				touchUp[t] += 10 + rng.Float64()*3
				texUp[t] += 18 + rng.Float64()*5
			}
		}
		for k := 0; k < b.dur; k++ {
			if t := b.at + k; t < n {
				spike[t] += 26 + rng.Float64()*6 // well above BT capacity
			}
		}
	}

	y := 6.0
	for t := 0; t < n; t++ {
		y = 0.5*y + 3 + rng.Norm(0, 0.8)
		demand := y + spike[t]
		if demand < 0 {
			demand = 0
		}
		series[t] = demand
		attrs[t] = []float64{
			rng.Exp(0.8) + touchUp[t],
			90 + rng.Norm(0, 10),
			20 + texUp[t] + rng.Norm(0, 1.5),
			rng.Norm(12, 4),
		}
	}
	return series, attrs, nil
}

// runArm plays the trace through one policy in virtual time.
func runArm(policy ifswitch.Policy, series []float64, attrs [][]float64) (ABArm, error) {
	clock := &sim.Clock{}
	swCfg := ifswitch.DefaultConfig()
	swCfg.Policy = policy
	ctl, err := New(Config{
		Clock:  clock,
		Switch: swCfg,
		// Whole-device power closes the energy-per-frame loop: display
		// and CPU dominate, radio activity differentiates the arms.
		CPUIdleW:   0.3,
		CPUActiveW: 1.8,
		DisplayW:   1.0,
		TargetFPS:  60,
	})
	if err != nil {
		return ABArm{}, err
	}
	window := ctl.Window()
	var delivered float64
	for t := range series {
		exo := []float64{attrs[t][0], attrs[t][2]} // touch, textures
		out := ctl.Step(series[t], exo)
		f := abFramesPerWindow
		if out.Overloaded && out.QueueDelay > 0 {
			// Frames queue behind the slow interface for the stall's
			// duration: the window delivers only its share.
			f = abFramesPerWindow * float64(window) / float64(window+out.QueueDelay)
		}
		delivered += f
		clock.Advance(window)
	}
	ctl.Finish()
	snap := ctl.Snapshot()
	arm := ABArm{
		Policy:          policy.String(),
		Windows:         snap.Windows,
		WakeStalls:      snap.WakeStalls,
		WakeUps:         snap.WakeUps,
		FramesDelivered: delivered,
		EnergyJ:         snap.EnergyJoules,
		ExceedFNRate:    snap.ExceedanceFNRate(),
		ExceedFPRate:    snap.ExceedanceFPRate(),
	}
	if delivered > 0 {
		arm.EnergyPerFrameMJ = snap.EnergyJoules / delivered * 1000
	}
	return arm, nil
}

// RunAB runs the forecast-on/off experiment over one preset: identical
// traffic, identical seed, PolicyPredictive vs PolicyReactive.
// windows is the trace length (0 = 3000 windows = 5 simulated
// minutes).
func RunAB(preset string, seed uint64, windows int) (ABResult, error) {
	if windows <= 0 {
		windows = 3000
	}
	series, attrs, err := presetTraffic(preset, seed, windows)
	if err != nil {
		return ABResult{}, err
	}
	on, err := runArm(ifswitch.PolicyPredictive, series, attrs)
	if err != nil {
		return ABResult{}, err
	}
	off, err := runArm(ifswitch.PolicyReactive, series, attrs)
	if err != nil {
		return ABResult{}, err
	}
	return ABResult{Preset: preset, Seed: seed, On: on, Off: off}, nil
}

// String renders the comparison for logs.
func (r ABResult) String() string {
	return fmt.Sprintf(
		"preset=%s seed=%d: stalls on/off %d/%d (-%.0f%%), energy/frame on/off %.2f/%.2f mJ (-%.1f%%), wakeups on/off %d/%d",
		r.Preset, r.Seed,
		r.On.WakeStalls, r.Off.WakeStalls, r.StallReduction()*100,
		r.On.EnergyPerFrameMJ, r.Off.EnergyPerFrameMJ, r.EnergyPerFrameReduction()*100,
		r.On.WakeUps, r.Off.WakeUps)
}
