package predict

import "github.com/gbooster/gbooster/internal/sim"

// AttrNames are the §V-B candidate exogenous attributes, in the
// paper's numbering: 1 touchstroke frequency, 2 command-sequence
// length, 3 texture count, 4 inter-frame command difference.
var AttrNames = []string{"touch", "cmdlen", "textures", "cmddiff"}

// SyntheticTraffic builds a gameplay-traffic trace at the switching
// controller's 100 ms granularity. Demand has two spike populations:
// ramped spikes that historic traffic alone can anticipate, and abrupt
// touch-driven spikes only the exogenous inputs reveal — the §V-B
// structure behind ARMA's high false-negative rate. It is shared by
// the offline forecasting study (internal/experiments) and the A/B
// harness here, so both score the same traffic model.
//
// series[t] is demand in Mbps; attrs[t] the four-attribute exogenous
// vector observed at t. The exogenous cues lead demand by ~500 ms (the
// game loads assets / changes scene before the stream swells).
func SyntheticTraffic(seed uint64, n int) (series []float64, attrs [][]float64) {
	rng := sim.NewRNG(seed)
	series = make([]float64, n)
	attrs = make([][]float64, n)
	y := 8.0
	pending := make([]float64, n+16)
	var burstLeft, texLeft, rampLeft int
	var ramp float64
	scheduleSpike := func(t int, height float64) {
		lag := 4 + rng.Intn(3) // 400-600 ms
		for k := 0; k < 4+rng.Intn(4); k++ {
			if t+lag+k < len(pending) {
				pending[t+lag+k] += height * (1 + rng.Norm(0, 0.1))
			}
		}
	}
	for t := 0; t < n; t++ {
		touch := rng.Exp(0.8)
		texSurge := 0.0
		if burstLeft == 0 && texLeft == 0 && rampLeft == 0 {
			switch {
			case rng.Bool(0.010): // touch burst; traffic follows ~500 ms later
				burstLeft = 3 + rng.Intn(4)
				if rng.Bool(0.9) { // a few bursts are false cues
					scheduleSpike(t, 11+rng.Float64()*4)
				}
			case rng.Bool(0.008): // texture surge (scene streaming)
				texLeft = 3 + rng.Intn(4)
				if rng.Bool(0.9) {
					scheduleSpike(t, 9+rng.Float64()*4)
				}
			case rng.Bool(0.010): // ramped spike: history alone reveals it
				rampLeft = 12
				ramp = 0
			}
		}
		if burstLeft > 0 {
			burstLeft--
			touch += 9 + rng.Float64()*3
		}
		if texLeft > 0 {
			texLeft--
			texSurge = 16 + rng.Float64()*6
		}
		if rampLeft > 0 {
			rampLeft--
			ramp += 1.3
		} else {
			ramp *= 0.6
		}
		textures := 20 + texSurge + rng.Norm(0, 1.5)
		y = 0.45*y + 4 + pending[t] + ramp + rng.Norm(0, 1.2)
		series[t] = y
		attrs[t] = []float64{
			touch,
			90 + 0.8*textures + rng.Norm(0, 12), // cmdlen: loose, noisy echo of the scene
			textures,
			rng.Norm(12, 4), // cmddiff: mostly noise at this granularity
		}
	}
	return series, attrs
}
