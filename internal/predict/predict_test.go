package predict

import (
	"testing"
	"time"

	"github.com/gbooster/gbooster/internal/ifswitch"
	"github.com/gbooster/gbooster/internal/sim"
	"github.com/gbooster/gbooster/internal/workload"
)

func newTestController(t *testing.T, clock *sim.Clock) *Controller {
	t.Helper()
	c, err := New(Config{Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestWallClockMonotonic(t *testing.T) {
	c := NewWallClock()
	a := c.Now()
	time.Sleep(2 * time.Millisecond)
	b := c.Now()
	if b <= a {
		t.Fatalf("wall clock not monotonic: %v then %v", a, b)
	}
}

// The default config runs on the wall clock without a sim.Clock.
func TestNewDefaultsToWallClock(t *testing.T) {
	c, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	c.ObserveFrame(workload.Features{TouchEvents: 2, Textures: 8, Commands: 100})
	out := c.Step(5, nil)
	if out.Radio == nil {
		t.Fatal("no radio routed")
	}
	snap := c.Snapshot()
	if snap.Windows != 1 || snap.Frames != 1 {
		t.Fatalf("snapshot windows=%d frames=%d, want 1/1", snap.Windows, snap.Frames)
	}
}

// Calm demand routes over Bluetooth; a sustained spike with leading
// exogenous cues pre-wakes WiFi and routes over it without a stall.
func TestControllerPreWake(t *testing.T) {
	clock := &sim.Clock{}
	c := newTestController(t, clock)
	window := c.Window()

	step := func(demand, touch, tex float64) WindowOutcome {
		out := c.Step(demand, []float64{touch, tex})
		clock.Advance(window)
		return out
	}

	// Learning phase: periodic cued spikes (cue leads by 6 windows).
	for cycle := 0; cycle < 40; cycle++ {
		for w := 0; w < 60; w++ {
			demand, touch, tex := 6.0, 1.0, 20.0
			if w >= 24 && w < 40 {
				touch, tex = 11, 38 // cue ahead of the spike
			}
			if w >= 30 && w < 40 {
				demand = 30 // spike
			}
			step(demand, touch, tex)
		}
	}
	snap := c.Snapshot()
	if snap.WiFiWindows == 0 || snap.BTWindows == 0 {
		t.Fatalf("expected traffic on both radios: wifi=%d bt=%d", snap.WiFiWindows, snap.BTWindows)
	}
	// A trained controller must hide nearly all wake latency: far fewer
	// stall windows than spike windows (400 spike onsets here).
	if snap.WakeStalls > 40 {
		t.Fatalf("wake stalls %d — forecast not hiding wake latency", snap.WakeStalls)
	}
	if snap.WakeUps == 0 || snap.Sleeps == 0 {
		t.Fatalf("radio never cycled: wakeups=%d sleeps=%d", snap.WakeUps, snap.Sleeps)
	}
	if snap.TPExceed == 0 {
		t.Fatal("no true-positive exceedance predictions scored")
	}
	if snap.EnergyJoules <= 0 {
		t.Fatalf("energy %v, want > 0", snap.EnergyJoules)
	}
}

// The live Tick path: traffic differencing + frame accumulators.
func TestTickTrafficDifferencing(t *testing.T) {
	clock := &sim.Clock{}
	var traffic int64
	c, err := New(Config{Clock: clock, Traffic: func() int64 { return traffic }})
	if err != nil {
		t.Fatal(err)
	}
	// First tick establishes the baseline.
	c.Tick()
	clock.Advance(c.Window())
	traffic += 125_000 // 1 Mb in 100 ms → 10 Mbps
	c.ObserveFrame(workload.Features{TouchEvents: 1, Textures: 5, Commands: 40})
	c.Tick()
	snap := c.Snapshot()
	if snap.DemandMbps < 9 || snap.DemandMbps > 11 {
		t.Fatalf("demand %v Mbps, want ~10", snap.DemandMbps)
	}
}

// LoadForecast rises when the load model sees a cued burst pattern and
// stays zero on calm traffic.
func TestLoadForecastAnticipation(t *testing.T) {
	clock := &sim.Clock{}
	c := newTestController(t, clock)
	feed := func(commands, touch, tex int) {
		for f := 0; f < 6; f++ {
			c.ObserveFrame(workload.Features{Commands: commands / 6, TouchEvents: touch, Textures: tex})
		}
		c.Step(6, nil) // drains accumulators into the load model
		clock.Advance(c.Window())
	}
	// Cycles where elevated touch/texture input leads a record burst.
	for cycle := 0; cycle < 60; cycle++ {
		for w := 0; w < 20; w++ {
			switch {
			case w >= 12 && w < 15:
				feed(120, 12, 40) // cue
			case w >= 15 && w < 18:
				feed(900, 12, 40) // burst
			default:
				feed(120, 1, 20)
			}
		}
	}
	// Replay to the cue point and read the forecast there.
	for w := 0; w < 14; w++ {
		if w >= 12 {
			feed(120, 12, 40)
		} else {
			feed(120, 1, 20)
		}
	}
	atCue := c.LoadForecast()
	if atCue <= 0 {
		t.Fatalf("LoadForecast at cue = %v, want > 0 (burst predicted)", atCue)
	}
}

// Backlog: overloaded windows defer excess bytes; they drain once a
// radio is usable again, and delivered byte accounting stays sane.
func TestBacklogDrains(t *testing.T) {
	clock := &sim.Clock{}
	swCfg := ifswitch.DefaultConfig()
	swCfg.Policy = ifswitch.PolicyReactive
	c, err := New(Config{Clock: clock, Switch: swCfg})
	if err != nil {
		t.Fatal(err)
	}
	// Overload from a cold start: WiFi off, demand above BT capacity.
	out := c.Step(40, []float64{0, 0})
	clock.Advance(c.Window())
	if !out.Overloaded {
		t.Fatal("expected overload on cold spike")
	}
	if c.backlogBytes <= 0 {
		t.Fatal("no backlog accumulated during overload")
	}
	// Let WiFi wake, then a calm window drains the backlog.
	for i := 0; i < 10; i++ {
		c.Step(40, []float64{0, 0})
		clock.Advance(c.Window())
	}
	c.Step(2, []float64{0, 0})
	if c.backlogBytes != 0 {
		t.Fatalf("backlog %v bytes not drained", c.backlogBytes)
	}
}

func TestFinishIdempotent(t *testing.T) {
	clock := &sim.Clock{}
	c := newTestController(t, clock)
	c.Step(5, nil)
	clock.Advance(c.Window())
	c.Finish()
	first := c.Snapshot().EnergyJoules
	c.Finish()
	if again := c.Snapshot().EnergyJoules; again != first {
		t.Fatalf("second Finish changed energy %v -> %v", first, again)
	}
}

// Concurrent ObserveFrame / Tick / Snapshot / LoadForecast must be
// race-free (the live player drives them from three goroutines).
func TestConcurrentAccess(t *testing.T) {
	var traffic int64
	c, err := New(Config{Traffic: func() int64 { return traffic }})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		for i := 0; i < 500; i++ {
			c.ObserveFrame(workload.Features{Commands: 10, TouchEvents: 1, Textures: 4})
		}
		done <- struct{}{}
	}()
	go func() {
		for i := 0; i < 200; i++ {
			c.Tick()
			_ = c.LoadForecast()
		}
		done <- struct{}{}
	}()
	go func() {
		for i := 0; i < 200; i++ {
			_ = c.Snapshot()
		}
		done <- struct{}{}
	}()
	for i := 0; i < 3; i++ {
		<-done
	}
	c.Finish()
}
