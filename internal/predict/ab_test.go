package predict

import (
	"fmt"
	"testing"
)

// TestABGate pins the PR's acceptance criterion: under the spike and
// flash-crowd presets, same seed, the forecast-on arm has fewer
// wake-latency stalls AND lower modeled energy per frame than the
// forecast-off arm. BENCH_predict.json records the same comparison;
// this test is the gate asserting it.
func TestABGate(t *testing.T) {
	for _, preset := range ABPresets() {
		for seed := uint64(1); seed <= 3; seed++ {
			r, err := RunAB(preset, seed, 3000)
			if err != nil {
				t.Fatal(err)
			}
			t.Log(r.String())
			if r.Off.WakeStalls == 0 {
				t.Fatalf("%s seed %d: reactive arm saw no stalls — trace generates no bursts?", preset, seed)
			}
			if r.On.WakeStalls >= r.Off.WakeStalls {
				t.Errorf("%s seed %d: stalls on=%d >= off=%d (forecast must prevent wake-latency stalls)",
					preset, seed, r.On.WakeStalls, r.Off.WakeStalls)
			}
			if r.StallReduction() < 0.5 {
				t.Errorf("%s seed %d: stall reduction %.0f%% < 50%%", preset, seed, r.StallReduction()*100)
			}
			if r.On.EnergyPerFrameMJ >= r.Off.EnergyPerFrameMJ {
				t.Errorf("%s seed %d: energy/frame on=%.3f >= off=%.3f mJ",
					preset, seed, r.On.EnergyPerFrameMJ, r.Off.EnergyPerFrameMJ)
			}
		}
	}
}

// TestABDeterminism: same preset + seed gives identical results.
func TestABDeterminism(t *testing.T) {
	a, err := RunAB("spike", 42, 1500)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunAB("spike", 42, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("A/B not deterministic:\n%+v\n%+v", a, b)
	}
}

func TestABUnknownPreset(t *testing.T) {
	if _, err := RunAB("nope", 1, 100); err == nil {
		t.Fatal("unknown preset did not error")
	}
}

// BenchmarkPredictAB emits the predict family parsed by
// scripts/benchjson into BENCH_predict.json: one sub-benchmark per
// preset × forecast arm, with stalls, energy per frame, and wakeups as
// custom metrics.
func BenchmarkPredictAB(b *testing.B) {
	for _, preset := range ABPresets() {
		r, err := RunAB(preset, 1, 3000)
		if err != nil {
			b.Fatal(err)
		}
		arms := []struct {
			name string
			arm  ABArm
		}{
			{"on", r.On},
			{"off", r.Off},
		}
		for _, a := range arms {
			b.Run(fmt.Sprintf("preset=%s/forecast=%s", preset, a.name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					// The comparison is precomputed; the loop body just
					// satisfies the benchmark contract cheaply.
				}
				b.ReportMetric(float64(a.arm.WakeStalls), "stalls")
				b.ReportMetric(a.arm.EnergyPerFrameMJ, "mJ/frame")
				b.ReportMetric(float64(a.arm.WakeUps), "wakeups")
				b.ReportMetric(a.arm.ExceedFNRate*100, "fn%")
			})
		}
	}
}
