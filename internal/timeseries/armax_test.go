package timeseries

import (
	"errors"
	"math"
	"testing"

	"github.com/gbooster/gbooster/internal/sim"
)

func TestNewModelValidation(t *testing.T) {
	tests := []struct {
		p, q, b, k int
		ok         bool
	}{
		{2, 1, 0, 0, true},
		{1, 0, 0, 0, true},
		{0, 0, 0, 0, false}, // no parameters
		{-1, 0, 0, 0, false},
		{2, 1, 2, 3, true},
		{2, 1, 2, 0, false}, // exo lags without dimension
		{2, 1, 0, 3, false}, // dimension without lags
	}
	for _, tt := range tests {
		_, err := NewARMAX(tt.p, tt.q, tt.b, tt.k)
		if (err == nil) != tt.ok {
			t.Errorf("NewARMAX(%d,%d,%d,%d) err=%v, want ok=%v", tt.p, tt.q, tt.b, tt.k, err, tt.ok)
		}
		if err != nil && !errors.Is(err, ErrBadOrder) {
			t.Errorf("error type = %v", err)
		}
	}
}

func TestSetForgetting(t *testing.T) {
	m, err := NewARMA(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetForgetting(0.95); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []float64{0, -1, 1.5} {
		if err := m.SetForgetting(bad); !errors.Is(err, ErrBadOrder) {
			t.Errorf("SetForgetting(%v) err = %v", bad, err)
		}
	}
}

func TestARLearnsAR1Process(t *testing.T) {
	// y_t = 0.8 y_{t-1} + ε: the RLS estimate of φ must converge.
	m, err := NewARMA(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(5)
	y := 0.0
	for i := 0; i < 3000; i++ {
		y = 0.8*y + rng.Norm(0, 0.3)
		if err := m.Observe(y, nil); err != nil {
			t.Fatal(err)
		}
	}
	phi, _, _ := m.Params()
	if math.Abs(phi[0]-0.8) > 0.1 {
		t.Fatalf("estimated phi = %v, want ~0.8", phi[0])
	}
}

func TestForecastTracksDecay(t *testing.T) {
	// For an AR(1) with phi≈0.8, the h-step forecast from an elevated
	// level decays geometrically toward the mean. The elevated levels
	// appear in-distribution (occasional sustained excursions) so the
	// online estimator is not perturbed at check time.
	m, err := NewARMA(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(6)
	y := 0.0
	for i := 0; i < 5000; i++ {
		y = 0.8*y + rng.Norm(0, 1)
		if err := m.Observe(y, nil); err != nil {
			t.Fatal(err)
		}
	}
	// Walk the level up within the process dynamics.
	level := y
	for level < 6 {
		level = 0.8*level + 2
		if err := m.Observe(level, nil); err != nil {
			t.Fatal(err)
		}
	}
	f1, f3 := m.Forecast(1), m.Forecast(3)
	if f1 < 0.5*level || f1 > 1.3*level {
		t.Fatalf("1-step forecast from level %.1f = %v", level, f1)
	}
	if f3 >= f1 {
		t.Fatalf("forecast should decay toward mean: f1=%v f3=%v", f1, f3)
	}
	if m.Forecast(0) != m.Forecast(1) {
		t.Fatal("h<1 should clamp to 1")
	}
}

func TestARMAXUsesExogenousInput(t *testing.T) {
	// y_t = 0.3 y_{t-1} + 2 d_{t-1} + noise: ARMAX should fit η≈2 and
	// forecast spikes that follow the input, which plain ARMA cannot.
	rng := sim.NewRNG(7)
	const n = 4000
	series := make([]float64, n)
	exo := make([][]float64, n)
	d := 0.0
	y := 0.0
	for ti := 0; ti < n; ti++ {
		// y_t depends on the input observed one step earlier (Eq. 3
		// uses strictly lagged exogenous terms d_{t-i}).
		yNext := 0.3*y + 2*d + rng.Norm(0, 0.1)
		series[ti] = yNext
		dNext := 0.0
		if rng.Bool(0.05) {
			dNext = 5 // burst
		}
		exo[ti] = []float64{dNext} // observed at t, drives y_{t+1}
		y, d = yNext, dNext
	}
	m, err := NewARMAX(1, 0, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	for ti := 0; ti < n; ti++ {
		if err := m.Observe(series[ti], exo[ti]); err != nil {
			t.Fatal(err)
		}
	}
	_, _, eta := m.Params()
	if len(eta) != 1 || math.Abs(eta[0]-2) > 0.4 {
		t.Fatalf("estimated eta = %v, want ~2", eta)
	}
}

func TestObserveExoDimensionMismatch(t *testing.T) {
	m, err := NewARMAX(1, 0, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Observe(1, []float64{1}); !errors.Is(err, ErrExoDim) {
		t.Fatalf("dim mismatch error = %v", err)
	}
}

func TestAICPrefersTrueModel(t *testing.T) {
	// Generate ARX data; ARMAX including the exogenous input must have
	// lower AIC than plain ARMA of the same order.
	rng := sim.NewRNG(9)
	const n = 3000
	series := make([]float64, n)
	exo := make([][]float64, n)
	y, d := 0.0, 0.0
	for ti := 0; ti < n; ti++ {
		y = 0.5*y + 3*d + rng.Norm(0, 0.5)
		series[ti] = y
		d = 0
		if rng.Bool(0.1) {
			d = 4
		}
		exo[ti] = []float64{d} // drives y_{t+1}: strictly lagged
	}
	arma, err := NewARMA(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	armax, err := NewARMAX(2, 1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	for ti := 0; ti < n; ti++ {
		if err := arma.Observe(series[ti], nil); err != nil {
			t.Fatal(err)
		}
		if err := armax.Observe(series[ti], exo[ti]); err != nil {
			t.Fatal(err)
		}
	}
	if armax.AIC() >= arma.AIC() {
		t.Fatalf("AIC: armax %.1f >= arma %.1f; exogenous input should win", armax.AIC(), arma.AIC())
	}
}

func TestAICInfUntilBurnIn(t *testing.T) {
	m, err := NewARMA(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(m.AIC(), 1) {
		t.Fatal("AIC should be +Inf before burn-in")
	}
}

func TestExceedanceStatsRates(t *testing.T) {
	s := ExceedanceStats{TruePositives: 6, FalseNegatives: 4, FalsePositives: 3, TrueNegatives: 7}
	if got := s.FNRate(); math.Abs(got-0.4) > 1e-9 {
		t.Fatalf("FNRate = %v", got)
	}
	if got := s.FPRate(); math.Abs(got-0.3) > 1e-9 {
		t.Fatalf("FPRate = %v", got)
	}
	var empty ExceedanceStats
	if empty.FNRate() != 0 || empty.FPRate() != 0 {
		t.Fatal("empty stats should rate 0")
	}
	if s.String() == "" {
		t.Fatal("String empty")
	}
}

// burstTraffic synthesizes traffic whose spikes are driven by an
// observable exogenous burst signal — the structure §V-B ascribes to
// game traffic (touch bursts cause scene changes cause traffic).
func burstTraffic(seed uint64, n int) (series []float64, exo [][]float64) {
	rng := sim.NewRNG(seed)
	series = make([]float64, n)
	exo = make([][]float64, n)
	y := 3.0
	burst, prevBurst := 0.0, 0.0
	for ti := 0; ti < n; ti++ {
		burst = 0
		if rng.Bool(0.05) {
			burst = 10 + rng.Float64()*4
		}
		// Traffic follows the burst signal with one step of lag (a
		// touch burst changes the next frames' scenes). Spikes are
		// short-lived, so exceedances are mostly onsets — exactly the
		// case where historic traffic alone (ARMA) is blind.
		y = 0.25*y + 2 + 2*prevBurst + rng.Norm(0, 0.8)
		series[ti] = y
		exo[ti] = []float64{burst}
		prevBurst = burst
	}
	return series, exo
}

func TestARMAXBeatsARMAOnFNRate(t *testing.T) {
	// The paper's headline §V-B result: ARMAX's FN rate is much lower
	// than ARMA's on burst-driven traffic (35.1% -> 17%).
	series, exo := burstTraffic(11, 6000)
	const threshold = 15 // exceeded mainly during bursts
	const h, burn = 1, 500

	arma, err := NewARMA(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	armaStats, err := EvaluateExceedance(arma, series, nil, threshold, h, burn)
	if err != nil {
		t.Fatal(err)
	}
	armax, err := NewARMAX(3, 2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	armaxStats, err := EvaluateExceedance(armax, series, exo, threshold, h, burn)
	if err != nil {
		t.Fatal(err)
	}
	if armaxStats.FNRate() >= armaStats.FNRate() {
		t.Fatalf("ARMAX FN %.1f%% not better than ARMA FN %.1f%%",
			armaxStats.FNRate()*100, armaStats.FNRate()*100)
	}
	if armaStats.FNRate() < 0.05 {
		t.Fatalf("ARMA FN %.1f%% suspiciously low; workload too easy", armaStats.FNRate()*100)
	}
}

func TestMSFEARMAXLower(t *testing.T) {
	series, exo := burstTraffic(13, 4000)
	arma, err := NewARMA(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	armaMSFE, err := MSFE(arma, series, nil, 1, 300)
	if err != nil {
		t.Fatal(err)
	}
	armax, err := NewARMAX(2, 1, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	armaxMSFE, err := MSFE(armax, series, exo, 1, 300)
	if err != nil {
		t.Fatal(err)
	}
	if armaxMSFE >= armaMSFE {
		t.Fatalf("MSFE: armax %.2f >= arma %.2f", armaxMSFE, armaMSFE)
	}
}

func TestSelectExogenousPicksInformativeAttributes(t *testing.T) {
	// Attribute 0 drives the series; attribute 1 is noise. The AIC
	// ranking must place a subset containing attribute 0 first.
	rng := sim.NewRNG(17)
	const n = 3000
	series := make([]float64, n)
	attrs := make([][]float64, n)
	y, d := 0.0, 0.0
	for ti := 0; ti < n; ti++ {
		y = 0.5*y + 2*d + rng.Norm(0, 0.5)
		series[ti] = y
		d = 0
		if rng.Bool(0.08) {
			d = 3
		}
		attrs[ti] = []float64{d, rng.Norm(0, 1)} // d drives y_{t+1}
	}
	results, err := SelectExogenous(series, attrs, []string{"touch", "noise"}, 2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("got %d candidates, want 4 subsets", len(results))
	}
	best := results[0]
	hasAttr0 := false
	for _, a := range best.ExoAttrs {
		if a == 0 {
			hasAttr0 = true
		}
	}
	if !hasAttr0 {
		t.Fatalf("best model %q does not include the informative attribute; ranking: %v", best.Name, results)
	}
	for i := 1; i < len(results); i++ {
		if results[i].AIC < results[i-1].AIC {
			t.Fatal("results not sorted by AIC")
		}
	}
}

func TestSelectExogenousDimensionMismatch(t *testing.T) {
	_, err := SelectExogenous([]float64{1, 2}, [][]float64{{1}}, []string{"a"}, 1, 0, 1)
	if !errors.Is(err, ErrExoDim) {
		t.Fatalf("mismatch error = %v", err)
	}
}

func TestMSFEEmptyWindow(t *testing.T) {
	m, err := NewARMA(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	v, err := MSFE(m, []float64{1, 2}, nil, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(v, 1) {
		t.Fatalf("MSFE with no scored points = %v, want +Inf", v)
	}
}

func TestEvaluateExceedanceWindowSemantics(t *testing.T) {
	// Hand-verifiable case: the series crosses the threshold exactly
	// once; after the model has converged, the windowed evaluation must
	// catch the spike's continuation windows (history-driven) while the
	// onset windows preceding any signal count as FN.
	m, err := NewARMA(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	series := make([]float64, 400)
	for i := range series {
		series[i] = 5
		if i >= 300 && i < 320 {
			series[i] = 30 // long spike: continuations are predictable
		}
	}
	stats, err := EvaluateExceedanceWindow(m, series, nil, 20, 3, 100)
	if err != nil {
		t.Fatal(err)
	}
	if stats.TruePositives == 0 {
		t.Fatalf("no true positives on a 20-sample spike: %+v", stats)
	}
	if stats.FalseNegatives == 0 {
		t.Fatalf("onset windows should be unpredictable for ARMA: %+v", stats)
	}
	if stats.TrueNegatives < 200 {
		t.Fatalf("quiet periods misclassified: %+v", stats)
	}
}

func TestEvaluateExceedanceWindowErrorPath(t *testing.T) {
	m, err := NewARMAX(1, 0, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	_, err = EvaluateExceedanceWindow(m, []float64{1, 2, 3}, [][]float64{{1}, {1}, {1}}, 10, 1, 0)
	if !errors.Is(err, ErrExoDim) {
		t.Fatalf("dim error = %v", err)
	}
}
