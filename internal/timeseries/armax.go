// Package timeseries implements the traffic forecasting layer of
// GBooster's interface-switching mechanism (paper §V-B): ARMA(p,q) and
// ARMAX(p,q,b) models estimated online with recursive extended least
// squares (a sliding-window adaptive scheme in the spirit of the
// paper's reference [30]), h-step-ahead forecasting, Akaike Information
// Criterion model comparison, and the FP/FN threshold-exceedance
// evaluation the paper uses to compare ARMA against ARMAX.
package timeseries

import (
	"errors"
	"fmt"
	"math"
)

// Model errors.
var (
	ErrBadOrder = errors.New("timeseries: invalid model order")
	ErrExoDim   = errors.New("timeseries: exogenous vector dimension mismatch")
)

// Model is an ARMAX(p,q,b) model over a scalar series y_t with an
// optional k-dimensional exogenous input d_t:
//
//	y_t = ε_t + Σφ_i·y_{t−i} + Σθ_i·ε_{t−i} + Σ_{i=1..b} η_i·d_{t−i}
//
// Parameters are estimated online by recursive extended least squares
// with exponential forgetting, so the model tracks non-stationary
// gameplay traffic. The zero value is unusable; construct with NewARMA
// or NewARMAX.
type Model struct {
	p, q, b, k int // orders and exogenous dimension

	// theta stacks the parameters: intercept | phi | theta | eta (b*k).
	// The intercept is not in the paper's Eq. 2/3 but is required for
	// traffic with a nonzero mean; it does not change model structure.
	theta []float64
	cov   [][]float64 // RLS covariance
	gain  []float64   // scratch

	lambda   float64 // forgetting factor
	maxTrace float64 // covariance windup guard (constant-trace method)

	yHist []float64   // y_{t-1} ... most recent first
	eHist []float64   // residuals, most recent first
	xHist [][]float64 // exogenous vectors, most recent first

	n   int     // observations consumed
	rss float64 // forgetting-weighted residual sum of squares

	// lastY is the most recent (sanitized) observation; it backs the
	// last-value fallback Forecast degrades to whenever the recursive
	// estimate is unusable (short history, constant series, collinear
	// exogenous inputs driving the update singular, non-finite inputs).
	lastY float64
}

// NewARMA constructs an ARMA(p,q) model.
func NewARMA(p, q int) (*Model, error) { return NewARMAX(p, q, 0, 0) }

// NewARMAX constructs an ARMAX(p,q,b) model whose exogenous input has
// dimension k per time step (b lags of it enter the regression).
func NewARMAX(p, q, b, k int) (*Model, error) {
	if p < 0 || q < 0 || b < 0 || k < 0 || (b > 0 && k == 0) || (b == 0 && k > 0) {
		return nil, fmt.Errorf("%w: p=%d q=%d b=%d k=%d", ErrBadOrder, p, q, b, k)
	}
	if p+q+b*k == 0 {
		return nil, fmt.Errorf("%w: model has no parameters", ErrBadOrder)
	}
	dim := 1 + p + q + b*k // +1 intercept
	m := &Model{
		p: p, q: q, b: b, k: k,
		theta:    make([]float64, dim),
		gain:     make([]float64, dim),
		lambda:   0.995,
		maxTrace: float64(dim) * 1e4,
		yHist:    make([]float64, p),
		eHist:    make([]float64, q),
		xHist:    make([][]float64, b),
	}
	for i := range m.xHist {
		m.xHist[i] = make([]float64, k)
	}
	m.cov = make([][]float64, dim)
	for i := range m.cov {
		m.cov[i] = make([]float64, dim)
		m.cov[i][i] = 1000 // diffuse prior
	}
	return m, nil
}

// SetForgetting overrides the exponential forgetting factor
// (0 < λ ≤ 1; smaller adapts faster, 1 never forgets).
func (m *Model) SetForgetting(lambda float64) error {
	if lambda <= 0 || lambda > 1 {
		return fmt.Errorf("%w: lambda %v", ErrBadOrder, lambda)
	}
	m.lambda = lambda
	return nil
}

// Params returns copies of the current parameter estimates (the
// intercept is excluded; see Intercept).
func (m *Model) Params() (phi, theta []float64, eta []float64) {
	phi = append([]float64(nil), m.theta[1:1+m.p]...)
	theta = append([]float64(nil), m.theta[1+m.p:1+m.p+m.q]...)
	eta = append([]float64(nil), m.theta[1+m.p+m.q:]...)
	return phi, theta, eta
}

// Intercept returns the estimated constant term.
func (m *Model) Intercept() float64 { return m.theta[0] }

// NumParams reports the parameter count (for AIC).
func (m *Model) NumParams() int { return len(m.theta) }

// Observations reports how many samples the model has consumed.
func (m *Model) Observations() int { return m.n }

// regressor builds the current regression vector from history.
func (m *Model) regressor() []float64 {
	x := make([]float64, 0, len(m.theta))
	x = append(x, 1) // intercept
	x = append(x, m.yHist...)
	x = append(x, m.eHist...)
	for _, d := range m.xHist {
		x = append(x, d...)
	}
	return x
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Observe consumes one sample: the realized value y at time t and the
// exogenous vector d_t observed alongside it (nil for pure ARMA). The
// model first scores its one-step prediction, then updates parameters
// and history.
func (m *Model) Observe(y float64, exo []float64) error {
	if m.b > 0 && len(exo) != m.k {
		return fmt.Errorf("%w: got %d, want %d", ErrExoDim, len(exo), m.k)
	}
	// Sanitize inputs: a NaN/Inf sample (a meter glitch, a division by a
	// zero window) must not poison the recursion. The sample is replaced
	// by the last good value so the history stays usable.
	if !isFinite(y) {
		y = m.lastY
	}
	if m.b > 0 {
		for _, v := range exo {
			if !isFinite(v) {
				exo = sanitize(exo)
				break
			}
		}
	}
	x := m.regressor()
	pred := dot(x, m.theta)
	resid := y - pred

	// RLS update: K = P·x / (λ + xᵀP·x); θ += K·resid; P = (P−K·xᵀP)/λ.
	// The update is applied only when the innovation denominator is
	// comfortably positive and the resulting parameters stay finite;
	// otherwise (collinear exogenous columns breaking positive-
	// definiteness, numerical blow-up) the parameter step is skipped and
	// only the histories advance — the model degrades instead of
	// diverging.
	dim := len(m.theta)
	px := make([]float64, dim)
	for i := 0; i < dim; i++ {
		px[i] = dot(m.cov[i], x)
	}
	den := m.lambda + dot(x, px)
	if isFinite(den) && den > 1e-12 && isFinite(resid) {
		for i := 0; i < dim; i++ {
			m.gain[i] = px[i] / den
		}
		stable := true
		for i := 0; i < dim; i++ {
			if !isFinite(m.theta[i] + m.gain[i]*resid) {
				stable = false
				break
			}
		}
		if stable {
			for i := 0; i < dim; i++ {
				m.theta[i] += m.gain[i] * resid
			}
			// xP row vector equals px (covariance symmetric).
			for i := 0; i < dim; i++ {
				for j := 0; j < dim; j++ {
					m.cov[i][j] = (m.cov[i][j] - m.gain[i]*px[j]) / m.lambda
				}
			}
			// Constant-trace windup guard: during stretches with little
			// excitation (e.g. zero touch input), 1/λ inflates P without bound;
			// the next burst would then cause a destabilizing parameter jump.
			// Rescaling preserves positive-definiteness while bounding gain.
			var trace float64
			for i := 0; i < dim; i++ {
				trace += m.cov[i][i]
			}
			if trace > m.maxTrace {
				scale := m.maxTrace / trace
				for i := 0; i < dim; i++ {
					for j := 0; j < dim; j++ {
						m.cov[i][j] *= scale
					}
				}
			}
		}
	}

	if isFinite(resid) {
		m.rss = m.lambda*m.rss + resid*resid
	}
	m.n++
	m.lastY = y
	shiftIn(m.yHist, y)
	shiftIn(m.eHist, resid)
	if m.b > 0 {
		d := append([]float64(nil), exo...)
		copy(m.xHist[1:], m.xHist[:len(m.xHist)-1])
		if len(m.xHist) > 0 {
			m.xHist[0] = d
		}
	}
	return nil
}

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// sanitize replaces non-finite entries with zero, on a copy.
func sanitize(v []float64) []float64 {
	out := append([]float64(nil), v...)
	for i, x := range out {
		if !isFinite(x) {
			out[i] = 0
		}
	}
	return out
}

func shiftIn(hist []float64, v float64) {
	if len(hist) == 0 {
		return
	}
	copy(hist[1:], hist[:len(hist)-1])
	hist[0] = v
}

// Forecast returns the h-step-ahead prediction E[y_{t+h} | info at t]
// (Eq. 1 of the paper). Future shocks are zero in expectation; future
// exogenous inputs are held at their latest observed value
// (persistence), which matches how GBooster runs: it cannot see future
// touch events, only the current rate.
func (m *Model) Forecast(h int) float64 {
	if h < 1 {
		h = 1
	}
	y := append([]float64(nil), m.yHist...)
	e := append([]float64(nil), m.eHist...)
	x := make([][]float64, len(m.xHist))
	for i := range m.xHist {
		x[i] = append([]float64(nil), m.xHist[i]...)
	}
	var latest []float64
	if m.b > 0 {
		latest = append([]float64(nil), m.xHist[0]...)
	}
	var pred float64
	for step := 0; step < h; step++ {
		reg := make([]float64, 0, len(m.theta))
		reg = append(reg, 1) // intercept
		reg = append(reg, y...)
		reg = append(reg, e...)
		for _, d := range x {
			reg = append(reg, d...)
		}
		pred = dot(reg, m.theta)
		if !isFinite(pred) {
			// Degenerate estimate (short history, constant or collinear
			// inputs): degrade to last-value persistence rather than
			// propagate NaN into the switching controller.
			return m.lastY
		}
		shiftIn(y, pred)
		shiftIn(e, 0)
		if m.b > 0 {
			copy(x[1:], x[:len(x)-1])
			x[0] = latest
		}
	}
	return pred
}

// AIC returns the Akaike Information Criterion for the model's one-
// step-ahead performance so far: n·ln(RSS/n) + 2·params. Lower is
// better. It returns +Inf until the model has seen enough samples to
// be scored.
func (m *Model) AIC() float64 {
	burn := 2 * m.NumParams()
	if m.n <= burn {
		return math.Inf(1)
	}
	n := float64(m.n)
	rss := m.rss
	if rss <= 0 {
		rss = 1e-12
	}
	return n*math.Log(rss/n) + 2*float64(m.NumParams())
}
