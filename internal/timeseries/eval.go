package timeseries

import (
	"fmt"
	"math"
	"sort"
)

// ExceedanceStats scores threshold-exceedance forecasting, the metric
// the paper uses for the Bluetooth-capacity decision: a False Negative
// is a realized demand spike above the threshold the model failed to
// predict (costly: packets queue behind a sleeping WiFi interface); a
// False Positive is a predicted spike that did not happen (cheap: WiFi
// woke for nothing).
type ExceedanceStats struct {
	TruePositives  int
	TrueNegatives  int
	FalsePositives int
	FalseNegatives int
}

// FNRate returns FN/(FN+TP): the fraction of real spikes missed.
func (s ExceedanceStats) FNRate() float64 {
	total := s.FalseNegatives + s.TruePositives
	if total == 0 {
		return 0
	}
	return float64(s.FalseNegatives) / float64(total)
}

// FPRate returns FP/(FP+TN): the fraction of calm periods wrongly
// predicted to spike.
func (s ExceedanceStats) FPRate() float64 {
	total := s.FalsePositives + s.TrueNegatives
	if total == 0 {
		return 0
	}
	return float64(s.FalsePositives) / float64(total)
}

func (s ExceedanceStats) String() string {
	return fmt.Sprintf("FP=%.1f%% FN=%.1f%% (tp=%d tn=%d fp=%d fn=%d)",
		s.FPRate()*100, s.FNRate()*100,
		s.TruePositives, s.TrueNegatives, s.FalsePositives, s.FalseNegatives)
}

// EvaluateExceedance replays a series through the model: at each step
// it forecasts h steps ahead, compares the predicted and realized
// exceedance of threshold, then feeds the realized sample. exo may be
// nil for ARMA; otherwise exo[t] is the input vector observed at t.
// burnIn steps are consumed without scoring so the RLS estimate
// stabilizes first.
func EvaluateExceedance(m *Model, series []float64, exo [][]float64, threshold float64, h, burnIn int) (ExceedanceStats, error) {
	var stats ExceedanceStats
	if h < 1 {
		h = 1
	}
	for t := 0; t < len(series); t++ {
		var x []float64
		if exo != nil {
			x = exo[t]
		}
		if err := m.Observe(series[t], x); err != nil {
			return stats, fmt.Errorf("t=%d: %w", t, err)
		}
		// Having observed up to index t, Forecast(h) predicts index t+h.
		if t >= burnIn && t+h < len(series) {
			predicted := m.Forecast(h) > threshold
			actual := series[t+h] > threshold
			switch {
			case predicted && actual:
				stats.TruePositives++
			case predicted && !actual:
				stats.FalsePositives++
			case !predicted && actual:
				stats.FalseNegatives++
			default:
				stats.TrueNegatives++
			}
		}
	}
	return stats, nil
}

// EvaluateExceedanceWindow scores the operational §V-B decision: after
// each observation, "will demand exceed the threshold at any point in
// the next h steps?" — predicted via max over the 1..h-step forecasts,
// realized via max over the next h samples. This matches how the
// interface switch consumes the forecast (wake WiFi if the coming
// 500 ms needs it).
func EvaluateExceedanceWindow(m *Model, series []float64, exo [][]float64, threshold float64, h, burnIn int) (ExceedanceStats, error) {
	var stats ExceedanceStats
	if h < 1 {
		h = 1
	}
	for t := 0; t < len(series); t++ {
		var x []float64
		if exo != nil {
			x = exo[t]
		}
		if err := m.Observe(series[t], x); err != nil {
			return stats, fmt.Errorf("t=%d: %w", t, err)
		}
		if t < burnIn || t+h >= len(series) {
			continue
		}
		predicted := false
		for k := 1; k <= h; k++ {
			if m.Forecast(k) > threshold {
				predicted = true
				break
			}
		}
		actual := false
		for k := 1; k <= h; k++ {
			if series[t+k] > threshold {
				actual = true
				break
			}
		}
		switch {
		case predicted && actual:
			stats.TruePositives++
		case predicted && !actual:
			stats.FalsePositives++
		case !predicted && actual:
			stats.FalseNegatives++
		default:
			stats.TrueNegatives++
		}
	}
	return stats, nil
}

// MSFE replays the series and returns the mean square h-step forecast
// error after burnIn — the quantity Eq. 1 of the paper minimizes.
func MSFE(m *Model, series []float64, exo [][]float64, h, burnIn int) (float64, error) {
	if h < 1 {
		h = 1
	}
	var sum float64
	var count int
	for t := 0; t < len(series); t++ {
		var x []float64
		if exo != nil {
			x = exo[t]
		}
		if err := m.Observe(series[t], x); err != nil {
			return 0, fmt.Errorf("t=%d: %w", t, err)
		}
		if t >= burnIn && t+h < len(series) {
			err := m.Forecast(h) - series[t+h]
			sum += err * err
			count++
		}
	}
	if count == 0 {
		return math.Inf(1), nil
	}
	return sum / float64(count), nil
}

// CandidateResult scores one model structure in a selection sweep.
type CandidateResult struct {
	Name string
	P, Q int
	// ExoAttrs are the indices of the exogenous attributes included.
	ExoAttrs []int
	AIC      float64
}

// SelectExogenous fits an ARMAX for every subset of the candidate
// exogenous attributes (including the empty set, i.e. plain ARMA) and
// ranks them by AIC — the paper's attribute-selection experiment, which
// found {touchstroke frequency, texture count} to approximate the
// traffic best. attrs[t] is the full attribute vector at time t; names
// label the attributes in the result.
func SelectExogenous(series []float64, attrs [][]float64, names []string, p, q, b int) ([]CandidateResult, error) {
	if len(attrs) != len(series) {
		return nil, fmt.Errorf("%w: %d attr rows for %d samples", ErrExoDim, len(attrs), len(series))
	}
	k := len(names)
	subsets := 1 << k
	results := make([]CandidateResult, 0, subsets)
	for mask := 0; mask < subsets; mask++ {
		var idxs []int
		for i := 0; i < k; i++ {
			if mask&(1<<i) != 0 {
				idxs = append(idxs, i)
			}
		}
		var m *Model
		var err error
		var exo [][]float64
		if len(idxs) == 0 {
			m, err = NewARMA(p, q)
		} else {
			m, err = NewARMAX(p, q, b, len(idxs))
			exo = make([][]float64, len(series))
			for t := range series {
				row := make([]float64, len(idxs))
				for j, a := range idxs {
					row[j] = attrs[t][a]
				}
				exo[t] = row
			}
		}
		if err != nil {
			return nil, err
		}
		// The sweep scores candidate structures over a fixed trace;
		// slow forgetting keeps the comparison about structure, not
		// adaptation noise.
		if err := m.SetForgetting(0.999); err != nil {
			return nil, err
		}
		for t := range series {
			var x []float64
			if exo != nil {
				x = exo[t]
			}
			if err := m.Observe(series[t], x); err != nil {
				return nil, err
			}
		}
		name := "ARMA"
		for _, a := range idxs {
			name += "+" + names[a]
		}
		results = append(results, CandidateResult{
			Name: name, P: p, Q: q, ExoAttrs: idxs, AIC: m.AIC(),
		})
	}
	sort.Slice(results, func(i, j int) bool { return results[i].AIC < results[j].AIC })
	return results, nil
}
