package timeseries

import (
	"math"
	"testing"

	"github.com/gbooster/gbooster/internal/sim"
)

// assertFinite fails if the model's forecasts or parameters went
// non-finite at any horizon the switch controller uses.
func assertFinite(t *testing.T, m *Model, label string) {
	t.Helper()
	for h := 1; h <= 8; h++ {
		if f := m.Forecast(h); math.IsNaN(f) || math.IsInf(f, 0) {
			t.Fatalf("%s: Forecast(%d) = %v, want finite", label, h, f)
		}
	}
	phi, theta, eta := m.Params()
	for _, set := range [][]float64{phi, theta, eta, {m.Intercept()}} {
		for _, v := range set {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%s: parameter %v non-finite", label, v)
			}
		}
	}
}

// Property: forecasts are finite at every point of a short history,
// including before any observation at all.
func TestRobustShortHistory(t *testing.T) {
	m, err := NewARMAX(3, 2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	assertFinite(t, m, "no observations")
	for i := 0; i < 10; i++ {
		if err := m.Observe(float64(i%3), []float64{1, 2}); err != nil {
			t.Fatal(err)
		}
		assertFinite(t, m, "short history")
	}
}

// Property: a constant series (zero variance, zero excitation) never
// produces NaN, and the forecast converges to the constant.
func TestRobustConstantSeries(t *testing.T) {
	for _, c := range []float64{0, 5.5, -3} {
		m, err := NewARMAX(3, 2, 2, 2)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2000; i++ {
			if err := m.Observe(c, []float64{c, c}); err != nil {
				t.Fatal(err)
			}
		}
		assertFinite(t, m, "constant series")
		if f := m.Forecast(5); math.Abs(f-c) > 1+math.Abs(c)*0.2 {
			t.Fatalf("constant %v: Forecast(5) = %v, want near the constant", c, f)
		}
	}
}

// Property: perfectly collinear exogenous columns (one column a scalar
// multiple of the other, and of the series itself) must not destroy
// positive-definiteness or blow up the parameters.
func TestRobustCollinearExogenous(t *testing.T) {
	m, err := NewARMAX(3, 2, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(7)
	for i := 0; i < 5000; i++ {
		y := 10 + 5*math.Sin(float64(i)/20) + rng.Norm(0, 0.5)
		// exo[1] = 2*exo[0], exo[2] = y: maximal collinearity.
		exo := []float64{y, 2 * y, y}
		if err := m.Observe(y, exo); err != nil {
			t.Fatal(err)
		}
		if i%500 == 0 {
			assertFinite(t, m, "collinear exo")
		}
	}
	assertFinite(t, m, "collinear exo (final)")
}

// Property: NaN and Inf samples — in the series or the exogenous
// vector — are absorbed without error, and forecasting afterwards
// degrades to a finite value (last-value persistence at worst).
func TestRobustNonFiniteInputs(t *testing.T) {
	m, err := NewARMAX(3, 2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	goods := []float64{4, 5, 6, 5, 4, 5, 6}
	for _, y := range goods {
		if err := m.Observe(y, []float64{1, 1}); err != nil {
			t.Fatal(err)
		}
	}
	bads := []struct {
		y   float64
		exo []float64
	}{
		{math.NaN(), []float64{1, 1}},
		{math.Inf(1), []float64{1, 1}},
		{5, []float64{math.NaN(), 1}},
		{5, []float64{1, math.Inf(-1)}},
		{math.Inf(-1), []float64{math.NaN(), math.Inf(1)}},
	}
	for _, b := range bads {
		if err := m.Observe(b.y, b.exo); err != nil {
			t.Fatalf("Observe(%v, %v): %v", b.y, b.exo, err)
		}
		assertFinite(t, m, "after non-finite input")
	}
	// The model keeps learning after the glitch.
	for i := 0; i < 200; i++ {
		if err := m.Observe(5+math.Sin(float64(i)/5), []float64{1, 1}); err != nil {
			t.Fatal(err)
		}
	}
	assertFinite(t, m, "recovered")
}

// Property: across random walks with occasional extreme jumps, the
// h-step forecast is always finite and the model never errors. This is
// the catch-all fuzz over the failure modes above.
func TestRobustRandomWalkFuzz(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		m, err := NewARMAX(3, 2, 6, 2)
		if err != nil {
			t.Fatal(err)
		}
		rng := sim.NewRNG(seed)
		y := 10.0
		for i := 0; i < 3000; i++ {
			y += rng.Norm(0, 1)
			if rng.Bool(0.01) {
				y += rng.Norm(0, 100) // extreme jump
			}
			if y < 0 {
				y = 0
			}
			exo := []float64{math.Abs(rng.Norm(2, 1)), float64(i % 7)}
			if err := m.Observe(y, exo); err != nil {
				t.Fatalf("seed %d t=%d: %v", seed, i, err)
			}
			if f := m.Forecast(5); math.IsNaN(f) || math.IsInf(f, 0) {
				t.Fatalf("seed %d t=%d: Forecast(5) = %v", seed, i, f)
			}
		}
	}
}
