package experiments

import "testing"

func TestAblationsShape(t *testing.T) {
	res, out, err := Ablations(DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if out == "" {
		t.Fatal("no rendering")
	}
	// Each optimization stage must pay its way on the uplink.
	if res.UplinkBoth >= res.UplinkNone {
		t.Fatalf("full pipeline %.0f >= unoptimized %.0f", res.UplinkBoth, res.UplinkNone)
	}
	if res.UplinkLZ4Only >= res.UplinkNone || res.UplinkLRUOnly >= res.UplinkNone {
		t.Fatal("individual stages did not reduce the uplink")
	}
	// Quality sweep: bytes and PSNR both rise with quality.
	for i := 1; i < len(res.QualitySweep); i++ {
		prev, cur := res.QualitySweep[i-1], res.QualitySweep[i]
		if cur.BytesPer <= prev.BytesPer {
			t.Fatalf("q=%d bytes %.0f <= q=%d bytes %.0f", cur.Quality, cur.BytesPer, prev.Quality, prev.BytesPer)
		}
		if cur.PSNR <= prev.PSNR {
			t.Fatalf("q=%d PSNR %.1f <= q=%d PSNR %.1f", cur.Quality, cur.PSNR, prev.Quality, prev.PSNR)
		}
	}
	// Policies: always-wifi costs the most energy.
	byName := map[string]PolicyPoint{}
	for _, p := range res.Policies {
		byName[p.Policy] = p
	}
	if byName["always-wifi"].EnergyJ <= byName["predictive"].EnergyJ {
		t.Fatal("always-wifi not more expensive than predictive")
	}
	// In-flight depth: B=1 (blocking SwapBuffer) clearly slower; B>=2 plateaus.
	if res.InFlight[0].MedianFPS >= res.InFlight[1].MedianFPS {
		t.Fatalf("B=1 FPS %.1f >= B=2 FPS %.1f", res.InFlight[0].MedianFPS, res.InFlight[1].MedianFPS)
	}
	if res.InFlight[3].MedianFPS > res.InFlight[2].MedianFPS*1.05 {
		t.Fatal("B=4 should not beat B=3 (three devices)")
	}
}

func TestMultiUserExperiment(t *testing.T) {
	res, out, err := MultiUser(DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if out == "" {
		t.Fatal("no rendering")
	}
	if res.PriorityServedFirst >= res.FCFSServedFirst {
		t.Fatalf("priority served %d chess requests first, FCFS %d: no scheduling benefit",
			res.PriorityServedFirst, res.FCFSServedFirst)
	}
}
