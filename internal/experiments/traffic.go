package experiments

import (
	"fmt"
	"strings"
	"time"

	"github.com/gbooster/gbooster/internal/cmdcache"
	"github.com/gbooster/gbooster/internal/gles"
	"github.com/gbooster/gbooster/internal/glwire"
	"github.com/gbooster/gbooster/internal/lz4"
	"github.com/gbooster/gbooster/internal/turbo"
	"github.com/gbooster/gbooster/internal/workload"
)

// TrafficResult is the §V-A redundancy-elimination measurement on the
// real data plane: actual serialized command bytes and actual rendered
// pixels, through the actual cache/compressor/codec implementations.
type TrafficResult struct {
	Frames int

	// Uplink (graphics commands), bytes per frame.
	UplinkRaw      float64 // serialized records, no optimization
	UplinkAfterLRU float64 // after the mirrored LRU command cache
	UplinkAfterLZ4 float64 // after cache + LZ4
	CacheHitRate   float64
	LZ4Ratio       float64 // compressed/pre-compressed

	// Downlink (rendered frames), bytes per frame.
	DownlinkRaw   float64 // raw RGBA
	DownlinkTurbo float64 // turbo tile-delta packets
	TurboRatio    float64

	// Encoder throughput measured on this host (megapixels/second).
	TurboMPps float64
	VideoMPps float64
}

// Traffic measures the traffic pipeline on frames of the given
// workload.
func Traffic(id string, frames int, seed uint64) (TrafficResult, string, error) {
	prof, err := workload.ByID(id)
	if err != nil {
		return TrafficResult{}, "", err
	}
	if frames <= 0 {
		frames = 40
	}
	game := workload.NewGame(prof, seed)
	enc := glwire.NewEncoder(game.Arrays())
	cache := cmdcache.New(0)
	gpu := gles.NewGPU(workload.StreamW, workload.StreamH)
	tEnc := turbo.NewEncoder(workload.StreamW, workload.StreamH, turbo.DefaultQuality)
	var dec glwire.Decoder

	var res TrafficResult
	res.Frames = frames
	var rawUp, lruUp, lz4Up, turboDown int64
	var encodeTime time.Duration
	var encodePixels int64

	for f := 0; f < frames; f++ {
		frame := game.NextFrame()
		buf, err := enc.EncodeAll(nil, frame.Commands)
		if err != nil {
			return res, "", fmt.Errorf("frame %d encode: %w", f, err)
		}
		rawUp += int64(len(buf))
		recs, err := glwire.SplitRecords(buf)
		if err != nil {
			return res, "", err
		}
		wire, _, err := cache.EncodeAll(nil, recs)
		if err != nil {
			return res, "", err
		}
		lruUp += int64(len(wire))
		lz4Up += int64(len(lz4.Compress(nil, wire)))

		// Execute and turbo-encode the real frame.
		cmds, err := dec.DecodeAll(buf)
		if err != nil {
			return res, "", err
		}
		if _, err := gpu.ExecuteAll(cmds); err != nil {
			return res, "", fmt.Errorf("frame %d execute: %w", f, err)
		}
		start := time.Now()
		pkt, err := tEnc.Encode(gpu.FB.Pix, false)
		if err != nil {
			return res, "", err
		}
		encodeTime += time.Since(start)
		encodePixels += int64(workload.StreamW * workload.StreamH)
		turboDown += int64(len(pkt))
	}

	n := float64(frames)
	res.UplinkRaw = float64(rawUp) / n
	res.UplinkAfterLRU = float64(lruUp) / n
	res.UplinkAfterLZ4 = float64(lz4Up) / n
	res.CacheHitRate = float64(cache.Stats.Hits) / float64(cache.Stats.Hits+cache.Stats.Misses)
	res.LZ4Ratio = float64(lz4Up) / float64(lruUp)
	res.DownlinkRaw = float64(workload.StreamW * workload.StreamH * 4)
	res.DownlinkTurbo = float64(turboDown) / n
	res.TurboRatio = res.DownlinkTurbo / res.DownlinkRaw
	res.TurboMPps = float64(encodePixels) / 1e6 / encodeTime.Seconds()

	// x264 stand-in throughput: a few frames are enough to demonstrate
	// the order-of-magnitude gap.
	vEnc := turbo.NewVideoEncoder(workload.StreamW, workload.StreamH, turbo.DefaultQuality, 16)
	game2 := workload.NewGame(prof, seed+1)
	enc2 := glwire.NewEncoder(game2.Arrays())
	gpu2 := gles.NewGPU(workload.StreamW, workload.StreamH)
	var dec2 glwire.Decoder
	var vTime time.Duration
	var vPixels int64
	for f := 0; f < 3; f++ {
		buf, err := enc2.EncodeAll(nil, game2.NextFrame().Commands)
		if err != nil {
			return res, "", err
		}
		cmds, err := dec2.DecodeAll(buf)
		if err != nil {
			return res, "", err
		}
		if _, err := gpu2.ExecuteAll(cmds); err != nil {
			return res, "", err
		}
		start := time.Now()
		if _, err := vEnc.Encode(gpu2.FB.Pix); err != nil {
			return res, "", err
		}
		vTime += time.Since(start)
		vPixels += int64(workload.StreamW * workload.StreamH)
	}
	res.VideoMPps = float64(vPixels) / 1e6 / vTime.Seconds()

	var b strings.Builder
	fmt.Fprintf(&b, "Traffic optimization (§V-A) on %s, %d frames at %dx%d\n",
		id, frames, workload.StreamW, workload.StreamH)
	fmt.Fprintf(&b, "  uplink  raw commands:     %8.1f KB/frame\n", res.UplinkRaw/1024)
	fmt.Fprintf(&b, "  uplink  after LRU cache:  %8.1f KB/frame (hit rate %.0f%%)\n", res.UplinkAfterLRU/1024, res.CacheHitRate*100)
	fmt.Fprintf(&b, "  uplink  after LZ4:        %8.1f KB/frame (LZ4 ratio %.2f)\n", res.UplinkAfterLZ4/1024, res.LZ4Ratio)
	fmt.Fprintf(&b, "  downlink raw RGBA:        %8.1f KB/frame\n", res.DownlinkRaw/1024)
	fmt.Fprintf(&b, "  downlink turbo packets:   %8.1f KB/frame (%.0f:1)\n", res.DownlinkTurbo/1024, 1/res.TurboRatio)
	fmt.Fprintf(&b, "  turbo encoder throughput: %8.1f MP/s on this host\n", res.TurboMPps)
	fmt.Fprintf(&b, "  video encoder stand-in:   %8.2f MP/s (motion search, x264 role)\n", res.VideoMPps)
	fmt.Fprintf(&b, "  encoder speed ratio:      %8.0fx — software video encoding cannot keep real time\n", res.TurboMPps/res.VideoMPps)
	return res, b.String(), nil
}
