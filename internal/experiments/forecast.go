package experiments

import (
	"fmt"
	"strings"

	"github.com/gbooster/gbooster/internal/predict"
	"github.com/gbooster/gbooster/internal/timeseries"
)

// ForecastResult compares ARMA and ARMAX threshold-exceedance
// prediction (§V-B) and reports the AIC attribute selection.
type ForecastResult struct {
	ARMA  timeseries.ExceedanceStats
	ARMAX timeseries.ExceedanceStats
	// Ranking is the AIC ordering over exogenous attribute subsets;
	// Ranking[0] is the best approximating model.
	Ranking []timeseries.CandidateResult
}

// The synthetic trace and attribute naming moved to internal/predict
// (predict.SyntheticTraffic / predict.AttrNames) so the offline study
// and the live control plane's A/B harness score the same traffic
// model.

// Forecast runs the §V-B prediction study: exceedance FP/FN for ARMA
// vs ARMAX (500 ms horizon = 5 windows) and the AIC ranking over
// attribute subsets.
func Forecast(seed uint64) (ForecastResult, string, error) {
	const (
		n         = 12000
		horizon   = 5
		burnIn    = 600
		threshold = 14.0 // Bluetooth capacity with margin, in Mbps
	)
	series, attrs := predict.SyntheticTraffic(seed, n)

	arma, err := timeseries.NewARMA(3, 2)
	if err != nil {
		return ForecastResult{}, "", err
	}
	// Gameplay traffic patterns are stable within a session; slow
	// forgetting keeps the online estimate from wandering.
	if err := arma.SetForgetting(0.999); err != nil {
		return ForecastResult{}, "", err
	}
	armaStats, err := timeseries.EvaluateExceedanceWindow(arma, series, nil, threshold, horizon, burnIn)
	if err != nil {
		return ForecastResult{}, "", err
	}

	// ARMAX with the paper's selected attributes: touchstroke frequency
	// (1) and texture count (3).
	exo := make([][]float64, n)
	for t := range series {
		exo[t] = []float64{attrs[t][0], attrs[t][2]}
	}
	armax, err := timeseries.NewARMAX(3, 2, 6, 2)
	if err != nil {
		return ForecastResult{}, "", err
	}
	if err := armax.SetForgetting(0.999); err != nil {
		return ForecastResult{}, "", err
	}
	armaxStats, err := timeseries.EvaluateExceedanceWindow(armax, series, exo, threshold, horizon, burnIn)
	if err != nil {
		return ForecastResult{}, "", err
	}

	// AIC selection over all 16 attribute subsets (shorter trace: the
	// sweep fits 16 models).
	selSeries, selAttrs := predict.SyntheticTraffic(seed+1, 4000)
	ranking, err := timeseries.SelectExogenous(selSeries, selAttrs, predict.AttrNames, 3, 2, 6)
	if err != nil {
		return ForecastResult{}, "", err
	}

	res := ForecastResult{ARMA: armaStats, ARMAX: armaxStats, Ranking: ranking}
	var b strings.Builder
	b.WriteString("Traffic forecasting (§V-B): predict demand 500 ms ahead vs Bluetooth capacity\n")
	fmt.Fprintf(&b, "  ARMA(3,2):         FP %5.1f%%  FN %5.1f%%   (paper: 23.7%% / 35.1%%)\n",
		armaStats.FPRate()*100, armaStats.FNRate()*100)
	fmt.Fprintf(&b, "  ARMAX(3,2,6)+1,3:  FP %5.1f%%  FN %5.1f%%   (paper: 23%%   / 17%%)\n",
		armaxStats.FPRate()*100, armaxStats.FNRate()*100)
	b.WriteString("  AIC ranking over exogenous attribute subsets (lower AIC better):\n")
	for i, c := range ranking {
		if i >= 5 {
			break
		}
		fmt.Fprintf(&b, "    %d. %-28s AIC %.0f\n", i+1, c.Name, c.AIC)
	}
	return res, b.String(), nil
}
