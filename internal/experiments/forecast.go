package experiments

import (
	"fmt"
	"strings"

	"github.com/gbooster/gbooster/internal/sim"
	"github.com/gbooster/gbooster/internal/timeseries"
)

// ForecastResult compares ARMA and ARMAX threshold-exceedance
// prediction (§V-B) and reports the AIC attribute selection.
type ForecastResult struct {
	ARMA  timeseries.ExceedanceStats
	ARMAX timeseries.ExceedanceStats
	// Ranking is the AIC ordering over exogenous attribute subsets;
	// Ranking[0] is the best approximating model.
	Ranking []timeseries.CandidateResult
}

// attrNames are the §V-B candidate exogenous attributes, in the paper's
// numbering: 1 touchstroke frequency, 2 command-sequence length,
// 3 texture count, 4 inter-frame command difference.
var _attrNames = []string{"touch", "cmdlen", "textures", "cmddiff"}

// syntheticTraffic builds a gameplay-traffic trace at the switching
// controller's 100 ms granularity. Demand has two spike populations:
// ramped spikes that historic traffic alone can anticipate, and abrupt
// touch-driven spikes only the exogenous inputs reveal — the §V-B
// structure behind ARMA's high false-negative rate.
func syntheticTraffic(seed uint64, n int) (series []float64, attrs [][]float64) {
	rng := sim.NewRNG(seed)
	series = make([]float64, n)
	attrs = make([][]float64, n)
	y := 8.0
	// Pending spike impulses: traffic follows a cue after ~500 ms (the
	// game loads assets / changes scene before the stream swells), so
	// the exogenous inputs lead demand by roughly the forecast horizon.
	pending := make([]float64, n+16)
	var burstLeft, texLeft, rampLeft int
	var ramp float64
	scheduleSpike := func(t int, height float64) {
		lag := 4 + rng.Intn(3) // 400-600 ms
		for k := 0; k < 4+rng.Intn(4); k++ {
			if t+lag+k < len(pending) {
				pending[t+lag+k] += height * (1 + rng.Norm(0, 0.1))
			}
		}
	}
	for t := 0; t < n; t++ {
		touch := rng.Exp(0.8)
		texSurge := 0.0
		if burstLeft == 0 && texLeft == 0 && rampLeft == 0 {
			switch {
			case rng.Bool(0.010): // touch burst; traffic follows ~500 ms later
				burstLeft = 3 + rng.Intn(4)
				if rng.Bool(0.9) { // a few bursts are false cues
					scheduleSpike(t, 11+rng.Float64()*4)
				}
			case rng.Bool(0.008): // texture surge (scene streaming)
				texLeft = 3 + rng.Intn(4)
				if rng.Bool(0.9) {
					scheduleSpike(t, 9+rng.Float64()*4)
				}
			case rng.Bool(0.010): // ramped spike: history alone reveals it
				rampLeft = 12
				ramp = 0
			}
		}
		if burstLeft > 0 {
			burstLeft--
			touch += 9 + rng.Float64()*3
		}
		if texLeft > 0 {
			texLeft--
			texSurge = 16 + rng.Float64()*6
		}
		if rampLeft > 0 {
			rampLeft--
			ramp += 1.3
		} else {
			ramp *= 0.6
		}
		textures := 20 + texSurge + rng.Norm(0, 1.5)
		y = 0.45*y + 4 + pending[t] + ramp + rng.Norm(0, 1.2)
		series[t] = y
		attrs[t] = []float64{
			touch,
			90 + 0.8*textures + rng.Norm(0, 12), // cmdlen: loose, noisy echo of the scene
			textures,
			rng.Norm(12, 4), // cmddiff: mostly noise at this granularity
		}
	}
	return series, attrs
}

// Forecast runs the §V-B prediction study: exceedance FP/FN for ARMA
// vs ARMAX (500 ms horizon = 5 windows) and the AIC ranking over
// attribute subsets.
func Forecast(seed uint64) (ForecastResult, string, error) {
	const (
		n         = 12000
		horizon   = 5
		burnIn    = 600
		threshold = 14.0 // Bluetooth capacity with margin, in Mbps
	)
	series, attrs := syntheticTraffic(seed, n)

	arma, err := timeseries.NewARMA(3, 2)
	if err != nil {
		return ForecastResult{}, "", err
	}
	// Gameplay traffic patterns are stable within a session; slow
	// forgetting keeps the online estimate from wandering.
	if err := arma.SetForgetting(0.999); err != nil {
		return ForecastResult{}, "", err
	}
	armaStats, err := timeseries.EvaluateExceedanceWindow(arma, series, nil, threshold, horizon, burnIn)
	if err != nil {
		return ForecastResult{}, "", err
	}

	// ARMAX with the paper's selected attributes: touchstroke frequency
	// (1) and texture count (3).
	exo := make([][]float64, n)
	for t := range series {
		exo[t] = []float64{attrs[t][0], attrs[t][2]}
	}
	armax, err := timeseries.NewARMAX(3, 2, 6, 2)
	if err != nil {
		return ForecastResult{}, "", err
	}
	if err := armax.SetForgetting(0.999); err != nil {
		return ForecastResult{}, "", err
	}
	armaxStats, err := timeseries.EvaluateExceedanceWindow(armax, series, exo, threshold, horizon, burnIn)
	if err != nil {
		return ForecastResult{}, "", err
	}

	// AIC selection over all 16 attribute subsets (shorter trace: the
	// sweep fits 16 models).
	selSeries, selAttrs := syntheticTraffic(seed+1, 4000)
	ranking, err := timeseries.SelectExogenous(selSeries, selAttrs, _attrNames, 3, 2, 6)
	if err != nil {
		return ForecastResult{}, "", err
	}

	res := ForecastResult{ARMA: armaStats, ARMAX: armaxStats, Ranking: ranking}
	var b strings.Builder
	b.WriteString("Traffic forecasting (§V-B): predict demand 500 ms ahead vs Bluetooth capacity\n")
	fmt.Fprintf(&b, "  ARMA(3,2):         FP %5.1f%%  FN %5.1f%%   (paper: 23.7%% / 35.1%%)\n",
		armaStats.FPRate()*100, armaStats.FNRate()*100)
	fmt.Fprintf(&b, "  ARMAX(3,2,6)+1,3:  FP %5.1f%%  FN %5.1f%%   (paper: 23%%   / 17%%)\n",
		armaxStats.FPRate()*100, armaxStats.FNRate()*100)
	b.WriteString("  AIC ranking over exogenous attribute subsets (lower AIC better):\n")
	for i, c := range ranking {
		if i >= 5 {
			break
		}
		fmt.Fprintf(&b, "    %d. %-28s AIC %.0f\n", i+1, c.Name, c.AIC)
	}
	return res, b.String(), nil
}
