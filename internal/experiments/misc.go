package experiments

import (
	"fmt"
	"strings"
	"time"

	"github.com/gbooster/gbooster/internal/cloud"
	"github.com/gbooster/gbooster/internal/cmdcache"
	"github.com/gbooster/gbooster/internal/device"
	"github.com/gbooster/gbooster/internal/gles"
	"github.com/gbooster/gbooster/internal/glwire"
	"github.com/gbooster/gbooster/internal/ifswitch"
	"github.com/gbooster/gbooster/internal/pipeline"
	"github.com/gbooster/gbooster/internal/turbo"
	"github.com/gbooster/gbooster/internal/workload"
)

// CloudRow compares GBooster against the cloud baseline for one game.
type CloudRow struct {
	ID           string
	GBoosterFPS  float64
	GBoosterResp time.Duration
	CloudFPS     float64
	CloudResp    time.Duration
}

// CloudComparison reproduces §VII-F: GBooster vs an OnLive-style cloud
// platform.
func CloudComparison(seed uint64) ([]CloudRow, string, error) {
	platform := cloud.OnLive()
	services := []device.ServiceDevice{device.NvidiaShield()}
	var rows []CloudRow
	for _, id := range []string{"G1", "G2"} {
		pair, err := runPair(id, "nexus5", services, 5, seed, ifswitch.PolicyPredictive)
		if err != nil {
			return nil, "", err
		}
		prof, err := workload.ByID(id)
		if err != nil {
			return nil, "", err
		}
		c := platform.Evaluate(prof)
		rows = append(rows, CloudRow{
			ID:           id,
			GBoosterFPS:  pair.OffloadFPS,
			GBoosterResp: pair.OffloadResp,
			CloudFPS:     c.FPS,
			CloudResp:    c.Response,
		})
	}
	var b strings.Builder
	b.WriteString("Comparison with cloud-based solution (§VII-F, OnLive model @10 Mbps Internet)\n")
	fmt.Fprintf(&b, "  %-4s %14s %14s %12s %12s\n", "Game", "GBooster FPS", "GBooster resp", "cloud FPS", "cloud resp")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-4s %14.1f %14v %12.0f %12v\n",
			r.ID, r.GBoosterFPS, r.GBoosterResp.Round(time.Millisecond),
			r.CloudFPS, r.CloudResp.Round(time.Millisecond))
	}
	b.WriteString("The cloud path is capped at 30 FPS by its encoder and ~5x slower to respond.\n")
	return rows, b.String(), nil
}

// OverheadResult is the §VII-G system-overhead measurement.
type OverheadResult struct {
	// MemoryMB is the measured wrapper-side memory: command cache
	// residency plus codec state, from the real data structures.
	MemoryMB float64
	// LocalCPU and OffloadCPU are the reported app CPU usages.
	LocalCPU, OffloadCPU float64
}

// Overhead measures wrapper memory on the real data plane and CPU
// overhead from the session model.
func Overhead(seed uint64) (OverheadResult, string, error) {
	// Memory: drive the heaviest game's real stream through the
	// wrapper-side structures and account their residency.
	prof, err := workload.ByID("G1")
	if err != nil {
		return OverheadResult{}, "", err
	}
	game := workload.NewGame(prof, seed)
	enc := glwire.NewEncoder(game.Arrays())
	cache := cmdcache.New(0)
	gpu := gles.NewGPU(workload.StreamW, workload.StreamH)
	var dec glwire.Decoder
	for f := 0; f < 60; f++ {
		buf, err := enc.EncodeAll(nil, game.NextFrame().Commands)
		if err != nil {
			return OverheadResult{}, "", err
		}
		recs, err := glwire.SplitRecords(buf)
		if err != nil {
			return OverheadResult{}, "", err
		}
		if _, _, err := cache.EncodeAll(nil, recs); err != nil {
			return OverheadResult{}, "", err
		}
		cmds, err := dec.DecodeAll(buf)
		if err != nil {
			return OverheadResult{}, "", err
		}
		if _, err := gpu.ExecuteAll(cmds); err != nil {
			return OverheadResult{}, "", err
		}
	}
	// Wrapper residency: command cache + turbo decoder reference frame
	// + one in-flight frame batch + reorder slack. The paper's measured
	// figure (47.8 MB) reflects a commercial game's much larger texture
	// working set flowing through the cache; we report both.
	codecBytes := workload.StreamW * workload.StreamH * 4 * 2 // decoder frame + staging
	measuredMB := (float64(cache.MemoryBytes()) + float64(codecBytes)) / (1 << 20)

	// CPU: §VII-G compares G1 local vs offloaded usage.
	cfg := pipeline.Config{
		Profile:  prof,
		User:     device.Nexus5(),
		Duration: 5 * time.Minute,
		Seed:     seed,
	}
	local, err := pipeline.RunLocal(cfg)
	if err != nil {
		return OverheadResult{}, "", err
	}
	cfg.Services = []device.ServiceDevice{device.NvidiaShield()}
	off, err := pipeline.RunOffload(cfg)
	if err != nil {
		return OverheadResult{}, "", err
	}
	res := OverheadResult{
		MemoryMB:   measuredMB,
		LocalCPU:   local.AvgCPUUtil,
		OffloadCPU: off.AvgCPUUtil,
	}
	var b strings.Builder
	b.WriteString("System overhead (§VII-G)\n")
	fmt.Fprintf(&b, "  wrapper memory (synthetic stream): %6.1f MB resident (paper, commercial game: %.1f MB)\n",
		res.MemoryMB, pipeline.WrapperMemoryMB)
	fmt.Fprintf(&b, "  G1 CPU usage: local %.0f%% -> offloaded %.0f%% (paper: 68%% -> 79%%)\n",
		res.LocalCPU*100, res.OffloadCPU*100)
	b.WriteString("  The CPU stays underutilized; the wrapper's overhead does not bottleneck the system.\n")
	return res, b.String(), nil
}

// EncoderQuality reports turbo-codec fidelity on real rendered frames —
// a supporting measurement for §V-A (the paper cites 25:1 at acceptable
// quality).
func EncoderQuality(seed uint64) (float64, string, error) {
	prof, err := workload.ByID("G1")
	if err != nil {
		return 0, "", err
	}
	game := workload.NewGame(prof, seed)
	enc := glwire.NewEncoder(game.Arrays())
	gpu := gles.NewGPU(workload.StreamW, workload.StreamH)
	tEnc := turbo.NewEncoder(workload.StreamW, workload.StreamH, turbo.DefaultQuality)
	tDec := turbo.NewDecoder(workload.StreamW, workload.StreamH, turbo.DefaultQuality)
	var dec glwire.Decoder
	var worst float64 = 1e9
	for f := 0; f < 10; f++ {
		buf, err := enc.EncodeAll(nil, game.NextFrame().Commands)
		if err != nil {
			return 0, "", err
		}
		cmds, err := dec.DecodeAll(buf)
		if err != nil {
			return 0, "", err
		}
		if _, err := gpu.ExecuteAll(cmds); err != nil {
			return 0, "", err
		}
		pkt, err := tEnc.Encode(gpu.FB.Pix, false)
		if err != nil {
			return 0, "", err
		}
		got, err := tDec.Decode(pkt)
		if err != nil {
			return 0, "", err
		}
		if p := turbo.PSNR(gpu.FB.Pix, got); p < worst {
			worst = p
		}
	}
	msg := fmt.Sprintf("Turbo codec fidelity: worst-frame PSNR %.1f dB over 10 real frames\n", worst)
	return worst, msg, nil
}
