package experiments

import (
	"strings"
	"testing"
	"time"
)

func TestTableIRendering(t *testing.T) {
	out := TableI()
	for _, want := range []string{"2014", "2015", "2016", "3.6 GP/s", "6.7 GP/s"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table I missing %q", want)
		}
	}
}

func TestFig1TraceShape(t *testing.T) {
	trace, out, err := Fig1()
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) == 0 || out == "" {
		t.Fatal("empty Fig 1 output")
	}
	// Shape: starts at 600 MHz, holds for minutes, then drops hard.
	if trace[0].MHz != 600 {
		t.Fatalf("initial freq = %v", trace[0].MHz)
	}
	minutes10 := 10 * 60 / 5 // index at 10 min with 5 s sampling
	held := 0
	for _, p := range trace[:minutes10] {
		if p.MHz == 600 {
			held++
		}
	}
	if float64(held)/float64(minutes10) < 0.9 {
		t.Fatalf("top frequency held only %d/%d of the first 10 min", held, minutes10)
	}
	var minF float64 = 1e9
	for _, p := range trace {
		if p.MHz < minF {
			minF = p.MHz
		}
	}
	if minF > 305 {
		t.Fatalf("min frequency %v; no drastic drop", minF)
	}
}

func TestFig5ShapeNexus5(t *testing.T) {
	rows, out, err := Fig5("nexus5", DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 || out == "" {
		t.Fatalf("Fig5 rows = %d", len(rows))
	}
	byID := map[string]GameRow{}
	for _, r := range rows {
		byID[r.ID] = r
		if r.OffloadFPS < r.LocalFPS-1 {
			t.Errorf("%s offload FPS %.1f below local %.1f", r.ID, r.OffloadFPS, r.LocalFPS)
		}
		if r.OffloadStab < r.LocalStab {
			t.Errorf("%s stability fell %.2f -> %.2f", r.ID, r.LocalStab, r.OffloadStab)
		}
		if r.OffloadResp > 50*time.Millisecond {
			t.Errorf("%s offload response %v; human-imperceptible bound broken", r.ID, r.OffloadResp)
		}
	}
	// Action games gain the most, puzzle the least (paper's pattern).
	actionGain := byID["G1"].OffloadFPS / byID["G1"].LocalFPS
	puzzleGain := byID["G5"].OffloadFPS / byID["G5"].LocalFPS
	if actionGain < puzzleGain+0.3 {
		t.Fatalf("action gain %.2f not well above puzzle gain %.2f", actionGain, puzzleGain)
	}
	// Action game FPS anchors.
	if g1 := byID["G1"]; g1.LocalFPS < 21 || g1.LocalFPS > 25 || g1.OffloadFPS < 34 || g1.OffloadFPS > 43 {
		t.Errorf("G1 anchors off: %.1f -> %.1f (paper 23 -> 37)", g1.LocalFPS, g1.OffloadFPS)
	}
}

func TestFig5LGG5BarelyBenefits(t *testing.T) {
	rows, _, err := Fig5("lgg5", DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	byID := map[string]GameRow{}
	for _, r := range rows {
		byID[r.ID] = r
	}
	g1 := byID["G1"]
	if g1.OffloadFPS > g1.LocalFPS*1.1 {
		t.Fatalf("LG G5 G1 gained %.1f -> %.1f; paper says barely benefits", g1.LocalFPS, g1.OffloadFPS)
	}
}

func TestFig6Shape(t *testing.T) {
	rows, out, err := Fig6(DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 || out == "" { // 6 games × 2 phones
		t.Fatalf("Fig6 rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.NormSwitching >= 1 {
			t.Errorf("%s/%s no energy saving: %.2f", r.Phone, r.ID, r.NormSwitching)
		}
		if r.NormAlwaysWiFi <= r.NormSwitching {
			t.Errorf("%s/%s switching did not help: %.2f vs %.2f",
				r.Phone, r.ID, r.NormSwitching, r.NormAlwaysWiFi)
		}
	}
	// Action games save more than puzzle games on the Nexus 5.
	var g2, g6 EnergyRow
	for _, r := range rows {
		if r.Phone == "nexus5" && r.ID == "G2" {
			g2 = r
		}
		if r.Phone == "nexus5" && r.ID == "G6" {
			g6 = r
		}
	}
	if g2.NormSwitching >= g6.NormSwitching {
		t.Fatalf("G2 norm %.2f >= G6 norm %.2f; genre ordering inverted", g2.NormSwitching, g6.NormSwitching)
	}
}

func TestFig7Shape(t *testing.T) {
	rows, out, err := Fig7(DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 || out == "" {
		t.Fatalf("Fig7 rows = %d", len(rows))
	}
	if rows[0].Devices != 0 || rows[0].MedianFPS > 26 {
		t.Fatalf("baseline row wrong: %+v", rows[0])
	}
	if rows[1].MedianFPS < rows[0].MedianFPS*1.4 {
		t.Fatalf("one device FPS %.1f: no offload boost", rows[1].MedianFPS)
	}
	if rows[3].MedianFPS < rows[1].MedianFPS*1.15 {
		t.Fatalf("three devices %.1f vs one %.1f: no distributed gain", rows[3].MedianFPS, rows[1].MedianFPS)
	}
	if rows[5].MedianFPS > rows[3].MedianFPS*1.05 {
		t.Fatalf("five devices %.1f vs three %.1f: plateau missing", rows[5].MedianFPS, rows[3].MedianFPS)
	}
}

func TestTableIIIShape(t *testing.T) {
	rows, out, err := TableIII(DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || out == "" {
		t.Fatalf("Table III rows = %d", len(rows))
	}
	for _, r := range rows {
		if boost := r.OffloadFPS - r.LocalFPS; boost > 0.5 {
			t.Errorf("%s FPS boost %.1f, paper says 0", r.ID, boost)
		}
		norm := r.OffloadEnergyJ / r.LocalEnergyJ
		if norm < 0.8 || norm >= 1 {
			t.Errorf("%s normalized energy %.2f, paper ~0.92-0.94", r.ID, norm)
		}
	}
}

func TestTrafficMeasurement(t *testing.T) {
	res, out, err := Traffic("G1", 25, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if out == "" {
		t.Fatal("no rendering")
	}
	// Every optimization stage must shrink the uplink.
	if !(res.UplinkAfterLRU < res.UplinkRaw && res.UplinkAfterLZ4 < res.UplinkAfterLRU) {
		t.Fatalf("uplink pipeline not monotone: %.0f -> %.0f -> %.0f",
			res.UplinkRaw, res.UplinkAfterLRU, res.UplinkAfterLZ4)
	}
	if res.CacheHitRate < 0.5 {
		t.Fatalf("cache hit rate %.2f too low for coherent frames", res.CacheHitRate)
	}
	// Turbo compresses real frames several-fold and far outruns the
	// video-encoder stand-in.
	if res.TurboRatio > 0.35 {
		t.Fatalf("turbo ratio %.2f; little compression", res.TurboRatio)
	}
	if res.TurboMPps < res.VideoMPps*5 {
		t.Fatalf("turbo %.1f MP/s vs video %.2f MP/s: speed gap too small", res.TurboMPps, res.VideoMPps)
	}
}

func TestForecastMatchesPaperShape(t *testing.T) {
	res, out, err := Forecast(DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if out == "" {
		t.Fatal("no rendering")
	}
	// ARMAX roughly halves the FN rate (paper: 35.1% -> 17%).
	if res.ARMAX.FNRate() >= res.ARMA.FNRate()*0.7 {
		t.Fatalf("ARMAX FN %.1f%% not well below ARMA %.1f%%",
			res.ARMAX.FNRate()*100, res.ARMA.FNRate()*100)
	}
	if res.ARMA.FNRate() < 0.2 || res.ARMA.FNRate() > 0.55 {
		t.Fatalf("ARMA FN %.1f%%, want near the paper's 35%%", res.ARMA.FNRate()*100)
	}
	if res.ARMAX.FNRate() < 0.08 || res.ARMAX.FNRate() > 0.3 {
		t.Fatalf("ARMAX FN %.1f%%, want near the paper's 17%%", res.ARMAX.FNRate()*100)
	}
	// AIC selects the paper's attribute pair {touch, textures}.
	best := res.Ranking[0]
	if len(best.ExoAttrs) != 2 || best.ExoAttrs[0] != 0 || best.ExoAttrs[1] != 2 {
		t.Fatalf("AIC best subset = %v (%s), paper selects attributes 1 and 3", best.ExoAttrs, best.Name)
	}
}

func TestCloudComparisonShape(t *testing.T) {
	rows, out, err := CloudComparison(DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || out == "" {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.CloudFPS > 30 {
			t.Errorf("%s cloud FPS %.1f above the encoder cap", r.ID, r.CloudFPS)
		}
		if r.GBoosterFPS <= r.CloudFPS {
			t.Errorf("%s GBooster FPS %.1f <= cloud %.1f", r.ID, r.GBoosterFPS, r.CloudFPS)
		}
		// Paper: cloud response ~5x GBooster's.
		if r.CloudResp < r.GBoosterResp*3 {
			t.Errorf("%s cloud response %v not far above GBooster %v", r.ID, r.CloudResp, r.GBoosterResp)
		}
	}
}

func TestOverheadShape(t *testing.T) {
	res, out, err := Overhead(DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if out == "" {
		t.Fatal("no rendering")
	}
	if res.MemoryMB <= 0 || res.MemoryMB > pipeline48() {
		t.Fatalf("memory %.1f MB out of range", res.MemoryMB)
	}
	if res.OffloadCPU <= res.LocalCPU || res.OffloadCPU > 0.95 {
		t.Fatalf("CPU %.2f -> %.2f: overhead shape wrong", res.LocalCPU, res.OffloadCPU)
	}
}

// pipeline48 avoids importing pipeline solely for one constant in the
// bound check.
func pipeline48() float64 { return 48 }

func TestEncoderQuality(t *testing.T) {
	psnr, out, err := EncoderQuality(DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if out == "" || psnr < 28 {
		t.Fatalf("worst-frame PSNR %.1f dB too low", psnr)
	}
}
