package experiments

import (
	"testing"
	"time"

	"github.com/gbooster/gbooster/internal/core"
	"github.com/gbooster/gbooster/internal/rudp"
	"github.com/gbooster/gbooster/internal/workload"
)

// TestDataPlaneModelConsistency cross-checks the two halves of the
// reproduction: the real client/server runtime (actual bytes over the
// in-memory network) and the analytic session model (calibrated
// constants). The real uplink after cache+LZ4 must stay within the same
// order of magnitude as the profile's calibrated UplinkKBPerFrame, and
// the real turbo downlink must undercut the raw frame by a large
// factor — otherwise the simulator's traffic inputs are fiction.
func TestDataPlaneModelConsistency(t *testing.T) {
	for _, id := range []string{"G1", "G5"} {
		t.Run(id, func(t *testing.T) {
			prof, err := workload.ByID(id)
			if err != nil {
				t.Fatal(err)
			}
			game := workload.NewGame(prof, 1)
			client, err := core.NewClient(core.ClientConfig{
				Width: workload.StreamW, Height: workload.StreamH, Arrays: game.Arrays(),
			})
			if err != nil {
				t.Fatal(err)
			}
			defer func() { _ = client.Close() }()
			srv, err := core.NewServer(core.ServerConfig{Width: workload.StreamW, Height: workload.StreamH})
			if err != nil {
				t.Fatal(err)
			}
			pcC, pcS := rudp.NewMemPair(0, 3)
			connC := rudp.New(pcC, pcS.Addr(), rudp.DefaultOptions())
			connS := rudp.New(pcS, pcC.Addr(), rudp.DefaultOptions())
			go func() {
				_ = srv.ServeWithTimeout(connS, time.Second)
				_ = connS.Close()
			}()
			if err := client.AddService("dev", connC, 1000, 2*time.Millisecond); err != nil {
				t.Fatal(err)
			}
			sink := client.Sink()
			const frames = 20
			for f := 0; f < frames; f++ {
				for _, cmd := range game.NextFrame().Commands {
					sink(cmd)
				}
			}
			for f := 0; f < frames; f++ {
				if _, err := client.NextFrame(10 * time.Second); err != nil {
					t.Fatalf("frame %d: %v", f, err)
				}
			}
			st := client.Stats()
			realKB := float64(st.WireBytes) / frames / 1024
			calibrated := prof.UplinkKBPerFrame
			// Same order of magnitude: the synthetic scenes are lighter
			// than the commercial games the constants model, so allow a
			// wide but bounded band.
			if realKB > calibrated*4 || realKB < calibrated/20 {
				t.Fatalf("%s real uplink %.1f KB/frame vs calibrated %.1f KB/frame: model unmoored",
					id, realKB, calibrated)
			}
		})
	}
}
