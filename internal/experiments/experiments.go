// Package experiments regenerates every table and figure of the
// paper's evaluation (§II and §VII). Each experiment returns structured
// rows plus a text rendering; cmd/gbooster-bench prints them and the
// repository-root benchmarks wrap them for `go test -bench`.
//
// EXPERIMENTS.md records the paper-reported values next to what these
// drivers measure.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"github.com/gbooster/gbooster/internal/device"
	"github.com/gbooster/gbooster/internal/ifswitch"
	"github.com/gbooster/gbooster/internal/pipeline"
	"github.com/gbooster/gbooster/internal/thermal"
	"github.com/gbooster/gbooster/internal/workload"
)

// DefaultSeed keeps every experiment reproducible.
const DefaultSeed = 2017 // the paper's year

// SessionMinutes is the gameplay length of the FPS experiments (§VII-B)
// and EnergyMinutes the shorter cooled-phone protocol of §VII-C.
const (
	SessionMinutes = 15
	EnergyMinutes  = 3
)

// TableI renders the paper's Table I (game requirements vs phone
// capabilities).
func TableI() string {
	var b strings.Builder
	b.WriteString("Table I: Game Requirement versus Smartphone Capability\n")
	fmt.Fprintf(&b, "%-6s %-28s %-28s\n", "Year", "Requirement (CPU | GPU)", "Capability (CPU | GPU)")
	for _, r := range device.TableI() {
		req := fmt.Sprintf("%.1f GHz | %.1f GP/s", r.ReqCPUGHz, r.ReqGPUGPps)
		if r.ReqCPUCores > 1 {
			req = fmt.Sprintf("%.1f GHz %d-core | %.1f GP/s", r.ReqCPUGHz, r.ReqCPUCores, r.ReqGPUGPps)
		}
		cap := fmt.Sprintf("%.2f GHz %d-core | %.1f GP/s", r.DevCPUGHz, r.DevCPUCores, r.DevGPUGPps)
		fmt.Fprintf(&b, "%-6d %-28s %-28s\n", r.Year, req, cap)
	}
	b.WriteString("GPU requirement equals capability every year: the GPU is the bottleneck.\n")
	return b.String()
}

// Fig1 generates the GPU frequency/temperature trace of a passively
// cooled phone under a heavy game (LG G4 running G1).
func Fig1() ([]thermal.TracePoint, string, error) {
	trace, err := thermal.Trace(device.LGG4().GPU.Thermal, 1.0, 25*time.Minute, 5*time.Second)
	if err != nil {
		return nil, "", err
	}
	var b strings.Builder
	b.WriteString("Fig 1: GPU frequency trace (LG G4 + G1, sustained load)\n")
	b.WriteString("  t(min)  freq(MHz)  temp(C)\n")
	for i, p := range trace {
		if i%24 != 0 { // print every 2 minutes
			continue
		}
		fmt.Fprintf(&b, "  %6.1f  %9.0f  %7.1f\n", p.At.Minutes(), p.MHz, p.TempC)
	}
	first := trace[0]
	last := trace[len(trace)-1]
	fmt.Fprintf(&b, "Initial %v MHz; final %v MHz — thermal throttling cuts the frequency drastically.\n",
		first.MHz, last.MHz)
	return trace, b.String(), nil
}

// GameRow is one game's local-vs-offload comparison (Fig. 5).
type GameRow struct {
	ID             string
	Name           string
	LocalFPS       float64
	OffloadFPS     float64
	LocalStab      float64
	OffloadStab    float64
	LocalResp      time.Duration
	OffloadResp    time.Duration
	LocalEnergyJ   float64
	OffloadEnergyJ float64
}

// runPair executes the local and offloaded sessions for one workload.
func runPair(id, phone string, services []device.ServiceDevice, minutes int, seed uint64, policy ifswitch.Policy) (GameRow, error) {
	prof, err := workload.ByID(id)
	if err != nil {
		return GameRow{}, err
	}
	user, err := device.UserDeviceByName(phone)
	if err != nil {
		return GameRow{}, err
	}
	cfg := pipeline.Config{
		Profile:  prof,
		User:     user,
		Duration: time.Duration(minutes) * time.Minute,
		Seed:     seed,
	}
	local, err := pipeline.RunLocal(cfg)
	if err != nil {
		return GameRow{}, fmt.Errorf("%s local: %w", id, err)
	}
	cfg.Services = services
	cfg.Switching = policy
	off, err := pipeline.RunOffload(cfg)
	if err != nil {
		return GameRow{}, fmt.Errorf("%s offload: %w", id, err)
	}
	return GameRow{
		ID:             prof.ID,
		Name:           prof.Name,
		LocalFPS:       local.MedianFPS,
		OffloadFPS:     off.MedianFPS,
		LocalStab:      local.Stability,
		OffloadStab:    off.Stability,
		LocalResp:      local.AvgResponse,
		OffloadResp:    off.AvgResponse,
		LocalEnergyJ:   local.Energy.TotalJoules(),
		OffloadEnergyJ: off.Energy.TotalJoules(),
	}, nil
}

// Fig5 runs the §VII-B acceleration study on one phone: six games,
// local vs offloaded to the Nvidia Shield.
func Fig5(phone string, seed uint64) ([]GameRow, string, error) {
	services := []device.ServiceDevice{device.NvidiaShield()}
	var rows []GameRow
	for _, p := range workload.Games() {
		row, err := runPair(p.ID, phone, services, SessionMinutes, seed, ifswitch.PolicyPredictive)
		if err != nil {
			return nil, "", err
		}
		rows = append(rows, row)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 5: Application acceleration on %s (15-minute sessions, Shield service device)\n", phone)
	fmt.Fprintf(&b, "  %-4s %-18s %12s %12s %12s %12s %12s %12s\n",
		"Game", "Name", "local FPS", "off FPS", "local stab", "off stab", "local resp", "off resp")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-4s %-18s %12.1f %12.1f %11.0f%% %11.0f%% %12v %12v\n",
			r.ID, r.Name, r.LocalFPS, r.OffloadFPS, r.LocalStab*100, r.OffloadStab*100,
			r.LocalResp.Round(time.Millisecond), r.OffloadResp.Round(time.Millisecond))
	}
	return rows, b.String(), nil
}

// EnergyRow is one game's normalized energy (Fig. 6).
type EnergyRow struct {
	ID             string
	Phone          string
	NormSwitching  float64 // offload energy / local energy, switching on
	NormAlwaysWiFi float64 // same with the optimization disabled
}

// Fig6 runs the §VII-C power study: normalized offload energy for every
// game on both phones, with and without interface switching. Sessions
// follow the paper's protocol: short, cooled, repeatable scenes.
func Fig6(seed uint64) ([]EnergyRow, string, error) {
	services := []device.ServiceDevice{device.NvidiaShield()}
	var rows []EnergyRow
	for _, phone := range []string{"nexus5", "lgg5"} {
		for _, p := range workload.Games() {
			withSw, err := runPair(p.ID, phone, services, EnergyMinutes, seed, ifswitch.PolicyPredictive)
			if err != nil {
				return nil, "", err
			}
			without, err := runPair(p.ID, phone, services, EnergyMinutes, seed, ifswitch.PolicyAlwaysWiFi)
			if err != nil {
				return nil, "", err
			}
			rows = append(rows, EnergyRow{
				ID:             p.ID,
				Phone:          phone,
				NormSwitching:  withSw.OffloadEnergyJ / withSw.LocalEnergyJ,
				NormAlwaysWiFi: without.OffloadEnergyJ / without.LocalEnergyJ,
			})
		}
	}
	var b strings.Builder
	b.WriteString("Fig 6: Normalized energy consumption (offload / local, lower is better)\n")
	fmt.Fprintf(&b, "  %-8s %-4s %16s %16s\n", "Phone", "Game", "with switching", "always-WiFi")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-8s %-4s %15.0f%% %15.0f%%\n", r.Phone, r.ID, r.NormSwitching*100, r.NormAlwaysWiFi*100)
	}
	b.WriteString("Disabling the Bluetooth/WiFi switching raises system power across the board (Fig 6b).\n")
	return rows, b.String(), nil
}

// Fig7Row is one device-count sample of the multi-device experiment.
type Fig7Row struct {
	Devices   int
	MedianFPS float64
	Stability float64
}

// Fig7 measures G1 on the Nexus 5 with 0..5 service devices (0 = local
// execution; the first device is the Shield, the rest are Optiplex
// desktops, matching §VII-A's fleet).
func Fig7(seed uint64) ([]Fig7Row, string, error) {
	prof, err := workload.ByID("G1")
	if err != nil {
		return nil, "", err
	}
	cfg := pipeline.Config{
		Profile:  prof,
		User:     device.Nexus5(),
		Duration: 5 * time.Minute,
		Seed:     seed,
	}
	local, err := pipeline.RunLocal(cfg)
	if err != nil {
		return nil, "", err
	}
	rows := []Fig7Row{{Devices: 0, MedianFPS: local.MedianFPS, Stability: local.Stability}}
	for n := 1; n <= 5; n++ {
		svcs := []device.ServiceDevice{device.NvidiaShield()}
		for i := 1; i < n; i++ {
			svcs = append(svcs, device.OptiplexGTX750())
		}
		cfg.Services = svcs
		off, err := pipeline.RunOffload(cfg)
		if err != nil {
			return nil, "", err
		}
		rows = append(rows, Fig7Row{Devices: n, MedianFPS: off.MedianFPS, Stability: off.Stability})
	}
	var b strings.Builder
	b.WriteString("Fig 7: FPS metrics with multiple service devices (G1, Nexus 5)\n")
	b.WriteString("  devices  medianFPS  stability\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %7d  %9.1f  %8.0f%%\n", r.Devices, r.MedianFPS, r.Stability*100)
	}
	b.WriteString("FPS climbs with distributed execution, then plateaus (≤3 requests buffered).\n")
	return rows, b.String(), nil
}

// TableIII evaluates the three non-gaming applications.
func TableIII(seed uint64) ([]GameRow, string, error) {
	services := []device.ServiceDevice{device.NvidiaShield()}
	var rows []GameRow
	for _, p := range workload.Apps() {
		row, err := runPair(p.ID, "nexus5", services, EnergyMinutes, seed, ifswitch.PolicyPredictive)
		if err != nil {
			return nil, "", err
		}
		rows = append(rows, row)
	}
	var b strings.Builder
	b.WriteString("Table III: FPS boost and normalized energy for non-gaming applications\n")
	fmt.Fprintf(&b, "  %-4s %-16s %10s %18s\n", "App", "Name", "FPS boost", "normalized energy")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-4s %-16s %10.1f %17.1f%%\n",
			r.ID, r.Name, r.OffloadFPS-r.LocalFPS, r.OffloadEnergyJ/r.LocalEnergyJ*100)
	}
	return rows, b.String(), nil
}
