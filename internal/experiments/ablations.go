package experiments

import (
	"fmt"
	"strings"
	"time"

	"github.com/gbooster/gbooster/internal/cmdcache"
	"github.com/gbooster/gbooster/internal/core"
	"github.com/gbooster/gbooster/internal/device"
	"github.com/gbooster/gbooster/internal/gles"
	"github.com/gbooster/gbooster/internal/glwire"
	"github.com/gbooster/gbooster/internal/ifswitch"
	"github.com/gbooster/gbooster/internal/lz4"
	"github.com/gbooster/gbooster/internal/pipeline"
	"github.com/gbooster/gbooster/internal/turbo"
	"github.com/gbooster/gbooster/internal/workload"
)

// AblationResult collects the design-choice ablations DESIGN.md calls
// out: each row isolates one mechanism the paper introduces and
// measures the system with it removed or varied.
type AblationResult struct {
	// Uplink bytes per frame with each optimization stage toggled.
	UplinkNone    float64
	UplinkLZ4Only float64
	UplinkLRUOnly float64
	UplinkBoth    float64

	// Turbo quality sweep: bytes/frame and PSNR at three qualities.
	QualitySweep []QualityPoint

	// Switching-policy sweep for G1: offload energy and overload
	// windows per policy.
	Policies []PolicyPoint

	// In-flight buffer sweep (B = 1..4) for 3 service devices.
	InFlight []InFlightPoint
}

// QualityPoint is one turbo-quality sample.
type QualityPoint struct {
	Quality  int
	BytesPer float64
	PSNR     float64
}

// PolicyPoint is one switching-policy sample.
type PolicyPoint struct {
	Policy    string
	EnergyJ   float64
	Overloads int
}

// InFlightPoint is one buffer-depth sample.
type InFlightPoint struct {
	B         int
	MedianFPS float64
}

// Ablations runs every ablation and renders the summary.
func Ablations(seed uint64) (AblationResult, string, error) {
	var res AblationResult

	// --- Uplink pipeline stages (real data plane) ---
	prof, err := workload.ByID("G1")
	if err != nil {
		return res, "", err
	}
	const frames = 25
	type variant struct {
		useLRU, useLZ4 bool
		total          int64
	}
	variants := []*variant{
		{false, false, 0},
		{false, true, 0},
		{true, false, 0},
		{true, true, 0},
	}
	for _, v := range variants {
		game := workload.NewGame(prof, seed)
		enc := glwire.NewEncoder(game.Arrays())
		cache := cmdcache.New(0)
		for f := 0; f < frames; f++ {
			buf, err := enc.EncodeAll(nil, game.NextFrame().Commands)
			if err != nil {
				return res, "", err
			}
			out := buf
			if v.useLRU {
				recs, err := glwire.SplitRecords(buf)
				if err != nil {
					return res, "", err
				}
				out, _, err = cache.EncodeAll(nil, recs)
				if err != nil {
					return res, "", err
				}
			}
			if v.useLZ4 {
				out = lz4.Compress(nil, out)
			}
			v.total += int64(len(out))
		}
	}
	res.UplinkNone = float64(variants[0].total) / frames
	res.UplinkLZ4Only = float64(variants[1].total) / frames
	res.UplinkLRUOnly = float64(variants[2].total) / frames
	res.UplinkBoth = float64(variants[3].total) / frames

	// --- Turbo quality sweep (real frames) ---
	for _, q := range []int{30, 60, 90} {
		game := workload.NewGame(prof, seed)
		wenc := glwire.NewEncoder(game.Arrays())
		gpu := gles.NewGPU(workload.StreamW, workload.StreamH)
		tEnc := turbo.NewEncoder(workload.StreamW, workload.StreamH, q)
		tDec := turbo.NewDecoder(workload.StreamW, workload.StreamH, q)
		var dec glwire.Decoder
		var bytesTotal int64
		var worstPSNR = 1e18
		for f := 0; f < 10; f++ {
			buf, err := wenc.EncodeAll(nil, game.NextFrame().Commands)
			if err != nil {
				return res, "", err
			}
			cmds, err := dec.DecodeAll(buf)
			if err != nil {
				return res, "", err
			}
			if _, err := gpu.ExecuteAll(cmds); err != nil {
				return res, "", err
			}
			pkt, err := tEnc.Encode(gpu.FB.Pix, false)
			if err != nil {
				return res, "", err
			}
			bytesTotal += int64(len(pkt))
			got, err := tDec.Decode(pkt)
			if err != nil {
				return res, "", err
			}
			if p := turbo.PSNR(gpu.FB.Pix, got); p < worstPSNR {
				worstPSNR = p
			}
		}
		res.QualitySweep = append(res.QualitySweep, QualityPoint{
			Quality: q, BytesPer: float64(bytesTotal) / 10, PSNR: worstPSNR,
		})
	}

	// --- Switching-policy sweep ---
	for _, pol := range []ifswitch.Policy{ifswitch.PolicyPredictive, ifswitch.PolicyReactive, ifswitch.PolicyAlwaysWiFi} {
		cfg := pipeline.Config{
			Profile:   prof,
			User:      device.Nexus5(),
			Services:  []device.ServiceDevice{device.NvidiaShield()},
			Duration:  3 * time.Minute,
			Seed:      seed,
			Switching: pol,
		}
		r, err := pipeline.RunOffload(cfg)
		if err != nil {
			return res, "", err
		}
		res.Policies = append(res.Policies, PolicyPoint{
			Policy: pol.String(), EnergyJ: r.Energy.TotalJoules(), Overloads: r.Overloads,
		})
	}

	// --- In-flight buffer depth ---
	for b := 1; b <= 4; b++ {
		cfg := pipeline.Config{
			Profile: prof,
			User:    device.Nexus5(),
			Services: []device.ServiceDevice{
				device.NvidiaShield(), device.OptiplexGTX750(), device.OptiplexGTX750(),
			},
			Duration: 3 * time.Minute,
			Seed:     seed,
			InFlight: b,
		}
		r, err := pipeline.RunOffload(cfg)
		if err != nil {
			return res, "", err
		}
		res.InFlight = append(res.InFlight, InFlightPoint{B: b, MedianFPS: r.MedianFPS})
	}

	var sb strings.Builder
	sb.WriteString("Ablations: each of GBooster's mechanisms, removed or varied\n")
	fmt.Fprintf(&sb, "  uplink KB/frame: none %.1f | LZ4 only %.1f | LRU only %.1f | LRU+LZ4 %.1f\n",
		res.UplinkNone/1024, res.UplinkLZ4Only/1024, res.UplinkLRUOnly/1024, res.UplinkBoth/1024)
	sb.WriteString("  turbo quality sweep (bytes/frame, worst PSNR):\n")
	for _, q := range res.QualitySweep {
		fmt.Fprintf(&sb, "    q=%-3d %8.1f KB  %6.1f dB\n", q.Quality, q.BytesPer/1024, q.PSNR)
	}
	sb.WriteString("  switching policy (G1, 3 min): energy / overload windows:\n")
	for _, p := range res.Policies {
		fmt.Fprintf(&sb, "    %-11s %8.0f J  %4d overloads\n", p.Policy, p.EnergyJ, p.Overloads)
	}
	sb.WriteString("  in-flight request buffer B (3 devices):\n")
	for _, p := range res.InFlight {
		fmt.Fprintf(&sb, "    B=%d  %6.1f FPS\n", p.B, p.MedianFPS)
	}
	return res, sb.String(), nil
}

// MultiUserResult is the §VIII future-work study: FCFS vs priority
// scheduling on a shared service device.
type MultiUserResult struct {
	// ChessServedBeforeShooter counts backlogged low-priority requests
	// the GPU executed before one time-critical request, per policy.
	FCFSServedFirst     int64
	PriorityServedFirst int64
}

// MultiUser measures how many queued chess-game requests execute ahead
// of a fast-paced shooter's request under each scheduling policy.
func MultiUser(seed uint64) (MultiUserResult, string, error) {
	run := func(policy core.SchedPolicy) (int64, error) {
		m, err := core.NewMultiServer(core.ServerConfig{Width: 96, Height: 64}, policy)
		if err != nil {
			return 0, err
		}
		defer m.Close()
		if err := m.AddClient("chess", 0); err != nil {
			return 0, err
		}
		if err := m.AddClient("shooter", 10); err != nil {
			return 0, err
		}
		chessMsgs, err := buildBatches("G4", seed, 120)
		if err != nil {
			return 0, err
		}
		shooterMsgs, err := buildBatches("G2", seed+1, 1)
		if err != nil {
			return 0, err
		}
		var done []<-chan error
		for _, msg := range chessMsgs {
			ch, err := m.SubmitAsync("chess", msg)
			if err != nil {
				return 0, err
			}
			done = append(done, ch)
		}
		if _, err := m.Submit("shooter", shooterMsgs[0]); err != nil {
			return 0, err
		}
		served := m.Stats().PerClient["chess"]
		for _, ch := range done {
			if err := <-ch; err != nil {
				return 0, err
			}
		}
		return served, nil
	}
	fcfs, err := run(core.SchedFCFS)
	if err != nil {
		return MultiUserResult{}, "", err
	}
	prio, err := run(core.SchedPriority)
	if err != nil {
		return MultiUserResult{}, "", err
	}
	res := MultiUserResult{FCFSServedFirst: fcfs, PriorityServedFirst: prio}
	var b strings.Builder
	b.WriteString("Multiple users on one service device (§VIII future work, implemented)\n")
	fmt.Fprintf(&b, "  chess requests executed before the shooter's: FCFS %d, priority %d\n", fcfs, prio)
	b.WriteString("  Priority scheduling lets the time-critical game overtake the backlog.\n")
	return res, b.String(), nil
}

// buildBatches serializes n frames of a workload into frame-batch
// messages through a fresh client-side cache.
func buildBatches(id string, seed uint64, n int) ([][]byte, error) {
	prof, err := workload.ByID(id)
	if err != nil {
		return nil, err
	}
	game := workload.NewGame(prof, seed)
	enc := glwire.NewEncoder(game.Arrays())
	cache := cmdcache.New(0)
	msgs := make([][]byte, 0, n)
	for f := 0; f < n; f++ {
		buf, err := enc.EncodeAll(nil, game.NextFrame().Commands)
		if err != nil {
			return nil, err
		}
		recs, err := glwire.SplitRecords(buf)
		if err != nil {
			return nil, err
		}
		wire, _, err := cache.EncodeAll(nil, recs)
		if err != nil {
			return nil, err
		}
		msgs = append(msgs, core.FrameBatchMsg(uint64(f), lz4.Compress(nil, wire)))
	}
	return msgs, nil
}
