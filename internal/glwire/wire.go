// Package glwire serializes GLES command streams for network
// transmission (paper §IV-B). It handles the one command whose payload
// size is unknown at intercept time — glVertexAttribPointer with a
// client-side array — by deferring its transmission until a subsequent
// draw call reveals how many vertices the pointer must cover. The
// deferred command is flushed immediately before the draw, which the
// paper observed preserves rendering results.
package glwire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"github.com/gbooster/gbooster/internal/gles"
)

// Codec errors.
var (
	ErrShortRecord  = errors.New("glwire: truncated record")
	ErrBadRecord    = errors.New("glwire: malformed record")
	ErrNoResolver   = errors.New("glwire: deferred client array with no resolver")
	ErrUnknownArray = errors.New("glwire: unknown client array")
	ErrRecordTooBig = errors.New("glwire: record exceeds size limit")
)

// MaxRecordSize bounds a single encoded command. It comfortably holds
// the largest real payloads (full-screen texture uploads) while letting
// the decoder reject corrupt length prefixes before allocating.
const MaxRecordSize = 64 << 20

// ClientArrays resolves deferred client-side vertex arrays. The hook
// layer registers each array the application hands to
// glVertexAttribPointer; the encoder reads the needed prefix when a
// draw call resolves the extent.
type ClientArrays interface {
	// ClientArray returns the backing bytes of the array identified by
	// ptrID. The encoder never retains the returned slice.
	ClientArray(ptrID uint64) ([]byte, bool)
}

// ClientArrayTable is the standard ClientArrays implementation: a
// registry the wrapper library fills at intercept time.
type ClientArrayTable struct {
	arrays map[uint64][]byte
	nextID uint64
}

// NewClientArrayTable returns an empty registry.
func NewClientArrayTable() *ClientArrayTable {
	return &ClientArrayTable{arrays: make(map[uint64][]byte)}
}

// Register stores data and returns the id to carry in the deferred
// command. The table references (not copies) data, matching how a real
// GL client array stays owned by the application until draw time.
func (t *ClientArrayTable) Register(data []byte) uint64 {
	t.nextID++
	t.arrays[t.nextID] = data
	return t.nextID
}

// Update replaces the bytes for an existing id.
func (t *ClientArrayTable) Update(id uint64, data []byte) { t.arrays[id] = data }

// ClientArray implements ClientArrays.
func (t *ClientArrayTable) ClientArray(id uint64) ([]byte, bool) {
	d, ok := t.arrays[id]
	return d, ok
}

// pendingAttrib is a deferred glVertexAttribPointer awaiting its extent.
type pendingAttrib struct {
	cmd gles.Command // original command (DataLen == NoDataLen)
}

// Encoder serializes commands into length-delimited records. It owns
// the deferral state: at most one pending pointer per attribute index
// (a later re-point replaces the earlier one, exactly like GL state).
type Encoder struct {
	arrays  ClientArrays
	pending map[int32]pendingAttrib
	order   []int32 // attribute indices in first-deferral order

	// Stats accumulate encoded volume for the traffic experiments.
	Stats EncoderStats
}

// EncoderStats counts encoder activity.
type EncoderStats struct {
	Commands      int
	Records       int
	Bytes         int64
	DeferredSent  int
	DeferredBytes int64
}

// NewEncoder returns an encoder resolving deferred arrays through
// arrays (may be nil when the stream contains no client-array
// pointers).
func NewEncoder(arrays ClientArrays) *Encoder {
	return &Encoder{arrays: arrays, pending: make(map[int32]pendingAttrib)}
}

// Encode appends the wire records for cmd to dst and returns the
// extended slice. A deferred glVertexAttribPointer produces no bytes
// until a draw call arrives; the draw then emits the resolved pointer
// records first, followed by the draw itself (§IV-B reordering).
func (e *Encoder) Encode(dst []byte, cmd gles.Command) ([]byte, error) {
	e.Stats.Commands++
	if cmd.Op == gles.OpVertexAttribPointer && cmd.DataLen == gles.NoDataLen {
		idx := cmd.Int(0)
		if _, exists := e.pending[idx]; !exists {
			e.order = append(e.order, idx)
		}
		e.pending[idx] = pendingAttrib{cmd: cmd.Clone()}
		return dst, nil
	}
	vertexDraw := cmd.Op == gles.OpDrawArrays || cmd.Op == gles.OpDrawElements
	if vertexDraw && len(e.pending) > 0 {
		var err error
		dst, err = e.flushPending(dst, cmd)
		if err != nil {
			return dst, err
		}
	}
	return e.appendRecord(dst, cmd)
}

// EncodeAll encodes a whole frame of commands.
func (e *Encoder) EncodeAll(dst []byte, cmds []gles.Command) ([]byte, error) {
	var err error
	for _, cmd := range cmds {
		if dst, err = e.Encode(dst, cmd); err != nil {
			return dst, fmt.Errorf("encode %v: %w", cmd.Op, err)
		}
	}
	return dst, nil
}

// PendingDeferred reports how many attribute pointers are still waiting
// for a draw call to reveal their extent.
func (e *Encoder) PendingDeferred() int { return len(e.pending) }

// flushPending resolves every deferred pointer against the incoming
// draw and emits them in first-deferral order, before the draw.
func (e *Encoder) flushPending(dst []byte, draw gles.Command) ([]byte, error) {
	needed, boundKnown := vertexExtent(draw)
	for _, idx := range e.order {
		p, ok := e.pending[idx]
		if !ok {
			continue
		}
		resolved, err := e.resolve(p.cmd, needed, boundKnown)
		if err != nil {
			return dst, fmt.Errorf("attrib %d: %w", idx, err)
		}
		if dst, err = e.appendRecord(dst, resolved); err != nil {
			return dst, err
		}
		e.Stats.DeferredSent++
		e.Stats.DeferredBytes += int64(len(resolved.Data))
	}
	e.pending = make(map[int32]pendingAttrib)
	e.order = e.order[:0]
	return dst, nil
}

// resolve turns a deferred pointer into a fully materialized command
// carrying exactly the bytes the draw needs.
func (e *Encoder) resolve(cmd gles.Command, vertices int, boundKnown bool) (gles.Command, error) {
	if e.arrays == nil {
		return cmd, ErrNoResolver
	}
	src, ok := e.arrays.ClientArray(cmd.ClientPtr)
	if !ok {
		return cmd, fmt.Errorf("%w: id %d", ErrUnknownArray, cmd.ClientPtr)
	}
	n := len(src)
	if boundKnown {
		size, stride := int(cmd.Int(1)), int(cmd.Int(4))
		vertexBytes := size * 4
		if stride == 0 {
			stride = vertexBytes
		}
		if vertices > 0 {
			if want := (vertices-1)*stride + vertexBytes; want < n {
				n = want
			}
		} else {
			n = 0
		}
	}
	out := cmd.Clone()
	out.Data = append([]byte(nil), src[:n]...)
	out.DataLen = int32(n)
	out.ClientPtr = 0
	return out, nil
}

// vertexExtent computes how many vertices a draw call touches from its
// arguments alone. DrawElements sourcing indices from a bound VBO gives
// no client-side bound; the encoder then ships the whole array
// (boundKnown = false).
func vertexExtent(draw gles.Command) (vertices int, boundKnown bool) {
	switch draw.Op {
	case gles.OpDrawArrays:
		return int(draw.Int(1)) + int(draw.Int(2)), true
	case gles.OpDrawElements:
		if len(draw.Data) == 0 {
			return 0, false // indices live in a VBO on the server
		}
		maxIdx := -1
		for _, ix := range gles.BytesToU16(draw.Data) {
			if int(ix) > maxIdx {
				maxIdx = int(ix)
			}
		}
		return maxIdx + 1, true
	default: // OpClear and friends touch no vertex data
		return 0, true
	}
}

// Record layout:
//
//	uvarint totalLen   (bytes after this prefix)
//	uint16  op
//	uvarint nInts,  then nInts zig-zag varints
//	uvarint nFloats, then nFloats little-endian float32
//	uvarint dataLen, then dataLen payload bytes
func (e *Encoder) appendRecord(dst []byte, cmd gles.Command) ([]byte, error) {
	if cmd.DataLen == gles.NoDataLen {
		return dst, fmt.Errorf("%w: op %v unresolved at serialization", ErrBadRecord, cmd.Op)
	}
	body := appendBody(nil, cmd)
	if len(body) > MaxRecordSize {
		return dst, fmt.Errorf("%w: %d bytes", ErrRecordTooBig, len(body))
	}
	dst = binary.AppendUvarint(dst, uint64(len(body)))
	dst = append(dst, body...)
	e.Stats.Records++
	e.Stats.Bytes += int64(len(body)) + uvarintLen(uint64(len(body)))
	return dst, nil
}

func appendBody(dst []byte, cmd gles.Command) []byte {
	dst = binary.LittleEndian.AppendUint16(dst, uint16(cmd.Op))
	dst = binary.AppendUvarint(dst, uint64(len(cmd.Ints)))
	for _, v := range cmd.Ints {
		dst = binary.AppendVarint(dst, int64(v))
	}
	dst = binary.AppendUvarint(dst, uint64(len(cmd.Floats)))
	for _, v := range cmd.Floats {
		dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(v))
	}
	dst = binary.AppendUvarint(dst, uint64(len(cmd.Data)))
	dst = append(dst, cmd.Data...)
	return dst
}

func uvarintLen(v uint64) int64 {
	var buf [binary.MaxVarintLen64]byte
	return int64(binary.PutUvarint(buf[:], v))
}
