package glwire

import "github.com/gbooster/gbooster/internal/gles"

// validCommands is a representative stream for corruption tests.
func validCommands() []gles.Command {
	var m [16]float32
	for i := range m {
		m[i] = float32(i)
	}
	return []gles.Command{
		gles.CmdClearColor(0.1, 0.2, 0.3, 1),
		gles.CmdViewport(0, 0, 640, 480),
		gles.CmdGenTexture(1),
		gles.CmdBindTexture(gles.TexTarget2D, 1),
		gles.CmdTexImage2D(gles.TexTarget2D, 0, 4, 4, make([]byte, 64)),
		gles.CmdUniformMatrix4fv(gles.LocMVP, m),
		gles.CmdVertexAttribPointerResolved(gles.LocPosition, 2, 0, gles.FloatsToBytes([]float32{0, 0, 1, 0, 0, 1})),
		gles.CmdEnableVertexAttribArray(gles.LocPosition),
		gles.CmdDrawArrays(gles.DrawModeTriangles, 0, 3),
		gles.CmdSwapBuffers(),
	}
}
