package glwire

import (
	"testing"
	"testing/quick"

	"github.com/gbooster/gbooster/internal/sim"
)

func TestDecodeNeverPanicsOnArbitraryBytes(t *testing.T) {
	check := func(data []byte) bool {
		var dec Decoder
		// Errors are fine; panics are not (the deferred recover would
		// surface as a quick.Check failure via re-panic).
		_, _, _ = dec.Decode(data)
		_, _ = dec.DecodeAll(data)
		_, _ = SplitRecords(data)
		_, _ = PeekOp(data)
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeNeverPanicsOnCorruptedValidRecords(t *testing.T) {
	// Take valid encodings and flip bytes: decoders must error or
	// succeed, never panic, and never over-read.
	rng := sim.NewRNG(31)
	enc := NewEncoder(nil)
	base, err := enc.EncodeAll(nil, validCommands())
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 2000; trial++ {
		buf := append([]byte(nil), base...)
		for flips := 0; flips < 1+rng.Intn(4); flips++ {
			buf[rng.Intn(len(buf))] ^= byte(1 << rng.Intn(8))
		}
		var dec Decoder
		_, _ = dec.DecodeAll(buf)
	}
}

func TestDecodeNeverPanicsOnTruncations(t *testing.T) {
	enc := NewEncoder(nil)
	base, err := enc.EncodeAll(nil, validCommands())
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut <= len(base); cut++ {
		var dec Decoder
		_, _ = dec.DecodeAll(base[:cut])
	}
}
