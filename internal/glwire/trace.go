package glwire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"github.com/gbooster/gbooster/internal/gles"
)

// Trace files capture an intercepted command stream for offline replay
// (the apitrace/glretrace workflow, applied to GBooster's wire format).
// Layout: a 8-byte magic header, then per frame a uvarint byte length
// followed by that frame's concatenated records.

var _traceMagic = [8]byte{'G', 'B', 'T', 'R', 'A', 'C', 'E', 1}

// Trace errors.
var (
	ErrBadTrace = errors.New("glwire: malformed trace")
)

// MaxTraceFrame bounds one frame's encoded size.
const MaxTraceFrame = 256 << 20

// TraceWriter streams frames of commands to a writer.
type TraceWriter struct {
	w      *bufio.Writer
	enc    *Encoder
	frames int
	bytes  int64
}

// NewTraceWriter writes the header and returns a writer whose deferred
// client arrays resolve through arrays (may be nil).
func NewTraceWriter(w io.Writer, arrays ClientArrays) (*TraceWriter, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(_traceMagic[:]); err != nil {
		return nil, fmt.Errorf("glwire: trace header: %w", err)
	}
	return &TraceWriter{w: bw, enc: NewEncoder(arrays)}, nil
}

// WriteFrame serializes and appends one frame of commands.
func (t *TraceWriter) WriteFrame(cmds []gles.Command) error {
	buf, err := t.enc.EncodeAll(nil, cmds)
	if err != nil {
		return fmt.Errorf("glwire: trace frame %d: %w", t.frames, err)
	}
	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], uint64(len(buf)))
	if _, err := t.w.Write(lenBuf[:n]); err != nil {
		return fmt.Errorf("glwire: trace write: %w", err)
	}
	if _, err := t.w.Write(buf); err != nil {
		return fmt.Errorf("glwire: trace write: %w", err)
	}
	t.frames++
	t.bytes += int64(n + len(buf))
	return nil
}

// Flush drains buffered output. Call before closing the underlying
// file.
func (t *TraceWriter) Flush() error { return t.w.Flush() }

// Stats reports frames and payload bytes written (header excluded).
func (t *TraceWriter) Stats() (frames int, bytes int64) { return t.frames, t.bytes }

// TraceReader iterates the frames of a trace.
type TraceReader struct {
	r      *bufio.Reader
	dec    Decoder
	frames int
}

// NewTraceReader validates the header and returns a reader.
func NewTraceReader(r io.Reader) (*TraceReader, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrBadTrace, err)
	}
	if magic != _traceMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadTrace, magic[:])
	}
	return &TraceReader{r: br}, nil
}

// NextFrame returns the next frame's commands, or io.EOF at the end.
func (t *TraceReader) NextFrame() ([]gles.Command, error) {
	frameLen, err := binary.ReadUvarint(t.r)
	if err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("%w: frame %d length: %v", ErrBadTrace, t.frames, err)
	}
	if frameLen > MaxTraceFrame {
		return nil, fmt.Errorf("%w: frame %d is %d bytes", ErrBadTrace, t.frames, frameLen)
	}
	buf := make([]byte, frameLen)
	if _, err := io.ReadFull(t.r, buf); err != nil {
		return nil, fmt.Errorf("%w: frame %d body: %v", ErrBadTrace, t.frames, err)
	}
	cmds, err := t.dec.DecodeAll(buf)
	if err != nil {
		return nil, fmt.Errorf("%w: frame %d: %v", ErrBadTrace, t.frames, err)
	}
	t.frames++
	return cmds, nil
}

// Frames reports how many frames have been read so far.
func (t *TraceReader) Frames() int { return t.frames }
