package glwire

import (
	"encoding/binary"
	"fmt"
	"math"

	"github.com/gbooster/gbooster/internal/gles"
)

// Decoder parses length-delimited command records produced by Encoder.
// The zero value is ready to use.
type Decoder struct {
	// Stats accumulate decoded volume.
	Stats DecoderStats

	// Argument scratch for DecodeNoCopy, reused across calls.
	ints   []int32
	floats []float32
}

// DecoderStats counts decoder activity.
type DecoderStats struct {
	Records int
	Bytes   int64
}

// Decode parses one record from buf, returning the command and the
// number of bytes consumed.
func (d *Decoder) Decode(buf []byte) (gles.Command, int, error) {
	bodyLen, n := binary.Uvarint(buf)
	if n <= 0 {
		return gles.Command{}, 0, ErrShortRecord
	}
	if bodyLen > MaxRecordSize {
		return gles.Command{}, 0, fmt.Errorf("%w: body %d", ErrRecordTooBig, bodyLen)
	}
	if uint64(len(buf)-n) < bodyLen {
		return gles.Command{}, 0, fmt.Errorf("%w: need %d body bytes, have %d", ErrShortRecord, bodyLen, len(buf)-n)
	}
	body := buf[n : n+int(bodyLen)]
	cmd, err := parseBody(body, nil)
	if err != nil {
		return gles.Command{}, 0, err
	}
	total := n + int(bodyLen)
	d.Stats.Records++
	d.Stats.Bytes += int64(total)
	return cmd, total, nil
}

// DecodeNoCopy is Decode with decoder-owned argument storage: the
// returned command's Ints and Floats alias scratch reused by the next
// DecodeNoCopy call, and its Data aliases buf itself. It exists for the
// zero-allocation serve path and is safe whenever the command is fully
// consumed before the next call — gles.GPU.Execute copies anything the
// GL context retains, so execute-immediately consumers qualify.
func (d *Decoder) DecodeNoCopy(buf []byte) (gles.Command, int, error) {
	bodyLen, n := binary.Uvarint(buf)
	if n <= 0 {
		return gles.Command{}, 0, ErrShortRecord
	}
	if bodyLen > MaxRecordSize {
		return gles.Command{}, 0, fmt.Errorf("%w: body %d", ErrRecordTooBig, bodyLen)
	}
	if uint64(len(buf)-n) < bodyLen {
		return gles.Command{}, 0, fmt.Errorf("%w: need %d body bytes, have %d", ErrShortRecord, bodyLen, len(buf)-n)
	}
	body := buf[n : n+int(bodyLen)]
	cmd, err := parseBody(body, d)
	if err != nil {
		return gles.Command{}, 0, err
	}
	total := n + int(bodyLen)
	d.Stats.Records++
	d.Stats.Bytes += int64(total)
	return cmd, total, nil
}

// DecodeAll parses every record in buf. It fails on trailing garbage.
func (d *Decoder) DecodeAll(buf []byte) ([]gles.Command, error) {
	var cmds []gles.Command
	for len(buf) > 0 {
		cmd, n, err := d.Decode(buf)
		if err != nil {
			return cmds, fmt.Errorf("record %d: %w", len(cmds), err)
		}
		cmds = append(cmds, cmd)
		buf = buf[n:]
	}
	return cmds, nil
}

// parseBody decodes one record body. With a nil decoder every argument
// slice is freshly allocated (the caller may retain them); with a
// decoder, Ints/Floats live in its reusable scratch and Data aliases
// body — valid only until the next scratch-backed parse.
func parseBody(body []byte, d *Decoder) (gles.Command, error) {
	var cmd gles.Command
	if len(body) < 2 {
		return cmd, ErrShortRecord
	}
	cmd.Op = gles.Op(binary.LittleEndian.Uint16(body))
	if !cmd.Op.Valid() {
		return cmd, fmt.Errorf("%w: op %d", ErrBadRecord, uint16(cmd.Op))
	}
	p := body[2:]

	nInts, n := binary.Uvarint(p)
	if n <= 0 || nInts > uint64(len(p)) {
		return cmd, fmt.Errorf("%w: int count", ErrBadRecord)
	}
	p = p[n:]
	if nInts > 0 {
		if d != nil {
			if cap(d.ints) < int(nInts) {
				d.ints = make([]int32, nInts)
			}
			cmd.Ints = d.ints[:nInts]
		} else {
			cmd.Ints = make([]int32, nInts)
		}
		for i := range cmd.Ints {
			v, n := binary.Varint(p)
			if n <= 0 {
				return cmd, fmt.Errorf("%w: int %d", ErrShortRecord, i)
			}
			if v < math.MinInt32 || v > math.MaxInt32 {
				return cmd, fmt.Errorf("%w: int %d overflows int32", ErrBadRecord, v)
			}
			cmd.Ints[i] = int32(v)
			p = p[n:]
		}
	}

	nFloats, n := binary.Uvarint(p)
	if n <= 0 || nFloats > uint64(MaxRecordSize/4) || nFloats*4 > uint64(len(p)-n) {
		return cmd, fmt.Errorf("%w: float count", ErrBadRecord)
	}
	p = p[n:]
	if nFloats > 0 {
		if d != nil {
			if cap(d.floats) < int(nFloats) {
				d.floats = make([]float32, nFloats)
			}
			cmd.Floats = d.floats[:nFloats]
		} else {
			cmd.Floats = make([]float32, nFloats)
		}
		for i := range cmd.Floats {
			cmd.Floats[i] = math.Float32frombits(binary.LittleEndian.Uint32(p[i*4:]))
		}
		p = p[nFloats*4:]
	}

	dataLen, n := binary.Uvarint(p)
	if n <= 0 || dataLen > uint64(len(p)-n) {
		return cmd, fmt.Errorf("%w: data length", ErrBadRecord)
	}
	p = p[n:]
	if dataLen > 0 {
		if d != nil {
			cmd.Data = p[:dataLen:dataLen]
		} else {
			cmd.Data = append([]byte(nil), p[:dataLen]...)
		}
	}
	cmd.DataLen = int32(dataLen)
	if rest := p[dataLen:]; len(rest) != 0 {
		return cmd, fmt.Errorf("%w: %d trailing bytes", ErrBadRecord, len(rest))
	}
	return cmd, nil
}

// PeekOp reads a record's operation without parsing its body — the
// state-replication path classifies records this way.
func PeekOp(record []byte) (gles.Op, error) {
	bodyLen, n := binary.Uvarint(record)
	if n <= 0 || bodyLen < 2 || uint64(len(record)-n) < bodyLen {
		return 0, ErrShortRecord
	}
	op := gles.Op(binary.LittleEndian.Uint16(record[n:]))
	if !op.Valid() {
		return 0, fmt.Errorf("%w: op %d", ErrBadRecord, uint16(op))
	}
	return op, nil
}

// SplitRecords slices buf into individual encoded records without
// parsing their bodies. The redundancy-elimination layer (cmdcache)
// operates on these raw records.
func SplitRecords(buf []byte) ([][]byte, error) {
	recs, err := AppendSplitRecords(nil, buf)
	if err != nil {
		return nil, err
	}
	return recs, nil
}

// AppendSplitRecords is SplitRecords appending into a caller-owned
// slice, so per-command hot paths can reuse the slice header across
// calls. On error the records split so far are returned with it.
func AppendSplitRecords(recs [][]byte, buf []byte) ([][]byte, error) {
	for off := 0; off < len(buf); {
		bodyLen, n := binary.Uvarint(buf[off:])
		if n <= 0 {
			return recs, ErrShortRecord
		}
		if bodyLen > MaxRecordSize {
			return recs, fmt.Errorf("%w: body %d", ErrRecordTooBig, bodyLen)
		}
		end := off + n + int(bodyLen)
		if end > len(buf) {
			return recs, fmt.Errorf("%w: record at %d overruns buffer", ErrShortRecord, off)
		}
		recs = append(recs, buf[off:end])
		off = end
	}
	return recs, nil
}
