package glwire

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"github.com/gbooster/gbooster/internal/gles"
)

func TestTraceRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tw, err := NewTraceWriter(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	frames := [][]gles.Command{
		{gles.CmdClearColor(1, 0, 0, 1), gles.CmdClear(gles.ClearColorBit), gles.CmdSwapBuffers()},
		{gles.CmdUseProgram(0), gles.CmdSwapBuffers()},
		validCommands(),
	}
	for _, f := range frames {
		if err := tw.WriteFrame(f); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	n, bytesOut := tw.Stats()
	if n != 3 || bytesOut == 0 {
		t.Fatalf("writer stats %d/%d", n, bytesOut)
	}

	tr, err := NewTraceReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range frames {
		got, err := tr.NextFrame()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		// The writer resolves deferred pointers, so counts can differ
		// only when frames carried deferred commands (validCommands has
		// none outstanding).
		if len(got) != len(want) {
			t.Fatalf("frame %d: %d commands, want %d", i, len(got), len(want))
		}
		for k := range got {
			if got[k].Op != want[k].Op {
				t.Fatalf("frame %d cmd %d op %v, want %v", i, k, got[k].Op, want[k].Op)
			}
		}
	}
	if _, err := tr.NextFrame(); err != io.EOF {
		t.Fatalf("after last frame err = %v, want EOF", err)
	}
	if tr.Frames() != 3 {
		t.Fatalf("reader frames = %d", tr.Frames())
	}
}

func TestTraceReplayOnGPU(t *testing.T) {
	// A recorded trace must replay to the same framebuffer as direct
	// execution.
	drawable := append([]gles.Command{
		gles.CmdCreateProgram(1),
		gles.CmdUseProgram(1),
	}, validCommands()...)
	var buf bytes.Buffer
	tw, err := NewTraceWriter(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := tw.WriteFrame(drawable); err != nil {
		t.Fatal(err)
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}

	direct := gles.NewGPU(32, 32)
	enc := NewEncoder(nil)
	var dec Decoder
	raw, err := enc.EncodeAll(nil, drawable)
	if err != nil {
		t.Fatal(err)
	}
	cmds, err := dec.DecodeAll(raw)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := direct.ExecuteAll(cmds); err != nil {
		t.Fatal(err)
	}

	tr, err := NewTraceReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	replayed := gles.NewGPU(32, 32)
	for {
		frame, err := tr.NextFrame()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if _, err := replayed.ExecuteAll(frame); err != nil {
			t.Fatal(err)
		}
	}
	for i := range direct.FB.Pix {
		if direct.FB.Pix[i] != replayed.FB.Pix[i] {
			t.Fatalf("replayed framebuffer differs at byte %d", i)
		}
	}
}

func TestTraceErrors(t *testing.T) {
	if _, err := NewTraceReader(bytes.NewReader(nil)); !errors.Is(err, ErrBadTrace) {
		t.Fatalf("empty trace error = %v", err)
	}
	if _, err := NewTraceReader(bytes.NewReader([]byte("NOTATRACE"))); !errors.Is(err, ErrBadTrace) {
		t.Fatalf("bad magic error = %v", err)
	}
	// Truncated body.
	var buf bytes.Buffer
	tw, err := NewTraceWriter(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := tw.WriteFrame(validCommands()); err != nil {
		t.Fatal(err)
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	tr, err := NewTraceReader(bytes.NewReader(full[:len(full)-4]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.NextFrame(); !errors.Is(err, ErrBadTrace) {
		t.Fatalf("truncated frame error = %v", err)
	}
}
