package glwire

import (
	"errors"
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/gbooster/gbooster/internal/gles"
)

func roundTrip(t *testing.T, cmds []gles.Command) []gles.Command {
	t.Helper()
	enc := NewEncoder(nil)
	buf, err := enc.EncodeAll(nil, cmds)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	var dec Decoder
	out, err := dec.DecodeAll(buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	return out
}

func commandsEqual(a, b gles.Command) bool {
	if a.Op != b.Op || len(a.Ints) != len(b.Ints) || len(a.Floats) != len(b.Floats) || len(a.Data) != len(b.Data) {
		return false
	}
	for i := range a.Ints {
		if a.Ints[i] != b.Ints[i] {
			return false
		}
	}
	for i := range a.Floats {
		if math.Float32bits(a.Floats[i]) != math.Float32bits(b.Floats[i]) {
			return false
		}
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			return false
		}
	}
	return true
}

func TestRoundTripBasicCommands(t *testing.T) {
	cmds := []gles.Command{
		gles.CmdClearColor(0.25, 0.5, 0.75, 1),
		gles.CmdClear(gles.ClearColorBit | gles.ClearDepthBit),
		gles.CmdViewport(0, 0, 640, 480),
		gles.CmdEnable(gles.CapBlend),
		gles.CmdBlendFunc(gles.BlendSrcAlpha, gles.BlendOneMinusSrcA),
		gles.CmdGenTexture(3),
		gles.CmdBindTexture(gles.TexTarget2D, 3),
		gles.CmdTexImage2D(gles.TexTarget2D, 0, 2, 2, make([]byte, 16)),
		gles.CmdUseProgram(1),
		gles.CmdUniform4f(gles.LocTint, -1, 0, 0.5, 1),
		gles.CmdDrawArrays(gles.DrawModeTriangles, 0, 6),
		gles.CmdSwapBuffers(),
	}
	out := roundTrip(t, cmds)
	if len(out) != len(cmds) {
		t.Fatalf("decoded %d commands, want %d", len(out), len(cmds))
	}
	for i := range cmds {
		if !commandsEqual(cmds[i], out[i]) {
			t.Errorf("command %d mismatch: sent %v, got %v", i, cmds[i], out[i])
		}
	}
}

func TestRoundTripMatrixUniform(t *testing.T) {
	var m [16]float32
	for i := range m {
		m[i] = float32(i) * 0.5
	}
	out := roundTrip(t, []gles.Command{gles.CmdUniformMatrix4fv(gles.LocMVP, m)})
	if len(out[0].Floats) != 16 || out[0].Floats[15] != 7.5 {
		t.Fatalf("matrix floats = %v", out[0].Floats)
	}
}

func TestRoundTripNegativeInts(t *testing.T) {
	cmd := gles.Command{Op: gles.OpViewport, Ints: []int32{-5, -10, 100, 200}}
	out := roundTrip(t, []gles.Command{cmd})
	if !commandsEqual(cmd, out[0]) {
		t.Fatalf("negative ints mangled: %v", out[0].Ints)
	}
}

func TestDeferredAttribPointerFlushedByDrawArrays(t *testing.T) {
	arrays := NewClientArrayTable()
	// 6 vertices of vec2 but the app's array is larger (100 floats).
	big := make([]float32, 100)
	for i := range big {
		big[i] = float32(i)
	}
	id := arrays.Register(gles.FloatsToBytes(big))

	enc := NewEncoder(arrays)
	buf, err := enc.Encode(nil, gles.CmdVertexAttribPointerClient(gles.LocPosition, 2, 0, id))
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != 0 {
		t.Fatalf("deferred pointer emitted %d bytes before draw", len(buf))
	}
	if enc.PendingDeferred() != 1 {
		t.Fatalf("PendingDeferred = %d, want 1", enc.PendingDeferred())
	}
	buf, err = enc.Encode(buf, gles.CmdDrawArrays(gles.DrawModeTriangles, 0, 6))
	if err != nil {
		t.Fatal(err)
	}
	if enc.PendingDeferred() != 0 {
		t.Fatal("pending pointer not flushed by draw")
	}

	var dec Decoder
	out, err := dec.DecodeAll(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("decoded %d records, want pointer+draw", len(out))
	}
	if out[0].Op != gles.OpVertexAttribPointer || out[1].Op != gles.OpDrawArrays {
		t.Fatalf("record order = %v, %v; pointer must precede draw", out[0].Op, out[1].Op)
	}
	// Exactly 6 vec2 vertices = 48 bytes, not the whole 400-byte array.
	if len(out[0].Data) != 48 {
		t.Fatalf("resolved pointer carried %d bytes, want 48", len(out[0].Data))
	}
	got := gles.BytesToFloats(out[0].Data)
	for i := 0; i < 12; i++ {
		if got[i] != float32(i) {
			t.Fatalf("resolved data prefix = %v", got[:12])
		}
	}
}

func TestDeferredAttribPointerExtentFromDrawElements(t *testing.T) {
	arrays := NewClientArrayTable()
	vals := make([]float32, 64)
	id := arrays.Register(gles.FloatsToBytes(vals))
	enc := NewEncoder(arrays)
	buf, err := enc.EncodeAll(nil, []gles.Command{
		gles.CmdVertexAttribPointerClient(gles.LocPosition, 2, 0, id),
		gles.CmdDrawElementsClient(gles.DrawModeTriangles, []uint16{0, 1, 5}),
	})
	if err != nil {
		t.Fatal(err)
	}
	var dec Decoder
	out, err := dec.DecodeAll(buf)
	if err != nil {
		t.Fatal(err)
	}
	// Max index 5 -> 6 vertices -> 48 bytes of vec2 floats.
	if len(out[0].Data) != 48 {
		t.Fatalf("extent from indices = %d bytes, want 48", len(out[0].Data))
	}
}

func TestDeferredAttribPointerWholeArrayWhenUnbounded(t *testing.T) {
	// DrawElements with VBO-resident indices reveals no bound: the
	// encoder must ship the entire registered array.
	arrays := NewClientArrayTable()
	id := arrays.Register(make([]byte, 200))
	enc := NewEncoder(arrays)
	buf, err := enc.EncodeAll(nil, []gles.Command{
		gles.CmdVertexAttribPointerClient(gles.LocPosition, 2, 0, id),
		gles.CmdDrawElementsVBO(gles.DrawModeTriangles, 3, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	var dec Decoder
	out, err := dec.DecodeAll(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out[0].Data) != 200 {
		t.Fatalf("unbounded resolve = %d bytes, want full 200", len(out[0].Data))
	}
}

func TestDeferredAttribPointerStride(t *testing.T) {
	arrays := NewClientArrayTable()
	// Interleaved 4-float vertices (16-byte stride), position = 2 floats.
	id := arrays.Register(gles.FloatsToBytes(make([]float32, 40)))
	enc := NewEncoder(arrays)
	buf, err := enc.EncodeAll(nil, []gles.Command{
		gles.CmdVertexAttribPointerClient(gles.LocPosition, 2, 16, id),
		gles.CmdDrawArrays(gles.DrawModeTriangles, 0, 3),
	})
	if err != nil {
		t.Fatal(err)
	}
	var dec Decoder
	out, err := dec.DecodeAll(buf)
	if err != nil {
		t.Fatal(err)
	}
	// Vertices 0..2 with stride 16: last vertex needs bytes [32,40).
	if len(out[0].Data) != 40 {
		t.Fatalf("strided resolve = %d bytes, want 40", len(out[0].Data))
	}
}

func TestDeferredPointerReplacedBeforeDraw(t *testing.T) {
	arrays := NewClientArrayTable()
	first := arrays.Register(gles.FloatsToBytes([]float32{1, 1, 1, 1, 1, 1}))
	second := arrays.Register(gles.FloatsToBytes([]float32{2, 2, 2, 2, 2, 2}))
	enc := NewEncoder(arrays)
	buf, err := enc.EncodeAll(nil, []gles.Command{
		gles.CmdVertexAttribPointerClient(gles.LocPosition, 2, 0, first),
		gles.CmdVertexAttribPointerClient(gles.LocPosition, 2, 0, second),
		gles.CmdDrawArrays(gles.DrawModeTriangles, 0, 3),
	})
	if err != nil {
		t.Fatal(err)
	}
	var dec Decoder
	out, err := dec.DecodeAll(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("decoded %d records, want 2 (replaced pointer + draw)", len(out))
	}
	if got := gles.BytesToFloats(out[0].Data); got[0] != 2 {
		t.Fatalf("draw used stale pointer data %v", got)
	}
}

func TestDeferredPointerClearDoesNotFlush(t *testing.T) {
	// glClear between the pointer and the draw must not resolve the
	// pointer with a zero extent.
	arrays := NewClientArrayTable()
	id := arrays.Register(gles.FloatsToBytes(make([]float32, 6)))
	enc := NewEncoder(arrays)
	buf, err := enc.EncodeAll(nil, []gles.Command{
		gles.CmdVertexAttribPointerClient(gles.LocPosition, 2, 0, id),
		gles.CmdClear(gles.ClearColorBit),
		gles.CmdDrawArrays(gles.DrawModeTriangles, 0, 3),
	})
	if err != nil {
		t.Fatal(err)
	}
	var dec Decoder
	out, err := dec.DecodeAll(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("decoded %d records, want clear+pointer+draw", len(out))
	}
	if out[0].Op != gles.OpClear || out[1].Op != gles.OpVertexAttribPointer {
		t.Fatalf("order = %v,%v,%v", out[0].Op, out[1].Op, out[2].Op)
	}
	if len(out[1].Data) != 24 {
		t.Fatalf("pointer resolved to %d bytes, want 24", len(out[1].Data))
	}
}

func TestDeferredErrors(t *testing.T) {
	// No resolver registered.
	enc := NewEncoder(nil)
	_, err := enc.EncodeAll(nil, []gles.Command{
		gles.CmdVertexAttribPointerClient(gles.LocPosition, 2, 0, 1),
		gles.CmdDrawArrays(gles.DrawModeTriangles, 0, 3),
	})
	if !errors.Is(err, ErrNoResolver) {
		t.Fatalf("missing resolver error = %v", err)
	}
	// Unknown array id.
	enc = NewEncoder(NewClientArrayTable())
	_, err = enc.EncodeAll(nil, []gles.Command{
		gles.CmdVertexAttribPointerClient(gles.LocPosition, 2, 0, 42),
		gles.CmdDrawArrays(gles.DrawModeTriangles, 0, 3),
	})
	if !errors.Is(err, ErrUnknownArray) {
		t.Fatalf("unknown array error = %v", err)
	}
	// Encoding a still-unresolved command directly is rejected.
	raw := gles.Command{Op: gles.OpVertexAttribPointer, DataLen: gles.NoDataLen}
	if _, err := NewEncoder(nil).appendRecord(nil, raw); !errors.Is(err, ErrBadRecord) {
		t.Fatalf("unresolved appendRecord error = %v", err)
	}
}

func TestClientArrayTableUpdate(t *testing.T) {
	tab := NewClientArrayTable()
	id := tab.Register([]byte{1})
	tab.Update(id, []byte{2, 3})
	got, ok := tab.ClientArray(id)
	if !ok || len(got) != 2 || got[0] != 2 {
		t.Fatalf("updated array = %v, %v", got, ok)
	}
	if _, ok := tab.ClientArray(999); ok {
		t.Fatal("unknown id resolved")
	}
}

func TestDecodeErrors(t *testing.T) {
	var dec Decoder
	if _, _, err := dec.Decode(nil); !errors.Is(err, ErrShortRecord) {
		t.Fatalf("empty decode error = %v", err)
	}
	// Truncated body.
	enc := NewEncoder(nil)
	buf, err := enc.Encode(nil, gles.CmdViewport(0, 0, 10, 10))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := dec.Decode(buf[:len(buf)-1]); !errors.Is(err, ErrShortRecord) {
		t.Fatalf("truncated decode error = %v", err)
	}
	// Invalid op.
	bad := append([]byte{4}, 0xFF, 0xFF, 0, 0)
	if _, _, err := dec.Decode(bad); !errors.Is(err, ErrBadRecord) {
		t.Fatalf("bad-op decode error = %v", err)
	}
	// Oversized length prefix.
	huge := []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01}
	if _, _, err := dec.Decode(huge); !errors.Is(err, ErrRecordTooBig) {
		t.Fatalf("oversized decode error = %v", err)
	}
}

func TestDecodeAllTrailingGarbage(t *testing.T) {
	enc := NewEncoder(nil)
	buf, err := enc.Encode(nil, gles.CmdFlush())
	if err != nil {
		t.Fatal(err)
	}
	buf = append(buf, 0xFF)
	var dec Decoder
	if _, err := dec.DecodeAll(buf); err == nil {
		t.Fatal("trailing garbage accepted")
	}
}

func TestSplitRecords(t *testing.T) {
	enc := NewEncoder(nil)
	cmds := []gles.Command{
		gles.CmdClear(gles.ClearColorBit),
		gles.CmdUseProgram(1),
		gles.CmdSwapBuffers(),
	}
	buf, err := enc.EncodeAll(nil, cmds)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := SplitRecords(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("split %d records, want 3", len(recs))
	}
	total := 0
	var dec Decoder
	for i, rec := range recs {
		cmd, n, err := dec.Decode(rec)
		if err != nil || n != len(rec) {
			t.Fatalf("record %d re-decode: n=%d err=%v", i, n, err)
		}
		if cmd.Op != cmds[i].Op {
			t.Fatalf("record %d op = %v, want %v", i, cmd.Op, cmds[i].Op)
		}
		total += len(rec)
	}
	if total != len(buf) {
		t.Fatalf("records cover %d bytes of %d", total, len(buf))
	}
	if _, err := SplitRecords([]byte{0x05, 0x01}); err == nil {
		t.Fatal("overrunning record accepted")
	}
}

func TestEncoderStats(t *testing.T) {
	arrays := NewClientArrayTable()
	id := arrays.Register(gles.FloatsToBytes(make([]float32, 6)))
	enc := NewEncoder(arrays)
	buf, err := enc.EncodeAll(nil, []gles.Command{
		gles.CmdVertexAttribPointerClient(gles.LocPosition, 2, 0, id),
		gles.CmdDrawArrays(gles.DrawModeTriangles, 0, 3),
		gles.CmdSwapBuffers(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if enc.Stats.Commands != 3 {
		t.Fatalf("Stats.Commands = %d", enc.Stats.Commands)
	}
	if enc.Stats.Records != 3 {
		t.Fatalf("Stats.Records = %d", enc.Stats.Records)
	}
	if enc.Stats.DeferredSent != 1 || enc.Stats.DeferredBytes != 24 {
		t.Fatalf("deferred stats = %d/%d", enc.Stats.DeferredSent, enc.Stats.DeferredBytes)
	}
	if enc.Stats.Bytes != int64(len(buf)) {
		t.Fatalf("Stats.Bytes = %d, buffer = %d", enc.Stats.Bytes, len(buf))
	}
}

func TestRoundTripProperty(t *testing.T) {
	// Property: any command with arbitrary int/float/data payloads
	// survives a round trip bit-exactly.
	check := func(ints []int32, floats []float32, data []byte) bool {
		cmd := gles.Command{
			Op:      gles.OpTexImage2D,
			Ints:    ints,
			Floats:  floats,
			Data:    data,
			DataLen: int32(len(data)),
		}
		enc := NewEncoder(nil)
		buf, err := enc.Encode(nil, cmd)
		if err != nil {
			return false
		}
		var dec Decoder
		out, n, err := dec.Decode(buf)
		if err != nil || n != len(buf) {
			return false
		}
		return commandsEqual(cmd, out)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsInt64Overflow(t *testing.T) {
	// Hand-craft a record whose varint int does not fit in int32.
	var body []byte
	body = append(body, byte(gles.OpClear), 0) // op, little-endian
	body = append(body, 1)                     // one int
	// varint for 2^40
	var tmp [10]byte
	n := putVarint(tmp[:], 1<<40)
	body = append(body, tmp[:n]...)
	body = append(body, 0, 0) // no floats, no data
	rec := append([]byte{byte(len(body))}, body...)
	var dec Decoder
	if _, _, err := dec.Decode(rec); !errors.Is(err, ErrBadRecord) {
		t.Fatalf("int32-overflow decode error = %v", err)
	}
}

// putVarint is a tiny local copy so the test does not depend on
// encoding/binary's function value.
func putVarint(buf []byte, v int64) int {
	uv := uint64(v) << 1
	if v < 0 {
		uv = ^uv
	}
	i := 0
	for uv >= 0x80 {
		buf[i] = byte(uv) | 0x80
		uv >>= 7
		i++
	}
	buf[i] = byte(uv)
	return i + 1
}

func TestReflectDeepEqualGuard(t *testing.T) {
	// Documents that commandsEqual matches reflect.DeepEqual for
	// fully-populated commands (guards the hand-rolled comparison).
	a := gles.CmdViewport(1, 2, 3, 4)
	b := gles.CmdViewport(1, 2, 3, 4)
	if !commandsEqual(a, b) || !reflect.DeepEqual(a, b) {
		t.Fatal("comparison helpers disagree")
	}
}

func BenchmarkEncodeFrame(b *testing.B) {
	cmds := validCommands()
	enc := NewEncoder(nil)
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = enc.EncodeAll(buf[:0], cmds)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(buf)))
}

func BenchmarkDecodeFrame(b *testing.B) {
	enc := NewEncoder(nil)
	buf, err := enc.EncodeAll(nil, validCommands())
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var dec Decoder
		if _, err := dec.DecodeAll(buf); err != nil {
			b.Fatal(err)
		}
	}
}
