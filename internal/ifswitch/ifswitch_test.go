package ifswitch

import (
	"testing"
	"time"

	"github.com/gbooster/gbooster/internal/netsim"
	"github.com/gbooster/gbooster/internal/sim"
)

// rig wires a controller to fresh radios on one clock.
type rig struct {
	clock *sim.Clock
	wifi  *netsim.Radio
	bt    *netsim.Radio
	meter *netsim.Meter
	ctl   *Controller
}

func newRig(t *testing.T, cfg Config) *rig {
	t.Helper()
	clock := &sim.Clock{}
	wifi := netsim.NewRadio(clock, netsim.WiFi80211n(), netsim.StateOff)
	bt := netsim.NewRadio(clock, netsim.BluetoothHS(), netsim.StateOn)
	meter := netsim.NewMeter(clock, 100*time.Millisecond)
	ctl, err := New(clock, cfg, wifi, bt, meter)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{clock: clock, wifi: wifi, bt: bt, meter: meter, ctl: ctl}
}

// drive feeds a demand trace (Mbps per 100 ms window) with a burst
// signal as the exogenous input (touch bursts lead traffic by `lead`
// windows).
func drive(t *testing.T, r *rig, demand []float64, exo [][]float64) {
	t.Helper()
	for i, d := range demand {
		var x []float64
		if exo != nil {
			x = exo[i]
		}
		if err := r.ctl.Tick(d, x); err != nil {
			t.Fatal(err)
		}
		r.ctl.Route(d)
		r.clock.Advance(100 * time.Millisecond)
	}
}

// burstDemand builds a demand trace of quiet Mbps with spikes of
// spikeMbps lasting spikeLen windows, and an exogenous signal that
// leads each spike by `lead` windows.
func burstDemand(seed uint64, n int, quiet, spike float64, spikeLen, period, lead int) (demand []float64, exo [][]float64) {
	rng := sim.NewRNG(seed)
	demand = make([]float64, n)
	exo = make([][]float64, n)
	for i := range demand {
		demand[i] = quiet + rng.Norm(0, 0.3)
		exo[i] = []float64{0, 0}
	}
	for start := period; start+spikeLen < n; start += period {
		for k := 0; k < spikeLen; k++ {
			demand[start+k] = spike + rng.Norm(0, 0.5)
		}
		// Touch bursts begin `lead` windows before the traffic follows
		// and persist through the spike (players keep interacting).
		for k := start - lead; k < start+spikeLen; k++ {
			if k >= 0 {
				exo[k] = []float64{10, 5} // touch burst + texture surge
			}
		}
	}
	return demand, exo
}

func TestPolicyString(t *testing.T) {
	if PolicyPredictive.String() != "predictive" || PolicyAlwaysWiFi.String() != "always-wifi" ||
		PolicyReactive.String() != "reactive" || Policy(9).String() == "" {
		t.Fatal("policy names wrong")
	}
}

func TestNewValidation(t *testing.T) {
	clock := &sim.Clock{}
	if _, err := New(clock, DefaultConfig(), nil, nil, nil); err == nil {
		t.Fatal("nil radios accepted")
	}
	// Degenerate config values are normalized, not rejected.
	r := newRig(t, Config{Policy: PolicyPredictive, HorizonWindows: -1, ThresholdMargin: 7, HysteresisWindows: 0, ExoDim: 0})
	if r.ctl.cfg.HorizonWindows != 1 || r.ctl.cfg.ThresholdMargin != 0.8 || r.ctl.cfg.HysteresisWindows != 1 {
		t.Fatalf("config not normalized: %+v", r.ctl.cfg)
	}
}

func TestAlwaysWiFiKeepsWiFiOn(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Policy = PolicyAlwaysWiFi
	r := newRig(t, cfg)
	demand, exo := burstDemand(1, 200, 5, 60, 5, 40, 3)
	drive(t, r, demand, exo)
	wifiOn, _ := r.ctl.ActiveRadios()
	if !wifiOn {
		t.Fatal("always-wifi policy slept WiFi")
	}
	// The initial wake costs at most one window on Bluetooth; after
	// that everything rides WiFi.
	if r.ctl.Stats.BTWindows > 1 {
		t.Fatalf("always-wifi routed %d windows over BT", r.ctl.Stats.BTWindows)
	}
}

func TestLowTrafficStaysOnBluetooth(t *testing.T) {
	r := newRig(t, DefaultConfig())
	demand := make([]float64, 300)
	exo := make([][]float64, 300)
	for i := range demand {
		demand[i] = 3 // well under BT capacity
		exo[i] = []float64{0, 0}
	}
	drive(t, r, demand, exo)
	if r.ctl.Stats.WiFiWindows != 0 {
		t.Fatalf("low traffic used WiFi for %d windows", r.ctl.Stats.WiFiWindows)
	}
	if r.ctl.Stats.OverloadEvents != 0 {
		t.Fatalf("low traffic overloaded %d times", r.ctl.Stats.OverloadEvents)
	}
	wifiOn, btOn := r.ctl.ActiveRadios()
	if wifiOn || !btOn {
		t.Fatalf("radios: wifi=%v bt=%v, want bt only", wifiOn, btOn)
	}
}

func TestSustainedHighTrafficMovesToWiFi(t *testing.T) {
	r := newRig(t, DefaultConfig())
	demand := make([]float64, 200)
	exo := make([][]float64, 200)
	for i := range demand {
		demand[i] = 50 // far beyond BT
		exo[i] = []float64{0, 0}
	}
	drive(t, r, demand, exo)
	if r.ctl.Stats.WiFiWindows == 0 {
		t.Fatal("sustained high traffic never used WiFi")
	}
	// Early windows overload while WiFi wakes; after that it's clean.
	if r.ctl.Stats.OverloadEvents > 5 {
		t.Fatalf("overloads = %d, want only the initial wake window(s)", r.ctl.Stats.OverloadEvents)
	}
}

func TestPredictiveWakesWiFiBeforeSpike(t *testing.T) {
	// Spikes are led by the exogenous burst signal; after the model has
	// seen some examples, predictive switching should overload far less
	// than reactive switching.
	overloads := func(policy Policy) int {
		cfg := DefaultConfig()
		cfg.Policy = policy
		r := newRig(t, cfg)
		demand, exo := burstDemand(7, 1200, 4, 40, 6, 30, 3)
		drive(t, r, demand, exo)
		return r.ctl.Stats.OverloadEvents
	}
	pred := overloads(PolicyPredictive)
	react := overloads(PolicyReactive)
	if pred >= react {
		t.Fatalf("predictive overloads %d >= reactive %d", pred, react)
	}
}

func TestHysteresisSleepsWiFiAfterQuietPeriod(t *testing.T) {
	r := newRig(t, DefaultConfig())
	// One big spike, then a long quiet tail.
	demand := make([]float64, 400)
	exo := make([][]float64, 400)
	for i := range demand {
		demand[i] = 3
		exo[i] = []float64{0, 0}
		if i >= 50 && i < 60 {
			demand[i] = 50
		}
		if i == 47 {
			exo[i] = []float64{10, 5}
		}
	}
	drive(t, r, demand, exo)
	wifiOn, _ := r.ctl.ActiveRadios()
	if wifiOn {
		t.Fatal("WiFi still on after long quiet period")
	}
	if r.ctl.Stats.Sleeps == 0 {
		t.Fatal("controller never slept WiFi")
	}
}

func TestRouteOverloadComputesQueueDelay(t *testing.T) {
	r := newRig(t, DefaultConfig())
	// WiFi off, demand double BT capacity: one window of traffic takes
	// two windows to drain -> delay of one window.
	out := r.ctl.Route(36)
	if !out.Overloaded {
		t.Fatal("overload not flagged")
	}
	if out.Radio != r.bt {
		t.Fatal("overloaded traffic should fall back to BT")
	}
	if out.QueueDelay <= 0 {
		t.Fatalf("queue delay = %v", out.QueueDelay)
	}
}

func TestEnergyPredictiveBeatsAlwaysWiFi(t *testing.T) {
	// The Fig. 6(b) claim: with switching enabled, radio energy drops
	// substantially for workloads that mostly fit Bluetooth.
	run := func(policy Policy) float64 {
		cfg := DefaultConfig()
		cfg.Policy = policy
		r := newRig(t, cfg)
		demand, exo := burstDemand(3, 2000, 4, 40, 6, 100, 3)
		drive(t, r, demand, exo)
		return r.wifi.EnergyJoules() + r.bt.EnergyJoules()
	}
	pred := run(PolicyPredictive)
	always := run(PolicyAlwaysWiFi)
	if pred >= always*0.7 {
		t.Fatalf("predictive energy %.1f J not well below always-wifi %.1f J", pred, always)
	}
}

func TestTickPropagatesModelErrors(t *testing.T) {
	r := newRig(t, DefaultConfig()) // ExoDim 2
	if err := r.ctl.Tick(5, []float64{1}); err == nil {
		t.Fatal("wrong exo dimension accepted")
	}
}

func TestAlwaysWiFiOverloadsWhileWaking(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Policy = PolicyAlwaysWiFi
	r := newRig(t, cfg)
	// Immediately route heavy traffic: WiFi is still waking, so the
	// window overloads onto Bluetooth.
	out := r.ctl.Route(50)
	if !out.Overloaded || out.Radio != r.bt {
		t.Fatalf("waking-wifi route = %+v", out)
	}
	r.clock.Advance(200 * time.Millisecond)
	out = r.ctl.Route(50)
	if out.Overloaded || out.Radio != r.wifi {
		t.Fatalf("awake-wifi route = %+v", out)
	}
}

func TestReactivePolicySleepsToo(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Policy = PolicyReactive
	r := newRig(t, cfg)
	demand := make([]float64, 300)
	exo := make([][]float64, 300)
	for i := range demand {
		demand[i] = 2
		exo[i] = []float64{0, 0}
		if i >= 20 && i < 40 {
			demand[i] = 40
		}
	}
	drive(t, r, demand, exo)
	wifiOn, _ := r.ctl.ActiveRadios()
	if wifiOn {
		t.Fatal("reactive policy left WiFi on after long quiet period")
	}
	if r.ctl.Stats.WakeUps == 0 {
		t.Fatal("reactive policy never woke WiFi for the spike")
	}
}
