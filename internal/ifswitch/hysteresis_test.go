package ifswitch

import (
	"testing"

	"github.com/gbooster/gbooster/internal/sim"
)

// oscillatingDemand builds a trace hovering around the switching
// threshold: demand crosses it every few windows with noise, which is
// the flapping hazard the hysteresis exists to absorb. The exogenous
// signal mirrors the oscillation so the forecast oscillates too.
func oscillatingDemand(seed uint64, n int, threshold, swing float64, halfPeriod int) (demand []float64, exo [][]float64) {
	rng := sim.NewRNG(seed)
	demand = make([]float64, n)
	exo = make([][]float64, n)
	for i := range demand {
		base := threshold - swing
		if (i/halfPeriod)%2 == 1 {
			base = threshold + swing
		}
		demand[i] = base + rng.Norm(0, swing/2)
		exo[i] = []float64{0, 0}
		if base > threshold {
			exo[i] = []float64{8, 4}
		}
	}
	return demand, exo
}

// TestHysteresisNoFlappingUnderOscillation pins the wake-hysteresis
// behaviour the satellite demands: with a forecast oscillating around
// the threshold, the radio must not flap — sleeps are bounded by the
// hysteresis window, and the swap rate stays far below the demand's
// own crossing rate.
func TestHysteresisNoFlappingUnderOscillation(t *testing.T) {
	cfg := DefaultConfig() // HysteresisWindows: 20
	r := newRig(t, cfg)

	const n = 4000
	threshold := r.ctl.Threshold()
	// Crossing every 5 windows: demand (and the trained forecast)
	// oscillates ~400 times over the trace.
	demand, exo := oscillatingDemand(3, n, threshold, 3.0, 5)
	drive(t, r, demand, exo)

	st := r.ctl.Stats
	if st.Ticks != n {
		t.Fatalf("ticks %d, want %d", st.Ticks, n)
	}
	// The hysteresis admits at most one sleep per HysteresisWindows
	// consecutive below-threshold windows. With demand above threshold
	// half the time, 20-window runs below threshold are rare — the
	// bound is the hard ceiling, the expectation is near zero.
	maxSleeps := n/cfg.HysteresisWindows + 1
	if int(st.Sleeps) > maxSleeps {
		t.Fatalf("sleeps %d exceed hysteresis bound %d", st.Sleeps, maxSleeps)
	}
	// WakeUps counts Off→Waking transitions only, so flapping shows up
	// as wakeups tracking the ~400 threshold crossings. A non-flapping
	// controller re-wakes at most once per sleep (plus the initial
	// wake).
	if int(st.WakeUps) > int(st.Sleeps)+1 {
		t.Fatalf("wakeups %d > sleeps %d + 1: radio is flapping", st.WakeUps, st.Sleeps)
	}
	crossings := n / 5
	if int(st.WakeUps)*10 > crossings {
		t.Fatalf("wakeups %d within 10%% of %d demand crossings: hysteresis not damping", st.WakeUps, crossings)
	}
}

// TestHysteresisBoundedSwapsPerWindow: over any sliding window of the
// oscillating trace, radio state swaps (wake + sleep transitions) stay
// bounded by the hysteresis — not by the oscillation frequency.
func TestHysteresisBoundedSwapsPerWindow(t *testing.T) {
	cfg := DefaultConfig()
	r := newRig(t, cfg)

	const n = 3000
	threshold := r.ctl.Threshold()
	demand, exo := oscillatingDemand(9, n, threshold, 2.5, 4)

	// Drive window by window, recording cumulative swaps.
	swapsAt := make([]int, n)
	for i := range demand {
		if err := r.ctl.Tick(demand[i], exo[i]); err != nil {
			t.Fatal(err)
		}
		r.ctl.Route(demand[i])
		r.clock.Advance(r.meter.Window())
		swapsAt[i] = r.ctl.Stats.WakeUps + r.ctl.Stats.Sleeps
	}

	// In any 100-window (10 s) span, the hysteresis admits at most
	// 100/HysteresisWindows sleep+wake pairs; allow one partial pair of
	// slack at each edge.
	span := 100
	bound := 2*(span/cfg.HysteresisWindows) + 2
	for i := span; i < n; i++ {
		if got := swapsAt[i] - swapsAt[i-span]; got > bound {
			t.Fatalf("windows [%d,%d): %d swaps exceed bound %d", i-span, i, got, bound)
		}
	}
}

// TestReactiveHysteresisAlsoBounded: the reactive policy shares the
// same hysteresis machinery; an oscillating load must not flap it
// either.
func TestReactiveHysteresisAlsoBounded(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Policy = PolicyReactive
	r := newRig(t, cfg)

	const n = 2000
	demand, exo := oscillatingDemand(5, n, r.ctl.Threshold(), 3.0, 6)
	drive(t, r, demand, exo)

	st := r.ctl.Stats
	if int(st.Sleeps) > n/cfg.HysteresisWindows+1 {
		t.Fatalf("reactive sleeps %d exceed hysteresis bound", st.Sleeps)
	}
	if int(st.WakeUps) > int(st.Sleeps)+1 {
		t.Fatalf("reactive wakeups %d > sleeps %d + 1", st.WakeUps, st.Sleeps)
	}
}
