// Package ifswitch implements GBooster's energy-saving interface
// switching (paper §V-B): traffic is routed over low-power Bluetooth
// whenever it fits, and the high-power WiFi interface is woken *ahead*
// of predicted demand spikes using an online ARMAX traffic forecast, so
// the 100–500 ms WiFi wake-up latency never stalls the frame stream.
//
// A demand spike the forecaster missed (a false negative) is visible
// here as an overload: traffic that exceeds Bluetooth throughput while
// WiFi is still waking queues up and suffers latency. A false positive
// merely wakes WiFi for nothing and costs idle energy. This asymmetry
// is why the controller biases toward waking early (threshold margin
// below 1).
package ifswitch

import (
	"errors"
	"fmt"
	"time"

	"github.com/gbooster/gbooster/internal/netsim"
	"github.com/gbooster/gbooster/internal/timeseries"
)

// Controller errors.
var errNilRadio = errors.New("ifswitch: nil radio")

// Policy selects how the controller routes traffic.
type Policy int

// Policies.
const (
	// PolicyPredictive is the paper's mechanism: ARMAX-forecast demand,
	// Bluetooth by default, WiFi woken ahead of spikes.
	PolicyPredictive Policy = iota + 1
	// PolicyAlwaysWiFi disables the optimization (Fig. 6(b) ablation):
	// WiFi stays on and carries everything.
	PolicyAlwaysWiFi
	// PolicyReactive switches without forecasting: WiFi wakes only when
	// current demand already exceeds Bluetooth (suffers wake latency).
	PolicyReactive
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case PolicyPredictive:
		return "predictive"
	case PolicyAlwaysWiFi:
		return "always-wifi"
	case PolicyReactive:
		return "reactive"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Config parameterizes a Controller.
type Config struct {
	Policy Policy
	// HorizonWindows is how many meter windows ahead to forecast; with
	// the default 100 ms window, 5 gives the paper's 500 ms horizon.
	HorizonWindows int
	// ThresholdMargin scales the Bluetooth capacity used as the switch
	// threshold; < 1 wakes WiFi before Bluetooth is actually full.
	ThresholdMargin float64
	// HysteresisWindows is how many consecutive below-threshold windows
	// must pass before WiFi is put back to sleep.
	HysteresisWindows int
	// ExoDim is the dimension of the exogenous features fed to Tick (0
	// for plain ARMA).
	ExoDim int
}

// DefaultConfig returns the paper-faithful configuration: 500 ms
// forecast horizon, ARMAX with the two AIC-selected attributes
// (touchstroke frequency and texture count).
func DefaultConfig() Config {
	return Config{
		Policy:            PolicyPredictive,
		HorizonWindows:    5,
		ThresholdMargin:   0.78,
		HysteresisWindows: 20,
		ExoDim:            2,
	}
}

// Stats accumulates controller behaviour.
type Stats struct {
	Ticks          int
	WakeUps        int
	Sleeps         int
	OverloadEvents int // windows where demand exceeded the usable path
	BTWindows      int // windows routed over Bluetooth
	WiFiWindows    int // windows routed over WiFi
}

// Controller routes traffic between a Bluetooth and a WiFi radio.
type Controller struct {
	cfg   Config
	clock netsim.Clock
	wifi  *netsim.Radio
	bt    *netsim.Radio
	meter *netsim.Meter
	model *timeseries.Model

	btCapacityMbps float64
	belowCount     int

	// Stats accumulate for the energy experiments.
	Stats Stats
}

// New builds a controller over the two radios. meter must be the meter
// the transport reports its traffic into. The clock may be any
// netsim.Clock — the simulator's virtual clock for offline studies, or
// a wall-clock adapter when the controller drives a live session.
func New(clock netsim.Clock, cfg Config, wifi, bt *netsim.Radio, meter *netsim.Meter) (*Controller, error) {
	if wifi == nil || bt == nil {
		return nil, errNilRadio
	}
	if cfg.HorizonWindows < 1 {
		cfg.HorizonWindows = 1
	}
	if cfg.ThresholdMargin <= 0 || cfg.ThresholdMargin > 1 {
		cfg.ThresholdMargin = 0.8
	}
	if cfg.HysteresisWindows < 1 {
		cfg.HysteresisWindows = 1
	}
	var model *timeseries.Model
	var err error
	if cfg.ExoDim > 0 {
		model, err = timeseries.NewARMAX(3, 2, 2, cfg.ExoDim)
	} else {
		model, err = timeseries.NewARMA(3, 2)
	}
	if err != nil {
		return nil, fmt.Errorf("ifswitch: build model: %w", err)
	}
	c := &Controller{
		cfg:            cfg,
		clock:          clock,
		wifi:           wifi,
		bt:             bt,
		meter:          meter,
		model:          model,
		btCapacityMbps: bt.Spec.BitsPerSecond / 1e6,
	}
	if cfg.Policy == PolicyAlwaysWiFi {
		wifi.Wake()
	}
	return c, nil
}

// threshold is the Mbps level above which Bluetooth is insufficient.
func (c *Controller) threshold() float64 {
	return c.btCapacityMbps * c.cfg.ThresholdMargin
}

// Threshold exposes the switching threshold (Mbps) so observers can
// score exceedance predictions against the same level the switch acts
// on.
func (c *Controller) Threshold() float64 { return c.threshold() }

// Forecast exposes the controller's h-window-ahead demand forecast
// (Mbps) from its online model.
func (c *Controller) Forecast(h int) float64 { return c.model.Forecast(h) }

// Horizon returns the configured forecast horizon in windows.
func (c *Controller) Horizon() int { return c.cfg.HorizonWindows }

// Tick advances the controller by one meter window: it feeds the just-
// closed window's demand (in Mbps) and the exogenous features observed
// during it into the model, forecasts, and wakes or sleeps WiFi.
func (c *Controller) Tick(demandMbps float64, exo []float64) error {
	c.Stats.Ticks++
	if err := c.model.Observe(demandMbps, exo); err != nil {
		return fmt.Errorf("ifswitch: observe: %w", err)
	}
	switch c.cfg.Policy {
	case PolicyAlwaysWiFi:
		c.wifi.Wake()
		return nil
	case PolicyReactive:
		if demandMbps > c.threshold() {
			c.wakeWiFi()
			c.belowCount = 0
		} else {
			c.noteBelow()
		}
		return nil
	default: // PolicyPredictive
	}
	forecast := c.model.Forecast(c.cfg.HorizonWindows)
	if forecast > c.threshold() || demandMbps > c.threshold() {
		c.wakeWiFi()
		c.belowCount = 0
	} else {
		c.noteBelow()
	}
	return nil
}

func (c *Controller) wakeWiFi() {
	if c.wifi.State() != netsim.StateOn && c.wifi.State() != netsim.StateWaking {
		c.Stats.WakeUps++
	}
	c.wifi.Wake()
}

func (c *Controller) noteBelow() {
	c.belowCount++
	if c.belowCount >= c.cfg.HysteresisWindows && c.wifi.State() == netsim.StateOn {
		c.wifi.Sleep()
		c.Stats.Sleeps++
		c.belowCount = 0
	}
}

// RouteOutcome describes how one window of traffic was carried.
type RouteOutcome struct {
	Radio *netsim.Radio
	// Overloaded reports that demand exceeded the selected radio's
	// capacity (a realized false negative: WiFi wasn't ready in time).
	Overloaded bool
	// QueueDelay is the extra latency the overload imposes on frames in
	// that window.
	QueueDelay time.Duration
}

// Route selects the radio for a window of traffic at demandMbps and
// accounts overloads. Bluetooth is preferred whenever it suffices or
// when WiFi is not ready.
func (c *Controller) Route(demandMbps float64) RouteOutcome {
	needWiFi := demandMbps > c.threshold()
	wifiReady := c.wifi.Ready()
	if c.cfg.Policy == PolicyAlwaysWiFi {
		needWiFi = true
		wifiReady = c.wifi.Ready()
	}
	switch {
	case needWiFi && wifiReady:
		c.Stats.WiFiWindows++
		return RouteOutcome{Radio: c.wifi}
	case !needWiFi:
		c.Stats.BTWindows++
		return RouteOutcome{Radio: c.bt}
	default:
		// Demand exceeds Bluetooth but WiFi is not usable: traffic
		// queues behind the slow interface. The queueing delay is the
		// excess volume divided by Bluetooth's rate.
		c.Stats.OverloadEvents++
		c.Stats.BTWindows++
		excess := demandMbps - c.btCapacityMbps
		if excess < 0 {
			excess = 0
		}
		delay := time.Duration(excess / c.btCapacityMbps * float64(c.meter.Window()))
		return RouteOutcome{Radio: c.bt, Overloaded: true, QueueDelay: delay}
	}
}

// ActiveRadios reports which radios are currently powered (for energy
// accounting assertions in tests).
func (c *Controller) ActiveRadios() (wifiOn, btOn bool) {
	return c.wifi.State() != netsim.StateOff, c.bt.State() != netsim.StateOff
}
