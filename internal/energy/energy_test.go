package energy

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestAccountAccumulation(t *testing.T) {
	a := NewAccount()
	a.AddPower(ComponentGPU, 3, 10*time.Second)
	a.AddEnergy(ComponentCPU, 5)
	a.AddEnergy(ComponentCPU, 2)
	if got := a.Component(ComponentGPU); math.Abs(got-30) > 1e-9 {
		t.Fatalf("gpu energy = %v", got)
	}
	if got := a.Component(ComponentCPU); got != 7 {
		t.Fatalf("cpu energy = %v", got)
	}
	if got := a.TotalJoules(); math.Abs(got-37) > 1e-9 {
		t.Fatalf("total = %v", got)
	}
}

func TestAccountIgnoresInvalid(t *testing.T) {
	a := NewAccount()
	a.AddEnergy("x", -5)
	a.AddPower("x", -1, time.Second)
	a.AddPower("x", 1, -time.Second)
	if a.TotalJoules() != 0 {
		t.Fatalf("invalid additions accumulated %v J", a.TotalJoules())
	}
}

func TestAveragePower(t *testing.T) {
	a := NewAccount()
	a.AddEnergy("x", 120)
	if got := a.AveragePowerW(time.Minute); math.Abs(got-2) > 1e-9 {
		t.Fatalf("avg power = %v W", got)
	}
	if a.AveragePowerW(0) != 0 {
		t.Fatal("zero session should give 0")
	}
}

func TestBreakdownSortedAndString(t *testing.T) {
	a := NewAccount()
	a.AddEnergy("wifi", 1)
	a.AddEnergy("cpu", 2)
	a.AddEnergy("gpu", 3)
	b := a.Breakdown()
	if len(b) != 3 || b[0].Name != "cpu" || b[1].Name != "gpu" || b[2].Name != "wifi" {
		t.Fatalf("breakdown = %v", b)
	}
	s := a.String()
	if !strings.Contains(s, "gpu=3.0J") {
		t.Fatalf("String() = %q", s)
	}
}

func TestNormalizedTo(t *testing.T) {
	local := NewAccount()
	local.AddEnergy(ComponentGPU, 100)
	offload := NewAccount()
	offload.AddEnergy(ComponentCPU, 30)
	if got := offload.NormalizedTo(local); math.Abs(got-0.3) > 1e-9 {
		t.Fatalf("normalized = %v", got)
	}
	if offload.NormalizedTo(nil) != 0 || offload.NormalizedTo(NewAccount()) != 0 {
		t.Fatal("degenerate baselines should give 0")
	}
}

func TestCPUPowerModel(t *testing.T) {
	if got := CPUPower(0.25, 2.25, 0.5); math.Abs(got-1.25) > 1e-9 {
		t.Fatalf("half-load power = %v", got)
	}
	if CPUPower(0.25, 2.25, -1) != 0.25 || CPUPower(0.25, 2.25, 9) != 2.25 {
		t.Fatal("utilization clamping wrong")
	}
}
