// Package energy accounts component-level power on the user device —
// GPU, CPU, display, WiFi, Bluetooth — over a simulated gameplay
// session, supporting the paper's normalized-energy experiments
// (Fig. 6, Table III). The component numbers come from the paper
// itself: ~3 W for a loaded mobile GPU (≈5× the CPU, §II), ~2 W WiFi at
// full rate, <0.1 W Bluetooth (§V-B).
package energy

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Component names used by the session accounting. Free-form names are
// allowed; these are the conventional ones.
const (
	ComponentGPU       = "gpu"
	ComponentCPU       = "cpu"
	ComponentDisplay   = "display"
	ComponentWiFi      = "wifi"
	ComponentBluetooth = "bluetooth"
	ComponentCodec     = "codec" // extra CPU burned by compress/decode
)

// Account accumulates energy per component. The zero value is unusable;
// use NewAccount.
type Account struct {
	joules map[string]float64
}

// NewAccount returns an empty account.
func NewAccount() *Account {
	return &Account{joules: make(map[string]float64)}
}

// AddEnergy records joules directly.
func (a *Account) AddEnergy(component string, joules float64) {
	if joules < 0 {
		joules = 0
	}
	a.joules[component] += joules
}

// AddPower records watts sustained for a duration.
func (a *Account) AddPower(component string, watts float64, d time.Duration) {
	if watts < 0 || d <= 0 {
		return
	}
	a.joules[component] += watts * d.Seconds()
}

// Component returns the energy recorded for one component.
func (a *Account) Component(name string) float64 { return a.joules[name] }

// TotalJoules sums every component.
func (a *Account) TotalJoules() float64 {
	var total float64
	for _, j := range a.joules {
		total += j
	}
	return total
}

// AveragePowerW converts the total to average watts over a session.
func (a *Account) AveragePowerW(session time.Duration) float64 {
	if session <= 0 {
		return 0
	}
	return a.TotalJoules() / session.Seconds()
}

// Breakdown returns component->joules sorted by name for stable output.
func (a *Account) Breakdown() []ComponentEnergy {
	out := make([]ComponentEnergy, 0, len(a.joules))
	for name, j := range a.joules {
		out = append(out, ComponentEnergy{Name: name, Joules: j})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ComponentEnergy is one breakdown row.
type ComponentEnergy struct {
	Name   string
	Joules float64
}

// String renders the account for experiment logs.
func (a *Account) String() string {
	var b strings.Builder
	for i, c := range a.Breakdown() {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%s=%.1fJ", c.Name, c.Joules)
	}
	return b.String()
}

// NormalizedTo returns this account's total relative to a baseline
// total (the paper normalizes every energy result to local execution).
// A baseline of zero returns 0.
func (a *Account) NormalizedTo(baseline *Account) float64 {
	if baseline == nil {
		return 0
	}
	base := baseline.TotalJoules()
	if base == 0 {
		return 0
	}
	return a.TotalJoules() / base
}

// CPUPower interpolates package power between idle and active for a
// utilization in [0,1] — the standard linear CPU power model.
func CPUPower(idleW, activeW, utilization float64) float64 {
	switch {
	case utilization < 0:
		utilization = 0
	case utilization > 1:
		utilization = 1
	}
	return idleW + (activeW-idleW)*utilization
}
