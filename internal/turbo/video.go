package turbo

import (
	"encoding/binary"
	"fmt"
)

// VideoEncoder is the x264 stand-in used by the §V-A encoder-speed
// comparison. Like a software H.264 encoder it performs exhaustive
// block motion search against the previous frame and transform-codes
// the residual — and like x264 on an ARM CPU without SIMD tuning, it is
// roughly two orders of magnitude slower than the turbo codec. It
// exists to reproduce the paper's "real-time video encoding is
// infeasible on service devices' CPUs" result, not to emit H.264.
type VideoEncoder struct {
	w, h        int
	quality     int // effective quality, always in [1,100]
	qz          quantizers
	prev        []byte
	started     bool
	searchRange int

	// Stats accumulate for speed accounting.
	Stats VideoStats
}

// VideoStats counts encoder work.
type VideoStats struct {
	Frames     int
	BytesOut   int64
	PixelsIn   int64
	SADChecked int64 // motion-search candidate positions examined
}

// NewVideoEncoder returns an encoder for w×h RGBA frames. searchRange
// is the ± motion search window in pixels (the knob that makes real
// encoders slow; x264's default is ±16). Out-of-range qualities are
// clamped to [1,100].
func NewVideoEncoder(w, h, quality, searchRange int) *VideoEncoder {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("turbo: video encoder size %dx%d", w, h))
	}
	if searchRange < 0 {
		searchRange = 0
	}
	quality = clampQuality(quality)
	return &VideoEncoder{
		w: w, h: h,
		quality:     quality,
		qz:          buildQuantizers(quality),
		prev:        make([]byte, w*h*4),
		searchRange: searchRange,
	}
}

// Encode compresses one frame and returns an opaque packet (the format
// is internal — only its size matters to the experiments).
func (v *VideoEncoder) Encode(frame []byte) ([]byte, error) {
	if len(frame) != v.w*v.h*4 {
		return nil, fmt.Errorf("%w: got %d bytes, want %d", ErrBadSize, len(frame), v.w*v.h*4)
	}
	tw, th := tilesDim(v.w), tilesDim(v.h)
	out := binary.AppendUvarint(nil, uint64(v.w))
	out = binary.AppendUvarint(out, uint64(v.h))

	var yBlk, cbBlk, crBlk [blockSize * blockSize]int32
	for ty := 0; ty < th; ty++ {
		for tx := 0; tx < tw; tx++ {
			mvx, mvy := 0, 0
			if v.started {
				mvx, mvy = v.motionSearch(frame, tx, ty)
			}
			out = binary.AppendVarint(out, int64(mvx))
			out = binary.AppendVarint(out, int64(mvy))
			v.loadResidual(frame, tx, ty, mvx, mvy, &yBlk, &cbBlk, &crBlk)
			for _, blk := range [...]*[blockSize * blockSize]int32{&yBlk, &cbBlk, &crBlk} {
				out = v.encodeBlock(out, blk)
			}
		}
	}
	copy(v.prev, frame) // open-loop reference is fine for a speed model
	v.started = true
	v.Stats.Frames++
	v.Stats.BytesOut += int64(len(out))
	v.Stats.PixelsIn += int64(v.w * v.h)
	return out, nil
}

// motionSearch exhaustively scans the ±searchRange window for the
// lowest-SAD match of the tile in the previous frame.
func (v *VideoEncoder) motionSearch(frame []byte, tx, ty int) (mvx, mvy int) {
	x0, y0 := tx*blockSize, ty*blockSize
	best := int64(1) << 62
	for dy := -v.searchRange; dy <= v.searchRange; dy++ {
		for dx := -v.searchRange; dx <= v.searchRange; dx++ {
			sad := v.tileSAD(frame, x0, y0, x0+dx, y0+dy, best)
			v.Stats.SADChecked++
			if sad < best {
				best = sad
				mvx, mvy = dx, dy
			}
		}
	}
	return mvx, mvy
}

// tileSAD computes the luma sum of absolute differences between the
// tile at (x0,y0) in frame and the tile at (rx,ry) in prev, early-
// exiting once it exceeds best.
func (v *VideoEncoder) tileSAD(frame []byte, x0, y0, rx, ry int, best int64) int64 {
	var sad int64
	for dy := 0; dy < blockSize; dy++ {
		fy, py := y0+dy, ry+dy
		if fy >= v.h {
			fy = v.h - 1
		}
		py = clampInt(py, 0, v.h-1)
		for dx := 0; dx < blockSize; dx++ {
			fx, px := x0+dx, rx+dx
			if fx >= v.w {
				fx = v.w - 1
			}
			px = clampInt(px, 0, v.w-1)
			fi := (fy*v.w + fx) * 4
			pi := (py*v.w + px) * 4
			// Approximate luma as G (dominant coefficient).
			d := int64(frame[fi+1]) - int64(v.prev[pi+1])
			if d < 0 {
				d = -d
			}
			sad += d
		}
		if sad > best {
			return sad
		}
	}
	return sad
}

// loadResidual fills the blocks with frame − motion-compensated prev in
// YCbCr space (cb/cr centred on 0, so the zero reference for the first
// frame is simply 0).
func (v *VideoEncoder) loadResidual(frame []byte, tx, ty, mvx, mvy int, yBlk, cbBlk, crBlk *[blockSize * blockSize]int32) {
	x0, y0 := tx*blockSize, ty*blockSize
	for dy := 0; dy < blockSize; dy++ {
		fy := clampInt(y0+dy, 0, v.h-1)
		py := clampInt(y0+dy+mvy, 0, v.h-1)
		for dx := 0; dx < blockSize; dx++ {
			fx := clampInt(x0+dx, 0, v.w-1)
			px := clampInt(x0+dx+mvx, 0, v.w-1)
			fi := (fy*v.w + fx) * 4
			pi := (py*v.w + px) * 4
			fYv, fCb, fCr := rgbToYCbCr(int(frame[fi]), int(frame[fi+1]), int(frame[fi+2]))
			var pY, pCb, pCr int
			if v.started {
				pY, pCb, pCr = rgbToYCbCr(int(v.prev[pi]), int(v.prev[pi+1]), int(v.prev[pi+2]))
			}
			k := dy*blockSize + dx
			yBlk[k] = int32(fYv - pY)
			cbBlk[k] = int32(fCb - pCb)
			crBlk[k] = int32(fCr - pCr)
		}
	}
}

// encodeBlock transform-codes a residual block (no reconstruction
// needed — the speed model does not decode).
func (v *VideoEncoder) encodeBlock(out []byte, blk *[blockSize * blockSize]int32) []byte {
	fdct8(blk)
	var zz [blockSize * blockSize]int32
	last := -1
	for i := 0; i < blockSize*blockSize; i++ {
		pos := _zigzag[i]
		c := int(blk[pos])
		s := c >> 63
		q := (((c^s)-s)*int(v.qz.recip[pos]) + quantHalf) >> quantShift
		q = (q ^ s) - s
		zz[i] = int32(q)
		if q != 0 {
			last = i
		}
	}
	return appendCoeffs(out, &zz, last)
}

func clampInt(v, lo, hi int) int {
	switch {
	case v < lo:
		return lo
	case v > hi:
		return hi
	default:
		return v
	}
}
