package turbo

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

// toLegacy rewrites a v2 packet (quality byte in the header) into the
// legacy v1 format: kind 3/4 -> 1/2 with the quality byte spliced out.
func toLegacy(t *testing.T, pkt []byte) []byte {
	t.Helper()
	var kind byte
	switch pkt[0] {
	case packetKeyQ:
		kind = packetKey
	case packetDeltaQ:
		kind = packetDelta
	default:
		t.Fatalf("not a v2 packet: kind %d", pkt[0])
	}
	p := pkt[1:]
	_, n1 := binary.Uvarint(p)
	_, n2 := binary.Uvarint(p[n1:])
	qAt := 1 + n1 + n2
	out := append([]byte{kind}, pkt[1:qAt]...)
	return append(out, pkt[qAt+1:]...)
}

// TestPacketHeaderCarriesQuality is the quality-handshake regression:
// before the v2 header, a decoder constructed at a different quality
// silently dequantized with the wrong table and emitted corrupt frames.
// Now the packet carries the encoder's quality and the decoder follows
// it, so a mismatched decoder reconstructs the exact same frame as a
// matched one.
func TestPacketHeaderCarriesQuality(t *testing.T) {
	const w, h = 48, 32
	f := testFrame(w, h, 6, 6)
	enc := NewEncoder(w, h, 90)
	pkt, err := enc.Encode(f, false)
	if err != nil {
		t.Fatal(err)
	}

	matched := NewDecoder(w, h, 90)
	want, err := matched.Decode(pkt)
	if err != nil {
		t.Fatal(err)
	}
	mismatched := NewDecoder(w, h, 30)
	got, err := mismatched.Decode(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatal("decoder constructed at the wrong quality diverged despite the header quality byte")
	}
	if q := mismatched.Quality(); q != 90 {
		t.Fatalf("decoder quality = %d after v2 packet, want 90", q)
	}
	if mismatched.Stats.QualityChanges != 1 || matched.Stats.QualityChanges != 0 {
		t.Fatalf("QualityChanges: mismatched %d (want 1), matched %d (want 0)",
			mismatched.Stats.QualityChanges, matched.Stats.QualityChanges)
	}
}

// TestLegacyHeaderlessPacketDecodes: v1 packets (no quality byte) still
// decode, using the decoder's constructed quality, and reconstruct the
// same frame their v2 counterparts do.
func TestLegacyHeaderlessPacketDecodes(t *testing.T) {
	const w, h = 40, 24
	enc := NewEncoder(w, h, DefaultQuality)
	key, err := enc.Encode(testFrame(w, h, 4, 4), false)
	if err != nil {
		t.Fatal(err)
	}
	key = append([]byte(nil), key...)
	delta, err := enc.Encode(testFrame(w, h, 12, 4), false)
	if err != nil {
		t.Fatal(err)
	}
	delta = append([]byte(nil), delta...)

	v2 := NewDecoder(w, h, DefaultQuality)
	wantKey, err := v2.Decode(key)
	if err != nil {
		t.Fatal(err)
	}
	wantKey = append([]byte(nil), wantKey...)
	wantDelta, err := v2.Decode(delta)
	if err != nil {
		t.Fatal(err)
	}

	v1 := NewDecoder(w, h, DefaultQuality)
	gotKey, err := v1.Decode(toLegacy(t, key))
	if err != nil {
		t.Fatalf("legacy keyframe: %v", err)
	}
	if !bytes.Equal(wantKey, gotKey) {
		t.Fatal("legacy keyframe decode diverged from v2")
	}
	gotDelta, err := v1.Decode(toLegacy(t, delta))
	if err != nil {
		t.Fatalf("legacy delta: %v", err)
	}
	if !bytes.Equal(wantDelta, gotDelta) {
		t.Fatal("legacy delta decode diverged from v2")
	}
	if v1.Stats.QualityChanges != 0 {
		t.Fatalf("legacy packets changed quality: %d", v1.Stats.QualityChanges)
	}
}

// TestDecodeRejectsBadQualityByte: quality the decoder cannot honor
// (outside [1,100]) is ErrBadPacket, not a garbage decode.
func TestDecodeRejectsBadQualityByte(t *testing.T) {
	const w, h = 16, 16
	enc := NewEncoder(w, h, 75)
	pkt, err := enc.Encode(testFrame(w, h, 0, 0), false)
	if err != nil {
		t.Fatal(err)
	}
	p := pkt[1:]
	_, n1 := binary.Uvarint(p)
	_, n2 := binary.Uvarint(p[n1:])
	qAt := 1 + n1 + n2
	for _, bad := range []byte{0, 101, 255} {
		buf := append([]byte(nil), pkt...)
		buf[qAt] = bad
		dec := NewDecoder(w, h, 75)
		if _, err := dec.Decode(buf); !errors.Is(err, ErrBadPacket) {
			t.Fatalf("quality byte %d: err = %v, want ErrBadPacket", bad, err)
		}
	}
}

// TestQualityClampedAtConstruction: out-of-range qualities are clamped
// once, at the API boundary, and the stored effective value is what
// every later consumer (packet headers, comparisons) sees.
func TestQualityClampedAtConstruction(t *testing.T) {
	cases := []struct{ in, want int }{{0, 1}, {-5, 1}, {1000, 100}, {60, 60}}
	for _, c := range cases {
		if got := NewEncoder(8, 8, c.in).Quality(); got != c.want {
			t.Fatalf("NewEncoder quality %d -> %d, want %d", c.in, got, c.want)
		}
		if got := NewDecoder(8, 8, c.in).Quality(); got != c.want {
			t.Fatalf("NewDecoder quality %d -> %d, want %d", c.in, got, c.want)
		}
		if got := NewVideoEncoder(8, 8, c.in, 0).quality; got != c.want {
			t.Fatalf("NewVideoEncoder quality %d -> %d, want %d", c.in, got, c.want)
		}
	}
	// A clamped encoder behaves exactly like one built at the boundary.
	f := testFrame(16, 16, 2, 2)
	a, err := NewEncoder(16, 16, -5).Encode(f, false)
	if err != nil {
		t.Fatal(err)
	}
	a = append([]byte(nil), a...)
	b, err := NewEncoder(16, 16, 1).Encode(f, false)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("clamped quality -5 packet differs from quality 1")
	}
	// SetQuality clamps the same way.
	e := NewEncoder(8, 8, 50)
	e.SetQuality(1000)
	if e.Quality() != 100 {
		t.Fatalf("SetQuality(1000) -> %d", e.Quality())
	}
}

// TestSetQualityMidStream: a quality step between frames is carried in
// the next packet header, the decoder rebuilds its tables, and the
// closed loop holds exactly across the step.
func TestSetQualityMidStream(t *testing.T) {
	const w, h = 48, 48
	enc := NewEncoder(w, h, 80)
	dec := NewDecoder(w, h, 80)
	for i, q := range []int{0, 0, 35, 35, 90} {
		if q != 0 {
			enc.SetQuality(q)
		}
		pkt, err := enc.Encode(testFrame(w, h, i*6, 4), false)
		if err != nil {
			t.Fatal(err)
		}
		got, err := dec.Decode(pkt)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(enc.prev, got) {
			t.Fatalf("frame %d: encoder prev diverged from decoder output", i)
		}
	}
	if dec.Quality() != 90 {
		t.Fatalf("decoder quality = %d, want 90", dec.Quality())
	}
	if dec.Stats.QualityChanges != 2 {
		t.Fatalf("QualityChanges = %d, want 2", dec.Stats.QualityChanges)
	}
}

// hostileHeader builds a valid v2 header for a w×h decoder with the
// given tile count.
func hostileHeader(w, h int, count uint32) []byte {
	pkt := []byte{packetKeyQ}
	pkt = binary.AppendUvarint(pkt, uint64(w))
	pkt = binary.AppendUvarint(pkt, uint64(h))
	pkt = append(pkt, DefaultQuality)
	var c [4]byte
	binary.LittleEndian.PutUint32(c[:], count)
	return append(pkt, c[:]...)
}

// TestDecodeRejectsHugeTileIndex: a 64-bit tile index that would wrap
// negative when cast to int must be rejected before it computes a
// pixel offset (pre-fix this panicked with an out-of-range write).
func TestDecodeRejectsHugeTileIndex(t *testing.T) {
	const w, h = 32, 32
	// count=2 so par>1 decoders take the parallel scan path (count=1
	// falls back to serial); the scan rejects on the first entry.
	pkt := hostileHeader(w, h, 2)
	pkt = binary.AppendUvarint(pkt, 1<<63) // wraps to negative int
	pkt = append(pkt, 0)                   // empty Y block would follow
	for _, par := range []int{1, 4} {
		dec := NewDecoder(w, h, DefaultQuality)
		dec.SetParallelism(par)
		if _, err := dec.Decode(pkt); !errors.Is(err, ErrBadPacket) {
			t.Fatalf("par=%d: huge tile index err = %v, want ErrBadPacket", par, err)
		}
	}
}

// TestDecodeRejectsHugeZeroRun: a 64-bit zero run that would wrap the
// coefficient position negative must be rejected in unsigned space
// (pre-fix this panicked indexing the zigzag table).
func TestDecodeRejectsHugeZeroRun(t *testing.T) {
	const w, h = 16, 8
	pkt := hostileHeader(w, h, 2) // parallel scan path, rejects entry 0
	pkt = binary.AppendUvarint(pkt, 0)  // tile 0
	pkt = binary.AppendUvarint(pkt, 64) // full coefficient count
	pkt = binary.AppendUvarint(pkt, 1<<63)
	pkt = binary.AppendVarint(pkt, 5)
	for _, par := range []int{1, 4} {
		dec := NewDecoder(w, h, DefaultQuality)
		dec.SetParallelism(par)
		if _, err := dec.Decode(pkt); !errors.Is(err, ErrBadPacket) {
			t.Fatalf("par=%d: huge run err = %v, want ErrBadPacket", par, err)
		}
	}
}

// TestDecodeClampsHostileCoefficients: absurd coefficient magnitudes
// decode without error (they are clamped, keeping IDCT arithmetic in
// range) and must not corrupt decoder state for subsequent packets.
func TestDecodeClampsHostileCoefficients(t *testing.T) {
	const w, h = 8, 8
	pkt := hostileHeader(w, h, 1)
	pkt = binary.AppendUvarint(pkt, 0) // tile 0
	for b := 0; b < 3; b++ {
		pkt = binary.AppendUvarint(pkt, 1) // one coefficient
		pkt = binary.AppendUvarint(pkt, 0)
		pkt = binary.AppendVarint(pkt, 1<<40) // far beyond maxCoeff
	}
	dec := NewDecoder(w, h, DefaultQuality)
	if _, err := dec.Decode(pkt); err != nil {
		t.Fatalf("clamped hostile coefficients should decode: %v", err)
	}
	// A normal packet still decodes cleanly afterwards.
	enc := NewEncoder(w, h, DefaultQuality)
	good, err := enc.Encode(testFrame(w, h, 1, 1), false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dec.Decode(good); err != nil {
		t.Fatalf("decode after hostile packet: %v", err)
	}
}

// TestEncodeZeroAllocSteadyState is the pooling acceptance gate: after
// warmup, the serial encode path performs zero heap allocations per
// frame — the packet buffer, tile scratch, and stats are all reused.
func TestEncodeZeroAllocSteadyState(t *testing.T) {
	const w, h = 320, 240
	frames := benchFrames(w, h)
	enc := NewEncoder(w, h, DefaultQuality)
	for i := 0; i < 4; i++ {
		if _, err := enc.Encode(frames[i%2], false); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	var encErr error
	allocs := testing.AllocsPerRun(50, func() {
		i++
		if _, err := enc.Encode(frames[i%2], false); err != nil {
			encErr = err
		}
	})
	if encErr != nil {
		t.Fatal(encErr)
	}
	if allocs != 0 {
		t.Fatalf("steady-state Encode allocates %.1f times per frame, want 0", allocs)
	}
}
