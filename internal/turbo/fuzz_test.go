package turbo

import (
	"bytes"
	"encoding/binary"
	"testing"
	"testing/quick"

	"github.com/gbooster/gbooster/internal/sim"
)

// FuzzDecode drives the decoder with arbitrary packets at serial and
// parallel degrees. The seed corpus covers the hostile shapes that have
// bitten the tile-apply path: out-of-range (including int-wrapping)
// tile indices, truncated and overlong uvarints, duplicate tile
// entries, and bad quality bytes — plus valid v1/v2 packets so the fuzz
// explores mutations of real structure.
func FuzzDecode(f *testing.F) {
	const w, h = 32, 32
	enc := NewEncoder(w, h, 60)
	valid, err := enc.Encode(testFrame(w, h, 5, 5), false)
	if err != nil {
		f.Fatal(err)
	}
	valid = append([]byte(nil), valid...)
	f.Add(valid)
	// Legacy v1 form of the same packet.
	{
		p := valid[1:]
		_, n1 := binary.Uvarint(p)
		_, n2 := binary.Uvarint(p[n1:])
		qAt := 1 + n1 + n2
		legacy := append([]byte{packetKey}, valid[1:qAt]...)
		f.Add(append(legacy, valid[qAt+1:]...))
	}
	header := func(count uint32) []byte {
		pkt := []byte{packetKeyQ}
		pkt = binary.AppendUvarint(pkt, w)
		pkt = binary.AppendUvarint(pkt, h)
		pkt = append(pkt, DefaultQuality)
		var c [4]byte
		binary.LittleEndian.PutUint32(c[:], count)
		return append(pkt, c[:]...)
	}
	// Out-of-range tile indices: just past the grid, and 64-bit values
	// that wrap negative through int().
	f.Add(append(binary.AppendUvarint(header(1), 16), 0))
	f.Add(append(binary.AppendUvarint(header(2), 1<<63), 0))
	f.Add(append(binary.AppendUvarint(header(2), ^uint64(0)>>1), 0))
	// Truncated uvarints: continuation bits with no terminator, both as
	// a tile index and as a coefficient run.
	f.Add(append(header(1), 0xFF, 0xFF, 0xFF))
	f.Add(append(binary.AppendUvarint(header(1), 0), 0xFF, 0xFF))
	// Overlong zero run wrapping the coefficient position.
	{
		pkt := binary.AppendUvarint(header(2), 0)
		pkt = binary.AppendUvarint(pkt, 64)
		pkt = binary.AppendUvarint(pkt, 1<<63)
		f.Add(binary.AppendVarint(pkt, 3))
	}
	// Duplicate tile entries (decodable; last entry must win).
	{
		pkt := header(2)
		for i := 0; i < 2; i++ {
			pkt = binary.AppendUvarint(pkt, 0)
			pkt = append(pkt, 0, 0, 0) // three empty blocks
		}
		f.Add(pkt)
	}
	// Bad quality byte.
	{
		pkt := []byte{packetKeyQ}
		pkt = binary.AppendUvarint(pkt, w)
		pkt = binary.AppendUvarint(pkt, h)
		pkt = append(pkt, 0, 0, 0, 0, 0)
		f.Add(pkt)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		dec := NewDecoder(w, h, 60)
		frame, err := dec.Decode(data)
		if err == nil && len(frame) != w*h*4 {
			t.Fatalf("accepted packet returned %d-byte frame", len(frame))
		}
		// The parallel path must agree with serial on accept/reject and
		// on the decoded pixels.
		par := NewDecoder(w, h, 60)
		par.SetParallelism(4)
		pframe, perr := par.Decode(data)
		if (err == nil) != (perr == nil) {
			t.Fatalf("serial err=%v, parallel err=%v", err, perr)
		}
		if err == nil && !bytes.Equal(frame, pframe) {
			t.Fatal("parallel decode diverged from serial on fuzz input")
		}
	})
}

func TestDecodeNeverPanicsOnArbitraryBytes(t *testing.T) {
	check := func(data []byte) bool {
		dec := NewDecoder(32, 32, 60)
		_, _ = dec.Decode(data)
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeNeverPanicsOnCorruptedPackets(t *testing.T) {
	rng := sim.NewRNG(17)
	enc := NewEncoder(32, 32, 60)
	f := testFrame(32, 32, 5, 5)
	pkt, err := enc.Encode(f, false)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 3000; trial++ {
		buf := append([]byte(nil), pkt...)
		for flips := 0; flips < 1+rng.Intn(5); flips++ {
			buf[rng.Intn(len(buf))] ^= byte(1 << rng.Intn(8))
		}
		dec := NewDecoder(32, 32, 60)
		_, _ = dec.Decode(buf)
	}
}

func TestDecodeNeverPanicsOnTruncations(t *testing.T) {
	enc := NewEncoder(24, 24, 60)
	f := testFrame(24, 24, 3, 3)
	pkt, err := enc.Encode(f, false)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut <= len(pkt); cut++ {
		dec := NewDecoder(24, 24, 60)
		_, _ = dec.Decode(pkt[:cut])
	}
}
