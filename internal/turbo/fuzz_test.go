package turbo

import (
	"testing"
	"testing/quick"

	"github.com/gbooster/gbooster/internal/sim"
)

func TestDecodeNeverPanicsOnArbitraryBytes(t *testing.T) {
	check := func(data []byte) bool {
		dec := NewDecoder(32, 32, 60)
		_, _ = dec.Decode(data)
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeNeverPanicsOnCorruptedPackets(t *testing.T) {
	rng := sim.NewRNG(17)
	enc := NewEncoder(32, 32, 60)
	f := testFrame(32, 32, 5, 5)
	pkt, err := enc.Encode(f, false)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 3000; trial++ {
		buf := append([]byte(nil), pkt...)
		for flips := 0; flips < 1+rng.Intn(5); flips++ {
			buf[rng.Intn(len(buf))] ^= byte(1 << rng.Intn(8))
		}
		dec := NewDecoder(32, 32, 60)
		_, _ = dec.Decode(buf)
	}
}

func TestDecodeNeverPanicsOnTruncations(t *testing.T) {
	enc := NewEncoder(24, 24, 60)
	f := testFrame(24, 24, 3, 3)
	pkt, err := enc.Encode(f, false)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut <= len(pkt); cut++ {
		dec := NewDecoder(24, 24, 60)
		_, _ = dec.Decode(pkt[:cut])
	}
}
