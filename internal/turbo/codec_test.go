package turbo

import (
	"errors"
	"math"
	"testing"

	"github.com/gbooster/gbooster/internal/sim"
)

// testFrame renders a deterministic synthetic scene: gradient
// background with a colored square at (ox, oy).
func testFrame(w, h, ox, oy int) []byte {
	f := make([]byte, w*h*4)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			i := (y*w + x) * 4
			f[i] = byte(x * 255 / w)
			f[i+1] = byte(y * 255 / h)
			f[i+2] = 60
			f[i+3] = 255
		}
	}
	for y := oy; y < oy+16 && y < h; y++ {
		for x := ox; x < ox+16 && x < w; x++ {
			if x < 0 || y < 0 {
				continue
			}
			i := (y*w + x) * 4
			f[i], f[i+1], f[i+2] = 220, 40, 40
		}
	}
	return f
}

func TestDCTRoundTrip(t *testing.T) {
	// Fixed-point forward + inverse: fdct8 output is 8× the orthonormal
	// coefficients and idct8 removes the scale, so a quant-free round
	// trip (quality-100 tables are all 1) must reproduce samples within
	// the rounding error of the two integer passes.
	r := sim.NewRNG(3)
	var src, blk [blockSize * blockSize]int32
	for i := range src {
		src[i] = int32(r.Intn(256) - 128)
	}
	blk = src
	fdct8(&blk)
	qz := buildQuantizers(100)
	for i := range blk {
		c := int(blk[i])
		s := c >> 63
		q := (((c^s)-s)*int(qz.recip[i]) + quantHalf) >> quantShift
		q = (q ^ s) - s
		blk[i] = int32(q) * qz.dequant[i]
	}
	idct8(&blk)
	for i := range src {
		if d := blk[i] - src[i]; d > 3 || d < -3 {
			t.Fatalf("DCT round trip error at %d: %v vs %v", i, blk[i], src[i])
		}
	}
}

func TestDCTDCOnly(t *testing.T) {
	// A flat block cancels every butterfly difference exactly, so the
	// integer transform must produce exact zeros for the ACs and exactly
	// 8×(8×mean) for the DC (the 8× block scale on the orthonormal 800).
	var blk [blockSize * blockSize]int32
	for i := range blk {
		blk[i] = 100
	}
	fdct8(&blk)
	if blk[0] != 6400 {
		t.Fatalf("DC coefficient = %v, want 6400 (8x orthonormal 800)", blk[0])
	}
	for i := 1; i < len(blk); i++ {
		if blk[i] != 0 {
			t.Fatalf("AC coefficient %d = %v for flat block", i, blk[i])
		}
	}
}

func TestZigzagPermutation(t *testing.T) {
	seen := make(map[int]bool)
	for _, p := range _zigzag {
		if p < 0 || p >= blockSize*blockSize || seen[p] {
			t.Fatalf("zigzag is not a permutation: %v", _zigzag)
		}
		seen[p] = true
	}
	// Standard JPEG order starts 0, 1, 8, 16, 9, 2.
	want := []int{0, 1, 8, 16, 9, 2}
	for i, w := range want {
		if _zigzag[i] != w {
			t.Fatalf("zigzag prefix = %v, want %v", _zigzag[:6], want)
		}
	}
}

func TestQuantTableQualityMonotonic(t *testing.T) {
	lo, mid, hi := quantTable(10), quantTable(50), quantTable(95)
	if mid != _baseQuant {
		t.Fatal("quality 50 must reproduce the base table")
	}
	for i := range lo {
		if lo[i] < mid[i] {
			t.Fatalf("low quality quant[%d]=%d < base %d", i, lo[i], mid[i])
		}
		if hi[i] > mid[i] {
			t.Fatalf("high quality quant[%d]=%d > base %d", i, hi[i], mid[i])
		}
		if hi[i] < 1 {
			t.Fatalf("quant[%d]=%d below 1", i, hi[i])
		}
	}
	// Out-of-range qualities clamp rather than misbehave.
	if quantTable(-5) != quantTable(1) || quantTable(500) != quantTable(100) {
		t.Fatal("quality clamping wrong")
	}
}

func TestColorConversionRoundTrip(t *testing.T) {
	// Exhaustive-ish: every corner plus a sampled lattice. Two integer
	// roundings (forward + inverse) bound the round-trip error at ±2.
	check := func(r0, g0, b0 int) {
		y, cb, cr := rgbToYCbCr(r0, g0, b0)
		r, g, b := yCbCrToRGB(y, cb, cr)
		if abs(r-r0) > 2 || abs(g-g0) > 2 || abs(b-b0) > 2 {
			t.Fatalf("color round trip (%d,%d,%d) -> (%d,%d,%d)", r0, g0, b0, r, g, b)
		}
	}
	for _, rgb := range [][3]int{{0, 0, 0}, {255, 255, 255}, {255, 0, 0}, {0, 255, 0}, {0, 0, 255}, {123, 45, 67}} {
		check(rgb[0], rgb[1], rgb[2])
	}
	for r := 0; r < 256; r += 17 {
		for g := 0; g < 256; g += 17 {
			for b := 0; b < 256; b += 17 {
				check(r, g, b)
			}
		}
	}
	// Gray must convert losslessly: the luma weights sum to exactly 2^16.
	for v := 0; v < 256; v++ {
		y, cb, cr := rgbToYCbCr(v, v, v)
		if y != v || cb != 0 || cr != 0 {
			t.Fatalf("gray %d -> y=%d cb=%d cr=%d", v, y, cb, cr)
		}
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func TestEncodeDecodeKeyframe(t *testing.T) {
	const w, h = 64, 48
	frame := testFrame(w, h, 10, 10)
	enc := NewEncoder(w, h, 90)
	dec := NewDecoder(w, h, 90)
	pkt, err := enc.Encode(frame, false)
	if err != nil {
		t.Fatal(err)
	}
	got, err := dec.Decode(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if psnr := PSNR(frame, got); psnr < 30 {
		t.Fatalf("keyframe PSNR = %.1f dB, want >= 30", psnr)
	}
	if enc.Stats.KeyFrames != 1 || enc.Stats.TilesSent != enc.Stats.TilesTotal {
		t.Fatalf("keyframe stats: %+v", enc.Stats)
	}
}

func TestDeltaFramesOnlyShipChangedTiles(t *testing.T) {
	const w, h = 64, 64
	enc := NewEncoder(w, h, 75)
	dec := NewDecoder(w, h, 75)
	f0 := testFrame(w, h, 8, 8)
	pkt0, err := enc.Encode(f0, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err = dec.Decode(pkt0); err != nil {
		t.Fatal(err)
	}
	// Move the square slightly: only tiles around it change.
	f1 := testFrame(w, h, 16, 8)
	pkt1, err := enc.Encode(f1, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkt1) >= len(pkt0)/2 {
		t.Fatalf("delta packet %dB not much smaller than key %dB", len(pkt1), len(pkt0))
	}
	got, err := dec.Decode(pkt1)
	if err != nil {
		t.Fatal(err)
	}
	if psnr := PSNR(f1, got); psnr < 28 {
		t.Fatalf("delta PSNR = %.1f dB", psnr)
	}
}

func TestStaticSceneProducesTinyDeltas(t *testing.T) {
	// The paper's motivation for incremental encoding: static frames
	// cost almost nothing.
	const w, h = 64, 64
	enc := NewEncoder(w, h, 75)
	f := testFrame(w, h, 8, 8)
	if _, err := enc.Encode(f, false); err != nil {
		t.Fatal(err)
	}
	pkt, err := enc.Encode(f, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkt) > 32 {
		t.Fatalf("static delta packet = %dB, want header-only", len(pkt))
	}
}

func TestClosedLoopNoDrift(t *testing.T) {
	// Re-encoding the same frame many times must not degrade quality:
	// the encoder tracks the decoder's reconstruction, so a stable
	// input eventually ships zero tiles, and PSNR stays flat.
	const w, h = 48, 48
	enc := NewEncoder(w, h, 40) // low quality makes drift visible if present
	dec := NewDecoder(w, h, 40)
	f := testFrame(w, h, 12, 12)
	var prevPSNR float64
	for i := 0; i < 10; i++ {
		pkt, err := enc.Encode(f, false)
		if err != nil {
			t.Fatal(err)
		}
		got, err := dec.Decode(pkt)
		if err != nil {
			t.Fatal(err)
		}
		psnr := PSNR(f, got)
		if i > 0 && psnr < prevPSNR-0.01 {
			t.Fatalf("PSNR degraded across stable frames: %.2f -> %.2f", prevPSNR, psnr)
		}
		prevPSNR = psnr
	}
}

func TestForceKeyframe(t *testing.T) {
	const w, h = 32, 32
	enc := NewEncoder(w, h, 75)
	f := testFrame(w, h, 4, 4)
	if _, err := enc.Encode(f, false); err != nil {
		t.Fatal(err)
	}
	pkt, err := enc.Encode(f, true)
	if err != nil {
		t.Fatal(err)
	}
	if pkt[0] != packetKeyQ {
		t.Fatal("forceKey did not produce a keyframe")
	}
	if enc.Stats.KeyFrames != 2 {
		t.Fatalf("KeyFrames = %d", enc.Stats.KeyFrames)
	}
}

func TestEncodeSizeMismatch(t *testing.T) {
	enc := NewEncoder(16, 16, 75)
	if _, err := enc.Encode(make([]byte, 10), false); !errors.Is(err, ErrBadSize) {
		t.Fatalf("size mismatch error = %v", err)
	}
}

func TestDecodeErrors(t *testing.T) {
	dec := NewDecoder(16, 16, 75)
	if _, err := dec.Decode(nil); !errors.Is(err, ErrBadPacket) {
		t.Fatalf("empty packet error = %v", err)
	}
	if _, err := dec.Decode([]byte{9}); !errors.Is(err, ErrBadPacket) {
		t.Fatalf("bad kind error = %v", err)
	}
	// Delta before keyframe.
	enc := NewEncoder(16, 16, 75)
	f := testFrame(16, 16, 0, 0)
	if _, err := enc.Encode(f, false); err != nil {
		t.Fatal(err)
	}
	delta, err := enc.Encode(testFrame(16, 16, 4, 4), false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dec.Decode(delta); !errors.Is(err, ErrBadPacket) {
		t.Fatalf("delta-before-key error = %v", err)
	}
	// Wrong geometry: rejected as a packet the decoder cannot honor,
	// never decoded with mismatched dimensions.
	other := NewDecoder(32, 32, 75)
	key, err := NewEncoder(16, 16, 75).Encode(f, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := other.Decode(key); !errors.Is(err, ErrBadPacket) {
		t.Fatalf("geometry mismatch error = %v", err)
	}
	// Truncated packet.
	if _, err := NewDecoder(16, 16, 75).Decode(key[:len(key)-3]); err == nil {
		t.Fatal("truncated packet accepted")
	}
}

func TestNonMultipleOfEightDimensions(t *testing.T) {
	const w, h = 30, 22 // edge tiles are partial
	enc := NewEncoder(w, h, 80)
	dec := NewDecoder(w, h, 80)
	f := testFrame(w, h, 5, 5)
	pkt, err := enc.Encode(f, false)
	if err != nil {
		t.Fatal(err)
	}
	got, err := dec.Decode(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if psnr := PSNR(f, got); psnr < 28 {
		t.Fatalf("odd-size PSNR = %.1f dB", psnr)
	}
}

func TestCompressionRatioOnGameLikeContent(t *testing.T) {
	// The paper reports up to 25:1; our gradient+sprite frames should
	// comfortably beat 5:1 on keyframes at default quality.
	const w, h = 128, 128
	enc := NewEncoder(w, h, DefaultQuality)
	f := testFrame(w, h, 30, 40)
	pkt, err := enc.Encode(f, false)
	if err != nil {
		t.Fatal(err)
	}
	raw := w * h * 4
	if ratio := float64(raw) / float64(len(pkt)); ratio < 5 {
		t.Fatalf("keyframe compression ratio = %.1f:1, want >= 5", ratio)
	}
}

func TestDiffThresholdZeroShipsEverything(t *testing.T) {
	const w, h = 32, 32
	enc := NewEncoder(w, h, 75)
	enc.SetDiffThreshold(-1) // any difference ships
	f0 := testFrame(w, h, 0, 0)
	if _, err := enc.Encode(f0, false); err != nil {
		t.Fatal(err)
	}
	before := enc.Stats.TilesSent
	if _, err := enc.Encode(f0, false); err != nil {
		t.Fatal(err)
	}
	// With a negative threshold even identical tiles ship (mad > -1).
	if enc.Stats.TilesSent == before {
		t.Fatal("negative threshold did not force tiles")
	}
}

func TestPSNR(t *testing.T) {
	a := []byte{10, 20, 30, 255, 40, 50, 60, 255}
	if !math.IsInf(PSNR(a, a), 1) {
		t.Fatal("identical buffers should have infinite PSNR")
	}
	if PSNR(a, a[:4]) != 0 {
		t.Fatal("length mismatch should return 0")
	}
	b := []byte{11, 20, 30, 255, 40, 50, 60, 255}
	if p := PSNR(a, b); p < 40 || math.IsInf(p, 1) {
		t.Fatalf("near-identical PSNR = %v", p)
	}
}

func TestVideoEncoderRoughlyTracksContent(t *testing.T) {
	const w, h = 48, 48
	v := NewVideoEncoder(w, h, 75, 4)
	f0 := testFrame(w, h, 8, 8)
	p0, err := v.Encode(f0)
	if err != nil {
		t.Fatal(err)
	}
	// Translated content: motion search should find the shift, making
	// the residual (and packet) small relative to the first frame.
	f1 := testFrame(w, h, 10, 8)
	p1, err := v.Encode(f1)
	if err != nil {
		t.Fatal(err)
	}
	if len(p1) >= len(p0) {
		t.Fatalf("inter frame %dB not smaller than intra %dB", len(p1), len(p0))
	}
	if v.Stats.SADChecked == 0 {
		t.Fatal("motion search did not run")
	}
	if _, err := v.Encode(make([]byte, 7)); !errors.Is(err, ErrBadSize) {
		t.Fatalf("size mismatch error = %v", err)
	}
}

func TestVideoEncoderMuchSlowerThanTurbo(t *testing.T) {
	// The §V-A conclusion in miniature: per-pixel work of the video
	// encoder dwarfs the turbo codec's on moving content.
	const w, h = 64, 64
	turboEnc := NewEncoder(w, h, 75)
	videoEnc := NewVideoEncoder(w, h, 75, 8)
	frames := 5
	for i := 0; i < frames; i++ {
		f := testFrame(w, h, i*4, i*3)
		if _, err := turboEnc.Encode(f, false); err != nil {
			t.Fatal(err)
		}
		if _, err := videoEnc.Encode(f); err != nil {
			t.Fatal(err)
		}
	}
	// SAD positions checked per pixel is the dominant cost; turbo does
	// zero motion search.
	perPixel := float64(videoEnc.Stats.SADChecked*blockSize*blockSize) / float64(videoEnc.Stats.PixelsIn)
	if perPixel < 50 {
		t.Fatalf("video encoder per-pixel SAD work = %.0f, expected heavy search", perPixel)
	}
}

func BenchmarkVideoEncode(b *testing.B) {
	const w, h = 320, 240
	enc := NewVideoEncoder(w, h, DefaultQuality, 8)
	frames := [][]byte{testFrame(w, h, 10, 10), testFrame(w, h, 14, 12)}
	if _, err := enc.Encode(frames[0]); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(w * h * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := enc.Encode(frames[i%2]); err != nil {
			b.Fatal(err)
		}
	}
}
