package turbo

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"

	"github.com/gbooster/gbooster/internal/parallel"
)

// Codec errors.
var (
	ErrBadPacket = errors.New("turbo: malformed packet")
	ErrBadSize   = errors.New("turbo: frame size mismatch")
)

// Packet kinds. The legacy v1 kinds carry no quality byte and decode
// with the decoder's constructed quality; the v2 kinds (everything the
// encoder emits today) carry the encoder's effective quality in the
// header so the decoder always dequantizes with the right table.
const (
	packetKey    = 1 // v1: every tile encoded, headerless quality
	packetDelta  = 2 // v1: only changed tiles encoded, headerless quality
	packetKeyQ   = 3 // v2: keyframe with quality byte
	packetDeltaQ = 4 // v2: delta with quality byte
)

// DefaultQuality balances the paper's reported ~25:1 compression
// against visible artifacts.
const DefaultQuality = 60

// DefaultDiffThreshold is the per-tile mean absolute difference (in
// 8-bit code values) below which a tile is considered unchanged.
const DefaultDiffThreshold = 2.0

// Encoder compresses a stream of RGBA frames into keyframe/delta
// packets. It is closed-loop: prev holds the decoder's reconstruction,
// not the original pixels, so quantization error never accumulates
// into drift between the phone and the service device.
type Encoder struct {
	w, h    int
	quality int // effective quality, always in [1,100]
	qz      quantizers
	thresh  float64
	prev    []byte // decoder-visible reconstruction, RGBA
	started bool

	// outBuf is the reused packet buffer: Encode appends into it and
	// returns a slice of it, so steady-state encoding allocates nothing.
	outBuf []byte

	// par is the tile-parallel worker degree; <= 1 keeps the serial
	// reference path. Tiles are independent — each reads only its own
	// region of frame/prev and writes only its own region of prev — so
	// the parallel path produces byte-identical packets (see
	// encodeTilesParallel and the determinism tests).
	par     int
	tileBuf [][]byte // per-tile encoded output, reused across frames
	tileOn  []bool   // per-tile "shipped" flags, reused across frames

	// Stats accumulate for the traffic experiments.
	Stats EncoderStats
}

// EncoderStats counts encoder work.
type EncoderStats struct {
	Frames     int
	KeyFrames  int
	TilesSent  int
	TilesTotal int
	BytesOut   int64
	PixelsIn   int64
}

// NewEncoder returns an encoder for w×h RGBA frames at the given JPEG-
// style quality. Out-of-range qualities are clamped to [1,100] and the
// effective value is what SetQuality/Quality and the packet header see.
func NewEncoder(w, h, quality int) *Encoder {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("turbo: encoder size %dx%d", w, h))
	}
	quality = clampQuality(quality)
	return &Encoder{
		w: w, h: h,
		quality: quality,
		qz:      buildQuantizers(quality),
		thresh:  DefaultDiffThreshold,
		prev:    make([]byte, w*h*4),
	}
}

// SetDiffThreshold overrides the changed-tile sensitivity. Zero makes
// every nonidentical tile ship.
func (e *Encoder) SetDiffThreshold(t float64) { e.thresh = t }

// SetParallelism sets the tile-parallel worker degree: n <= 0 means one
// worker per CPU, n == 1 the serial reference path. Output is
// byte-identical at every degree.
func (e *Encoder) SetParallelism(n int) { e.par = parallel.Degree(n) }

// SetQuality changes the quality for subsequent frames (clamped to
// [1,100]). The change is safe mid-stream: each packet carries its
// quality, and the closed loop keeps already-reconstructed tiles
// consistent — only re-shipped tiles use the new tables.
func (e *Encoder) SetQuality(q int) {
	q = clampQuality(q)
	if q == e.quality {
		return
	}
	e.quality = q
	e.qz = buildQuantizers(q)
}

// Quality reports the effective quality in use.
func (e *Encoder) Quality() int { return e.quality }

// tilesDim returns tile grid dimensions (ceil division).
func tilesDim(px int) int { return (px + blockSize - 1) / blockSize }

// Encode compresses one frame (len must be w*h*4) and returns the
// packet. The first frame is a keyframe; later frames are deltas unless
// forceKey is set. The returned slice aliases the encoder's internal
// buffer and is valid until the next Encode call; callers that retain
// it must copy.
func (e *Encoder) Encode(frame []byte, forceKey bool) ([]byte, error) {
	if len(frame) != e.w*e.h*4 {
		return nil, fmt.Errorf("%w: got %d bytes, want %d", ErrBadSize, len(frame), e.w*e.h*4)
	}
	key := forceKey || !e.started
	e.started = true

	tw, th := tilesDim(e.w), tilesDim(e.h)
	kind := byte(packetDeltaQ)
	if key {
		kind = packetKeyQ
	}
	out := append(e.outBuf[:0], kind)
	out = binary.AppendUvarint(out, uint64(e.w))
	out = binary.AppendUvarint(out, uint64(e.h))
	out = append(out, byte(e.quality))
	countAt := len(out)
	out = append(out, 0, 0, 0, 0) // fixed 32-bit tile count, patched below

	var sent uint32
	if e.par > 1 && tw*th > 1 {
		out, sent = e.encodeTilesParallel(out, frame, key, tw, th)
	} else {
		var yBlk, cbBlk, crBlk [blockSize * blockSize]int32
		for ty := 0; ty < th; ty++ {
			for tx := 0; tx < tw; tx++ {
				if !key && !e.tileChanged(frame, tx, ty) {
					continue
				}
				out = e.encodeTileInto(out, frame, tx, ty, tw, &yBlk, &cbBlk, &crBlk)
				sent++
			}
		}
	}
	e.Stats.TilesTotal += tw * th
	binary.LittleEndian.PutUint32(out[countAt:], sent)
	e.outBuf = out

	e.Stats.Frames++
	if key {
		e.Stats.KeyFrames++
	}
	e.Stats.TilesSent += int(sent)
	e.Stats.BytesOut += int64(len(out))
	e.Stats.PixelsIn += int64(e.w * e.h)
	return out, nil
}

// encodeTileInto appends one tile's entry — index uvarint plus the
// three entropy-coded YCbCr blocks — to out, and mirrors the decoder's
// reconstruction into prev. Both the serial loop and the parallel path
// funnel through here, which is what makes their output byte-identical
// by construction.
func (e *Encoder) encodeTileInto(out []byte, frame []byte, tx, ty, tw int, yBlk, cbBlk, crBlk *[blockSize * blockSize]int32) []byte {
	e.loadTile(frame, tx, ty, yBlk, cbBlk, crBlk)
	out = binary.AppendUvarint(out, uint64(ty*tw+tx))
	for _, blk := range [...]*[blockSize * blockSize]int32{yBlk, cbBlk, crBlk} {
		out = e.encodeBlock(out, blk)
	}
	// Reconstruct into prev exactly as the decoder will.
	e.storeTile(e.prev, tx, ty, yBlk, cbBlk, crBlk)
	return out
}

// encodeTilesParallel fans the tile grid out across the shared worker
// pool. Safety and determinism: tile t reads frame (never written) and
// its own tile region of prev (for the change check), writes its own
// tile region of prev (reconstruction) and its own tileBuf[t]/tileOn[t]
// slots — all disjoint across tiles. The per-tile buffers are then
// joined in grid order, reproducing the serial packet byte for byte.
func (e *Encoder) encodeTilesParallel(out []byte, frame []byte, key bool, tw, th int) ([]byte, uint32) {
	n := tw * th
	if cap(e.tileBuf) < n {
		e.tileBuf = make([][]byte, n)
		e.tileOn = make([]bool, n)
	}
	tileBuf, tileOn := e.tileBuf[:n], e.tileOn[:n]
	parallel.Do(e.par, n, func(lo, hi int) {
		var yBlk, cbBlk, crBlk [blockSize * blockSize]int32
		for t := lo; t < hi; t++ {
			tx, ty := t%tw, t/tw
			if !key && !e.tileChanged(frame, tx, ty) {
				tileOn[t] = false
				continue
			}
			tileOn[t] = true
			tileBuf[t] = e.encodeTileInto(tileBuf[t][:0], frame, tx, ty, tw, &yBlk, &cbBlk, &crBlk)
		}
	})
	var sent uint32
	for t := 0; t < n; t++ {
		if tileOn[t] {
			out = append(out, tileBuf[t]...)
			sent++
		}
	}
	return out, sent
}

// tileChanged compares the frame tile against the reconstruction using
// mean absolute difference over RGB (integer SAD; the threshold
// comparison stays in float so configured thresholds keep their exact
// legacy semantics, including negative values forcing every tile).
func (e *Encoder) tileChanged(frame []byte, tx, ty int) bool {
	x0, y0 := tx*blockSize, ty*blockSize
	sad, n := 0, 0
	for dy := 0; dy < blockSize; dy++ {
		y := y0 + dy
		if y >= e.h {
			break
		}
		row := (y*e.w + x0) * 4
		for dx := 0; dx < blockSize; dx++ {
			if x0+dx >= e.w {
				break
			}
			i := row + dx*4
			sad += absDiff(frame[i], e.prev[i]) + absDiff(frame[i+1], e.prev[i+1]) + absDiff(frame[i+2], e.prev[i+2])
			n += 3
		}
	}
	return n > 0 && float64(sad) > e.thresh*float64(n)
}

func absDiff(a, b byte) int {
	if a > b {
		return int(a - b)
	}
	return int(b - a)
}

// loadTile converts a tile to centred YCbCr blocks (edge tiles
// replicate the last row/column).
func (e *Encoder) loadTile(frame []byte, tx, ty int, yBlk, cbBlk, crBlk *[blockSize * blockSize]int32) {
	x0, y0 := tx*blockSize, ty*blockSize
	for dy := 0; dy < blockSize; dy++ {
		sy := y0 + dy
		if sy >= e.h {
			sy = e.h - 1
		}
		for dx := 0; dx < blockSize; dx++ {
			sx := x0 + dx
			if sx >= e.w {
				sx = e.w - 1
			}
			i := (sy*e.w + sx) * 4
			y, cb, cr := rgbToYCbCr(int(frame[i]), int(frame[i+1]), int(frame[i+2]))
			k := dy*blockSize + dx
			yBlk[k] = int32(y - 128)
			cbBlk[k] = int32(cb)
			crBlk[k] = int32(cr)
		}
	}
}

// encodeBlock forward-transforms, quantizes, entropy-codes the block
// into out, then reconstructs the block in place (dequantize + IDCT) so
// the caller can mirror the decoder's state. Quantization is a
// branch-free reciprocal multiply per coefficient, emitted in zig-zag
// order.
func (e *Encoder) encodeBlock(out []byte, blk *[blockSize * blockSize]int32) []byte {
	fdct8(blk)
	var zz [blockSize * blockSize]int32
	last := -1
	for i := 0; i < blockSize*blockSize; i++ {
		pos := _zigzag[i]
		c := int(blk[pos])
		s := c >> 63 // all-ones for negative c (int is 64-bit on supported targets)
		q := (((c^s)-s)*int(e.qz.recip[pos]) + quantHalf) >> quantShift
		q = (q ^ s) - s
		zz[i] = int32(q)
		if q != 0 {
			last = i
		}
	}
	out = appendCoeffs(out, &zz, last)
	// Reconstruct: dequantize back into raster order and inverse-
	// transform, exactly as the decoder will.
	for i := 0; i < blockSize*blockSize; i++ {
		pos := _zigzag[i]
		blk[pos] = zz[i] * e.qz.dequant[pos]
	}
	idct8(blk)
	return out
}

// appendCoeffs encodes zig-zag-ordered quantized coefficients as
// (zeroRun uvarint, value varint) pairs after a coefficient-count
// prefix; last is the index of the final nonzero coefficient (-1 for an
// all-zero block).
func appendCoeffs(out []byte, zz *[blockSize * blockSize]int32, last int) []byte {
	out = binary.AppendUvarint(out, uint64(last+1))
	run := 0
	for i := 0; i <= last; i++ {
		v := zz[i]
		if v == 0 {
			run++
			continue
		}
		out = binary.AppendUvarint(out, uint64(run))
		out = binary.AppendVarint(out, int64(v))
		run = 0
	}
	return out
}

// storeTile writes reconstructed YCbCr blocks back into an RGBA buffer.
func (e *Encoder) storeTile(dst []byte, tx, ty int, yBlk, cbBlk, crBlk *[blockSize * blockSize]int32) {
	storeTileInto(dst, e.w, e.h, tx, ty, yBlk, cbBlk, crBlk)
}

func storeTileInto(dst []byte, w, h, tx, ty int, yBlk, cbBlk, crBlk *[blockSize * blockSize]int32) {
	x0, y0 := tx*blockSize, ty*blockSize
	for dy := 0; dy < blockSize; dy++ {
		py := y0 + dy
		if py >= h {
			break
		}
		for dx := 0; dx < blockSize; dx++ {
			px := x0 + dx
			if px >= w {
				break
			}
			k := dy*blockSize + dx
			r, g, b := yCbCrToRGB(int(yBlk[k])+128, int(cbBlk[k]), int(crBlk[k]))
			i := (py*w + px) * 4
			dst[i] = byte(r)
			dst[i+1] = byte(g)
			dst[i+2] = byte(b)
			dst[i+3] = 255
		}
	}
}

// Decoder reconstructs the frame stream from packets.
type Decoder struct {
	w, h    int
	quality int // effective quality, tracks v2 packet headers
	dequant [blockSize * blockSize]int32
	frame   []byte
	started bool

	// par is the tile-parallel worker degree; <= 1 keeps the serial
	// reference path. See decodeTilesParallel for the determinism
	// argument.
	par    int
	spans  []tileSpan // scratch: scanned tile entries, reused
	work   []int      // scratch: deduped span positions, reused
	winner []int32    // scratch: tile index -> last span position

	// Stats accumulate decoded volume.
	Stats DecoderStats
}

// tileSpan is one scanned tile entry: its grid index and the byte range
// holding its three entropy-coded blocks.
type tileSpan struct {
	idx  int
	data []byte
}

// DecoderStats counts decoder work.
type DecoderStats struct {
	Frames  int
	Tiles   int
	BytesIn int64
	// QualityChanges counts v2 header quality switches that forced a
	// dequantization-table rebuild.
	QualityChanges int
}

// NewDecoder returns a decoder matching NewEncoder(w, h, quality).
// Out-of-range qualities are clamped to [1,100]. The constructed
// quality only matters for legacy v1 packets — v2 packets carry the
// encoder's quality in the header and the decoder follows it.
func NewDecoder(w, h, quality int) *Decoder {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("turbo: decoder size %dx%d", w, h))
	}
	quality = clampQuality(quality)
	return &Decoder{
		w: w, h: h,
		quality: quality,
		dequant: buildQuantizers(quality).dequant,
		frame:   make([]byte, w*h*4),
	}
}

// SetParallelism sets the tile-parallel worker degree: n <= 0 means one
// worker per CPU, n == 1 the serial reference path. Successful decodes
// produce byte-identical frames at every degree.
func (d *Decoder) SetParallelism(n int) { d.par = parallel.Degree(n) }

// Quality reports the effective quality: the constructed value until a
// v2 packet arrives, then whatever the latest packet header carried.
func (d *Decoder) Quality() int { return d.quality }

// Decode applies one packet and returns the current full frame. The
// returned slice aliases the decoder's internal buffer; callers that
// retain it across Decode calls must copy. Geometry or quality the
// decoder cannot honor is rejected with ErrBadPacket — it never decodes
// with mismatched tables.
func (d *Decoder) Decode(packet []byte) ([]byte, error) {
	if len(packet) < 1 {
		return nil, fmt.Errorf("%w: empty", ErrBadPacket)
	}
	kind := packet[0]
	var key, hasQ bool
	switch kind {
	case packetKey:
		key = true
	case packetDelta:
	case packetKeyQ:
		key, hasQ = true, true
	case packetDeltaQ:
		hasQ = true
	default:
		return nil, fmt.Errorf("%w: kind %d", ErrBadPacket, kind)
	}
	p := packet[1:]
	w, n := binary.Uvarint(p)
	if n <= 0 {
		return nil, fmt.Errorf("%w: width", ErrBadPacket)
	}
	p = p[n:]
	h, n := binary.Uvarint(p)
	if n <= 0 {
		return nil, fmt.Errorf("%w: height", ErrBadPacket)
	}
	p = p[n:]
	if int64(w) != int64(d.w) || int64(h) != int64(d.h) {
		return nil, fmt.Errorf("%w: packet %dx%d, decoder %dx%d", ErrBadPacket, w, h, d.w, d.h)
	}
	if hasQ {
		if len(p) < 1 {
			return nil, fmt.Errorf("%w: quality", ErrBadPacket)
		}
		q := int(p[0])
		p = p[1:]
		if q < 1 || q > 100 {
			return nil, fmt.Errorf("%w: quality %d", ErrBadPacket, q)
		}
		if q != d.quality {
			d.quality = q
			d.dequant = buildQuantizers(q).dequant
			d.Stats.QualityChanges++
		}
	}
	if !key && !d.started {
		return nil, fmt.Errorf("%w: delta before keyframe", ErrBadPacket)
	}
	if len(p) < 4 {
		return nil, fmt.Errorf("%w: tile count", ErrBadPacket)
	}
	count := binary.LittleEndian.Uint32(p)
	p = p[4:]

	tw, th := tilesDim(d.w), tilesDim(d.h)
	maxTiles := tw * th
	if int64(count) > int64(maxTiles) {
		return nil, fmt.Errorf("%w: %d tiles, grid has %d", ErrBadPacket, count, maxTiles)
	}
	if d.par > 1 && count > 1 {
		return d.decodeTilesParallel(packet, p, int(count), tw, maxTiles)
	}
	var yBlk, cbBlk, crBlk [blockSize * blockSize]int32
	for t := uint32(0); t < count; t++ {
		idx, n := binary.Uvarint(p)
		// The index is range-checked in uint64 before any int cast: a
		// crafted 64-bit index must not wrap negative and slip past.
		if n <= 0 || idx >= uint64(maxTiles) {
			return nil, fmt.Errorf("%w: tile index", ErrBadPacket)
		}
		p = p[n:]
		for _, blk := range [...]*[blockSize * blockSize]int32{&yBlk, &cbBlk, &crBlk} {
			rest, err := d.decodeBlock(p, blk)
			if err != nil {
				return nil, err
			}
			p = rest
		}
		storeTileInto(d.frame, d.w, d.h, int(idx)%tw, int(idx)/tw, &yBlk, &cbBlk, &crBlk)
		d.Stats.Tiles++
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadPacket, len(p))
	}
	d.started = true
	d.Stats.Frames++
	d.Stats.BytesIn += int64(len(packet))
	return d.frame, nil
}

// decodeTilesParallel splits the packet in two passes: a serial
// structural scan that locates and validates every tile entry (running
// the exact validation of the serial path, via decodeBlock in scan-only
// mode), then a parallel pass doing the expensive work — dequantize,
// IDCT, color conversion, store — across the worker pool. Tiles write
// disjoint frame regions, so after de-duplicating repeated tile indices
// (last entry wins, matching serial overwrite order) the result is
// byte-identical to the serial path. On a malformed packet the scan
// rejects it before any pixel is touched.
func (d *Decoder) decodeTilesParallel(packet, p []byte, count, tw, maxTiles int) ([]byte, error) {
	spans := d.spans[:0]
	for t := 0; t < count; t++ {
		idx, n := binary.Uvarint(p)
		if n <= 0 || idx >= uint64(maxTiles) {
			return nil, fmt.Errorf("%w: tile index", ErrBadPacket)
		}
		p = p[n:]
		start := p
		for b := 0; b < 3; b++ {
			rest, err := d.decodeBlock(p, nil)
			if err != nil {
				return nil, err
			}
			p = rest
		}
		spans = append(spans, tileSpan{idx: int(idx), data: start[:len(start)-len(p)]})
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadPacket, len(p))
	}
	d.spans = spans

	// Last-wins de-duplication: a (malformed but decodable) packet may
	// list a tile twice; the serial path overwrites in entry order, so
	// only the final entry per tile index may execute in parallel.
	if len(d.winner) < maxTiles {
		d.winner = make([]int32, maxTiles)
	}
	for t, s := range spans {
		d.winner[s.idx] = int32(t)
	}
	work := d.work[:0]
	for t, s := range spans {
		if d.winner[s.idx] == int32(t) {
			work = append(work, t)
		}
	}
	d.work = work

	var (
		errMu  sync.Mutex
		anyErr error
	)
	parallel.Do(d.par, len(work), func(lo, hi int) {
		var yBlk, cbBlk, crBlk [blockSize * blockSize]int32
		for k := lo; k < hi; k++ {
			s := spans[work[k]]
			q := s.data
			for _, blk := range [...]*[blockSize * blockSize]int32{&yBlk, &cbBlk, &crBlk} {
				rest, err := d.decodeBlock(q, blk)
				if err != nil {
					// Unreachable: the scan already validated this span.
					errMu.Lock()
					if anyErr == nil {
						anyErr = err
					}
					errMu.Unlock()
					return
				}
				q = rest
			}
			storeTileInto(d.frame, d.w, d.h, s.idx%tw, s.idx/tw, &yBlk, &cbBlk, &crBlk)
		}
	})
	if anyErr != nil {
		return nil, anyErr
	}
	d.Stats.Tiles += len(spans)
	d.started = true
	d.Stats.Frames++
	d.Stats.BytesIn += int64(len(packet))
	return d.frame, nil
}

// decodeBlock parses one entropy-coded block and inverse-transforms it
// into blk. A nil blk runs in scan-only mode: full parse and validation
// with the transform skipped — the parallel path uses it so structural
// errors surface exactly as the serial path reports them.
func (d *Decoder) decodeBlock(p []byte, blk *[blockSize * blockSize]int32) ([]byte, error) {
	total, n := binary.Uvarint(p)
	if n <= 0 || total > blockSize*blockSize {
		return nil, fmt.Errorf("%w: coeff count", ErrBadPacket)
	}
	p = p[n:]
	if blk != nil {
		*blk = [blockSize * blockSize]int32{}
	}
	for i := uint64(0); i < total; {
		run, n := binary.Uvarint(p)
		if n <= 0 {
			return nil, fmt.Errorf("%w: zero run", ErrBadPacket)
		}
		p = p[n:]
		// Validated in uint64 before advancing: a crafted 64-bit run
		// must not wrap the position negative and index out of bounds.
		if run >= total-i {
			return nil, fmt.Errorf("%w: run past block", ErrBadPacket)
		}
		i += run
		v, n := binary.Varint(p)
		if n <= 0 {
			return nil, fmt.Errorf("%w: coeff value", ErrBadPacket)
		}
		p = p[n:]
		if blk != nil {
			// Bound hostile coefficients so the IDCT arithmetic stays in
			// range; honest encoders never exceed this (see maxCoeff).
			if v > maxCoeff {
				v = maxCoeff
			} else if v < -maxCoeff {
				v = -maxCoeff
			}
			pos := _zigzag[i]
			blk[pos] = int32(v) * d.dequant[pos]
		}
		i++
	}
	if blk == nil {
		return p, nil
	}
	idct8(blk)
	return p, nil
}

// PSNR computes peak signal-to-noise ratio between two same-length RGBA
// buffers, ignoring alpha. Identical inputs return +Inf.
func PSNR(a, b []byte) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return 0
	}
	var mse float64
	n := 0
	for i := 0; i+3 < len(a); i += 4 {
		for k := 0; k < 3; k++ {
			d := float64(a[i+k]) - float64(b[i+k])
			mse += d * d
			n++
		}
	}
	mse /= float64(n)
	if mse == 0 {
		return math.Inf(1)
	}
	return 10 * math.Log10(255*255/mse)
}
