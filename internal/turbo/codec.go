package turbo

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Codec errors.
var (
	ErrBadPacket = errors.New("turbo: malformed packet")
	ErrBadSize   = errors.New("turbo: frame size mismatch")
)

// Packet kinds.
const (
	packetKey   = 1 // every tile encoded
	packetDelta = 2 // only changed tiles encoded
)

// DefaultQuality balances the paper's reported ~25:1 compression
// against visible artifacts.
const DefaultQuality = 60

// DefaultDiffThreshold is the per-tile mean absolute difference (in
// 8-bit code values) below which a tile is considered unchanged.
const DefaultDiffThreshold = 2.0

// Encoder compresses a stream of RGBA frames into keyframe/delta
// packets. It is closed-loop: prev holds the decoder's reconstruction,
// not the original pixels, so quantization error never accumulates
// into drift between the phone and the service device.
type Encoder struct {
	w, h    int
	quality int
	quant   [blockSize * blockSize]int
	thresh  float64
	prev    []byte // decoder-visible reconstruction, RGBA
	started bool

	// Stats accumulate for the traffic experiments.
	Stats EncoderStats
}

// EncoderStats counts encoder work.
type EncoderStats struct {
	Frames     int
	KeyFrames  int
	TilesSent  int
	TilesTotal int
	BytesOut   int64
	PixelsIn   int64
}

// NewEncoder returns an encoder for w×h RGBA frames at the given JPEG-
// style quality (1..100).
func NewEncoder(w, h, quality int) *Encoder {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("turbo: encoder size %dx%d", w, h))
	}
	return &Encoder{
		w: w, h: h,
		quality: quality,
		quant:   quantTable(quality),
		thresh:  DefaultDiffThreshold,
		prev:    make([]byte, w*h*4),
	}
}

// SetDiffThreshold overrides the changed-tile sensitivity. Zero makes
// every nonidentical tile ship.
func (e *Encoder) SetDiffThreshold(t float64) { e.thresh = t }

// tilesAcross returns tile grid dimensions (ceil division).
func tilesDim(px int) int { return (px + blockSize - 1) / blockSize }

// Encode compresses one frame (len must be w*h*4) and returns the
// packet. The first frame is a keyframe; later frames are deltas unless
// forceKey is set.
func (e *Encoder) Encode(frame []byte, forceKey bool) ([]byte, error) {
	if len(frame) != e.w*e.h*4 {
		return nil, fmt.Errorf("%w: got %d bytes, want %d", ErrBadSize, len(frame), e.w*e.h*4)
	}
	key := forceKey || !e.started
	e.started = true

	tw, th := tilesDim(e.w), tilesDim(e.h)
	kind := byte(packetDelta)
	if key {
		kind = packetKey
	}
	out := []byte{kind}
	out = binary.AppendUvarint(out, uint64(e.w))
	out = binary.AppendUvarint(out, uint64(e.h))
	countAt := len(out)
	out = append(out, 0, 0, 0, 0) // fixed 32-bit tile count, patched below

	var sent uint32
	var yBlk, cbBlk, crBlk [blockSize * blockSize]float64
	for ty := 0; ty < th; ty++ {
		for tx := 0; tx < tw; tx++ {
			e.Stats.TilesTotal++
			if !key && !e.tileChanged(frame, tx, ty) {
				continue
			}
			e.loadTile(frame, tx, ty, &yBlk, &cbBlk, &crBlk)
			out = binary.AppendUvarint(out, uint64(ty*tw+tx))
			for _, blk := range [...]*[blockSize * blockSize]float64{&yBlk, &cbBlk, &crBlk} {
				out = e.encodeBlock(out, blk)
			}
			// Reconstruct into prev exactly as the decoder will.
			e.storeTile(e.prev, tx, ty, &yBlk, &cbBlk, &crBlk)
			sent++
		}
	}
	binary.LittleEndian.PutUint32(out[countAt:], sent)

	e.Stats.Frames++
	if key {
		e.Stats.KeyFrames++
	}
	e.Stats.TilesSent += int(sent)
	e.Stats.BytesOut += int64(len(out))
	e.Stats.PixelsIn += int64(e.w * e.h)
	return out, nil
}

// tileChanged compares the frame tile against the reconstruction using
// mean absolute difference over RGB.
func (e *Encoder) tileChanged(frame []byte, tx, ty int) bool {
	x0, y0 := tx*blockSize, ty*blockSize
	var sad, n float64
	for dy := 0; dy < blockSize; dy++ {
		y := y0 + dy
		if y >= e.h {
			break
		}
		row := (y*e.w + x0) * 4
		for dx := 0; dx < blockSize; dx++ {
			if x0+dx >= e.w {
				break
			}
			i := row + dx*4
			sad += absDiff(frame[i], e.prev[i]) + absDiff(frame[i+1], e.prev[i+1]) + absDiff(frame[i+2], e.prev[i+2])
			n += 3
		}
	}
	return n > 0 && sad/n > e.thresh
}

func absDiff(a, b byte) float64 {
	if a > b {
		return float64(a - b)
	}
	return float64(b - a)
}

// loadTile converts a tile to YCbCr blocks (edge tiles replicate the
// last row/column) and DCT-quantizes them in place: after the call the
// blocks hold the *reconstructed* (dequantized, inverse-transformed)
// samples, ready for storeTile.
func (e *Encoder) loadTile(frame []byte, tx, ty int, yBlk, cbBlk, crBlk *[blockSize * blockSize]float64) {
	x0, y0 := tx*blockSize, ty*blockSize
	for dy := 0; dy < blockSize; dy++ {
		sy := y0 + dy
		if sy >= e.h {
			sy = e.h - 1
		}
		for dx := 0; dx < blockSize; dx++ {
			sx := x0 + dx
			if sx >= e.w {
				sx = e.w - 1
			}
			i := (sy*e.w + sx) * 4
			y, cb, cr := rgbToYCbCr(float64(frame[i]), float64(frame[i+1]), float64(frame[i+2]))
			k := dy*blockSize + dx
			yBlk[k] = y - 128
			cbBlk[k] = cb - 128
			crBlk[k] = cr - 128
		}
	}
}

// encodeBlock forward-transforms, quantizes, entropy-codes the block
// into out, then reconstructs the block in place (dequantize + IDCT) so
// the caller can mirror the decoder's state.
func (e *Encoder) encodeBlock(out []byte, blk *[blockSize * blockSize]float64) []byte {
	var freq [blockSize * blockSize]float64
	fdct8(&freq, blk)
	var q [blockSize * blockSize]int32
	for i := 0; i < blockSize*blockSize; i++ {
		q[i] = int32(roundHalfAway(freq[i] / float64(e.quant[i])))
	}
	out = appendCoeffs(out, &q)
	// Reconstruct.
	for i := 0; i < blockSize*blockSize; i++ {
		freq[i] = float64(q[i]) * float64(e.quant[i])
	}
	idct8(blk, &freq)
	return out
}

func roundHalfAway(v float64) float64 {
	if v >= 0 {
		return float64(int64(v + 0.5))
	}
	return float64(int64(v - 0.5))
}

// appendCoeffs zig-zag-orders the quantized coefficients and encodes
// them as (zeroRun uvarint, value varint) pairs, with a 0-run sentinel
// terminating at end-of-block once the tail is all zero.
func appendCoeffs(out []byte, q *[blockSize * blockSize]int32) []byte {
	last := -1
	for i := blockSize*blockSize - 1; i >= 0; i-- {
		if q[_zigzag[i]] != 0 {
			last = i
			break
		}
	}
	out = binary.AppendUvarint(out, uint64(last+1))
	run := 0
	for i := 0; i <= last; i++ {
		v := q[_zigzag[i]]
		if v == 0 {
			run++
			continue
		}
		out = binary.AppendUvarint(out, uint64(run))
		out = binary.AppendVarint(out, int64(v))
		run = 0
	}
	return out
}

// storeTile writes reconstructed YCbCr blocks back into an RGBA buffer.
func (e *Encoder) storeTile(dst []byte, tx, ty int, yBlk, cbBlk, crBlk *[blockSize * blockSize]float64) {
	storeTileInto(dst, e.w, e.h, tx, ty, yBlk, cbBlk, crBlk)
}

func storeTileInto(dst []byte, w, h, tx, ty int, yBlk, cbBlk, crBlk *[blockSize * blockSize]float64) {
	x0, y0 := tx*blockSize, ty*blockSize
	for dy := 0; dy < blockSize; dy++ {
		py := y0 + dy
		if py >= h {
			break
		}
		for dx := 0; dx < blockSize; dx++ {
			px := x0 + dx
			if px >= w {
				break
			}
			k := dy*blockSize + dx
			r, g, b := yCbCrToRGB(yBlk[k]+128, cbBlk[k]+128, crBlk[k]+128)
			i := (py*w + px) * 4
			dst[i] = byte(r + 0.5)
			dst[i+1] = byte(g + 0.5)
			dst[i+2] = byte(b + 0.5)
			dst[i+3] = 255
		}
	}
}

// Decoder reconstructs the frame stream from packets.
type Decoder struct {
	w, h    int
	quality int
	quant   [blockSize * blockSize]int
	frame   []byte
	started bool

	// Stats accumulate decoded volume.
	Stats DecoderStats
}

// DecoderStats counts decoder work.
type DecoderStats struct {
	Frames  int
	Tiles   int
	BytesIn int64
}

// NewDecoder returns a decoder matching NewEncoder(w, h, quality).
func NewDecoder(w, h, quality int) *Decoder {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("turbo: decoder size %dx%d", w, h))
	}
	return &Decoder{
		w: w, h: h,
		quality: quality,
		quant:   quantTable(quality),
		frame:   make([]byte, w*h*4),
	}
}

// Decode applies one packet and returns the current full frame. The
// returned slice aliases the decoder's internal buffer; callers that
// retain it across Decode calls must copy.
func (d *Decoder) Decode(packet []byte) ([]byte, error) {
	if len(packet) < 1 {
		return nil, fmt.Errorf("%w: empty", ErrBadPacket)
	}
	kind := packet[0]
	if kind != packetKey && kind != packetDelta {
		return nil, fmt.Errorf("%w: kind %d", ErrBadPacket, kind)
	}
	p := packet[1:]
	w, n := binary.Uvarint(p)
	if n <= 0 {
		return nil, fmt.Errorf("%w: width", ErrBadPacket)
	}
	p = p[n:]
	h, n := binary.Uvarint(p)
	if n <= 0 {
		return nil, fmt.Errorf("%w: height", ErrBadPacket)
	}
	p = p[n:]
	if int(w) != d.w || int(h) != d.h {
		return nil, fmt.Errorf("%w: packet %dx%d, decoder %dx%d", ErrBadSize, w, h, d.w, d.h)
	}
	if kind == packetDelta && !d.started {
		return nil, fmt.Errorf("%w: delta before keyframe", ErrBadPacket)
	}
	if len(p) < 4 {
		return nil, fmt.Errorf("%w: tile count", ErrBadPacket)
	}
	count := binary.LittleEndian.Uint32(p)
	p = p[4:]

	tw, th := tilesDim(d.w), tilesDim(d.h)
	maxTiles := tw * th
	if int(count) > maxTiles {
		return nil, fmt.Errorf("%w: %d tiles, grid has %d", ErrBadPacket, count, maxTiles)
	}
	var yBlk, cbBlk, crBlk [blockSize * blockSize]float64
	for t := uint32(0); t < count; t++ {
		idx, n := binary.Uvarint(p)
		if n <= 0 || int(idx) >= maxTiles {
			return nil, fmt.Errorf("%w: tile index", ErrBadPacket)
		}
		p = p[n:]
		for _, blk := range [...]*[blockSize * blockSize]float64{&yBlk, &cbBlk, &crBlk} {
			rest, err := d.decodeBlock(p, blk)
			if err != nil {
				return nil, err
			}
			p = rest
		}
		storeTileInto(d.frame, d.w, d.h, int(idx)%tw, int(idx)/tw, &yBlk, &cbBlk, &crBlk)
		d.Stats.Tiles++
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadPacket, len(p))
	}
	d.started = true
	d.Stats.Frames++
	d.Stats.BytesIn += int64(len(packet))
	return d.frame, nil
}

// decodeBlock parses one entropy-coded block and inverse-transforms it.
func (d *Decoder) decodeBlock(p []byte, blk *[blockSize * blockSize]float64) ([]byte, error) {
	total, n := binary.Uvarint(p)
	if n <= 0 || total > blockSize*blockSize {
		return nil, fmt.Errorf("%w: coeff count", ErrBadPacket)
	}
	p = p[n:]
	var q [blockSize * blockSize]int32
	for i := 0; i < int(total); {
		run, n := binary.Uvarint(p)
		if n <= 0 {
			return nil, fmt.Errorf("%w: zero run", ErrBadPacket)
		}
		p = p[n:]
		i += int(run)
		if i >= int(total) {
			return nil, fmt.Errorf("%w: run past block", ErrBadPacket)
		}
		v, n := binary.Varint(p)
		if n <= 0 {
			return nil, fmt.Errorf("%w: coeff value", ErrBadPacket)
		}
		p = p[n:]
		q[_zigzag[i]] = int32(v)
		i++
	}
	var freq [blockSize * blockSize]float64
	for i := 0; i < blockSize*blockSize; i++ {
		freq[i] = float64(q[i]) * float64(d.quant[i])
	}
	idct8(blk, &freq)
	return p, nil
}

// PSNR computes peak signal-to-noise ratio between two same-length RGBA
// buffers, ignoring alpha. Identical inputs return +Inf.
func PSNR(a, b []byte) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return 0
	}
	var mse float64
	n := 0
	for i := 0; i+3 < len(a); i += 4 {
		for k := 0; k < 3; k++ {
			d := float64(a[i+k]) - float64(b[i+k])
			mse += d * d
			n++
		}
	}
	mse /= float64(n)
	if mse == 0 {
		return math.Inf(1)
	}
	return 10 * math.Log10(255*255/mse)
}
