package turbo

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"

	"github.com/gbooster/gbooster/internal/parallel"
)

// Codec errors.
var (
	ErrBadPacket = errors.New("turbo: malformed packet")
	ErrBadSize   = errors.New("turbo: frame size mismatch")
)

// Packet kinds.
const (
	packetKey   = 1 // every tile encoded
	packetDelta = 2 // only changed tiles encoded
)

// DefaultQuality balances the paper's reported ~25:1 compression
// against visible artifacts.
const DefaultQuality = 60

// DefaultDiffThreshold is the per-tile mean absolute difference (in
// 8-bit code values) below which a tile is considered unchanged.
const DefaultDiffThreshold = 2.0

// Encoder compresses a stream of RGBA frames into keyframe/delta
// packets. It is closed-loop: prev holds the decoder's reconstruction,
// not the original pixels, so quantization error never accumulates
// into drift between the phone and the service device.
type Encoder struct {
	w, h    int
	quality int
	quant   [blockSize * blockSize]int
	thresh  float64
	prev    []byte // decoder-visible reconstruction, RGBA
	started bool

	// par is the tile-parallel worker degree; <= 1 keeps the serial
	// reference path. Tiles are independent — each reads only its own
	// region of frame/prev and writes only its own region of prev — so
	// the parallel path produces byte-identical packets (see
	// encodeTilesParallel and the determinism tests).
	par     int
	tileBuf [][]byte // per-tile encoded output, reused across frames
	tileOn  []bool   // per-tile "shipped" flags, reused across frames

	// Stats accumulate for the traffic experiments.
	Stats EncoderStats
}

// EncoderStats counts encoder work.
type EncoderStats struct {
	Frames     int
	KeyFrames  int
	TilesSent  int
	TilesTotal int
	BytesOut   int64
	PixelsIn   int64
}

// NewEncoder returns an encoder for w×h RGBA frames at the given JPEG-
// style quality (1..100).
func NewEncoder(w, h, quality int) *Encoder {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("turbo: encoder size %dx%d", w, h))
	}
	return &Encoder{
		w: w, h: h,
		quality: quality,
		quant:   quantTable(quality),
		thresh:  DefaultDiffThreshold,
		prev:    make([]byte, w*h*4),
	}
}

// SetDiffThreshold overrides the changed-tile sensitivity. Zero makes
// every nonidentical tile ship.
func (e *Encoder) SetDiffThreshold(t float64) { e.thresh = t }

// SetParallelism sets the tile-parallel worker degree: n <= 0 means one
// worker per CPU, n == 1 the serial reference path. Output is
// byte-identical at every degree.
func (e *Encoder) SetParallelism(n int) { e.par = parallel.Degree(n) }

// tilesAcross returns tile grid dimensions (ceil division).
func tilesDim(px int) int { return (px + blockSize - 1) / blockSize }

// Encode compresses one frame (len must be w*h*4) and returns the
// packet. The first frame is a keyframe; later frames are deltas unless
// forceKey is set.
func (e *Encoder) Encode(frame []byte, forceKey bool) ([]byte, error) {
	if len(frame) != e.w*e.h*4 {
		return nil, fmt.Errorf("%w: got %d bytes, want %d", ErrBadSize, len(frame), e.w*e.h*4)
	}
	key := forceKey || !e.started
	e.started = true

	tw, th := tilesDim(e.w), tilesDim(e.h)
	kind := byte(packetDelta)
	if key {
		kind = packetKey
	}
	out := []byte{kind}
	out = binary.AppendUvarint(out, uint64(e.w))
	out = binary.AppendUvarint(out, uint64(e.h))
	countAt := len(out)
	out = append(out, 0, 0, 0, 0) // fixed 32-bit tile count, patched below

	var sent uint32
	if e.par > 1 && tw*th > 1 {
		out, sent = e.encodeTilesParallel(out, frame, key, tw, th)
	} else {
		var yBlk, cbBlk, crBlk [blockSize * blockSize]float64
		for ty := 0; ty < th; ty++ {
			for tx := 0; tx < tw; tx++ {
				if !key && !e.tileChanged(frame, tx, ty) {
					continue
				}
				out = e.encodeTileInto(out, frame, tx, ty, tw, &yBlk, &cbBlk, &crBlk)
				sent++
			}
		}
	}
	e.Stats.TilesTotal += tw * th
	binary.LittleEndian.PutUint32(out[countAt:], sent)

	e.Stats.Frames++
	if key {
		e.Stats.KeyFrames++
	}
	e.Stats.TilesSent += int(sent)
	e.Stats.BytesOut += int64(len(out))
	e.Stats.PixelsIn += int64(e.w * e.h)
	return out, nil
}

// encodeTileInto appends one tile's entry — index uvarint plus the
// three entropy-coded YCbCr blocks — to out, and mirrors the decoder's
// reconstruction into prev. Both the serial loop and the parallel path
// funnel through here, which is what makes their output byte-identical
// by construction.
func (e *Encoder) encodeTileInto(out []byte, frame []byte, tx, ty, tw int, yBlk, cbBlk, crBlk *[blockSize * blockSize]float64) []byte {
	e.loadTile(frame, tx, ty, yBlk, cbBlk, crBlk)
	out = binary.AppendUvarint(out, uint64(ty*tw+tx))
	for _, blk := range [...]*[blockSize * blockSize]float64{yBlk, cbBlk, crBlk} {
		out = e.encodeBlock(out, blk)
	}
	// Reconstruct into prev exactly as the decoder will.
	e.storeTile(e.prev, tx, ty, yBlk, cbBlk, crBlk)
	return out
}

// encodeTilesParallel fans the tile grid out across the shared worker
// pool. Safety and determinism: tile t reads frame (never written) and
// its own tile region of prev (for the change check), writes its own
// tile region of prev (reconstruction) and its own tileBuf[t]/tileOn[t]
// slots — all disjoint across tiles. The per-tile buffers are then
// joined in grid order, reproducing the serial packet byte for byte.
func (e *Encoder) encodeTilesParallel(out []byte, frame []byte, key bool, tw, th int) ([]byte, uint32) {
	n := tw * th
	if cap(e.tileBuf) < n {
		e.tileBuf = make([][]byte, n)
		e.tileOn = make([]bool, n)
	}
	tileBuf, tileOn := e.tileBuf[:n], e.tileOn[:n]
	parallel.Do(e.par, n, func(lo, hi int) {
		var yBlk, cbBlk, crBlk [blockSize * blockSize]float64
		for t := lo; t < hi; t++ {
			tx, ty := t%tw, t/tw
			if !key && !e.tileChanged(frame, tx, ty) {
				tileOn[t] = false
				continue
			}
			tileOn[t] = true
			tileBuf[t] = e.encodeTileInto(tileBuf[t][:0], frame, tx, ty, tw, &yBlk, &cbBlk, &crBlk)
		}
	})
	var sent uint32
	for t := 0; t < n; t++ {
		if tileOn[t] {
			out = append(out, tileBuf[t]...)
			sent++
		}
	}
	return out, sent
}

// tileChanged compares the frame tile against the reconstruction using
// mean absolute difference over RGB.
func (e *Encoder) tileChanged(frame []byte, tx, ty int) bool {
	x0, y0 := tx*blockSize, ty*blockSize
	var sad, n float64
	for dy := 0; dy < blockSize; dy++ {
		y := y0 + dy
		if y >= e.h {
			break
		}
		row := (y*e.w + x0) * 4
		for dx := 0; dx < blockSize; dx++ {
			if x0+dx >= e.w {
				break
			}
			i := row + dx*4
			sad += absDiff(frame[i], e.prev[i]) + absDiff(frame[i+1], e.prev[i+1]) + absDiff(frame[i+2], e.prev[i+2])
			n += 3
		}
	}
	return n > 0 && sad/n > e.thresh
}

func absDiff(a, b byte) float64 {
	if a > b {
		return float64(a - b)
	}
	return float64(b - a)
}

// loadTile converts a tile to YCbCr blocks (edge tiles replicate the
// last row/column) and DCT-quantizes them in place: after the call the
// blocks hold the *reconstructed* (dequantized, inverse-transformed)
// samples, ready for storeTile.
func (e *Encoder) loadTile(frame []byte, tx, ty int, yBlk, cbBlk, crBlk *[blockSize * blockSize]float64) {
	x0, y0 := tx*blockSize, ty*blockSize
	for dy := 0; dy < blockSize; dy++ {
		sy := y0 + dy
		if sy >= e.h {
			sy = e.h - 1
		}
		for dx := 0; dx < blockSize; dx++ {
			sx := x0 + dx
			if sx >= e.w {
				sx = e.w - 1
			}
			i := (sy*e.w + sx) * 4
			y, cb, cr := rgbToYCbCr(float64(frame[i]), float64(frame[i+1]), float64(frame[i+2]))
			k := dy*blockSize + dx
			yBlk[k] = y - 128
			cbBlk[k] = cb - 128
			crBlk[k] = cr - 128
		}
	}
}

// encodeBlock forward-transforms, quantizes, entropy-codes the block
// into out, then reconstructs the block in place (dequantize + IDCT) so
// the caller can mirror the decoder's state.
func (e *Encoder) encodeBlock(out []byte, blk *[blockSize * blockSize]float64) []byte {
	var freq [blockSize * blockSize]float64
	fdct8(&freq, blk)
	var q [blockSize * blockSize]int32
	for i := 0; i < blockSize*blockSize; i++ {
		q[i] = int32(roundHalfAway(freq[i] / float64(e.quant[i])))
	}
	out = appendCoeffs(out, &q)
	// Reconstruct.
	for i := 0; i < blockSize*blockSize; i++ {
		freq[i] = float64(q[i]) * float64(e.quant[i])
	}
	idct8(blk, &freq)
	return out
}

func roundHalfAway(v float64) float64 {
	if v >= 0 {
		return float64(int64(v + 0.5))
	}
	return float64(int64(v - 0.5))
}

// appendCoeffs zig-zag-orders the quantized coefficients and encodes
// them as (zeroRun uvarint, value varint) pairs, with a 0-run sentinel
// terminating at end-of-block once the tail is all zero.
func appendCoeffs(out []byte, q *[blockSize * blockSize]int32) []byte {
	last := -1
	for i := blockSize*blockSize - 1; i >= 0; i-- {
		if q[_zigzag[i]] != 0 {
			last = i
			break
		}
	}
	out = binary.AppendUvarint(out, uint64(last+1))
	run := 0
	for i := 0; i <= last; i++ {
		v := q[_zigzag[i]]
		if v == 0 {
			run++
			continue
		}
		out = binary.AppendUvarint(out, uint64(run))
		out = binary.AppendVarint(out, int64(v))
		run = 0
	}
	return out
}

// storeTile writes reconstructed YCbCr blocks back into an RGBA buffer.
func (e *Encoder) storeTile(dst []byte, tx, ty int, yBlk, cbBlk, crBlk *[blockSize * blockSize]float64) {
	storeTileInto(dst, e.w, e.h, tx, ty, yBlk, cbBlk, crBlk)
}

func storeTileInto(dst []byte, w, h, tx, ty int, yBlk, cbBlk, crBlk *[blockSize * blockSize]float64) {
	x0, y0 := tx*blockSize, ty*blockSize
	for dy := 0; dy < blockSize; dy++ {
		py := y0 + dy
		if py >= h {
			break
		}
		for dx := 0; dx < blockSize; dx++ {
			px := x0 + dx
			if px >= w {
				break
			}
			k := dy*blockSize + dx
			r, g, b := yCbCrToRGB(yBlk[k]+128, cbBlk[k]+128, crBlk[k]+128)
			i := (py*w + px) * 4
			dst[i] = byte(r + 0.5)
			dst[i+1] = byte(g + 0.5)
			dst[i+2] = byte(b + 0.5)
			dst[i+3] = 255
		}
	}
}

// Decoder reconstructs the frame stream from packets.
type Decoder struct {
	w, h    int
	quality int
	quant   [blockSize * blockSize]int
	frame   []byte
	started bool

	// par is the tile-parallel worker degree; <= 1 keeps the serial
	// reference path. See decodeTilesParallel for the determinism
	// argument.
	par    int
	spans  []tileSpan // scratch: scanned tile entries, reused
	work   []int      // scratch: deduped span positions, reused
	winner []int32    // scratch: tile index -> last span position

	// Stats accumulate decoded volume.
	Stats DecoderStats
}

// tileSpan is one scanned tile entry: its grid index and the byte range
// holding its three entropy-coded blocks.
type tileSpan struct {
	idx  int
	data []byte
}

// DecoderStats counts decoder work.
type DecoderStats struct {
	Frames  int
	Tiles   int
	BytesIn int64
}

// NewDecoder returns a decoder matching NewEncoder(w, h, quality).
func NewDecoder(w, h, quality int) *Decoder {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("turbo: decoder size %dx%d", w, h))
	}
	return &Decoder{
		w: w, h: h,
		quality: quality,
		quant:   quantTable(quality),
		frame:   make([]byte, w*h*4),
	}
}

// SetParallelism sets the tile-parallel worker degree: n <= 0 means one
// worker per CPU, n == 1 the serial reference path. Successful decodes
// produce byte-identical frames at every degree.
func (d *Decoder) SetParallelism(n int) { d.par = parallel.Degree(n) }

// Decode applies one packet and returns the current full frame. The
// returned slice aliases the decoder's internal buffer; callers that
// retain it across Decode calls must copy.
func (d *Decoder) Decode(packet []byte) ([]byte, error) {
	if len(packet) < 1 {
		return nil, fmt.Errorf("%w: empty", ErrBadPacket)
	}
	kind := packet[0]
	if kind != packetKey && kind != packetDelta {
		return nil, fmt.Errorf("%w: kind %d", ErrBadPacket, kind)
	}
	p := packet[1:]
	w, n := binary.Uvarint(p)
	if n <= 0 {
		return nil, fmt.Errorf("%w: width", ErrBadPacket)
	}
	p = p[n:]
	h, n := binary.Uvarint(p)
	if n <= 0 {
		return nil, fmt.Errorf("%w: height", ErrBadPacket)
	}
	p = p[n:]
	if int(w) != d.w || int(h) != d.h {
		return nil, fmt.Errorf("%w: packet %dx%d, decoder %dx%d", ErrBadSize, w, h, d.w, d.h)
	}
	if kind == packetDelta && !d.started {
		return nil, fmt.Errorf("%w: delta before keyframe", ErrBadPacket)
	}
	if len(p) < 4 {
		return nil, fmt.Errorf("%w: tile count", ErrBadPacket)
	}
	count := binary.LittleEndian.Uint32(p)
	p = p[4:]

	tw, th := tilesDim(d.w), tilesDim(d.h)
	maxTiles := tw * th
	if int(count) > maxTiles {
		return nil, fmt.Errorf("%w: %d tiles, grid has %d", ErrBadPacket, count, maxTiles)
	}
	if d.par > 1 && count > 1 {
		return d.decodeTilesParallel(packet, p, int(count), tw, maxTiles)
	}
	var yBlk, cbBlk, crBlk [blockSize * blockSize]float64
	for t := uint32(0); t < count; t++ {
		idx, n := binary.Uvarint(p)
		if n <= 0 || int(idx) >= maxTiles {
			return nil, fmt.Errorf("%w: tile index", ErrBadPacket)
		}
		p = p[n:]
		for _, blk := range [...]*[blockSize * blockSize]float64{&yBlk, &cbBlk, &crBlk} {
			rest, err := d.decodeBlock(p, blk)
			if err != nil {
				return nil, err
			}
			p = rest
		}
		storeTileInto(d.frame, d.w, d.h, int(idx)%tw, int(idx)/tw, &yBlk, &cbBlk, &crBlk)
		d.Stats.Tiles++
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadPacket, len(p))
	}
	d.started = true
	d.Stats.Frames++
	d.Stats.BytesIn += int64(len(packet))
	return d.frame, nil
}

// decodeTilesParallel splits the packet in two passes: a serial
// structural scan that locates and validates every tile entry (running
// the exact validation of the serial path, via decodeBlock in scan-only
// mode), then a parallel pass doing the expensive work — dequantize,
// IDCT, color conversion, store — across the worker pool. Tiles write
// disjoint frame regions, so after de-duplicating repeated tile indices
// (last entry wins, matching serial overwrite order) the result is
// byte-identical to the serial path. On a malformed packet the scan
// rejects it before any pixel is touched.
func (d *Decoder) decodeTilesParallel(packet, p []byte, count, tw, maxTiles int) ([]byte, error) {
	spans := d.spans[:0]
	for t := 0; t < count; t++ {
		idx, n := binary.Uvarint(p)
		if n <= 0 || int(idx) >= maxTiles {
			return nil, fmt.Errorf("%w: tile index", ErrBadPacket)
		}
		p = p[n:]
		start := p
		for b := 0; b < 3; b++ {
			rest, err := d.decodeBlock(p, nil)
			if err != nil {
				return nil, err
			}
			p = rest
		}
		spans = append(spans, tileSpan{idx: int(idx), data: start[:len(start)-len(p)]})
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadPacket, len(p))
	}
	d.spans = spans

	// Last-wins de-duplication: a (malformed but decodable) packet may
	// list a tile twice; the serial path overwrites in entry order, so
	// only the final entry per tile index may execute in parallel.
	if len(d.winner) < maxTiles {
		d.winner = make([]int32, maxTiles)
	}
	for t, s := range spans {
		d.winner[s.idx] = int32(t)
	}
	work := d.work[:0]
	for t, s := range spans {
		if d.winner[s.idx] == int32(t) {
			work = append(work, t)
		}
	}
	d.work = work

	var (
		errMu  sync.Mutex
		anyErr error
	)
	parallel.Do(d.par, len(work), func(lo, hi int) {
		var yBlk, cbBlk, crBlk [blockSize * blockSize]float64
		for k := lo; k < hi; k++ {
			s := spans[work[k]]
			q := s.data
			for _, blk := range [...]*[blockSize * blockSize]float64{&yBlk, &cbBlk, &crBlk} {
				rest, err := d.decodeBlock(q, blk)
				if err != nil {
					// Unreachable: the scan already validated this span.
					errMu.Lock()
					if anyErr == nil {
						anyErr = err
					}
					errMu.Unlock()
					return
				}
				q = rest
			}
			storeTileInto(d.frame, d.w, d.h, s.idx%tw, s.idx/tw, &yBlk, &cbBlk, &crBlk)
		}
	})
	if anyErr != nil {
		return nil, anyErr
	}
	d.Stats.Tiles += len(spans)
	d.started = true
	d.Stats.Frames++
	d.Stats.BytesIn += int64(len(packet))
	return d.frame, nil
}

// decodeBlock parses one entropy-coded block and inverse-transforms it
// into blk. A nil blk runs in scan-only mode: full parse and validation
// with the transform skipped — the parallel path uses it so structural
// errors surface exactly as the serial path reports them.
func (d *Decoder) decodeBlock(p []byte, blk *[blockSize * blockSize]float64) ([]byte, error) {
	total, n := binary.Uvarint(p)
	if n <= 0 || total > blockSize*blockSize {
		return nil, fmt.Errorf("%w: coeff count", ErrBadPacket)
	}
	p = p[n:]
	var q [blockSize * blockSize]int32
	for i := 0; i < int(total); {
		run, n := binary.Uvarint(p)
		if n <= 0 {
			return nil, fmt.Errorf("%w: zero run", ErrBadPacket)
		}
		p = p[n:]
		i += int(run)
		if i >= int(total) {
			return nil, fmt.Errorf("%w: run past block", ErrBadPacket)
		}
		v, n := binary.Varint(p)
		if n <= 0 {
			return nil, fmt.Errorf("%w: coeff value", ErrBadPacket)
		}
		p = p[n:]
		q[_zigzag[i]] = int32(v)
		i++
	}
	if blk == nil {
		return p, nil
	}
	var freq [blockSize * blockSize]float64
	for i := 0; i < blockSize*blockSize; i++ {
		freq[i] = float64(q[i]) * float64(d.quant[i])
	}
	idct8(blk, &freq)
	return p, nil
}

// PSNR computes peak signal-to-noise ratio between two same-length RGBA
// buffers, ignoring alpha. Identical inputs return +Inf.
func PSNR(a, b []byte) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return 0
	}
	var mse float64
	n := 0
	for i := 0; i+3 < len(a); i += 4 {
		for k := 0; k < 3; k++ {
			d := float64(a[i+k]) - float64(b[i+k])
			mse += d * d
			n++
		}
	}
	mse /= float64(n)
	if mse == 0 {
		return math.Inf(1)
	}
	return 10 * math.Log10(255*255/mse)
}
