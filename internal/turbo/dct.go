// Package turbo implements the incremental frame codec GBooster uses on
// the downlink (paper §V-A). Following the TurboVNC lineage the paper
// cites, the encoder transmits only the tiles that changed since the
// previous frame and compresses each changed tile with a JPEG-style
// transform pipeline (YCbCr conversion, 8×8 DCT, quantization, zig-zag,
// zero-run entropy coding). The encoder is closed-loop: it reconstructs
// what the decoder will see, so lossy tiles never drift.
//
// The transform hot path is pure fixed-point integer arithmetic
// (DESIGN.md §14): an LLM-style scaled-integer DCT/IDCT, integer YCbCr
// conversion, and quantization by precomputed reciprocal multiply. The
// float64 reference pipeline this replaced produced different wire
// bytes; both sides of a stream always run the same integer code, so
// only self-consistency (closed-loop, byte-identity across parallel
// degrees) matters, not cross-version bit equality.
//
// The package also provides VideoEncoder, a deliberately naive
// motion-search encoder standing in for x264. The paper's finding —
// software video encoding is an order of magnitude too slow on weak
// CPUs while the turbo codec sustains real-time rates — reproduces with
// these two implementations.
package turbo

// blockSize is the DCT block and tile edge length.
const blockSize = 8

// Fixed-point DCT parameters (LLM / jfdctint lineage). constBits is the
// precision of the trig constants; pass1Bits of extra headroom is kept
// between the row and column passes so pass-1 rounding error stays below
// the final descale.
const (
	constBits = 13
	pass1Bits = 2
)

// Scaled trig constants: fix_K = round(K * 2^constBits).
const (
	fix0_298631336 = 2446
	fix0_390180644 = 3196
	fix0_541196100 = 4433
	fix0_765366865 = 6270
	fix0_899976223 = 7373
	fix1_175875602 = 9633
	fix1_501321110 = 12299
	fix1_847759065 = 15137
	fix1_961570560 = 16069
	fix2_053119869 = 16819
	fix2_562915447 = 20995
	fix3_072711026 = 25172
)

// descale rounds x to n fewer fractional bits (round half up).
func descale(x, n int) int { return (x + (1 << (n - 1))) >> n }

// fdct8 computes the forward 8×8 DCT-II of blk in place. Input samples
// are centred on 0 (range ±255 is safe); the output coefficients are
// scaled by 8 relative to the orthonormal DCT — the ×8 is folded into
// the quantizer reciprocals (see buildQuantizers) instead of being
// descaled away here, which saves one rounding per coefficient.
func fdct8(blk *[blockSize * blockSize]int32) {
	// Pass 1: rows. Intermediate results carry pass1Bits extra
	// fractional bits into pass 2.
	for i := 0; i < blockSize*blockSize; i += blockSize {
		tmp0 := int(blk[i+0]) + int(blk[i+7])
		tmp7 := int(blk[i+0]) - int(blk[i+7])
		tmp1 := int(blk[i+1]) + int(blk[i+6])
		tmp6 := int(blk[i+1]) - int(blk[i+6])
		tmp2 := int(blk[i+2]) + int(blk[i+5])
		tmp5 := int(blk[i+2]) - int(blk[i+5])
		tmp3 := int(blk[i+3]) + int(blk[i+4])
		tmp4 := int(blk[i+3]) - int(blk[i+4])

		// Even part.
		tmp10 := tmp0 + tmp3
		tmp13 := tmp0 - tmp3
		tmp11 := tmp1 + tmp2
		tmp12 := tmp1 - tmp2
		blk[i+0] = int32((tmp10 + tmp11) << pass1Bits)
		blk[i+4] = int32((tmp10 - tmp11) << pass1Bits)
		z1 := (tmp12 + tmp13) * fix0_541196100
		blk[i+2] = int32(descale(z1+tmp13*fix0_765366865, constBits-pass1Bits))
		blk[i+6] = int32(descale(z1-tmp12*fix1_847759065, constBits-pass1Bits))

		// Odd part.
		z1 = tmp4 + tmp7
		z2 := tmp5 + tmp6
		z3 := tmp4 + tmp6
		z4 := tmp5 + tmp7
		z5 := (z3 + z4) * fix1_175875602
		tmp4 *= fix0_298631336
		tmp5 *= fix2_053119869
		tmp6 *= fix3_072711026
		tmp7 *= fix1_501321110
		z1 = -z1 * fix0_899976223
		z2 = -z2 * fix2_562915447
		z3 = -z3*fix1_961570560 + z5
		z4 = -z4*fix0_390180644 + z5
		blk[i+7] = int32(descale(tmp4+z1+z3, constBits-pass1Bits))
		blk[i+5] = int32(descale(tmp5+z2+z4, constBits-pass1Bits))
		blk[i+3] = int32(descale(tmp6+z2+z3, constBits-pass1Bits))
		blk[i+1] = int32(descale(tmp7+z1+z4, constBits-pass1Bits))
	}
	// Pass 2: columns. Removes the pass1Bits headroom, leaving the ×8
	// block scale.
	for i := 0; i < blockSize; i++ {
		tmp0 := int(blk[i+0*blockSize]) + int(blk[i+7*blockSize])
		tmp7 := int(blk[i+0*blockSize]) - int(blk[i+7*blockSize])
		tmp1 := int(blk[i+1*blockSize]) + int(blk[i+6*blockSize])
		tmp6 := int(blk[i+1*blockSize]) - int(blk[i+6*blockSize])
		tmp2 := int(blk[i+2*blockSize]) + int(blk[i+5*blockSize])
		tmp5 := int(blk[i+2*blockSize]) - int(blk[i+5*blockSize])
		tmp3 := int(blk[i+3*blockSize]) + int(blk[i+4*blockSize])
		tmp4 := int(blk[i+3*blockSize]) - int(blk[i+4*blockSize])

		tmp10 := tmp0 + tmp3
		tmp13 := tmp0 - tmp3
		tmp11 := tmp1 + tmp2
		tmp12 := tmp1 - tmp2
		blk[i+0*blockSize] = int32(descale(tmp10+tmp11, pass1Bits))
		blk[i+4*blockSize] = int32(descale(tmp10-tmp11, pass1Bits))
		z1 := (tmp12 + tmp13) * fix0_541196100
		blk[i+2*blockSize] = int32(descale(z1+tmp13*fix0_765366865, constBits+pass1Bits))
		blk[i+6*blockSize] = int32(descale(z1-tmp12*fix1_847759065, constBits+pass1Bits))

		z1 = tmp4 + tmp7
		z2 := tmp5 + tmp6
		z3 := tmp4 + tmp6
		z4 := tmp5 + tmp7
		z5 := (z3 + z4) * fix1_175875602
		tmp4 *= fix0_298631336
		tmp5 *= fix2_053119869
		tmp6 *= fix3_072711026
		tmp7 *= fix1_501321110
		z1 = -z1 * fix0_899976223
		z2 = -z2 * fix2_562915447
		z3 = -z3*fix1_961570560 + z5
		z4 = -z4*fix0_390180644 + z5
		blk[i+7*blockSize] = int32(descale(tmp4+z1+z3, constBits+pass1Bits))
		blk[i+5*blockSize] = int32(descale(tmp5+z2+z4, constBits+pass1Bits))
		blk[i+3*blockSize] = int32(descale(tmp6+z2+z3, constBits+pass1Bits))
		blk[i+1*blockSize] = int32(descale(tmp7+z1+z4, constBits+pass1Bits))
	}
}

// idct8 computes the inverse 8×8 DCT of blk in place. Input is
// dequantized coefficients at the fdct8 output scale (8× orthonormal);
// the final descale removes both the transform's 8× gain and the
// constBits/pass1Bits working precision, so the output is centred
// spatial samples. Arithmetic is done in int (64-bit on every supported
// target), so even hostile coefficient values — bounded to ±maxCoeff by
// the decoder — cannot overflow.
func idct8(blk *[blockSize * blockSize]int32) {
	// Pass 1: columns, keeping pass1Bits extra precision.
	for i := 0; i < blockSize; i++ {
		// Even part.
		z2 := int(blk[i+2*blockSize])
		z3 := int(blk[i+6*blockSize])
		z1 := (z2 + z3) * fix0_541196100
		tmp2 := z1 - z3*fix1_847759065
		tmp3 := z1 + z2*fix0_765366865
		tmp0 := (int(blk[i+0*blockSize]) + int(blk[i+4*blockSize])) << constBits
		tmp1 := (int(blk[i+0*blockSize]) - int(blk[i+4*blockSize])) << constBits
		tmp10 := tmp0 + tmp3
		tmp13 := tmp0 - tmp3
		tmp11 := tmp1 + tmp2
		tmp12 := tmp1 - tmp2

		// Odd part.
		t0 := int(blk[i+7*blockSize])
		t1 := int(blk[i+5*blockSize])
		t2 := int(blk[i+3*blockSize])
		t3 := int(blk[i+1*blockSize])
		z1 = t0 + t3
		z2 = t1 + t2
		z3 = t0 + t2
		z4 := t1 + t3
		z5 := (z3 + z4) * fix1_175875602
		t0 *= fix0_298631336
		t1 *= fix2_053119869
		t2 *= fix3_072711026
		t3 *= fix1_501321110
		z1 = -z1 * fix0_899976223
		z2 = -z2 * fix2_562915447
		z3 = -z3*fix1_961570560 + z5
		z4 = -z4*fix0_390180644 + z5
		t0 += z1 + z3
		t1 += z2 + z4
		t2 += z2 + z3
		t3 += z1 + z4

		blk[i+0*blockSize] = int32(descale(tmp10+t3, constBits-pass1Bits))
		blk[i+7*blockSize] = int32(descale(tmp10-t3, constBits-pass1Bits))
		blk[i+1*blockSize] = int32(descale(tmp11+t2, constBits-pass1Bits))
		blk[i+6*blockSize] = int32(descale(tmp11-t2, constBits-pass1Bits))
		blk[i+2*blockSize] = int32(descale(tmp12+t1, constBits-pass1Bits))
		blk[i+5*blockSize] = int32(descale(tmp12-t1, constBits-pass1Bits))
		blk[i+3*blockSize] = int32(descale(tmp13+t0, constBits-pass1Bits))
		blk[i+4*blockSize] = int32(descale(tmp13-t0, constBits-pass1Bits))
	}
	// Pass 2: rows. The final shift of constBits+pass1Bits+3 removes the
	// working precision plus the transform's 8× scale.
	for i := 0; i < blockSize*blockSize; i += blockSize {
		z2 := int(blk[i+2])
		z3 := int(blk[i+6])
		z1 := (z2 + z3) * fix0_541196100
		tmp2 := z1 - z3*fix1_847759065
		tmp3 := z1 + z2*fix0_765366865
		tmp0 := (int(blk[i+0]) + int(blk[i+4])) << constBits
		tmp1 := (int(blk[i+0]) - int(blk[i+4])) << constBits
		tmp10 := tmp0 + tmp3
		tmp13 := tmp0 - tmp3
		tmp11 := tmp1 + tmp2
		tmp12 := tmp1 - tmp2

		t0 := int(blk[i+7])
		t1 := int(blk[i+5])
		t2 := int(blk[i+3])
		t3 := int(blk[i+1])
		z1 = t0 + t3
		z2 = t1 + t2
		z3 = t0 + t2
		z4 := t1 + t3
		z5 := (z3 + z4) * fix1_175875602
		t0 *= fix0_298631336
		t1 *= fix2_053119869
		t2 *= fix3_072711026
		t3 *= fix1_501321110
		z1 = -z1 * fix0_899976223
		z2 = -z2 * fix2_562915447
		z3 = -z3*fix1_961570560 + z5
		z4 = -z4*fix0_390180644 + z5
		t0 += z1 + z3
		t1 += z2 + z4
		t2 += z2 + z3
		t3 += z1 + z4

		blk[i+0] = int32(descale(tmp10+t3, constBits+pass1Bits+3))
		blk[i+7] = int32(descale(tmp10-t3, constBits+pass1Bits+3))
		blk[i+1] = int32(descale(tmp11+t2, constBits+pass1Bits+3))
		blk[i+6] = int32(descale(tmp11-t2, constBits+pass1Bits+3))
		blk[i+2] = int32(descale(tmp12+t1, constBits+pass1Bits+3))
		blk[i+5] = int32(descale(tmp12-t1, constBits+pass1Bits+3))
		blk[i+3] = int32(descale(tmp13+t0, constBits+pass1Bits+3))
		blk[i+4] = int32(descale(tmp13-t0, constBits+pass1Bits+3))
	}
}

// _zigzag maps coefficient index -> raster position within a block.
var _zigzag = buildZigzag()

func buildZigzag() [blockSize * blockSize]int {
	var order [blockSize * blockSize]int
	x, y, i := 0, 0, 0
	up := true
	for i < blockSize*blockSize {
		order[i] = y*blockSize + x
		i++
		if up {
			switch {
			case x == blockSize-1:
				y++
				up = false
			case y == 0:
				x++
				up = false
			default:
				x++
				y--
			}
		} else {
			switch {
			case y == blockSize-1:
				x++
				up = true
			case x == 0:
				y++
				up = true
			default:
				x--
				y++
			}
		}
	}
	return order
}

// _baseQuant is the JPEG luminance quantization table; chroma reuses it
// (a simplification documented in DESIGN.md).
var _baseQuant = [blockSize * blockSize]int{
	16, 11, 10, 16, 24, 40, 51, 61,
	12, 12, 14, 19, 26, 58, 60, 55,
	14, 13, 16, 24, 40, 57, 69, 56,
	14, 17, 22, 29, 51, 87, 80, 62,
	18, 22, 37, 56, 68, 109, 103, 77,
	24, 35, 55, 64, 81, 104, 113, 92,
	49, 64, 78, 87, 103, 121, 120, 101,
	72, 92, 95, 98, 112, 100, 103, 99,
}

// clampQuality maps any int onto the valid quality range [1,100]. All
// constructors and the quality byte on the wire go through it, so the
// stored/serialized quality is always the effective one.
func clampQuality(q int) int {
	switch {
	case q < 1:
		return 1
	case q > 100:
		return 100
	default:
		return q
	}
}

// quantTable scales the base table for a quality in [1,100], matching
// the libjpeg convention (50 = base table, 100 = near lossless).
func quantTable(quality int) [blockSize * blockSize]int {
	quality = clampQuality(quality)
	var scale int
	if quality < 50 {
		scale = 5000 / quality
	} else {
		scale = 200 - 2*quality
	}
	var t [blockSize * blockSize]int
	for i, q := range _baseQuant {
		v := (q*scale + 50) / 100
		if v < 1 {
			v = 1
		}
		if v > 255 {
			v = 255
		}
		t[i] = v
	}
	return t
}

// Reciprocal-quantizer precision: quantizing multiplies a coefficient
// by round(2^quantShift / (8*quant)) and shifts right, replacing a
// division per coefficient with a multiply.
const (
	quantShift = 19
	quantHalf  = 1 << (quantShift - 1)
)

// maxCoeff bounds coefficient magnitudes accepted off the wire. The
// encoder never produces |q| > 2048 (±255 samples through the 8×-scaled
// DCT at quant ≥ 1), so the bound only clips hostile packets, keeping
// the IDCT input small enough that its arithmetic stays exact.
const maxCoeff = 1 << 15

// quantizers bundles one quality level's per-coefficient dequantization
// multipliers with the fixed-point reciprocals the encoder quantizes
// by. The transform's 8× output scale is folded into the reciprocal
// (divisor = 8*quant), so dequantized coefficients land at exactly the
// scale idct8 expects with no extra descale step.
type quantizers struct {
	dequant [blockSize * blockSize]int32
	recip   [blockSize * blockSize]int32
}

func buildQuantizers(quality int) quantizers {
	qt := quantTable(quality)
	var z quantizers
	for i, q := range qt {
		z.dequant[i] = int32(q)
		div := q << 3
		z.recip[i] = int32(((1 << quantShift) + div/2) / div)
	}
	return z
}

// Integer color conversion: coefficients scaled by 2^colorBits,
// rounded. The forward luma weights sum to exactly 1<<colorBits, so a
// gray input converts with zero error.
const (
	colorBits = 16
	colorHalf = 1 << (colorBits - 1)
)

// rgbToYCbCr converts one pixel to the JPEG YCbCr color space. Inputs
// are 0..255; y comes back in 0..255 and cb/cr centred on 0.
func rgbToYCbCr(r, g, b int) (y, cb, cr int) {
	y = (19595*r + 38470*g + 7471*b + colorHalf) >> colorBits
	cb = (-11059*r - 21710*g + 32768*b + colorHalf) >> colorBits
	cr = (32768*r - 27439*g - 5329*b + colorHalf) >> colorBits
	return y, cb, cr
}

// yCbCrToRGB converts back (y 0..255, cb/cr centred on 0), clamping to
// [0,255].
func yCbCrToRGB(y, cb, cr int) (r, g, b int) {
	r = clampInt(y+(91881*cr+colorHalf)>>colorBits, 0, 255)
	g = clampInt(y-(22554*cb+46802*cr+colorHalf)>>colorBits, 0, 255)
	b = clampInt(y+(116130*cb+colorHalf)>>colorBits, 0, 255)
	return r, g, b
}
