// Package turbo implements the incremental frame codec GBooster uses on
// the downlink (paper §V-A). Following the TurboVNC lineage the paper
// cites, the encoder transmits only the tiles that changed since the
// previous frame and compresses each changed tile with a JPEG-style
// transform pipeline (YCbCr conversion, 8×8 DCT, quantization, zig-zag,
// zero-run entropy coding). The encoder is closed-loop: it reconstructs
// what the decoder will see, so lossy tiles never drift.
//
// The package also provides VideoEncoder, a deliberately naive
// motion-search encoder standing in for x264. The paper's finding —
// software video encoding is an order of magnitude too slow on weak
// CPUs while the turbo codec sustains real-time rates — reproduces with
// these two implementations.
package turbo

import "math"

// blockSize is the DCT block and tile edge length.
const blockSize = 8

// dctCos[u][x] = cos((2x+1)uπ/16) scaled for a type-II DCT.
var _dctCos [blockSize][blockSize]float64

// _dctAlpha holds the orthonormal scale factors.
var _dctAlpha [blockSize]float64

// initialized at package load; pure math, no goroutines or I/O.
func init() {
	for u := 0; u < blockSize; u++ {
		for x := 0; x < blockSize; x++ {
			_dctCos[u][x] = math.Cos(float64(2*x+1) * float64(u) * math.Pi / 16)
		}
	}
	_dctAlpha[0] = 1 / math.Sqrt2
	for u := 1; u < blockSize; u++ {
		_dctAlpha[u] = 1
	}
}

// fdct8 computes the forward 8×8 DCT-II of src (values centred on 0)
// into dst.
func fdct8(dst, src *[blockSize * blockSize]float64) {
	var tmp [blockSize * blockSize]float64
	// Rows.
	for y := 0; y < blockSize; y++ {
		for u := 0; u < blockSize; u++ {
			var s float64
			for x := 0; x < blockSize; x++ {
				s += src[y*blockSize+x] * _dctCos[u][x]
			}
			tmp[y*blockSize+u] = s * _dctAlpha[u] * 0.5
		}
	}
	// Columns.
	for u := 0; u < blockSize; u++ {
		for v := 0; v < blockSize; v++ {
			var s float64
			for y := 0; y < blockSize; y++ {
				s += tmp[y*blockSize+u] * _dctCos[v][y]
			}
			dst[v*blockSize+u] = s * _dctAlpha[v] * 0.5
		}
	}
}

// idct8 computes the inverse 8×8 DCT into dst.
func idct8(dst, src *[blockSize * blockSize]float64) {
	var tmp [blockSize * blockSize]float64
	// Columns.
	for u := 0; u < blockSize; u++ {
		for y := 0; y < blockSize; y++ {
			var s float64
			for v := 0; v < blockSize; v++ {
				s += _dctAlpha[v] * src[v*blockSize+u] * _dctCos[v][y]
			}
			tmp[y*blockSize+u] = s * 0.5
		}
	}
	// Rows.
	for y := 0; y < blockSize; y++ {
		for x := 0; x < blockSize; x++ {
			var s float64
			for u := 0; u < blockSize; u++ {
				s += _dctAlpha[u] * tmp[y*blockSize+u] * _dctCos[u][x]
			}
			dst[y*blockSize+x] = s * 0.5
		}
	}
}

// _zigzag maps coefficient index -> raster position within a block.
var _zigzag = buildZigzag()

func buildZigzag() [blockSize * blockSize]int {
	var order [blockSize * blockSize]int
	x, y, i := 0, 0, 0
	up := true
	for i < blockSize*blockSize {
		order[i] = y*blockSize + x
		i++
		if up {
			switch {
			case x == blockSize-1:
				y++
				up = false
			case y == 0:
				x++
				up = false
			default:
				x++
				y--
			}
		} else {
			switch {
			case y == blockSize-1:
				x++
				up = true
			case x == 0:
				y++
				up = true
			default:
				x--
				y++
			}
		}
	}
	return order
}

// _baseQuant is the JPEG luminance quantization table; chroma reuses it
// (a simplification documented in DESIGN.md).
var _baseQuant = [blockSize * blockSize]int{
	16, 11, 10, 16, 24, 40, 51, 61,
	12, 12, 14, 19, 26, 58, 60, 55,
	14, 13, 16, 24, 40, 57, 69, 56,
	14, 17, 22, 29, 51, 87, 80, 62,
	18, 22, 37, 56, 68, 109, 103, 77,
	24, 35, 55, 64, 81, 104, 113, 92,
	49, 64, 78, 87, 103, 121, 120, 101,
	72, 92, 95, 98, 112, 100, 103, 99,
}

// quantTable scales the base table for a quality in [1,100], matching
// the libjpeg convention (50 = base table, 100 = near lossless).
func quantTable(quality int) [blockSize * blockSize]int {
	if quality < 1 {
		quality = 1
	}
	if quality > 100 {
		quality = 100
	}
	var scale int
	if quality < 50 {
		scale = 5000 / quality
	} else {
		scale = 200 - 2*quality
	}
	var t [blockSize * blockSize]int
	for i, q := range _baseQuant {
		v := (q*scale + 50) / 100
		if v < 1 {
			v = 1
		}
		if v > 255 {
			v = 255
		}
		t[i] = v
	}
	return t
}

// rgbToYCbCr converts one pixel to the JPEG YCbCr color space
// (full-range, centred on 0 for Y-128 handled by caller).
func rgbToYCbCr(r, g, b float64) (y, cb, cr float64) {
	y = 0.299*r + 0.587*g + 0.114*b
	cb = -0.168736*r - 0.331264*g + 0.5*b + 128
	cr = 0.5*r - 0.418688*g - 0.081312*b + 128
	return y, cb, cr
}

// yCbCrToRGB converts back, clamping to [0,255].
func yCbCrToRGB(y, cb, cr float64) (r, g, b float64) {
	cb -= 128
	cr -= 128
	r = clamp255(y + 1.402*cr)
	g = clamp255(y - 0.344136*cb - 0.714136*cr)
	b = clamp255(y + 1.772*cb)
	return r, g, b
}

func clamp255(v float64) float64 {
	switch {
	case v < 0:
		return 0
	case v > 255:
		return 255
	default:
		return v
	}
}
