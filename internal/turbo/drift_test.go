package turbo

import (
	"bytes"
	"testing"

	"github.com/gbooster/gbooster/internal/sim"
)

// TestClosedLoopNoDriftLongRun is the integer codec's closed-loop
// acceptance gate: over 500 frames of mixed content (scene cuts,
// incremental motion, static repeats, forced keyframes) the encoder's
// prev reconstruction must stay byte-identical to the decoder's output
// after every frame — including across mid-stream quality steps, where
// both sides must switch quantization tables on exactly the same frame.
func TestClosedLoopNoDriftLongRun(t *testing.T) {
	const w, h, frames = 64, 48, 500
	enc := NewEncoder(w, h, 70)
	dec := NewDecoder(w, h, 70)
	rng := sim.NewRNG(11)
	steps := map[int]int{100: 35, 250: 80, 400: 20}
	var frame []byte
	for i := 0; i < frames; i++ {
		if q, ok := steps[i]; ok {
			enc.SetQuality(q)
		}
		switch {
		case i%7 == 0:
			frame = randomFrame(rng, w, h, nil) // scene cut
		case i%3 == 0:
			// Static repeat: usually a zero-tile delta.
		default:
			frame = randomFrame(rng, w, h, frame) // partial motion
		}
		pkt, err := enc.Encode(frame, i%97 == 96)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		got, err := dec.Decode(pkt)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(enc.prev, got) {
			t.Fatalf("frame %d: encoder reconstruction drifted from decoder", i)
		}
	}
	if dec.Stats.QualityChanges != len(steps) {
		t.Fatalf("QualityChanges = %d, want %d", dec.Stats.QualityChanges, len(steps))
	}
	if dec.Quality() != 20 {
		t.Fatalf("final decoder quality = %d, want 20", dec.Quality())
	}
}
