package turbo

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"runtime"
	"testing"

	"github.com/gbooster/gbooster/internal/sim"
)

// uniqueDegrees dedupes a degree list (NumCPU may collide with the
// fixed entries).
func uniqueDegrees(ds []int) []int {
	seen := map[int]bool{}
	var out []int
	for _, d := range ds {
		if !seen[d] {
			seen[d] = true
			out = append(out, d)
		}
	}
	return out
}

// parDegrees are the worker degrees the determinism contract is tested
// at: the serial reference, the smallest parallel case, a deliberately
// odd degree, and the full machine.
func parDegrees() []int {
	return uniqueDegrees([]int{1, 2, 3, runtime.NumCPU()})
}

// benchDegrees are the worker degrees the benchmark suite sweeps; the
// BENCH_dataplane.json speedups compare par=1 against the rest.
func benchDegrees() []int {
	return uniqueDegrees([]int{1, 2, 4, runtime.NumCPU()})
}

// randomFrame fills a w×h RGBA buffer from rng, optionally perturbing
// only a sub-rectangle of base (to exercise the delta path's
// changed-tile selection).
func randomFrame(rng *sim.RNG, w, h int, base []byte) []byte {
	f := make([]byte, w*h*4)
	if base != nil {
		copy(f, base)
		x0, y0 := rng.Intn(w), rng.Intn(h)
		bw, bh := 1+rng.Intn(w-x0), 1+rng.Intn(h-y0)
		for y := y0; y < y0+bh; y++ {
			for x := x0; x < x0+bw; x++ {
				i := (y*w + x) * 4
				f[i], f[i+1], f[i+2], f[i+3] = byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)), 255
			}
		}
		return f
	}
	for i := range f {
		f[i] = byte(rng.Intn(256))
	}
	return f
}

// TestParallelEncodeByteIdentical is the tentpole determinism property:
// across random frame sequences (keyframes, full-motion deltas, partial
// deltas, static repeats) every parallel degree must produce exactly
// the serial encoder's packets, reconstruction state, and stats.
func TestParallelEncodeByteIdentical(t *testing.T) {
	sizes := [][2]int{{64, 48}, {30, 22}, {8, 8}, {129, 65}}
	for _, sz := range sizes {
		w, h := sz[0], sz[1]
		for _, par := range parDegrees() {
			t.Run(fmt.Sprintf("%dx%d/par=%d", w, h, par), func(t *testing.T) {
				rng := sim.NewRNG(uint64(w*h + par))
				ref := NewEncoder(w, h, DefaultQuality)
				enc := NewEncoder(w, h, DefaultQuality)
				enc.SetParallelism(par)
				var frame []byte
				for i := 0; i < 8; i++ {
					switch i % 4 {
					case 0:
						frame = randomFrame(rng, w, h, nil)
					case 1, 2:
						frame = randomFrame(rng, w, h, frame)
					case 3:
						// Static repeat: zero-tile delta.
					}
					forceKey := i == 5
					want, err := ref.Encode(frame, forceKey)
					if err != nil {
						t.Fatal(err)
					}
					got, err := enc.Encode(frame, forceKey)
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(want, got) {
						t.Fatalf("frame %d: parallel packet (%dB) != serial packet (%dB)", i, len(got), len(want))
					}
					if !bytes.Equal(ref.prev, enc.prev) {
						t.Fatalf("frame %d: reconstruction state diverged", i)
					}
				}
				if ref.Stats != enc.Stats {
					t.Fatalf("stats diverged: serial %+v parallel %+v", ref.Stats, enc.Stats)
				}
			})
		}
	}
}

// TestParallelDecodeByteIdentical: decoding the same packet stream at
// every degree must yield the serial decoder's frames and stats.
func TestParallelDecodeByteIdentical(t *testing.T) {
	sizes := [][2]int{{64, 48}, {30, 22}, {129, 65}}
	for _, sz := range sizes {
		w, h := sz[0], sz[1]
		rng := sim.NewRNG(uint64(w) * 31)
		enc := NewEncoder(w, h, DefaultQuality)
		var packets [][]byte
		var frame []byte
		for i := 0; i < 6; i++ {
			if i%3 == 0 {
				frame = randomFrame(rng, w, h, nil)
			} else {
				frame = randomFrame(rng, w, h, frame)
			}
			pkt, err := enc.Encode(frame, false)
			if err != nil {
				t.Fatal(err)
			}
			// Encode's return aliases the encoder's reused buffer; copy
			// to retain across calls.
			packets = append(packets, append([]byte(nil), pkt...))
		}
		ref := NewDecoder(w, h, DefaultQuality)
		var want [][]byte
		for _, pkt := range packets {
			f, err := ref.Decode(pkt)
			if err != nil {
				t.Fatal(err)
			}
			want = append(want, append([]byte(nil), f...))
		}
		for _, par := range parDegrees() {
			t.Run(fmt.Sprintf("%dx%d/par=%d", w, h, par), func(t *testing.T) {
				dec := NewDecoder(w, h, DefaultQuality)
				dec.SetParallelism(par)
				for i, pkt := range packets {
					got, err := dec.Decode(pkt)
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(want[i], got) {
						t.Fatalf("frame %d: parallel decode diverged from serial", i)
					}
				}
				if ref.Stats != dec.Stats {
					t.Fatalf("stats diverged: serial %+v parallel %+v", ref.Stats, dec.Stats)
				}
			})
		}
	}
}

// TestParallelDecodeDuplicateTileLastWins: a packet listing the same
// tile twice decodes with the last entry winning, at every degree —
// matching the serial path's overwrite order.
func TestParallelDecodeDuplicateTileLastWins(t *testing.T) {
	const w, h = 16, 8 // 2x1 tile grid, so count=2 stays within bounds
	// Uniform frames make both tile entries byte-identical, so the tile
	// 0 entry is exactly the first half of the packet body.
	entry := func(shade byte) []byte {
		f := make([]byte, w*h*4)
		for i := 0; i < len(f); i += 4 {
			f[i], f[i+1], f[i+2], f[i+3] = shade, shade, shade, 255
		}
		pkt, err := NewEncoder(w, h, DefaultQuality).Encode(f, false)
		if err != nil {
			t.Fatal(err)
		}
		header := 1 + 1 + 1 + 1 + 4 // kind, w uvarint, h uvarint, quality, count
		if (len(pkt)-header)%2 != 0 {
			t.Fatalf("uniform packet body %d not even", len(pkt)-header)
		}
		return pkt[header : header+(len(pkt)-header)/2]
	}
	a, b := entry(40), entry(200)
	pkt := []byte{packetKeyQ}
	pkt = binary.AppendUvarint(pkt, w)
	pkt = binary.AppendUvarint(pkt, h)
	pkt = append(pkt, DefaultQuality)
	pkt = append(pkt, 2, 0, 0, 0) // two entries, both for tile 0
	pkt = append(pkt, a...)
	pkt = append(pkt, b...)

	ref := NewDecoder(w, h, DefaultQuality)
	want, err := ref.Decode(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if want[0] < 150 {
		t.Fatalf("serial decode kept the first duplicate (pixel %d)", want[0])
	}
	for _, par := range parDegrees()[1:] {
		dec := NewDecoder(w, h, DefaultQuality)
		dec.SetParallelism(par)
		got, err := dec.Decode(pkt)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("par=%d: duplicate-tile decode diverged from serial", par)
		}
	}
}

// TestParallelDecodeRejectsMalformedLikeSerial: corrupted and truncated
// packets must error at every degree whenever the serial path errors
// (the parallel scan mirrors its validation).
func TestParallelDecodeRejectsMalformedLikeSerial(t *testing.T) {
	const w, h = 32, 32
	enc := NewEncoder(w, h, DefaultQuality)
	pkt, err := enc.Encode(randomFrame(sim.NewRNG(7), w, h, nil), false)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(99)
	for trial := 0; trial < 500; trial++ {
		buf := append([]byte(nil), pkt...)
		for flips := 0; flips < 1+rng.Intn(4); flips++ {
			buf[rng.Intn(len(buf))] ^= byte(1 << rng.Intn(8))
		}
		serial := NewDecoder(w, h, DefaultQuality)
		_, serr := serial.Decode(buf)
		par := NewDecoder(w, h, DefaultQuality)
		par.SetParallelism(4)
		_, perr := par.Decode(buf)
		if (serr == nil) != (perr == nil) {
			t.Fatalf("trial %d: serial err %v, parallel err %v", trial, serr, perr)
		}
	}
	for cut := 0; cut <= len(pkt); cut++ {
		par := NewDecoder(w, h, DefaultQuality)
		par.SetParallelism(4)
		_, _ = par.Decode(pkt[:cut]) // must not panic
	}
}

// benchFrames builds a pair of full-motion frames (every tile differs)
// so encode benchmarks measure the whole-frame transform cost, the
// regime the paper's §V-A comparison targets.
func benchFrames(w, h int) [][]byte {
	mk := func(phase int) []byte {
		f := make([]byte, w*h*4)
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				i := (y*w + x) * 4
				f[i] = byte((x + phase) * 255 / w)
				f[i+1] = byte((y + phase) * 255 / h)
				f[i+2] = byte(x ^ y)
				f[i+3] = 255
			}
		}
		return f
	}
	return [][]byte{mk(0), mk(16)}
}

// BenchmarkTurboEncode measures tile-parallel encode throughput across
// worker degrees at the paper's streaming resolutions. The par=1 series
// is the serial reference the BENCH_dataplane.json speedups are
// computed against.
func BenchmarkTurboEncode(b *testing.B) {
	for _, sz := range []struct {
		name string
		w, h int
	}{{"320x240", 320, 240}, {"1280x720", 1280, 720}} {
		frames := benchFrames(sz.w, sz.h)
		for _, par := range benchDegrees() {
			b.Run(fmt.Sprintf("%s/par=%d", sz.name, par), func(b *testing.B) {
				enc := NewEncoder(sz.w, sz.h, DefaultQuality)
				enc.SetParallelism(par)
				if _, err := enc.Encode(frames[0], false); err != nil {
					b.Fatal(err)
				}
				b.SetBytes(int64(sz.w * sz.h * 4))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := enc.Encode(frames[i%2], false); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkTurboDecode measures tile-parallel decode throughput across
// worker degrees.
func BenchmarkTurboDecode(b *testing.B) {
	for _, sz := range []struct {
		name string
		w, h int
	}{{"1280x720", 1280, 720}} {
		frames := benchFrames(sz.w, sz.h)
		enc := NewEncoder(sz.w, sz.h, DefaultQuality)
		var pkts [][]byte
		for i := 0; i < 2; i++ {
			pkt, err := enc.Encode(frames[i], false)
			if err != nil {
				b.Fatal(err)
			}
			pkts = append(pkts, append([]byte(nil), pkt...))
		}
		for _, par := range benchDegrees() {
			b.Run(fmt.Sprintf("%s/par=%d", sz.name, par), func(b *testing.B) {
				dec := NewDecoder(sz.w, sz.h, DefaultQuality)
				dec.SetParallelism(par)
				if _, err := dec.Decode(pkts[0]); err != nil {
					b.Fatal(err)
				}
				b.SetBytes(int64(sz.w * sz.h * 4))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := dec.Decode(pkts[i%2]); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
