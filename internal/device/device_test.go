package device

import (
	"errors"
	"testing"
)

func TestCatalogGPURatiosMatchPaper(t *testing.T) {
	n5, g5 := Nexus5(), LGG5()
	// The paper: LG G5 runs action games at roughly 2x the Nexus 5
	// frame rate, reflecting its fillrate advantage.
	ratio := g5.GPU.FillrateGPps / n5.GPU.FillrateGPps
	if ratio < 1.5 || ratio > 2.5 {
		t.Fatalf("G5/N5 fillrate ratio = %.2f, want ~1.9", ratio)
	}
	shield := NvidiaShield()
	if shield.GPU.FillrateGPps != 16 {
		t.Fatalf("Shield fillrate = %v, paper says 16 GP/s", shield.GPU.FillrateGPps)
	}
}

func TestTableIMatchesPaper(t *testing.T) {
	rows := TableI()
	if len(rows) != 3 {
		t.Fatalf("Table I has %d rows", len(rows))
	}
	for _, r := range rows {
		// The paper's point: GPU requirement equals device capability
		// (GPUs are saturated) while CPU capability exceeds requirement.
		if r.ReqGPUGPps != r.DevGPUGPps {
			t.Errorf("%d: GPU req %.1f != capability %.1f", r.Year, r.ReqGPUGPps, r.DevGPUGPps)
		}
		if r.DevCPUGHz*float64(r.DevCPUCores) <= r.ReqCPUGHz*float64(r.ReqCPUCores) {
			t.Errorf("%d: CPU capability should exceed requirement", r.Year)
		}
	}
	if rows[0].Year != 2014 || rows[1].Year != 2015 || rows[2].Year != 2016 {
		t.Fatal("Table I years wrong")
	}
}

func TestServiceDevicesAreCooled(t *testing.T) {
	for _, s := range []ServiceDevice{NvidiaShield(), MinixNeoU1(), DellM4600(), OptiplexGTX750()} {
		if s.GPU.Thermal.CoolPerSec <= Nexus5().GPU.Thermal.CoolPerSec {
			t.Errorf("%s is not actively cooled", s.Name)
		}
		if s.RTT <= 0 {
			t.Errorf("%s has no LAN RTT", s.Name)
		}
	}
}

func TestCapabilityComposition(t *testing.T) {
	s := NvidiaShield()
	c := s.Capability(1.5)
	if c <= 0 {
		t.Fatalf("capability = %v", c)
	}
	// Combined rate is below each stage's individual rate.
	if c >= s.GPU.FillrateGPps*1e9 || c >= s.EncoderMPps*1e6*1.5 {
		t.Fatalf("capability %v not harmonically composed", c)
	}
	// A faster encoder strictly increases capability.
	fast := s
	fast.EncoderMPps *= 2
	if fast.Capability(1.5) <= c {
		t.Fatal("capability not monotone in encoder speed")
	}
	var zero ServiceDevice
	if zero.Capability(1) != 0 {
		t.Fatal("zero device capability should be 0")
	}
}

func TestEffectiveGHzDiminishingReturns(t *testing.T) {
	quad := CPUSpec{GHz: 2, Cores: 4}
	octa := CPUSpec{GHz: 2, Cores: 8}
	if octa.EffectiveGHz() <= quad.EffectiveGHz() {
		t.Fatal("more cores should help some")
	}
	if octa.EffectiveGHz() >= 2*quad.EffectiveGHz() {
		t.Fatal("8 cores should not double 4-core effective capability")
	}
}

func TestDeviceLookup(t *testing.T) {
	for _, name := range []string{"nexus5", "lgg4", "lgg5"} {
		if _, err := UserDeviceByName(name); err != nil {
			t.Errorf("UserDeviceByName(%q): %v", name, err)
		}
	}
	if _, err := UserDeviceByName("iphone"); !errors.Is(err, ErrUnknownDevice) {
		t.Fatalf("unknown user device error = %v", err)
	}
	for _, name := range []string{"shield", "minix", "m4600", "optiplex"} {
		if _, err := ServiceDeviceByName(name); err != nil {
			t.Errorf("ServiceDeviceByName(%q): %v", name, err)
		}
	}
	if _, err := ServiceDeviceByName("ps5"); !errors.Is(err, ErrUnknownDevice) {
		t.Fatalf("unknown service device error = %v", err)
	}
}

func TestEncoderSpeedsFollowPaperShape(t *testing.T) {
	// Turbo hits ~90 MP/s on PCs; ARM boxes are slower but still far
	// beyond the ~1 MP/s x264 figure, or real-time encoding would be
	// impossible (§V-A).
	if OptiplexGTX750().EncoderMPps != 90 {
		t.Fatal("desktop turbo speed should be the paper's 90 MP/s")
	}
	for _, s := range []ServiceDevice{NvidiaShield(), MinixNeoU1()} {
		if s.EncoderMPps < 7 {
			t.Errorf("%s encoder %v MP/s cannot sustain real time", s.Name, s.EncoderMPps)
		}
		if s.EncoderMPps > 60 {
			t.Errorf("%s encoder %v MP/s is PC-class on an ARM box", s.Name, s.EncoderMPps)
		}
	}
}
