// Package device catalogs the hardware the paper evaluates on
// (Table I, §VII-A): user smartphones (Nexus 5, LG G4, LG G5) and
// service devices (Nvidia Shield console, Minix Neo U1 TV box, Dell
// M4600 laptop, Dell Optiplex 9010 + GTX 750 Ti desktops). Each entry
// carries the capability numbers the paper's analysis turns on: GPU
// fillrate, CPU capability, frame-encoder throughput, cooling, display
// power, and radio inventory.
package device

import (
	"errors"
	"fmt"
	"time"

	"github.com/gbooster/gbooster/internal/netsim"
	"github.com/gbooster/gbooster/internal/thermal"
)

// Catalog errors.
var ErrUnknownDevice = errors.New("device: unknown device")

// GPUSpec describes a GPU's rendering capability.
type GPUSpec struct {
	// FillrateGPps is the peak fillrate in gigapixels/second — the
	// capability metric Table I uses.
	FillrateGPps float64
	// Thermal configures the DVFS governor; actively cooled devices
	// never throttle.
	Thermal thermal.Config
}

// CPUSpec describes a CPU's capability for the offload pipeline's
// CPU-side stages (game logic, serialization, compression, decode).
type CPUSpec struct {
	GHz   float64
	Cores int
}

// EffectiveGHz is the aggregate capability a well-threaded pipeline can
// draw on (diminishing returns beyond 4 cores).
func (c CPUSpec) EffectiveGHz() float64 {
	cores := float64(c.Cores)
	if cores > 4 {
		cores = 4 + (cores-4)*0.25
	}
	return c.GHz * cores
}

// UserDevice is a phone running the game.
type UserDevice struct {
	Name string
	Year int
	GPU  GPUSpec
	CPU  CPUSpec
	// ScreenW, ScreenH is the render resolution GBooster streams at
	// (the paper's low-quality setting is 600×480; we keep per-device
	// values near the panel aspect).
	ScreenW, ScreenH int
	// DisplayPowerW is panel+backlight power at the 50% brightness the
	// power experiments use.
	DisplayPowerW float64
	// CPUActivePowerW is CPU package power at full effective load;
	// CPUIdlePowerW at rest.
	CPUActivePowerW, CPUIdlePowerW float64
	// WiFi and Bluetooth are the radio specs for the switching layer.
	WiFi, Bluetooth netsim.RadioSpec
}

// ServiceDevice is an offload destination.
type ServiceDevice struct {
	Name string
	GPU  GPUSpec
	CPU  CPUSpec
	// EncoderMPps is the turbo-codec throughput in megapixels/second on
	// this device's CPU (the paper: ~1 MP/s for x264 on ARM, up to
	// 90 MP/s for turbo on PCs; weaker ARM boxes run turbo slower).
	EncoderMPps float64
	// RTT is the LAN round-trip to the user device.
	RTT time.Duration
}

// Capability implements Eq. 4's c^j: requests are dispatched by
// workload/capability + queue + latency. It folds render fillrate and
// encoder throughput into a single fragments/second figure by assuming
// the calibrated fragments-per-output-pixel ratio of the workloads.
func (s ServiceDevice) Capability(fragmentsPerPixel float64) float64 {
	renderFPS := s.GPU.FillrateGPps * 1e9 // fragments/sec
	encodeFPS := s.EncoderMPps * 1e6 * fragmentsPerPixel
	// Stages are serial per request: combined rate is the harmonic
	// composition.
	if renderFPS <= 0 || encodeFPS <= 0 {
		return 0
	}
	return 1 / (1/renderFPS + 1/encodeFPS)
}

// Nexus5 returns the 2013 phone (the paper's old-generation device).
// Its Adreno 330 matches the Galaxy S5 row of Table I (3.6 GP/s).
func Nexus5() UserDevice {
	return UserDevice{
		Name: "LG Nexus 5", Year: 2013,
		GPU:             GPUSpec{FillrateGPps: 3.6, Thermal: thermal.PhoneGPU()},
		CPU:             CPUSpec{GHz: 2.26, Cores: 4},
		ScreenW:         600,
		ScreenH:         480,
		DisplayPowerW:   0.4,
		CPUActivePowerW: 0.9, CPUIdlePowerW: 0.15,
		WiFi: netsim.WiFi80211n(), Bluetooth: netsim.BluetoothHS(),
	}
}

// LGG4 returns the 2015 phone (used for the Fig. 1 thermal trace).
func LGG4() UserDevice {
	return UserDevice{
		Name: "LG G4", Year: 2015,
		GPU:             GPUSpec{FillrateGPps: 4.8, Thermal: thermal.PhoneGPU()},
		CPU:             CPUSpec{GHz: 1.8, Cores: 6},
		ScreenW:         600,
		ScreenH:         480,
		DisplayPowerW:   0.42,
		CPUActivePowerW: 0.95, CPUIdlePowerW: 0.15,
		WiFi: netsim.WiFi80211n(), Bluetooth: netsim.BluetoothHS(),
	}
}

// LGG5 returns the 2016 phone (the paper's new-generation device,
// Table I: 6.7 GP/s).
func LGG5() UserDevice {
	return UserDevice{
		Name: "LG G5", Year: 2016,
		GPU:             GPUSpec{FillrateGPps: 6.7, Thermal: thermal.PhoneGPU()},
		CPU:             CPUSpec{GHz: 2.15, Cores: 4},
		ScreenW:         600,
		ScreenH:         480,
		DisplayPowerW:   0.42,
		CPUActivePowerW: 1.0, CPUIdlePowerW: 0.15,
		WiFi: netsim.WiFi80211n(), Bluetooth: netsim.BluetoothHS(),
	}
}

// NvidiaShield returns the game console used as the primary service
// device (§VII-A; 16 GP/s fillrate per the paper's §II).
func NvidiaShield() ServiceDevice {
	return ServiceDevice{
		Name:        "Nvidia Shield",
		GPU:         GPUSpec{FillrateGPps: 16, Thermal: thermal.CooledGPU()},
		CPU:         CPUSpec{GHz: 2.0, Cores: 4},
		EncoderMPps: 14, // turbo on an ARM console CPU
		RTT:         3 * time.Millisecond,
	}
}

// MinixNeoU1 returns the smart-TV box.
func MinixNeoU1() ServiceDevice {
	return ServiceDevice{
		Name:        "Minix Neo U1",
		GPU:         GPUSpec{FillrateGPps: 5.2, Thermal: thermal.CooledGPU()},
		CPU:         CPUSpec{GHz: 1.5, Cores: 4},
		EncoderMPps: 11,
		RTT:         3 * time.Millisecond,
	}
}

// DellM4600 returns the laptop service device.
func DellM4600() ServiceDevice {
	return ServiceDevice{
		Name:        "Dell M4600",
		GPU:         GPUSpec{FillrateGPps: 10.4, Thermal: thermal.CooledGPU()},
		CPU:         CPUSpec{GHz: 2.4, Cores: 4},
		EncoderMPps: 55,
		RTT:         3 * time.Millisecond,
	}
}

// OptiplexGTX750 returns a desktop with the GTX 750 Ti used for the
// multi-device experiments (§VII-D).
func OptiplexGTX750() ServiceDevice {
	return ServiceDevice{
		Name:        "Dell Optiplex 9010 + GTX 750 Ti",
		GPU:         GPUSpec{FillrateGPps: 16.3, Thermal: thermal.CooledGPU()},
		CPU:         CPUSpec{GHz: 3.2, Cores: 4},
		EncoderMPps: 90, // the paper's peak turbo figure on PC
		RTT:         3 * time.Millisecond,
	}
}

// UserDeviceByName resolves a catalog phone.
func UserDeviceByName(name string) (UserDevice, error) {
	switch name {
	case "nexus5", "Nexus 5", "LG Nexus 5":
		return Nexus5(), nil
	case "lgg4", "LG G4":
		return LGG4(), nil
	case "lgg5", "LG G5":
		return LGG5(), nil
	default:
		return UserDevice{}, fmt.Errorf("%w: %q", ErrUnknownDevice, name)
	}
}

// ServiceDeviceByName resolves a catalog service device.
func ServiceDeviceByName(name string) (ServiceDevice, error) {
	switch name {
	case "shield", "Nvidia Shield":
		return NvidiaShield(), nil
	case "minix", "Minix Neo U1":
		return MinixNeoU1(), nil
	case "m4600", "Dell M4600":
		return DellM4600(), nil
	case "optiplex", "Dell Optiplex 9010 + GTX 750 Ti":
		return OptiplexGTX750(), nil
	default:
		return ServiceDevice{}, fmt.Errorf("%w: %q", ErrUnknownDevice, name)
	}
}

// TableIRow is one column of the paper's Table I (game requirement vs
// phone capability per year).
type TableIRow struct {
	Year        int
	ReqCPUGHz   float64
	ReqCPUCores int
	ReqGPUGPps  float64
	DeviceName  string
	DevCPUGHz   float64
	DevCPUCores int
	DevGPUGPps  float64
}

// TableI reproduces the paper's Table I verbatim: game recommended
// requirements against the mainstream phone of the same year. The GPU
// rows match exactly — the paper's point is that GPUs, not CPUs, are
// the binding constraint.
func TableI() []TableIRow {
	return []TableIRow{
		{Year: 2014, ReqCPUGHz: 1.5, ReqCPUCores: 1, ReqGPUGPps: 3.6,
			DeviceName: "Samsung Galaxy S5", DevCPUGHz: 2.5, DevCPUCores: 4, DevGPUGPps: 3.6},
		{Year: 2015, ReqCPUGHz: 1.0, ReqCPUCores: 1, ReqGPUGPps: 4.8,
			DeviceName: "LG G4", DevCPUGHz: 1.8, DevCPUCores: 6, DevGPUGPps: 4.8},
		{Year: 2016, ReqCPUGHz: 1.2, ReqCPUCores: 2, ReqGPUGPps: 6.7,
			DeviceName: "LG G5", DevCPUGHz: 2.15, DevCPUCores: 4, DevGPUGPps: 6.7},
	}
}
