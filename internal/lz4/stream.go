package lz4

import (
	"encoding/binary"
	"fmt"
)

// Inter-frame dictionary compression (paper §V-A "LZ4 stream
// compression"). Consecutive frames repeat most of their bytes even
// after the command cache has replaced repeated records with 8-byte
// references — the *sequence* of references recurs frame after frame.
// A one-shot Compress cannot see that redundancy: its match window dies
// with each block. Compressor and Decompressor instead keep a shared
// history window of previous frames' bytes, so matches reach back up to
// maxOffset into earlier frames.
//
// Wire format: dictionary-compressed blocks are self-describing — they
// carry DictBlockFlag as their first byte, followed by ordinary LZ4
// sequences whose offsets may point into the history window. The
// stateless Compress never emits that leading byte (a non-empty block
// always starts with a token whose literal nibble is ≥ 1, i.e. ≥ 0x10,
// and an empty input encodes to an empty block), so the flag is
// unambiguous: a legacy decoder handed a dictionary block fails with
// ErrCorrupt instead of mis-decoding it, and Decompressor accepts
// legacy flagless blocks unchanged (decoded statelessly — they do not
// touch the window, mirroring the sender, whose Compressor never saw
// them).
//
// Because a dictionary block is already non-interoperable with a spec
// LZ4 decoder, the end-of-block constraints (5 trailing literals, no
// match within 12 bytes of the end) are relaxed: a block may end on a
// match, which matters for the small per-frame blocks this stream
// carries.

// DictBlockFlag marks a dictionary-compressed block. See the package
// comment above for why it cannot collide with a stateless block.
const DictBlockFlag = 0x01

const (
	// windowKeep is how much trailing history both sides retain when
	// the window slides. It must be > maxOffset so any offset a
	// compressor can emit stays resolvable at the decompressor no
	// matter how the two sides' slide points interleave.
	windowKeep = 1 << 16
	// histMax bounds the history buffer between slides.
	histMax = 1 << 18
)

// Compressor is the stateful sender side of the inter-frame stream.
// Each Compress call appends its source to a persistent history window
// and may emit matches against any of the last ~64 KiB of previously
// compressed bytes. The zero value is ready to use. Not safe for
// concurrent use.
type Compressor struct {
	table [1 << hashLog]int32 // position+1 in hist of each hash's last occurrence
	hist  []byte
}

// NewCompressor returns a fresh stream compressor.
func NewCompressor() *Compressor { return &Compressor{} }

// Reset drops all history, as if freshly constructed.
func (c *Compressor) Reset() {
	c.table = [1 << hashLog]int32{}
	c.hist = c.hist[:0]
}

// Compress appends the dictionary-compressed encoding of src to dst
// and returns the extended slice. src is copied into the history
// window before Compress returns, so the caller may reuse it
// immediately. Blocks must be decompressed by a Decompressor fed the
// same block sequence in the same order.
func (c *Compressor) Compress(dst, src []byte) []byte {
	dst = append(dst, DictBlockFlag)
	if len(src) == 0 {
		return dst
	}
	c.slide(len(src))
	base := len(c.hist)
	c.hist = append(c.hist, src...)
	s := c.hist
	anchor, pos := base, base
	last := len(s) - minMatch
	for pos <= last {
		h := hash4(binary.LittleEndian.Uint32(s[pos:]))
		cand := int(c.table[h]) - 1
		c.table[h] = int32(pos + 1)
		if cand < 0 || pos-cand > maxOffset ||
			binary.LittleEndian.Uint32(s[cand:]) != binary.LittleEndian.Uint32(s[pos:]) {
			pos++
			continue
		}
		matchLen := minMatch
		maxLen := len(s) - pos
		for matchLen < maxLen && s[cand+matchLen] == s[pos+matchLen] {
			matchLen++
		}
		dst = appendSequence(dst, s[anchor:pos], pos-cand, matchLen)
		pos += matchLen
		anchor = pos
	}
	if anchor < len(s) {
		dst = appendLiterals(dst, s[anchor:], true)
	}
	return dst
}

// DictWindow returns the compressor's live dictionary: the trailing
// windowKeep bytes of history (all of it when shorter). Every offset a
// future Compress can emit resolves inside this window, so seeding a
// fresh Decompressor with it (SeedDict) is sufficient for that
// decompressor to decode all subsequent blocks of the stream. The
// returned slice aliases internal state; copy it if it must survive
// another Compress.
func (c *Compressor) DictWindow() []byte {
	if len(c.hist) <= windowKeep {
		return c.hist
	}
	return c.hist[len(c.hist)-windowKeep:]
}

// SeedDict primes a decompressor's history window with a dictionary
// exported by Compressor.DictWindow, aligning it with a compressor
// mid-stream so the next compressed block decodes correctly. Any
// existing history is replaced.
func (d *Decompressor) SeedDict(dict []byte) {
	d.hist = append(d.hist[:0], dict...)
}

// slide trims the history window before appending srcLen more bytes,
// keeping the trailing windowKeep bytes and remapping the hash table
// into the new coordinates.
func (c *Compressor) slide(srcLen int) {
	if len(c.hist)+srcLen <= histMax || len(c.hist) < windowKeep {
		return
	}
	shift := len(c.hist) - windowKeep
	copy(c.hist, c.hist[shift:])
	c.hist = c.hist[:windowKeep]
	for i, v := range c.table {
		if p := int(v) - 1; p >= shift {
			c.table[i] = int32(p - shift + 1)
		} else if v != 0 {
			c.table[i] = 0
		}
	}
}

// Decompressor is the stateful receiver side of the inter-frame
// stream. It reconstructs the sender's history window from the decoded
// output itself, so the two sides stay mirror-consistent with no
// side-channel: feed it every block of the stream in order. The zero
// value is ready to use. Not safe for concurrent use.
type Decompressor struct {
	hist []byte
}

// NewDecompressor returns a fresh stream decompressor.
func NewDecompressor() *Decompressor { return &Decompressor{} }

// Reset drops all history, as if freshly constructed.
func (d *Decompressor) Reset() { d.hist = d.hist[:0] }

// Decompress appends the decoded bytes of one block to dst and returns
// the extended slice. Dictionary blocks (leading DictBlockFlag) decode
// against — and extend — the history window; legacy flagless blocks
// decode statelessly and leave the window untouched. maxSize caps the
// output as in the package-level Decompress. On error the window is
// unchanged, so a corrupt block can be dropped without desyncing the
// stream (though the sender's window has still advanced — the stream
// is only consistent if every sent block is eventually decoded).
func (d *Decompressor) Decompress(dst, src []byte, maxSize int) ([]byte, error) {
	if len(src) == 0 {
		return dst, nil
	}
	if src[0] != DictBlockFlag {
		return Decompress(dst, src, maxSize)
	}
	src = src[1:]
	base := len(d.hist)
	hist := d.hist
	pos := 0
	for pos < len(src) {
		token := src[pos]
		pos++
		litLen := int(token >> 4)
		if litLen == 15 {
			n, used, err := readLenExt(src[pos:], maxSize)
			if err != nil {
				return dst, err
			}
			litLen += n
			pos += used
		}
		if pos+litLen > len(src) {
			return dst, fmt.Errorf("%w: literal run overflows input", ErrCorrupt)
		}
		if len(hist)-base+litLen > maxSize {
			return dst, ErrTooLarge
		}
		hist = append(hist, src[pos:pos+litLen]...)
		pos += litLen
		if pos == len(src) {
			break // block may end on a literals-only sequence
		}
		if pos+2 > len(src) {
			return dst, fmt.Errorf("%w: truncated offset", ErrCorrupt)
		}
		offset := int(binary.LittleEndian.Uint16(src[pos:]))
		pos += 2
		if offset == 0 {
			return dst, fmt.Errorf("%w: zero offset", ErrCorrupt)
		}
		matchLen := int(token&0x0F) + minMatch
		if token&0x0F == 15 {
			n, used, err := readLenExt(src[pos:], maxSize)
			if err != nil {
				return dst, err
			}
			matchLen += n
			pos += used
		}
		if offset > len(hist) {
			return dst, fmt.Errorf("%w: offset %d beyond window %d", ErrCorrupt, offset, len(hist))
		}
		if len(hist)-base+matchLen > maxSize {
			return dst, ErrTooLarge
		}
		// Byte-by-byte: the match may overlap the bytes it produces.
		start := len(hist) - offset
		for i := 0; i < matchLen; i++ {
			hist = append(hist, hist[start+i])
		}
	}
	dst = append(dst, hist[base:]...)
	d.hist = hist
	d.slideHist()
	return dst, nil
}

// slideHist trims the history window after a block, keeping the
// trailing windowKeep bytes.
func (d *Decompressor) slideHist() {
	if len(d.hist) <= histMax {
		return
	}
	shift := len(d.hist) - windowKeep
	copy(d.hist, d.hist[shift:])
	d.hist = d.hist[:windowKeep]
}
