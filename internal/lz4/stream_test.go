package lz4

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"github.com/gbooster/gbooster/internal/sim"
)

// streamPair round-trips a sequence of blocks through a fresh
// Compressor/Decompressor pair, failing on any mismatch.
func streamPair(t *testing.T, frames [][]byte) (compressed int) {
	t.Helper()
	c := NewCompressor()
	d := NewDecompressor()
	for i, f := range frames {
		blk := c.Compress(nil, f)
		compressed += len(blk)
		out, err := d.Decompress(nil, blk, MaxBlockSize)
		if err != nil {
			t.Fatalf("frame %d: decompress: %v", i, err)
		}
		if !bytes.Equal(out, f) {
			t.Fatalf("frame %d: round trip mismatch (%d vs %d bytes)", i, len(out), len(f))
		}
	}
	return compressed
}

func TestStreamRoundTripBasic(t *testing.T) {
	frames := [][]byte{
		[]byte("the quick brown fox jumps over the lazy dog"),
		[]byte("the quick brown fox jumps over the lazy cat"),
		nil,
		[]byte("x"),
		[]byte("the quick brown fox jumps over the lazy dog"),
	}
	streamPair(t, frames)
}

func TestStreamEmptyBlock(t *testing.T) {
	c := NewCompressor()
	blk := c.Compress(nil, nil)
	if len(blk) != 1 || blk[0] != DictBlockFlag {
		t.Fatalf("empty dict block = %v, want just the flag byte", blk)
	}
	d := NewDecompressor()
	out, err := d.Decompress(nil, blk, MaxBlockSize)
	if err != nil || len(out) != 0 {
		t.Fatalf("empty dict decompress = %v, %v", out, err)
	}
	if out, err = d.Decompress(nil, nil, MaxBlockSize); err != nil || len(out) != 0 {
		t.Fatalf("empty input decompress = %v, %v", out, err)
	}
}

func TestStreamCrossFrameRedundancy(t *testing.T) {
	// The same frame sent twice: the one-shot codec pays full price both
	// times, the stream codec's second block should collapse to almost
	// nothing via dictionary matches.
	frame := []byte(bytes.Repeat([]byte("glDrawElements(GL_TRIANGLES, 42) "), 20))
	oneShot := len(Compress(nil, frame))

	c := NewCompressor()
	d := NewDecompressor()
	first := c.Compress(nil, frame)
	second := c.Compress(nil, frame)
	if len(second) >= oneShot/4 {
		t.Fatalf("second identical frame compressed to %d bytes, one-shot %d; want large cross-frame win", len(second), oneShot)
	}
	for i, blk := range [][]byte{first, second} {
		out, err := d.Decompress(nil, blk, MaxBlockSize)
		if err != nil || !bytes.Equal(out, frame) {
			t.Fatalf("frame %d: %v", i, err)
		}
	}
}

func TestStreamAppendsToDst(t *testing.T) {
	c := NewCompressor()
	d := NewDecompressor()
	blk := c.Compress([]byte("HDR"), []byte("aaaaaaaaaaaaaaaaaaaaaaaa"))
	if !bytes.HasPrefix(blk, []byte("HDR")) {
		t.Fatal("Compressor.Compress did not append to dst")
	}
	out, err := d.Decompress([]byte("OUT"), blk[3:], MaxBlockSize)
	if err != nil || !bytes.HasPrefix(out, []byte("OUT")) {
		t.Fatalf("Decompressor.Decompress did not append to dst: %v", err)
	}
	if !bytes.Equal(out[3:], []byte("aaaaaaaaaaaaaaaaaaaaaaaa")) {
		t.Fatal("payload mismatch after dst prefix")
	}
}

func TestStreamLegacyBlocksInterleave(t *testing.T) {
	// A Decompressor must accept flagless one-shot blocks (the
	// experiments drive the server protocol with them) without touching
	// the dictionary window on either side.
	d := NewDecompressor()
	legacy := []byte(bytes.Repeat([]byte("stateless block payload "), 10))
	out, err := d.Decompress(nil, Compress(nil, legacy), MaxBlockSize)
	if err != nil || !bytes.Equal(out, legacy) {
		t.Fatalf("legacy block via Decompressor: %v", err)
	}
	if len(d.hist) != 0 {
		t.Fatalf("legacy block grew the window to %d bytes", len(d.hist))
	}
	// Dict traffic still works after the stateless interlude.
	c := NewCompressor()
	frames := [][]byte{[]byte("dict frame one one one"), []byte("dict frame two two two")}
	for _, f := range frames {
		out, err := d.Decompress(nil, c.Compress(nil, f), MaxBlockSize)
		if err != nil || !bytes.Equal(out, f) {
			t.Fatalf("dict block after legacy: %v", err)
		}
	}
}

func TestLegacyDecoderRejectsDictBlocks(t *testing.T) {
	// Old decoders must fail loudly on the new format, never
	// mis-decode: the flag byte is not a valid legacy block start.
	c := NewCompressor()
	for _, frame := range [][]byte{
		[]byte("hello hello hello hello hello"),
		bytes.Repeat([]byte("abc"), 100),
	} {
		blk := c.Compress(nil, frame)
		if blk[0] != DictBlockFlag {
			t.Fatalf("dict block missing flag byte: %#x", blk[0])
		}
		if out, err := Decompress(nil, blk, MaxBlockSize); err == nil && bytes.Equal(out, frame) {
			t.Fatal("legacy decoder silently decoded a dictionary block")
		}
	}
}

func TestStreamWindowSlide(t *testing.T) {
	// Push well past histMax so both sides slide, with a recurring motif
	// so matches keep reaching into the retained window across slides.
	r := sim.NewRNG(7)
	motif := make([]byte, 300)
	for i := range motif {
		motif[i] = byte(r.Uint64() % 16)
	}
	c := NewCompressor()
	d := NewDecompressor()
	total := 0
	for i := 0; total < 3*histMax; i++ {
		frame := append([]byte(nil), motif...)
		// Vary the tail so frames aren't byte-identical.
		frame = append(frame, byte(i), byte(i>>8), byte(r.Uint64()))
		if i%5 == 0 {
			extra := make([]byte, 2000)
			for j := range extra {
				extra[j] = byte(r.Uint64())
			}
			frame = append(frame, extra...)
		}
		total += len(frame)
		blk := c.Compress(nil, frame)
		out, err := d.Decompress(nil, blk, MaxBlockSize)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(out, frame) {
			t.Fatalf("frame %d: mismatch after slide", i)
		}
	}
	if len(c.hist) > histMax+4096 || len(d.hist) > histMax+4096 {
		t.Fatalf("windows failed to slide: comp %d, decomp %d", len(c.hist), len(d.hist))
	}
}

func TestStreamLargeIncompressibleFrame(t *testing.T) {
	// A single frame bigger than histMax-windowKeep exercises the
	// "cannot slide enough" path and the worst-case expansion bound.
	r := sim.NewRNG(3)
	frame := make([]byte, histMax)
	for i := range frame {
		frame[i] = byte(r.Uint64())
	}
	c := NewCompressor()
	d := NewDecompressor()
	for i := 0; i < 3; i++ {
		blk := c.Compress(nil, frame)
		if len(blk) > CompressBound(len(frame))+1 {
			t.Fatalf("block %d exceeds bound: %d > %d", i, len(blk), CompressBound(len(frame))+1)
		}
		out, err := d.Decompress(nil, blk, MaxBlockSize)
		if err != nil || !bytes.Equal(out, frame) {
			t.Fatalf("frame %d: %v", i, err)
		}
	}
}

func TestStreamDecompressorErrorLeavesWindowIntact(t *testing.T) {
	c := NewCompressor()
	d := NewDecompressor()
	good := []byte("a good frame a good frame a good frame")
	if _, err := d.Decompress(nil, c.Compress(nil, good), MaxBlockSize); err != nil {
		t.Fatal(err)
	}
	before := len(d.hist)
	// Corrupt dict block: flag + token demanding literals that aren't there.
	if _, err := d.Decompress(nil, []byte{DictBlockFlag, 0x50, 'a'}, MaxBlockSize); err == nil {
		t.Fatal("corrupt dict block decoded without error")
	}
	if len(d.hist) != before {
		t.Fatalf("window changed on error: %d -> %d", before, len(d.hist))
	}
	// The stream continues undamaged.
	next := []byte("a good frame a good frame again")
	out, err := d.Decompress(nil, c.Compress(nil, next), MaxBlockSize)
	if err != nil || !bytes.Equal(out, next) {
		t.Fatalf("stream desynced after rejected block: %v", err)
	}
}

func TestStreamDecompressorSizeLimit(t *testing.T) {
	c := NewCompressor()
	blk := c.Compress(nil, make([]byte, 100000))
	d := NewDecompressor()
	if _, err := d.Decompress(nil, blk, 1000); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("limit error = %v, want ErrTooLarge", err)
	}
}

func TestStreamRoundTripProperty(t *testing.T) {
	check := func(seed uint64, nFrames uint8) bool {
		r := sim.NewRNG(seed)
		c := NewCompressor()
		d := NewDecompressor()
		motif := make([]byte, int(r.Uint64()%200)+1)
		for i := range motif {
			motif[i] = byte(r.Uint64() % 8)
		}
		for i := 0; i < int(nFrames%40)+1; i++ {
			var frame []byte
			for len(frame) < int(r.Uint64()%1000) {
				if r.Uint64()%2 == 0 {
					frame = append(frame, motif...)
				} else {
					frame = append(frame, byte(r.Uint64()))
				}
			}
			blk := c.Compress(nil, frame)
			out, err := d.Decompress(nil, blk, MaxBlockSize)
			if err != nil || !bytes.Equal(out, frame) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestStreamCompressIsZeroAllocSteadyState(t *testing.T) {
	frame := bytes.Repeat([]byte("glBindTexture glDrawArrays "), 30)
	c := NewCompressor()
	dst := make([]byte, 0, CompressBound(len(frame))+1)
	// Warm the history window and table to steady state.
	for i := 0; i < 8; i++ {
		dst = c.Compress(dst[:0], frame)
	}
	if n := testing.AllocsPerRun(100, func() {
		dst = c.Compress(dst[:0], frame)
	}); n != 0 {
		t.Fatalf("steady-state Compress allocates %v times per frame", n)
	}
}

// TestSeedDictResumesStream proves a decompressor seeded from a live
// compressor's DictWindow decodes all subsequent blocks of the stream,
// even though it never saw the earlier blocks — the checkpoint/restore
// contract of the session bootstrap.
func TestSeedDictResumesStream(t *testing.T) {
	rng := sim.NewRNG(41)
	comp := NewCompressor()
	full := NewDecompressor() // reference: decoded everything from block 0

	// Frames repeat heavily so late blocks hold dictionary matches into
	// earlier frames — the case a mis-seeded window would corrupt.
	base := make([]byte, 4096)
	for i := range base {
		base[i] = byte(rng.Intn(8))
	}
	frame := func() []byte {
		f := append([]byte(nil), base...)
		for i := 0; i < 32; i++ {
			f[rng.Intn(len(f))] = byte(rng.Intn(256))
		}
		return f
	}

	const preSeed, postSeed = 24, 24
	for i := 0; i < preSeed; i++ {
		blk := comp.Compress(nil, frame())
		if _, err := full.Decompress(nil, blk, MaxBlockSize); err != nil {
			t.Fatalf("pre-seed block %d: %v", i, err)
		}
	}

	joined := NewDecompressor()
	joined.SeedDict(append([]byte(nil), comp.DictWindow()...))

	for i := 0; i < postSeed; i++ {
		src := frame()
		blk := comp.Compress(nil, src)
		want, err := full.Decompress(nil, blk, MaxBlockSize)
		if err != nil {
			t.Fatalf("post-seed block %d (full): %v", i, err)
		}
		got, err := joined.Decompress(nil, blk, MaxBlockSize)
		if err != nil {
			t.Fatalf("post-seed block %d (seeded): %v", i, err)
		}
		if !bytes.Equal(want, src) || !bytes.Equal(got, src) {
			t.Fatalf("post-seed block %d: decoded bytes diverge from source", i)
		}
	}
}

// TestSeedDictReplacesHistory: re-seeding discards any previous window.
func TestSeedDictReplacesHistory(t *testing.T) {
	d := NewDecompressor()
	d.SeedDict([]byte("old window"))
	d.SeedDict(nil)
	if len(d.hist) != 0 {
		t.Fatalf("re-seed left %d bytes of history", len(d.hist))
	}
}
