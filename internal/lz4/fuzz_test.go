package lz4

import (
	"testing"
	"testing/quick"
)

func TestDecompressNeverPanicsOnArbitraryBytes(t *testing.T) {
	check := func(data []byte) bool {
		_, _ = Decompress(nil, data, 1<<20)
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestDecompressBoundedByMaxSize(t *testing.T) {
	// Even a crafted bomb (tiny input expanding hugely) must respect
	// the caller's cap rather than allocate unboundedly.
	bomb := Compress(nil, make([]byte, 8<<20))
	if len(bomb) > 64<<10 {
		t.Fatalf("zero bomb unexpectedly large: %d", len(bomb))
	}
	if _, err := Decompress(nil, bomb, 1<<10); err == nil {
		t.Fatal("bomb expansion exceeded cap without error")
	}
}
