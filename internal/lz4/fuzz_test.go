package lz4

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestDecompressNeverPanicsOnArbitraryBytes(t *testing.T) {
	check := func(data []byte) bool {
		_, _ = Decompress(nil, data, 1<<20)
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// lenExtBomb builds a block whose literal-length extension declares a
// length far beyond any output cap: a token with the 15-literal nibble
// followed by a long run of 0xFF continuation bytes. Before readLenExt
// learned a limit, the declared total could walk past the top of a
// 32-bit int and wrap negative before the output-size checks ran.
func lenExtBomb() []byte {
	bomb := append([]byte{0xF0}, bytes.Repeat([]byte{0xFF}, 8192)...)
	return append(bomb, 0x00)
}

func TestDecompressRejectsLengthExtensionOverflow(t *testing.T) {
	// ~2 MB declared against a 1 MB cap: rejected inside the length
	// parse, before any literal-run allocation or arithmetic on the
	// bogus total.
	if _, err := Decompress(nil, lenExtBomb(), 1<<20); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("length-extension bomb error = %v, want ErrTooLarge", err)
	}
	var d Decompressor
	dict := append([]byte{DictBlockFlag}, lenExtBomb()...)
	if _, err := d.Decompress(nil, dict, 1<<20); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("dict length-extension bomb error = %v, want ErrTooLarge", err)
	}
}

func FuzzDecompress(f *testing.F) {
	f.Add(Compress(nil, []byte("the quick brown fox the quick brown fox")))
	f.Add([]byte{0xF0, 255})             // truncated length extension
	f.Add([]byte{0x10, 'a', 0x05, 0x00}) // offset beyond output
	f.Add(lenExtBomb())                  // declared length overflows the cap
	f.Add([]byte{DictBlockFlag, 0x50})   // dict block, truncated literals
	f.Fuzz(func(t *testing.T, data []byte) {
		const limit = 1 << 20
		if out, err := Decompress(nil, data, limit); err == nil && len(out) > limit {
			t.Fatalf("one-shot output %d exceeds cap", len(out))
		}
		var d Decompressor
		if out, err := d.Decompress(nil, data, limit); err == nil && len(out) > limit {
			t.Fatalf("stream output %d exceeds cap", len(out))
		}
	})
}

func TestDecompressBoundedByMaxSize(t *testing.T) {
	// Even a crafted bomb (tiny input expanding hugely) must respect
	// the caller's cap rather than allocate unboundedly.
	bomb := Compress(nil, make([]byte, 8<<20))
	if len(bomb) > 64<<10 {
		t.Fatalf("zero bomb unexpectedly large: %d", len(bomb))
	}
	if _, err := Decompress(nil, bomb, 1<<10); err == nil {
		t.Fatal("bomb expansion exceeded cap without error")
	}
}
