// Package lz4 implements the LZ4 block format (compression and
// decompression) with no external dependencies. GBooster compresses the
// serialized graphics-command stream with LZ4 because it is light
// enough to run per frame on a phone CPU while removing most of the
// redundancy the LRU command cache leaves behind (paper §V-A reports a
// ~70% ratio at negligible CPU cost).
//
// The implementation follows the public block specification: a stream
// of sequences, each a token (literal-length nibble, match-length
// nibble), extended lengths, literal bytes, a two-byte little-endian
// match offset, and the match-length extension. The final sequence is
// literals-only.
package lz4

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Decompression errors.
var (
	ErrCorrupt  = errors.New("lz4: corrupt block")
	ErrTooLarge = errors.New("lz4: decompressed size exceeds limit")
)

const (
	minMatch     = 4  // LZ4 minimum match length
	lastLiterals = 5  // spec: final 5 bytes must be literals
	mfLimit      = 12 // spec: no match may start within 12 bytes of end
	hashLog      = 14
	hashShift    = 32 - hashLog
	maxOffset    = 65535
)

// MaxBlockSize bounds a decompressed block; callers that know their
// frame sizes can rely on the explicit max argument instead.
const MaxBlockSize = 64 << 20

// CompressBound returns the worst-case compressed size for n input
// bytes (incompressible data expands by the literal-length extensions).
func CompressBound(n int) int {
	return n + n/255 + 16
}

// Compress appends the LZ4 block encoding of src to dst and returns the
// extended slice. Empty input encodes to an empty block.
func Compress(dst, src []byte) []byte {
	if len(src) == 0 {
		return dst
	}
	if len(src) < mfLimit {
		return appendLiterals(dst, src, true)
	}

	var table [1 << hashLog]int32 // position+1 of last occurrence of each hash
	anchor := 0
	pos := 0
	limit := len(src) - mfLimit

	for pos <= limit {
		h := hash4(binary.LittleEndian.Uint32(src[pos:]))
		cand := int(table[h]) - 1
		table[h] = int32(pos + 1)
		if cand < 0 || pos-cand > maxOffset ||
			binary.LittleEndian.Uint32(src[cand:]) != binary.LittleEndian.Uint32(src[pos:]) {
			pos++
			continue
		}
		// Extend the match forward, but never into the last-literals
		// tail the spec reserves.
		matchLen := minMatch
		maxLen := len(src) - lastLiterals - pos
		for matchLen < maxLen && src[cand+matchLen] == src[pos+matchLen] {
			matchLen++
		}
		if matchLen < minMatch {
			pos++
			continue
		}
		dst = appendSequence(dst, src[anchor:pos], pos-cand, matchLen)
		pos += matchLen
		anchor = pos
	}
	if anchor < len(src) {
		dst = appendLiterals(dst, src[anchor:], true)
	}
	return dst
}

// appendSequence writes one token + literals + offset + match-length
// extension.
func appendSequence(dst, literals []byte, offset, matchLen int) []byte {
	litLen := len(literals)
	mlCode := matchLen - minMatch
	token := byte(0)
	if litLen >= 15 {
		token = 0xF0
	} else {
		token = byte(litLen) << 4
	}
	if mlCode >= 15 {
		token |= 0x0F
	} else {
		token |= byte(mlCode)
	}
	dst = append(dst, token)
	if litLen >= 15 {
		dst = appendLenExt(dst, litLen-15)
	}
	dst = append(dst, literals...)
	dst = append(dst, byte(offset), byte(offset>>8))
	if mlCode >= 15 {
		dst = appendLenExt(dst, mlCode-15)
	}
	return dst
}

// appendLiterals writes a literals-only final sequence.
func appendLiterals(dst, literals []byte, _ bool) []byte {
	litLen := len(literals)
	if litLen >= 15 {
		dst = append(dst, 0xF0)
		dst = appendLenExt(dst, litLen-15)
	} else {
		dst = append(dst, byte(litLen)<<4)
	}
	return append(dst, literals...)
}

func appendLenExt(dst []byte, v int) []byte {
	for v >= 255 {
		dst = append(dst, 255)
		v -= 255
	}
	return append(dst, byte(v))
}

func hash4(u uint32) uint32 {
	return (u * 2654435761) >> hashShift
}

// Decompress appends the decoded bytes of an LZ4 block to dst and
// returns the extended slice. maxSize caps the output (pass
// MaxBlockSize when unknown); exceeding it returns ErrTooLarge.
func Decompress(dst, src []byte, maxSize int) ([]byte, error) {
	base := len(dst)
	pos := 0
	for pos < len(src) {
		token := src[pos]
		pos++
		// Literals.
		litLen := int(token >> 4)
		if litLen == 15 {
			n, used, err := readLenExt(src[pos:], maxSize)
			if err != nil {
				return dst, err
			}
			litLen += n
			pos += used
		}
		if pos+litLen > len(src) {
			return dst, fmt.Errorf("%w: literal run overflows input", ErrCorrupt)
		}
		if len(dst)-base+litLen > maxSize {
			return dst, ErrTooLarge
		}
		dst = append(dst, src[pos:pos+litLen]...)
		pos += litLen
		if pos == len(src) {
			return dst, nil // final literals-only sequence
		}
		// Match.
		if pos+2 > len(src) {
			return dst, fmt.Errorf("%w: truncated offset", ErrCorrupt)
		}
		offset := int(binary.LittleEndian.Uint16(src[pos:]))
		pos += 2
		if offset == 0 {
			return dst, fmt.Errorf("%w: zero offset", ErrCorrupt)
		}
		matchLen := int(token&0x0F) + minMatch
		if token&0x0F == 15 {
			n, used, err := readLenExt(src[pos:], maxSize)
			if err != nil {
				return dst, err
			}
			matchLen += n
			pos += used
		}
		if offset > len(dst)-base {
			return dst, fmt.Errorf("%w: offset %d beyond output %d", ErrCorrupt, offset, len(dst)-base)
		}
		if len(dst)-base+matchLen > maxSize {
			return dst, ErrTooLarge
		}
		// Overlapping copy byte-by-byte: the match may read bytes the
		// same loop just produced (run-length style references).
		start := len(dst) - offset
		for i := 0; i < matchLen; i++ {
			dst = append(dst, dst[start+i])
		}
	}
	return dst, nil
}

// readLenExt parses a 255-run length extension. limit bounds the
// declared length: any length a valid block can use is bounded by the
// caller's output cap, and rejecting early keeps a hostile run of 0xFF
// bytes from walking total past the top of int (a 32-bit int wraps
// negative, turning the later slice bounds arithmetic into a panic)
// before the precise output-size checks ever run.
func readLenExt(src []byte, limit int) (total, used int, err error) {
	for {
		if used >= len(src) {
			return 0, 0, fmt.Errorf("%w: truncated length extension", ErrCorrupt)
		}
		b := src[used]
		used++
		total += int(b)
		if total > limit || total < 0 {
			return 0, 0, fmt.Errorf("%w: declared length exceeds %d", ErrTooLarge, limit)
		}
		if b != 255 {
			return total, used, nil
		}
	}
}

// Ratio returns compressedLen/originalLen as a float (lower is
// better); 1.0 means no compression. It reports 1 for empty input.
func Ratio(originalLen, compressedLen int) float64 {
	if originalLen == 0 {
		return 1
	}
	return float64(compressedLen) / float64(originalLen)
}
